//! # pwdft-repro
//!
//! Umbrella crate for the Rust reproduction of *"Large Scale
//! Finite-Temperature Real-Time Time Dependent Density Functional Theory
//! Calculation with Hybrid Functional on ARM and GPU Systems"* (IPPS 2025).
//!
//! The workspace implements, from scratch:
//!
//! * [`pwnum`] — complex arithmetic, dense linear algebra, and the
//!   pluggable compute-backend layer ([`pwnum::backend`]) every hot
//!   primitive dispatches through (`Reference` scalar/threaded vs
//!   `Blocked` accelerator-style, mirroring the paper's ARM/GPU split),
//! * [`pwfft`] — mixed-radix FFTs over plane-wave grids with
//!   backend-routed batched transforms,
//! * [`mpisim`] — a thread-backed MPI-like runtime with a virtual-clock
//!   network model,
//! * [`pwdft`] — the plane-wave Kohn–Sham DFT substrate (Hamiltonian,
//!   SCF, screened Fock exchange, ACE),
//! * [`ptim`] — the paper's contribution: PT-IM and PT-IM-ACE
//!   finite-temperature rt-TDDFT propagators, serial and distributed,
//! * [`perfmodel`] — calibrated performance models of the Fugaku (ARM)
//!   and A100 (GPU) platforms used for the scaling studies,
//! * [`pwobs`] — the unified tracing/metrics registry every layer
//!   reports into (scoped spans, counters/gauges, chrome-trace /
//!   Fig. 9 phase-table / JSONL-stream exporters).
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use mpisim;
pub use perfmodel;
pub use ptim;
pub use pwdft;
pub use pwfft;
pub use pwnum;
pub use pwobs;
