//! # rand (offline stand-in)
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset of `rand` the code base uses: a deterministic,
//! seedable [`rngs::StdRng`] (SplitMix64) together with the [`Rng`] /
//! [`SeedableRng`] traits and range sampling for the numeric types the
//! physics code draws (`f64`, `u64`, `usize`).
//!
//! Determinism note: `StdRng::seed_from_u64(s)` yields the same stream
//! on every platform and every run — the wavefunction starting guesses
//! built from it are fully reproducible, which the ground-state
//! regression tests rely on.
//!
//! See `DESIGN.md` §"Dependency shims".

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that know how to sample themselves — the shim analog of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> u64 {
        let span = self.end - self.start;
        assert!(span > 0, "empty range");
        self.start + rng.next_u64() % span
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> usize {
        let span = (self.end - self.start) as u64;
        assert!(span > 0, "empty range");
        self.start + (rng.next_u64() % span) as usize
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Passes through all 2⁶⁴ states; more than adequate for
    /// building randomized starting wavefunctions.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-1.0..1.0);
            let y: f64 = b.gen_range(-1.0..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: usize = rng.gen_range(2usize..9);
            assert!((2..9).contains(&u));
            let v: u64 = rng.gen_range(10u64..11);
            assert_eq!(v, 10);
        }
    }
}
