//! # crossbeam (offline stand-in)
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset of `crossbeam` the code base uses: the
//! [`channel`] module's unbounded MPSC channel. `mpisim` builds a full
//! rank-to-rank channel mesh (one channel per (src, dst) pair, each
//! receiver owned by exactly one rank thread), so the std `mpsc`
//! semantics — cloneable `Sender`, single-consumer `Receiver` — cover
//! everything it needs.
//!
//! See `DESIGN.md` §"Dependency shims".

pub mod channel {
    //! Unbounded channels with the `crossbeam_channel` surface used by
    //! `mpisim::comm`.

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Creates an unbounded channel: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }
}
