//! # criterion (offline stand-in)
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset of `criterion` the `bench` crate uses:
//! [`Criterion`], [`BenchmarkGroup`] (`bench_function`,
//! `bench_with_input`, `sample_size`, `finish`), [`Bencher::iter`],
//! [`BenchmarkId::new`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, one untimed warm-up call, then up
//! to `sample_size` timed samples capped by a per-benchmark time
//! budget; the median per-iteration wall time is printed as
//! `<group>/<id> ... <t> per iter`. No statistics files are written —
//! this is a smoke-and-ballpark harness, not a statistics engine.
//! Passing `--test` (as `cargo test --benches` does) runs each body
//! exactly once.
//!
//! See `DESIGN.md` §"Dependency shims".

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Soft wall-clock budget per benchmark id.
const BUDGET: Duration = Duration::from_millis(200);

/// Top-level benchmark context, handed to every `criterion_group!`
/// target function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, criterion: self }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`, labelling it `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input, labelling it `id`.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, &mut |b| f(b, input));
        self
    }

    /// Closes the group. (Statistics finalization in real criterion;
    /// a no-op here.)
    pub fn finish(self) {}

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { samples: Vec::new(), test_mode: self.criterion.test_mode };
        if bencher.test_mode {
            f(&mut bencher);
            println!("{}/{}: ok (test mode)", self.name, id.label);
            return;
        }
        // Warm-up pass (also fills caches / lazy statics).
        f(&mut bencher);
        bencher.samples.clear();
        let start = Instant::now();
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if start.elapsed() > BUDGET {
                break;
            }
        }
        bencher.samples.sort();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!("{}/{:<28} {:>12} per iter", self.name, id.label, format_ns(median));
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, recording one sample of its per-call wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        let t0 = Instant::now();
        std::hint::black_box(routine());
        self.samples.push(t0.elapsed());
    }
}

/// A benchmark label, optionally parameterized (`name/param`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds a parameterized id rendered as `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{param}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Re-export so `criterion::black_box` resolves, as in the real crate.
pub use std::hint::black_box;

fn format_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
