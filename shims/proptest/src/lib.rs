//! # proptest (offline stand-in)
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset of `proptest` its property suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]` and
//!   `arg in strategy` bindings,
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges and 2-/3-tuples of strategies,
//! * [`collection::vec`](fn@collection::vec) with fixed or ranged lengths,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest, on purpose: inputs are drawn from a
//! **deterministic** per-test SplitMix64 stream (seeded by the test
//! name), and failing cases are **not shrunk** — the failure message
//! reports the case index instead. Deterministic draws keep CI stable;
//! rerun locally to reproduce a failure exactly.
//!
//! See `DESIGN.md` §"Dependency shims".

pub mod test_runner {
    //! Configuration and the deterministic source of randomness.

    /// Subset of `proptest::test_runner::Config`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 stream, seeded from the test name so
    /// every run of a given property sees the same inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from `name` (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrinking: `generate` draws a
    /// value directly from the deterministic stream.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty strategy range");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u8);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy generating `Vec`s of `element` draws.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements (fixed count or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Checks a condition inside a `proptest!` body; on failure the current
/// case aborts with the stringified condition (plus optional formatted
/// context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality check inside a `proptest!` body; both sides are reported on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes an ordinary test that checks the body against
/// `config.cases` deterministic random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ( $( ($strat) ),+ ,);
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let ( $($arg),+ ,) = {
                        let ( $(ref $arg),+ ,) = strategies;
                        ( $( $crate::strategy::Strategy::generate($arg, &mut rng) ),+ ,)
                    };
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property '{}' failed on deterministic case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -2.0f64..3.0, n in 1usize..9) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(
            v in crate::collection::vec(0.0f64..1.0, 4),
            w in crate::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..5),
        ) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((1..5).contains(&w.len()));
        }

        #[test]
        fn prop_map_applies(y in (0.0f64..1.0).prop_map(|v| v + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }
    }
}
