//! # parking_lot (offline stand-in)
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the *exact subset* of the `parking_lot` API the code base
//! uses — `Mutex` and `RwLock` whose lock methods return guards
//! directly instead of `Result` — implemented over `std::sync`.
//! Poisoning is deliberately swallowed (`into_inner` on a poisoned
//! lock), which matches `parking_lot`'s no-poisoning semantics.
//!
//! See `DESIGN.md` §"Dependency shims" for the policy: if the real
//! crates ever become available, deleting `shims/` and pointing the
//! manifests at crates.io versions requires no source change.

use std::sync;

/// A mutual-exclusion lock whose [`lock`](Mutex::lock) never returns
/// `Err` — the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without
    /// locking (requires exclusive access to the mutex itself).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose `read`/`write` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without
    /// locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
