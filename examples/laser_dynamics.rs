//! Finite-temperature laser-driven dynamics: how temperature changes the
//! electronic response (the physics regime the paper's PT-IM method
//! unlocks at scale).
//!
//! Propagates the same 8-atom silicon cell at 300 K (nearly pure state)
//! and 8000 K (strongly mixed state) under one pulse and compares the
//! occupation-matrix dynamics.
//!
//! ```bash
//! cargo run --release --example laser_dynamics
//! # instrumented: chrome trace + phase table + per-step JSONL
//! cargo run --release --example laser_dynamics -- --trace target/pwobs
//! ```
//!
//! With `--trace [dir]` the run enables the [`pwobs`] recorder and
//! writes `trace.json` (load in `chrome://tracing` or Perfetto) and
//! `steps.jsonl` (one metrics object per propagator step) into `dir`
//! (default `target/pwobs`), then prints the Fig. 9-style per-phase
//! breakdown of the stepping wall time.

use std::io::Write as _;
use std::time::Instant;

use pwdft_repro::ptim::laser::{AU_TIME_AS, AU_TIME_FS};
use pwdft_repro::ptim::{ptim_ace_step, HybridParams, LaserPulse, PtimAceConfig, TdEngine, TdState};
use pwdft_repro::pwdft::{scf_hybrid, scf_lda, Cell, DftSystem, HybridConfig, ScfConfig};
use pwdft_repro::pwobs;
use pwdft_repro::pwobs::export::{chrome_trace_json, phase_table, StepRecord, StepStream};

/// Instrumentation context threaded through the two temperature runs:
/// the JSONL stream, the global step counter, and the stepping-loop wall
/// time (the phase table's denominator).
struct Trace {
    stream: StepStream<std::fs::File>,
    step: u64,
    stepping_s: f64,
}

fn run_temperature(sys: &DftSystem, temp_k: f64, trace: &mut Option<Trace>) -> (f64, f64, f64) {
    let cfg = ScfConfig { n_bands: 24, temperature_k: temp_k, ..Default::default() };
    let gs = scf_lda(sys, &cfg);
    let gs = scf_hybrid(sys, &cfg, &HybridConfig { outer_iters: 2, ..Default::default() }, gs);
    let fractional =
        gs.occ.iter().filter(|&&f| f > 0.01 && f < 0.99).count();
    println!(
        "  T = {temp_k:6.0} K: E = {:+.6} Ha, fractional occupations: {fractional}",
        gs.energies.total()
    );

    let pulse = LaserPulse::paper_pulse(0.04, 1.5);
    let eng = TdEngine::new(sys, pulse, HybridParams::default());
    let mut state = TdState::from_ground_state(&gs);
    let cfg_td = PtimAceConfig { dt: 50.0 / AU_TIME_AS, ..Default::default() };

    let e_start = eng.total_energy(&state).total();
    let n_steps = 12;
    // Record only the stepping loop: the ground-state prep above shares
    // the instrumented backend, and letting it into the recorder would
    // inflate the phase rows past the stepping-wall denominator.
    if trace.is_some() {
        pwobs::set_enabled(true);
    }
    for _ in 0..n_steps {
        let t0 = Instant::now();
        let (next, stats) = ptim_ace_step(&eng, &state, &cfg_td);
        let wall_s = t0.elapsed().as_secs_f64();
        state = next;
        if let Some(tr) = trace.as_mut() {
            tr.step += 1;
            tr.stepping_s += wall_s;
            let rec = StepRecord::new(tr.step)
                .f("wall_s", wall_s)
                .f("temp_k", temp_k)
                .u("scf_iters", stats.scf_iters as u64)
                .u("outer_iters", stats.outer_iters as u64)
                .u("fock_applies", stats.fock_applies as u64)
                .b("converged", stats.converged)
                .f("residual", stats.residual)
                .u("fock_solves_fp64", stats.fock_solves_fp64 as u64)
                .u("fock_solves_fp32", stats.fock_solves_fp32 as u64)
                .u("pool_peak_bytes", stats.pool_peak_bytes as u64);
            tr.stream.emit(&rec).expect("steps.jsonl write failed");
        }
    }
    if trace.is_some() {
        pwobs::set_enabled(false);
    }
    let e_end = eng.total_energy(&state).total();

    // Occupation redistribution: total |σ - σ(0)| off-diagonal weight.
    let mut off = 0.0;
    for i in 0..24 {
        for j in 0..24 {
            if i != j {
                off += state.sigma[(i, j)].abs();
            }
        }
    }
    (e_end - e_start, off, state.time * AU_TIME_FS)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_dir = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| "target/pwobs".into()));
    let mut trace = trace_dir.as_ref().map(|dir| {
        std::fs::create_dir_all(dir).expect("trace dir");
        let f = std::fs::File::create(format!("{dir}/steps.jsonl")).expect("steps.jsonl");
        Trace { stream: StepStream::new(f), step: 0, stepping_s: 0.0 }
    });

    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 3.0, [10, 10, 10]);
    println!("8-atom Si under a strong 380 nm pulse (hybrid functional, PT-IM-ACE):\n");
    println!("preparing and propagating at two temperatures...");
    let (de_cold, off_cold, t) = run_temperature(&sys, 300.0, &mut trace);
    let (de_hot, off_hot, _) = run_temperature(&sys, 8000.0, &mut trace);

    println!("\nafter {t:.2} fs of irradiation:");
    println!("  energy absorbed  : {de_cold:+.3e} Ha (300 K) vs {de_hot:+.3e} Ha (8000 K)");
    println!("  σ off-diag weight: {off_cold:.3e} (300 K) vs {off_hot:.3e} (8000 K)");
    println!("\nat 8000 K the fractionally-occupied manifold participates in the");
    println!("response — exactly the mixed-state regime where the paper's σ");
    println!("diagonalization and PT-IM integrator earn their keep.");

    if let (Some(tr), Some(dir)) = (trace, trace_dir) {
        let rec = pwobs::global();
        let mut f = std::fs::File::create(format!("{dir}/trace.json")).expect("trace.json");
        f.write_all(chrome_trace_json(rec).as_bytes()).expect("trace.json write");
        println!("\nper-phase breakdown of {} propagator steps:", tr.step);
        println!("{}", phase_table(rec, tr.stepping_s));
        println!("wrote {dir}/trace.json ({} events) and {dir}/steps.jsonl ({} lines)",
            rec.timeline_len(), tr.stream.lines());
    }
}
