//! Finite-temperature laser-driven dynamics: how temperature changes the
//! electronic response (the physics regime the paper's PT-IM method
//! unlocks at scale).
//!
//! Propagates the same 8-atom silicon cell at 300 K (nearly pure state)
//! and 8000 K (strongly mixed state) under one pulse and compares the
//! occupation-matrix dynamics.
//!
//! ```bash
//! cargo run --release --example laser_dynamics
//! ```

use pwdft_repro::ptim::laser::{AU_TIME_AS, AU_TIME_FS};
use pwdft_repro::ptim::{ptim_ace_step, HybridParams, LaserPulse, PtimAceConfig, TdEngine, TdState};
use pwdft_repro::pwdft::{scf_hybrid, scf_lda, Cell, DftSystem, HybridConfig, ScfConfig};

fn run_temperature(sys: &DftSystem, temp_k: f64) -> (f64, f64, f64) {
    let cfg = ScfConfig { n_bands: 24, temperature_k: temp_k, ..Default::default() };
    let gs = scf_lda(sys, &cfg);
    let gs = scf_hybrid(sys, &cfg, &HybridConfig { outer_iters: 2, ..Default::default() }, gs);
    let fractional =
        gs.occ.iter().filter(|&&f| f > 0.01 && f < 0.99).count();
    println!(
        "  T = {temp_k:6.0} K: E = {:+.6} Ha, fractional occupations: {fractional}",
        gs.energies.total()
    );

    let pulse = LaserPulse::paper_pulse(0.04, 1.5);
    let eng = TdEngine::new(sys, pulse, HybridParams::default());
    let mut state = TdState::from_ground_state(&gs);
    let cfg_td = PtimAceConfig { dt: 50.0 / AU_TIME_AS, ..Default::default() };

    let e_start = eng.total_energy(&state).total();
    let n_steps = 12;
    for _ in 0..n_steps {
        let (next, _) = ptim_ace_step(&eng, &state, &cfg_td);
        state = next;
    }
    let e_end = eng.total_energy(&state).total();

    // Occupation redistribution: total |σ - σ(0)| off-diagonal weight.
    let mut off = 0.0;
    for i in 0..24 {
        for j in 0..24 {
            if i != j {
                off += state.sigma[(i, j)].abs();
            }
        }
    }
    (e_end - e_start, off, state.time * AU_TIME_FS)
}

fn main() {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 3.0, [10, 10, 10]);
    println!("8-atom Si under a strong 380 nm pulse (hybrid functional, PT-IM-ACE):\n");
    println!("preparing and propagating at two temperatures...");
    let (de_cold, off_cold, t) = run_temperature(&sys, 300.0);
    let (de_hot, off_hot, _) = run_temperature(&sys, 8000.0);

    println!("\nafter {t:.2} fs of irradiation:");
    println!("  energy absorbed  : {de_cold:+.3e} Ha (300 K) vs {de_hot:+.3e} Ha (8000 K)");
    println!("  σ off-diag weight: {off_cold:.3e} (300 K) vs {off_hot:.3e} (8000 K)");
    println!("\nat 8000 K the fractionally-occupied manifold participates in the");
    println!("response — exactly the mixed-state regime where the paper's σ");
    println!("diagonalization and PT-IM integrator earn their keep.");
}
