//! Quickstart: finite-temperature hybrid-functional rt-TDDFT on an
//! 8-atom silicon cell in ~a minute.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline of the paper: LDA SCF → hybrid (ACE) SCF →
//! PT-IM-ACE time propagation with a laser pulse, printing energies and
//! occupation dynamics.

use pwdft_repro::ptim::{
    laser::AU_TIME_AS, ptim_ace_step, HybridParams, LaserPulse, PtimAceConfig, TdEngine, TdState,
};
use pwdft_repro::pwdft::{scf_hybrid, scf_lda, Cell, DftSystem, HybridConfig, ScfConfig};

fn main() {
    // 1. The system: one diamond-cubic silicon cell (8 atoms, 32 valence
    //    electrons) at a quickstart-friendly cutoff.
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 3.0, [10, 10, 10]);
    println!("system: {} Si atoms, {} electrons, {} grid points",
        sys.cell.n_atoms(), sys.n_electrons(), sys.grid.len());

    // 2. Ground state at 8000 K: 24 states (16 occupied + 8 extra, the
    //    paper's accuracy-test convention) with Fermi-Dirac smearing.
    let cfg = ScfConfig { n_bands: 24, temperature_k: 8000.0, ..Default::default() };
    let gs = scf_lda(&sys, &cfg);
    println!("\nLDA ground state ({} iterations):\n{}", gs.iterations, gs.energies);

    // 3. Hybrid refinement with the ACE double loop (HSE-like screened
    //    exchange, α = 0.25, ω = 0.106 bohr⁻¹).
    let gs = scf_hybrid(&sys, &cfg, &HybridConfig::default(), gs);
    println!("\nhybrid ground state:\n{}", gs.energies);
    println!("occupations: {:?}",
        gs.occ.iter().map(|f| (f * 1000.0).round() / 1000.0).collect::<Vec<_>>());

    // 4. rt-TDDFT: PT-IM-ACE with the paper's 50 as step under a 380 nm
    //    pulse.
    let pulse = LaserPulse::paper_pulse(0.01, 2.0);
    let eng = TdEngine::new(&sys, pulse, HybridParams::default());
    let mut state = TdState::from_ground_state(&gs);
    let ptim_cfg = PtimAceConfig { dt: 50.0 / AU_TIME_AS, ..Default::default() };

    println!("\npropagating 10 steps of 50 as (hybrid PT-IM-ACE):");
    for step in 0..10 {
        let (next, stats) = ptim_ace_step(&eng, &state, &ptim_cfg);
        state = next;
        let e = eng.total_energy(&state);
        println!(
            "  step {:2}: t = {:6.1} as | E = {:+.6} Ha | outers {} | Fock builds {} | 2 tr σ = {:.6}",
            step + 1,
            state.time * AU_TIME_AS,
            e.total(),
            stats.outer_iters,
            stats.fock_applies,
            state.electron_count()
        );
    }
    println!("\northonormality error: {:.2e}", state.orthonormality_error());
    println!("σ hermiticity error:  {:.2e}", state.sigma_hermiticity_error());
    println!("\ndone — see examples/laser_dynamics.rs and the fig* binaries for more.");
}
