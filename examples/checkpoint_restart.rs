//! Checkpoint/restart demo: interrupt a hybrid PT-IM run at step k,
//! restart from the newest snapshot, and watch the dipole trace agree
//! bitwise with a never-interrupted run (DESIGN.md §12).
//!
//! ```bash
//! cargo run --release --example checkpoint_restart
//! ```
//!
//! Also exercises the recovery ladder on a deliberately NaN-poisoned
//! state to show the failure side: fp64 promotion and dt halving are
//! tried before the run driver reaches for a checkpoint.

use pwdft_repro::ptim::resilience::{
    run, step_with_recovery, Checkpoint, CheckpointPolicy, Propagator, RecoveryPolicy,
};
use pwdft_repro::ptim::{HybridParams, LaserPulse, PtimConfig, Rk4Config, TdEngine, TdState};
use pwdft_repro::pwdft::{Cell, DftSystem, Wavefunction};
use pwdft_repro::pwnum::cmat::CMat;
use pwdft_repro::pwnum::complex::Complex64;

const STEPS: u64 = 12;
const INTERRUPT_AT: u64 = 7;

fn main() {
    // A small hybrid-functional system: 8-atom silicon, 4 mixed-occupancy
    // states, a weak laser pulse driving real dynamics.
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let mut phi = Wavefunction::random(&sys.grid, 4, 29);
    phi.orthonormalize_lowdin();
    let sigma = CMat::from_real_diag(&[1.0, 0.8, 0.5, 0.2]);
    let st = TdState { phi, sigma, time: 0.0 };
    let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    let laser = LaserPulse { e0: 0.02, omega: 0.15, t_center: 1.5, t_width: 0.8 };
    let prop = Propagator::Ptim(PtimConfig { dt: 0.3, max_scf: 25, tol_rho: 1e-8, ..Default::default() });
    let recovery = RecoveryPolicy::default();
    let dir = std::env::temp_dir().join(format!("ckpt_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Reference: the uninterrupted trajectory.
    let eng = TdEngine::new(&sys, laser.clone(), hyb);
    let reference = run(&eng, &st, 0, STEPS, &prop, &recovery).expect("reference run");
    println!("uninterrupted run: {} steps, final t = {:.3} a.u.", STEPS, reference.state.time);

    // The same run with a checkpoint every 3 steps, killed at step 7.
    let eng_ck = TdEngine::new(&sys, laser.clone(), hyb)
        .with_checkpoints(CheckpointPolicy::new(&dir, 3));
    let partial =
        run(&eng_ck, &st, 0, INTERRUPT_AT, &prop, &recovery).expect("interrupted run");
    let dip = |state: &TdState| {
        let rho = eng.eval(&state.phi, &state.sigma, state.time).rho;
        eng.dipole_x(&rho)
    };
    println!(
        "\ninterrupted at step {INTERRUPT_AT}: {} checkpoint(s) on disk, last dipole_x = {:+.6e}",
        partial.checkpoints_written,
        dip(&partial.state),
    );

    // "Restart the binary": recover the newest snapshot and resume.
    let ck = Checkpoint::load_latest(&dir, &st).expect("readable dir").expect("snapshot");
    println!(
        "restored checkpoint: step {}, t = {:.3} a.u., propagator tag {}, dt = {}",
        ck.meta.step, ck.meta.time, ck.meta.propagator, ck.meta.dt
    );
    let resumed =
        run(&eng_ck, &ck.state, ck.meta.step, STEPS, &prop, &recovery).expect("resumed run");

    // Deterministic dynamics: the resumed trace lands bitwise on the
    // reference.
    println!("\nfinal dipole (uninterrupted) = {:+.12e}", dip(&reference.state));
    println!("final dipole (restarted)    = {:+.12e}", dip(&resumed.state));
    let diff = resumed
        .state
        .phi
        .max_abs_diff(&reference.state.phi)
        .max(resumed.state.sigma.max_abs_diff(&reference.state.sigma));
    println!("max |Δ(Φ,σ)| vs uninterrupted = {diff:e} (bitwise ⇒ 0)");
    assert!(diff == 0.0, "restart must be bitwise identical");

    // The failure side: a NaN-poisoned state climbs the recovery ladder
    // (fp64 rerun, then 2/4 substeps at dt/2, dt/4) and reports cleanly.
    // RK4 propagates the NaN to a non-finite result the ladder can see
    // (the implicit propagators would abort inside their linear solves).
    let mut poisoned = st.clone();
    poisoned.phi.data[0] = Complex64 { re: f64::NAN, im: 0.0 };
    let rk4 = Propagator::Rk4(Rk4Config { dt: 0.05 });
    match step_with_recovery(&eng, &poisoned, &rk4, &recovery) {
        Ok(_) => unreachable!("NaN input cannot be repaired by retries"),
        Err(e) => println!("\npoisoned step, ladder exhausted as expected: {e}"),
    }

    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!("\ndone.");
}
