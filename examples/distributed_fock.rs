//! Distributed Fock exchange demo: the wavefunction exchange strategies
//! (Bcast / Ring / AsyncRing / the hierarchical RingOverlap) running for
//! real on the mpisim runtime, with identical physics and different
//! communication profiles. A modeled per-solve compute cost is charged to
//! the virtual clock so the nonblocking strategies have work to hide
//! their transfers behind — the Wait column shrinks and the overlap
//! column reports how much wire time vanished.
//!
//! ```bash
//! cargo run --release --example distributed_fock
//! # also dump every rank's communication profile as JSONL
//! cargo run --release --example distributed_fock -- --stats target/pwobs/distributed_fock_ranks.jsonl
//! ```

use pwdft_repro::mpisim::{Category, Cluster, NetworkModel, Topology};
use pwdft_repro::ptim::distributed::{
    dist_fock_apply, BandDistribution, ExchangePlan, ExchangeStrategy,
};
use pwdft_repro::pwdft::{Cell, DftSystem, FockOperator, Wavefunction};
use pwdft_repro::pwnum::cmat::CMat;
use pwdft_repro::pwnum::eigh;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stats_path = args.iter().position(|a| a == "--stats").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "target/pwobs/distributed_fock_ranks.jsonl".into())
    });
    if let Some(p) = &stats_path {
        pwdft_bench::truncate_rank_stats(p);
    }
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.5, [8, 8, 8]);
    let n_bands = 16;
    let p = 8;

    // A mixed state: Fermi-like σ with off-diagonals, then its natural
    // orbitals (the paper's diagonalization step).
    let phi = Wavefunction::random(&sys.grid, n_bands, 11);
    let occ: Vec<f64> =
        (0..n_bands).map(|i| 1.0 / (1.0 + ((i as f64 - 8.0) * 0.6).exp())).collect();
    let sigma = CMat::from_real_diag(&occ);
    let e = eigh(&sigma);
    let nat = phi.rotated(&e.vectors);
    let nat_r = nat.to_real_all(&sys.fft);
    let phi_r = phi.to_real_all(&sys.fft);
    let ng = sys.grid.len();

    // Serial reference.
    let fock = FockOperator::new(&sys.grid, 0.106);
    let serial = fock.apply_diag(&nat_r, &e.values, &phi_r);

    // A deliberately slow network so the strategy differences are visible.
    let net = NetworkModel {
        topology: Topology::Torus(vec![2, 2, 2]),
        hop_latency: 2e-6,
        sw_overhead: 2e-6,
        bandwidth: 5e8,
        shm_bandwidth: 5e9,
        shm_latency: 2e-7,
    };

    // Modeled cost of one pair Poisson solve, so overlap is visible.
    let solve_cost = 2.0e-5;
    println!("distributed VxΦ on {p} ranks ({n_bands} bands, {ng} grid points):\n");
    println!(
        "{:<12} {:>11} {:>12} {:>10} {:>10} {:>9} {:>16}",
        "strategy", "Bcast(ms)", "Sendrecv(ms)", "Wait(ms)", "total(ms)", "overlap", "max|Δ| vs serial"
    );
    for strategy in [
        ExchangeStrategy::Bcast,
        ExchangeStrategy::Ring,
        ExchangeStrategy::AsyncRing,
        ExchangeStrategy::RingOverlap,
    ] {
        let serial_ref = serial.clone();
        let nat_r = nat_r.clone();
        let phi_r = phi_r.clone();
        let values = e.values.clone();
        let sys_ref = &sys;
        let out = Cluster::new(p, 4, net.clone()).run(move |c| {
            let dist = BandDistribution::new(n_bands, c.size());
            let my = dist.range(c.rank());
            let fock = FockOperator::new(&sys_ref.grid, 0.106);
            let nat_local = nat_r[my.start * ng..my.end * ng].to_vec();
            let psi_local = phi_r[my.start * ng..my.end * ng].to_vec();
            let plan = ExchangePlan { strategy, solve_cost_s: solve_cost };
            let vx =
                dist_fock_apply(c, &fock, &dist, &nat_local, &values, &psi_local, plan);
            let want = &serial_ref[my.start * ng..my.end * ng];
            let err = pwdft_repro::pwnum::cvec::max_abs_diff(&vx, want);
            (
                c.stats.time(Category::Bcast) * 1e3,
                c.stats.time(Category::Sendrecv) * 1e3,
                c.stats.time(Category::Wait) * 1e3,
                c.now() * 1e3,
                c.stats.overlap_efficiency(),
                err,
            )
        });
        if let Some(p) = &stats_path {
            let reports: Vec<_> = out.iter().map(|(_, r)| r.clone()).collect();
            pwdft_bench::write_rank_stats_jsonl(p, &format!("{strategy:?}"), &reports)
                .expect("rank stats jsonl");
        }
        let agg = out.iter().fold(
            (0.0f64, 0.0f64, 0.0f64, 0.0f64, 1.0f64, 0.0f64),
            |a, ((b, s, w, t, o, e), _)| {
                (a.0.max(*b), a.1.max(*s), a.2.max(*w), a.3.max(*t), a.4.min(*o), a.5.max(*e))
            },
        );
        println!(
            "{:<12} {:>11.3} {:>12.3} {:>10.3} {:>10.3} {:>8.0}% {:>16.2e}",
            format!("{strategy:?}"),
            agg.0,
            agg.1,
            agg.2,
            agg.3,
            agg.4 * 100.0,
            agg.5
        );
    }
    if let Some(p) = &stats_path {
        println!("\nwrote per-rank communication profiles to {p}");
    }
    println!("\nall strategies compute identical physics; the virtual-clock network");
    println!("model shows the Bcast→Ring→Async communication migration of the");
    println!("paper's Table I (Sec. IV-B), and the hierarchical RingOverlap exchange");
    println!("hiding its remaining transfers behind the pair Poisson solves.");
}
