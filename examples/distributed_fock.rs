//! Distributed Fock exchange demo: the paper's three wavefunction
//! exchange strategies (Bcast / Ring / AsyncRing) running for real on the
//! mpisim runtime, with identical physics and different communication
//! profiles.
//!
//! ```bash
//! cargo run --release --example distributed_fock
//! ```

use pwdft_repro::mpisim::{Category, Cluster, NetworkModel, Topology};
use pwdft_repro::ptim::distributed::{dist_fock_apply, BandDistribution, ExchangeStrategy};
use pwdft_repro::pwdft::{Cell, DftSystem, FockOperator, Wavefunction};
use pwdft_repro::pwnum::cmat::CMat;
use pwdft_repro::pwnum::eigh;

fn main() {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.5, [8, 8, 8]);
    let n_bands = 16;
    let p = 8;

    // A mixed state: Fermi-like σ with off-diagonals, then its natural
    // orbitals (the paper's diagonalization step).
    let phi = Wavefunction::random(&sys.grid, n_bands, 11);
    let occ: Vec<f64> =
        (0..n_bands).map(|i| 1.0 / (1.0 + ((i as f64 - 8.0) * 0.6).exp())).collect();
    let sigma = CMat::from_real_diag(&occ);
    let e = eigh(&sigma);
    let nat = phi.rotated(&e.vectors);
    let nat_r = nat.to_real_all(&sys.fft);
    let phi_r = phi.to_real_all(&sys.fft);
    let ng = sys.grid.len();

    // Serial reference.
    let fock = FockOperator::new(&sys.grid, 0.106);
    let serial = fock.apply_diag(&nat_r, &e.values, &phi_r);

    // A deliberately slow network so the strategy differences are visible.
    let net = NetworkModel {
        topology: Topology::Torus(vec![2, 2, 2]),
        hop_latency: 2e-6,
        sw_overhead: 2e-6,
        bandwidth: 5e8,
        shm_bandwidth: 5e9,
        shm_latency: 2e-7,
    };

    println!("distributed VxΦ on {p} ranks ({n_bands} bands, {ng} grid points):\n");
    println!("{:<10} {:>12} {:>12} {:>12} {:>12} {:>14}", "strategy", "Bcast(ms)", "Sendrecv(ms)", "Wait(ms)", "total(ms)", "max|Δ| vs serial");
    for strategy in
        [ExchangeStrategy::Bcast, ExchangeStrategy::Ring, ExchangeStrategy::AsyncRing]
    {
        let serial_ref = serial.clone();
        let nat_r = nat_r.clone();
        let phi_r = phi_r.clone();
        let values = e.values.clone();
        let sys_ref = &sys;
        let out = Cluster::new(p, 4, net.clone()).run(move |c| {
            let dist = BandDistribution::new(n_bands, c.size());
            let my = dist.range(c.rank());
            let fock = FockOperator::new(&sys_ref.grid, 0.106);
            let nat_local = nat_r[my.start * ng..my.end * ng].to_vec();
            let psi_local = phi_r[my.start * ng..my.end * ng].to_vec();
            let vx =
                dist_fock_apply(c, &fock, &dist, &nat_local, &values, &psi_local, strategy);
            let want = &serial_ref[my.start * ng..my.end * ng];
            let err = pwdft_repro::pwnum::cvec::max_abs_diff(&vx, want);
            (
                c.stats.time(Category::Bcast) * 1e3,
                c.stats.time(Category::Sendrecv) * 1e3,
                c.stats.time(Category::Wait) * 1e3,
                err,
            )
        });
        let agg = out.iter().fold((0.0f64, 0.0f64, 0.0f64, 0.0f64), |a, ((b, s, w, e), _)| {
            (a.0.max(*b), a.1.max(*s), a.2.max(*w), a.3.max(*e))
        });
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>14.2e}",
            format!("{strategy:?}"),
            agg.0,
            agg.1,
            agg.2,
            agg.0 + agg.1 + agg.2,
            agg.3
        );
    }
    println!("\nall three strategies compute identical physics; the virtual-clock");
    println!("network model shows the Bcast→Ring→Async communication migration of");
    println!("the paper's Table I (Sec. IV-B).");
}
