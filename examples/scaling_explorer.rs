//! Scaling explorer: interactively sweep the calibrated performance model
//! over system sizes, node counts and optimization stages.
//!
//! ```bash
//! cargo run --release --example scaling_explorer -- [atoms] [nodes]
//! ```
//! Defaults: 1536 atoms, node sweep on both platforms.

use pwdft_repro::perfmodel::{step_time, Platform, Variant, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let atoms: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1536);
    let fixed_nodes: Option<usize> = args.get(2).and_then(|s| s.parse().ok());
    let w = Workload::silicon(atoms);
    println!(
        "workload: {} Si atoms, {} orbitals, Ng = {:.0} (Ecut 10 Ha)",
        w.n_atoms, w.n_orbitals, w.ng
    );

    for pf in [Platform::fugaku_arm(), Platform::gpu_a100()] {
        println!("\n== {} ==", pf.name);
        let nodes_list: Vec<usize> = match fixed_nodes {
            Some(n) => vec![n],
            None => {
                let mut v = Vec::new();
                let mut n = (w.n_orbitals / (40 * pf.ranks_per_node)).max(1);
                for _ in 0..6 {
                    v.push(n);
                    n *= 2;
                }
                v
            }
        };
        println!(
            "{:>7} {:>10} {:>10} {:>10} {:>10} {:>10}  {}",
            "nodes", "BL", "Diag", "ACE", "Ring", "Async", "comm% (Async)"
        );
        for nodes in nodes_list {
            let times: Vec<f64> =
                Variant::ALL.iter().map(|&v| step_time(&pf, &w, nodes, v).total()).collect();
            let ratio = step_time(&pf, &w, nodes, Variant::AceAsync).comm_ratio();
            println!(
                "{:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}  {:.1}%",
                nodes,
                times[0],
                times[1],
                times[2],
                times[3],
                times[4],
                100.0 * ratio
            );
        }
    }
    println!("\n(all times are modeled seconds per 50 as step; see DESIGN.md §7 for calibration)");
}
