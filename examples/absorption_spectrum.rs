//! Optical absorption from real-time dynamics (the classic rt-TDDFT
//! application the paper's introduction motivates).
//!
//! A weak delta-kick `ψ → e^{i k·x_saw} ψ` polarizes the system at t=0;
//! the field-free dipole response d(t) is then propagated with PT-IM and
//! Fourier-transformed into the absorption strength
//! `S(ω) ∝ ω·Im[d(ω)]/k`.
//!
//! ```bash
//! cargo run --release --example absorption_spectrum
//! ```

use pwdft_repro::ptim::laser::{sawtooth_x, AU_TIME_FS};
use pwdft_repro::ptim::{ptim_step, HybridParams, LaserPulse, PtimConfig, TdEngine, TdState};
use pwdft_repro::pwdft::{scf_lda, Cell, DftSystem, ScfConfig};
use pwdft_repro::pwnum::complex::Complex64;

fn main() {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 3.0, [10, 10, 10]);
    let cfg = ScfConfig { n_bands: 20, temperature_k: 300.0, ..Default::default() };
    println!("ground state (LDA, 300 K)...");
    let gs = scf_lda(&sys, &cfg);
    println!("E = {:.6} Ha after {} iterations", gs.energies.total(), gs.iterations);

    // Delta kick along x: multiply each orbital by exp(i k x).
    let kick = 1e-3;
    let x = sawtooth_x(&sys.grid);
    let mut state = TdState::from_ground_state(&gs);
    {
        let fft = &sys.fft;
        let ng = sys.grid.len();
        let mut real = state.phi.to_real_all(fft);
        for band in real.chunks_mut(ng) {
            for (z, &xi) in band.iter_mut().zip(&x) {
                *z = *z * Complex64::cis(kick * xi);
            }
        }
        state.phi = pwdft_repro::pwdft::Wavefunction::from_real(&sys.grid, fft, real);
        state.phi.mask(&sys.grid);
        state.phi.orthonormalize_lowdin();
    }

    // Field-free propagation, recording the dipole (semilocal functional
    // for speed; swap HybridParams::default() in for the hybrid spectrum).
    let eng = TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.106, ..Default::default() });
    let dt = 4.0; // a.u. (~97 as) — the PT gauge tolerates large steps
    let n_steps = 96;
    let ptim_cfg = PtimConfig { dt, max_scf: 25, tol_rho: 1e-8, ..Default::default() };
    let mut dipole = Vec::with_capacity(n_steps + 1);
    let ev0 = eng.eval(&state.phi, &state.sigma, 0.0);
    let d0 = eng.dipole_x(&ev0.rho);
    dipole.push(0.0);
    println!("propagating {n_steps} steps of {:.1} as...", dt * pwdft_repro::ptim::laser::AU_TIME_AS);
    for step in 0..n_steps {
        let (next, stats) = ptim_step(&eng, &state, &ptim_cfg);
        state = next;
        let ev = eng.eval(&state.phi, &state.sigma, state.time);
        dipole.push(eng.dipole_x(&ev.rho) - d0);
        if (step + 1) % 16 == 0 {
            println!("  t = {:5.2} fs (SCF {}, residual {:.1e})",
                state.time * AU_TIME_FS, stats.scf_iters, stats.residual);
        }
    }

    // Discrete Fourier transform of the damped dipole signal.
    println!("\n# absorption strength S(ω) ∝ ω·Im d(ω)/kick");
    println!("# omega(eV)  S(arb)");
    let damping = 0.05; // exponential window
    let t_total = dt * n_steps as f64;
    for m in 1..40 {
        let omega = 2.0 * std::f64::consts::PI * m as f64 / t_total;
        let mut acc = Complex64::ZERO;
        for (k, d) in dipole.iter().enumerate() {
            let t = k as f64 * dt;
            let w = (-damping * t / t_total * 10.0).exp();
            acc += Complex64::cis(omega * t).scale(d * w);
        }
        let s = omega * acc.im * dt / kick;
        let ev = omega * 27.211_386;
        let bar_len = (s.abs() * 3.0).min(60.0) as usize;
        println!("{ev:8.3}  {s:+.4e}  {}", "#".repeat(bar_len));
    }
    println!("\npeaks mark dipole-allowed transitions of the silicon cell;");
    println!("with the hybrid functional they shift to larger gaps (the paper's motivation).");
}
