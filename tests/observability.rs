//! End-to-end observability: an instrumented hybrid PT-IM run must
//! account for ≥ 95% of its stepping wall time in the four paper phases
//! (FFT/GEMM/exchange/comm — the Fig. 9 breakdown), export a loadable
//! chrome trace, and stream one JSONL metrics record per step.
//!
//! Everything lives in ONE test function: the `pwobs` recorder is
//! process-global, and cargo runs a file's tests concurrently — separate
//! tests toggling `set_enabled` would race each other's windows.

use pwdft_repro::ptim::{ptim_step, HybridParams, LaserPulse, PtimConfig, TdEngine, TdState};
use pwdft_repro::pwdft::{Cell, DftSystem, Wavefunction};
use pwdft_repro::pwnum::cmat::CMat;
use pwdft_repro::pwobs;
use pwdft_repro::pwobs::export::{
    chrome_trace_json, phase_table, tracked_fraction, StepRecord, StepStream,
};
use std::time::Instant;

#[test]
fn instrumented_hybrid_run_accounts_for_the_wall_time() {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let mut phi = Wavefunction::random(&sys.grid, 4, 11);
    phi.orthonormalize_lowdin();
    let sigma = CMat::from_real_diag(&[1.0, 0.8, 0.5, 0.2]);
    let st0 = TdState { phi, sigma, time: 0.0 };
    let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    let eng = TdEngine::new(&sys, LaserPulse::off(), hyb);
    let cfg = PtimConfig { dt: 0.3, max_scf: 25, tol_rho: 1e-8, ..Default::default() };

    // Warm-up OUTSIDE the recording window (pool growth, lazy FFT plans
    // — one-time costs that belong to no phase).
    let (warm, _) = ptim_step(&eng, &st0, &cfg);

    pwobs::set_enabled(true);
    pwobs::reset();
    let mut stream = StepStream::new(Vec::new());
    let mut state = warm;
    let n_steps = 3u64;
    let mut total_s = 0.0;
    for step in 1..=n_steps {
        let t0 = Instant::now();
        let (next, stats) = ptim_step(&eng, &state, &cfg);
        let wall_s = t0.elapsed().as_secs_f64();
        total_s += wall_s;
        state = next;
        let rec = StepRecord::new(step)
            .f("wall_s", wall_s)
            .u("scf_iters", stats.scf_iters as u64)
            .u("fock_applies", stats.fock_applies as u64)
            .b("converged", stats.converged)
            .u("pool_peak_bytes", stats.pool_peak_bytes as u64);
        stream.emit(&rec).expect("Vec<u8> sink cannot fail");
        // Satellite: the pool high-water mark must surface per step (the
        // Blocked default backend allocates exchange/FFT buffers from
        // its arenas, so a hybrid step always has a nonzero peak).
        assert!(stats.pool_peak_bytes > 0, "pool peak missing from StepStats");
    }
    pwobs::set_enabled(false);
    let rec = pwobs::global();

    // Acceptance: FFT + GEMM + exchange + comm self time covers ≥ 95%
    // of the measured stepping wall time.
    let frac = tracked_fraction(rec, total_s);
    assert!(
        frac >= 0.95,
        "tracked fraction {frac:.4} < 0.95 over {total_s:.4}s\n{}",
        phase_table(rec, total_s)
    );
    // ...and no phase can claim more than the wall clock on one thread.
    assert!(frac <= 1.05, "tracked fraction {frac:.4} over-attributes");

    // Chrome trace: loadable JSON array shape with the step span present.
    let trace = chrome_trace_json(rec);
    assert!(trace.starts_with("{\"traceEvents\": ["), "bad trace head");
    assert!(trace.contains("\"ph\": \"X\""), "no duration events");
    assert!(trace.contains("step.ptim"), "step span missing from timeline");
    assert!(trace.contains("\"gemm.gemm\"") || trace.contains("\"fft."), "backend spans missing");
    assert_eq!(rec.dropped_events(), 0, "timeline overflowed in a 3-step run");

    // JSONL stream: one line per step, each a flat JSON object.
    assert_eq!(stream.lines(), n_steps);
    let bytes = stream.into_inner();
    let text = std::str::from_utf8(&bytes).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), n_steps as usize);
    for (i, line) in lines.iter().enumerate() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line {i} not an object: {line}");
        assert!(line.contains(&format!("\"step\": {}", i + 1)), "step counter wrong: {line}");
        assert!(line.contains("\"pool_peak_bytes\""), "pool peak missing: {line}");
    }
}
