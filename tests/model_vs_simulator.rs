//! Cross-validation of the analytic performance model against the
//! discrete-event mpisim runtime: the closed-form communication costs of
//! `perfmodel::comm` must track the virtual clocks the simulator actually
//! produces for the same patterns at small rank counts.

use pwdft_repro::mpisim::{Category, Cluster, NetworkModel, Topology};
use pwdft_repro::perfmodel::{comm, Platform};

/// A platform whose network parameters exactly mirror `net` so the
/// closed forms and the simulator price messages identically.
fn platform_like(net: &NetworkModel) -> Platform {
    let mut pf = Platform::fugaku_arm();
    pf.net_bw = net.bandwidth;
    pf.net_latency = net.hop_latency + net.sw_overhead;
    pf.bcast_penalty = 1.0;
    pf.ranks_per_node = 1;
    pf
}

fn test_net() -> NetworkModel {
    NetworkModel {
        topology: Topology::FullyConnected,
        hop_latency: 1e-6,
        sw_overhead: 0.0,
        bandwidth: 1e9,
        shm_bandwidth: 1e9,
        shm_latency: 1e-6,
    }
}

#[test]
fn ring_formula_matches_simulator() {
    let net = test_net();
    let pf = platform_like(&net);
    for p in [2usize, 4, 8, 16] {
        let bytes = 1_000_000usize;
        let out = Cluster::new(p, 1, net.clone()).run(move |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let mut block = vec![0u8; bytes];
            for step in 0..c.size() - 1 {
                block = c.sendrecv(left, right, step as u64, block);
            }
            c.stats.time(Category::Sendrecv)
        });
        let measured = out.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
        let model = comm::ring_time(&pf, p, bytes as f64);
        let ratio = measured / model;
        assert!(
            (0.5..2.0).contains(&ratio),
            "p={p}: measured {measured:.6} vs model {model:.6} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn bcast_cheaper_than_per_rank_bcasts_like_model_predicts() {
    // The *relative* claim behind the paper's ring optimization: per-root
    // broadcasts of everyone's block cost more than one ring rotation.
    let net = test_net();
    let pf = platform_like(&net);
    let p = 8;
    let bytes = 500_000usize;

    let out = Cluster::new(p, 1, net.clone()).run(move |c| {
        // All-roots broadcast (the baseline Fock exchange pattern).
        for root in 0..c.size() {
            let payload = if c.rank() == root { Some(vec![0u8; bytes]) } else { None };
            let _ = c.bcast(root, payload);
        }
        let t_bcast = c.stats.time(Category::Bcast);
        // Ring rotation of the same data volume.
        let right = (c.rank() + 1) % c.size();
        let left = (c.rank() + c.size() - 1) % c.size();
        let mut block = vec![0u8; bytes];
        for step in 0..c.size() - 1 {
            block = c.sendrecv(left, right, 1000 + step as u64, block);
        }
        let t_ring = c.stats.time(Category::Sendrecv);
        (t_bcast, t_ring)
    });
    let bcast = out.iter().map(|((b, _), _)| *b).fold(0.0f64, f64::max);
    let ring = out.iter().map(|((_, r), _)| *r).fold(0.0f64, f64::max);
    assert!(bcast > ring, "measured bcast {bcast} must exceed ring {ring}");

    // Model agrees on the direction and rough magnitude of the ratio.
    let model_bcast: f64 = (0..p).map(|_| comm::bcast_time(&pf, p, bytes as f64)).sum();
    let model_ring = comm::ring_time(&pf, p, bytes as f64);
    let measured_ratio = bcast / ring;
    let model_ratio = model_bcast / model_ring;
    assert!(
        measured_ratio / model_ratio > 0.3 && measured_ratio / model_ratio < 3.0,
        "ratio mismatch: measured {measured_ratio:.2} vs model {model_ratio:.2}"
    );
}

#[test]
fn allreduce_formula_tracks_simulator() {
    let net = test_net();
    let pf = platform_like(&net);
    for p in [2usize, 4, 8] {
        let n = 100_000usize;
        let out = Cluster::new(p, 1, net.clone()).run(move |c| {
            let v = vec![1.0f64; n];
            let _ = c.allreduce(v);
            c.stats.time(Category::Allreduce)
        });
        let measured = out.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
        let model = comm::allreduce_time(&pf, p, (n * 8) as f64);
        // The simulator uses a binomial tree (log p bandwidth passes);
        // the model prices the pipelined production algorithm (2 passes).
        // They must agree within the log2(p) algorithmic factor.
        let ratio = measured / model;
        let bound = comm::log2_ceil(p).max(1.0) * 1.5;
        assert!(
            ratio > 0.3 && ratio < bound + 0.5,
            "p={p}: measured {measured:.6} vs model {model:.6} (ratio {ratio:.2}, bound {bound})"
        );
    }
}

#[test]
fn async_ring_overlap_reduces_visible_time() {
    // The paper's Sec. IV-B2 claim, measured: with compute between ring
    // steps, the async ring's Wait time is below the synchronous ring's
    // Sendrecv time.
    let net = test_net();
    let p = 8;
    let bytes = 2_000_000usize;
    let compute_per_step = 1.0e-3; // 1 ms of overlappable work

    let sync_out = Cluster::new(p, 1, net.clone()).run(move |c| {
        let right = (c.rank() + 1) % c.size();
        let left = (c.rank() + c.size() - 1) % c.size();
        let mut block = vec![0u8; bytes];
        for step in 0..c.size() - 1 {
            c.compute(compute_per_step);
            block = c.sendrecv(left, right, step as u64, block);
        }
        c.compute(compute_per_step);
        c.stats.time(Category::Sendrecv)
    });
    let async_out = Cluster::new(p, 1, net.clone()).run(move |c| {
        let right = (c.rank() + 1) % c.size();
        let left = (c.rank() + c.size() - 1) % c.size();
        let mut block = vec![0u8; bytes];
        for step in 0..c.size() - 1 {
            let rreq = c.irecv(left, step as u64);
            let _ = c.isend(right, step as u64, block.clone());
            c.compute(compute_per_step);
            block = c.wait(rreq).expect("ring block");
        }
        c.compute(compute_per_step);
        c.stats.time(Category::Wait)
    });
    let t_sync = sync_out.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    let t_wait = async_out.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    assert!(
        t_wait < 0.8 * t_sync,
        "overlap must hide transfer time: wait {t_wait:.6} vs sendrecv {t_sync:.6}"
    );
}

#[test]
fn overlap_schedule_prediction_tracks_measured_ring_overlap_step() {
    // Calibration gate for the hierarchical subsystem: the overlap-aware
    // closed form (`perfmodel::comm::ring_overlap_time`) must predict the
    // mpisim-measured RingOverlap exchange time on the bench topology
    // (the `dist_overlap` bench network) within 20%, at every bench rank
    // count.
    use pwdft_repro::ptim::distributed::{
        dist_fock_apply, BandDistribution, ExchangePlan, ExchangeStrategy,
    };
    use pwdft_repro::pwdft::{Cell, DftSystem, FockOperator, Wavefunction};

    let net = test_net();
    let pf = platform_like(&net);
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let ng = sys.grid.len();
    let n_bands = 16;
    let phi = Wavefunction::random(&sys.grid, n_bands, 3);
    let nat_r = phi.to_real_all(&sys.fft);
    let psi = Wavefunction::random(&sys.grid, n_bands, 4);
    let psi_r = psi.to_real_all(&sys.fft);
    let occ = vec![1.0f64; n_bands];
    let solve_cost = 2e-5;

    for p in [4usize, 8, 16] {
        let nb = n_bands / p;
        let out = Cluster::new(p, 1, net.clone()).run(|c| {
            let dist = BandDistribution::new(n_bands, c.size());
            let my = dist.range(c.rank());
            let fock = FockOperator::new(&sys.grid, 0.2);
            let nat_local = nat_r[my.start * ng..my.end * ng].to_vec();
            let psi_local = psi_r[my.start * ng..my.end * ng].to_vec();
            let plan = ExchangePlan {
                strategy: ExchangeStrategy::RingOverlap,
                solve_cost_s: solve_cost,
            };
            let _ = dist_fock_apply(c, &fock, &dist, &nat_local, &occ, &psi_local, plan);
            c.now()
        });
        let measured = out.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
        // One block: nb source bands × nb local targets solves; wire
        // block: nb real-space bands.
        let compute_per_block = (nb * nb) as f64 * solve_cost;
        let block_bytes = (nb * ng * 16) as f64;
        let predicted = comm::ring_overlap_time(&pf, p, block_bytes, compute_per_block);
        let ratio = measured / predicted;
        assert!(
            (0.8..1.25).contains(&ratio),
            "p={p}: measured {measured:.6} vs predicted {predicted:.6} (ratio {ratio:.3})"
        );
    }
}

#[test]
fn dist_step_model_tracks_simulator_at_scale() {
    // The Fig. 10/11 agreement gate: the two-level closed form
    // (`perfmodel::dist_step_sim_time`) must predict the virtual-clock
    // time of the *real* `dist_ptim_step` within 25% at every paper-scale
    // point — both the strong series (fixed 64 bands) and the weak series
    // (bands = ranks/8). Both sides come from the bench crate's canonical
    // dist-scale config (si8, 8x8x8 grid, 4 ranks/node, Fugaku torus,
    // RingOverlap + SHM), so this test gates exactly what the figure
    // binaries emit into BENCH_dist_scale.json.
    use pwdft_bench::{dist_scale_model_s, measure_dist_step};

    let points = [(128usize, 64usize), (256, 64), (512, 64), (128, 16), (256, 32)];
    for (p, n_bands) in points {
        let measured = measure_dist_step(p, n_bands);
        let model = dist_scale_model_s(p, n_bands);
        let ratio = measured / model;
        assert!(
            (0.75..1.25).contains(&ratio),
            "p={p}, bands={n_bands}: measured {measured:.6} vs model {model:.6} \
             (ratio {ratio:.3} outside the 25% gate)"
        );
    }
}

#[test]
fn node_aware_allreduce_cheaper_on_simulator_too() {
    let mut net = test_net();
    net.shm_bandwidth = 1e11; // fast intra-node
    net.shm_latency = 1e-8;
    let p = 16;
    let n = 200_000usize;
    let flat = Cluster::new(p, 1, net.clone()).run(move |c| {
        let _ = c.allreduce(vec![1.0f64; n]);
        c.stats.time(Category::Allreduce)
    });
    let aware = Cluster::new(p, 4, net.clone()).run(move |c| {
        let _ = c.allreduce_node_aware(vec![1.0f64; n]);
        c.stats.time(Category::Allreduce)
    });
    let t_flat = flat.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    let t_aware = aware.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    assert!(
        t_aware < t_flat,
        "node-aware allreduce {t_aware:.6} should beat flat {t_flat:.6}"
    );
}
