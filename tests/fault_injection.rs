//! Fault injection end-to-end: seeded message faults are deterministic
//! and attributed in [`mpisim::Stats`]; a scripted rank crash during
//! `dist_ptim_step` surfaces as a clean attributed error on the
//! survivors (never a deadlock); and the full resilience story closes —
//! after the crash, the run restores from a checkpoint and completes
//! bitwise identical to a never-interrupted run.

use pwdft_repro::mpisim::{Cluster, EdgeFault, EdgeFaultKind, FaultPlan};
use pwdft_repro::ptim::distributed::{
    dist_ptim_step, gather_state, scatter_state, BandDistribution, DistConfig,
    ExchangeStrategy,
};
use pwdft_repro::ptim::resilience::{Checkpoint, Propagator};
use pwdft_repro::ptim::{HybridParams, LaserPulse, PtimConfig, TdState};
use pwdft_repro::pwdft::{Cell, DftSystem, Wavefunction};
use pwdft_repro::pwnum::cmat::CMat;
use pwdft_repro::pwnum::complex::c64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

const RANKS: usize = 3;
const DT: f64 = 0.2;

fn fixture() -> (DftSystem, TdState) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
    let mut phi = Wavefunction::random(&sys.grid, 4, 23);
    phi.orthonormalize_lowdin();
    let mut sigma = CMat::from_real_diag(&[1.0, 0.8, 0.5, 0.2]);
    sigma[(0, 1)] = c64(0.05, 0.02);
    sigma[(1, 0)] = c64(0.05, -0.02);
    (sys, TdState { phi, sigma, time: 0.0 })
}

fn dist_cfg() -> DistConfig {
    DistConfig {
        strategy: ExchangeStrategy::Ring,
        use_shm: false,
        hybrid: HybridParams { alpha: 0.0, omega: 0.2, ..Default::default() },
        solve_cost_s: 0.0,
    }
}

/// Steps the distributed propagator from `start` over `steps`, calling
/// [`mpisim::Comm::begin_step`] per step so scripted faults fire at the
/// intended application step; returns rank 0's gathered final state.
fn run_segment(cluster: Cluster, sys: &DftSystem, start: &TdState, steps: std::ops::Range<u64>) -> TdState {
    let laser = LaserPulse::off();
    let cfg = dist_cfg();
    let mut out = cluster.run(|c| {
        let dist = BandDistribution::new(4, c.size());
        let mut local = scatter_state(c, start, &dist);
        for step in steps.clone() {
            c.begin_step(step);
            let (next, _) = dist_ptim_step(c, sys, &laser, &cfg, &dist, &local, DT, 6, 1e-7);
            local = next;
        }
        gather_state(c, &local, &dist)
    });
    out.swap_remove(0).0
}

fn state_diff(a: &TdState, b: &TdState) -> f64 {
    a.phi
        .max_abs_diff(&b.phi)
        .max(a.sigma.max_abs_diff(&b.sigma))
        .max((a.time - b.time).abs())
}

#[test]
fn seeded_drop_faults_are_deterministic_and_counted() {
    // Rank 0 fires 40 sends through a 50% lossy edge, reads its own
    // drop count from the stats, and tells rank 1 how many survived so
    // the receive loop terminates deterministically.
    let run_with_seed = |seed: u64| {
        let plan = FaultPlan::new(seed).edge(EdgeFault {
            src: 0,
            dst: 1,
            tag: Some(1),
            kind: EdgeFaultKind::Drop,
            probability: 0.5,
        });
        let out = Cluster::ideal(2).with_faults(plan).run(|c| {
            if c.rank() == 0 {
                for i in 0..40u64 {
                    c.send(1, 1, i);
                }
                let dropped = c.stats.faults_dropped;
                c.send(1, 2, dropped);
                dropped
            } else {
                let dropped: u64 = c.recv(0, 2);
                for _ in 0..(40 - dropped) {
                    let _: u64 = c.recv(0, 1);
                }
                dropped
            }
        });
        (out[0].0, out[0].1.stats.faults_dropped)
    };
    let (k1, counted) = run_with_seed(7);
    let (k2, _) = run_with_seed(7);
    assert_eq!(k1, k2, "same seed must drop the same messages");
    assert_eq!(k1, counted, "drops must be attributed in Stats");
    assert!(k1 > 0 && k1 < 40, "a 50% edge should drop some but not all: {k1}");
}

#[test]
fn duplicate_and_delay_faults_are_attributed() {
    let plan = FaultPlan::new(3)
        .duplicate_edge(0, 1, Some(5))
        .delay_edge(1, 0, Some(6), 0.25);
    let out = Cluster::ideal(2).with_faults(plan).run(|c| {
        if c.rank() == 0 {
            c.send(1, 5, 42u64);
            let echoed: u64 = c.recv(1, 6);
            assert_eq!(echoed, 42);
        } else {
            let a: u64 = c.recv(0, 5);
            let b: u64 = c.recv(0, 5); // the injected duplicate
            assert_eq!(a, b);
            c.send(0, 6, a);
        }
        (c.stats.faults_duplicated, c.stats.faults_delayed, c.stats.fault_delay_s)
    });
    assert_eq!(out[0].0 .0, 1, "rank 0's duplicate must be counted");
    assert_eq!(out[1].0 .1, 1, "rank 1's delayed echo must be counted");
    assert!(out[1].0 .2 >= 0.25, "delay seconds must be attributed");
}

#[test]
fn rank_crash_during_dist_ptim_step_is_attributed_not_deadlocked() {
    let (sys, st) = fixture();
    let cluster = Cluster::ideal(RANKS).with_faults(FaultPlan::new(11).crash(1, 1));
    let err = catch_unwind(AssertUnwindSafe(|| {
        run_segment(cluster, &sys, &st, 0..3);
    }))
    .expect_err("a crashed peer must abort the run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    // The surfaced error is a survivor's view: it names the dead rank,
    // the operation that needed it, and the application step.
    assert!(
        msg.contains("peer rank terminated") || msg.contains("destination rank terminated"),
        "unattributed failure: {msg}"
    );
    assert!(msg.contains("rank 1 (node"), "dead rank not named: {msg}");
    assert!(msg.contains("app step 1"), "application step not named: {msg}");
}

#[test]
fn run_restores_from_checkpoint_after_a_crash_and_completes() {
    let (sys, st) = fixture();
    let dir: PathBuf = std::env::temp_dir()
        .join(format!("fault_restore_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The never-interrupted reference trajectory.
    let want = run_segment(Cluster::ideal(RANKS), &sys, &st, 0..5);

    // Segment 1 completes and checkpoints at step 2...
    let mid = run_segment(Cluster::ideal(RANKS), &sys, &st, 0..2);
    let prop = Propagator::Ptim(PtimConfig { dt: DT, ..Default::default() });
    Checkpoint::save(&dir, 2, &mid, &prop, &LaserPulse::off()).expect("checkpoint");

    // ...segment 2 loses rank 1 at step 3 (attributed, not a deadlock)...
    let cluster = Cluster::ideal(RANKS).with_faults(FaultPlan::new(5).crash(1, 3));
    let err = catch_unwind(AssertUnwindSafe(|| {
        run_segment(cluster, &sys, &mid, 2..5);
    }))
    .expect_err("the crash must abort segment 2");
    drop(err);

    // ...and the restarted job restores the snapshot on fresh hardware
    // and finishes in agreement with the uninterrupted run. (Serial
    // restarts are bitwise — see tests/checkpoint_restart.rs; here the
    // restart re-replicates rank 0's σ to every rank, and the ranks'
    // σ copies differ at the 1e-10 level because Anderson coefficients
    // are computed from each rank's packed local-Φ+σ vector, so the
    // continued trajectory agrees to that noise floor rather than
    // bitwise.)
    let ck = Checkpoint::load_latest(&dir, &st).expect("readable dir").expect("snapshot");
    assert_eq!(ck.meta.step, 2);
    let got = run_segment(Cluster::ideal(RANKS), &sys, &ck.state, 2..5);
    let diff = state_diff(&got, &want);
    assert!(diff < 1e-8, "restored run deviates from uninterrupted run by {diff:e}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
