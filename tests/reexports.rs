//! Manifest-regression smoke test: the umbrella crate must re-export
//! all six library crates. If a future workspace edit drops a
//! dependency or a `pub use`, this fails at compile time — cheaply,
//! before any physics test runs.

#[test]
fn umbrella_reexports_all_six_crates() {
    // One load-bearing path per re-exported crate, spelled through the
    // umbrella. Using the values keeps the imports from being
    // dead-code-eliminated by an overzealous refactor.
    let z = pwdft_repro::pwnum::c64(3.0, 4.0);
    assert!((z.abs() - 5.0).abs() < 1e-12);

    let fft = pwdft_repro::pwfft::Fft3::new(4, 4, 4);
    assert_eq!(fft.len(), 64);

    let cluster = pwdft_repro::mpisim::Cluster::ideal(2);
    let out = cluster.run(|c| c.allreduce(vec![1.0f64]));
    assert!(out.iter().all(|(v, _)| (v[0] - 2.0).abs() < 1e-12));

    let cell = pwdft_repro::pwdft::Cell::silicon_supercell(1, 1, 1);
    let sys = pwdft_repro::pwdft::DftSystem::with_dims(cell, 2.0, [6, 6, 6]);
    assert!(sys.grid.len() > 0);

    let pulse = pwdft_repro::ptim::LaserPulse::paper_pulse(0.01, 10.0);
    assert!(pulse.field(0.0).is_finite());

    let wl = pwdft_repro::perfmodel::Workload::silicon(48);
    assert!(wl.n_atoms == 48);
}
