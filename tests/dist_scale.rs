//! Paper-scale distributed correctness: the real distributed code paths
//! — RingOverlap Fock exchange and the full `dist_ptim_step` — executed
//! at 128 simulated ranks (32 Fugaku-like nodes at 4 ranks/node, torus
//! network, hierarchical collectives), validated against the serial
//! reference. The O(active-ranks) event loop is what makes these rank
//! counts cheap enough for the tier-1 suite.

use pwdft_repro::mpisim::{Cluster, NetworkModel};
use pwdft_repro::ptim::distributed::{
    dist_fock_apply, dist_ptim_step, gather_state, scatter_state, BandDistribution, DistConfig,
    ExchangeStrategy,
};
use pwdft_repro::ptim::engine::HybridParams;
use pwdft_repro::ptim::laser::LaserPulse;
use pwdft_repro::ptim::state::TdState;
use pwdft_repro::pwdft::{Cell, DftSystem, FockOperator, Wavefunction};
use pwdft_repro::pwnum::cmat::CMat;

const RPN: usize = 4;

fn fugaku_net(p: usize) -> NetworkModel {
    NetworkModel::fugaku(p.div_ceil(RPN))
}

#[test]
fn ring_overlap_fock_matches_serial_at_128_ranks() {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let ng = sys.grid.len();
    let n_bands = 32;
    let phi = Wavefunction::random(&sys.grid, n_bands, 11);
    let nat_r = phi.to_real_all(&sys.fft);
    let psi = Wavefunction::random(&sys.grid, n_bands, 12);
    let psi_r = psi.to_real_all(&sys.fft);
    let occ: Vec<f64> = (0..n_bands).map(|i| 1.0 / (1.0 + 0.2 * i as f64)).collect();
    let fock = FockOperator::new(&sys.grid, 0.2);
    let serial = fock.apply_diag(&nat_r, &occ, &psi_r);

    let p = 128;
    let sys_ref = &sys;
    let nat_ref = &nat_r;
    let psi_ref = &psi_r;
    let occ_ref = &occ;
    let serial_ref = &serial;
    let out = Cluster::new(p, RPN, fugaku_net(p)).run(move |c| {
        let dist = BandDistribution::new(n_bands, c.size());
        let my = dist.range(c.rank());
        let fock = FockOperator::new(&sys_ref.grid, 0.2);
        let nat_local = nat_ref[my.start * ng..my.end * ng].to_vec();
        let psi_local = psi_ref[my.start * ng..my.end * ng].to_vec();
        let vx = dist_fock_apply(
            c,
            &fock,
            &dist,
            &nat_local,
            occ_ref,
            &psi_local,
            ExchangeStrategy::RingOverlap,
        );
        let want = &serial_ref[my.start * ng..my.end * ng];
        pwdft_repro::pwnum::cvec::max_abs_diff(&vx, want)
    });
    for (rank, (d, _)) in out.iter().enumerate() {
        assert!(*d < 1e-10, "rank {rank}: RingOverlap Fock mismatch {d}");
    }
}

#[test]
fn real_dist_step_at_128_ranks_matches_serial_ptim() {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let n_bands = 32;
    let mut phi = Wavefunction::random(&sys.grid, n_bands, 7);
    phi.orthonormalize_lowdin();
    let occ: Vec<f64> = (0..n_bands).map(|i| 1.0 / (1.0 + 0.2 * i as f64)).collect();
    let st = TdState { phi, sigma: CMat::from_real_diag(&occ), time: 0.0 };
    let laser = LaserPulse::off();
    let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    let ne = occ.iter().sum::<f64>() * pwdft_repro::pwdft::density::SPIN_FACTOR;

    // Serial reference.
    let eng = pwdft_repro::ptim::engine::TdEngine::new(&sys, LaserPulse::off(), hyb);
    let cfg_serial = pwdft_repro::ptim::ptim::PtimConfig {
        dt: 0.1,
        max_scf: 25,
        tol_rho: 1e-9,
        anderson_depth: 10,
        anderson_beta: 0.6,
    };
    let (serial_next, serial_stats) = pwdft_repro::ptim::ptim::ptim_step(&eng, &st, &cfg_serial);
    assert!(serial_stats.converged, "serial reference step must converge");
    let rho_serial = eng.eval(&serial_next.phi, &serial_next.sigma, serial_next.time).rho;

    let p = 128;
    let sys_ref = &sys;
    let laser_ref = &laser;
    let st_ref = &st;
    let rho_ref = &rho_serial;
    let sigma_ref = &serial_next.sigma;
    let out = Cluster::new(p, RPN, fugaku_net(p)).run(move |c| {
        let dist = BandDistribution::new(n_bands, c.size());
        let local = scatter_state(c, st_ref, &dist);
        let cfg = DistConfig {
            strategy: ExchangeStrategy::RingOverlap,
            use_shm: true,
            hybrid: hyb,
            ..Default::default()
        };
        let (next, stats) =
            dist_ptim_step(c, sys_ref, laser_ref, &cfg, &dist, &local, 0.1, 25, 1e-9);
        let full = gather_state(c, &next, &dist);
        let eng = pwdft_repro::ptim::engine::TdEngine::new(sys_ref, LaserPulse::off(), hyb);
        let rho = eng.eval(&full.phi, &full.sigma, full.time).rho;
        let res = pwdft_repro::ptim::propagate::density_residual(
            &rho,
            rho_ref,
            sys_ref.grid.dv(),
            ne,
        );
        (res, stats.converged, full.sigma.max_abs_diff(sigma_ref))
    });
    for (rank, ((res, conv, sig_diff), _)) in out.iter().enumerate() {
        assert!(*conv, "rank {rank}: 128-rank step did not converge");
        assert!(*res < 1e-6, "rank {rank}: density mismatch {res}");
        assert!(*sig_diff < 1e-6, "rank {rank}: sigma mismatch {sig_diff}");
    }
}
