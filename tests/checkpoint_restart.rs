//! Checkpoint/restart fidelity (DESIGN.md §12): a run interrupted at a
//! checkpoint and restored from disk must continue **bitwise identical**
//! to the uninterrupted run — across both compute backends, under the
//! mixed-precision policy, and for all four propagators — and the loader
//! must reject corrupt, truncated, version-bumped, and wrong-shape files.

use pwdft_repro::ptim::resilience::{
    run, Checkpoint, CheckpointError, CheckpointPolicy, Propagator, RecoveryPolicy,
    CHECKPOINT_VERSION,
};
use pwdft_repro::ptim::{
    HybridParams, LaserPulse, PtcnConfig, PtimAceConfig, PtimConfig, Rk4Config, TdEngine,
    TdState,
};
use pwdft_repro::pwdft::{Cell, DftSystem, Wavefunction};
use pwdft_repro::pwnum::backend::by_name;
use pwdft_repro::pwnum::cmat::CMat;
use pwdft_repro::pwnum::precision::PrecisionPolicy;
use std::path::PathBuf;

const STEPS: u64 = 4;
const INTERVAL: u64 = 2;

fn fixture() -> (DftSystem, TdState) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
    let mut phi = Wavefunction::random(&sys.grid, 3, 17);
    phi.orthonormalize_lowdin();
    let sigma = CMat::from_real_diag(&[1.0, 0.7, 0.3]);
    (sys, TdState { phi, sigma, time: 0.0 })
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join(format!("ckpt_restart_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Max bitwise-visible deviation between two states (0.0 means every
/// float is identical, since the checkpoint stores raw IEEE bits).
fn state_diff(a: &TdState, b: &TdState) -> f64 {
    a.phi
        .max_abs_diff(&b.phi)
        .max(a.sigma.max_abs_diff(&b.sigma))
        .max((a.time - b.time).abs())
}

/// Runs `prop` for [`STEPS`] uninterrupted, then again with an
/// interruption right after the first checkpoint and a restore from
/// disk; asserts the two final states agree bitwise.
fn assert_bitwise_restart(backend: &str, hyb: HybridParams, prop: &Propagator, tag: &str) {
    let (sys, st) = fixture();
    let be = by_name(backend).expect("known backend");
    let laser = LaserPulse { e0: 0.02, omega: 0.15, t_center: 2.0, t_width: 1.0 };
    let recovery = RecoveryPolicy::default();

    let eng = TdEngine::with_backend(&sys, laser.clone(), hyb, be.clone());
    let baseline = run(&eng, &st, 0, STEPS, prop, &recovery).expect("baseline run");

    let dir = tmpdir(tag);
    let eng_ck = TdEngine::with_backend(&sys, laser, hyb, be)
        .with_checkpoints(CheckpointPolicy::new(&dir, INTERVAL));
    // "Crash" one step past the first checkpoint...
    let _ = run(&eng_ck, &st, 0, INTERVAL + 1, prop, &recovery).expect("partial run");
    // ...then restart the process: load the newest snapshot and continue.
    let ck = Checkpoint::load_latest(&dir, &st).expect("readable dir").expect("checkpoint");
    assert_eq!(ck.meta.step, INTERVAL);
    assert_eq!(ck.meta.propagator, prop.kind());
    assert_eq!(ck.meta.dt.to_bits(), prop.dt().to_bits());
    let resumed =
        run(&eng_ck, &ck.state, ck.meta.step, STEPS, prop, &recovery).expect("resumed run");

    let diff = state_diff(&resumed.state, &baseline.state);
    assert!(
        diff == 0.0,
        "{tag}: restart deviates from the uninterrupted run by {diff:e}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn restart_is_bitwise_for_all_propagators_on_both_backends() {
    let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    let props: [(Propagator, &str); 4] = [
        (
            Propagator::Ptim(PtimConfig { dt: 0.3, max_scf: 20, tol_rho: 1e-8, ..Default::default() }),
            "ptim",
        ),
        (
            Propagator::Ptcn(PtcnConfig { dt: 0.3, max_scf: 20, tol_rho: 1e-8, ..Default::default() }),
            "ptcn",
        ),
        (
            Propagator::PtimAce(PtimAceConfig {
                dt: 0.3,
                max_outer: 3,
                max_inner: 8,
                ..Default::default()
            }),
            "ptim_ace",
        ),
        (Propagator::Rk4(Rk4Config { dt: 0.05 }), "rk4"),
    ];
    for backend in ["reference", "blocked"] {
        for (prop, name) in &props {
            assert_bitwise_restart(backend, hyb, prop, &format!("{backend}_{name}"));
        }
    }
}

#[test]
fn restart_is_bitwise_under_mixed_precision() {
    // The fp32 exchange pipeline is deterministic too, so the bitwise
    // bar holds even with reduced-precision Fock solves in the loop.
    let mut hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    hyb.fock = hyb.fock.with_precision(PrecisionPolicy::mixed());
    let prop = Propagator::Ptim(PtimConfig {
        dt: 0.3,
        max_scf: 20,
        tol_rho: 1e-8,
        ..Default::default()
    });
    assert_bitwise_restart("blocked", hyb, &prop, "blocked_mixed");
}

#[test]
fn loader_rejects_bad_files_and_wrong_shapes() {
    let (_, st) = fixture();
    let dir = tmpdir("reject");
    let prop = Propagator::Rk4(Rk4Config { dt: 0.1 });
    let path = Checkpoint::save(&dir, 7, &st, &prop, &LaserPulse::off()).expect("save");
    let good = std::fs::read(&path).expect("read back");

    // Bit rot in the payload -> checksum mismatch.
    let mut corrupt = good.clone();
    corrupt[64] ^= 0x10;
    std::fs::write(&path, &corrupt).expect("rewrite");
    assert!(matches!(Checkpoint::load(&path, &st), Err(CheckpointError::Checksum)));

    // Partial write (torn file) -> rejected.
    std::fs::write(&path, &good[..good.len() - 9]).expect("rewrite");
    assert!(Checkpoint::load(&path, &st).is_err());

    // Future format version (checksum recomputed) -> version error.
    let mut stale = good.clone();
    stale[4..8].copy_from_slice(&(CHECKPOINT_VERSION + 3).to_le_bytes());
    let n = stale.len() - 8;
    let sum = pwdft_repro::pwnum::persist::fnv1a64(&stale[..n]);
    stale[n..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &stale).expect("rewrite");
    assert!(matches!(
        Checkpoint::load(&path, &st),
        Err(CheckpointError::Version(v)) if v == CHECKPOINT_VERSION + 3
    ));

    // A checkpoint from a different run shape -> shape error.
    std::fs::write(&path, &good).expect("restore");
    let sys_big = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
    let mut phi_big = Wavefunction::random(&sys_big.grid, 4, 18);
    phi_big.orthonormalize_lowdin();
    let template_big = TdState {
        phi: phi_big,
        sigma: CMat::from_real_diag(&[1.0, 0.8, 0.5, 0.2]),
        time: 0.0,
    };
    assert!(matches!(
        Checkpoint::load(&path, &template_big),
        Err(CheckpointError::Shape { found: (3, _), expected: (4, _) })
    ));

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
