//! Integration tests of the ground-state pipeline that feeds rt-TDDFT:
//! SCF physics invariants at the cross-crate level.

use pwdft_repro::pwdft::{
    density::electron_count, scf_hybrid, scf_lda, Cell, DftSystem, HybridConfig, ScfConfig,
};
use pwdft_repro::pwnum;

fn sys_and_cfg(temp_k: f64) -> (DftSystem, ScfConfig) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 3.0, [10, 10, 10]);
    let cfg = ScfConfig {
        n_bands: 24,
        temperature_k: temp_k,
        tol_rho: 1e-5,
        max_scf: 50,
        davidson_iters: 8,
        davidson_tol: 1e-7,
        mix_depth: 12,
        mix_beta: 0.6,
        seed: 11,
    };
    (sys, cfg)
}

#[test]
fn scf_reaches_self_consistency_and_sane_physics() {
    let (sys, cfg) = sys_and_cfg(8000.0);
    let gs = scf_lda(&sys, &cfg);
    // Converged and charge-conserving.
    assert!(gs.rho_residual < 1e-4, "residual {}", gs.rho_residual);
    assert!((electron_count(&sys.grid, &gs.rho) - 32.0).abs() < 1e-6);
    // Bound crystal with every energy term of the right sign.
    assert!(gs.energies.total() < 0.0);
    assert!(gs.energies.kinetic > 0.0);
    assert!(gs.energies.hartree > 0.0);
    assert!(gs.energies.xc < 0.0);
    assert!(gs.energies.ewald < 0.0);
    // Chemical potential sits between band edges.
    assert!(gs.mu > gs.eigs[0] && gs.mu < *gs.eigs.last().unwrap());
    // Density is nonnegative everywhere.
    assert!(gs.rho.iter().all(|&r| r > -1e-12));
}

#[test]
fn occupations_respond_to_temperature() {
    let (sys, cfg_hot) = sys_and_cfg(8000.0);
    let hot = scf_lda(&sys, &cfg_hot);
    let (_, cfg_cold) = sys_and_cfg(300.0);
    let cold = scf_lda(&sys, &cfg_cold);
    let frac = |occ: &[f64]| occ.iter().filter(|&&f| f > 0.01 && f < 0.99).count();
    assert!(
        frac(&hot.occ) > frac(&cold.occ),
        "8000 K must smear more states than 300 K: {} vs {}",
        frac(&hot.occ),
        frac(&cold.occ)
    );
    // Entropy ordering matches.
    let s_hot = pwdft_repro::pwdft::smearing::entropy(&hot.occ);
    let s_cold = pwdft_repro::pwdft::smearing::entropy(&cold.occ);
    assert!(s_hot > s_cold);
}

#[test]
fn hybrid_stage_physics() {
    let (sys, cfg) = sys_and_cfg(8000.0);
    let gs = scf_lda(&sys, &cfg);
    let lda_gap_proxy = gs.eigs[17] - gs.eigs[15];
    let gsh = scf_hybrid(&sys, &cfg, &HybridConfig { outer_iters: 3, ..Default::default() }, gs);
    // Exact exchange is attractive.
    assert!(gsh.energies.exact_exchange < 0.0);
    // Charge still conserved through the ACE loop.
    assert!((electron_count(&sys.grid, &gsh.rho) - 32.0).abs() < 1e-6);
    // Orbitals stay orthonormal.
    let s = gsh.phi.overlap(&gsh.phi);
    assert!(s.max_abs_diff(&pwnum::CMat::identity(24)) < 1e-7);
    // Hybrid functionals widen level spacings vs LDA (the band-gap
    // correction that motivates the paper's hybrid rt-TDDFT).
    let hyb_gap_proxy = gsh.eigs[17] - gsh.eigs[15];
    assert!(
        hyb_gap_proxy > lda_gap_proxy - 5e-3,
        "hybrid spacing {hyb_gap_proxy} vs LDA {lda_gap_proxy}"
    );
}

#[test]
fn scf_is_deterministic_for_fixed_seed() {
    let (sys, cfg) = sys_and_cfg(8000.0);
    let a = scf_lda(&sys, &cfg);
    let b = scf_lda(&sys, &cfg);
    assert!((a.energies.total() - b.energies.total()).abs() < 1e-10);
    assert!((a.mu - b.mu).abs() < 1e-10);
}
