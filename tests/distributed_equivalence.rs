//! Distributed-vs-serial equivalence at the full time-step level, across
//! exchange strategies, rank counts and the SHM toggle — the correctness
//! backbone behind every performance claim in the reproduction.

use pwdft_repro::mpisim::{Cluster, NetworkModel};
use pwdft_repro::ptim::distributed::{
    dist_ptim_step, gather_state, scatter_state, BandDistribution, DistConfig, ExchangeStrategy,
};
use pwdft_repro::ptim::{ptim_step, HybridParams, LaserPulse, PtimConfig, TdEngine, TdState};
use pwdft_repro::pwdft::{Cell, DftSystem, Wavefunction};
use pwdft_repro::pwnum::cmat::CMat;
use pwdft_repro::pwnum::{c64, eigh};

fn fixture() -> (DftSystem, TdState) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let mut phi = Wavefunction::random(&sys.grid, 6, 19);
    phi.orthonormalize_lowdin();
    let mut sigma = CMat::from_real_diag(&[1.0, 0.95, 0.7, 0.5, 0.2, 0.05]);
    sigma[(1, 3)] = c64(0.04, -0.01);
    sigma[(3, 1)] = c64(0.04, 0.01);
    (sys, TdState { phi, sigma, time: 0.0 })
}

fn serial_reference(sys: &DftSystem, st: &TdState, hyb: HybridParams, dt: f64) -> (Vec<f64>, CMat) {
    let eng = TdEngine::new(sys, LaserPulse::off(), hyb);
    let cfg = PtimConfig { dt, max_scf: 30, tol_rho: 1e-10, anderson_depth: 10, anderson_beta: 0.6 };
    let (next, stats) = ptim_step(&eng, st, &cfg);
    assert!(stats.converged);
    let rho = eng.eval(&next.phi, &next.sigma, next.time).rho;
    (rho, next.sigma)
}

fn run_distributed(
    sys: &DftSystem,
    st: &TdState,
    hyb: HybridParams,
    dt: f64,
    p: usize,
    rpn: usize,
    strategy: ExchangeStrategy,
    use_shm: bool,
) -> (Vec<f64>, CMat, bool) {
    let laser = LaserPulse::off();
    let out = Cluster::new(p, rpn, NetworkModel::ideal()).run(move |c| {
        let dist = BandDistribution::new(6, c.size());
        let local = scatter_state(c, st, &dist);
        let cfg = DistConfig { strategy, use_shm, hybrid: hyb, ..Default::default() };
        let (next, stats) = dist_ptim_step(c, sys, &laser, &cfg, &dist, &local, dt, 30, 1e-10);
        let full = gather_state(c, &next, &dist);
        let eng = TdEngine::new(sys, LaserPulse::off(), hyb);
        let rho = eng.eval(&full.phi, &full.sigma, full.time).rho;
        (rho, full.sigma, stats.converged)
    });
    let (rho, sigma, conv) = out.into_iter().next().unwrap().0;
    (rho, sigma, conv)
}

fn rho_diff(a: &[f64], b: &[f64], dv: f64) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() * dv
}

#[test]
fn every_strategy_matches_serial_semilocal() {
    let (sys, st) = fixture();
    let hyb = HybridParams { alpha: 0.0, omega: 0.2, ..Default::default() };
    let dt = 0.4;
    let (rho_ref, sigma_ref) = serial_reference(&sys, &st, hyb, dt);
    for strategy in [
        ExchangeStrategy::Bcast,
        ExchangeStrategy::Ring,
        ExchangeStrategy::AsyncRing,
        ExchangeStrategy::RingOverlap,
    ] {
        let (rho, sigma, conv) =
            run_distributed(&sys, &st, hyb, dt, 3, 2, strategy, false);
        assert!(conv, "{strategy:?} did not converge");
        let d = rho_diff(&rho, &rho_ref, sys.grid.dv());
        assert!(d < 1e-7, "{strategy:?}: density diff {d}");
        assert!(sigma.max_abs_diff(&sigma_ref) < 1e-7, "{strategy:?}: σ mismatch");
    }
}

#[test]
fn hybrid_distributed_matches_serial() {
    let (sys, st) = fixture();
    let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    let dt = 0.3;
    let (rho_ref, sigma_ref) = serial_reference(&sys, &st, hyb, dt);
    let (rho, sigma, conv) =
        run_distributed(&sys, &st, hyb, dt, 2, 2, ExchangeStrategy::Ring, true);
    assert!(conv);
    let d = rho_diff(&rho, &rho_ref, sys.grid.dv());
    assert!(d < 1e-7, "hybrid distributed density diff {d}");
    assert!(sigma.max_abs_diff(&sigma_ref) < 1e-7);
}

#[test]
fn shm_toggle_does_not_change_physics() {
    let (sys, st) = fixture();
    let hyb = HybridParams { alpha: 0.0, omega: 0.2, ..Default::default() };
    let dt = 0.5;
    let (rho_a, sigma_a, _) =
        run_distributed(&sys, &st, hyb, dt, 4, 4, ExchangeStrategy::Ring, true);
    let (rho_b, sigma_b, _) =
        run_distributed(&sys, &st, hyb, dt, 4, 4, ExchangeStrategy::Ring, false);
    assert!(rho_diff(&rho_a, &rho_b, sys.grid.dv()) < 1e-12);
    assert!(sigma_a.max_abs_diff(&sigma_b) < 1e-12);
}

#[test]
fn rank_count_does_not_change_physics() {
    let (sys, st) = fixture();
    let hyb = HybridParams { alpha: 0.0, omega: 0.2, ..Default::default() };
    let dt = 0.4;
    let mut results = Vec::new();
    for p in [1usize, 2, 3, 6] {
        let (rho, sigma, conv) =
            run_distributed(&sys, &st, hyb, dt, p, 2, ExchangeStrategy::Ring, false);
        assert!(conv, "p={p}");
        results.push((rho, sigma));
    }
    for (rho, sigma) in &results[1..] {
        assert!(rho_diff(rho, &results[0].0, sys.grid.dv()) < 1e-8);
        assert!(sigma.max_abs_diff(&results[0].1) < 1e-8);
    }
}

#[test]
fn hybrid_ring_overlap_matches_serial() {
    // The overlapped exchange through the full hybrid time step, at a
    // non-power-of-two rank count.
    let (sys, st) = fixture();
    let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    let dt = 0.3;
    let (rho_ref, sigma_ref) = serial_reference(&sys, &st, hyb, dt);
    let (rho, sigma, conv) =
        run_distributed(&sys, &st, hyb, dt, 3, 2, ExchangeStrategy::RingOverlap, true);
    assert!(conv);
    let d = rho_diff(&rho, &rho_ref, sys.grid.dv());
    assert!(d < 1e-7, "hybrid RingOverlap density diff {d}");
    assert!(sigma.max_abs_diff(&sigma_ref) < 1e-7);
}

#[test]
fn sigma_spectrum_stays_physical_distributed() {
    let (sys, st) = fixture();
    let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    let (_, sigma, _) =
        run_distributed(&sys, &st, hyb, 0.4, 2, 2, ExchangeStrategy::AsyncRing, true);
    let e = eigh(&sigma);
    // The implicit-midpoint update preserves the σ spectrum to O(Δt³)
    // per step, not exactly; allow that integrator-level tolerance.
    for w in &e.values {
        assert!(*w > -1e-4 && *w < 1.0 + 1e-4, "occupation {w}");
    }
    let trace: f64 = e.values.iter().sum();
    assert!((trace - 3.4).abs() < 1e-8, "trace {trace}");
}
