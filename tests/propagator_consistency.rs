//! Cross-crate integration: the three propagators (RK4, PT-IM,
//! PT-IM-ACE) must tell the same physical story — the content of the
//! paper's Fig. 7.

use pwdft_repro::ptim::{
    ptim_ace_step, ptim_step, rk4_step, HybridParams, LaserPulse, PtimAceConfig, PtimConfig,
    Rk4Config, TdEngine, TdState,
};
use pwdft_repro::pwdft::{scf_hybrid, scf_lda, Cell, DftSystem, HybridConfig, ScfConfig};

fn tiny_system() -> DftSystem {
    DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8])
}

fn ground_state(sys: &DftSystem, hybrid: bool) -> pwdft_repro::pwdft::GroundState {
    let cfg = ScfConfig {
        n_bands: 20,
        temperature_k: 8000.0,
        tol_rho: 1e-5,
        max_scf: 40,
        davidson_iters: 8,
        davidson_tol: 1e-7,
        mix_depth: 10,
        mix_beta: 0.6,
        seed: 3,
    };
    let gs = scf_lda(sys, &cfg);
    if hybrid {
        scf_hybrid(sys, &cfg, &HybridConfig { outer_iters: 2, ..Default::default() }, gs)
    } else {
        gs
    }
}

#[test]
fn ptim_matches_rk4_dipole_under_field() {
    // A PT-IM step at dt matches many small RK4 steps — gauge-equivalent
    // dynamics (Fig. 7's claim), checked through the dipole observable.
    let sys = tiny_system();
    let gs = ground_state(&sys, false);
    // A smooth pulse: PT-IM's large steps assume the driving field varies
    // slowly on the Δt scale (the paper's 50 as steps under a fs-scale
    // envelope); a near-delta kick would need smaller steps.
    let laser = LaserPulse { e0: 0.02, omega: 0.10, t_center: 8.0, t_width: 8.0 };
    let eng = TdEngine::new(&sys, laser, HybridParams { alpha: 0.0, omega: 0.106, ..Default::default() });

    let dt = 1.0;
    let n_steps = 4;
    let subdiv = 20;

    let mut pt = TdState::from_ground_state(&gs);
    let cfg = PtimConfig { dt, max_scf: 40, tol_rho: 1e-9, ..Default::default() };
    for _ in 0..n_steps {
        let (next, stats) = ptim_step(&eng, &pt, &cfg);
        assert!(stats.converged, "PT-IM fixed point must converge");
        pt = next;
    }

    let mut rk = TdState::from_ground_state(&gs);
    let rk_cfg = Rk4Config { dt: dt / subdiv as f64 };
    for _ in 0..n_steps * subdiv {
        let (next, _) = rk4_step(&eng, &rk, &rk_cfg);
        rk = next;
    }

    let d_pt = {
        let ev = eng.eval(&pt.phi, &pt.sigma, pt.time);
        eng.dipole_x(&ev.rho)
    };
    let d_rk = {
        let ev = eng.eval(&rk.phi, &rk.sigma, rk.time);
        eng.dipole_x(&ev.rho)
    };
    // The dipole must have moved, and the two propagators must agree.
    let ev0 = eng.eval(&gs.phi, &pt.sigma, 0.0);
    let d0 = eng.dipole_x(&ev0.rho);
    assert!((d_rk - d0).abs() > 1e-6, "field should drive the dipole: {}", (d_rk - d0).abs());
    assert!(
        (d_pt - d_rk).abs() < 0.05 * (d_rk - d0).abs().max(1e-6),
        "PT-IM dipole {d_pt} vs RK4 {d_rk} (start {d0})"
    );
}

#[test]
fn hybrid_ace_step_consistent_with_dense() {
    let sys = tiny_system();
    let gs = ground_state(&sys, true);
    let eng = TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() });
    let dt = 1.5;

    let (dense, dense_stats) = ptim_step(
        &eng,
        &TdState::from_ground_state(&gs),
        &PtimConfig { dt, max_scf: 50, tol_rho: 1e-10, ..Default::default() },
    );
    assert!(dense_stats.converged);
    let (ace, _) = ptim_ace_step(
        &eng,
        &TdState::from_ground_state(&gs),
        &PtimAceConfig { dt, max_outer: 8, max_inner: 25, tol_rho: 1e-10, tol_ex: 1e-10, ..Default::default() },
    );

    let rho_dense = eng.eval(&dense.phi, &dense.sigma, dense.time).rho;
    let rho_ace = eng.eval(&ace.phi, &ace.sigma, ace.time).rho;
    let res: f64 = rho_dense
        .iter()
        .zip(&rho_ace)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        * sys.grid.dv()
        / 32.0;
    assert!(res < 1e-4, "ACE vs dense density: {res}");
}

#[test]
fn energy_conserved_without_field_all_propagators() {
    let sys = tiny_system();
    let gs = ground_state(&sys, false);
    let eng = TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.106, ..Default::default() });
    let e0 = eng.total_energy(&TdState::from_ground_state(&gs)).total();

    // PT-IM.
    let mut s = TdState::from_ground_state(&gs);
    let cfg = PtimConfig { dt: 1.0, max_scf: 40, tol_rho: 1e-9, ..Default::default() };
    for _ in 0..4 {
        let (next, _) = ptim_step(&eng, &s, &cfg);
        s = next;
    }
    let drift_pt = (eng.total_energy(&s).total() - e0).abs();
    assert!(drift_pt < 1e-5 * e0.abs(), "PT-IM drift {drift_pt}");

    // RK4.
    let mut r = TdState::from_ground_state(&gs);
    for _ in 0..40 {
        let (next, _) = rk4_step(&eng, &r, &Rk4Config { dt: 0.1 });
        r = next;
    }
    let drift_rk = (eng.total_energy(&r).total() - e0).abs();
    assert!(drift_rk < 1e-5 * e0.abs(), "RK4 drift {drift_rk}");
}

#[test]
fn invariants_preserved_over_many_ptim_steps() {
    let sys = tiny_system();
    let gs = ground_state(&sys, false);
    let laser = LaserPulse { e0: 0.05, omega: 0.12, t_center: 3.0, t_width: 2.0 };
    let eng = TdEngine::new(&sys, laser, HybridParams { alpha: 0.0, omega: 0.106, ..Default::default() });
    let mut s = TdState::from_ground_state(&gs);
    let ne0 = s.electron_count();
    let cfg = PtimConfig { dt: 1.0, max_scf: 40, tol_rho: 1e-8, ..Default::default() };
    for _ in 0..6 {
        let (next, _) = ptim_step(&eng, &s, &cfg);
        s = next;
        assert!(s.orthonormality_error() < 1e-8);
        assert!(s.sigma_hermiticity_error() < 1e-10);
        assert!((s.electron_count() - ne0).abs() < 1e-7);
        // σ eigenvalues stay in [0, 1] (physical occupations).
        let ev = pwdft_repro::pwnum::eigh(&s.sigma);
        for w in &ev.values {
            assert!(*w > -1e-6 && *w < 1.0 + 1e-6, "occupation {w}");
        }
    }
}

#[test]
fn ground_state_is_stationary() {
    // Without a field, a converged eigenstate set should barely move the
    // density in one PT-IM step (stationarity of the ground state).
    let sys = tiny_system();
    let gs = ground_state(&sys, false);
    let eng = TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.106, ..Default::default() });
    let s0 = TdState::from_ground_state(&gs);
    let rho0 = eng.eval(&s0.phi, &s0.sigma, 0.0).rho;
    let (s1, _) = ptim_step(
        &eng,
        &s0,
        &PtimConfig { dt: 1.0, max_scf: 40, tol_rho: 1e-9, ..Default::default() },
    );
    let rho1 = eng.eval(&s1.phi, &s1.sigma, s1.time).rho;
    let change: f64 =
        rho0.iter().zip(&rho1).map(|(a, b)| (a - b).abs()).sum::<f64>() * sys.grid.dv() / 32.0;
    assert!(change < 5e-4, "ground state should be (nearly) stationary: {change}");
}
