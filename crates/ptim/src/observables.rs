//! Trajectory recording: dipole, energy, σ elements (the quantities of
//! the paper's Figs. 7 and 8).

use crate::engine::TdEngine;
use crate::state::TdState;
use pwnum::complex::Complex64;

/// One sample along a trajectory.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Time (a.u.).
    pub time: f64,
    /// Applied field E(t) (a.u.).
    pub field: f64,
    /// Electronic dipole along x (a.u.).
    pub dipole_x: f64,
    /// Total energy (hartree).
    pub total_energy: f64,
    /// σ(0,2) — the off-diagonal element Fig. 8(a) tracks.
    pub sigma_02: Complex64,
    /// A diagonal element deep in the fractional window
    /// (σ(22,22) for the 24-state system of Fig. 8(b); clamped to the
    /// last state for smaller systems).
    pub sigma_diag: f64,
    /// Electron count `2 tr σ`.
    pub electrons: f64,
}

/// Records trajectory samples.
#[derive(Default)]
pub struct Recorder {
    /// Collected samples, in time order.
    pub samples: Vec<Sample>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder { samples: Vec::new() }
    }

    /// Measures the state and appends a sample. Costs one density build
    /// plus (for hybrid engines) one Fock evaluation for the energy.
    pub fn record(&mut self, eng: &TdEngine, state: &TdState) {
        let ev = eng.eval(&state.phi, &state.sigma, state.time);
        let n = state.n_bands();
        let diag_idx = 22.min(n - 1);
        let sigma_02 = if n > 2 { state.sigma[(0, 2)] } else { Complex64::ZERO };
        self.samples.push(Sample {
            time: state.time,
            field: eng.laser.field(state.time),
            dipole_x: eng.dipole_x(&ev.rho),
            total_energy: eng.total_energy(state).total(),
            sigma_02,
            sigma_diag: state.sigma[(diag_idx, diag_idx)].re,
            electrons: state.electron_count(),
        });
    }

    /// Writes the samples as CSV (time in fs) to any writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "time_fs,field_au,dipole_x_au,total_energy_ha,sigma02_re,sigma02_im,sigma_diag,electrons"
        )?;
        for s in &self.samples {
            writeln!(
                w,
                "{:.6},{:.8e},{:.8e},{:.10e},{:.8e},{:.8e},{:.8e},{:.8e}",
                s.time * crate::laser::AU_TIME_FS,
                s.field,
                s.dipole_x,
                s.total_energy,
                s.sigma_02.re,
                s.sigma_02.im,
                s.sigma_diag,
                s.electrons
            )?;
        }
        Ok(())
    }

    /// Maximum |dipole difference| against another trajectory sampled at
    /// the same times (the Fig. 7 agreement metric).
    pub fn max_dipole_diff(&self, other: &Recorder) -> f64 {
        self.samples
            .iter()
            .zip(&other.samples)
            .map(|(a, b)| (a.dipole_x - b.dipole_x).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HybridParams;
    use crate::laser::LaserPulse;
    use pwdft::{Cell, DftSystem, Wavefunction};
    use pwnum::cmat::CMat;

    #[test]
    fn recorder_collects_and_serializes() {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
        let eng =
            TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let phi = Wavefunction::random(&sys.grid, 4, 3);
        let st = TdState {
            phi,
            sigma: CMat::from_real_diag(&[1.0, 0.5, 0.3, 0.2]),
            time: 0.0,
        };
        let mut rec = Recorder::new();
        rec.record(&eng, &st);
        assert_eq!(rec.samples.len(), 1);
        let s = rec.samples[0];
        assert!((s.electrons - 4.0).abs() < 1e-10);
        assert_eq!(s.field, 0.0);
        // diag index clamps to n-1 = 3.
        assert!((s.sigma_diag - 0.2).abs() < 1e-12);

        let mut buf = Vec::new();
        rec.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("time_fs,"));
        assert_eq!(text.lines().count(), 2);
    }
}
