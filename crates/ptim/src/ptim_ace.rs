//! PT-IM-ACE: the double-SCF-loop propagator of Fig. 4(b).
//!
//! The expensive Fock operator is evaluated only when an ACE operator is
//! (re)built: once at `t_n` and once per outer iteration at the midpoint.
//! The inner SCF then iterates the PT-IM fixed point with the *frozen*
//! low-rank `V_ACE` — each inner `HΦ` costs two thin GEMMs instead of N²
//! Poisson solves. The paper reports the Fock count dropping from ~25 to
//! ~5 per step (5 outer × ~13 inner on the 384-atom system).

use crate::engine::TdEngine;
use crate::propagate::{
    density_residual, midpoint_with, pt_update, step_with_drift_guard, StepStats,
};
use crate::state::TdState;
use pwdft::mixing::AndersonMixer;
use pwdft::AceOperator;

/// PT-IM-ACE parameters.
#[derive(Clone, Copy, Debug)]
pub struct PtimAceConfig {
    /// Time step (a.u.). Paper: 50 as.
    pub dt: f64,
    /// Maximum outer (ACE rebuild) iterations (paper average: 5).
    pub max_outer: usize,
    /// Maximum inner fixed-point iterations per outer (paper average: 13).
    pub max_inner: usize,
    /// Density convergence threshold for the inner loop.
    pub tol_rho: f64,
    /// Exchange-energy convergence threshold for the outer loop
    /// (paper: 1e-6).
    pub tol_ex: f64,
    /// Anderson history depth.
    pub anderson_depth: usize,
    /// Anderson damping.
    pub anderson_beta: f64,
}

impl Default for PtimAceConfig {
    fn default() -> Self {
        PtimAceConfig {
            dt: 50.0 / crate::laser::AU_TIME_AS,
            max_outer: 5,
            max_inner: 13,
            tol_rho: 1e-6,
            tol_ex: 1e-6,
            anderson_depth: 20,
            anderson_beta: 0.6,
        }
    }
}

impl PtimAceConfig {
    /// The same configuration with a different time step — how the
    /// recovery ladder builds its halved-dt retries.
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }
}

/// One PT-IM-ACE time step (Fig. 4b). Under a reduced precision policy
/// the step runs the drift monitor.
pub fn ptim_ace_step(
    eng: &TdEngine,
    state: &TdState,
    cfg: &PtimAceConfig,
) -> (TdState, StepStats) {
    step_with_drift_guard(eng, |e| ptim_ace_step_once(e, state, cfg))
}

/// One unguarded PT-IM-ACE step (the drift monitor wraps this).
fn ptim_ace_step_once(
    eng: &TdEngine,
    state: &TdState,
    cfg: &PtimAceConfig,
) -> (TdState, StepStats) {
    let _s = pwobs::span("step.ptim_ace");
    assert!(eng.hybrid.alpha != 0.0, "PT-IM-ACE requires a hybrid functional");
    let solve_snap = eng.counters.snapshot();
    let start_err = crate::propagate::monitor_active(eng)
        .then(|| state.orthonormality_error());
    let dt = cfg.dt;
    let t_mid = state.time + 0.5 * dt;
    let ne = state.electron_count();
    let dv = eng.sys.grid.dv();
    let mut stats = StepStats::default();

    // ACE at t_n (one Fock build), used for the predictor step.
    let (w_n, _ex_n, fstats) = eng.exchange_images_stats(&state.phi, &state.sigma);
    stats.fock_applies += 1;
    stats.fock_skipped_weight += fstats.skipped_weight;
    let gemm_stage = eng.hybrid.fock.precision.subspace_gemm;
    let ace_n =
        AceOperator::build_with_policy(eng.backend.clone(), &state.phi, &w_n, gemm_stage);
    let ev_n = eng.eval(&state.phi, &state.sigma, state.time);
    let h_n = eng.hamiltonian_ace(&ev_n, ace_n);
    let (phi_p, sigma_p) = pt_update(state, &h_n, &state.phi, &state.sigma, dt);
    let mut next = TdState { phi: phi_p, sigma: sigma_p, time: state.time + dt };

    let mut ex_prev = f64::INFINITY;

    for outer in 0..cfg.max_outer {
        stats.outer_iters = outer + 1;
        // Rebuild the midpoint ACE operator from the current iterate
        // (one Fock build per outer iteration).
        let (phi_mid0, sigma_mid0) = midpoint_with(&*eng.backend, state, &next);
        let (w_mid, ex_mid, fstats) = eng.exchange_images_stats(&phi_mid0, &sigma_mid0);
        stats.fock_applies += 1;
        stats.fock_skipped_weight += fstats.skipped_weight;
        let ace_mid =
            AceOperator::build_with_policy(eng.backend.clone(), &phi_mid0, &w_mid, gemm_stage);

        // Outer convergence on the exchange energy (Fig. 4b decision).
        if (ex_mid - ex_prev).abs() < cfg.tol_ex {
            stats.converged = true;
            break;
        }
        ex_prev = ex_mid;

        // Inner SCF with the frozen V_ACE.
        let mut mixer = AndersonMixer::new(cfg.anderson_depth, cfg.anderson_beta);
        let mut rho_prev: Option<Vec<f64>> = None;
        for inner in 0..cfg.max_inner {
            stats.scf_iters += 1;
            let (phi_mid, sigma_mid) = midpoint_with(&*eng.backend, state, &next);
            let ev_mid = eng.eval(&phi_mid, &sigma_mid, t_mid);
            if let Some(prev) = &rho_prev {
                stats.residual = density_residual(&ev_mid.rho, prev, dv, ne);
                if stats.residual < cfg.tol_rho {
                    break;
                }
            }
            rho_prev = Some(ev_mid.rho.clone());
            let h_mid = eng.hamiltonian_ace(&ev_mid, ace_mid.clone());
            let (phi_new, sigma_new) = pt_update(state, &h_mid, &phi_mid, &sigma_mid, dt);
            let x = next.pack();
            let tx = TdState { phi: phi_new, sigma: sigma_new, time: next.time }.pack();
            let mixed = mixer.step(&x, &tx);
            next.unpack_into(&mixed);
            let _ = inner;
        }
    }

    if let Some(e0) = start_err {
        stats.orthonormality_drift = (next.orthonormality_error() - e0).max(0.0);
    }
    (stats.fock_solves_fp64, stats.fock_solves_fp32) = eng.counters.since(solve_snap);
    stats.pool_peak_bytes = crate::propagate::pool_peak_bytes(eng);
    next.enforce_constraints();
    (next, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HybridParams;
    use crate::laser::LaserPulse;
    use crate::ptim::{ptim_step, PtimConfig};
    use pwdft::{Cell, DftSystem, Wavefunction};
    use pwnum::cmat::CMat;

    fn fixture() -> (DftSystem, TdState, HybridParams) {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
        let mut phi = Wavefunction::random(&sys.grid, 3, 71);
        phi.orthonormalize_lowdin();
        let sigma = CMat::from_real_diag(&[1.0, 0.6, 0.3]);
        (sys, TdState { phi, sigma, time: 0.0 }, HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() })
    }

    #[test]
    fn ace_step_preserves_invariants() {
        let (sys, st, hyb) = fixture();
        let eng = TdEngine::new(&sys, LaserPulse::off(), hyb);
        let cfg = PtimAceConfig { dt: 0.4, ..Default::default() };
        let (next, stats) = ptim_ace_step(&eng, &st, &cfg);
        assert!(next.orthonormality_error() < 1e-9);
        assert!(next.sigma_hermiticity_error() < 1e-12);
        assert!((next.electron_count() - st.electron_count()).abs() < 1e-8);
        assert!(stats.fock_applies <= cfg.max_outer + 1);
        assert!(stats.fock_applies >= 2);
    }

    #[test]
    fn ace_matches_dense_ptim() {
        // The headline consistency check: PT-IM-ACE must reproduce the
        // dense PT-IM step to the fixed-point tolerance.
        let (sys, st, hyb) = fixture();
        let eng = TdEngine::new(&sys, LaserPulse::off(), hyb);
        let dt = 0.3;
        let dense_cfg = PtimConfig { dt, max_scf: 60, tol_rho: 1e-10, ..Default::default() };
        let ace_cfg = PtimAceConfig {
            dt,
            max_outer: 8,
            max_inner: 30,
            tol_rho: 1e-10,
            tol_ex: 1e-10,
            ..Default::default()
        };
        let (dense_next, dense_stats) = ptim_step(&eng, &st, &dense_cfg);
        let (ace_next, _) = ptim_ace_step(&eng, &st, &ace_cfg);
        assert!(dense_stats.converged);

        // Compare gauge-invariant objects: the density and σ spectrum.
        let rho_dense =
            eng.eval(&dense_next.phi, &dense_next.sigma, dense_next.time).rho;
        let rho_ace = eng.eval(&ace_next.phi, &ace_next.sigma, ace_next.time).rho;
        let res = crate::propagate::density_residual(
            &rho_dense,
            &rho_ace,
            sys.grid.dv(),
            st.electron_count(),
        );
        assert!(res < 5e-5, "ACE vs dense density mismatch: {res}");

        let ev_d = pwnum::eigh(&dense_next.sigma).values;
        let ev_a = pwnum::eigh(&ace_next.sigma).values;
        for (a, b) in ev_d.iter().zip(&ev_a) {
            assert!((a - b).abs() < 5e-4, "σ spectra differ: {a} vs {b}");
        }
    }

    #[test]
    fn fock_count_reduction_vs_dense() {
        // The whole point of ACE (paper: 25 -> 5). On this toy system the
        // exact counts differ, but ACE must use strictly fewer Fock
        // builds than dense PT-IM uses applications.
        let (sys, st, hyb) = fixture();
        let eng = TdEngine::new(&sys, LaserPulse::off(), hyb);
        let dt = 0.4;
        let (_, dense_stats) = ptim_step(
            &eng,
            &st,
            &PtimConfig { dt, max_scf: 40, tol_rho: 1e-9, ..Default::default() },
        );
        let (_, ace_stats) = ptim_ace_step(
            &eng,
            &st,
            &PtimAceConfig { dt, tol_rho: 1e-9, tol_ex: 1e-8, ..Default::default() },
        );
        assert!(
            ace_stats.fock_applies < dense_stats.fock_applies,
            "ACE {} vs dense {}",
            ace_stats.fock_applies,
            dense_stats.fock_applies
        );
    }
}
