//! Band-parallel PT-IM over the [`mpisim`] runtime — the paper's
//! distributed implementation (Sec. III-A, IV-B).
//!
//! Data layout follows Fig. 1: the wavefunction block Φ is distributed by
//! *band index*; overlap matrices are formed by transposing to
//! *grid-point* distribution with `MPI_Alltoallv` and reducing partial
//! N×N products with `MPI_Allreduce`. The distributed Fock exchange
//! circulates source bands among ranks with one of the paper's three
//! strategies:
//!
//! * [`ExchangeStrategy::Bcast`] — baseline: every band block is
//!   broadcast from its owner (Fig. 5a);
//! * [`ExchangeStrategy::Ring`] — neighbor point-to-point rotation
//!   (`MPI_Sendrecv`, Fig. 5b);
//! * [`ExchangeStrategy::AsyncRing`] — nonblocking rotation overlapping
//!   the Poisson solves with communication (`MPI_Isend/Irecv/Wait`,
//!   Fig. 5c);
//! * [`ExchangeStrategy::RingOverlap`] — the hierarchical subsystem's
//!   ring-pipelined exchange ([`crate::grid2d`]): double-buffered
//!   `isend`/`irecv` posted before the pair-tile solves, `MPI_Test`-style
//!   progress probes between tiles, solves routed through the batched
//!   pair schedulers (symmetric halving + precision policy), and the
//!   hidden/visible transfer split recorded as the overlap-efficiency
//!   metric ([`mpisim::Stats::overlap_efficiency`]).
//!
//! All strategies produce the same physics (unit-tested against the serial
//! code); they differ in which timing category the virtual clock charges —
//! exactly Table I. Optionally the replicated square matrices (σ, Φ\*Φ,
//! Φ\*HΦ) live in node-shared SHM windows (Sec. IV-B3) to cut their
//! footprint to `1/ranks-per-node`.

use crate::engine::HybridParams;
use crate::laser::{external_potential, sawtooth_x, LaserPulse};
use crate::propagate::{density_residual, StepStats};
use crate::state::TdState;
use mpisim::Comm;
use pwdft::density::SPIN_FACTOR;
use pwdft::hamiltonian::build_hxc_with;
use pwdft::mixing::AndersonMixer;
use pwdft::{DftSystem, FockOperator, Wavefunction};
use pwnum::backend::default_backend;
use pwnum::bands;
use pwnum::chol::solve_hpd;
use pwnum::cmat::CMat;
use pwnum::complex::{c64, Complex64};
use pwnum::eigh;

/// Wavefunction-exchange strategy for the distributed Fock operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeStrategy {
    /// Broadcast every block from its owner (baseline, Fig. 5a).
    Bcast,
    /// Synchronous ring rotation (Fig. 5b).
    Ring,
    /// Asynchronous ring with communication/computation overlap (Fig. 5c).
    AsyncRing,
    /// Ring-pipelined overlapped exchange via the hierarchical
    /// [`crate::grid2d`] subsystem: transfers posted before each block's
    /// pair-tile solves, progress probes between tiles, batched
    /// policy-aware schedulers, per-transfer hidden/visible accounting.
    RingOverlap,
}

/// How one distributed Fock exchange runs: the strategy plus the modeled
/// per-solve compute cost the virtual clock charges between transfers —
/// what gives the nonblocking strategies something to hide communication
/// behind. A bare [`ExchangeStrategy`] converts to a plan with zero
/// solve cost (data plane only; physics identical).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExchangePlan {
    /// Communication strategy.
    pub strategy: ExchangeStrategy,
    /// Modeled compute seconds charged per screened-Poisson pair solve.
    pub solve_cost_s: f64,
}

impl From<ExchangeStrategy> for ExchangePlan {
    fn from(strategy: ExchangeStrategy) -> Self {
        ExchangePlan { strategy, solve_cost_s: 0.0 }
    }
}

/// Contiguous band distribution over ranks (or, in the 2-D layout, over
/// band groups).
#[derive(Clone, Debug)]
pub struct BandDistribution {
    /// Total bands N.
    pub n_bands: usize,
    /// Number of ranks.
    pub n_ranks: usize,
}

impl BandDistribution {
    /// Creates the distribution.
    pub fn new(n_bands: usize, n_ranks: usize) -> Self {
        assert!(n_ranks > 0);
        BandDistribution { n_bands, n_ranks }
    }

    /// Number of bands owned by `rank`.
    pub fn count(&self, rank: usize) -> usize {
        self.range(rank).len()
    }

    /// Global band range owned by `rank` (the shared balanced partition,
    /// same formula as [`crate::grid2d::GridDistribution`]).
    pub fn range(&self, rank: usize) -> std::ops::Range<usize> {
        pwnum::parallel::block_range(self.n_bands, self.n_ranks, rank)
    }
}

/// Distributed mixed state: local band slice + replicated σ.
#[derive(Clone)]
pub struct DistState {
    /// Locally owned bands (G-space).
    pub phi_local: Wavefunction,
    /// Occupation matrix (replicated on every rank; optionally mirrored
    /// in an SHM window for memory accounting).
    pub sigma: CMat,
    /// Physical time (a.u.).
    pub time: f64,
}

/// Distributed run configuration.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Fock exchange communication strategy.
    pub strategy: ExchangeStrategy,
    /// Store replicated square matrices in node-shared windows.
    pub use_shm: bool,
    /// Hybrid functional parameters.
    pub hybrid: HybridParams,
    /// Modeled compute seconds charged to the virtual clock per exchange
    /// pair solve (see [`ExchangePlan::solve_cost_s`]); 0 keeps the step
    /// purely data-plane as before.
    pub solve_cost_s: f64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            strategy: ExchangeStrategy::Ring,
            use_shm: false,
            hybrid: HybridParams::default(),
            solve_cost_s: 0.0,
        }
    }
}

/// Slices the full state into this rank's local portion (every rank holds
/// the same full state deterministically, e.g. from a replicated SCF).
pub fn scatter_state(comm: &Comm, full: &TdState, dist: &BandDistribution) -> DistState {
    let range = dist.range(comm.rank());
    let ng = full.phi.ng;
    let mut phi_local = Wavefunction {
        n_bands: range.len(),
        ng,
        ip_scale: full.phi.ip_scale,
        data: vec![Complex64::ZERO; range.len() * ng],
    };
    phi_local.data.copy_from_slice(&full.phi.data[range.start * ng..range.end * ng]);
    DistState { phi_local, sigma: full.sigma.clone(), time: full.time }
}

/// Gathers the distributed state back to a full state (allgatherv).
pub fn gather_state(comm: &mut Comm, st: &DistState, dist: &BandDistribution) -> TdState {
    let blocks = comm.hier_allgatherv(st.phi_local.data.clone());
    let ng = st.phi_local.ng;
    let mut data = Vec::with_capacity(dist.n_bands * ng);
    for b in blocks {
        data.extend_from_slice(&b);
    }
    let phi = Wavefunction {
        n_bands: dist.n_bands,
        ng,
        ip_scale: st.phi_local.ip_scale,
        data,
    };
    TdState { phi, sigma: st.sigma.clone(), time: st.time }
}

/// Distributed overlap `S = A^H B` (full N×N, replicated result):
/// band→grid transpose via `alltoallv`, local partial GEMM over the grid
/// slice, then `allreduce` — the paper's Fig. 1 workflow. Grid-point
/// ownership comes from the shared
/// [`GridDistribution`](crate::grid2d::GridDistribution) (Fig. 1 right).
pub fn dist_overlap(
    comm: &mut Comm,
    dist: &BandDistribution,
    a_local: &Wavefunction,
    b_local: &Wavefunction,
) -> CMat {
    let p = comm.size();
    let ng = a_local.ng;
    let n = dist.n_bands;
    let gdist = crate::grid2d::GridDistribution::new(ng, p);
    let my_grid = gdist.range(comm.rank());

    // Transpose both blocks to grid-point distribution.
    let transpose = |comm: &mut Comm, w: &Wavefunction| -> Vec<Vec<Complex64>> {
        let chunks: Vec<Vec<Complex64>> = (0..p)
            .map(|r| {
                let gr = gdist.range(r);
                let mut c = Vec::with_capacity(w.n_bands * gr.len());
                for b in 0..w.n_bands {
                    c.extend_from_slice(&w.band(b)[gr.clone()]);
                }
                c
            })
            .collect();
        comm.alltoallv_auto(chunks)
    };
    let a_t = transpose(comm, a_local);
    let b_t = transpose(comm, b_local);

    // Assemble (N x ng_local) band-major buffers ordered by global band.
    let glen = my_grid.len();
    let assemble = |parts: &[Vec<Complex64>]| -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; n * glen];
        for (src, part) in parts.iter().enumerate() {
            let r = dist.range(src);
            assert_eq!(part.len(), r.len() * glen);
            out[r.start * glen..r.end * glen].copy_from_slice(part);
        }
        out
    };

    let partial = if glen > 0 {
        let a_g = assemble(&a_t);
        let b_g = assemble(&b_t);
        default_backend().overlap(&a_g, &b_g, glen, a_local.ip_scale)
    } else {
        CMat::zeros(n, n)
    };
    let reduced = comm.hier_allreduce(partial.as_slice().to_vec());
    CMat::from_vec(n, n, reduced)
}

/// Distributed subspace rotation `out_j = Σ_i φ_i Q[i][j]` for locally
/// owned `j`, circulating source blocks around the ring.
pub fn dist_rotate(
    comm: &mut Comm,
    dist: &BandDistribution,
    phi_local: &Wavefunction,
    q: &CMat,
) -> Wavefunction {
    let p = comm.size();
    let ng = phi_local.ng;
    let my = dist.range(comm.rank());
    let n_out = my.len();
    let mut out = Wavefunction {
        n_bands: n_out,
        ng,
        ip_scale: phi_local.ip_scale,
        data: vec![Complex64::ZERO; n_out * ng],
    };

    let right = (comm.rank() + 1) % p;
    let left = (comm.rank() + p - 1) % p;
    let mut block = phi_local.data.clone();
    for step in 0..p {
        let src_rank = (comm.rank() + step) % p;
        let src_range = dist.range(src_rank);
        // Accumulate contributions of this block's bands.
        for (bi, gi) in src_range.clone().enumerate() {
            let src_band = &block[bi * ng..(bi + 1) * ng];
            for (oj, gj) in my.clone().enumerate() {
                let w = q[(gi, gj)];
                if w != Complex64::ZERO {
                    pwnum::cvec::axpy(w, src_band, bands::band_mut(&mut out.data, ng, oj));
                }
            }
        }
        if step + 1 < p {
            comm.require_alive(left, "the band-ring rotation");
            comm.require_alive(right, "the band-ring rotation");
            block = comm.sendrecv(left, right, 7_000 + step as u64, block);
        }
    }
    out
}

/// Distributed mixed-state density from natural orbitals: local partial
/// sums + `allreduce` (the hierarchical shm-staged variant when
/// `node_aware`).
pub fn dist_density(
    comm: &mut Comm,
    sys: &DftSystem,
    nat_local: &Wavefunction,
    occ_local: &[f64],
    node_aware: bool,
) -> Vec<f64> {
    let ng = sys.grid.len();
    let real = nat_local.to_real_all(&sys.fft);
    let mut rho = vec![0.0f64; ng];
    for (i, &d) in occ_local.iter().enumerate() {
        if d.abs() < 1e-15 {
            continue;
        }
        let band = bands::band(&real, ng, i);
        for (r, z) in rho.iter_mut().zip(band) {
            *r += SPIN_FACTOR * d * z.norm_sqr();
        }
    }
    if node_aware {
        comm.hier_allreduce(rho)
    } else {
        comm.allreduce(rho)
    }
}

/// Distributed Fock exchange `VxΨ` on the local target bands, circulating
/// the (natural-orbital) source bands with the chosen strategy. Returns
/// the result in real space.
///
/// When the local targets *alias* the local source block (pass the
/// same slice for `nat_r_local` and `psi_r_local` — the self-applied
/// case a distributed ACE rebuild performs), the diagonal block — the
/// step where a rank processes its own bands — uses the Hermitian
/// `i ≤ j` pair halving: both ends of each local pair live on this
/// rank, so one Poisson solve feeds both accumulators. Off-diagonal
/// blocks keep the one-sided loop (the swapped contribution belongs to
/// the remote owner). Note [`dist_ptim_step`]'s dense path applies Vx
/// to *trial* vectors distinct from the natural orbitals, so it stays
/// on the asymmetric path by construction; the halving engages for
/// self-applied callers (serial equivalents: `apply_pure`/ACE
/// rebuilds). Occupation screening follows the operator's
/// [`FockOptions`](pwdft::FockOptions).
///
/// `plan` is the strategy plus the modeled per-solve compute cost (a
/// bare [`ExchangeStrategy`] still works and charges nothing); with a
/// nonzero cost the virtual clock advances between transfers, which is
/// what lets the nonblocking strategies hide wire time. Each pair solve
/// counts toward the charge on every strategy, so simulated strategy
/// comparisons stay apples-to-apples.
pub fn dist_fock_apply(
    comm: &mut Comm,
    fock: &FockOperator,
    dist: &BandDistribution,
    nat_r_local: &[Complex64],
    occ: &[f64],
    psi_r_local: &[Complex64],
    plan: impl Into<ExchangePlan>,
) -> Vec<Complex64> {
    let plan: ExchangePlan = plan.into();
    let p = comm.size();
    let ng = fock.ng();
    let my_rank = comm.rank();
    let n_local_tgt = psi_r_local.len() / ng;
    let cutoff = fock.options().occ_cutoff;
    let symmetric = nat_r_local.as_ptr() == psi_r_local.as_ptr()
        && nat_r_local.len() == psi_r_local.len();

    if plan.strategy == ExchangeStrategy::RingOverlap {
        // The hierarchical subsystem's exchange on a degenerate 2-D grid
        // (every rank its own band group): double-buffered transfers,
        // tile-level progress probes, batched policy-aware schedulers.
        let pgrid = crate::grid2d::ProcessGrid::new(p, p);
        let (out, _report) = crate::grid2d::ring_overlap_fock_apply(
            comm,
            fock,
            &pgrid,
            dist,
            None,
            nat_r_local,
            occ,
            psi_r_local,
            plan.solve_cost_s,
        );
        return out;
    }

    let mut out = vec![Complex64::ZERO; psi_r_local.len()];
    // Pooled on the blocked backend (contents unspecified — fully
    // rewritten per pair): the ring inner loop stays allocation-free.
    let mut pair = fock.backend().take_scratch(ng);

    // Returns the number of pair solves the block cost, so the caller
    // can charge the modeled compute to the virtual clock.
    let process_block = |block: &[Complex64],
                         src_rank: usize,
                         out: &mut [Complex64],
                         pair: &mut [Complex64]|
     -> usize {
        let mut solves = 0usize;
        let src_range = dist.range(src_rank);
        if symmetric && src_rank == my_rank {
            // Diagonal block: i ≤ j halving over the local pair set
            // (`block` is the circulating copy of the local bands, so
            // sources and targets are bitwise the same vectors).
            let nb = src_range.len();
            for bi in 0..nb {
                let di = occ[src_range.start + bi];
                let di_on = di.abs() >= cutoff;
                let src_i = &block[bi * ng..(bi + 1) * ng];
                if di_on {
                    let oi = &mut out[bi * ng..(bi + 1) * ng];
                    fock.accumulate_pair(src_i, src_i, di, oi, pair);
                    solves += 1;
                }
                for bj in bi + 1..nb {
                    let dj = occ[src_range.start + bj];
                    let dj_on = dj.abs() >= cutoff;
                    if !di_on && !dj_on {
                        continue;
                    }
                    let src_j = &block[bj * ng..(bj + 1) * ng];
                    let (lo, hi) = out.split_at_mut(bj * ng);
                    let oi = &mut lo[bi * ng..(bi + 1) * ng];
                    let oj = &mut hi[..ng];
                    if di_on && dj_on {
                        fock.accumulate_pair_sym(src_i, src_j, di, dj, oj, oi, pair);
                    } else if di_on {
                        fock.accumulate_pair(src_i, src_j, di, oj, pair);
                    } else {
                        fock.accumulate_pair(src_j, src_i, dj, oi, pair);
                    }
                    solves += 1;
                }
            }
            return solves;
        }
        for (bi, gi) in src_range.clone().enumerate() {
            let d = occ[gi];
            if d.abs() < cutoff {
                continue;
            }
            let src_band = &block[bi * ng..(bi + 1) * ng];
            for j in 0..n_local_tgt {
                let tgt = &psi_r_local[j * ng..(j + 1) * ng];
                let oj = &mut out[j * ng..(j + 1) * ng];
                fock.accumulate_pair(src_band, tgt, d, oj, pair);
                solves += 1;
            }
        }
        solves
    };

    // Charges the block's modeled Poisson compute to the virtual clock.
    let charge = |comm: &mut Comm, solves: usize| {
        if plan.solve_cost_s > 0.0 && solves > 0 {
            comm.compute(plan.solve_cost_s * solves as f64);
        }
    };

    match plan.strategy {
        ExchangeStrategy::Bcast => {
            // Fig. 5(a): every rank broadcasts its block in turn.
            for root in 0..p {
                comm.require_alive(root, "the exchange broadcast");
                let payload =
                    if comm.rank() == root { Some(nat_r_local.to_vec()) } else { None };
                let block = comm.bcast(root, payload);
                let solves = process_block(&block, root, &mut out, &mut pair);
                charge(comm, solves);
            }
        }
        ExchangeStrategy::Ring => {
            // Fig. 5(b): synchronous neighbor rotation.
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let mut block = nat_r_local.to_vec();
            for step in 0..p {
                let src_rank = (comm.rank() + step) % p;
                let solves = process_block(&block, src_rank, &mut out, &mut pair);
                charge(comm, solves);
                if step + 1 < p {
                    comm.require_alive(left, "the exchange ring rotation");
                    comm.require_alive(right, "the exchange ring rotation");
                    block = comm.sendrecv(left, right, 8_000 + step as u64, block);
                }
            }
        }
        ExchangeStrategy::AsyncRing => {
            // Fig. 5(c): post the transfer of the *next* block, compute on
            // the current one, then wait — overlap hides transfer time.
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let mut block = nat_r_local.to_vec();
            for step in 0..p {
                let src_rank = (comm.rank() + step) % p;
                let pending = if step + 1 < p {
                    comm.require_alive(left, "the async exchange ring");
                    comm.require_alive(right, "the async exchange ring");
                    let rreq = comm.irecv(right, 9_000 + step as u64);
                    let _s = comm.isend(left, 9_000 + step as u64, block.clone());
                    Some(rreq)
                } else {
                    None
                };
                let solves = process_block(&block, src_rank, &mut out, &mut pair);
                charge(comm, solves);
                if let Some(req) = pending {
                    block = comm.wait(req).expect("ring block");
                }
            }
        }
        ExchangeStrategy::RingOverlap => unreachable!("handled above"),
    }
    fock.backend().recycle_buffer(pair);
    out
}

/// One distributed PT-IM time step (dense diagonalized exchange),
/// algorithmically identical to the serial [`crate::ptim::ptim_step`].
///
/// Resilience: drive the outer loop with [`Comm::begin_step`] so injected
/// faults ([`mpisim::FaultPlan`]) fire at the intended application step.
/// Every blocking exchange inside the step pre-checks its peers with
/// [`Comm::require_alive`], so a crashed rank surfaces on the survivors
/// as an attributed `peer rank terminated` panic naming the dead rank,
/// the requiring rank, the operation, and the step — never a deadlock.
#[allow(clippy::too_many_arguments)]
pub fn dist_ptim_step(
    comm: &mut Comm,
    sys: &DftSystem,
    laser: &LaserPulse,
    cfg: &DistConfig,
    dist: &BandDistribution,
    state: &DistState,
    dt: f64,
    max_scf: usize,
    tol_rho: f64,
) -> (DistState, StepStats) {
    let _s = pwobs::span("step.dist");
    let ng = sys.grid.len();
    let ne = SPIN_FACTOR * state.sigma.trace().re;
    let dv = sys.grid.dv();
    let x_saw = sawtooth_x(&sys.grid);
    let backend = default_backend().clone();
    let fock =
        FockOperator::with_options(&sys.grid, cfg.hybrid.omega, backend.clone(), cfg.hybrid.fock);
    let t_mid = state.time + 0.5 * dt;
    let mut stats = StepStats::default();

    // Memory accounting for the non-scalable square matrices
    // (Sec. IV-B3): either one SHM window per node or a private copy per
    // rank. Contents are identical everywhere, so only accounting differs.
    if cfg.use_shm {
        let n = dist.n_bands;
        let win = comm.shm_window::<f64>(0xC0FFEE, 2 * n * n);
        if comm.rank() == comm.node_leader() {
            let flat: Vec<f64> =
                state.sigma.as_slice().iter().flat_map(|z| [z.re, z.im]).collect();
            win.write(0, &flat);
        }
        comm.node_barrier();
    } else {
        let n = dist.n_bands as u64;
        comm.alloc_private(16 * n * n);
    }

    // The fixed-point map evaluated on the current local iterate.
    let update = |comm: &mut Comm,
                  phi_mid_local: &Wavefunction,
                  sigma_mid: &CMat,
                  stats: &mut StepStats|
     -> (Wavefunction, CMat, Vec<f64>) {
        // Natural orbitals: diagonalize σ (replicated) and rotate the
        // distributed block (ring).
        let e = eigh(sigma_mid);
        let nat_local = dist_rotate(comm, dist, phi_mid_local, &e.vectors);
        let my = dist.range(comm.rank());
        let occ_local: Vec<f64> = my.clone().map(|g| e.values[g]).collect();

        // Density and local potentials (replicated after allreduce).
        let rho = dist_density(comm, sys, &nat_local, &occ_local, cfg.use_shm);
        let hxc = build_hxc_with(&*backend, &sys.grid, &sys.fft, &rho);
        let mut vext = vec![0.0; ng];
        external_potential(&x_saw, laser.field(t_mid), &mut vext);
        let vtot: Vec<f64> = sys
            .vloc
            .iter()
            .zip(&hxc.vhxc)
            .zip(&vext)
            .map(|((a, b), c)| a + b + c)
            .collect();

        // H Φ_mid on local bands: kinetic + local potential, with the
        // local-potential product and FFT batched through the backend.
        let mut hphi_local = Wavefunction::zeros_like(phi_mid_local);
        let psi_r = phi_mid_local.to_real_all_with(&*backend, &sys.fft);
        let mut work = backend.take_buffer_copy(&psi_r);
        backend.scale_by_real(&vtot, &mut work);
        sys.fft.forward_many_with(&*backend, &mut work, phi_mid_local.n_bands);
        for b in 0..phi_mid_local.n_bands {
            let wband = &work[b * ng..(b + 1) * ng];
            let src = phi_mid_local.band(b);
            let dst = hphi_local.band_mut(b);
            for ((o, w), (&g2, c)) in dst.iter_mut().zip(wband).zip(sys.grid.g2.iter().zip(src))
            {
                *o = *w + c.scale(0.5 * g2);
            }
        }
        backend.recycle_buffer(work);
        // ... plus the distributed Fock exchange.
        if cfg.hybrid.alpha != 0.0 {
            let nat_r = nat_local.to_real_all_with(&*backend, &sys.fft);
            let plan =
                ExchangePlan { strategy: cfg.strategy, solve_cost_s: cfg.solve_cost_s };
            let vx_r =
                dist_fock_apply(comm, &fock, dist, &nat_r, &e.values, &psi_r, plan);
            stats.fock_applies += 1;
            let mut vx = Wavefunction::from_real_with(&*backend, &sys.grid, &sys.fft, vx_r);
            vx.mask(&sys.grid);
            for (h, x) in hphi_local.data.iter_mut().zip(&vx.data) {
                *h += x.scale(cfg.hybrid.alpha);
            }
        }
        hphi_local.mask(&sys.grid);

        // S, Hm via the alltoallv/allreduce transpose path.
        let s = dist_overlap(comm, dist, phi_mid_local, phi_mid_local);
        let hm = dist_overlap(comm, dist, phi_mid_local, &hphi_local).hermitian_part();

        // (I − P̃)HΦ: coefficients C = S⁻¹ Hm, correction via ring rotate.
        let c = solve_hpd(&s, &hm).expect("midpoint overlap positive definite");
        let corr = dist_rotate(comm, dist, phi_mid_local, &c);
        let mut phi_next = Wavefunction::zeros_like(&state.phi_local);
        for i in 0..phi_next.data.len() {
            let upd = hphi_local.data[i] - corr.data[i];
            phi_next.data[i] = state.phi_local.data[i] + c64(0.0, -dt) * upd;
        }

        // σ update (replicated, deterministic).
        let comm_hm = hm.commutator(sigma_mid);
        let mut sigma_next = state.sigma.clone();
        sigma_next.axpy(c64(0.0, -dt), &comm_hm);

        (phi_next, sigma_next, rho)
    };

    // Predictor.
    let (phi_p, sigma_p, rho0) = update(comm, &state.phi_local, &state.sigma, &mut stats);
    let mut next = DistState { phi_local: phi_p, sigma: sigma_p, time: state.time + dt };
    let mut rho_prev = rho0;
    let mut mixer = AndersonMixer::new(10, 0.6);

    for it in 0..max_scf {
        stats.scf_iters = it + 1;
        // Midpoint.
        let mut phi_mid = Wavefunction::zeros_like(&state.phi_local);
        backend.lincomb(
            Complex64::from_re(0.5),
            &state.phi_local.data,
            Complex64::from_re(0.5),
            &next.phi_local.data,
            &mut phi_mid.data,
        );
        let sigma_mid =
            state.sigma.add(&next.sigma).scaled(Complex64::from_re(0.5)).hermitian_part();

        let (phi_new, sigma_new, rho_mid) = update(comm, &phi_mid, &sigma_mid, &mut stats);
        stats.residual = density_residual(&rho_mid, &rho_prev, dv, ne);
        rho_prev = rho_mid;
        if it > 0 && stats.residual < tol_rho {
            stats.converged = true;
            break;
        }

        // Anderson on (local Φ, replicated σ); σ mixing is identical on
        // every rank because the inputs are.
        let pack = |phi: &Wavefunction, sigma: &CMat| -> Vec<Complex64> {
            let mut v = Vec::with_capacity(phi.data.len() + sigma.as_slice().len());
            v.extend_from_slice(&phi.data);
            v.extend_from_slice(sigma.as_slice());
            v
        };
        let x = pack(&next.phi_local, &next.sigma);
        let tx = pack(&phi_new, &sigma_new);
        let mixed = mixer.step(&x, &tx);
        let nwf = next.phi_local.data.len();
        next.phi_local.data.copy_from_slice(&mixed[..nwf]);
        let n = dist.n_bands;
        next.sigma = CMat::from_vec(n, n, mixed[nwf..].to_vec());
    }

    // Final constraints: Löwdin via distributed overlap + ring rotation;
    // σ conjugate-symmetrized.
    let s = dist_overlap(comm, dist, &next.phi_local, &next.phi_local);
    let es = eigh(&s);
    let n = dist.n_bands;
    let mut m = CMat::zeros(n, n);
    for i in 0..n {
        assert!(es.values[i] > 1e-14, "singular overlap in Löwdin step");
        let w = 1.0 / es.values[i].sqrt();
        for r in 0..n {
            m[(r, i)] = es.vectors[(r, i)].scale(w);
        }
    }
    let q = backend.gemm(
        Complex64::ONE,
        &m,
        pwnum::gemm::Op::None,
        &es.vectors,
        pwnum::gemm::Op::ConjTrans,
        Complex64::ZERO,
        None,
    );
    next.phi_local = dist_rotate(comm, dist, &next.phi_local, &q);
    next.sigma = next.sigma.hermitian_part();
    (next, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{Cluster, NetworkModel};
    use pwdft::Cell;

    fn fixture() -> (DftSystem, TdState) {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
        let mut phi = Wavefunction::random(&sys.grid, 4, 77);
        phi.orthonormalize_lowdin();
        let mut sigma = CMat::from_real_diag(&[1.0, 0.8, 0.5, 0.2]);
        sigma[(0, 1)] = c64(0.05, 0.02);
        sigma[(1, 0)] = c64(0.05, -0.02);
        (sys, TdState { phi, sigma, time: 0.0 })
    }

    #[test]
    fn band_distribution_covers_all() {
        let d = BandDistribution::new(10, 3);
        assert_eq!(d.count(0), 4);
        assert_eq!(d.count(1), 3);
        assert_eq!(d.count(2), 3);
        assert_eq!(d.range(0), 0..4);
        assert_eq!(d.range(1), 4..7);
        assert_eq!(d.range(2), 7..10);
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let (_, st) = fixture();
        let out = Cluster::ideal(3).run(|c| {
            let dist = BandDistribution::new(4, c.size());
            let local = scatter_state(c, &st, &dist);
            let full = gather_state(c, &local, &dist);
            full.phi.max_abs_diff(&st.phi)
        });
        for (d, _) in &out {
            assert!(*d < 1e-15);
        }
    }

    #[test]
    fn dist_overlap_matches_serial() {
        let (_, st) = fixture();
        let serial = st.phi.overlap(&st.phi);
        for p in [1, 2, 3, 4] {
            let sref = serial.clone();
            let st2 = st.clone();
            let out = Cluster::ideal(p).run(move |c| {
                let dist = BandDistribution::new(4, c.size());
                let local = scatter_state(c, &st2, &dist);
                let s = dist_overlap(c, &dist, &local.phi_local, &local.phi_local);
                s.max_abs_diff(&sref)
            });
            for (d, _) in &out {
                assert!(*d < 1e-10, "p={p}: overlap mismatch {d}");
            }
        }
    }

    #[test]
    fn dist_rotate_matches_serial() {
        let (_, st) = fixture();
        let e = eigh(&st.sigma);
        let serial = st.phi.rotated(&e.vectors);
        let out = Cluster::ideal(3).run(|c| {
            let dist = BandDistribution::new(4, c.size());
            let local = scatter_state(c, &st, &dist);
            let rot = dist_rotate(c, &dist, &local.phi_local, &e.vectors);
            let full = gather_state(
                c,
                &DistState { phi_local: rot, sigma: st.sigma.clone(), time: 0.0 },
                &dist,
            );
            full.phi.max_abs_diff(&serial)
        });
        for (d, _) in &out {
            assert!(*d < 1e-10, "rotate mismatch {d}");
        }
    }

    #[test]
    fn all_strategies_match_serial_fock() {
        let (sys, st) = fixture();
        // Serial reference (diagonalized).
        let e = eigh(&st.sigma);
        let nat = st.phi.rotated(&e.vectors);
        let fock = FockOperator::new(&sys.grid, 0.2);
        let nat_r = nat.to_real_all(&sys.fft);
        let phi_r = st.phi.to_real_all(&sys.fft);
        let serial = fock.apply_diag(&nat_r, &e.values, &phi_r);
        let ng = sys.grid.len();

        for strategy in [
            ExchangeStrategy::Bcast,
            ExchangeStrategy::Ring,
            ExchangeStrategy::AsyncRing,
            ExchangeStrategy::RingOverlap,
        ] {
            let out = Cluster::ideal(2).run(|c| {
                let dist = BandDistribution::new(4, c.size());
                let my = dist.range(c.rank());
                let fock = FockOperator::new(&sys.grid, 0.2);
                let nat_local_r = nat_r[my.start * ng..my.end * ng].to_vec();
                let psi_local_r = phi_r[my.start * ng..my.end * ng].to_vec();
                let vx = dist_fock_apply(
                    c,
                    &fock,
                    &dist,
                    &nat_local_r,
                    &e.values,
                    &psi_local_r,
                    strategy,
                );
                // Compare against the serial slice.
                let want = &serial[my.start * ng..my.end * ng];
                pwnum::cvec::max_abs_diff(&vx, want)
            });
            for (d, _) in &out {
                assert!(*d < 1e-9, "{strategy:?}: Fock mismatch {d}");
            }
        }
    }

    #[test]
    fn symmetric_dist_fock_halves_diagonal_blocks_and_matches_serial() {
        // Self-applied case (ACE rebuild): local targets alias the local
        // source block, so each rank's diagonal block runs the i ≤ j
        // pair halving. Must match the serial pair-symmetric apply.
        let (sys, st) = fixture();
        let e = eigh(&st.sigma);
        let nat = st.phi.rotated(&e.vectors);
        let fock = FockOperator::new(&sys.grid, 0.2);
        let nat_r = nat.to_real_all(&sys.fft);
        let serial = fock.apply_pure(&nat_r, &e.values);
        let ng = sys.grid.len();

        for strategy in [
            ExchangeStrategy::Bcast,
            ExchangeStrategy::Ring,
            ExchangeStrategy::AsyncRing,
            ExchangeStrategy::RingOverlap,
        ] {
            for p in [1, 2, 3] {
                let out = Cluster::ideal(p).run(|c| {
                    let dist = BandDistribution::new(4, c.size());
                    let my = dist.range(c.rank());
                    let fock = FockOperator::new(&sys.grid, 0.2);
                    let nat_local_r = nat_r[my.start * ng..my.end * ng].to_vec();
                    // Targets ARE the sources: pass the same slice.
                    let vx = dist_fock_apply(
                        c,
                        &fock,
                        &dist,
                        &nat_local_r,
                        &e.values,
                        &nat_local_r,
                        strategy,
                    );
                    let want = &serial[my.start * ng..my.end * ng];
                    pwnum::cvec::max_abs_diff(&vx, want)
                });
                for (d, _) in &out {
                    assert!(*d < 1e-9, "{strategy:?} p={p}: symmetric Fock mismatch {d}");
                }
            }
        }
    }

    #[test]
    fn distributed_step_matches_serial_ptim() {
        let (sys, st) = fixture();
        let laser = LaserPulse::off();
        let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };

        // Serial reference.
        let eng = crate::engine::TdEngine::new(&sys, LaserPulse::off(), hyb);
        let cfg_serial = crate::ptim::PtimConfig {
            dt: 0.3,
            max_scf: 25,
            tol_rho: 1e-9,
            anderson_depth: 10,
            anderson_beta: 0.6,
        };
        let (serial_next, serial_stats) = crate::ptim::ptim_step(&eng, &st, &cfg_serial);
        assert!(serial_stats.converged);
        let rho_serial =
            eng.eval(&serial_next.phi, &serial_next.sigma, serial_next.time).rho;

        for (p, strategy) in [
            (2, ExchangeStrategy::Ring),
            (4, ExchangeStrategy::AsyncRing),
            (3, ExchangeStrategy::RingOverlap),
        ] {
            let rho_ref = rho_serial.clone();
            let st2 = st.clone();
            let sys_ref = &sys;
            let laser_ref = &laser;
            let sigma_ref = serial_next.sigma.clone();
            let out = Cluster::new(p, 2, NetworkModel::ideal()).run(move |c| {
                let dist = BandDistribution::new(4, c.size());
                let local = scatter_state(c, &st2, &dist);
                let cfg = DistConfig { strategy, use_shm: true, hybrid: hyb, ..Default::default() };
                let (next, stats) =
                    dist_ptim_step(c, sys_ref, laser_ref, &cfg, &dist, &local, 0.3, 25, 1e-9);
                let full = gather_state(c, &next, &dist);
                let eng = crate::engine::TdEngine::new(sys_ref, LaserPulse::off(), hyb);
                let rho = eng.eval(&full.phi, &full.sigma, full.time).rho;
                let res = density_residual(&rho, &rho_ref, sys_ref.grid.dv(), 5.0);
                (res, stats.converged, full.sigma.max_abs_diff(&sigma_ref))
            });
            for (rank, ((res, conv, sig_diff), _)) in out.iter().enumerate() {
                assert!(*conv, "p={p} rank={rank} did not converge");
                assert!(*res < 1e-6, "p={p}: density mismatch {res}");
                assert!(*sig_diff < 1e-6, "p={p}: sigma mismatch {sig_diff}");
            }
        }
    }

    #[test]
    fn strategies_populate_expected_timing_categories() {
        use mpisim::Category;
        let (sys, st) = fixture();
        let net = NetworkModel {
            topology: mpisim::Topology::Torus(vec![2, 2]),
            hop_latency: 1e-6,
            sw_overhead: 1e-6,
            bandwidth: 1e9,
            shm_bandwidth: 1e10,
            shm_latency: 1e-7,
        };
        let e = eigh(&st.sigma);
        let nat = st.phi.rotated(&e.vectors);
        let nat_r = nat.to_real_all(&sys.fft);
        let phi_r = st.phi.to_real_all(&sys.fft);
        let ng = sys.grid.len();

        let run = |strategy: ExchangeStrategy| {
            let nat_r = nat_r.clone();
            let phi_r = phi_r.clone();
            let e_values = e.values.clone();
            let sys_ref = &sys;
            let out = Cluster::new(4, 1, net.clone()).run(move |c| {
                let dist = BandDistribution::new(4, c.size());
                let my = dist.range(c.rank());
                let fock = FockOperator::new(&sys_ref.grid, 0.2);
                let nat_local = nat_r[my.start * ng..my.end * ng].to_vec();
                let psi_local = phi_r[my.start * ng..my.end * ng].to_vec();
                let _ = dist_fock_apply(
                    c,
                    &fock,
                    &dist,
                    &nat_local,
                    &e_values,
                    &psi_local,
                    strategy,
                );
                (
                    c.stats.time(Category::Bcast),
                    c.stats.time(Category::Sendrecv),
                    c.stats.time(Category::Wait),
                )
            });
            out.into_iter().map(|(t, _)| t).collect::<Vec<_>>()
        };

        let bcast = run(ExchangeStrategy::Bcast);
        assert!(bcast.iter().any(|(b, s, w)| *b > 0.0 && *s == 0.0 && *w == 0.0));
        let ring = run(ExchangeStrategy::Ring);
        assert!(ring.iter().all(|(b, s, _)| *b == 0.0 && *s > 0.0));
        let async_ring = run(ExchangeStrategy::AsyncRing);
        assert!(async_ring.iter().all(|(b, s, w)| *b == 0.0 && *s == 0.0 && *w > 0.0));
    }

    #[test]
    fn shm_reduces_sigma_footprint() {
        let (sys, st) = fixture();
        let laser = LaserPulse::off();
        let hyb = HybridParams { alpha: 0.0, omega: 0.2, ..Default::default() };
        let run = |use_shm: bool| {
            let st2 = st.clone();
            let sys_ref = &sys;
            let laser_ref = &laser;
            let out = Cluster::new(4, 4, NetworkModel::ideal()).run(move |c| {
                let dist = BandDistribution::new(4, c.size());
                let local = scatter_state(c, &st2, &dist);
                let cfg =
                    DistConfig { strategy: ExchangeStrategy::Ring, use_shm, hybrid: hyb, ..Default::default() };
                let _ = dist_ptim_step(c, sys_ref, laser_ref, &cfg, &dist, &local, 0.2, 4, 1e-7);
                (
                    c.stats.shm_bytes,
                    c.stats.private_bytes,
                    c.stats.unshared_equivalent_bytes,
                )
            });
            out[0].0
        };
        let (shm_b, priv_b, unshared) = run(true);
        let (shm_b0, priv_b0, _) = run(false);
        assert!(shm_b > 0 && priv_b == 0);
        assert_eq!(shm_b0, 0);
        assert!(priv_b0 > 0);
        // 4 ranks/node: shared cost is 1/4 of the unshared equivalent.
        assert_eq!(shm_b * 4, unshared);
    }
}
