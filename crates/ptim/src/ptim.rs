//! The PT-IM propagator (paper Alg. 1): parallel-transport gauge +
//! implicit midpoint rule, solved as a fixed point with Anderson mixing.
//!
//! Every fixed-point iteration evaluates the midpoint Hamiltonian —
//! including one full (dense, diagonalized) Fock exchange application —
//! which is why the paper reports ~25 `VxΦ` evaluations per 50 as step
//! before the ACE optimization.

use crate::engine::TdEngine;
use crate::propagate::{
    density_residual, midpoint_with, pt_update, step_with_drift_guard, StepStats,
};
use crate::state::TdState;
use pwdft::mixing::AndersonMixer;

/// PT-IM fixed-point parameters.
#[derive(Clone, Copy, Debug)]
pub struct PtimConfig {
    /// Time step (a.u.). Paper: 50 as ≈ 2.067 a.u.
    pub dt: f64,
    /// Maximum fixed-point iterations per step (paper average: 25).
    pub max_scf: usize,
    /// Density convergence threshold (relative L1; paper: 1e-6).
    pub tol_rho: f64,
    /// Anderson history depth (paper: 20).
    pub anderson_depth: usize,
    /// Anderson damping.
    pub anderson_beta: f64,
}

impl Default for PtimConfig {
    fn default() -> Self {
        PtimConfig {
            dt: 50.0 / crate::laser::AU_TIME_AS,
            max_scf: 30,
            tol_rho: 1e-6,
            anderson_depth: 20,
            anderson_beta: 0.6,
        }
    }
}

impl PtimConfig {
    /// The same configuration with a different time step — how the
    /// recovery ladder builds its halved-dt retries.
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }
}

/// One PT-IM time step with dense (diagonalized) Fock exchange. Under a
/// reduced precision policy the step runs the drift monitor and may be
/// recomputed at fp64 (see
/// [`step_with_drift_guard`]).
pub fn ptim_step(eng: &TdEngine, state: &TdState, cfg: &PtimConfig) -> (TdState, StepStats) {
    step_with_drift_guard(eng, |e| ptim_step_once(e, state, cfg))
}

/// One unguarded PT-IM step (the drift monitor wraps this).
fn ptim_step_once(eng: &TdEngine, state: &TdState, cfg: &PtimConfig) -> (TdState, StepStats) {
    let _s = pwobs::span("step.ptim");
    let solve_snap = eng.counters.snapshot();
    let start_err = crate::propagate::monitor_active(eng)
        .then(|| state.orthonormality_error());
    let dt = cfg.dt;
    let t_mid = state.time + 0.5 * dt;
    let ne = state.electron_count();
    let dv = eng.sys.grid.dv();
    let mut stats = StepStats::default();

    // Predictor: one explicit application of the update map with the
    // midpoint approximated by (Φ_n, σ_n)  — Alg. 1 line 1.
    let ev_n = eng.eval(&state.phi, &state.sigma, state.time);
    let h_n = eng.hamiltonian_dense(&ev_n);
    let (phi_p, sigma_p) = pt_update(state, &h_n, &state.phi, &state.sigma, dt);
    if eng.hybrid.alpha != 0.0 {
        stats.fock_applies += 1;
    }
    let mut next = TdState { phi: phi_p, sigma: sigma_p, time: state.time + dt };

    let mut mixer = AndersonMixer::new(cfg.anderson_depth, cfg.anderson_beta);
    let mut rho_prev = ev_n.rho;

    for it in 0..cfg.max_scf {
        stats.scf_iters = it + 1;
        // Midpoint quantities (Eq. 4-5).
        let (phi_mid, sigma_mid) = midpoint_with(&*eng.backend, state, &next);
        let ev_mid = eng.eval(&phi_mid, &sigma_mid, t_mid);

        // Convergence: change of the midpoint density between iterations
        // (paper Alg. 1 line 11: "density change sufficiently small").
        stats.residual = density_residual(&ev_mid.rho, &rho_prev, dv, ne);
        rho_prev = ev_mid.rho.clone();
        if it > 0 && stats.residual < cfg.tol_rho {
            stats.converged = true;
            break;
        }

        // Update map (Eq. 6) — one HΦ, hence one VxΦ in hybrid mode.
        let h_mid = eng.hamiltonian_dense(&ev_mid);
        let (phi_new, sigma_new) = pt_update(state, &h_mid, &phi_mid, &sigma_mid, dt);
        if eng.hybrid.alpha != 0.0 {
            stats.fock_applies += 1;
        }

        // Anderson acceleration on the stacked unknown (Alg. 1 line 8).
        let x = next.pack();
        let tx = {
            let trial =
                TdState { phi: phi_new, sigma: sigma_new, time: next.time };
            trial.pack()
        };
        let mixed = mixer.step(&x, &tx);
        next.unpack_into(&mixed);
    }

    // Drift + precision accounting, then Alg. 1 line 13: orthogonalize
    // Φ, conjugate-symmetrize σ.
    if let Some(e0) = start_err {
        stats.orthonormality_drift = (next.orthonormality_error() - e0).max(0.0);
    }
    (stats.fock_solves_fp64, stats.fock_solves_fp32) = eng.counters.since(solve_snap);
    stats.pool_peak_bytes = crate::propagate::pool_peak_bytes(eng);
    next.enforce_constraints();
    (next, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HybridParams;
    use crate::laser::LaserPulse;
    use pwdft::{Cell, DftSystem, Wavefunction};
    use pwnum::cmat::CMat;

    fn fixture(alpha: f64) -> (DftSystem, TdState, HybridParams) {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
        let mut phi = Wavefunction::random(&sys.grid, 3, 23);
        phi.orthonormalize_lowdin();
        let sigma = CMat::from_real_diag(&[1.0, 0.6, 0.4]);
        let st = TdState { phi, sigma, time: 0.0 };
        (sys, st, HybridParams { alpha, omega: 0.2, ..Default::default() })
    }

    #[test]
    fn ptim_step_converges_and_preserves_invariants() {
        let (sys, st, hyb) = fixture(0.0);
        let eng = TdEngine::new(&sys, LaserPulse::off(), hyb);
        let cfg = PtimConfig { dt: 0.5, max_scf: 40, tol_rho: 1e-8, ..Default::default() };
        let (next, stats) = ptim_step(&eng, &st, &cfg);
        assert!(stats.converged, "PT-IM did not converge: residual {}", stats.residual);
        assert!(next.orthonormality_error() < 1e-9);
        assert!(next.sigma_hermiticity_error() < 1e-12);
        assert!((next.electron_count() - st.electron_count()).abs() < 1e-8);
        assert!((next.time - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ptim_energy_conservation_field_free() {
        let (sys, st, hyb) = fixture(0.0);
        let eng = TdEngine::new(&sys, LaserPulse::off(), hyb);
        let e0 = eng.total_energy(&st).total();
        let cfg = PtimConfig { dt: 0.4, max_scf: 50, tol_rho: 1e-9, ..Default::default() };
        let mut s = st;
        for _ in 0..5 {
            let (next, stats) = ptim_step(&eng, &s, &cfg);
            assert!(stats.converged);
            s = next;
        }
        let e1 = eng.total_energy(&s).total();
        assert!((e1 - e0).abs() < 1e-4 * e0.abs().max(1.0), "drift {e0} -> {e1}");
    }

    #[test]
    fn ptim_hybrid_counts_fock_per_scf() {
        let (sys, st, hyb) = fixture(0.25);
        let eng = TdEngine::new(&sys, LaserPulse::off(), hyb);
        let cfg = PtimConfig { dt: 0.5, max_scf: 10, tol_rho: 1e-7, ..Default::default() };
        let (_, stats) = ptim_step(&eng, &st, &cfg);
        // One predictor + one per SCF iteration that ran an update.
        assert!(stats.fock_applies >= stats.scf_iters.min(2));
        assert!(stats.fock_applies <= cfg.max_scf + 1);
    }

    #[test]
    fn sigma_develops_off_diagonals_under_field() {
        // With an external field the PT gauge moves occupation between
        // orbitals: σ must develop off-diagonal structure (Fig. 8).
        let (sys, st, hyb) = fixture(0.0);
        let laser = LaserPulse { e0: 0.1, omega: 0.12, t_center: 1.0, t_width: 1.0 };
        let eng = TdEngine::new(&sys, laser, hyb);
        let cfg = PtimConfig { dt: 0.5, max_scf: 40, tol_rho: 1e-8, ..Default::default() };
        let mut s = st;
        for _ in 0..4 {
            let (next, _) = ptim_step(&eng, &s, &cfg);
            s = next;
        }
        let mut off = 0.0f64;
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    off = off.max(s.sigma[(i, j)].abs());
                }
            }
        }
        assert!(off > 1e-6, "σ stayed diagonal under a strong field: {off}");
    }
}
