//! Shared propagation primitives: the PT-IM update map (Eq. 6) and
//! step statistics.

use crate::state::TdState;
use pwdft::hamiltonian::Hamiltonian;
use pwdft::Wavefunction;
use pwnum::backend::{default_backend, Backend};
use pwnum::chol::solve_hpd;
use pwnum::cmat::CMat;
use pwnum::complex::{c64, Complex64};

/// Per-step cost/convergence statistics (the quantities the paper's
/// Fig. 9 discussion tracks: SCF counts and Fock-operator applications).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Fixed-point (inner SCF) iterations used.
    pub scf_iters: usize,
    /// Outer (ACE rebuild) iterations, 0 for non-ACE propagators.
    pub outer_iters: usize,
    /// Number of full Fock-exchange evaluations (`VxΦ` builds or dense
    /// applications) in this step.
    pub fock_applies: usize,
    /// Whether the fixed point converged within the iteration budget.
    pub converged: bool,
    /// Final density residual (relative L1).
    pub residual: f64,
    /// Total occupation weight dropped by Fock screening across the
    /// step's exchange evaluations (Σ of
    /// [`FockApplyStats::skipped_weight`](pwdft::FockApplyStats) — the
    /// error-bound handle of DESIGN.md §3; 0 at the default cutoff).
    pub fock_skipped_weight: f64,
    /// Screened Poisson solves performed in fp64 during this step
    /// (snapshot delta of the engine's shared
    /// [`SolveCounters`](pwdft::fock::SolveCounters)).
    pub fock_solves_fp64: usize,
    /// Screened Poisson solves performed in fp32 during this step —
    /// the per-step precision count of the mixed pipeline. After an
    /// auto-promotion this still includes the discarded fp32 work.
    pub fock_solves_fp32: usize,
    /// The step's *increase* in the propagated orbitals' orthonormality
    /// error, measured before the end-of-step constraints — the drift
    /// signal the precision monitor trips on. Only measured (nonzero)
    /// when the monitor is active: a reduced exchange stage with a
    /// finite `promote_drift` on a hybrid run.
    pub orthonormality_drift: f64,
    /// 1 when the drift monitor tripped and the step was recomputed at
    /// fp64 (see
    /// [`PrecisionPolicy::promote_drift`](pwnum::precision::PrecisionPolicy)).
    pub precision_promotions: usize,
    /// Number of dt halvings the recovery ladder needed before this
    /// step's result was finite (0 on a healthy step; see
    /// [`step_with_recovery`](crate::resilience::step_with_recovery)).
    pub recovery_dt_halvings: usize,
    /// Checkpoint restores charged to this step by the
    /// [`resilience::run`](crate::resilience::run) driver (the step that
    /// finally succeeded after a restore carries the count).
    pub recovery_restores: usize,
    /// High-water mark of the backend buffer pools (fp64 + fp32 arenas,
    /// bytes) as of the end of this step — the engine-lifetime peak from
    /// [`Backend::pool_stats`], not
    /// a per-step delta (pools only grow, so the last step's value is
    /// the run's working-set peak).
    pub pool_peak_bytes: usize,
}

/// Backend pool high-water mark (fp64 + fp32 arenas, bytes) — the value
/// every propagator stamps into [`StepStats::pool_peak_bytes`].
pub(crate) fn pool_peak_bytes(eng: &crate::engine::TdEngine<'_>) -> usize {
    let ps = eng.backend.pool_stats();
    ps.fp64.peak_bytes + ps.fp32.peak_bytes
}

/// True when the engine's policy asks the propagators to measure the
/// per-step orthonormality drift (two extra band overlaps per step —
/// skipped entirely for all-fp64 and semilocal runs).
pub(crate) fn monitor_active(eng: &crate::engine::TdEngine<'_>) -> bool {
    eng.hybrid.alpha != 0.0 && eng.hybrid.fock.precision.monitors_drift()
}

/// Runs one propagator step under the engine's precision policy with
/// the per-step drift monitor: when the policy reduces the exchange
/// stage and the step's pre-constraint orthonormality drift exceeds
/// [`PrecisionPolicy::promote_drift`](pwnum::precision::PrecisionPolicy)
/// (or goes non-finite — the NaN guard), the whole step is recomputed
/// on an all-fp64 engine and reported via
/// [`StepStats::precision_promotions`].
///
/// The monitor is a guardrail against *catastrophic* fp32 failures
/// (blow-ups, NaNs from degenerate pair solves); routine fp32 rounding
/// sits orders of magnitude below the default threshold (DESIGN.md
/// §"Precision error budget").
pub fn step_with_drift_guard<'s, F>(
    eng: &crate::engine::TdEngine<'s>,
    step: F,
) -> (TdState, StepStats)
where
    F: Fn(&crate::engine::TdEngine<'s>) -> (TdState, StepStats),
{
    let _s = pwobs::span("step.guard");
    let (next, stats) = step(eng);
    let policy = eng.hybrid.fock.precision;
    if eng.hybrid.alpha == 0.0 || !policy.monitors_drift() {
        return (next, stats);
    }
    let tripped = !stats.orthonormality_drift.is_finite()
        || stats.orthonormality_drift > policy.promote_drift;
    if !tripped {
        return (next, stats);
    }
    // Auto-promotion: recompute the step at fp64. The discarded
    // attempt's solves (fp32, and fp64 under the attribution half-path)
    // stay visible in the stats so cost accounting is honest.
    let eng64 = eng.promoted();
    let (next64, mut stats64) = step(&eng64);
    stats64.precision_promotions = 1;
    stats64.fock_solves_fp32 += stats.fock_solves_fp32;
    stats64.fock_solves_fp64 += stats.fock_solves_fp64;
    // Keep the drift value that tripped the guard (the promoted rerun's
    // monitor is inactive, so it would otherwise report 0).
    stats64.orthonormality_drift = stats.orthonormality_drift;
    (next64, stats64)
}

/// The midpoint `(Φ, σ)` of two states (Eq. 4), on the process default
/// backend.
pub fn midpoint(a: &TdState, b: &TdState) -> (Wavefunction, CMat) {
    midpoint_with(&**default_backend(), a, b)
}

/// [`midpoint`] on an explicit compute backend.
pub fn midpoint_with(backend: &dyn Backend, a: &TdState, b: &TdState) -> (Wavefunction, CMat) {
    let mut phi = Wavefunction::zeros_like(&a.phi);
    backend.lincomb(
        Complex64::from_re(0.5),
        &a.phi.data,
        Complex64::from_re(0.5),
        &b.phi.data,
        &mut phi.data,
    );
    let sigma = a.sigma.add(&b.sigma).scaled(Complex64::from_re(0.5)).hermitian_part();
    (phi, sigma)
}

/// One application of the PT-IM update map (Eq. 6):
///
/// ```text
/// Φ_{n+1} = Φ_n − iΔt (I − P̃_mid) H_mid Φ_mid
/// σ_{n+1} = σ_n − iΔt [Φ_mid^H H_mid Φ_mid, σ_mid]
/// ```
///
/// `h` must be the Hamiltonian at the midpoint time/density. Exactly one
/// `HΦ` (hence one Fock application in dense mode) is performed.
pub fn pt_update(
    prev: &TdState,
    h: &Hamiltonian,
    phi_mid: &Wavefunction,
    sigma_mid: &CMat,
    dt: f64,
) -> (Wavefunction, CMat) {
    let _s = pwobs::span("gemm.pt_update");
    let ng = phi_mid.ng;
    let be = &*h.backend;
    let hphi = h.apply(phi_mid);
    let s = phi_mid.overlap_with(be, phi_mid);
    let hm = phi_mid.overlap_with(be, &hphi).hermitian_part();

    // (I − P̃) H Φ_mid with P̃ = Φ_mid S⁻¹ Φ_mid^H:
    // correction coefficients C = S⁻¹ (Φ_mid^H H Φ_mid).
    let c = solve_hpd(&s, &hm).expect("midpoint overlap must stay positive definite");
    let mut update = hphi.data;
    be.rotate_acc(Complex64::from_re(-1.0), &phi_mid.data, &c, ng, &mut update);

    // Φ_{n+1} = Φ_n − iΔt · update.
    let mut phi_next = Wavefunction::zeros_like(&prev.phi);
    be.lincomb(
        Complex64::ONE,
        &prev.phi.data,
        c64(0.0, -dt),
        &update,
        &mut phi_next.data,
    );

    // σ_{n+1} = σ_n − iΔt [Hm, σ_mid].
    let comm = hm.commutator(sigma_mid);
    let mut sigma_next = prev.sigma.clone();
    sigma_next.axpy(c64(0.0, -dt), &comm);

    (phi_next, sigma_next)
}

/// Relative L1 difference between two densities (per electron).
pub fn density_residual(rho_a: &[f64], rho_b: &[f64], dv: f64, n_electrons: f64) -> f64 {
    rho_a
        .iter()
        .zip(rho_b)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        * dv
        / n_electrons
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{HybridParams, TdEngine};
    use crate::laser::LaserPulse;
    use pwdft::{Cell, DftSystem, Wavefunction};

    fn fixture() -> (DftSystem, TdState) {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
        let phi = Wavefunction::random(&sys.grid, 4, 9);
        let sigma = CMat::from_real_diag(&[1.0, 0.9, 0.5, 0.2]);
        let st = TdState { phi, sigma, time: 0.0 };
        (sys, st)
    }

    #[test]
    fn midpoint_of_identical_states_is_identity() {
        let (_, st) = fixture();
        let (phi, sigma) = midpoint(&st, &st);
        assert!(phi.max_abs_diff(&st.phi) < 1e-15);
        assert!(sigma.max_abs_diff(&st.sigma) < 1e-15);
    }

    #[test]
    fn pt_update_preserves_sigma_trace_and_hermiticity() {
        let (sys, st) = fixture();
        let eng =
            TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let ev = eng.eval(&st.phi, &st.sigma, 0.0);
        let h = eng.hamiltonian_dense(&ev);
        let (_, sigma_next) = pt_update(&st, &h, &st.phi, &st.sigma, 0.1);
        // Trace conserved exactly (commutators are traceless).
        assert!((sigma_next.trace().re - st.sigma.trace().re).abs() < 1e-10);
        assert!(sigma_next.trace().im.abs() < 1e-12);
        // Hermiticity preserved by -i[H,σ].
        assert!(sigma_next.hermiticity_error() < 1e-10);
    }

    #[test]
    fn pt_update_slow_orbital_motion() {
        // The parallel-transport projection removes the Φ-span component
        // of HΦ: for an H whose action keeps Φ inside its own span, the
        // orbital update vanishes (this is the "slowest gauge" property).
        let (sys, st) = fixture();
        let eng =
            TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let ev = eng.eval(&st.phi, &st.sigma, 0.0);
        let h = eng.hamiltonian_dense(&ev);
        let (phi_next, _) = pt_update(&st, &h, &st.phi, &st.sigma, 0.05);
        // Components of (Φ_{n+1} − Φ_n) inside span(Φ_n) must vanish.
        let mut diff = Wavefunction::zeros_like(&st.phi);
        default_backend().lincomb(
            Complex64::ONE,
            &phi_next.data,
            Complex64::from_re(-1.0),
            &st.phi.data,
            &mut diff.data,
        );
        let proj = st.phi.overlap(&diff);
        assert!(proj.fro_norm() < 1e-9, "in-span drift {}", proj.fro_norm());
    }

    #[test]
    fn density_residual_metric() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.5, 2.5];
        let r = density_residual(&a, &b, 0.5, 2.0);
        assert!((r - 0.25).abs() < 1e-14);
        assert_eq!(density_residual(&a, &a, 0.5, 2.0), 0.0);
    }
}
