//! Resilience for long RT-TDDFT campaigns: periodic checkpoint/restart,
//! a step-level recovery ladder, and the run driver that ties them
//! together (DESIGN.md §12).
//!
//! The paper's headline results are thousands of hybrid-functional steps
//! on large machines, where node failure and numerical blow-up are
//! routine. Three layers make such runs survivable:
//!
//! * **Checkpoints** ([`Checkpoint`]) — versioned, checksummed binary
//!   snapshots of the full [`TdState`] plus propagator/laser metadata,
//!   written atomically (tmp-file + rename via
//!   [`pwnum::persist::atomic_write`]) and rotated under a
//!   [`CheckpointPolicy`]. Because the dynamics are deterministic, a
//!   restart from a checkpoint is **bitwise identical** to the
//!   uninterrupted run (asserted in `tests/checkpoint_restart.rs`).
//! * **Recovery ladder** ([`step_with_recovery`]) — on a non-finite step
//!   result, retry promoted to all-fp64, then with halved dt
//!   (2 substeps at dt/2, 4 at dt/4, …), before giving up. The existing
//!   fp32 drift guard ([`crate::step_with_drift_guard`]) remains the
//!   inner rung; this ladder catches what it cannot.
//! * **Run driver** ([`run`]) — steps a [`Propagator`], writes
//!   checkpoints on the policy cadence, and on ladder exhaustion
//!   restores from the newest loadable checkpoint (once per failing
//!   step) before declaring the run dead.
//!
//! Crashed *peers* in distributed runs are handled one layer down:
//! [`mpisim::fault::FaultPlan`] injects the failure and
//! `Comm::require_alive` surfaces it as an attributed error instead of a
//! deadlock (see [`crate::distributed`]).

use crate::engine::TdEngine;
use crate::laser::LaserPulse;
use crate::propagate::StepStats;
use crate::ptcn::{ptcn_step, PtcnConfig};
use crate::ptim::{ptim_step, PtimConfig};
use crate::ptim_ace::{ptim_ace_step, PtimAceConfig};
use crate::rk4::{rk4_step, Rk4Config};
use crate::state::TdState;
use pwnum::persist::{atomic_write, fnv1a64};
use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use std::path::{Path, PathBuf};

/// On-disk checkpoint format version; bumped on any layout change, and
/// checked at load so an old binary never misreads a new file.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File magic of a checkpoint (`ckpt_NNNNNNNN.ptck`).
const MAGIC: &[u8; 4] = b"PTCK";

/// When (and how many) checkpoints the [`run`] driver writes.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Write a checkpoint every this many completed steps (0 disables).
    pub interval_steps: u64,
    /// Rotation depth: how many of the newest checkpoints to keep.
    /// Keeping more than one is the corruption fallback — a file that
    /// fails its checksum at load is skipped in favor of the previous
    /// rotation.
    pub keep_last: usize,
    /// Directory the `ckpt_NNNNNNNN.ptck` files live in.
    pub dir: PathBuf,
}

impl CheckpointPolicy {
    /// Policy writing to `dir` every `interval_steps`, keeping the two
    /// newest files (one rotation of fallback).
    pub fn new(dir: impl Into<PathBuf>, interval_steps: u64) -> Self {
        CheckpointPolicy { interval_steps, keep_last: 2, dir: dir.into() }
    }
}

/// Why a checkpoint file was rejected at load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Too short to contain the advertised payload.
    Truncated,
    /// Wrong magic bytes — not a checkpoint file.
    BadMagic,
    /// Format version this build does not understand.
    Version(u32),
    /// Trailing FNV-1a checksum mismatch (bit rot / partial write).
    Checksum,
    /// Band/grid shape differs from the run being restarted.
    Shape {
        /// `(n_bands, ng)` in the file.
        found: (usize, usize),
        /// `(n_bands, ng)` of the restarting run.
        expected: (usize, usize),
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Truncated => write!(f, "checkpoint file truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::Version(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {CHECKPOINT_VERSION})")
            }
            CheckpointError::Checksum => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Shape { found, expected } => write!(
                f,
                "checkpoint shape (bands, ng) = {found:?} does not match run {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Metadata stored alongside the state in every checkpoint, letting a
/// restart verify it resumes the *same* run (propagator, dt, laser).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointMeta {
    /// Completed-step count at the snapshot.
    pub step: u64,
    /// Physical time of the snapshot (a.u.); duplicated from the state
    /// so staleness checks don't need to deserialize the payload.
    pub time: f64,
    /// [`Propagator::kind`] tag of the run that wrote the file.
    pub propagator: u8,
    /// Time step of that run.
    pub dt: f64,
    /// Laser parameters `(e0, omega, t_center, t_width)` — the pulse
    /// phase is a pure function of time, so these four floats fully
    /// reconstruct the drive.
    pub laser: [f64; 4],
}

/// A deserialized checkpoint: restored state + its metadata.
pub struct Checkpoint {
    /// The restored `(Φ, σ, t)` — bitwise equal to what was saved.
    pub state: TdState,
    /// Run metadata written with it.
    pub meta: CheckpointMeta,
}

fn ckpt_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("ckpt_{step:08}.ptck"))
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Sequential little-endian reader over a checkpoint's bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn chunk<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        let end = self.pos + N;
        let s = self.bytes.get(self.pos..end).ok_or(CheckpointError::Truncated)?;
        self.pos = end;
        Ok(s.try_into().expect("slice has length N"))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.chunk()?))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.chunk()?))
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.chunk::<1>()?[0])
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.chunk()?)))
    }
}

impl Checkpoint {
    /// Serializes `(state, meta)` and writes `ckpt_{step:08}.ptck` in
    /// `dir` atomically; returns the path. Floats are stored as raw IEEE
    /// bits, so the restored state is bitwise equal to the saved one.
    pub fn save(
        dir: &Path,
        step: u64,
        state: &TdState,
        propagator: &Propagator,
        laser: &LaserPulse,
    ) -> std::io::Result<PathBuf> {
        let _s = pwobs::span("ckpt.write");
        std::fs::create_dir_all(dir)?;
        let n = state.n_bands();
        let ng = state.phi.ng;
        let mut buf = Vec::with_capacity(81 + 16 * (state.phi.data.len() + n * n) + 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        buf.extend_from_slice(&step.to_le_bytes());
        push_f64(&mut buf, state.time);
        buf.push(propagator.kind());
        push_f64(&mut buf, propagator.dt());
        for v in [laser.e0, laser.omega, laser.t_center, laser.t_width] {
            push_f64(&mut buf, v);
        }
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        buf.extend_from_slice(&(ng as u64).to_le_bytes());
        for z in state.phi.data.iter().chain(state.sigma.as_slice()) {
            push_f64(&mut buf, z.re);
            push_f64(&mut buf, z.im);
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        let path = ckpt_path(dir, step);
        atomic_write(&path, &buf)?;
        Ok(path)
    }

    /// Loads and validates one checkpoint file. `template` supplies the
    /// expected `(Φ, σ)` shapes (any state of the restarting run); the
    /// file is rejected on magic/version/checksum/shape mismatch.
    pub fn load(path: &Path, template: &TdState) -> Result<Checkpoint, CheckpointError> {
        let _s = pwobs::span("ckpt.restore");
        let bytes = std::fs::read(path)?;
        if bytes.len() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(payload) != stored {
            return Err(CheckpointError::Checksum);
        }
        let mut r = Reader { bytes: payload, pos: 0 };
        if &r.chunk::<4>()? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version(version));
        }
        let step = r.u64()?;
        let time = r.f64()?;
        let propagator = r.u8()?;
        let dt = r.f64()?;
        let laser = [r.f64()?, r.f64()?, r.f64()?, r.f64()?];
        let n = r.u64()? as usize;
        let ng = r.u64()? as usize;
        let expected = (template.n_bands(), template.phi.ng);
        if (n, ng) != expected {
            return Err(CheckpointError::Shape { found: (n, ng), expected });
        }
        let mut state = template.clone();
        state.time = time;
        for z in state.phi.data.iter_mut() {
            *z = Complex64 { re: r.f64()?, im: r.f64()? };
        }
        let mut sigma = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            sigma.push(Complex64 { re: r.f64()?, im: r.f64()? });
        }
        state.sigma = CMat::from_vec(n, n, sigma);
        if r.pos != payload.len() {
            return Err(CheckpointError::Truncated);
        }
        Ok(Checkpoint {
            state,
            meta: CheckpointMeta { step, time, propagator, dt, laser },
        })
    }

    /// Loads the newest loadable checkpoint in `dir`, silently skipping
    /// files that fail validation — the rotation fallback: a corrupt or
    /// stale newest file falls through to the previous one. `Ok(None)`
    /// when no file loads.
    pub fn load_latest(
        dir: &Path,
        template: &TdState,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "ptck"))
                .collect(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io(e)),
        };
        // Step numbers are zero-padded, so filename order is step order.
        paths.sort();
        for path in paths.iter().rev() {
            if let Ok(ck) = Self::load(path, template) {
                return Ok(Some(ck));
            }
        }
        Ok(None)
    }

    /// Deletes all but the `keep_last` newest checkpoints in `dir`.
    pub fn prune(dir: &Path, keep_last: usize) -> std::io::Result<()> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "ptck"))
            .collect();
        paths.sort();
        let n = paths.len().saturating_sub(keep_last);
        for p in &paths[..n] {
            std::fs::remove_file(p)?;
        }
        Ok(())
    }
}

/// A propagator choice with its configuration — the unit the resilience
/// layer snapshots, halves, and replays uniformly across all four
/// integrators.
#[derive(Clone, Copy, Debug)]
pub enum Propagator {
    /// PT-IM with dense Fock exchange (paper Alg. 1).
    Ptim(PtimConfig),
    /// Pure-state PT-CN baseline.
    Ptcn(PtcnConfig),
    /// PT-IM-ACE (double SCF loop, Fig. 4b).
    PtimAce(PtimAceConfig),
    /// RK4 reference.
    Rk4(Rk4Config),
}

impl Propagator {
    /// One step of the wrapped propagator (drift guard included).
    pub fn step(&self, eng: &TdEngine, state: &TdState) -> (TdState, StepStats) {
        match self {
            Propagator::Ptim(cfg) => ptim_step(eng, state, cfg),
            Propagator::Ptcn(cfg) => ptcn_step(eng, state, cfg),
            Propagator::PtimAce(cfg) => ptim_ace_step(eng, state, cfg),
            Propagator::Rk4(cfg) => rk4_step(eng, state, cfg),
        }
    }

    /// The configured time step.
    pub fn dt(&self) -> f64 {
        match self {
            Propagator::Ptim(cfg) => cfg.dt,
            Propagator::Ptcn(cfg) => cfg.dt,
            Propagator::PtimAce(cfg) => cfg.dt,
            Propagator::Rk4(cfg) => cfg.dt,
        }
    }

    /// The same propagator with a different time step.
    pub fn with_dt(&self, dt: f64) -> Propagator {
        match self {
            Propagator::Ptim(cfg) => Propagator::Ptim(cfg.with_dt(dt)),
            Propagator::Ptcn(cfg) => Propagator::Ptcn(cfg.with_dt(dt)),
            Propagator::PtimAce(cfg) => Propagator::PtimAce(cfg.with_dt(dt)),
            Propagator::Rk4(cfg) => Propagator::Rk4(cfg.with_dt(dt)),
        }
    }

    /// Stable one-byte tag stored in checkpoints.
    pub fn kind(&self) -> u8 {
        match self {
            Propagator::Ptim(_) => 0,
            Propagator::Ptcn(_) => 1,
            Propagator::PtimAce(_) => 2,
            Propagator::Rk4(_) => 3,
        }
    }

    /// Human-readable name for error messages and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Propagator::Ptim(_) => "ptim",
            Propagator::Ptcn(_) => "ptcn",
            Propagator::PtimAce(_) => "ptim-ace",
            Propagator::Rk4(_) => "rk4",
        }
    }
}

/// The retry ladder [`step_with_recovery`] climbs when a step's result
/// is non-finite.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Rung 1: rerun the step on the all-fp64 promoted engine (skipped
    /// when the policy is already all-fp64 — nothing to promote).
    pub promote_fp64: bool,
    /// Rung 2: retry with dt/2ʰ in 2ʰ substeps, for h = 1..=this (on
    /// the promoted engine). 0 disables.
    pub max_dt_halvings: u32,
    /// Rung 3: let the [`run`] driver restore from the newest checkpoint
    /// when the ladder is exhausted.
    pub restore_checkpoint: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { promote_fp64: true, max_dt_halvings: 2, restore_checkpoint: true }
    }
}

/// Ladder exhaustion: every rung produced a non-finite state.
#[derive(Debug)]
pub struct RecoveryError {
    /// Total step attempts made (original + rungs).
    pub attempts: usize,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step result non-finite after {} recovery attempt(s) (fp64 promotion and dt halving exhausted)",
            self.attempts
        )
    }
}

impl std::error::Error for RecoveryError {}

/// A step result is healthy when the state and the reported residual
/// are finite.
fn healthy(state: &TdState, stats: &StepStats) -> bool {
    state.all_finite() && stats.residual.is_finite()
}

/// Accumulates substep statistics into one per-step record.
fn accumulate(agg: &mut StepStats, s: &StepStats, first: bool) {
    agg.scf_iters += s.scf_iters;
    agg.outer_iters += s.outer_iters;
    agg.fock_applies += s.fock_applies;
    agg.converged = if first { s.converged } else { agg.converged && s.converged };
    agg.residual = s.residual;
    agg.fock_skipped_weight += s.fock_skipped_weight;
    agg.fock_solves_fp64 += s.fock_solves_fp64;
    agg.fock_solves_fp32 += s.fock_solves_fp32;
    agg.orthonormality_drift = agg.orthonormality_drift.max(s.orthonormality_drift);
    agg.precision_promotions += s.precision_promotions;
    agg.pool_peak_bytes = agg.pool_peak_bytes.max(s.pool_peak_bytes);
}

/// One propagator step under the [`RecoveryPolicy`] ladder:
///
/// 1. the plain step (which already contains the fp32 drift guard);
/// 2. on a non-finite result, the same step on the all-fp64 engine;
/// 3. then 2ʰ substeps at dt/2ʰ for increasing h.
///
/// The successful attempt's statistics are returned, with
/// [`StepStats::recovery_dt_halvings`] recording the rung. Errors mean
/// the ladder is exhausted — the [`run`] driver's cue to restore from a
/// checkpoint.
pub fn step_with_recovery<'s>(
    eng: &TdEngine<'s>,
    state: &TdState,
    prop: &Propagator,
    policy: &RecoveryPolicy,
) -> Result<(TdState, StepStats), RecoveryError> {
    let (next, stats) = prop.step(eng, state);
    if healthy(&next, &stats) {
        return Ok((next, stats));
    }
    let mut attempts = 1;
    let eng64 = eng.promoted();
    if policy.promote_fp64 && eng.hybrid.fock.precision.any_reduced() {
        attempts += 1;
        let (next64, mut stats64) = prop.step(&eng64, state);
        if healthy(&next64, &stats64) {
            stats64.precision_promotions = stats64.precision_promotions.max(1);
            return Ok((next64, stats64));
        }
    }
    for h in 1..=policy.max_dt_halvings {
        attempts += 1;
        let substeps = 1u64 << h;
        let sub = prop.with_dt(prop.dt() / substeps as f64);
        let mut cur = state.clone();
        let mut agg = StepStats::default();
        let mut ok = true;
        for i in 0..substeps {
            let (n, s) = sub.step(&eng64, &cur);
            accumulate(&mut agg, &s, i == 0);
            if !healthy(&n, &s) {
                ok = false;
                break;
            }
            cur = n;
        }
        if ok {
            agg.recovery_dt_halvings = h as usize;
            return Ok((cur, agg));
        }
    }
    Err(RecoveryError { attempts })
}

/// Why a resilient run stopped short of its target step.
#[derive(Debug)]
pub enum RunError {
    /// The recovery ladder was exhausted at `step` and no checkpoint
    /// restore was possible (or the restored run failed there again).
    Unrecoverable {
        /// The step that would not complete.
        step: u64,
        /// The final ladder failure.
        source: RecoveryError,
    },
    /// Checkpoint write failure.
    Io(std::io::Error),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Unrecoverable { step, source } => {
                write!(f, "run unrecoverable at step {step}: {source}")
            }
            RunError::Io(e) => write!(f, "checkpoint write failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The outcome of a resilient run.
pub struct RunReport {
    /// Final state.
    pub state: TdState,
    /// Per-completed-step statistics, in step order (restores rewind the
    /// list to the restored step, so it reflects the surviving history).
    pub steps: Vec<StepStats>,
    /// Checkpoints written.
    pub checkpoints_written: usize,
    /// Checkpoint restores performed.
    pub restores: usize,
    /// Wall time spent writing checkpoints (save + prune), seconds — the
    /// resilience overhead a cadence choice buys.
    pub checkpoint_write_s: f64,
    /// Wall time spent restoring from checkpoints, seconds.
    pub restore_s: f64,
    /// High-water mark of the backend buffer pools over the surviving
    /// step history (max of [`StepStats::pool_peak_bytes`]).
    pub pool_peak_bytes: usize,
}

/// Steps `start` from `start_step` to `end_step` under the engine's
/// [`CheckpointPolicy`] and the given [`RecoveryPolicy`]: writes a
/// checkpoint every `interval_steps` completed steps (rotating to
/// `keep_last`), and on ladder exhaustion restores from the newest
/// loadable checkpoint and replays — at most once per failing step, so a
/// deterministic failure surfaces as [`RunError::Unrecoverable`] instead
/// of looping forever.
///
/// `start_step` is normally 0 for a fresh run or
/// [`CheckpointMeta::step`] after [`Checkpoint::load_latest`] on a
/// restart.
pub fn run<'s>(
    eng: &TdEngine<'s>,
    start: &TdState,
    start_step: u64,
    end_step: u64,
    prop: &Propagator,
    recovery: &RecoveryPolicy,
) -> Result<RunReport, RunError> {
    let mut state = start.clone();
    let mut steps: Vec<StepStats> = Vec::new();
    let mut checkpoints_written = 0usize;
    let mut restores = 0usize;
    let mut checkpoint_write_s = 0.0f64;
    let mut restore_s = 0.0f64;
    let mut pending_restores = 0usize;
    let mut restored_at: Option<u64> = None;
    let mut step = start_step;
    while step < end_step {
        match step_with_recovery(eng, &state, prop, recovery) {
            Ok((next, mut stats)) => {
                stats.recovery_restores = pending_restores;
                pending_restores = 0;
                state = next;
                step += 1;
                steps.push(stats);
                if let Some(pol) = &eng.checkpoints {
                    if pol.interval_steps > 0 && step.is_multiple_of(pol.interval_steps) {
                        let t0 = std::time::Instant::now();
                        Checkpoint::save(&pol.dir, step, &state, prop, &eng.laser)
                            .map_err(RunError::Io)?;
                        Checkpoint::prune(&pol.dir, pol.keep_last.max(1))
                            .map_err(RunError::Io)?;
                        checkpoint_write_s += t0.elapsed().as_secs_f64();
                        checkpoints_written += 1;
                    }
                }
            }
            Err(source) => {
                let restorable = recovery.restore_checkpoint && restored_at != Some(step);
                let loaded = if restorable {
                    let t0 = std::time::Instant::now();
                    let ck = eng
                        .checkpoints
                        .as_ref()
                        .and_then(|pol| Checkpoint::load_latest(&pol.dir, start).ok().flatten());
                    restore_s += t0.elapsed().as_secs_f64();
                    ck
                } else {
                    None
                };
                match loaded {
                    Some(ck) => {
                        restores += 1;
                        pending_restores += 1;
                        restored_at = Some(step);
                        // Rewind the history to the restore point.
                        steps.truncate((ck.meta.step - start_step) as usize);
                        state = ck.state;
                        step = ck.meta.step;
                    }
                    None => return Err(RunError::Unrecoverable { step, source }),
                }
            }
        }
    }
    let pool_peak_bytes = steps.iter().map(|s| s.pool_peak_bytes).max().unwrap_or(0);
    Ok(RunReport {
        state,
        steps,
        checkpoints_written,
        restores,
        checkpoint_write_s,
        restore_s,
        pool_peak_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HybridParams;
    use pwdft::{Cell, DftSystem, Wavefunction};

    fn fixture() -> (DftSystem, TdState) {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
        let mut phi = Wavefunction::random(&sys.grid, 3, 5);
        phi.orthonormalize_lowdin();
        let sigma = CMat::from_real_diag(&[1.0, 0.7, 0.3]);
        (sys, TdState { phi, sigma, time: 0.0 })
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("ptim_resilience_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_roundtrip_is_bitwise() {
        let (_, st) = fixture();
        let dir = tmpdir("rt");
        let prop = Propagator::Ptim(PtimConfig::default());
        let laser = LaserPulse { e0: 0.1, omega: 0.2, t_center: 3.0, t_width: 1.5 };
        let path = Checkpoint::save(&dir, 42, &st, &prop, &laser).unwrap();
        let ck = Checkpoint::load(&path, &st).unwrap();
        assert_eq!(ck.meta.step, 42);
        assert_eq!(ck.meta.propagator, prop.kind());
        assert_eq!(ck.meta.dt.to_bits(), prop.dt().to_bits());
        assert_eq!(ck.meta.laser, [0.1, 0.2, 3.0, 1.5]);
        assert_eq!(ck.state.time.to_bits(), st.time.to_bits());
        for (a, b) in ck.state.phi.data.iter().zip(&st.phi.data) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        for (a, b) in ck.state.sigma.as_slice().iter().zip(st.sigma.as_slice()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_stale_files_are_rejected() {
        let (_, st) = fixture();
        let dir = tmpdir("reject");
        let prop = Propagator::Rk4(Rk4Config { dt: 0.1 });
        let path = Checkpoint::save(&dir, 1, &st, &prop, &LaserPulse::off()).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flipped payload bit -> checksum.
        let mut bad = good.clone();
        bad[100] ^= 1;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(Checkpoint::load(&path, &st), Err(CheckpointError::Checksum)));

        // Truncation -> checksum (the trailing hash moves) or truncated.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(Checkpoint::load(&path, &st).is_err());

        // Version bump (checksum recomputed so only the version differs).
        let mut stale = good.clone();
        stale[4..8].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        let n = stale.len() - 8;
        let sum = pwnum::persist::fnv1a64(&stale[..n]);
        stale[n..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &stale).unwrap();
        assert!(matches!(
            Checkpoint::load(&path, &st),
            Err(CheckpointError::Version(v)) if v == CHECKPOINT_VERSION + 1
        ));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_latest_falls_back_past_corruption() {
        let (_, st) = fixture();
        let dir = tmpdir("fallback");
        let prop = Propagator::Ptim(PtimConfig::default());
        Checkpoint::save(&dir, 10, &st, &prop, &LaserPulse::off()).unwrap();
        let mut st20 = st.clone();
        st20.time = 20.0;
        let p20 = Checkpoint::save(&dir, 20, &st20, &prop, &LaserPulse::off()).unwrap();
        // Corrupt the newest file: load_latest must fall back to step 10.
        let mut bytes = std::fs::read(&p20).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p20, &bytes).unwrap();
        let ck = Checkpoint::load_latest(&dir, &st).unwrap().expect("fallback");
        assert_eq!(ck.meta.step, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let (_, st) = fixture();
        let dir = tmpdir("prune");
        let prop = Propagator::Ptim(PtimConfig::default());
        for step in [1, 2, 3, 4] {
            Checkpoint::save(&dir, step, &st, &prop, &LaserPulse::off()).unwrap();
        }
        Checkpoint::prune(&dir, 2).unwrap();
        let mut left: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        left.sort();
        assert_eq!(left, vec!["ckpt_00000003.ptck", "ckpt_00000004.ptck"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn healthy_step_passes_through_unchanged() {
        let (sys, st) = fixture();
        let eng = TdEngine::new(
            &sys,
            LaserPulse::off(),
            HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() },
        );
        let prop = Propagator::Ptim(PtimConfig { dt: 0.4, ..Default::default() });
        let (direct, _) = prop.step(&eng, &st);
        let (recovered, stats) =
            step_with_recovery(&eng, &st, &prop, &RecoveryPolicy::default()).unwrap();
        assert_eq!(stats.recovery_dt_halvings, 0);
        assert_eq!(stats.recovery_restores, 0);
        assert!(direct.phi.max_abs_diff(&recovered.phi) == 0.0, "recovery wrapper must not perturb a healthy step");
        std::hint::black_box(&recovered);
    }

    #[test]
    fn poisoned_state_exhausts_the_ladder() {
        let (sys, mut st) = fixture();
        st.phi.data[0] = Complex64 { re: f64::NAN, im: 0.0 };
        let eng = TdEngine::new(
            &sys,
            LaserPulse::off(),
            HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() },
        );
        let prop = Propagator::Rk4(Rk4Config { dt: 0.05 });
        let Err(err) = step_with_recovery(&eng, &st, &prop, &RecoveryPolicy::default()) else {
            panic!("NaN input cannot be recovered by retries");
        };
        assert!(err.attempts >= 3, "ladder must try halvings: {}", err.attempts);
    }

    #[test]
    fn run_driver_checkpoints_on_cadence() {
        let (sys, st) = fixture();
        let dir = tmpdir("driver");
        let eng = TdEngine::new(
            &sys,
            LaserPulse::off(),
            HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() },
        )
        .with_checkpoints(CheckpointPolicy::new(&dir, 2));
        let prop = Propagator::Ptim(PtimConfig { dt: 0.4, ..Default::default() });
        let report = run(&eng, &st, 0, 5, &prop, &RecoveryPolicy::default()).unwrap();
        assert_eq!(report.steps.len(), 5);
        assert_eq!(report.checkpoints_written, 2, "steps 2 and 4");
        assert_eq!(report.restores, 0);
        let ck = Checkpoint::load_latest(&dir, &st).unwrap().expect("checkpoint");
        assert_eq!(ck.meta.step, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
