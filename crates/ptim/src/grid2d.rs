//! Hierarchical 2-D parallelization: a band×grid process grid with a
//! ring-pipelined, communication-overlapped distributed Fock exchange.
//!
//! The flat band-parallel layer ([`crate::distributed`]) assigns whole
//! ranks to band slices; at scale the per-rank band count shrinks until
//! the exchange ring is pure communication. The paper's hierarchical
//! scheme (Sec. III-A; Jia et al., arXiv:1905.01348) instead lays the
//! ranks out as a 2-D [`ProcessGrid`]: *band groups* along one axis, the
//! *plane-wave grid* split into slabs along the other
//! ([`GridDistribution`], with the slab-decomposed distributed FFT in
//! [`pwfft::dist`]). Exchange then circulates band blocks between
//! corresponding grid ranks of neighboring band groups — messages shrink
//! by the grid-rank factor — and every transfer is posted nonblocking
//! (`isend`/`irecv`) *before* the current block's pair-tile Poisson
//! solves run, with [`mpisim::Comm::test`] probes between tiles standing
//! in for MPI progress. The hidden-vs-visible split of each transfer is
//! recorded by the runtime ([`mpisim::Stats::overlap_efficiency`]).
//!
//! At `grid_ranks == 1` the pair solves run through the batched
//! pair-tile schedulers of [`FockOperator`] — the PR-3 Hermitian
//! symmetric scheduler and the PR-4 [`pwnum::precision::PrecisionPolicy`]
//! apply unchanged. At `grid_ranks > 1` each pair density lives in
//! slabs and the screened-Poisson round trip runs on the distributed
//! [`DistFft3`] (fp64; the slab path is precision-policy-neutral).

use crate::distributed::BandDistribution;
use mpisim::{Comm, Request};
use pwdft::FockOperator;
use pwfft::DistFft3;
use pwnum::complex::Complex64;
use pwnum::parallel::block_range;

/// Ranks laid out as `band_groups × grid_ranks`, grid ranks contiguous:
/// `rank = band_group · grid_ranks + grid_rank`, so one band group's
/// grid communicator is co-located on as few nodes as possible (its
/// alltoallv transposes stay near-neighbor/intra-node, the exchange ring
/// crosses groups).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessGrid {
    /// Number of band groups (the exchange-ring dimension).
    pub band_groups: usize,
    /// Ranks per band group (the grid/slab dimension).
    pub grid_ranks: usize,
}

impl ProcessGrid {
    /// Lays `size` ranks out as `band_groups` groups; `size` must divide
    /// evenly.
    pub fn new(size: usize, band_groups: usize) -> Self {
        assert!(band_groups > 0 && size > 0, "process grid must be non-empty");
        assert!(
            size.is_multiple_of(band_groups),
            "{size} ranks do not divide into {band_groups} band groups"
        );
        ProcessGrid { band_groups, grid_ranks: size / band_groups }
    }

    /// Total ranks in the grid.
    #[inline]
    pub fn size(&self) -> usize {
        self.band_groups * self.grid_ranks
    }

    /// `(band_group, grid_rank)` coordinates of a world rank.
    #[inline]
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.grid_ranks, rank % self.grid_ranks)
    }

    /// World rank at 2-D coordinates.
    #[inline]
    pub fn rank_of(&self, band_group: usize, grid_rank: usize) -> usize {
        debug_assert!(band_group < self.band_groups && grid_rank < self.grid_ranks);
        band_group * self.grid_ranks + grid_rank
    }

    /// The grid communicator of one band group: its world ranks in slab
    /// order (what [`DistFft3::new`] takes as `members`).
    pub fn row_members(&self, band_group: usize) -> Vec<usize> {
        (0..self.grid_ranks).map(|g| self.rank_of(band_group, g)).collect()
    }

    /// Ring peer a rank sends its block to: same grid rank, previous
    /// band group (blocks flow so that step `k` processes group
    /// `mine + k`, matching the flat ring's orientation).
    pub fn ring_send_to(&self, rank: usize) -> usize {
        let (bg, gr) = self.coords(rank);
        self.rank_of((bg + self.band_groups - 1) % self.band_groups, gr)
    }

    /// Ring peer a rank receives the next block from: same grid rank,
    /// next band group.
    pub fn ring_recv_from(&self, rank: usize) -> usize {
        let (bg, gr) = self.coords(rank);
        self.rank_of((bg + 1) % self.band_groups, gr)
    }
}

/// Balanced contiguous ownership of grid items over the ranks of a grid
/// communicator — the [`BandDistribution`] partner for the grid
/// dimension. `n_items` is whatever the caller decomposes: raw grid
/// points for the band↔grid overlap transpose, FFT planes for slab
/// ownership (where it must — and does, via the shared
/// [`block_range`] — agree with [`DistFft3::slab0`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridDistribution {
    /// Total items decomposed.
    pub n_items: usize,
    /// Ranks in the grid communicator.
    pub n_ranks: usize,
}

impl GridDistribution {
    /// Creates the distribution.
    pub fn new(n_items: usize, n_ranks: usize) -> Self {
        assert!(n_ranks > 0);
        GridDistribution { n_items, n_ranks }
    }

    /// Items owned by `rank`.
    #[inline]
    pub fn count(&self, rank: usize) -> usize {
        self.range(rank).len()
    }

    /// Item range owned by `rank`.
    #[inline]
    pub fn range(&self, rank: usize) -> std::ops::Range<usize> {
        block_range(self.n_items, self.n_ranks, rank)
    }
}

/// What one ring-pipelined exchange actually did on this rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingOverlapReport {
    /// Screened-Poisson pair solves performed (each = one forward + one
    /// inverse 3-D FFT, serial or slab-distributed).
    pub solves: usize,
    /// Solves that ran in fp32 under a reduced exchange precision
    /// policy (grid_ranks == 1 path only; the slab path is fp64).
    pub solves_fp32: usize,
    /// 1-D line transforms the distributed FFT performed (0 on the
    /// `grid_ranks == 1` path, where solves run through the operator's
    /// batched serial FFTs).
    pub dist_fft_lines: u64,
    /// `test` probes issued between pair tiles to progress the pending
    /// ring transfer.
    pub probes: usize,
}

/// Charges `solves` worth of modeled Poisson compute to the virtual
/// clock and probes the pending ring transfer — the progress hook
/// between pair tiles.
fn progress(
    comm: &mut Comm,
    solve_cost_s: f64,
    solves: usize,
    pending: Option<&Request>,
    report: &mut RingOverlapReport,
) {
    if solve_cost_s > 0.0 && solves > 0 {
        comm.compute(solve_cost_s * solves as f64);
    }
    if let Some(req) = pending {
        let _ = comm.test(req);
        report.probes += 1;
    }
}

/// Ring-pipelined, communication-overlapped distributed Fock exchange
/// `VxΨ` on the 2-D process grid.
///
/// `nat_local` holds this rank's slab of each of its band group's
/// natural orbitals in real space (band-major; the full grids when
/// `grid_ranks == 1`), `occ` the *global* occupations, and `psi_local`
/// the targets in the same layout. When `psi_local` aliases `nat_local`
/// (the self-applied ACE-rebuild case) the diagonal block runs the
/// Hermitian `i ≤ j` pair halving. Each ring step posts the next block's
/// `isend`/`irecv` *before* solving the current block's pair tiles,
/// probing the receive between tiles ([`Comm::test`]) and completing it
/// with [`Comm::wait`] — the hidden share of every transfer lands in
/// [`mpisim::Stats::overlap_hidden_s`]. `solve_cost_s` is the modeled
/// compute seconds charged per pair solve (0 ⇒ data plane only).
///
/// Pass `dfft: None` for `grid_ranks == 1` (pure band ring; pair solves
/// go through the policy-aware batched schedulers of `fock`), or the
/// row's [`DistFft3`] for a genuine grid decomposition.
#[allow(clippy::too_many_arguments)]
pub fn ring_overlap_fock_apply(
    comm: &mut Comm,
    fock: &FockOperator,
    pgrid: &ProcessGrid,
    bands: &BandDistribution,
    dfft: Option<&DistFft3>,
    nat_local: &[Complex64],
    occ: &[f64],
    psi_local: &[Complex64],
    solve_cost_s: f64,
) -> (Vec<Complex64>, RingOverlapReport) {
    let _s = pwobs::span("xch.ring_overlap");
    assert_eq!(pgrid.size(), comm.size(), "process grid does not match the communicator");
    assert_eq!(bands.n_ranks, pgrid.band_groups, "band distribution must span band groups");
    let (my_group, my_grid_rank) = pgrid.coords(comm.rank());
    let symmetric = nat_local.as_ptr() == psi_local.as_ptr()
        && nat_local.len() == psi_local.len();
    if pgrid.grid_ranks == 1 {
        assert!(dfft.is_none(), "grid_ranks == 1 takes no distributed FFT");
    } else {
        let d = dfft.expect("grid_ranks > 1 needs the row DistFft3");
        assert_eq!(d.members(), pgrid.row_members(my_group).as_slice(), "row mismatch");
        debug_assert_eq!(d.group_index(comm.rank()), my_grid_rank);
    }

    let mut out = vec![Complex64::ZERO; psi_local.len()];
    let mut report = RingOverlapReport::default();
    let send_to = pgrid.ring_send_to(comm.rank());
    let recv_from = pgrid.ring_recv_from(comm.rank());
    let groups = pgrid.band_groups;
    let mut block = nat_local.to_vec();

    for step in 0..groups {
        let src_group = (my_group + step) % groups;
        let src_range = bands.range(src_group);
        // Double-buffered handoff: post the next block's transfer before
        // touching this block's pair tiles.
        let pending = if step + 1 < groups {
            comm.require_alive(recv_from, "the ring-overlap exchange");
            comm.require_alive(send_to, "the ring-overlap exchange");
            let rreq = comm.irecv(recv_from, 10_000 + step as u64);
            let _sreq = comm.isend(send_to, 10_000 + step as u64, block.clone());
            Some(rreq)
        } else {
            None
        };
        let diag_symmetric = symmetric && src_group == my_group;
        match dfft {
            None => process_block_banded(
                comm,
                fock,
                &block,
                &occ[src_range],
                psi_local,
                diag_symmetric,
                &mut out,
                solve_cost_s,
                pending.as_ref(),
                &mut report,
            ),
            Some(d) => process_block_slab(
                comm,
                fock,
                d,
                &block,
                &occ[src_range],
                psi_local,
                bands.count(my_group),
                diag_symmetric,
                &mut out,
                solve_cost_s,
                pending.as_ref(),
                &mut report,
            ),
        }
        if let Some(req) = pending {
            block = comm.wait(req).expect("ring block payload");
        }
    }
    (out, report)
}

/// `grid_ranks == 1` block kernel: pair tiles through the operator's
/// batched schedulers (symmetric halving on the diagonal block,
/// per-target batches off it), so occupation screening, tile arenas and
/// the precision policy behave exactly as in the serial operator.
#[allow(clippy::too_many_arguments)]
fn process_block_banded(
    comm: &mut Comm,
    fock: &FockOperator,
    block: &[Complex64],
    occ_src: &[f64],
    psi_local: &[Complex64],
    diag_symmetric: bool,
    out: &mut [Complex64],
    solve_cost_s: f64,
    pending: Option<&Request>,
    report: &mut RingOverlapReport,
) {
    let ng = fock.ng();
    if diag_symmetric {
        // Both ends of every local pair live here: one Hermitian
        // pair-symmetric apply over the whole block.
        let (vx, st) = fock.apply_pure_stats(block, occ_src);
        for (o, v) in out.iter_mut().zip(&vx) {
            *o += *v;
        }
        report.solves += st.solves;
        report.solves_fp32 += st.solves_fp32;
        progress(comm, solve_cost_s, st.solves, pending, report);
        return;
    }
    // Off-diagonal (or trial-target) block: tile the sources so the
    // pending ring transfer is probed between batched solves.
    let nb = occ_src.len();
    let tile = fock.options().tile_bands;
    let mut done = 0;
    while done < nb {
        let m = tile.min(nb - done);
        let sub = &block[done * ng..(done + m) * ng];
        let (vx, st) = fock.apply_diag_stats(sub, &occ_src[done..done + m], psi_local);
        for (o, v) in out.iter_mut().zip(&vx) {
            *o += *v;
        }
        report.solves += st.solves;
        report.solves_fp32 += st.solves_fp32;
        progress(comm, solve_cost_s, st.solves, pending, report);
        done += m;
    }
}

/// `grid_ranks > 1` block kernel: each pair density is formed slab-wise,
/// the screened-Poisson round trip runs on the row's distributed FFT
/// (so all grid ranks of the row execute the same solve sequence), and
/// the weighted scatter is slab-local. Mirrors the serial scheduler's
/// pair set: `i ≤ j` halving with per-side occupation screening on the
/// diagonal block, one-sided pairs elsewhere.
///
/// The loop structure depends only on replicated metadata (`occ_src`,
/// band counts) — never on slab contents — so every grid rank of the
/// row, including ranks whose slab happens to be empty, issues the same
/// collective solve sequence.
#[allow(clippy::too_many_arguments)]
fn process_block_slab(
    comm: &mut Comm,
    fock: &FockOperator,
    dfft: &DistFft3,
    block: &[Complex64],
    occ_src: &[f64],
    psi_local: &[Complex64],
    n_tgt: usize,
    diag_symmetric: bool,
    out: &mut [Complex64],
    solve_cost_s: f64,
    pending: Option<&Request>,
    report: &mut RingOverlapReport,
) {
    let slab = dfft.local_len(dfft.group_index(comm.rank()));
    let nb = occ_src.len();
    assert_eq!(psi_local.len(), n_tgt * slab, "target slab layout mismatch");
    assert_eq!(block.len(), nb * slab, "source slab layout mismatch");
    let cutoff = fock.options().occ_cutoff;
    let kernel = fock.kernel_table();
    let be = &**fock.backend();
    let fft_lines0 = dfft.transform_count();
    let mut pair = vec![Complex64::ZERO; slab];

    let solve = |comm: &mut Comm,
                 pair: &mut [Complex64],
                 report: &mut RingOverlapReport| {
        dfft.convolve_slab(comm, pair, kernel);
        report.solves += 1;
        progress(comm, solve_cost_s, 1, pending, report);
    };

    if diag_symmetric {
        debug_assert_eq!(n_tgt, nb);
        for bi in 0..nb {
            let di = occ_src[bi];
            let di_on = di.abs() >= cutoff;
            for bj in bi..nb {
                let dj = occ_src[bj];
                let dj_on = bi != bj && dj.abs() >= cutoff;
                if !di_on && !dj_on {
                    continue;
                }
                be.hadamard_conj(
                    &block[bi * slab..(bi + 1) * slab],
                    &block[bj * slab..(bj + 1) * slab],
                    &mut pair,
                );
                solve(comm, &mut pair, report);
                if di_on {
                    be.hadamard_acc(
                        Complex64::from_re(-di),
                        &pair,
                        &block[bi * slab..(bi + 1) * slab],
                        &mut out[bj * slab..(bj + 1) * slab],
                    );
                }
                if dj_on {
                    be.hadamard_acc_conj(
                        Complex64::from_re(-dj),
                        &pair,
                        &block[bj * slab..(bj + 1) * slab],
                        &mut out[bi * slab..(bi + 1) * slab],
                    );
                }
            }
        }
    } else {
        for bi in 0..nb {
            let d = occ_src[bi];
            if d.abs() < cutoff {
                continue;
            }
            for j in 0..n_tgt {
                be.hadamard_conj(
                    &block[bi * slab..(bi + 1) * slab],
                    &psi_local[j * slab..(j + 1) * slab],
                    &mut pair,
                );
                solve(comm, &mut pair, report);
                be.hadamard_acc(
                    Complex64::from_re(-d),
                    &pair,
                    &block[bi * slab..(bi + 1) * slab],
                    &mut out[j * slab..(j + 1) * slab],
                );
            }
        }
    }
    report.dist_fft_lines += dfft.transform_count() - fft_lines0;
}

/// Slices one rank's 2-D-distributed portion out of a replicated
/// real-space band block: its band group's bands, its grid rank's slab
/// planes of each (test/bootstrap helper; production code receives data
/// already distributed).
pub fn scatter_slab(
    full_r: &[Complex64],
    ng: usize,
    pgrid: &ProcessGrid,
    bands: &BandDistribution,
    dfft: Option<&DistFft3>,
    rank: usize,
) -> Vec<Complex64> {
    let (bg, gr) = pgrid.coords(rank);
    let range = bands.range(bg);
    let pts = match dfft {
        Some(d) => d.slab0_points(gr),
        None => 0..ng,
    };
    let mut out = Vec::with_capacity(range.len() * pts.len());
    for b in range {
        out.extend_from_slice(&full_r[b * ng + pts.start..b * ng + pts.end]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_grid_coordinates_roundtrip() {
        let g = ProcessGrid::new(12, 4);
        assert_eq!(g.grid_ranks, 3);
        assert_eq!(g.size(), 12);
        for rank in 0..12 {
            let (bg, gr) = g.coords(rank);
            assert_eq!(g.rank_of(bg, gr), rank);
        }
        assert_eq!(g.row_members(2), vec![6, 7, 8]);
    }

    #[test]
    fn ring_peers_stay_in_the_same_column() {
        let g = ProcessGrid::new(8, 4); // 4 groups × 2 grid ranks
        // Rank 3 = (group 1, grid 1): sends to (group 0, grid 1) = 1,
        // receives from (group 2, grid 1) = 5.
        assert_eq!(g.ring_send_to(3), 1);
        assert_eq!(g.ring_recv_from(3), 5);
        // Ring closes: following recv_from around visits every group once.
        let mut r = 0;
        for _ in 0..4 {
            r = g.ring_recv_from(r);
        }
        assert_eq!(r, 0);
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn process_grid_rejects_ragged_layout() {
        let _ = ProcessGrid::new(10, 4);
    }

    #[test]
    fn grid_distribution_tiles_items() {
        let d = GridDistribution::new(10, 3);
        assert_eq!(d.range(0), 0..4);
        assert_eq!(d.range(1), 4..7);
        assert_eq!(d.range(2), 7..10);
        assert_eq!(d.count(0), 4);
        let total: usize = (0..3).map(|r| d.count(r)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn grid_distribution_agrees_with_fft_slabs() {
        // Slab ownership must be the same whether asked through the
        // distribution or the distributed FFT (single formula).
        let d = GridDistribution::new(7, 3);
        let f = DistFft3::new(7, 4, 4, vec![0, 1, 2]);
        for r in 0..3 {
            assert_eq!(d.range(r), f.slab0(r));
        }
    }
}
