//! The time-dependent state `(Φ(t), σ(t))` of the PT-IM formalism.

use pwnum::cmat::CMat;
use pwdft::Wavefunction;

/// Mixed-state snapshot: parallel-transport orbitals + occupation matrix.
#[derive(Clone)]
pub struct TdState {
    /// Orbitals (G-space, orthonormal).
    pub phi: Wavefunction,
    /// Occupation matrix σ (Hermitian, eigenvalues in `[0,1]`).
    pub sigma: CMat,
    /// Physical time (a.u.).
    pub time: f64,
}

impl TdState {
    /// Builds the initial state from a converged ground state: σ(0) is the
    /// diagonal Fermi–Dirac occupation matrix (paper Sec. II-A).
    pub fn from_ground_state(gs: &pwdft::GroundState) -> TdState {
        TdState {
            phi: gs.phi.clone(),
            sigma: CMat::from_real_diag(&gs.occ),
            time: 0.0,
        }
    }

    /// Number of bands N.
    pub fn n_bands(&self) -> usize {
        self.phi.n_bands
    }

    /// Electron count `2 tr σ` (conserved by exact dynamics).
    pub fn electron_count(&self) -> f64 {
        2.0 * self.sigma.trace().re
    }

    /// Max departure of σ from Hermiticity.
    pub fn sigma_hermiticity_error(&self) -> f64 {
        self.sigma.hermiticity_error()
    }

    /// True when every orbital coefficient, σ entry, and the time are
    /// finite — the health check of the recovery ladder: a blown-up or
    /// NaN-poisoned step fails this and triggers a retry.
    pub fn all_finite(&self) -> bool {
        self.time.is_finite()
            && self
                .phi
                .data
                .iter()
                .all(|z| z.re.is_finite() && z.im.is_finite())
            && self
                .sigma
                .as_slice()
                .iter()
                .all(|z| z.re.is_finite() && z.im.is_finite())
    }

    /// Max departure of Φ from orthonormality.
    pub fn orthonormality_error(&self) -> f64 {
        let s = self.phi.overlap(&self.phi);
        s.max_abs_diff(&CMat::identity(self.n_bands()))
    }

    /// Enforces the constraints the paper applies at the end of each
    /// PT-IM step (Alg. 1 line 13): Löwdin-orthonormalize Φ and
    /// conjugate-symmetrize σ.
    pub fn enforce_constraints(&mut self) {
        let _s = pwobs::span("gemm.constraints");
        self.phi.orthonormalize_lowdin();
        self.sigma = self.sigma.hermitian_part();
    }

    /// Flattens `(Φ, σ)` into one complex vector (the fixed-point unknown
    /// for Anderson mixing). σ entries are appended after the orbital
    /// coefficients.
    pub fn pack(&self) -> Vec<pwnum::Complex64> {
        let n = self.n_bands();
        let mut v = Vec::with_capacity(self.phi.data.len() + n * n);
        v.extend_from_slice(&self.phi.data);
        v.extend_from_slice(self.sigma.as_slice());
        v
    }

    /// Inverse of [`Self::pack`] (keeps `time` unchanged).
    pub fn unpack_into(&mut self, v: &[pwnum::Complex64]) {
        let nwf = self.phi.data.len();
        let n = self.n_bands();
        assert_eq!(v.len(), nwf + n * n);
        self.phi.data.copy_from_slice(&v[..nwf]);
        self.sigma = CMat::from_vec(n, n, v[nwf..].to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwdft::{Cell, PwGrid};
    use pwnum::c64;

    fn state() -> TdState {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
        let phi = Wavefunction::random(&grid, 4, 3);
        let sigma = CMat::from_real_diag(&[1.0, 0.8, 0.4, 0.1]);
        TdState { phi, sigma, time: 0.0 }
    }

    #[test]
    fn electron_count_is_twice_trace() {
        let s = state();
        assert!((s.electron_count() - 2.0 * 2.3).abs() < 1e-12);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let s = state();
        let mut t = s.clone();
        let v = s.pack();
        t.unpack_into(&v);
        assert!(s.phi.max_abs_diff(&t.phi) < 1e-15);
        assert!(s.sigma.max_abs_diff(&t.sigma) < 1e-15);
    }

    #[test]
    fn constraints_restore_invariants() {
        let mut s = state();
        // Perturb.
        s.sigma[(0, 1)] = c64(0.3, 0.2);
        let b0 = s.phi.band(0).to_vec();
        pwnum::cvec::axpy(c64(0.1, -0.05), &b0, s.phi.band_mut(1));
        assert!(s.orthonormality_error() > 1e-3);
        assert!(s.sigma_hermiticity_error() > 1e-3);
        s.enforce_constraints();
        assert!(s.orthonormality_error() < 1e-9);
        assert!(s.sigma_hermiticity_error() < 1e-15);
    }
}
