//! # ptim — the paper's contribution: finite-temperature rt-TDDFT with
//! hybrid functional via parallel-transport implicit-midpoint integration
//!
//! Implements, on top of the [`pwdft`] substrate:
//!
//! * [`ptim`] — the PT-IM propagator (paper Alg. 1): implicit midpoint in
//!   the parallel-transport gauge, fixed point solved with Anderson
//!   mixing, dense (σ-diagonalized) Fock exchange.
//! * [`ptim_ace`] — PT-IM-ACE (Fig. 4b): double SCF loop with frozen
//!   low-rank ACE exchange in the inner loop.
//! * [`rk4`] — the RK4 reference propagator (Fig. 7 baseline).
//! * [`ptcn`] — the pure-state PT-CN predecessor (JCTC 2018), kept as a
//!   baseline; a test demonstrates its mixed-state failure mode.
//! * [`laser`] — the 380 nm pulse and the length-gauge sawtooth operator.
//! * [`observables`] — dipole/energy/σ trajectory recording (Figs. 7, 8).
//! * [`distributed`] — band-parallel PT-IM over [`mpisim`] with the
//!   paper's wavefunction-exchange strategies (Bcast, ring, asynchronous
//!   ring, and the ring-pipelined overlapped exchange) and SHM-backed
//!   σ/overlap matrices.
//! * [`grid2d`] — the hierarchical 2-D parallelization subsystem: the
//!   band×grid [`grid2d::ProcessGrid`], slab ownership
//!   ([`grid2d::GridDistribution`] + `pwfft::dist`), and the
//!   ring-pipelined communication-overlapped Fock exchange behind
//!   [`distributed::ExchangeStrategy::RingOverlap`].
//! * [`resilience`] — checkpoint/restart (versioned, checksummed,
//!   atomically written snapshots of `(Φ, σ, t)`), the step-level
//!   recovery ladder (fp64 promotion → dt halving → checkpoint restore),
//!   and the resilient run driver (DESIGN.md §12).
//!
//! Everything is exercised against invariants (trace/Hermiticity of σ,
//! orthonormality, energy conservation, gauge invariance) and against the
//! RK4 reference.

pub mod distributed;
pub mod engine;
pub mod grid2d;
pub mod laser;
pub mod observables;
pub mod propagate;
pub mod ptcn;
pub mod ptim;
pub mod ptim_ace;
pub mod resilience;
pub mod rk4;
pub mod state;

pub use engine::{HybridParams, TdEngine};
pub use laser::LaserPulse;
pub use observables::Recorder;
pub use propagate::{step_with_drift_guard, StepStats};
pub use resilience::{
    step_with_recovery, Checkpoint, CheckpointError, CheckpointMeta, CheckpointPolicy,
    Propagator, RecoveryPolicy,
};
pub use ptcn::{ptcn_step, PtcnConfig};
pub use ptim::{ptim_step, PtimConfig};
pub use ptim_ace::{ptim_ace_step, PtimAceConfig};
pub use rk4::{rk4_step, Rk4Config};
pub use state::TdState;
