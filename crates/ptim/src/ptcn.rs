//! PT-CN: the parallel-transport Crank–Nicolson propagator of Jia, An,
//! Wang & Lin (JCTC 2018) — the paper's *predecessor* baseline.
//!
//! PT-CN solves, by fixed-point iteration,
//!
//! ```text
//! Φ_{n+1} + (iΔt/2)(I − P_{n+1}) H_{n+1} Φ_{n+1}
//!     = Φ_n − (iΔt/2)(I − P_n) H_n Φ_n
//! ```
//!
//! It assumes a **pure state** (σ = I on the occupied manifold): there is
//! no occupation-matrix dynamics at all. That is exactly the limitation
//! the paper's introduction names — "the current PT-CN scheme is only
//! applicable for systems with band gaps" — and the reason PT-IM exists.
//! A regression test below demonstrates the failure: for a
//! fractionally-occupied σ, PT-CN (which freezes σ) diverges from the RK4
//! reference while PT-IM tracks it.

use crate::engine::TdEngine;
use crate::propagate::{density_residual, step_with_drift_guard, StepStats};
use crate::state::TdState;
use pwdft::mixing::AndersonMixer;
use pwdft::Wavefunction;
use pwnum::chol::solve_hpd;
use pwnum::complex::{c64, Complex64};

/// PT-CN parameters.
#[derive(Clone, Copy, Debug)]
pub struct PtcnConfig {
    /// Time step (a.u.).
    pub dt: f64,
    /// Maximum fixed-point iterations.
    pub max_scf: usize,
    /// Density convergence threshold (relative L1).
    pub tol_rho: f64,
    /// Anderson history depth.
    pub anderson_depth: usize,
    /// Anderson damping.
    pub anderson_beta: f64,
}

impl Default for PtcnConfig {
    fn default() -> Self {
        PtcnConfig {
            dt: 50.0 / crate::laser::AU_TIME_AS,
            max_scf: 30,
            tol_rho: 1e-8,
            anderson_depth: 20,
            anderson_beta: 0.6,
        }
    }
}

impl PtcnConfig {
    /// The same configuration with a different time step — how the
    /// recovery ladder builds its halved-dt retries.
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }
}

/// `(I − P) H Φ` with `P = Φ (Φ^HΦ)⁻¹ Φ^H` — the parallel-transport
/// residual force on the orbital block.
fn pt_force(h: &pwdft::Hamiltonian, phi: &Wavefunction) -> Vec<Complex64> {
    let ng = phi.ng;
    let be = &*h.backend;
    let hphi = h.apply(phi);
    let s = phi.overlap_with(be, phi);
    let hm = phi.overlap_with(be, &hphi).hermitian_part();
    let c = solve_hpd(&s, &hm).expect("overlap must remain positive definite");
    let mut force = hphi.data;
    be.rotate_acc(Complex64::from_re(-1.0), &phi.data, &c, ng, &mut force);
    force
}

/// One PT-CN step. The occupation matrix is carried along *unchanged*
/// (the scheme has no σ dynamics — its defining limitation). Under a
/// reduced precision policy the step runs the drift monitor.
pub fn ptcn_step(eng: &TdEngine, state: &TdState, cfg: &PtcnConfig) -> (TdState, StepStats) {
    step_with_drift_guard(eng, |e| ptcn_step_once(e, state, cfg))
}

/// One unguarded PT-CN step (the drift monitor wraps this).
fn ptcn_step_once(eng: &TdEngine, state: &TdState, cfg: &PtcnConfig) -> (TdState, StepStats) {
    let _s = pwobs::span("step.ptcn");
    let solve_snap = eng.counters.snapshot();
    let start_err = crate::propagate::monitor_active(eng)
        .then(|| state.orthonormality_error());
    let dt = cfg.dt;
    let ne = state.electron_count();
    let dv = eng.sys.grid.dv();
    let mut stats = StepStats::default();

    // Constant right-hand side: Φ_n − (iΔt/2)(I−P_n)H_nΦ_n.
    let ev_n = eng.eval(&state.phi, &state.sigma, state.time);
    let h_n = eng.hamiltonian_dense(&ev_n);
    if eng.hybrid.alpha != 0.0 {
        stats.fock_applies += 1;
    }
    let force_n = pt_force(&h_n, &state.phi);
    let mut rhs = Wavefunction::zeros_like(&state.phi);
    eng.backend.lincomb(
        Complex64::ONE,
        &state.phi.data,
        c64(0.0, -0.5 * dt),
        &force_n,
        &mut rhs.data,
    );

    // Fixed point on Φ_{n+1}.
    let mut next =
        TdState { phi: state.phi.clone(), sigma: state.sigma.clone(), time: state.time + dt };
    let mut mixer = AndersonMixer::new(cfg.anderson_depth, cfg.anderson_beta);
    let mut rho_prev = ev_n.rho;

    for it in 0..cfg.max_scf {
        stats.scf_iters = it + 1;
        let ev = eng.eval(&next.phi, &state.sigma, state.time + dt);
        stats.residual = density_residual(&ev.rho, &rho_prev, dv, ne);
        rho_prev = ev.rho.clone();
        if it > 0 && stats.residual < cfg.tol_rho {
            stats.converged = true;
            break;
        }
        let h = eng.hamiltonian_dense(&ev);
        if eng.hybrid.alpha != 0.0 {
            stats.fock_applies += 1;
        }
        let force = pt_force(&h, &next.phi);
        // T(Φ) = rhs − (iΔt/2)(I−P)HΦ.
        let mut image = Wavefunction::zeros_like(&next.phi);
        eng.backend.lincomb(
            Complex64::ONE,
            &rhs.data,
            c64(0.0, -0.5 * dt),
            &force,
            &mut image.data,
        );
        let mixed = mixer.step(&next.phi.data, &image.data);
        next.phi.data.copy_from_slice(&mixed);
    }

    if let Some(e0) = start_err {
        stats.orthonormality_drift = (next.orthonormality_error() - e0).max(0.0);
    }
    (stats.fock_solves_fp64, stats.fock_solves_fp32) = eng.counters.since(solve_snap);
    stats.pool_peak_bytes = crate::propagate::pool_peak_bytes(eng);
    next.phi.orthonormalize_lowdin();
    (next, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HybridParams;
    use crate::laser::LaserPulse;
    use crate::ptim::{ptim_step, PtimConfig};
    use crate::rk4::{rk4_step, Rk4Config};
    use pwdft::{Cell, DftSystem};
    use pwnum::cmat::CMat;

    fn fixture(occ: &[f64]) -> (DftSystem, TdState) {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
        let mut phi = Wavefunction::random(&sys.grid, occ.len(), 47);
        phi.orthonormalize_lowdin();
        let sigma = CMat::from_real_diag(occ);
        (sys, TdState { phi, sigma, time: 0.0 })
    }

    fn dipole_after(
        eng: &TdEngine,
        run: impl FnOnce(&TdEngine) -> TdState,
    ) -> f64 {
        let s = run(eng);
        let ev = eng.eval(&s.phi, &s.sigma, s.time);
        eng.dipole_x(&ev.rho)
    }

    #[test]
    fn ptcn_conserves_energy_pure_state_field_free() {
        let (sys, st) = fixture(&[1.0, 1.0, 1.0]);
        let eng =
            TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let e0 = eng.total_energy(&st).total();
        let mut s = st;
        let cfg = PtcnConfig { dt: 0.5, ..Default::default() };
        for _ in 0..5 {
            let (next, stats) = ptcn_step(&eng, &s, &cfg);
            assert!(stats.converged, "PT-CN fixed point");
            s = next;
        }
        let e1 = eng.total_energy(&s).total();
        assert!((e1 - e0).abs() < 1e-4 * e0.abs().max(1.0), "drift {e0} -> {e1}");
        assert!(s.orthonormality_error() < 1e-9);
    }

    #[test]
    fn ptcn_matches_ptim_for_pure_states() {
        // With σ = I the commutator dynamics vanish and PT-CN and PT-IM
        // integrate the same flow (both are second-order symmetric).
        let (sys, st) = fixture(&[1.0, 1.0, 1.0]);
        let laser = LaserPulse { e0: 0.02, omega: 0.1, t_center: 4.0, t_width: 4.0 };
        let eng = TdEngine::new(&sys, laser, HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let dt = 0.5;
        let n = 4;

        let d_cn = dipole_after(&eng, |eng| {
            let mut s = st.clone();
            for _ in 0..n {
                let (next, _) = ptcn_step(&eng, &s, &PtcnConfig { dt, ..Default::default() });
                s = next;
            }
            s
        });
        let d_im = dipole_after(&eng, |eng| {
            let mut s = st.clone();
            for _ in 0..n {
                let (next, _) = ptim_step(
                    &eng,
                    &s,
                    &PtimConfig { dt, max_scf: 40, tol_rho: 1e-9, ..Default::default() },
                );
                s = next;
            }
            s
        });
        // Both are second-order but not the same scheme (trapezoidal vs
        // midpoint): agreement is O(Δt²)-tight, not exact.
        assert!(
            (d_cn - d_im).abs() < 5e-3 * d_im.abs().max(1.0),
            "pure-state PT-CN {d_cn} vs PT-IM {d_im}"
        );
    }

    #[test]
    fn ptcn_fails_for_mixed_states_where_ptim_succeeds() {
        // The paper's core motivation (Sec. I): PT-CN freezes σ, so for a
        // fractionally-occupied system under a field it diverges from the
        // exact (RK4) dynamics, while PT-IM tracks them.
        let occ = [1.0, 0.7, 0.4, 0.15];
        let (sys, st) = fixture(&occ);
        let laser = LaserPulse { e0: 0.05, omega: 0.1, t_center: 4.0, t_width: 4.0 };
        let eng = TdEngine::new(&sys, laser, HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let dt = 1.0;
        let n = 4;

        // Reference: RK4 with a small step.
        let d_ref = dipole_after(&eng, |eng| {
            let mut s = st.clone();
            for _ in 0..n * 25 {
                let (next, _) = rk4_step(&eng, &s, &Rk4Config { dt: dt / 25.0 });
                s = next;
            }
            s
        });
        let d_im = dipole_after(&eng, |eng| {
            let mut s = st.clone();
            for _ in 0..n {
                let (next, _) = ptim_step(
                    &eng,
                    &s,
                    &PtimConfig { dt, max_scf: 40, tol_rho: 1e-9, ..Default::default() },
                );
                s = next;
            }
            s
        });
        let d_cn = dipole_after(&eng, |eng| {
            let mut s = st.clone();
            for _ in 0..n {
                let (next, _) = ptcn_step(&eng, &s, &PtcnConfig { dt, ..Default::default() });
                s = next;
            }
            s
        });

        let err_im = (d_im - d_ref).abs();
        let err_cn = (d_cn - d_ref).abs();
        assert!(
            err_cn > 3.0 * err_im,
            "PT-CN must be qualitatively worse for mixed states: \
             |Δ_CN| = {err_cn:.3e} vs |Δ_IM| = {err_im:.3e} (reference {d_ref:.5})"
        );
    }
}
