//! The external laser field (length gauge).
//!
//! Paper Sec. VI: a 380 nm pulse, Gaussian envelope, 30 fs simulation.
//! In the length gauge the perturbation is `V_ext(r, t) = E(t)·x_saw(r)`
//! with the sawtooth periodic position operator (the standard choice for
//! periodic cells in PWDFT).

/// Attoseconds per atomic time unit.
pub const AU_TIME_AS: f64 = 24.188_843_265_857;
/// Femtoseconds per atomic time unit.
pub const AU_TIME_FS: f64 = AU_TIME_AS * 1e-3;
/// Photon energy (hartree) of a wavelength in nm.
pub fn photon_energy_ha(lambda_nm: f64) -> f64 {
    // E[eV] = 1239.841984 / λ[nm]; 1 Ha = 27.211386245988 eV.
    1_239.841_984 / lambda_nm / 27.211_386_245_988
}

/// A linearly-polarized Gaussian-envelope laser pulse along x.
#[derive(Clone, Debug)]
pub struct LaserPulse {
    /// Peak field strength (a.u.).
    pub e0: f64,
    /// Carrier angular frequency (hartree).
    pub omega: f64,
    /// Envelope center (a.u. time).
    pub t_center: f64,
    /// Envelope Gaussian width (a.u. time).
    pub t_width: f64,
}

impl LaserPulse {
    /// The paper's pulse: 380 nm carrier, centered mid-simulation.
    /// `total_fs` is the simulated duration (30 fs in the paper).
    pub fn paper_pulse(e0: f64, total_fs: f64) -> LaserPulse {
        LaserPulse {
            e0,
            omega: photon_energy_ha(380.0),
            t_center: 0.5 * total_fs / AU_TIME_FS,
            t_width: 0.15 * total_fs / AU_TIME_FS,
        }
    }

    /// Electric field at time `t` (a.u.).
    pub fn field(&self, t: f64) -> f64 {
        let x = (t - self.t_center) / self.t_width;
        self.e0 * (-0.5 * x * x).exp() * (self.omega * (t - self.t_center)).sin()
    }

    /// A zero pulse (field-free propagation).
    pub fn off() -> LaserPulse {
        LaserPulse { e0: 0.0, omega: 1.0, t_center: 0.0, t_width: 1.0 }
    }
}

/// Sawtooth periodic x-coordinate on the grid, shifted so its *grid*
/// average vanishes exactly (grid points are left-aligned, so the naive
/// `x − L/2` carries a spurious `−L/2n` offset that would leak into the
/// dipole).
pub fn sawtooth_x(grid: &pwdft::PwGrid) -> Vec<f64> {
    let mut x: Vec<f64> = (0..grid.len()).map(|i| grid.r_coord(i)[0]).collect();
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
    x
}

/// The external potential `V_ext(r) = E(t) · x_saw(r)` on the grid.
pub fn external_potential(x_saw: &[f64], field: f64, out: &mut [f64]) {
    assert_eq!(x_saw.len(), out.len());
    for (o, &x) in out.iter_mut().zip(x_saw) {
        *o = field * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwdft::{Cell, PwGrid};

    #[test]
    fn photon_energy_of_380nm() {
        // 380 nm -> 3.2627 eV -> 0.11990 Ha.
        let e = photon_energy_ha(380.0);
        assert!((e - 0.1199).abs() < 1e-3, "got {e}");
    }

    #[test]
    fn pulse_envelope_peaks_at_center() {
        let p = LaserPulse::paper_pulse(0.01, 30.0);
        // The envelope magnitude at t_center ± 3σ is tiny.
        let far = p.field(p.t_center + 4.0 * p.t_width).abs();
        assert!(far < 0.01 * p.e0.abs() + 1e-12);
        // Near the center the field reaches a significant fraction of e0.
        let mut maxf = 0.0f64;
        for k in 0..2000 {
            let t = p.t_center - p.t_width + 2.0 * p.t_width * k as f64 / 2000.0;
            maxf = maxf.max(p.field(t).abs());
        }
        assert!(maxf > 0.8 * p.e0, "peak field {maxf}");
    }

    #[test]
    fn off_pulse_is_zero() {
        let p = LaserPulse::off();
        for k in 0..10 {
            assert_eq!(p.field(k as f64 * 10.0), 0.0);
        }
    }

    #[test]
    fn sawtooth_has_zero_average() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
        let x = sawtooth_x(&grid);
        let mean: f64 = x.iter().sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 1e-10, "mean {mean}");
        // Range spans one cell length minus one grid spacing.
        let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let spacing = grid.lengths[0] / 6.0;
        assert!((max - min - (grid.lengths[0] - spacing)).abs() < 1e-9);
    }

    #[test]
    fn external_potential_scales_with_field() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [4, 4, 4]);
        let x = sawtooth_x(&grid);
        let mut v = vec![0.0; grid.len()];
        external_potential(&x, 2.0, &mut v);
        for (vi, xi) in v.iter().zip(&x) {
            assert!((vi - 2.0 * xi).abs() < 1e-15);
        }
    }

    #[test]
    fn time_unit_conversions() {
        // 50 as (the paper's PT-IM time step) ≈ 2.067 a.u.
        let dt_au = 50.0 / AU_TIME_AS;
        assert!((dt_au - 2.067).abs() < 0.01);
        // 30 fs ≈ 1240 a.u.
        assert!((30.0 / AU_TIME_FS - 1240.2).abs() < 1.0);
    }
}
