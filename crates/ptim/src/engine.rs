//! Shared machinery for the time propagators: density/Hamiltonian
//! assembly at a given `(Φ, σ, t)` and total-energy evaluation.

use crate::laser::{external_potential, sawtooth_x, LaserPulse};
use crate::state::TdState;
use pwdft::density::{density_from_natural_with, natural_orbitals_with, NaturalOrbitals};
use pwdft::energy::{external_energy, kinetic_energy, EnergyBreakdown};
use pwdft::fock::SolveCounters;
use pwdft::hamiltonian::{build_hxc_with, Exchange, Hamiltonian};
use pwdft::{DftSystem, FockOperator, FockOptions, Wavefunction};
use pwnum::backend::{default_backend, BackendHandle};
use pwnum::cmat::CMat;
use std::sync::Arc;

/// Hybrid-functional parameters for the dynamics.
#[derive(Clone, Copy, Debug)]
pub struct HybridParams {
    /// Mixing fraction α (paper: 0.25). Zero disables Fock exchange.
    pub alpha: f64,
    /// Screening ω (bohr⁻¹; HSE06: 0.106).
    pub omega: f64,
    /// Fock pair-block scheduler options (occupation screening cutoff,
    /// pairs per tile), forwarded to every exchange evaluation the
    /// propagators trigger.
    pub fock: FockOptions,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams {
            alpha: 0.25,
            omega: pwdft::fock::HSE_OMEGA,
            fock: FockOptions::default(),
        }
    }
}

/// Bound engine: system + laser + functional choice.
pub struct TdEngine<'s> {
    /// The static system.
    pub sys: &'s DftSystem,
    /// The laser pulse.
    pub laser: LaserPulse,
    /// Hybrid parameters.
    pub hybrid: HybridParams,
    /// Compute backend every hot primitive of the propagators routes
    /// through (FFT batches, Fock solves, band ops, subspace GEMMs).
    pub backend: BackendHandle,
    /// Shared precision counters: every Fock operator the engine
    /// constructs records its fp64/fp32 Poisson solves here, and the
    /// propagators snapshot the totals around each step to fill
    /// [`StepStats`](crate::StepStats).
    pub counters: Arc<SolveCounters>,
    /// Periodic-checkpoint policy consulted by the
    /// [`resilience::run`](crate::resilience::run) driver (`None` = no
    /// checkpointing). Install with [`Self::with_checkpoints`].
    pub checkpoints: Option<crate::resilience::CheckpointPolicy>,
    /// Cached sawtooth x-coordinate.
    x_saw: Vec<f64>,
}

/// Everything derived from one `(Φ, σ, t)` evaluation point.
pub struct EvalPoint {
    /// Natural orbitals and occupations of σ.
    pub nat: NaturalOrbitals,
    /// Natural orbitals in real space.
    pub nat_r: Vec<pwnum::Complex64>,
    /// Electron density.
    pub rho: Vec<f64>,
    /// Hartree + XC potential.
    pub vhxc: Vec<f64>,
    /// External (laser) potential.
    pub vext: Vec<f64>,
    /// Hartree energy.
    pub e_hartree: f64,
    /// Semi-local XC energy.
    pub e_xc: f64,
}

impl<'s> TdEngine<'s> {
    /// Creates the engine on the process default backend.
    pub fn new(sys: &'s DftSystem, laser: LaserPulse, hybrid: HybridParams) -> Self {
        Self::with_backend(sys, laser, hybrid, default_backend().clone())
    }

    /// Creates the engine on an explicit compute backend (the paper's
    /// ARM-vs-GPU split: pick per `perfmodel::platform`).
    pub fn with_backend(
        sys: &'s DftSystem,
        laser: LaserPulse,
        hybrid: HybridParams,
        backend: BackendHandle,
    ) -> Self {
        hybrid.fock.precision.validate();
        let x_saw = sawtooth_x(&sys.grid);
        TdEngine {
            sys,
            laser,
            hybrid,
            backend,
            counters: Arc::new(SolveCounters::default()),
            checkpoints: None,
            x_saw,
        }
    }

    /// Installs a periodic-checkpoint policy (consumed by
    /// [`resilience::run`](crate::resilience::run)).
    pub fn with_checkpoints(mut self, policy: crate::resilience::CheckpointPolicy) -> Self {
        self.checkpoints = Some(policy);
        self
    }

    /// A Fock operator on the engine's grid, backend, and scheduler
    /// options — the one construction every exchange evaluation shares.
    /// Solve counts route into the engine's shared [`SolveCounters`].
    pub fn fock_operator(&self) -> FockOperator<'s> {
        FockOperator::with_options(
            &self.sys.grid,
            self.hybrid.omega,
            self.backend.clone(),
            self.hybrid.fock,
        )
        .with_counters(self.counters.clone())
    }

    /// The same engine with the precision policy promoted to all-fp64 —
    /// what the drift monitor reruns a tripped step on. Shares the
    /// counters (and the backend) so cost accounting stays unified.
    pub fn promoted(&self) -> TdEngine<'s> {
        let mut hybrid = self.hybrid;
        hybrid.fock.precision = hybrid.fock.precision.promoted();
        TdEngine {
            sys: self.sys,
            laser: self.laser.clone(),
            hybrid,
            backend: self.backend.clone(),
            counters: self.counters.clone(),
            checkpoints: self.checkpoints.clone(),
            x_saw: self.x_saw.clone(),
        }
    }

    /// The laser potential at time `t`.
    pub fn vext_at(&self, t: f64) -> Vec<f64> {
        let mut v = vec![0.0; self.sys.grid.len()];
        external_potential(&self.x_saw, self.laser.field(t), &mut v);
        v
    }

    /// Evaluates density, potentials and natural orbitals at `(Φ, σ, t)`.
    pub fn eval(&self, phi: &Wavefunction, sigma: &CMat, t: f64) -> EvalPoint {
        let _s = pwobs::span("grid.eval");
        let be = &*self.backend;
        let nat = natural_orbitals_with(be, phi, sigma);
        let rho = density_from_natural_with(be, &self.sys.grid, &self.sys.fft, &nat);
        let hxc = build_hxc_with(be, &self.sys.grid, &self.sys.fft, &rho);
        let nat_r = nat.phi.to_real_all_with(be, &self.sys.fft);
        EvalPoint {
            nat,
            nat_r,
            rho,
            vhxc: hxc.vhxc,
            vext: self.vext_at(t),
            e_hartree: hxc.e_hartree,
            e_xc: hxc.e_xc,
        }
    }

    /// Builds the dense-exchange Hamiltonian at an evaluation point.
    /// Every `apply` of the result performs one full `VxΦ` (the paper's
    /// expensive operation).
    pub fn hamiltonian_dense(&self, ev: &EvalPoint) -> Hamiltonian<'s> {
        let exchange = if self.hybrid.alpha != 0.0 {
            Exchange::Dense { nat_r: ev.nat_r.clone(), occ: ev.nat.occ.clone() }
        } else {
            Exchange::None
        };
        let fock = if self.hybrid.alpha != 0.0 { Some(self.fock_operator()) } else { None };
        Hamiltonian::with_backend(
            &self.sys.grid,
            &self.sys.vloc,
            &ev.vhxc,
            &ev.vext,
            self.hybrid.alpha,
            exchange,
            fock,
            self.backend.clone(),
        )
    }

    /// Builds a Hamiltonian using a *fixed* ACE exchange operator (the
    /// inner-loop Hamiltonian of PT-IM-ACE).
    pub fn hamiltonian_ace(&self, ev: &EvalPoint, ace: pwdft::AceOperator) -> Hamiltonian<'s> {
        Hamiltonian::with_backend(
            &self.sys.grid,
            &self.sys.vloc,
            &ev.vhxc,
            &ev.vext,
            self.hybrid.alpha,
            Exchange::Ace(ace),
            None,
            self.backend.clone(),
        )
    }

    /// Full exchange images `W = VxΦ` for the state (used to build ACE).
    /// Returns `(W, E_x)` with `W` masked to the cutoff sphere.
    ///
    /// One pair-symmetric apply on the natural orbitals covers both
    /// outputs: `Vx Φ̃` gives `Ex` directly, and by linearity
    /// `Vx Φ = (Vx Φ̃) Qᴴ` — a band rotation instead of the second (and
    /// previously asymmetric, unhalved) Fock application.
    pub fn exchange_images(&self, phi: &Wavefunction, sigma: &CMat) -> (Wavefunction, f64) {
        let (w, ex, _) = self.exchange_images_stats(phi, sigma);
        (w, ex)
    }

    /// [`Self::exchange_images`] also returning the scheduler's
    /// [`FockApplyStats`](pwdft::FockApplyStats), so callers with a
    /// nonzero screening cutoff can read the dropped weight
    /// (`skipped_weight`) and bound the approximation error.
    pub fn exchange_images_stats(
        &self,
        phi: &Wavefunction,
        sigma: &CMat,
    ) -> (Wavefunction, f64, pwdft::FockApplyStats) {
        let be = &*self.backend;
        let fock = self.fock_operator();
        let nat = natural_orbitals_with(be, phi, sigma);
        let nat_r = nat.phi.to_real_all_with(be, &self.sys.fft);
        let (vx_nat, stats) = fock.apply_pure_stats(&nat_r, &nat.occ);
        // Exchange energy in the natural basis: Ex = Σ d_i <φ̃_i|Vx|φ̃_i>.
        let ex = fock.exchange_energy(&nat_r, &nat.occ, &vx_nat, self.sys.grid.dv());
        // Rotate the images back to the original orbital gauge.
        let ng = self.sys.grid.len();
        let mut vx_r = vec![pwnum::Complex64::ZERO; vx_nat.len()];
        be.rotate(&vx_nat, &nat.q.herm(), ng, &mut vx_r);
        let mut w = Wavefunction::from_real_with(be, &self.sys.grid, &self.sys.fft, vx_r);
        w.mask(&self.sys.grid);
        (w, ex, stats)
    }

    /// Electronic dipole along x: `d_x = -∫ x_saw ρ dV`.
    pub fn dipole_x(&self, rho: &[f64]) -> f64 {
        -self
            .x_saw
            .iter()
            .zip(rho)
            .map(|(x, r)| x * r)
            .sum::<f64>()
            * self.sys.grid.dv()
    }

    /// Total energy of a state (hartree). One full Fock evaluation when
    /// hybrid exchange is active.
    pub fn total_energy(&self, state: &TdState) -> EnergyBreakdown {
        let ev = self.eval(&state.phi, &state.sigma, state.time);
        let exact_exchange = if self.hybrid.alpha != 0.0 {
            let fock = self.fock_operator();
            let vx_nat = fock.apply_diag(&ev.nat_r, &ev.nat.occ, &ev.nat_r);
            self.hybrid.alpha
                * fock.exchange_energy(&ev.nat_r, &ev.nat.occ, &vx_nat, self.sys.grid.dv())
        } else {
            0.0
        };
        EnergyBreakdown {
            kinetic: kinetic_energy(&self.sys.grid, &ev.nat.phi, &ev.nat.occ),
            eei: self.sys.eei_energy(&ev.rho),
            hartree: ev.e_hartree,
            xc: ev.e_xc,
            exact_exchange,
            external: external_energy(&self.sys.grid, &ev.vext, &ev.rho),
            ewald: self.sys.e_ewald,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwdft::Cell;
    use pwnum::c64;

    fn engine_fixture(alpha: f64) -> (DftSystem, LaserPulse) {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
        let _ = alpha;
        (sys, LaserPulse::off())
    }

    fn toy_state(sys: &DftSystem, n: usize) -> TdState {
        let phi = Wavefunction::random(&sys.grid, n, 17);
        let mut sigma = CMat::from_real_diag(&vec![0.6; n]);
        sigma[(0, 1)] = c64(0.1, 0.05);
        sigma[(1, 0)] = c64(0.1, -0.05);
        TdState { phi, sigma, time: 0.0 }
    }

    #[test]
    fn eval_density_integrates_to_trace() {
        let (sys, laser) = engine_fixture(0.0);
        let eng = TdEngine::new(&sys, laser, HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let st = toy_state(&sys, 4);
        let ev = eng.eval(&st.phi, &st.sigma, 0.0);
        let ne = pwdft::density::electron_count(&sys.grid, &ev.rho);
        assert!((ne - st.electron_count()).abs() < 1e-8);
    }

    #[test]
    fn dipole_of_symmetric_density_vanishes() {
        let (sys, laser) = engine_fixture(0.0);
        let eng = TdEngine::new(&sys, laser, HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        // Uniform density: zero dipole by symmetry of the sawtooth.
        let rho = vec![1.0; sys.grid.len()];
        assert!(eng.dipole_x(&rho).abs() < 1e-9);
    }

    #[test]
    fn hamiltonian_hermitian_with_field() {
        let (sys, _) = engine_fixture(0.0);
        let laser = LaserPulse { e0: 0.02, omega: 0.12, t_center: 10.0, t_width: 5.0 };
        let eng = TdEngine::new(&sys, laser, HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() });
        let st = toy_state(&sys, 3);
        let ev = eng.eval(&st.phi, &st.sigma, 10.0);
        let h = eng.hamiltonian_dense(&ev);
        let hm = {
            let hphi = h.apply(&st.phi);
            st.phi.overlap(&hphi)
        };
        assert!(hm.hermiticity_error() < 1e-8, "err {}", hm.hermiticity_error());
    }

    #[test]
    fn total_energy_gauge_invariance() {
        // E must be invariant under Φ -> ΦU, σ -> U^H σ U (same density
        // matrix P).
        let (sys, laser) = engine_fixture(0.25);
        let eng = TdEngine::new(&sys, laser, HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() });
        let st = toy_state(&sys, 3);
        let e0 = eng.total_energy(&st).total();

        // Unitary from a random Hermitian.
        let h = pwnum::cmat::random_hermitian(3, {
            let mut s = 33u64;
            move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(11);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }
        });
        let u = pwnum::eigh(&h).vectors;
        let mut st2 = st.clone();
        st2.phi = st.phi.rotated(&u);
        // σ' = U^H σ U.
        let su = st.sigma.matmul(&u);
        st2.sigma = pwnum::gemm::gemm(
            pwnum::Complex64::ONE,
            &u,
            pwnum::gemm::Op::ConjTrans,
            &su,
            pwnum::gemm::Op::None,
            pwnum::Complex64::ZERO,
            None,
        );
        let e1 = eng.total_energy(&st2).total();
        assert!((e0 - e1).abs() < 1e-8, "gauge dependence: {e0} vs {e1}");
    }

    #[test]
    fn exchange_images_build_valid_ace() {
        let (sys, laser) = engine_fixture(0.25);
        let eng = TdEngine::new(&sys, laser, HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() });
        let st = toy_state(&sys, 3);
        let (w, ex) = eng.exchange_images(&st.phi, &st.sigma);
        assert!(ex < 0.0);
        let ace = pwdft::AceOperator::build(&st.phi, &w);
        // ACE reproduces W on the span.
        let mut out = vec![pwnum::Complex64::ZERO; st.phi.data.len()];
        ace.apply_add(&st.phi, 1.0, &mut out);
        let diff = pwnum::cvec::max_abs_diff(&out, &w.data);
        let scale = w.data.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        assert!(diff < 1e-8 * scale.max(1e-10), "{diff}");
    }
}
