//! Fourth-order Runge–Kutta reference propagator (the paper's accuracy
//! baseline, Fig. 7).
//!
//! RK4 works in the Schrödinger gauge: `i ∂_t Ψ = H(t, P) Ψ` with the
//! occupation matrix *constant* (gauge equivalence to PT-IM is exactly
//! what Fig. 7 validates). Stability requires sub-attosecond steps —
//! the paper uses Δt 100× smaller than PT-IM's 50 as.

use crate::engine::TdEngine;
use crate::propagate::{step_with_drift_guard, StepStats};
use crate::state::TdState;
use pwdft::Wavefunction;
use pwnum::complex::{c64, Complex64};

/// RK4 step size configuration.
#[derive(Clone, Copy, Debug)]
pub struct Rk4Config {
    /// Time step (a.u.). Paper: 0.5 as ≈ 0.0207 a.u.
    pub dt: f64,
}

impl Rk4Config {
    /// The same configuration with a different time step — how the
    /// recovery ladder builds its halved-dt retries.
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }
}

/// Derivative `f(t, Φ) = −i H(t, P[Φ, σ]) Φ` at fixed σ.
fn derivative(eng: &TdEngine, phi: &Wavefunction, state: &TdState, t: f64) -> Wavefunction {
    let ev = eng.eval(phi, &state.sigma, t);
    let h = eng.hamiltonian_dense(&ev);
    let mut hphi = h.apply(phi);
    for z in hphi.data.iter_mut() {
        *z *= c64(0.0, -1.0);
    }
    hphi
}

fn axpy_block(eng: &TdEngine, alpha: f64, x: &Wavefunction, y: &Wavefunction) -> Wavefunction {
    let mut out = Wavefunction::zeros_like(y);
    eng.backend.lincomb(
        Complex64::from_re(alpha),
        &x.data,
        Complex64::ONE,
        &y.data,
        &mut out.data,
    );
    out
}

/// One RK4 step; returns the new state and step statistics
/// (4 Hamiltonian applications = 4 Fock evaluations in hybrid mode).
/// Under a reduced precision policy the step runs the drift monitor.
pub fn rk4_step(eng: &TdEngine, state: &TdState, cfg: &Rk4Config) -> (TdState, StepStats) {
    step_with_drift_guard(eng, |e| rk4_step_once(e, state, cfg))
}

/// One unguarded RK4 step (the drift monitor wraps this).
fn rk4_step_once(eng: &TdEngine, state: &TdState, cfg: &Rk4Config) -> (TdState, StepStats) {
    let _s = pwobs::span("step.rk4");
    let solve_snap = eng.counters.snapshot();
    let start_err = crate::propagate::monitor_active(eng)
        .then(|| state.orthonormality_error());
    let dt = cfg.dt;
    let t = state.time;

    let k1 = derivative(eng, &state.phi, state, t);
    let phi2 = axpy_block(eng, 0.5 * dt, &k1, &state.phi);
    let k2 = derivative(eng, &phi2, state, t + 0.5 * dt);
    let phi3 = axpy_block(eng, 0.5 * dt, &k2, &state.phi);
    let k3 = derivative(eng, &phi3, state, t + 0.5 * dt);
    let phi4 = axpy_block(eng, dt, &k3, &state.phi);
    let k4 = derivative(eng, &phi4, state, t + dt);

    let mut phi_next = state.phi.clone();
    for (((o, a), b), (c, d)) in phi_next
        .data
        .iter_mut()
        .zip(&k1.data)
        .zip(&k4.data)
        .zip(k2.data.iter().zip(&k3.data))
    {
        *o += (*a + *b + (*c + *d).scale(2.0)).scale(dt / 6.0);
    }

    let fock = if eng.hybrid.alpha != 0.0 { 4 } else { 0 };
    let next = TdState { phi: phi_next, sigma: state.sigma.clone(), time: t + dt };
    let (fp64s, fp32s) = eng.counters.since(solve_snap);
    let stats = StepStats {
        fock_applies: fock,
        converged: true,
        // RK4 never re-orthonormalizes, so the step's *increase* in
        // orthonormality error is the drift signal — the state's own
        // (cumulative) error would eventually trip the monitor from
        // ordinary integration drift on long runs. Measured only when
        // the monitor is active.
        orthonormality_drift: start_err
            .map(|e0| (next.orthonormality_error() - e0).max(0.0))
            .unwrap_or(0.0),
        fock_solves_fp64: fp64s,
        fock_solves_fp32: fp32s,
        pool_peak_bytes: crate::propagate::pool_peak_bytes(eng),
        ..Default::default()
    };
    (next, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HybridParams;
    use crate::laser::LaserPulse;
    use pwdft::{Cell, DftSystem};
    use pwnum::cmat::CMat;

    fn fixture() -> (DftSystem, TdState) {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
        let mut phi = Wavefunction::random(&sys.grid, 3, 41);
        phi.orthonormalize_lowdin();
        let sigma = CMat::from_real_diag(&[1.0, 0.7, 0.3]);
        let st = TdState { phi, sigma, time: 0.0 };
        (sys, st)
    }

    #[test]
    fn rk4_preserves_orthonormality_and_charge() {
        let (sys, st) = fixture();
        let eng =
            TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let cfg = Rk4Config { dt: 0.02 };
        let mut s = st;
        for _ in 0..10 {
            let (next, _) = rk4_step(&eng, &s, &cfg);
            s = next;
        }
        assert!(s.orthonormality_error() < 1e-6, "ortho {}", s.orthonormality_error());
        assert!((s.electron_count() - 4.0).abs() < 1e-10);
        assert!((s.time - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rk4_energy_conservation_field_free() {
        let (sys, st) = fixture();
        let eng =
            TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let e0 = eng.total_energy(&st).total();
        let cfg = Rk4Config { dt: 0.02 };
        let mut s = st;
        for _ in 0..20 {
            let (next, _) = rk4_step(&eng, &s, &cfg);
            s = next;
        }
        let e1 = eng.total_energy(&s).total();
        assert!(
            (e1 - e0).abs() < 1e-5 * e0.abs().max(1.0),
            "energy drift {e0} -> {e1}"
        );
    }

    #[test]
    fn rk4_counts_fock_in_hybrid_mode() {
        let (sys, st) = fixture();
        let eng = TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() });
        let (_, stats) = rk4_step(&eng, &st, &Rk4Config { dt: 0.01 });
        assert_eq!(stats.fock_applies, 4);
    }
}
