//! Mixed-precision physics suite: a 20-step hybrid RT-TDDFT run under
//! the fp32 exchange policy must track the all-fp64 run's observables
//! (dipole trace, total energy) within the documented tolerance
//! (DESIGN.md §"Precision error budget"), and the per-step drift
//! monitor must auto-promote when forced.

use ptim::{rk4_step, HybridParams, LaserPulse, Rk4Config, TdEngine, TdState};
use pwdft::{Cell, DftSystem, FockOptions, Wavefunction};
use pwnum::cmat::CMat;
use pwnum::precision::PrecisionPolicy;

/// Documented dipole-trace tolerance of the mixed pipeline on the
/// CI-scale system (see DESIGN.md and `bench/benches/mixed_precision.rs`
/// which gates the same bound in CI).
const DIPOLE_TOL: f64 = 1e-6;

/// Documented relative total-energy tolerance after 20 mixed steps.
const ENERGY_TOL: f64 = 1e-7;

fn fixture() -> (DftSystem, TdState) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
    let mut phi = Wavefunction::random(&sys.grid, 3, 23);
    phi.orthonormalize_lowdin();
    let sigma = CMat::from_real_diag(&[1.0, 0.7, 0.4]);
    (sys, TdState { phi, sigma, time: 0.0 })
}

fn hybrid(policy: PrecisionPolicy) -> HybridParams {
    HybridParams {
        alpha: 0.25,
        omega: 0.2,
        fock: FockOptions { precision: policy, ..Default::default() },
    }
}

fn laser() -> LaserPulse {
    LaserPulse { e0: 0.05, omega: 0.15, t_center: 0.15, t_width: 0.1 }
}

/// Runs `steps` RK4 steps and records the dipole after each.
fn run(
    sys: &DftSystem,
    st0: &TdState,
    policy: PrecisionPolicy,
    steps: usize,
) -> (Vec<f64>, f64, TdState, Vec<ptim::StepStats>) {
    let eng = TdEngine::new(sys, laser(), hybrid(policy));
    let cfg = Rk4Config { dt: 0.02 };
    let mut s = st0.clone();
    let mut dipoles = Vec::with_capacity(steps);
    let mut stats_log = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (next, stats) = rk4_step(&eng, &s, &cfg);
        s = next;
        stats_log.push(stats);
        let ev = eng.eval(&s.phi, &s.sigma, s.time);
        dipoles.push(eng.dipole_x(&ev.rho));
    }
    let e = eng.total_energy(&s).total();
    (dipoles, e, s, stats_log)
}

#[test]
fn mixed_run_tracks_fp64_dipole_and_energy() {
    let (sys, st0) = fixture();
    let steps = 20;
    let (d64, e64, s64, log64) = run(&sys, &st0, PrecisionPolicy::fp64(), steps);
    let (dmx, emx, smx, logmx) = run(&sys, &st0, PrecisionPolicy::mixed(), steps);

    // Precision accounting: the fp64 run performed no fp32 solves, the
    // mixed run performed *only* fp32 solves and never promoted.
    for st in &log64 {
        assert_eq!(st.fock_solves_fp32, 0);
        assert!(st.fock_solves_fp64 > 0);
        assert_eq!(st.precision_promotions, 0);
    }
    for st in &logmx {
        assert_eq!(st.fock_solves_fp64, 0, "mixed run fell back to fp64 unexpectedly");
        assert!(st.fock_solves_fp32 > 0);
        assert_eq!(st.precision_promotions, 0, "default threshold must not trip");
    }

    // Dipole trace agreement within the documented tolerance.
    let max_dipole_err = d64
        .iter()
        .zip(&dmx)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    eprintln!(
        "max_dipole_err={max_dipole_err:.3e} dipole_scale={:.3e} energy_err={:.3e}",
        d64.iter().fold(0.0f64, |m, v| m.max(v.abs())),
        (e64 - emx).abs() / e64.abs().max(1.0)
    );
    assert!(
        max_dipole_err < DIPOLE_TOL,
        "dipole trace drift {max_dipole_err:.3e} exceeds {DIPOLE_TOL:.0e}"
    );

    // Energy drift of the mixed run relative to the fp64 run.
    let energy_err = (e64 - emx).abs() / e64.abs().max(1.0);
    assert!(
        energy_err < ENERGY_TOL,
        "energy drift {energy_err:.3e} exceeds {ENERGY_TOL:.0e} ({e64} vs {emx})"
    );

    // The states themselves stay close (fp32-level, amplified mildly by
    // 20 steps of dynamics).
    let state_diff = s64.phi.max_abs_diff(&smx.phi);
    assert!(state_diff < 1e-4, "orbital drift {state_diff}");
}

#[test]
fn drift_monitor_promotes_when_forced() {
    // promote_drift = 0: any nonzero pre-constraint drift under the
    // fp32 policy trips the monitor, so every step must be recomputed
    // at fp64 and report the promotion.
    let (sys, st0) = fixture();
    let forced = PrecisionPolicy { promote_drift: 0.0, ..PrecisionPolicy::mixed() };
    let eng = TdEngine::new(&sys, laser(), hybrid(forced));
    let (next, stats) = rk4_step(&eng, &st0, &Rk4Config { dt: 0.02 });
    assert_eq!(stats.precision_promotions, 1, "monitor must trip at threshold 0");
    // The rerun happened at fp64 (fp64 solves recorded) while the
    // discarded fp32 attempt stays visible in the fp32 count.
    assert!(stats.fock_solves_fp64 > 0, "promoted step must run fp64 solves");
    assert!(stats.fock_solves_fp32 > 0, "discarded fp32 work must stay visible");
    // And the promoted step equals the all-fp64 step exactly.
    let eng64 = TdEngine::new(&sys, laser(), hybrid(PrecisionPolicy::fp64()));
    let (next64, stats64) = rk4_step(&eng64, &st0, &Rk4Config { dt: 0.02 });
    assert_eq!(stats64.precision_promotions, 0);
    assert_eq!(next.phi.max_abs_diff(&next64.phi), 0.0, "promotion must replay fp64 exactly");
}

#[test]
fn promotion_disabled_for_semilocal_runs() {
    // With alpha = 0 there is no exchange to reduce: the guard must not
    // interfere even under an aggressive threshold.
    let (sys, st0) = fixture();
    let policy = PrecisionPolicy { promote_drift: 0.0, ..PrecisionPolicy::mixed() };
    let eng = TdEngine::new(
        &sys,
        LaserPulse::off(),
        HybridParams {
            alpha: 0.0,
            omega: 0.1,
            fock: FockOptions { precision: policy, ..Default::default() },
        },
    );
    let (_, stats) = rk4_step(&eng, &st0, &Rk4Config { dt: 0.02 });
    assert_eq!(stats.precision_promotions, 0);
    assert_eq!(stats.fock_solves_fp32, 0);
    assert_eq!(stats.fock_solves_fp64, 0);
}
