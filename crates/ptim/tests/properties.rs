//! Property-based tests for the PT-IM state dynamics.

use proptest::prelude::*;
use ptim::propagate::{midpoint, pt_update};
use ptim::{HybridParams, LaserPulse, TdEngine, TdState};
use pwdft::{Cell, DftSystem, Wavefunction};
use pwnum::cmat::CMat;
use pwnum::complex::{c64, Complex64};
use pwnum::eigh;

fn system() -> DftSystem {
    DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6])
}

fn make_sigma(n: usize, raw: &[f64]) -> CMat {
    let mut h = CMat::zeros(n, n);
    let mut k = 0;
    for i in 0..n {
        for j in i..n {
            let re = raw[k % raw.len()];
            let im = raw[(k + 1) % raw.len()];
            k += 2;
            if i == j {
                h[(i, j)] = Complex64::from_re(re);
            } else {
                h[(i, j)] = c64(re, im);
                h[(j, i)] = c64(re, -im);
            }
        }
    }
    let e = eigh(&h);
    let d: Vec<f64> = e.values.iter().map(|w| 1.0 / (1.0 + (3.0 * w).exp())).collect();
    let dm = CMat::from_real_diag(&d);
    let vd = e.vectors.matmul(&dm);
    pwnum::gemm::gemm(
        Complex64::ONE,
        &vd,
        pwnum::gemm::Op::None,
        &e.vectors,
        pwnum::gemm::Op::ConjTrans,
        Complex64::ZERO,
        None,
    )
    .hermitian_part()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pt_update_preserves_trace_and_hermiticity(
        raw in proptest::collection::vec(-1.0f64..1.0, 24),
        seed in 0u64..300,
        dt in 0.01f64..1.0,
    ) {
        let sys = system();
        let mut phi = Wavefunction::random(&sys.grid, 3, seed);
        phi.orthonormalize_lowdin();
        let sigma = make_sigma(3, &raw);
        let st = TdState { phi, sigma, time: 0.0 };
        let eng = TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.0, omega: 0.1, ..Default::default() });
        let ev = eng.eval(&st.phi, &st.sigma, 0.0);
        let h = eng.hamiltonian_dense(&ev);
        let (phi_next, sigma_next) = pt_update(&st, &h, &st.phi, &st.sigma, dt);

        // Trace conservation (commutator is traceless) and Hermiticity.
        prop_assert!((sigma_next.trace().re - st.sigma.trace().re).abs() < 1e-9);
        prop_assert!(sigma_next.trace().im.abs() < 1e-10);
        prop_assert!(sigma_next.hermiticity_error() < 1e-9);

        // The parallel-transport constraint: the orbital change is
        // orthogonal to span(Φ).
        let mut diff = Wavefunction::zeros_like(&st.phi);
        pwnum::bands::lincomb(
            Complex64::ONE,
            &phi_next.data,
            Complex64::from_re(-1.0),
            &st.phi.data,
            &mut diff.data,
        );
        let proj = st.phi.overlap(&diff);
        prop_assert!(proj.fro_norm() < 1e-8, "in-span drift {}", proj.fro_norm());
    }

    #[test]
    fn midpoint_is_symmetric_and_affine(
        raw_a in proptest::collection::vec(-1.0f64..1.0, 24),
        raw_b in proptest::collection::vec(-1.0f64..1.0, 24),
        seed in 0u64..300,
    ) {
        let sys = system();
        let phi_a = Wavefunction::random(&sys.grid, 3, seed);
        let phi_b = Wavefunction::random(&sys.grid, 3, seed + 1);
        let a = TdState { phi: phi_a, sigma: make_sigma(3, &raw_a), time: 0.0 };
        let b = TdState { phi: phi_b, sigma: make_sigma(3, &raw_b), time: 0.0 };
        let (pm_ab, sm_ab) = midpoint(&a, &b);
        let (pm_ba, sm_ba) = midpoint(&b, &a);
        prop_assert!(pm_ab.max_abs_diff(&pm_ba) < 1e-14);
        prop_assert!(sm_ab.max_abs_diff(&sm_ba) < 1e-14);
        // σ midpoint trace is the average trace.
        let expect = 0.5 * (a.sigma.trace().re + b.sigma.trace().re);
        prop_assert!((sm_ab.trace().re - expect).abs() < 1e-12);
    }

    #[test]
    fn total_energy_gauge_invariant(
        raw in proptest::collection::vec(-1.0f64..1.0, 24),
        rot in proptest::collection::vec(-1.0f64..1.0, 24),
        seed in 0u64..200,
    ) {
        let sys = system();
        let mut phi = Wavefunction::random(&sys.grid, 3, seed);
        phi.orthonormalize_lowdin();
        let sigma = make_sigma(3, &raw);
        let st = TdState { phi, sigma, time: 0.0 };
        let eng = TdEngine::new(&sys, LaserPulse::off(), HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() });
        let e0 = eng.total_energy(&st).total();

        // Gauge transform: Φ' = ΦU, σ' = U^H σ U.
        let u = eigh(&make_sigma(3, &rot)).vectors;
        let mut st2 = st.clone();
        st2.phi = st.phi.rotated(&u);
        let su = st.sigma.matmul(&u);
        st2.sigma = pwnum::gemm::gemm(
            Complex64::ONE,
            &u,
            pwnum::gemm::Op::ConjTrans,
            &su,
            pwnum::gemm::Op::None,
            Complex64::ZERO,
            None,
        );
        let e1 = eng.total_energy(&st2).total();
        prop_assert!((e0 - e1).abs() < 1e-7, "gauge dependence {e0} vs {e1}");
    }
}
