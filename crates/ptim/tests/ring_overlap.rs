//! Correctness and overlap acceptance for the hierarchical 2-D
//! parallelization subsystem: the `RingOverlap` exchange must match the
//! serial Fock operator to ≤ 1e-10 on both backends, under the fp32
//! precision policy, at non-power-of-two rank counts, on a genuine
//! band×grid 2-D layout — with solve/FFT counters pinned — and hide
//! ≥ 50% of the exchange communication at 16 simulated ranks.

use mpisim::{Cluster, NetworkModel, Topology};
use ptim::distributed::{dist_fock_apply, BandDistribution, ExchangePlan, ExchangeStrategy};
use ptim::grid2d::{ring_overlap_fock_apply, scatter_slab, ProcessGrid};
use pwdft::fock::FockOptions;
use pwdft::{Cell, DftSystem, FockOperator, Wavefunction};
use pwfft::DistFft3;
use pwnum::backend::{by_name, BackendHandle};
use pwnum::cmat::CMat;
use pwnum::complex::c64;
use pwnum::cvec::max_abs_diff;
use pwnum::eigh;
use pwnum::precision::PrecisionPolicy;

const N_BANDS: usize = 6;

struct Fixture {
    sys: DftSystem,
    nat_r: Vec<pwnum::complex::Complex64>,
    psi_r: Vec<pwnum::complex::Complex64>,
    occ: Vec<f64>,
}

fn fixture() -> Fixture {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
    let mut phi = Wavefunction::random(&sys.grid, N_BANDS, 77);
    phi.orthonormalize_lowdin();
    let mut sigma = CMat::from_real_diag(&[1.0, 0.9, 0.7, 0.5, 0.2, 0.1]);
    sigma[(0, 1)] = c64(0.05, 0.02);
    sigma[(1, 0)] = c64(0.05, -0.02);
    let e = eigh(&sigma);
    let nat = phi.rotated(&e.vectors);
    let psi = Wavefunction::random(&sys.grid, N_BANDS, 31);
    Fixture {
        nat_r: nat.to_real_all(&sys.fft),
        psi_r: psi.to_real_all(&sys.fft),
        occ: e.values.clone(),
        sys,
    }
}

fn backends() -> [BackendHandle; 2] {
    [by_name("reference").unwrap(), by_name("blocked").unwrap()]
}

#[test]
fn ring_overlap_matches_serial_asymmetric_on_both_backends() {
    let f = fixture();
    let ng = f.sys.grid.len();
    for be in backends() {
        let fock = FockOperator::with_backend(&f.sys.grid, 0.2, be.clone());
        let serial = fock.apply_diag(&f.nat_r, &f.occ, &f.psi_r);
        // p = 3 is the non-power-of-two count; p = 2 and 4 for coverage.
        for p in [2usize, 3, 4] {
            let out = Cluster::ideal(p).run(|c| {
                let dist = BandDistribution::new(N_BANDS, c.size());
                let my = dist.range(c.rank());
                let fock = FockOperator::with_backend(&f.sys.grid, 0.2, be.clone());
                let nat_local = f.nat_r[my.start * ng..my.end * ng].to_vec();
                let psi_local = f.psi_r[my.start * ng..my.end * ng].to_vec();
                let vx = dist_fock_apply(
                    c,
                    &fock,
                    &dist,
                    &nat_local,
                    &f.occ,
                    &psi_local,
                    ExchangeStrategy::RingOverlap,
                );
                let want = &serial[my.start * ng..my.end * ng];
                max_abs_diff(&vx, want)
            });
            for (rank, (d, _)) in out.iter().enumerate() {
                assert!(*d < 1e-10, "{} p={p} rank={rank}: mismatch {d}", be.name());
            }
        }
    }
}

#[test]
fn ring_overlap_symmetric_halving_matches_apply_pure_with_solve_counts() {
    let f = fixture();
    let ng = f.sys.grid.len();
    let fock = FockOperator::new(&f.sys.grid, 0.2);
    let serial = fock.apply_pure(&f.nat_r, &f.occ);
    for p in [2usize, 3] {
        let out = Cluster::ideal(p).run(|c| {
            let dist = BandDistribution::new(N_BANDS, c.size());
            let my = dist.range(c.rank());
            let fock = FockOperator::new(&f.sys.grid, 0.2);
            let pgrid = ProcessGrid::new(c.size(), c.size());
            let nat_local = f.nat_r[my.start * ng..my.end * ng].to_vec();
            // Targets ARE the sources: the diagonal block must take the
            // Hermitian i ≤ j halving.
            let (vx, report) = ring_overlap_fock_apply(
                c,
                &fock,
                &pgrid,
                &dist,
                None,
                &nat_local,
                &f.occ,
                &nat_local,
                0.0,
            );
            let want = &serial[my.start * ng..my.end * ng];
            (max_abs_diff(&vx, want), report.solves)
        });
        // Expected solves: i ≤ j halving on every diagonal block, full
        // nb_src × nb_tgt on every off-diagonal block (no screening:
        // every occupation is above the cutoff).
        let dist = BandDistribution::new(N_BANDS, p);
        let mut want_solves = 0usize;
        for r in 0..p {
            let nb = dist.count(r);
            want_solves += nb * (nb + 1) / 2; // diagonal block
            for s in 0..p {
                if s != r {
                    want_solves += dist.count(s) * nb; // sources s → targets r
                }
            }
        }
        let got_solves: usize = out.iter().map(|((_, s), _)| *s).sum();
        assert_eq!(got_solves, want_solves, "p={p}: solve count");
        for (rank, ((d, _), _)) in out.iter().enumerate() {
            assert!(*d < 1e-10, "p={p} rank={rank}: symmetric mismatch {d}");
        }
    }
}

#[test]
fn ring_overlap_honors_fp32_precision_policy() {
    let f = fixture();
    let ng = f.sys.grid.len();
    let opts = FockOptions { precision: PrecisionPolicy::mixed(), ..Default::default() };
    for be in backends() {
        let fock = FockOperator::with_options(&f.sys.grid, 0.2, be.clone(), opts);
        // Serial reference under the SAME policy: the distributed path
        // must reproduce the fp32 pipeline, not silently run fp64.
        let serial = fock.apply_diag(&f.nat_r, &f.occ, &f.psi_r);
        for p in [2usize, 3] {
            let out = Cluster::ideal(p).run(|c| {
                let dist = BandDistribution::new(N_BANDS, c.size());
                let my = dist.range(c.rank());
                let fock = FockOperator::with_options(&f.sys.grid, 0.2, be.clone(), opts);
                let pgrid = ProcessGrid::new(c.size(), c.size());
                let nat_local = f.nat_r[my.start * ng..my.end * ng].to_vec();
                let psi_local = f.psi_r[my.start * ng..my.end * ng].to_vec();
                let (vx, report) = ring_overlap_fock_apply(
                    c,
                    &fock,
                    &pgrid,
                    &dist,
                    None,
                    &nat_local,
                    &f.occ,
                    &psi_local,
                    0.0,
                );
                let want = &serial[my.start * ng..my.end * ng];
                (max_abs_diff(&vx, want), report.solves, report.solves_fp32)
            });
            for (rank, ((d, solves, solves32), _)) in out.iter().enumerate() {
                assert!(
                    *d < 1e-10,
                    "{} p={p} rank={rank}: fp32-policy mismatch {d}",
                    be.name()
                );
                assert_eq!(
                    solves, solves32,
                    "{} p={p} rank={rank}: every solve must run fp32",
                    be.name()
                );
                assert_eq!(*solves, N_BANDS * dist_count(N_BANDS, p, rank));
            }
        }
    }
}

fn dist_count(n: usize, p: usize, rank: usize) -> usize {
    BandDistribution::new(n, p).count(rank)
}

#[test]
fn two_d_grid_matches_serial_with_fft_counters() {
    // Genuine band×grid layouts, including a non-power-of-two world
    // size (6 = 3 groups × 2 grid ranks). Pair solves run on the
    // slab-distributed FFT; results must still match the serial
    // operator, and the distributed-FFT line counter must show 2 grid
    // sweeps (forward + inverse) per solve.
    let f = fixture();
    let ng = f.sys.grid.len();
    let (n0, n1, n2) = (6, 6, 6);
    let fock = FockOperator::new(&f.sys.grid, 0.2);
    let serial_asym = fock.apply_diag(&f.nat_r, &f.occ, &f.psi_r);
    let serial_sym = fock.apply_pure(&f.nat_r, &f.occ);
    for (groups, grid_ranks) in [(2usize, 2usize), (3, 2), (2, 3)] {
        let p = groups * grid_ranks;
        for symmetric in [false, true] {
            let serial = if symmetric { &serial_sym } else { &serial_asym };
            let out = Cluster::ideal(p).run(|c| {
                let pgrid = ProcessGrid::new(c.size(), groups);
                let (bg, _) = pgrid.coords(c.rank());
                let dist = BandDistribution::new(N_BANDS, groups);
                let fock = FockOperator::new(&f.sys.grid, 0.2);
                let dfft = DistFft3::new(n0, n1, n2, pgrid.row_members(bg));
                let nat_local =
                    scatter_slab(&f.nat_r, ng, &pgrid, &dist, Some(&dfft), c.rank());
                let psi_local =
                    scatter_slab(&f.psi_r, ng, &pgrid, &dist, Some(&dfft), c.rank());
                let (vx, report) = if symmetric {
                    ring_overlap_fock_apply(
                        c,
                        &fock,
                        &pgrid,
                        &dist,
                        Some(&dfft),
                        &nat_local,
                        &f.occ,
                        &nat_local,
                        0.0,
                    )
                } else {
                    ring_overlap_fock_apply(
                        c,
                        &fock,
                        &pgrid,
                        &dist,
                        Some(&dfft),
                        &nat_local,
                        &f.occ,
                        &psi_local,
                        0.0,
                    )
                };
                // Serial slice for this rank: its group's bands, its slab.
                let want = scatter_slab(serial, ng, &pgrid, &dist, Some(&dfft), c.rank());
                (max_abs_diff(&vx, &want), report.solves, report.dist_fft_lines)
            });
            for (rank, ((d, _, _), _)) in out.iter().enumerate() {
                assert!(
                    *d < 1e-10,
                    "groups={groups} grid={grid_ranks} sym={symmetric} rank={rank}: {d}"
                );
            }
            // FFT-counter assertion: every row performs the same solve
            // sequence, and the row-summed line count per solve is the
            // full 3-D sweep twice (forward + inverse).
            let pgrid = ProcessGrid::new(p, groups);
            for bg in 0..groups {
                let row = pgrid.row_members(bg);
                let row_solves = out[row[0]].0 .1;
                for &r in &row {
                    assert_eq!(out[r].0 .1, row_solves, "row must share the solve count");
                }
                let row_lines: u64 = row.iter().map(|&r| out[r].0 .2).sum();
                // One 3-D sweep, summed over the row: n0·n1 axis-2 lines,
                // n0·n2 axis-1 lines, n1·n2 axis-0 lines.
                let lines_per_sweep = (n0 * n1 + n0 * n2 + n1 * n2) as u64;
                assert_eq!(
                    row_lines,
                    2 * lines_per_sweep * row_solves as u64,
                    "groups={groups} bg={bg}: FFT line count"
                );
            }
        }
    }
}

#[test]
fn ring_overlap_matches_serial_at_64_and_96_ranks() {
    // Paper-scale rank counts on genuine band×grid 2-D layouts: 64
    // ranks (8 groups × 8 grid ranks) and 96 ranks (12 × 8 — a
    // non-power-of-two world size). Packed 4 ranks per node, every
    // row's slab transposes route through the hierarchical group
    // all-to-all (each 8-rank row spans 2 nodes), and the whole run
    // executes under the O(active ranks) event loop — this is the
    // scaling regression for both.
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let n_bands = 16;
    let ng = sys.grid.len();
    let (n0, n1, n2) = (8, 8, 8);
    let phi = Wavefunction::random(&sys.grid, n_bands, 11);
    let nat_r = phi.to_real_all(&sys.fft);
    let psi = Wavefunction::random(&sys.grid, n_bands, 12);
    let psi_r = psi.to_real_all(&sys.fft);
    let occ: Vec<f64> = (0..n_bands).map(|i| 1.0 / (1.0 + 0.2 * i as f64)).collect();
    let fock = FockOperator::new(&sys.grid, 0.2);
    let serial = fock.apply_diag(&nat_r, &occ, &psi_r);
    for (groups, grid_ranks) in [(8usize, 8usize), (12, 8)] {
        let p = groups * grid_ranks;
        let out = Cluster::new(p, 4, NetworkModel::ideal()).run(|c| {
            let pgrid = ProcessGrid::new(c.size(), groups);
            let (bg, _) = pgrid.coords(c.rank());
            let dist = BandDistribution::new(n_bands, groups);
            let fock = FockOperator::new(&sys.grid, 0.2);
            let dfft = DistFft3::new(n0, n1, n2, pgrid.row_members(bg));
            let nat_local = scatter_slab(&nat_r, ng, &pgrid, &dist, Some(&dfft), c.rank());
            let psi_local = scatter_slab(&psi_r, ng, &pgrid, &dist, Some(&dfft), c.rank());
            let (vx, _) = ring_overlap_fock_apply(
                c,
                &fock,
                &pgrid,
                &dist,
                Some(&dfft),
                &nat_local,
                &occ,
                &psi_local,
                0.0,
            );
            let want = scatter_slab(&serial, ng, &pgrid, &dist, Some(&dfft), c.rank());
            max_abs_diff(&vx, &want)
        });
        for (rank, (d, _)) in out.iter().enumerate() {
            assert!(*d < 1e-10, "p={p} ({groups}×{grid_ranks}) rank={rank}: mismatch {d}");
        }
    }
}

#[test]
fn overlap_hides_at_least_half_the_exchange_communication_at_16_ranks() {
    // The acceptance bar: at 16 simulated ranks, with the pair solves
    // charged to the virtual clock, the ring-pipelined exchange must
    // hide ≥ 50% of its communication time (hidden / total wire time,
    // reported per rank by the runtime's overlap metric).
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let n_bands = 32;
    let ng = sys.grid.len();
    let phi = Wavefunction::random(&sys.grid, n_bands, 5);
    let nat_r = phi.to_real_all(&sys.fft);
    let psi = Wavefunction::random(&sys.grid, n_bands, 6);
    let psi_r = psi.to_real_all(&sys.fft);
    let occ: Vec<f64> = (0..n_bands).map(|i| 1.0 / (1.0 + 0.1 * i as f64)).collect();
    let net = NetworkModel {
        topology: Topology::FullyConnected,
        hop_latency: 1e-6,
        sw_overhead: 0.0,
        bandwidth: 1e9,
        shm_bandwidth: 1e9,
        shm_latency: 1e-6,
    };
    let p = 16;
    // Block transfer ≈ 2 bands · 8192 pts · 16 B / 1 GB/s ≈ 262 µs;
    // block compute = 2·2 solves · 100 µs = 400 µs ≥ transfer, so the
    // pipeline can hide (nearly) all of it.
    let solve_cost = 1e-4;
    let out = Cluster::new(p, 4, net).run(|c| {
        let dist = BandDistribution::new(n_bands, c.size());
        let my = dist.range(c.rank());
        let fock = FockOperator::new(&sys.grid, 0.2);
        let nat_local = nat_r[my.start * ng..my.end * ng].to_vec();
        let psi_local = psi_r[my.start * ng..my.end * ng].to_vec();
        let plan = ExchangePlan {
            strategy: ExchangeStrategy::RingOverlap,
            solve_cost_s: solve_cost,
        };
        let _ = dist_fock_apply(c, &fock, &dist, &nat_local, &occ, &psi_local, plan);
        (c.stats.overlap_efficiency(), c.stats.overlap_total_s)
    });
    for (rank, ((eff, total), _)) in out.iter().enumerate() {
        assert!(*total > 0.0, "rank {rank}: no nonblocking transfers recorded");
        assert!(
            *eff >= 0.5,
            "rank {rank}: overlap efficiency {eff:.3} below the 50% acceptance bar"
        );
    }
}

#[test]
fn ring_overlap_populates_wait_not_sendrecv() {
    // Timing-category contract: like AsyncRing, the overlapped ring's
    // visible communication lands in Wait (MPI_Wait), never Sendrecv.
    let f = fixture();
    let ng = f.sys.grid.len();
    let net = NetworkModel {
        topology: Topology::Torus(vec![2, 2]),
        hop_latency: 1e-6,
        sw_overhead: 1e-6,
        bandwidth: 1e9,
        shm_bandwidth: 1e10,
        shm_latency: 1e-7,
    };
    let out = Cluster::new(4, 1, net).run(|c| {
        let dist = BandDistribution::new(N_BANDS, c.size());
        let my = dist.range(c.rank());
        let fock = FockOperator::new(&f.sys.grid, 0.2);
        let nat_local = f.nat_r[my.start * ng..my.end * ng].to_vec();
        let psi_local = f.psi_r[my.start * ng..my.end * ng].to_vec();
        let _ = dist_fock_apply(
            c,
            &fock,
            &dist,
            &nat_local,
            &f.occ,
            &psi_local,
            ExchangeStrategy::RingOverlap,
        );
        (
            c.stats.time(mpisim::Category::Sendrecv),
            c.stats.time(mpisim::Category::Wait),
            c.stats.time(mpisim::Category::Bcast),
        )
    });
    for ((s, w, b), _) in &out {
        assert_eq!(*s, 0.0, "RingOverlap must not use blocking sendrecv");
        assert_eq!(*b, 0.0, "RingOverlap must not broadcast");
        assert!(*w > 0.0, "visible wait time expected on a non-ideal network");
    }
}
