//! Ground-state self-consistent field driver.
//!
//! Two stages, as in the paper's initial-state preparation:
//!
//! 1. [`scf_lda`] — semi-local SCF with blocked-Davidson diagonalization,
//!    Fermi–Dirac smearing at the target temperature (8000 K in the
//!    paper's production runs), and Anderson density mixing.
//! 2. [`scf_hybrid`] — hybrid-functional refinement: an outer ACE loop
//!    (rebuild `W = VxΦ`, compress, inner SCF with the fixed ACE
//!    operator) — the same double-loop structure PT-IM-ACE reuses during
//!    time propagation (Fig. 4b).
//!
//! The result is the `(Φ(0), σ(0))` initial condition for rt-TDDFT, with
//! σ(0) the diagonal Fermi–Dirac occupation matrix.

use crate::ace::AceOperator;
use crate::davidson::davidson;
use crate::density::{density_diag, electron_count};
use crate::energy::{kinetic_energy, EnergyBreakdown};
use crate::fock::{FockOperator, FockOptions};
use crate::hamiltonian::{build_hxc, Exchange, Hamiltonian};
use crate::mixing::AndersonMixerReal;
use crate::smearing::{occupations, KB_HARTREE};
use crate::system::DftSystem;
use crate::wavefunction::Wavefunction;

/// SCF parameters.
#[derive(Clone, Debug)]
pub struct ScfConfig {
    /// Number of bands (use `cell.n_bands(extra_per_atom)`).
    pub n_bands: usize,
    /// Electronic temperature in kelvin (paper: 8000 K).
    pub temperature_k: f64,
    /// Density convergence threshold (max |Δρ| integrated).
    pub tol_rho: f64,
    /// Maximum SCF iterations.
    pub max_scf: usize,
    /// Davidson iterations per SCF cycle.
    pub davidson_iters: usize,
    /// Davidson residual tolerance.
    pub davidson_tol: f64,
    /// Anderson mixing history depth (paper: 20).
    pub mix_depth: usize,
    /// Mixing damping.
    pub mix_beta: f64,
    /// RNG seed for the starting orbitals.
    pub seed: u64,
}

impl Default for ScfConfig {
    fn default() -> Self {
        ScfConfig {
            n_bands: 0,
            temperature_k: 8000.0,
            tol_rho: 1e-6,
            max_scf: 60,
            davidson_iters: 8,
            davidson_tol: 1e-7,
            mix_depth: 20,
            mix_beta: 0.5,
            seed: 12345,
        }
    }
}

/// Hybrid-functional stage parameters.
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// Mixing fraction α (paper: 0.25).
    pub alpha: f64,
    /// Screening ω in bohr⁻¹ (HSE06: 0.106).
    pub omega: f64,
    /// Outer ACE iterations.
    pub outer_iters: usize,
    /// Exchange-energy convergence threshold between outers.
    pub tol_ex: f64,
    /// Fock pair-block scheduler options (screening cutoff, tile size).
    pub fock: FockOptions,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            alpha: 0.25,
            omega: crate::fock::HSE_OMEGA,
            outer_iters: 5,
            tol_ex: 1e-6,
            fock: FockOptions::default(),
        }
    }
}

/// Converged ground state.
pub struct GroundState {
    /// Kohn–Sham orbitals (G-space, orthonormal, ascending energy).
    pub phi: Wavefunction,
    /// Band energies.
    pub eigs: Vec<f64>,
    /// Fermi–Dirac occupations `f_i ∈ [0,1]`.
    pub occ: Vec<f64>,
    /// Chemical potential.
    pub mu: f64,
    /// Converged density.
    pub rho: Vec<f64>,
    /// Energy breakdown.
    pub energies: EnergyBreakdown,
    /// SCF iterations used.
    pub iterations: usize,
    /// Final density residual.
    pub rho_residual: f64,
    /// Total occupation weight dropped by Fock screening across the
    /// hybrid stage's exchange rebuilds
    /// ([`crate::fock::FockApplyStats::skipped_weight`] summed over
    /// outers — the screening error-bound handle; 0 for LDA and at the
    /// default cutoff).
    pub fock_skipped_weight: f64,
}

fn assemble_energies(
    sys: &DftSystem,
    phi: &Wavefunction,
    occ: &[f64],
    rho: &[f64],
    e_hartree: f64,
    e_xc: f64,
    exact_exchange: f64,
) -> EnergyBreakdown {
    EnergyBreakdown {
        kinetic: kinetic_energy(&sys.grid, phi, occ),
        eei: sys.eei_energy(rho),
        hartree: e_hartree,
        xc: e_xc,
        exact_exchange,
        external: 0.0,
        ewald: sys.e_ewald,
    }
}

/// Runs the semi-local (LDA) SCF loop.
pub fn scf_lda(sys: &DftSystem, cfg: &ScfConfig) -> GroundState {
    assert!(cfg.n_bands > 0, "ScfConfig::n_bands must be set");
    let kt = KB_HARTREE * cfg.temperature_k;
    let ne = sys.n_electrons();
    let zeros = vec![0.0; sys.grid.len()];

    let mut rho = sys.uniform_density();
    let mut phi = Wavefunction::random(&sys.grid, cfg.n_bands, cfg.seed);
    let mut mixer = AndersonMixerReal::new(cfg.mix_depth, cfg.mix_beta);
    let mut eigs = vec![0.0; cfg.n_bands];
    let mut occ = vec![0.0; cfg.n_bands];
    let mut mu = 0.0;
    let mut last_hxc = build_hxc(&sys.grid, &sys.fft, &rho);
    let mut residual = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..cfg.max_scf {
        iterations = it + 1;
        let h = Hamiltonian::new(
            &sys.grid,
            &sys.vloc,
            &last_hxc.vhxc,
            &zeros,
            0.0,
            Exchange::None,
            None,
        );
        let r = davidson(&h, &sys.grid, phi, cfg.davidson_iters, cfg.davidson_tol);
        phi = r.phi;
        eigs.copy_from_slice(&r.eigs);
        let (mu_new, occ_new) = occupations(&eigs, ne, kt);
        mu = mu_new;
        occ = occ_new;

        let rho_out = density_diag(&sys.grid, &sys.fft, &phi, &occ);
        // Relative L1 density change: ∫|Δρ| dV / Ne (paper's 1e-6 criterion).
        residual = rho.iter().zip(&rho_out).map(|(a, b)| (a - b).abs()).sum::<f64>()
            * sys.grid.dv()
            / ne;
        if residual < cfg.tol_rho {
            rho = rho_out;
            last_hxc = build_hxc(&sys.grid, &sys.fft, &rho);
            break;
        }
        rho = mixer.step(&rho, &rho_out);
        // Keep the density physical after extrapolation.
        let mut clipped = false;
        for r in rho.iter_mut() {
            if *r < 0.0 {
                *r = 0.0;
                clipped = true;
            }
        }
        if clipped {
            // Renormalize to the correct electron count.
            let n_now = electron_count(&sys.grid, &rho);
            let scale = ne / n_now.max(1e-30);
            for r in rho.iter_mut() {
                *r *= scale;
            }
        }
        last_hxc = build_hxc(&sys.grid, &sys.fft, &rho);
    }

    let energies = assemble_energies(sys, &phi, &occ, &rho, last_hxc.e_hartree, last_hxc.e_xc, 0.0);
    GroundState {
        phi,
        eigs,
        occ,
        mu,
        rho,
        energies,
        iterations,
        rho_residual: residual,
        fock_skipped_weight: 0.0,
    }
}

/// Hybrid-functional refinement with the ACE double loop, starting from a
/// (usually LDA) ground state.
pub fn scf_hybrid(
    sys: &DftSystem,
    cfg: &ScfConfig,
    hyb: &HybridConfig,
    start: GroundState,
) -> GroundState {
    let kt = KB_HARTREE * cfg.temperature_k;
    let ne = sys.n_electrons();
    let zeros = vec![0.0; sys.grid.len()];
    let fock = FockOperator::with_options(
        &sys.grid,
        hyb.omega,
        pwnum::backend::default_backend().clone(),
        hyb.fock,
    );

    let mut gs = start;
    let mut last_ex = 0.0;

    for _outer in 0..hyb.outer_iters {
        // Rebuild the ACE operator on the current orbitals (σ diagonal in
        // the ground state, so the natural orbitals are the orbitals
        // themselves) — pair-symmetric: targets alias sources, so the
        // scheduler solves only i ≤ j pairs.
        let (ace, _w, ex_full, fstats) =
            AceOperator::build_from_fock(&fock, &sys.grid, &sys.fft, &gs.phi, &gs.occ);
        gs.fock_skipped_weight += fstats.skipped_weight;

        // Inner SCF with the fixed ACE operator.
        let mut mixer = AndersonMixerReal::new(cfg.mix_depth, cfg.mix_beta);
        let mut rho = gs.rho.clone();
        let mut hxc = build_hxc(&sys.grid, &sys.fft, &rho);
        for _inner in 0..cfg.max_scf {
            let h = Hamiltonian::new(
                &sys.grid,
                &sys.vloc,
                &hxc.vhxc,
                &zeros,
                hyb.alpha,
                Exchange::Ace(ace.clone()),
                None,
            );
            let r = davidson(&h, &sys.grid, gs.phi.clone(), cfg.davidson_iters, cfg.davidson_tol);
            gs.phi = r.phi;
            gs.eigs.copy_from_slice(&r.eigs);
            let (mu_new, occ_new) = occupations(&gs.eigs, ne, kt);
            gs.mu = mu_new;
            gs.occ = occ_new;
            let rho_out = density_diag(&sys.grid, &sys.fft, &gs.phi, &gs.occ);
            let res = rho.iter().zip(&rho_out).map(|(a, b)| (a - b).abs()).sum::<f64>()
                * sys.grid.dv()
                / ne;
            gs.rho_residual = res;
            if res < cfg.tol_rho {
                rho = rho_out;
                hxc = build_hxc(&sys.grid, &sys.fft, &rho);
                break;
            }
            rho = mixer.step(&rho, &rho_out);
            for r in rho.iter_mut() {
                *r = r.max(0.0);
            }
            hxc = build_hxc(&sys.grid, &sys.fft, &rho);
        }
        gs.rho = rho;
        gs.energies = assemble_energies(
            sys,
            &gs.phi,
            &gs.occ,
            &gs.rho,
            hxc.e_hartree,
            hxc.e_xc,
            hyb.alpha * ex_full,
        );
        if (ex_full - last_ex).abs() < hyb.tol_ex {
            break;
        }
        last_ex = ex_full;
    }
    gs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Cell;

    fn small_system() -> DftSystem {
        // Single Si unit cell at a deliberately low cutoff so the test
        // runs in seconds; physics is qualitative, invariants are exact.
        DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 3.0, [10, 10, 10])
    }

    fn small_cfg(n_bands: usize) -> ScfConfig {
        ScfConfig {
            n_bands,
            temperature_k: 8000.0,
            tol_rho: 1e-5,
            max_scf: 50,
            davidson_iters: 8,
            davidson_tol: 1e-7,
            mix_depth: 10,
            mix_beta: 0.6,
            seed: 7,
        }
    }

    #[test]
    fn lda_scf_converges_and_conserves_charge() {
        let sys = small_system();
        let cfg = small_cfg(20);
        let gs = scf_lda(&sys, &cfg);
        assert!(gs.rho_residual < 1e-4, "residual {}", gs.rho_residual);
        let ne = electron_count(&sys.grid, &gs.rho);
        assert!((ne - 32.0).abs() < 1e-6, "electron count {ne}");
        // Fractional occupations present at 8000 K.
        let frac = gs.occ.iter().filter(|&&f| f > 0.01 && f < 0.99).count();
        assert!(frac >= 2, "expect smearing at 8000 K, got {frac} fractional");
        // Total energy should be negative (bound crystal).
        assert!(gs.energies.total() < 0.0, "E = {}", gs.energies.total());
        // Eigenvalues sorted.
        for w in gs.eigs.windows(2) {
            assert!(w[0] <= w[1] + 1e-10);
        }
    }

    #[test]
    fn hybrid_stage_adds_negative_exchange() {
        let sys = small_system();
        let cfg = small_cfg(20);
        let gs = scf_lda(&sys, &cfg);
        let e_lda = gs.energies.total();
        let hyb = HybridConfig { outer_iters: 2, ..Default::default() };
        let gsh = scf_hybrid(&sys, &cfg, &hyb, gs);
        assert!(gsh.energies.exact_exchange < 0.0);
        // Energy changed by the exchange term's magnitude scale.
        assert!(
            (gsh.energies.total() - e_lda).abs() > 1e-4,
            "hybrid must shift the total energy"
        );
        let ne = electron_count(&sys.grid, &gsh.rho);
        assert!((ne - 32.0).abs() < 1e-6);
    }
}
