//! The (screened) Fock exchange operator — the paper's dominant cost.
//!
//! Three evaluation paths, exactly mirroring the paper:
//!
//! * [`FockOperator::apply_mixed_baseline`] — paper Alg. 2: the triple
//!   loop over (k, i, j) with the FFT *inside* the innermost loop,
//!   i.e. O(N³) FFT pairs. This is the baseline whose cost Fig. 9's "BL"
//!   bar measures.
//! * [`FockOperator::apply_diag`] — after the occupation-matrix
//!   diagonalization (Eq. 13): O(N²) FFT pairs, identical result.
//! * `ace::AceOperator` (separate module) — low-rank compression that
//!   replaces the integrals with GEMMs between rebuilds.
//!
//! The screened interaction is `K(G) = 4π/G² (1 - e^{-G²/4ω²})` (HSE-type
//! short-range kernel) with the finite limit `K(0) = π/ω²` — which also
//! removes the Γ-point divergence.

use crate::gvec::PwGrid;
use pwfft::Fft3;
use pwnum::backend::{default_backend, BackendHandle};
use pwnum::bands;
use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use pwnum::cvec;

/// HSE06 screening parameter (bohr⁻¹).
pub const HSE_OMEGA: f64 = 0.106;

/// Screened-exchange kernel sampled on a grid's G vectors.
#[derive(Clone, Debug)]
pub struct ScreenedKernel {
    /// `K(G)` per grid point.
    pub kg: Vec<f64>,
    /// Screening parameter ω (bohr⁻¹).
    pub omega: f64,
}

impl ScreenedKernel {
    /// Builds the short-range (erfc-type) kernel for `grid`.
    pub fn hse(grid: &PwGrid, omega: f64) -> Self {
        let four_pi = 4.0 * std::f64::consts::PI;
        let kg = grid
            .g2
            .iter()
            .map(|&g2| {
                if g2 < 1e-12 {
                    std::f64::consts::PI / (omega * omega)
                } else {
                    four_pi / g2 * (1.0 - (-g2 / (4.0 * omega * omega)).exp())
                }
            })
            .collect();
        ScreenedKernel { kg, omega }
    }
}

/// The Fock exchange operator bound to a grid + kernel.
///
/// Every FFT, elementwise product and band operation inside goes through
/// the operator's compute [`Backend`](pwnum::backend::Backend) — swap the
/// handle to retarget the paper's dominant cost to another device model.
pub struct FockOperator<'g> {
    grid: &'g PwGrid,
    fft: Fft3,
    kernel: ScreenedKernel,
    backend: BackendHandle,
}

impl<'g> FockOperator<'g> {
    /// Creates the operator with an HSE-type kernel of parameter `omega`
    /// on the process default backend.
    pub fn new(grid: &'g PwGrid, omega: f64) -> Self {
        Self::with_backend(grid, omega, default_backend().clone())
    }

    /// Creates the operator on an explicit compute backend.
    pub fn with_backend(grid: &'g PwGrid, omega: f64, backend: BackendHandle) -> Self {
        FockOperator {
            grid,
            fft: grid.fft(),
            kernel: ScreenedKernel::hse(grid, omega),
            backend,
        }
    }

    /// Grid size.
    #[inline]
    pub fn ng(&self) -> usize {
        self.grid.len()
    }

    /// The operator's compute backend.
    #[inline]
    pub fn backend(&self) -> &BackendHandle {
        &self.backend
    }

    /// Solves the screened Poisson problem for a *batch* of pair
    /// densities in place: `W(r) = Σ_G K(G) f_G e^{iGr}` per grid
    /// (batched forward FFT → fused kernel multiply → batched inverse).
    fn poisson_batch(&self, pairs: &mut [Complex64], count: usize) {
        let be = &*self.backend;
        self.fft.forward_many_with(be, pairs, count);
        be.scale_by_real(&self.kernel.kg, pairs);
        self.fft.inverse_many_with(be, pairs, count);
    }

    /// Paper Alg. 2 — the mixed-state baseline. `phi_r` are the N orbitals
    /// in real space (band-major); `sigma` the occupation matrix. Returns
    /// `Vx Φ` in real space. The (k,i,j) loop structure — with the
    /// Poisson solve recomputed inside the `i` loop — is kept deliberately
    /// to reproduce the baseline's O(N³ Ng log Ng) cost profile.
    pub fn apply_mixed_baseline(&self, phi_r: &[Complex64], sigma: &CMat) -> Vec<Complex64> {
        let ng = self.ng();
        let n = bands::n_bands(phi_r, ng);
        assert_eq!(sigma.rows(), n);
        let be = &*self.backend;
        let mut out = vec![Complex64::ZERO; n * ng];
        // Scratch contents are unspecified: hadamard_conj overwrites the
        // whole pair grid before any read.
        let mut pair = be.take_scratch(ng);
        for k in 0..n {
            let pk = bands::band(phi_r, ng, k);
            for i in 0..n {
                let sik = sigma[(i, k)];
                if sik == Complex64::ZERO {
                    continue;
                }
                let pi = bands::band(phi_r, ng, i);
                for j in 0..n {
                    let pj = bands::band(phi_r, ng, j);
                    be.hadamard_conj(pk, pj, &mut pair);
                    self.poisson_batch(&mut pair, 1);
                    let oj = bands::band_mut(&mut out, ng, j);
                    // Vx φ_j -= σ_ik · W_kj ⊙ φ_i   (Eq. 10 sign).
                    be.hadamard_acc(-sik, &pair, pi, oj);
                }
            }
        }
        be.recycle_buffer(pair);
        out
    }

    /// Diagonalized mixed-state operator (Eq. 13): orbitals `phi_r` must
    /// already be the *natural orbitals* `φ̃ = ΦQ` in real space, with
    /// occupations `d`. Applies Vx to the bands `psi_r` (often the same
    /// block, but PT-IM also applies it to trial vectors). O(N²) FFT
    /// pairs, executed as one batched Poisson solve over all occupied
    /// source bands per target band — the paper's multi-batch strategy
    /// (Sec. III-B b) — with pooled, allocation-free pair buffers.
    pub fn apply_diag(
        &self,
        phi_r: &[Complex64],
        d: &[f64],
        psi_r: &[Complex64],
    ) -> Vec<Complex64> {
        let ng = self.ng();
        let n_src = bands::n_bands(phi_r, ng);
        assert_eq!(d.len(), n_src);
        let n_tgt = bands::n_bands(psi_r, ng);
        let mut out = vec![Complex64::ZERO; n_tgt * ng];
        // Occupied source bands only: empty bands contribute nothing.
        let occ: Vec<usize> = (0..n_src).filter(|&i| d[i].abs() >= 1e-14).collect();
        if occ.is_empty() {
            return out;
        }
        let be = &*self.backend;
        // Scratch contents are unspecified: every pair grid is fully
        // written by hadamard_conj before the Poisson solve reads it.
        let mut pairs = be.take_scratch(occ.len() * ng);
        for j in 0..n_tgt {
            let pj = bands::band(psi_r, ng, j);
            for (s, &i) in occ.iter().enumerate() {
                let pi = bands::band(phi_r, ng, i);
                be.hadamard_conj(pi, pj, bands::band_mut(&mut pairs, ng, s));
            }
            self.poisson_batch(&mut pairs, occ.len());
            let oj = bands::band_mut(&mut out, ng, j);
            for (s, &i) in occ.iter().enumerate() {
                let pi = bands::band(phi_r, ng, i);
                be.hadamard_acc(
                    Complex64::from_re(-d[i]),
                    bands::band(&pairs, ng, s),
                    pi,
                    oj,
                );
            }
        }
        be.recycle_buffer(pairs);
        out
    }

    /// Pure-state operator (Eq. 9): occupations `f` on the orbitals
    /// themselves. Same code path as [`Self::apply_diag`].
    pub fn apply_pure(&self, phi_r: &[Complex64], f: &[f64]) -> Vec<Complex64> {
        self.apply_diag(phi_r, f, phi_r)
    }

    /// One weighted pair contribution — the innermost kernel the
    /// *distributed* Fock evaluation drives directly as source bands
    /// arrive over the network:
    /// `out -= weight · src ⊙ Poisson[conj(src) ⊙ tgt]`.
    /// `pair` is caller-provided scratch of length Ng.
    pub fn accumulate_pair(
        &self,
        src: &[Complex64],
        tgt: &[Complex64],
        weight: f64,
        out: &mut [Complex64],
        pair: &mut [Complex64],
    ) {
        let be = &*self.backend;
        be.hadamard_conj(src, tgt, pair);
        self.poisson_batch(pair, 1);
        be.hadamard_acc(Complex64::from_re(-weight), pair, src, out);
    }

    /// Exchange energy `E_x = Σ_i d_i <φ̃_i|Vx|φ̃_i>` (real, ≤ 0), given
    /// natural orbitals in real space, their occupations, and `VxΦ̃` from
    /// [`Self::apply_diag`]. `dv` is the grid quadrature weight.
    pub fn exchange_energy(
        &self,
        phi_r: &[Complex64],
        d: &[f64],
        vx_phi_r: &[Complex64],
        dv: f64,
    ) -> f64 {
        let ng = self.ng();
        let n = bands::n_bands(phi_r, ng);
        let mut e = 0.0;
        for (i, &di) in d.iter().enumerate().take(n) {
            if di.abs() < 1e-14 {
                continue;
            }
            let pi = bands::band(phi_r, ng, i);
            let wi = bands::band(vx_phi_r, ng, i);
            e += di * cvec::dotc(pi, wi).re;
        }
        e * dv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::natural_orbitals;
    use crate::lattice::Cell;
    use crate::wavefunction::Wavefunction;
    use pwnum::eigh;

    fn setup(n_bands: usize) -> (PwGrid, Fft3, Wavefunction) {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
        let fft = grid.fft();
        let wf = Wavefunction::random(&grid, n_bands, 31);
        (grid, fft, wf)
    }

    fn test_sigma(n: usize, seed: u64) -> CMat {
        let h = pwnum::cmat::random_hermitian(n, {
            let mut s = seed;
            move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }
        });
        let e = eigh(&h);
        let d: Vec<f64> = e.values.iter().map(|&w| 1.0 / (1.0 + (2.0 * w).exp())).collect();
        let dm = CMat::from_real_diag(&d);
        let vd = e.vectors.matmul(&dm);
        pwnum::gemm::gemm(
            Complex64::ONE,
            &vd,
            pwnum::gemm::Op::None,
            &e.vectors,
            pwnum::gemm::Op::ConjTrans,
            Complex64::ZERO,
            None,
        )
        .hermitian_part()
    }

    #[test]
    fn kernel_limits() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
        let k = ScreenedKernel::hse(&grid, 0.106);
        // G=0 finite limit π/ω².
        let expect0 = std::f64::consts::PI / (0.106 * 0.106);
        assert!((k.kg[0] - expect0).abs() < 1e-9);
        // Large G: approaches bare Coulomb 4π/G².
        let (idx, _) = grid
            .g2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let g2 = grid.g2[idx];
        assert!((k.kg[idx] - 4.0 * std::f64::consts::PI / g2).abs() / k.kg[idx] < 1e-3);
        // All positive.
        assert!(k.kg.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn baseline_equals_diagonalized() {
        // The paper's central algebraic claim (Sec. IV-A1): Alg. 2 and the
        // σ-diagonalized form give identical VxΦ.
        let (_, fft, wf) = setup(4);
        let grid_cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&grid_cell, 2.0, [6, 6, 6]);
        let fock = FockOperator::new(&grid, 0.2);
        let sigma = test_sigma(4, 3);

        let phi_r = wf.to_real_all(&fft);
        let vx_base = fock.apply_mixed_baseline(&phi_r, &sigma);

        // Diagonalized path: rotate, apply, rotate back.
        let nat = natural_orbitals(&wf, &sigma);
        let nat_r = nat.phi.to_real_all(&fft);
        // Vx applied to the *original* orbitals ψ_j = Φ_j.
        let vx_diag = fock.apply_diag(&nat_r, &nat.occ, &phi_r);

        let max_diff = pwnum::cvec::max_abs_diff(&vx_base, &vx_diag);
        let scale = vx_base.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        assert!(max_diff < 1e-9 * scale.max(1.0), "diff {max_diff} (scale {scale})");
    }

    #[test]
    fn operator_is_hermitian() {
        // <a|Vx b> == <Vx a|b> for the diagonalized operator.
        let (grid, fft, wf) = setup(3);
        let fock = FockOperator::new(&grid, 0.15);
        let d = vec![1.0, 0.7, 0.2];
        let phi_r = wf.to_real_all(&fft);
        let vx = fock.apply_diag(&phi_r, &d, &phi_r);
        let ng = grid.len();
        for a in 0..3 {
            for b in 0..3 {
                let lhs = cvec::dotc(bands::band(&phi_r, ng, a), bands::band(&vx, ng, b));
                let rhs = cvec::dotc(bands::band(&vx, ng, a), bands::band(&phi_r, ng, b));
                assert!((lhs - rhs).abs() < 1e-9, "Hermiticity ({a},{b})");
            }
        }
    }

    #[test]
    fn exchange_energy_negative() {
        let (grid, fft, wf) = setup(3);
        let fock = FockOperator::new(&grid, 0.106);
        let d = vec![1.0, 1.0, 0.5];
        let phi_r = wf.to_real_all(&fft);
        let vx = fock.apply_diag(&phi_r, &d, &phi_r);
        let ex = fock.exchange_energy(&phi_r, &d, &vx, grid.dv());
        assert!(ex < 0.0, "exchange energy must be negative: {ex}");
    }

    #[test]
    fn zero_occupation_gives_zero_operator() {
        let (grid, fft, wf) = setup(2);
        let fock = FockOperator::new(&grid, 0.106);
        let phi_r = wf.to_real_all(&fft);
        let vx = fock.apply_diag(&phi_r, &[0.0, 0.0], &phi_r);
        assert!(vx.iter().all(|z| z.abs() < 1e-15));
    }

    #[test]
    fn screening_reduces_magnitude() {
        // The kernel K(G) = 4π/G²(1 − e^{−G²/4ω²}) keeps only the
        // short-range part: larger ω truncates more of the interaction,
        // so |Ex| must shrink as ω grows (ω → 0 recovers bare Coulomb).
        let (grid, fft, wf) = setup(2);
        let d = vec![1.0, 1.0];
        let phi_r = wf.to_real_all(&fft);
        let long_range = FockOperator::new(&grid, 0.05);
        let short_range = FockOperator::new(&grid, 0.5);
        let vl = long_range.apply_diag(&phi_r, &d, &phi_r);
        let vs = short_range.apply_diag(&phi_r, &d, &phi_r);
        let el = long_range.exchange_energy(&phi_r, &d, &vl, grid.dv());
        let es = short_range.exchange_energy(&phi_r, &d, &vs, grid.dv());
        assert!(es.abs() < el.abs(), "short-range |Ex| {es} should be < {el}");
    }
}
