//! The (screened) Fock exchange operator — the paper's dominant cost.
//!
//! Three evaluation paths, exactly mirroring the paper:
//!
//! * [`FockOperator::apply_mixed_baseline`] — paper Alg. 2: the triple
//!   loop over (k, i, j) with the FFT *inside* the innermost loop,
//!   i.e. O(N³) FFT pairs. This is the baseline whose cost Fig. 9's "BL"
//!   bar measures.
//! * [`FockOperator::apply_diag`] — after the occupation-matrix
//!   diagonalization (Eq. 13): O(N²) FFT pairs, identical result. When
//!   the target block *is* the source block (ACE rebuilds,
//!   [`FockOperator::apply_pure`], [`FockOperator::apply_mixed_diag`]),
//!   the pair densities are Hermitian (`f_ji = conj(f_ij)`) and the real
//!   kernel gives `W_ji = conj(W_ij)`, so a **pair-block scheduler**
//!   solves only `i ≤ j` pairs and scatters each solution into both
//!   target bands — half the FFT volume.
//! * `ace::AceOperator` (separate module) — low-rank compression that
//!   replaces the integrals with GEMMs between rebuilds.
//!
//! The screened interaction is `K(G) = 4π/G² (1 - e^{-G²/4ω²})` (HSE-type
//! short-range kernel) with the finite limit `K(0) = π/ω²` — which also
//! removes the Γ-point divergence.
//!
//! Finite temperature adds a second lever: Fermi–Dirac weights decay
//! exponentially above μ, so high-lying bands carry negligible
//! occupation. [`FockOptions::occ_cutoff`] screens contributions whose
//! driving weight falls below the threshold, and
//! [`FockApplyStats::skipped_weight`] reports the total dropped weight so
//! callers can bound the error (see DESIGN.md §"Exchange").

use crate::gvec::PwGrid;
use pwfft::{Fft3, Fft32};
use pwnum::backend::{default_backend, BackendHandle, PairTask};
use pwnum::bands;
use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use pwnum::cvec;
use pwnum::precision::{self, Complex32, PrecisionPolicy};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// HSE06 screening parameter (bohr⁻¹).
pub const HSE_OMEGA: f64 = 0.106;

/// Default occupation cutoff: contributions whose Fermi–Dirac weight
/// falls below this are dropped. Shared by the SCF and TD paths (also
/// re-exported as [`crate::smearing::DEFAULT_OCC_CUTOFF`]); at this
/// threshold only numerically-zero occupations are screened, so results
/// are unchanged to machine precision.
pub const DEFAULT_OCC_CUTOFF: f64 = 1e-14;

/// Tunable knobs of the Fock pair-block scheduler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FockOptions {
    /// Occupation screening threshold: a pair contribution driven by
    /// weight `d` is dropped when `|d| < occ_cutoff`, and a pair solve is
    /// skipped entirely when both of its contributions are dropped. The
    /// resulting error is bounded by the reported
    /// [`FockApplyStats::skipped_weight`] (times `max_G K(G)·‖φ‖²_∞`).
    pub occ_cutoff: f64,
    /// Pairs per scheduler tile: one batched Poisson solve handles up to
    /// this many pair densities, and scratch is bounded by
    /// `tile_bands · Ng` instead of `n_occ · Ng`.
    pub tile_bands: usize,
    /// Per-stage precision policy: with a reduced `exchange` stage the
    /// pair densities, Poisson FFT round trips and kernel multiplies run
    /// in fp32, and the solved `W_ij` are accumulated into the fp64
    /// targets (two-sum compensated under
    /// [`StagePrecision::Fp32Promoted`](pwnum::precision::StagePrecision)).
    /// Default: all-fp64 — bit-identical to the pre-subsystem behavior.
    /// Only the *batched* schedulers honor the reduced stages; the
    /// per-pair distributed entry points ([`FockOperator::accumulate_pair`],
    /// [`FockOperator::accumulate_pair_sym`]) always run fp64.
    pub precision: PrecisionPolicy,
    /// Take the fused pair-solve pipeline (default): each pair density
    /// runs demote → forward FFT → K(G) multiply → inverse FFT →
    /// promote-scatter in one pass over two pooled grids
    /// ([`Backend::fused_pair_solve`](pwnum::backend::Backend::fused_pair_solve)),
    /// instead of staging `tile_bands` pair grids through a tile arena
    /// between the density, solve and scatter loops. Bitwise identical
    /// to the staged scheduler (the backends' fused convolve is exact);
    /// `false` restores the staged tile pipeline (the distributed
    /// engines still use it for overlap batching).
    pub fused: bool,
    /// Construction guard: [`FockOptions`] should be built from
    /// [`FockOptions::default`] (struct update or the `with_*` builders)
    /// so `tile_bands` resolves through the autotuning table
    /// ([`pwnum::tuning`]). Naming this field — the only way to write a
    /// full literal — warns.
    #[deprecated(
        note = "use FockOptions::default() + struct update / with_* builders \
                so tile_bands resolves through the pwnum tuning table"
    )]
    pub _bypass_tuning: (),
}

impl Default for FockOptions {
    #[allow(deprecated)]
    fn default() -> Self {
        FockOptions {
            occ_cutoff: DEFAULT_OCC_CUTOFF,
            tile_bands: pwnum::tuning::default_tile_bands(),
            precision: PrecisionPolicy::fp64(),
            fused: true,
            _bypass_tuning: (),
        }
    }
}

impl FockOptions {
    /// Default options with an explicit occupation cutoff.
    pub fn with_occ_cutoff(self, occ_cutoff: f64) -> Self {
        FockOptions { occ_cutoff, ..self }
    }

    /// Overrides the (tuning-table-resolved) scheduler tile size.
    pub fn with_tile_bands(self, tile_bands: usize) -> Self {
        FockOptions { tile_bands, ..self }
    }

    /// Sets the per-stage precision policy.
    pub fn with_precision(self, precision: PrecisionPolicy) -> Self {
        FockOptions { precision, ..self }
    }

    /// Enables/disables the fused pair-solve pipeline.
    pub fn with_fused(self, fused: bool) -> Self {
        FockOptions { fused, ..self }
    }
}

/// What one exchange application actually did — FFT volume and screening
/// effect, for perf accounting and error control.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FockApplyStats {
    /// Screened Poisson solves performed (pair grids transformed; each
    /// costs one forward + one inverse 3-D FFT).
    pub solves: usize,
    /// Weighted scatter contributions accumulated into target bands.
    pub contributions: usize,
    /// Pair solves dropped by occupation screening.
    pub skipped_pairs: usize,
    /// Total `Σ |d|` over all screened-out contributions — the error
    /// bound handle.
    pub skipped_weight: f64,
    /// Whether the Hermitian pair-symmetric path was taken.
    pub symmetric: bool,
    /// Poisson solves performed in fp32 (subset of
    /// [`FockApplyStats::solves`]) — the per-apply precision count of
    /// the mixed pipeline; 0 under the all-fp64 policy.
    pub solves_fp32: usize,
}

/// Process-shared precision counters: total screened-Poisson solves by
/// precision, accumulated atomically by every [`FockOperator`] handed
/// the same `Arc`. The propagators snapshot these around a step to
/// surface per-step fp64/fp32 solve counts in their `StepStats`.
#[derive(Debug, Default)]
pub struct SolveCounters {
    fp64: AtomicUsize,
    fp32: AtomicUsize,
}

impl SolveCounters {
    /// Current `(fp64, fp32)` solve totals.
    pub fn snapshot(&self) -> (usize, usize) {
        (self.fp64.load(Ordering::Relaxed), self.fp32.load(Ordering::Relaxed))
    }

    /// `(fp64, fp32)` solves since a previous [`Self::snapshot`].
    pub fn since(&self, snap: (usize, usize)) -> (usize, usize) {
        let (f64s, f32s) = self.snapshot();
        (f64s - snap.0, f32s - snap.1)
    }

    fn add_fp64(&self, n: usize) {
        self.fp64.fetch_add(n, Ordering::Relaxed);
    }

    fn add_fp32(&self, n: usize) {
        self.fp32.fetch_add(n, Ordering::Relaxed);
    }
}

/// Screened-exchange kernel sampled on a grid's G vectors.
#[derive(Clone, Debug)]
pub struct ScreenedKernel {
    /// `K(G)` per grid point (shared with the grid's kernel cache).
    pub kg: Arc<Vec<f64>>,
    /// Screening parameter ω (bohr⁻¹).
    pub omega: f64,
}

/// The [`PwGrid::cached_kernel`] family tag of the HSE short-range
/// kernel (any distinct constant per kernel formula).
const HSE_KERNEL_FAMILY: u64 = 0x0048_5345_6b65_726e; // "HSEkern"

impl ScreenedKernel {
    /// Builds the short-range (erfc-type) kernel for `grid`, memoized per
    /// `(grid, ω)` in the grid's kernel cache so hot loops that construct
    /// a [`FockOperator`] per step stop re-evaluating `exp` over Ng.
    pub fn hse(grid: &PwGrid, omega: f64) -> Self {
        let kg = grid.cached_kernel(HSE_KERNEL_FAMILY, omega.to_bits(), |g| {
            let four_pi = 4.0 * std::f64::consts::PI;
            g.g2.iter()
                .map(|&g2| {
                    if g2 < 1e-12 {
                        std::f64::consts::PI / (omega * omega)
                    } else {
                        four_pi / g2 * (1.0 - (-g2 / (4.0 * omega * omega)).exp())
                    }
                })
                .collect()
        });
        ScreenedKernel { kg, omega }
    }
}

/// The Fock exchange operator bound to a grid + kernel.
///
/// Every FFT, elementwise product and band operation inside goes through
/// the operator's compute [`Backend`](pwnum::backend::Backend) — swap the
/// handle to retarget the paper's dominant cost to another device model.
pub struct FockOperator<'g> {
    grid: &'g PwGrid,
    fft: Fft3,
    kernel: ScreenedKernel,
    backend: BackendHandle,
    opts: FockOptions,
    /// fp32 solve machinery (plans + demoted kernel), built once when
    /// the policy's exchange stage is reduced.
    fp32: Option<Fp32Kit>,
    /// Shared precision counters (see [`SolveCounters`]).
    counters: Arc<SolveCounters>,
}

/// The fp32 half of the operator: single-precision FFT plans for the
/// grid and the demoted `K(G)` table.
struct Fp32Kit {
    fft: Fft32,
    kg: Vec<f32>,
}

impl<'g> FockOperator<'g> {
    /// Creates the operator with an HSE-type kernel of parameter `omega`
    /// on the process default backend and default [`FockOptions`].
    pub fn new(grid: &'g PwGrid, omega: f64) -> Self {
        Self::with_backend(grid, omega, default_backend().clone())
    }

    /// Creates the operator on an explicit compute backend with default
    /// [`FockOptions`].
    pub fn with_backend(grid: &'g PwGrid, omega: f64, backend: BackendHandle) -> Self {
        Self::with_options(grid, omega, backend, FockOptions::default())
    }

    /// Creates the operator with explicit backend and scheduler options.
    pub fn with_options(
        grid: &'g PwGrid,
        omega: f64,
        backend: BackendHandle,
        opts: FockOptions,
    ) -> Self {
        assert!(opts.tile_bands > 0, "FockOptions::tile_bands must be positive");
        opts.precision.validate();
        let fft = grid.fft();
        let kernel = ScreenedKernel::hse(grid, omega);
        // The fp32 FFT machinery exists only when the policy's fft stage
        // is reduced too; a reduced exchange stage with an Fp64 fft stage
        // promotes each pair tile for the round trip instead
        // (error-attribution mode, see `PrecisionPolicy`).
        let fp32 = (opts.precision.exchange.reduced() && opts.precision.fft.reduced())
            .then(|| {
                let (n0, n1, n2) = fft.dims();
                Fp32Kit { fft: Fft32::new(n0, n1, n2), kg: precision::demote_real(&kernel.kg) }
            });
        FockOperator {
            grid,
            fft,
            kernel,
            backend,
            opts,
            fp32,
            counters: Arc::new(SolveCounters::default()),
        }
    }

    /// Routes this operator's solve counts into a shared counter set
    /// (builder style) — the engines pass one `Arc` to every operator
    /// they construct so per-step precision counts can be snapshotted.
    pub fn with_counters(mut self, counters: Arc<SolveCounters>) -> Self {
        self.counters = counters;
        self
    }

    /// The operator's precision counters.
    #[inline]
    pub fn counters(&self) -> &Arc<SolveCounters> {
        &self.counters
    }

    /// Grid size.
    #[inline]
    pub fn ng(&self) -> usize {
        self.grid.len()
    }

    /// The operator's compute backend.
    #[inline]
    pub fn backend(&self) -> &BackendHandle {
        &self.backend
    }

    /// The scheduler options the operator was built with.
    #[inline]
    pub fn options(&self) -> &FockOptions {
        &self.opts
    }

    /// The screened kernel table `K(G)` per grid point — the full-grid
    /// array a grid-decomposed (slab) Poisson solve slices its owned
    /// planes out of.
    #[inline]
    pub fn kernel_table(&self) -> &[f64] {
        &self.kernel.kg
    }

    /// Grid dimensions `(n0, n1, n2)` of the operator's FFT mesh.
    #[inline]
    pub fn grid_dims(&self) -> (usize, usize, usize) {
        self.fft.dims()
    }

    /// Solves the screened Poisson problem for a *batch* of pair
    /// densities in place: `W(r) = Σ_G K(G) f_G e^{iGr}` per grid
    /// (batched forward FFT → fused kernel multiply → batched inverse,
    /// one filtered round trip over the tile arena).
    fn poisson_batch(&self, pairs: &mut [Complex64], count: usize) {
        self.fft.convolve_many_with(&*self.backend, pairs, count, &self.kernel.kg);
        self.counters.add_fp64(count);
    }

    /// The fp32 twin of [`Self::poisson_batch`], driven by the
    /// mixed-precision pair-tile scheduler.
    fn poisson_batch32(&self, kit: &Fp32Kit, pairs: &mut [Complex32], count: usize) {
        kit.fft.convolve_many_with(&*self.backend, pairs, count, &kit.kg);
        self.counters.add_fp32(count);
    }

    /// Solves one fp32 pair tile at the policy's `fft` stage precision:
    /// fp32 plans when the kit exists, otherwise promoted fp64 round
    /// trips on the demoted tile (the error-attribution half-path).
    /// Returns how many of the solves ran in fp32.
    fn poisson_tile32(&self, pairs: &mut [Complex32], count: usize) -> usize {
        match &self.fp32 {
            Some(kit) => {
                self.poisson_batch32(kit, pairs, count);
                count
            }
            None => {
                let mut tmp = precision::promote(pairs);
                self.poisson_batch(&mut tmp, count);
                precision::demote_into(&tmp, pairs);
                0
            }
        }
    }

    /// Paper Alg. 2 — the mixed-state baseline. `phi_r` are the N orbitals
    /// in real space (band-major); `sigma` the occupation matrix. Returns
    /// `Vx Φ` in real space. The (k,i,j) loop structure — with the
    /// Poisson solve recomputed inside the `i` loop — is kept deliberately
    /// to reproduce the baseline's O(N³ Ng log Ng) cost profile.
    pub fn apply_mixed_baseline(&self, phi_r: &[Complex64], sigma: &CMat) -> Vec<Complex64> {
        let _s = pwobs::span("xch.apply_baseline");
        let ng = self.ng();
        let n = bands::n_bands(phi_r, ng);
        assert_eq!(sigma.rows(), n);
        let be = &*self.backend;
        let mut out = vec![Complex64::ZERO; n * ng];
        // Scratch contents are unspecified: hadamard_conj overwrites the
        // whole pair grid before any read.
        let mut pair = be.take_scratch(ng);
        for k in 0..n {
            let pk = bands::band(phi_r, ng, k);
            for i in 0..n {
                let sik = sigma[(i, k)];
                if sik == Complex64::ZERO {
                    continue;
                }
                let pi = bands::band(phi_r, ng, i);
                for j in 0..n {
                    let pj = bands::band(phi_r, ng, j);
                    be.hadamard_conj(pk, pj, &mut pair);
                    self.poisson_batch(&mut pair, 1);
                    let oj = bands::band_mut(&mut out, ng, j);
                    // Vx φ_j -= σ_ik · W_kj ⊙ φ_i   (Eq. 10 sign).
                    be.hadamard_acc(-sik, &pair, pi, oj);
                }
            }
        }
        be.recycle_buffer(pair);
        out
    }

    /// Diagonalized mixed-state operator (Eq. 13): orbitals `phi_r` must
    /// already be the *natural orbitals* `φ̃ = ΦQ` in real space, with
    /// occupations `d`. Applies Vx to the bands `psi_r` (often the same
    /// block, but PT-IM also applies it to trial vectors).
    ///
    /// When `psi_r` *aliases* `phi_r` (ACE rebuilds, [`Self::apply_pure`],
    /// [`Self::apply_mixed_diag`]) the Hermitian pair-symmetric scheduler
    /// runs — `i ≤ j` pairs only, ~half the Poisson solves; otherwise the
    /// asymmetric per-target batch path. Both are screened by
    /// [`FockOptions::occ_cutoff`]. Under the default
    /// [`FockOptions::fused`] each surviving pair runs density → Poisson
    /// round trip → scatter in one fused pass over two pooled grids
    /// ([`pwnum::backend::Backend::fused_pair_solve`]); with fusion off
    /// they are tiled to [`FockOptions::tile_bands`] pairs per batched
    /// solve through one pooled tile arena. The two pipelines are
    /// bitwise identical.
    pub fn apply_diag(
        &self,
        phi_r: &[Complex64],
        d: &[f64],
        psi_r: &[Complex64],
    ) -> Vec<Complex64> {
        self.apply_diag_stats(phi_r, d, psi_r).0
    }

    /// [`Self::apply_diag`] also returning the scheduler's
    /// [`FockApplyStats`] (solve count, screening effect).
    pub fn apply_diag_stats(
        &self,
        phi_r: &[Complex64],
        d: &[f64],
        psi_r: &[Complex64],
    ) -> (Vec<Complex64>, FockApplyStats) {
        let _s = pwobs::span("xch.apply");
        let symmetric =
            phi_r.as_ptr() == psi_r.as_ptr() && phi_r.len() == psi_r.len();
        if symmetric {
            self.apply_pair_symmetric(phi_r, d)
        } else {
            self.apply_asymmetric(phi_r, d, psi_r)
        }
    }

    /// The Hermitian pair-symmetric scheduler (targets = sources): with a
    /// real kernel, `W_ji = conj(W_ij)`, so each `i ≤ j` pair is solved
    /// once and scattered into both accumulators —
    /// `out_j += -d_i·W_ij⊙φ_i` and, for `i ≠ j`,
    /// `out_i += -d_j·conj(W_ij)⊙φ_j`. Contributions are screened per
    /// driving weight; a pair whose both sides are screened is never
    /// solved.
    fn apply_pair_symmetric(
        &self,
        phi_r: &[Complex64],
        d: &[f64],
    ) -> (Vec<Complex64>, FockApplyStats) {
        let ng = self.ng();
        let n = bands::n_bands(phi_r, ng);
        assert_eq!(d.len(), n);
        let mut out = vec![Complex64::ZERO; n * ng];
        let mut stats = FockApplyStats { symmetric: true, ..Default::default() };
        let cutoff = self.opts.occ_cutoff;
        // Enumerate surviving pairs. Lexicographic (i, j) order means
        // every target still accumulates its sources in ascending band
        // order, matching the asymmetric path's summation order.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(n * (n + 1) / 2);
        for i in 0..n {
            let fwd = d[i].abs() >= cutoff; // drives out_j
            for j in i..n {
                let rev = i != j && d[j].abs() >= cutoff; // drives out_i
                if fwd || rev {
                    pairs.push((i as u32, j as u32));
                    if !fwd {
                        stats.skipped_weight += d[i].abs();
                    }
                    if i != j && !rev {
                        stats.skipped_weight += d[j].abs();
                    }
                } else {
                    stats.skipped_pairs += 1;
                    stats.skipped_weight +=
                        d[i].abs() + if i != j { d[j].abs() } else { 0.0 };
                }
            }
        }
        if pairs.is_empty() {
            return (out, stats);
        }
        let be = &*self.backend;
        let tile = self.opts.tile_bands.min(pairs.len());
        if self.opts.precision.exchange.reduced() {
            // Mixed-precision path: demote the orbital block once, form
            // pair densities and solve the screened Poisson round trips
            // at the fft stage's precision, and accumulate each solved
            // W_ij into the fp64 targets (two-sum compensated under
            // Fp32Promoted).
            let phi32 = precision::demote(phi_r);
            if self.opts.fused {
                if let Some(kit) = &self.fp32 {
                    // Fused fp32 pipeline: one pooled pair grid + one
                    // pooled scratch arena for every pair — no demoted
                    // tile buffer between the density, solve and
                    // promote-scatter stages.
                    let mut tasks = Vec::with_capacity(pairs.len());
                    for &(i, j) in &pairs {
                        let (i, j) = (i as usize, j as usize);
                        let fwd = d[i].abs() >= cutoff;
                        let rev = i != j && d[j].abs() >= cutoff;
                        stats.contributions += usize::from(fwd) + usize::from(rev);
                        tasks.push(PairTask {
                            i,
                            j,
                            w_fwd: if fwd { -d[i] } else { 0.0 },
                            w_rev: if rev { -d[j] } else { 0.0 },
                        });
                    }
                    stats.solves += tasks.len();
                    stats.solves_fp32 += tasks.len();
                    let mut comp: Option<Vec<Complex64>> = self
                        .opts
                        .precision
                        .exchange
                        .compensated()
                        .then(|| be.take_buffer(n * ng));
                    be.fused_pair_solve32(
                        &kit.fft.convolve_pass(&kit.kg, be),
                        phi32.as_slice(),
                        phi32.as_slice(),
                        ng,
                        &tasks,
                        &mut out,
                        comp.as_deref_mut(),
                    );
                    self.counters.add_fp32(tasks.len());
                    if let Some(c) = comp {
                        be.recycle_buffer(c);
                    }
                    return (out, stats);
                }
                // No fp32 FFT kit (fp64 fft stage): the promoted
                // half-path keeps the staged tile pipeline, which
                // amortizes the per-tile promote/demote round trip.
            }
            // Pooled zeroed buffer: the compensation array is output-
            // sized and would otherwise be a fresh allocation per apply.
            let mut comp: Option<Vec<Complex64>> = self
                .opts
                .precision
                .exchange
                .compensated()
                .then(|| be.take_buffer(n * ng));
            let mut arena = be.take_scratch32(tile * ng);
            for chunk in pairs.chunks(tile) {
                let m = chunk.len();
                for (s, &(i, j)) in chunk.iter().enumerate() {
                    be.hadamard_conj32(
                        &phi32[i as usize * ng..(i as usize + 1) * ng],
                        &phi32[j as usize * ng..(j as usize + 1) * ng],
                        &mut arena[s * ng..(s + 1) * ng],
                    );
                }
                stats.solves_fp32 += self.poisson_tile32(&mut arena[..m * ng], m);
                stats.solves += m;
                for (s, &(i, j)) in chunk.iter().enumerate() {
                    let (i, j) = (i as usize, j as usize);
                    let pair = &arena[s * ng..(s + 1) * ng];
                    if d[i].abs() >= cutoff {
                        be.hadamard_acc_promote(
                            -d[i],
                            pair,
                            &phi32[i * ng..(i + 1) * ng],
                            &mut out[j * ng..(j + 1) * ng],
                            comp.as_mut().map(|c| &mut c[j * ng..(j + 1) * ng]),
                        );
                        stats.contributions += 1;
                    }
                    if i != j && d[j].abs() >= cutoff {
                        be.hadamard_acc_promote_conj(
                            -d[j],
                            pair,
                            &phi32[j * ng..(j + 1) * ng],
                            &mut out[i * ng..(i + 1) * ng],
                            comp.as_mut().map(|c| &mut c[i * ng..(i + 1) * ng]),
                        );
                        stats.contributions += 1;
                    }
                }
            }
            be.recycle_buffer32(arena);
            if let Some(c) = comp {
                be.recycle_buffer(c);
            }
            return (out, stats);
        }
        if self.opts.fused {
            // Fused fp64 pipeline: per pair, density → Poisson round
            // trip → both scatters over one pooled grid, instead of
            // staging `tile` pair grids through the arena. Bitwise
            // identical to the staged loop below (same elementwise
            // kernels in the same order; the backends' fused convolve
            // is exact against the staged round trip).
            let mut tasks = Vec::with_capacity(pairs.len());
            for &(i, j) in &pairs {
                let (i, j) = (i as usize, j as usize);
                let fwd = d[i].abs() >= cutoff;
                let rev = i != j && d[j].abs() >= cutoff;
                stats.contributions += usize::from(fwd) + usize::from(rev);
                tasks.push(PairTask {
                    i,
                    j,
                    w_fwd: if fwd { -d[i] } else { 0.0 },
                    w_rev: if rev { -d[j] } else { 0.0 },
                });
            }
            stats.solves += tasks.len();
            be.fused_pair_solve(
                &self.fft.convolve_pass(&self.kernel.kg, be),
                phi_r,
                phi_r,
                ng,
                &tasks,
                &mut out,
            );
            self.counters.add_fp64(tasks.len());
            return (out, stats);
        }
        // One pooled tile arena for the whole apply (contents
        // unspecified: hadamard_conj fully writes each pair grid before
        // the solve reads it).
        let mut arena = be.take_scratch(tile * ng);
        for chunk in pairs.chunks(tile) {
            let m = chunk.len();
            for (s, &(i, j)) in chunk.iter().enumerate() {
                be.hadamard_conj(
                    bands::band(phi_r, ng, i as usize),
                    bands::band(phi_r, ng, j as usize),
                    bands::band_mut(&mut arena, ng, s),
                );
            }
            self.poisson_batch(&mut arena[..m * ng], m);
            stats.solves += m;
            for (s, &(i, j)) in chunk.iter().enumerate() {
                let (i, j) = (i as usize, j as usize);
                if d[i].abs() >= cutoff {
                    be.hadamard_acc(
                        Complex64::from_re(-d[i]),
                        bands::band(&arena, ng, s),
                        bands::band(phi_r, ng, i),
                        bands::band_mut(&mut out, ng, j),
                    );
                    stats.contributions += 1;
                }
                if i != j && d[j].abs() >= cutoff {
                    be.hadamard_acc_conj(
                        Complex64::from_re(-d[j]),
                        bands::band(&arena, ng, s),
                        bands::band(phi_r, ng, j),
                        bands::band_mut(&mut out, ng, i),
                    );
                    stats.contributions += 1;
                }
            }
        }
        be.recycle_buffer(arena);
        (out, stats)
    }

    /// The asymmetric path (distinct target block): one batched Poisson
    /// solve per target band over the occupied sources — the paper's
    /// multi-batch strategy (Sec. III-B b) — tiled so scratch is bounded
    /// by the tile size instead of `n_occ · Ng`.
    fn apply_asymmetric(
        &self,
        phi_r: &[Complex64],
        d: &[f64],
        psi_r: &[Complex64],
    ) -> (Vec<Complex64>, FockApplyStats) {
        let ng = self.ng();
        let n_src = bands::n_bands(phi_r, ng);
        assert_eq!(d.len(), n_src);
        let n_tgt = bands::n_bands(psi_r, ng);
        let mut out = vec![Complex64::ZERO; n_tgt * ng];
        let mut stats = FockApplyStats::default();
        let cutoff = self.opts.occ_cutoff;
        // Occupied source bands only: screened bands are dropped for
        // every target, and their weight reported once per contribution.
        let occ: Vec<usize> = (0..n_src).filter(|&i| d[i].abs() >= cutoff).collect();
        let screened: f64 =
            (0..n_src).filter(|&i| d[i].abs() < cutoff).map(|i| d[i].abs()).sum();
        stats.skipped_pairs = (n_src - occ.len()) * n_tgt;
        stats.skipped_weight = screened * n_tgt as f64;
        if occ.is_empty() || n_tgt == 0 {
            return (out, stats);
        }
        let be = &*self.backend;
        let tile = self.opts.tile_bands.min(occ.len());
        if self.opts.precision.exchange.reduced() {
            // Mixed-precision path: demote sources and targets once,
            // solve per-target batches at the fft stage's precision,
            // accumulate into fp64.
            let phi32 = precision::demote(phi_r);
            let psi32 = precision::demote(psi_r);
            if self.opts.fused {
                if let Some(kit) = &self.fp32 {
                    // Fused fp32 pipeline, forward scatters only.
                    let mut tasks = Vec::with_capacity(occ.len() * n_tgt);
                    for j in 0..n_tgt {
                        for &i in &occ {
                            tasks.push(PairTask { i, j, w_fwd: -d[i], w_rev: 0.0 });
                        }
                    }
                    stats.solves += tasks.len();
                    stats.solves_fp32 += tasks.len();
                    stats.contributions += tasks.len();
                    let mut comp: Option<Vec<Complex64>> = self
                        .opts
                        .precision
                        .exchange
                        .compensated()
                        .then(|| be.take_buffer(n_tgt * ng));
                    be.fused_pair_solve32(
                        &kit.fft.convolve_pass(&kit.kg, be),
                        phi32.as_slice(),
                        psi32.as_slice(),
                        ng,
                        &tasks,
                        &mut out,
                        comp.as_deref_mut(),
                    );
                    self.counters.add_fp32(tasks.len());
                    if let Some(c) = comp {
                        be.recycle_buffer(c);
                    }
                    return (out, stats);
                }
                // fp64 fft stage: keep the staged promoted half-path.
            }
            let mut comp: Option<Vec<Complex64>> = self
                .opts
                .precision
                .exchange
                .compensated()
                .then(|| be.take_buffer(n_tgt * ng));
            let mut arena = be.take_scratch32(tile * ng);
            for j in 0..n_tgt {
                let pj = &psi32[j * ng..(j + 1) * ng];
                for chunk in occ.chunks(tile) {
                    let m = chunk.len();
                    for (s, &i) in chunk.iter().enumerate() {
                        be.hadamard_conj32(
                            &phi32[i * ng..(i + 1) * ng],
                            pj,
                            &mut arena[s * ng..(s + 1) * ng],
                        );
                    }
                    stats.solves_fp32 += self.poisson_tile32(&mut arena[..m * ng], m);
                    stats.solves += m;
                    for (s, &i) in chunk.iter().enumerate() {
                        be.hadamard_acc_promote(
                            -d[i],
                            &arena[s * ng..(s + 1) * ng],
                            &phi32[i * ng..(i + 1) * ng],
                            &mut out[j * ng..(j + 1) * ng],
                            comp.as_mut().map(|c| &mut c[j * ng..(j + 1) * ng]),
                        );
                        stats.contributions += 1;
                    }
                }
            }
            be.recycle_buffer32(arena);
            if let Some(c) = comp {
                be.recycle_buffer(c);
            }
            return (out, stats);
        }
        if self.opts.fused {
            // Fused fp64 pipeline, forward scatters only — the task
            // order (target-major, sources ascending) matches the
            // staged per-target batching, so accumulation order and
            // results are bitwise identical.
            let mut tasks = Vec::with_capacity(occ.len() * n_tgt);
            for j in 0..n_tgt {
                for &i in &occ {
                    tasks.push(PairTask { i, j, w_fwd: -d[i], w_rev: 0.0 });
                }
            }
            stats.solves += tasks.len();
            stats.contributions += tasks.len();
            be.fused_pair_solve(
                &self.fft.convolve_pass(&self.kernel.kg, be),
                phi_r,
                psi_r,
                ng,
                &tasks,
                &mut out,
            );
            self.counters.add_fp64(tasks.len());
            return (out, stats);
        }
        let mut arena = be.take_scratch(tile * ng);
        for j in 0..n_tgt {
            let pj = bands::band(psi_r, ng, j);
            for chunk in occ.chunks(tile) {
                let m = chunk.len();
                for (s, &i) in chunk.iter().enumerate() {
                    be.hadamard_conj(
                        bands::band(phi_r, ng, i),
                        pj,
                        bands::band_mut(&mut arena, ng, s),
                    );
                }
                self.poisson_batch(&mut arena[..m * ng], m);
                stats.solves += m;
                let oj = bands::band_mut(&mut out, ng, j);
                for (s, &i) in chunk.iter().enumerate() {
                    be.hadamard_acc(
                        Complex64::from_re(-d[i]),
                        bands::band(&arena, ng, s),
                        bands::band(phi_r, ng, i),
                        oj,
                    );
                    stats.contributions += 1;
                }
            }
        }
        be.recycle_buffer(arena);
        (out, stats)
    }

    /// Pure-state operator (Eq. 9): occupations `f` on the orbitals
    /// themselves. Aliased targets, so this always takes the
    /// pair-symmetric scheduler.
    pub fn apply_pure(&self, phi_r: &[Complex64], f: &[f64]) -> Vec<Complex64> {
        self.apply_diag(phi_r, f, phi_r)
    }

    /// [`Self::apply_pure`] also returning the scheduler stats.
    pub fn apply_pure_stats(
        &self,
        phi_r: &[Complex64],
        f: &[f64],
    ) -> (Vec<Complex64>, FockApplyStats) {
        self.apply_diag_stats(phi_r, f, phi_r)
    }

    /// Mixed-state operator on the orbitals themselves, via the σ
    /// diagonalization *and* the pair-symmetric scheduler: diagonalizes
    /// `σ = Q D Qᴴ`, rotates to natural orbitals in real space, runs the
    /// symmetric apply, and rotates back (`Vx Φ = (Vx Φ̃) Qᴴ` by
    /// linearity). Equivalent to [`Self::apply_mixed_baseline`] at
    /// ~N(N+1)/2 Poisson solves instead of O(N³).
    pub fn apply_mixed_diag(
        &self,
        phi_r: &[Complex64],
        sigma: &CMat,
    ) -> (Vec<Complex64>, FockApplyStats) {
        let ng = self.ng();
        let n = bands::n_bands(phi_r, ng);
        assert_eq!(sigma.rows(), n);
        let be = &*self.backend;
        let e = pwnum::eigh(sigma);
        let mut nat_r = be.take_scratch(n * ng);
        be.rotate(phi_r, &e.vectors, ng, &mut nat_r);
        let (vx_nat, stats) = self.apply_pure_stats(&nat_r, &e.values);
        let mut out = vec![Complex64::ZERO; n * ng];
        be.rotate(&vx_nat, &e.vectors.herm(), ng, &mut out);
        be.recycle_buffer(nat_r);
        (out, stats)
    }

    /// One weighted pair contribution — the innermost kernel the
    /// *distributed* Fock evaluation drives directly as source bands
    /// arrive over the network:
    /// `out -= weight · src ⊙ Poisson[conj(src) ⊙ tgt]`.
    /// `pair` is caller-provided scratch of length Ng.
    pub fn accumulate_pair(
        &self,
        src: &[Complex64],
        tgt: &[Complex64],
        weight: f64,
        out: &mut [Complex64],
        pair: &mut [Complex64],
    ) {
        let be = &*self.backend;
        be.hadamard_conj(src, tgt, pair);
        self.poisson_batch(pair, 1);
        be.hadamard_acc(Complex64::from_re(-weight), pair, src, out);
    }

    /// The pair-symmetric twin of [`Self::accumulate_pair`] for the
    /// distributed diagonal-block halving: one Poisson solve of
    /// `W = Poisson[conj(φ_i) ⊙ φ_j]` scattered into both targets —
    /// `out_j -= w_i · W ⊙ φ_i` and `out_i -= w_j · conj(W) ⊙ φ_j`.
    /// `pair` is caller-provided scratch of length Ng.
    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_pair_sym(
        &self,
        src_i: &[Complex64],
        src_j: &[Complex64],
        w_i: f64,
        w_j: f64,
        out_j: &mut [Complex64],
        out_i: &mut [Complex64],
        pair: &mut [Complex64],
    ) {
        let be = &*self.backend;
        be.hadamard_conj(src_i, src_j, pair);
        self.poisson_batch(pair, 1);
        be.hadamard_acc(Complex64::from_re(-w_i), pair, src_i, out_j);
        be.hadamard_acc_conj(Complex64::from_re(-w_j), pair, src_j, out_i);
    }

    /// Exchange energy `E_x = Σ_i d_i <φ̃_i|Vx|φ̃_i>` (real, ≤ 0), given
    /// natural orbitals in real space, their occupations, and `VxΦ̃` from
    /// [`Self::apply_diag`]. `dv` is the grid quadrature weight.
    pub fn exchange_energy(
        &self,
        phi_r: &[Complex64],
        d: &[f64],
        vx_phi_r: &[Complex64],
        dv: f64,
    ) -> f64 {
        let _s = pwobs::span("xch.energy");
        let ng = self.ng();
        let n = bands::n_bands(phi_r, ng);
        let mut e = 0.0;
        for (i, &di) in d.iter().enumerate().take(n) {
            if di.abs() < self.opts.occ_cutoff {
                continue;
            }
            let pi = bands::band(phi_r, ng, i);
            let wi = bands::band(vx_phi_r, ng, i);
            e += di * cvec::dotc(pi, wi).re;
        }
        e * dv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::natural_orbitals;
    use crate::lattice::Cell;
    use crate::wavefunction::Wavefunction;
    use pwnum::eigh;

    fn setup(n_bands: usize) -> (PwGrid, Fft3, Wavefunction) {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
        let fft = grid.fft();
        let wf = Wavefunction::random(&grid, n_bands, 31);
        (grid, fft, wf)
    }

    fn test_sigma(n: usize, seed: u64) -> CMat {
        let h = pwnum::cmat::random_hermitian(n, {
            let mut s = seed;
            move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }
        });
        let e = eigh(&h);
        let d: Vec<f64> = e.values.iter().map(|&w| 1.0 / (1.0 + (2.0 * w).exp())).collect();
        let dm = CMat::from_real_diag(&d);
        let vd = e.vectors.matmul(&dm);
        pwnum::gemm::gemm(
            Complex64::ONE,
            &vd,
            pwnum::gemm::Op::None,
            &e.vectors,
            pwnum::gemm::Op::ConjTrans,
            Complex64::ZERO,
            None,
        )
        .hermitian_part()
    }

    #[test]
    fn kernel_limits() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
        let k = ScreenedKernel::hse(&grid, 0.106);
        // G=0 finite limit π/ω².
        let expect0 = std::f64::consts::PI / (0.106 * 0.106);
        assert!((k.kg[0] - expect0).abs() < 1e-9);
        // Large G: approaches bare Coulomb 4π/G².
        let (idx, _) = grid
            .g2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let g2 = grid.g2[idx];
        assert!((k.kg[idx] - 4.0 * std::f64::consts::PI / g2).abs() / k.kg[idx] < 1e-3);
        // All positive.
        assert!(k.kg.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn baseline_equals_diagonalized() {
        // The paper's central algebraic claim (Sec. IV-A1): Alg. 2 and the
        // σ-diagonalized form give identical VxΦ.
        let (_, fft, wf) = setup(4);
        let grid_cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&grid_cell, 2.0, [6, 6, 6]);
        let fock = FockOperator::new(&grid, 0.2);
        let sigma = test_sigma(4, 3);

        let phi_r = wf.to_real_all(&fft);
        let vx_base = fock.apply_mixed_baseline(&phi_r, &sigma);

        // Diagonalized path: rotate, apply, rotate back.
        let nat = natural_orbitals(&wf, &sigma);
        let nat_r = nat.phi.to_real_all(&fft);
        // Vx applied to the *original* orbitals ψ_j = Φ_j.
        let vx_diag = fock.apply_diag(&nat_r, &nat.occ, &phi_r);

        let max_diff = pwnum::cvec::max_abs_diff(&vx_base, &vx_diag);
        let scale = vx_base.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        assert!(max_diff < 1e-9 * scale.max(1.0), "diff {max_diff} (scale {scale})");
    }

    #[test]
    fn operator_is_hermitian() {
        // <a|Vx b> == <Vx a|b> for the diagonalized operator.
        let (grid, fft, wf) = setup(3);
        let fock = FockOperator::new(&grid, 0.15);
        let d = vec![1.0, 0.7, 0.2];
        let phi_r = wf.to_real_all(&fft);
        let vx = fock.apply_diag(&phi_r, &d, &phi_r);
        let ng = grid.len();
        for a in 0..3 {
            for b in 0..3 {
                let lhs = cvec::dotc(bands::band(&phi_r, ng, a), bands::band(&vx, ng, b));
                let rhs = cvec::dotc(bands::band(&vx, ng, a), bands::band(&phi_r, ng, b));
                assert!((lhs - rhs).abs() < 1e-9, "Hermiticity ({a},{b})");
            }
        }
    }

    #[test]
    fn pair_symmetric_matches_asymmetric_path() {
        // Aliased targets take the halved scheduler; a *copied* target
        // block forces the asymmetric path. Same math, ~half the solves.
        let (grid, fft, wf) = setup(5);
        let fock = FockOperator::new(&grid, 0.18);
        let d = vec![1.0, 0.9, 0.5, 0.5, 0.0];
        let phi_r = wf.to_real_all(&fft);
        let psi_copy = phi_r.clone();
        let (sym, s_sym) = fock.apply_diag_stats(&phi_r, &d, &phi_r);
        let (asym, s_asym) = fock.apply_diag_stats(&phi_r, &d, &psi_copy);
        assert!(s_sym.symmetric && !s_asym.symmetric);
        // 4 occupied sources × 5 targets = 20 vs pairs with either side
        // occupied: all (i,j≥i) except (4,4) = 15 − 1 = 14.
        assert_eq!(s_asym.solves, 20);
        assert_eq!(s_sym.solves, 14);
        let scale = asym.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        let diff = pwnum::cvec::max_abs_diff(&sym, &asym);
        assert!(diff < 1e-10 * scale.max(1.0), "pairsym diff {diff} (scale {scale})");
    }

    #[test]
    fn mixed_diag_matches_baseline() {
        // apply_mixed_diag (σ-diagonalized + pair-symmetric + rotate
        // back) reproduces Alg. 2 on the original orbitals.
        let (_, fft, wf) = setup(4);
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
        let fock = FockOperator::new(&grid, 0.2);
        let sigma = test_sigma(4, 11);
        let phi_r = wf.to_real_all(&fft);
        let base = fock.apply_mixed_baseline(&phi_r, &sigma);
        let (diag, stats) = fock.apply_mixed_diag(&phi_r, &sigma);
        assert!(stats.symmetric);
        assert_eq!(stats.solves, 4 * 5 / 2);
        let scale = base.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        let diff = pwnum::cvec::max_abs_diff(&base, &diag);
        assert!(diff < 1e-9 * scale.max(1.0), "mixed diag diff {diff}");
    }

    #[test]
    fn tiny_tiles_do_not_change_results() {
        // tile_bands bounds scratch, never results: a 1-pair tile must
        // reproduce the full-batch result bitwise (identical per-grid
        // FFTs and accumulation order).
        let (grid, fft, wf) = setup(4);
        let d = vec![1.0, 0.8, 0.4, 0.1];
        let phi_r = wf.to_real_all(&fft);
        let be = pwnum::backend::default_backend().clone();
        let wide = FockOperator::with_options(
            &grid,
            0.2,
            be.clone(),
            FockOptions { tile_bands: 64, ..Default::default() },
        );
        let narrow = FockOperator::with_options(
            &grid,
            0.2,
            be,
            FockOptions { tile_bands: 1, ..Default::default() },
        );
        let a = wide.apply_pure(&phi_r, &d);
        let b = narrow.apply_pure(&phi_r, &d);
        assert_eq!(pwnum::cvec::max_abs_diff(&a, &b), 0.0);
        let psi = phi_r.clone();
        let a = wide.apply_diag(&phi_r, &d, &psi);
        let b = narrow.apply_diag(&phi_r, &d, &psi);
        assert_eq!(pwnum::cvec::max_abs_diff(&a, &b), 0.0);
    }

    #[test]
    fn screening_reports_skipped_weight() {
        let (grid, fft, wf) = setup(4);
        let fft_ = fft;
        let phi_r = wf.to_real_all(&fft_);
        let d = vec![1.0, 0.5, 1e-3, 1e-3];
        let be = pwnum::backend::default_backend().clone();
        let screened = FockOperator::with_options(
            &grid,
            0.2,
            be.clone(),
            FockOptions { occ_cutoff: 1e-2, tile_bands: 32, ..Default::default() },
        );
        let exact = FockOperator::with_options(
            &grid,
            0.2,
            be,
            FockOptions { occ_cutoff: 0.0, tile_bands: 32, ..Default::default() },
        );
        let (vs, ss) = screened.apply_pure_stats(&phi_r, &d);
        let (ve, se) = exact.apply_pure_stats(&phi_r, &d);
        // Pairs among the two screened bands are skipped entirely.
        assert_eq!(ss.skipped_pairs, 3);
        assert!(ss.solves < se.solves);
        assert_eq!(se.skipped_weight, 0.0);
        // The dropped weight is reported: 2e-3 per screened contribution.
        assert!(ss.skipped_weight > 0.0);
        // And the induced error is small (weights were tiny) but nonzero.
        let diff = pwnum::cvec::max_abs_diff(&vs, &ve);
        let scale = ve.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        assert!(diff > 0.0 && diff < 1e-1 * scale, "screening error {diff} vs {scale}");
    }

    #[test]
    fn mixed_precision_matches_fp64_within_tolerance() {
        // The fp32 exchange pipeline (demote → fp32 pair density → fp32
        // Poisson round trip → compensated fp64 accumulation) must track
        // the fp64 reference to fp32 accuracy on both scheduler paths,
        // and report its solves in the precision counters.
        let (grid, fft, wf) = setup(5);
        let d = vec![1.0, 0.9, 0.5, 0.2, 0.05];
        let phi_r = wf.to_real_all(&fft);
        let be = pwnum::backend::default_backend().clone();
        let exact = FockOperator::with_options(&grid, 0.2, be.clone(), FockOptions::default());
        let mixed = FockOperator::with_options(
            &grid,
            0.2,
            be,
            FockOptions { precision: PrecisionPolicy::mixed(), ..Default::default() },
        );
        // Symmetric path.
        let (ve, se) = exact.apply_pure_stats(&phi_r, &d);
        let (vm, sm) = mixed.apply_pure_stats(&phi_r, &d);
        assert_eq!(se.solves_fp32, 0);
        assert_eq!(sm.solves_fp32, sm.solves);
        assert_eq!(sm.solves, se.solves);
        let scale = ve.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        let diff = pwnum::cvec::max_abs_diff(&ve, &vm);
        assert!(diff < 1e-4 * scale.max(1.0), "fp32 symmetric drift {diff} (scale {scale})");
        // Asymmetric path (copied target block).
        let psi = phi_r.clone();
        let (ae, _) = exact.apply_diag_stats(&phi_r, &d, &psi);
        let (am, sam) = mixed.apply_diag_stats(&phi_r, &d, &psi);
        assert!(!sam.symmetric && sam.solves_fp32 == sam.solves);
        let adiff = pwnum::cvec::max_abs_diff(&ae, &am);
        assert!(adiff < 1e-4 * scale.max(1.0), "fp32 asymmetric drift {adiff}");
        // Counters recorded the split.
        let (e64, e32) = exact.counters().snapshot();
        assert!(e64 > 0 && e32 == 0);
        let (m64, m32) = mixed.counters().snapshot();
        assert!(m32 > 0 && m64 == 0);
    }

    #[test]
    fn fp64_fft_stage_attribution_half_path() {
        // exchange reduced + fft Fp64: pair densities and accumulation
        // stay in the fp32 storage pipeline, but the Poisson round trips
        // run promoted on the fp64 plans — solves counted as fp64, and
        // the result still tracks the all-fp64 apply at fp32 accuracy.
        let (grid, fft, wf) = setup(4);
        let d = vec![1.0, 0.8, 0.5, 0.2];
        let phi_r = wf.to_real_all(&fft);
        let be = pwnum::backend::default_backend().clone();
        let policy = PrecisionPolicy {
            fft: pwnum::precision::StagePrecision::Fp64,
            ..PrecisionPolicy::mixed()
        };
        let half = FockOperator::with_options(
            &grid,
            0.2,
            be,
            FockOptions { precision: policy, ..Default::default() },
        );
        let exact = FockOperator::new(&grid, 0.2);
        let (ve, _) = exact.apply_pure_stats(&phi_r, &d);
        let (vh, sh) = half.apply_pure_stats(&phi_r, &d);
        assert_eq!(sh.solves_fp32, 0, "fp64 fft stage must not count fp32 solves");
        assert!(sh.solves > 0);
        let (c64s, c32s) = half.counters().snapshot();
        assert!(c64s > 0 && c32s == 0);
        let scale = ve.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        let diff = pwnum::cvec::max_abs_diff(&ve, &vh);
        assert!(diff < 1e-4 * scale.max(1.0), "half-path drift {diff}");
    }

    #[test]
    fn compensated_and_plain_fp32_both_track_fp64() {
        // Fp32 vs Fp32Promoted: both stay within fp32 tolerance of the
        // fp64 result; the compensated variant must not be worse.
        let (grid, fft, wf) = setup(4);
        let d = vec![1.0, 0.8, 0.6, 0.3];
        let phi_r = wf.to_real_all(&fft);
        let be = pwnum::backend::default_backend().clone();
        let exact = FockOperator::new(&grid, 0.2);
        let ve = exact.apply_pure(&phi_r, &d);
        let scale = ve.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        let mut errs = Vec::new();
        for stage in [
            pwnum::precision::StagePrecision::Fp32,
            pwnum::precision::StagePrecision::Fp32Promoted,
        ] {
            let policy =
                PrecisionPolicy { exchange: stage, ..PrecisionPolicy::mixed() };
            let op = FockOperator::with_options(
                &grid,
                0.2,
                be.clone(),
                FockOptions { precision: policy, ..Default::default() },
            );
            let v = op.apply_pure(&phi_r, &d);
            errs.push(pwnum::cvec::max_abs_diff(&ve, &v));
        }
        assert!(errs[0] < 1e-4 * scale.max(1.0), "plain fp32 err {}", errs[0]);
        assert!(errs[1] < 1e-4 * scale.max(1.0), "compensated err {}", errs[1]);
    }

    #[test]
    fn fused_and_staged_schedulers_agree_bitwise() {
        // The fused pair-solve pipeline must reproduce the staged tile
        // scheduler bit-for-bit on both backends and both scheduler
        // paths: same per-grid round trips, same scatter order.
        let (grid, fft, wf) = setup(5);
        let d = vec![1.0, 0.9, 0.5, 0.2, 0.05];
        let phi_r = wf.to_real_all(&fft);
        let psi = phi_r.clone();
        for name in ["reference", "blocked"] {
            let be = pwnum::backend::by_name(name).unwrap();
            let fused =
                FockOperator::with_options(&grid, 0.2, be.clone(), FockOptions::default());
            let staged = FockOperator::with_options(
                &grid,
                0.2,
                be,
                FockOptions::default().with_fused(false),
            );
            let (vf, sf) = fused.apply_pure_stats(&phi_r, &d);
            let (vs, ss) = staged.apply_pure_stats(&phi_r, &d);
            assert_eq!((sf.solves, sf.contributions), (ss.solves, ss.contributions));
            assert_eq!(pwnum::cvec::max_abs_diff(&vf, &vs), 0.0, "{name} symmetric");
            let (af, saf) = fused.apply_diag_stats(&phi_r, &d, &psi);
            let (ag, sag) = staged.apply_diag_stats(&phi_r, &d, &psi);
            assert!(!saf.symmetric && !sag.symmetric);
            assert_eq!((saf.solves, saf.contributions), (sag.solves, sag.contributions));
            assert_eq!(pwnum::cvec::max_abs_diff(&af, &ag), 0.0, "{name} asymmetric");
        }
    }

    #[test]
    fn fused_fp32_is_value_identical_to_staged_fp32() {
        // The fused fp32 pipeline (demote → fp32 convolve → compensated
        // promote-scatter) reproduces the staged fp32 tile scheduler
        // exactly: the fused convolve is value-identical and the
        // accumulation order unchanged — so it inherits the staged
        // path's PR-4 accuracy budget verbatim.
        let (grid, fft, wf) = setup(5);
        let d = vec![1.0, 0.9, 0.5, 0.2, 0.05];
        let phi_r = wf.to_real_all(&fft);
        let be = pwnum::backend::default_backend().clone();
        let opts = FockOptions::default().with_precision(PrecisionPolicy::mixed());
        let fused = FockOperator::with_options(&grid, 0.2, be.clone(), opts);
        let staged = FockOperator::with_options(&grid, 0.2, be, opts.with_fused(false));
        let (vf, sf) = fused.apply_pure_stats(&phi_r, &d);
        let (vs, ss) = staged.apply_pure_stats(&phi_r, &d);
        assert_eq!(sf.solves_fp32, ss.solves_fp32);
        assert_eq!(sf.solves_fp32, sf.solves);
        assert_eq!(pwnum::cvec::max_abs_diff(&vf, &vs), 0.0, "fp32 symmetric");
        let psi = phi_r.clone();
        let af = fused.apply_diag(&phi_r, &d, &psi);
        let ag = staged.apply_diag(&phi_r, &d, &psi);
        assert_eq!(pwnum::cvec::max_abs_diff(&af, &ag), 0.0, "fp32 asymmetric");
    }

    #[test]
    fn fused_path_lowers_pool_peak() {
        // Scratch high-water mark: the staged scheduler stages
        // `tile_bands` pair grids through a pooled arena, the fused
        // pipeline holds one pair grid + one convolve scratch — the
        // pool peak must drop measurably on a fresh pooled backend.
        let (grid, fft, wf) = setup(8);
        let d = vec![1.0; 8];
        let phi_r = wf.to_real_all(&fft);
        let peak = |fused: bool| {
            let be = pwnum::backend::by_name("blocked").unwrap();
            let op = FockOperator::with_options(
                &grid,
                0.2,
                be.clone(),
                FockOptions::default().with_fused(fused),
            );
            op.apply_pure(&phi_r, &d);
            be.pool_stats().fp64.peak_bytes
        };
        let fused = peak(true);
        let staged = peak(false);
        assert!(fused > 0 && staged > 0, "pool accounting must see both paths");
        assert!(
            fused * 2 < staged,
            "fused peak {fused} B should be well under staged peak {staged} B"
        );
    }

    #[test]
    fn options_default_resolves_tile_bands_from_tuning() {
        // The default tile size comes from the pwnum tuning table (safe
        // fallback 32), and the builders override per knob without
        // naming the deprecated construction-guard field.
        let o = FockOptions::default();
        assert_eq!(o.tile_bands, pwnum::tuning::default_tile_bands());
        assert!(o.fused);
        let o2 = o.with_tile_bands(7).with_fused(false).with_occ_cutoff(0.5);
        assert_eq!((o2.tile_bands, o2.fused, o2.occ_cutoff), (7, false, 0.5));
        assert_eq!(o2.precision, o.precision);
    }

    #[test]
    fn exchange_energy_negative() {
        let (grid, fft, wf) = setup(3);
        let fock = FockOperator::new(&grid, 0.106);
        let d = vec![1.0, 1.0, 0.5];
        let phi_r = wf.to_real_all(&fft);
        let vx = fock.apply_diag(&phi_r, &d, &phi_r);
        let ex = fock.exchange_energy(&phi_r, &d, &vx, grid.dv());
        assert!(ex < 0.0, "exchange energy must be negative: {ex}");
    }

    #[test]
    fn zero_occupation_gives_zero_operator() {
        let (grid, fft, wf) = setup(2);
        let fock = FockOperator::new(&grid, 0.106);
        let phi_r = wf.to_real_all(&fft);
        let vx = fock.apply_diag(&phi_r, &[0.0, 0.0], &phi_r);
        assert!(vx.iter().all(|z| z.abs() < 1e-15));
    }

    #[test]
    fn screening_reduces_magnitude() {
        // The kernel K(G) = 4π/G²(1 − e^{−G²/4ω²}) keeps only the
        // short-range part: larger ω truncates more of the interaction,
        // so |Ex| must shrink as ω grows (ω → 0 recovers bare Coulomb).
        let (grid, fft, wf) = setup(2);
        let d = vec![1.0, 1.0];
        let phi_r = wf.to_real_all(&fft);
        let long_range = FockOperator::new(&grid, 0.05);
        let short_range = FockOperator::new(&grid, 0.5);
        let vl = long_range.apply_diag(&phi_r, &d, &phi_r);
        let vs = short_range.apply_diag(&phi_r, &d, &phi_r);
        let el = long_range.exchange_energy(&phi_r, &d, &vl, grid.dv());
        let es = short_range.exchange_energy(&phi_r, &d, &vs, grid.dv());
        assert!(es.abs() < el.abs(), "short-range |Ex| {es} should be < {el}");
    }
}
