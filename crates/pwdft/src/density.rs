//! Electron density from mixed-state orbitals.
//!
//! The finite-temperature density is `ρ(r) = 2 Σ_ij σ_ij φ_i(r) φ_j*(r)`
//! (spin factor 2, paper Eq. 2). Two evaluation strategies from the paper:
//!
//! * **baseline** — the direct double loop over (i,j) pairs
//!   (Sec. III-C1, cost O(N²·Ng) grid work after N FFTs);
//! * **diagonalized** — rotate to the natural-orbital basis `φ = Φ Q`
//!   with `σ = Q D Q*` (Eq. 11–12) and sum N weighted densities
//!   (Sec. IV-A1, O(N·Ng) after N FFTs).
//!
//! Both must agree to machine precision; a unit test enforces it.

use crate::gvec::PwGrid;
use crate::wavefunction::Wavefunction;
use pwfft::Fft3;
use pwnum::backend::{default_backend, Backend};
use pwnum::bands;
use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use pwnum::eigh;

/// Spin degeneracy factor (closed-shell).
pub const SPIN_FACTOR: f64 = 2.0;

/// Baseline mixed-state density: explicit `Σ_ij σ_ij φ_i φ_j*` pair loop.
pub fn density_mixed_baseline(
    grid: &PwGrid,
    fft: &Fft3,
    phi: &Wavefunction,
    sigma: &CMat,
) -> Vec<f64> {
    density_mixed_baseline_with(&**default_backend(), grid, fft, phi, sigma)
}

/// [`density_mixed_baseline`] on an explicit compute backend.
pub fn density_mixed_baseline_with(
    backend: &dyn Backend,
    grid: &PwGrid,
    fft: &Fft3,
    phi: &Wavefunction,
    sigma: &CMat,
) -> Vec<f64> {
    let n = phi.n_bands;
    assert_eq!(sigma.rows(), n);
    assert_eq!(sigma.cols(), n);
    let real = phi.to_real_all_with(backend, fft);
    let ng = grid.len();
    let mut rho = vec![0.0f64; ng];
    // Diagonal terms + twice the real part of the upper triangle
    // (σ Hermitian makes ρ real).
    for i in 0..n {
        let pi = bands::band(&real, ng, i);
        let sii = sigma[(i, i)].re;
        if sii != 0.0 {
            for (r, z) in rho.iter_mut().zip(pi) {
                *r += sii * z.norm_sqr();
            }
        }
        for j in i + 1..n {
            let sij = sigma[(i, j)];
            if sij == Complex64::ZERO {
                continue;
            }
            let pj = bands::band(&real, ng, j);
            for ((r, zi), zj) in rho.iter_mut().zip(pi).zip(pj) {
                // σ_ij φ_i φ_j* + σ_ji φ_j φ_i* = 2 Re(σ_ij φ_i φ_j*).
                let prod = *zi * zj.conj();
                *r += 2.0 * (sij.re * prod.re - sij.im * prod.im);
            }
        }
    }
    for r in rho.iter_mut() {
        *r *= SPIN_FACTOR;
    }
    rho
}

/// Result of the σ-diagonalization: natural orbitals and occupations.
pub struct NaturalOrbitals {
    /// Rotated orbitals `φ̃ = Φ Q` (G-space).
    pub phi: Wavefunction,
    /// Real occupations `d_i` (eigenvalues of σ, ascending).
    pub occ: Vec<f64>,
    /// The unitary `Q` (columns = eigenvectors of σ).
    pub q: CMat,
}

/// Diagonalizes σ and rotates the orbitals (paper Eq. 11–12).
pub fn natural_orbitals(phi: &Wavefunction, sigma: &CMat) -> NaturalOrbitals {
    natural_orbitals_with(&**default_backend(), phi, sigma)
}

/// [`natural_orbitals`] on an explicit compute backend (the rotation
/// `Φ Q` is the band-op hot path of the σ-diagonalization).
pub fn natural_orbitals_with(
    backend: &dyn Backend,
    phi: &Wavefunction,
    sigma: &CMat,
) -> NaturalOrbitals {
    let _s = pwobs::span("gemm.natural_orbitals");
    let e = eigh(sigma);
    let rotated = phi.rotated_with(backend, &e.vectors);
    NaturalOrbitals { phi: rotated, occ: e.values, q: e.vectors }
}

/// Density from natural orbitals: `ρ = 2 Σ_i d_i |φ̃_i|²`.
pub fn density_from_natural(
    grid: &PwGrid,
    fft: &Fft3,
    nat: &NaturalOrbitals,
) -> Vec<f64> {
    density_diag(grid, fft, &nat.phi, &nat.occ)
}

/// [`density_from_natural`] on an explicit compute backend.
pub fn density_from_natural_with(
    backend: &dyn Backend,
    grid: &PwGrid,
    fft: &Fft3,
    nat: &NaturalOrbitals,
) -> Vec<f64> {
    density_diag_with(backend, grid, fft, &nat.phi, &nat.occ)
}

/// Density from orbitals with *diagonal* occupations (also used for the
/// pure-state / ground-state case where σ is already diagonal).
pub fn density_diag(grid: &PwGrid, fft: &Fft3, phi: &Wavefunction, occ: &[f64]) -> Vec<f64> {
    density_diag_with(&**default_backend(), grid, fft, phi, occ)
}

/// [`density_diag`] on an explicit compute backend.
pub fn density_diag_with(
    backend: &dyn Backend,
    grid: &PwGrid,
    fft: &Fft3,
    phi: &Wavefunction,
    occ: &[f64],
) -> Vec<f64> {
    assert_eq!(occ.len(), phi.n_bands);
    let real = phi.to_real_all_with(backend, fft);
    let ng = grid.len();
    let mut rho = vec![0.0f64; ng];
    for (i, &d) in occ.iter().enumerate() {
        if d.abs() < 1e-15 {
            continue;
        }
        let pi = bands::band(&real, ng, i);
        for (r, z) in rho.iter_mut().zip(pi) {
            *r += d * z.norm_sqr();
        }
    }
    for r in rho.iter_mut() {
        *r *= SPIN_FACTOR;
    }
    rho
}

/// Integrated electron count `∫ ρ dV`.
pub fn electron_count(grid: &PwGrid, rho: &[f64]) -> f64 {
    rho.iter().sum::<f64>() * grid.dv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Cell;
    use pwnum::c64;

    fn setup() -> (PwGrid, Fft3, Wavefunction) {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 3.0, [8, 8, 8]);
        let fft = grid.fft();
        let wf = Wavefunction::random(&grid, 5, 21);
        (grid, fft, wf)
    }

    fn test_sigma(n: usize) -> CMat {
        // Hermitian with eigenvalues in (0,1): build f(H) from a random H.
        let h = pwnum::cmat::random_hermitian(n, {
            let mut s = 77u64;
            move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }
        });
        let e = eigh(&h);
        let d: Vec<f64> = e.values.iter().map(|&w| 1.0 / (1.0 + (3.0 * w).exp())).collect();
        let dm = CMat::from_real_diag(&d);
        let vd = e.vectors.matmul(&dm);
        pwnum::gemm::gemm(
            Complex64::ONE,
            &vd,
            pwnum::gemm::Op::None,
            &e.vectors,
            pwnum::gemm::Op::ConjTrans,
            Complex64::ZERO,
            None,
        )
        .hermitian_part()
    }

    #[test]
    fn baseline_equals_diagonalized() {
        let (grid, fft, wf) = setup();
        let sigma = test_sigma(5);
        let rho_base = density_mixed_baseline(&grid, &fft, &wf, &sigma);
        let nat = natural_orbitals(&wf, &sigma);
        let rho_diag = density_from_natural(&grid, &fft, &nat);
        let max_diff = rho_base
            .iter()
            .zip(&rho_diag)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-10, "baseline vs diag density: {max_diff}");
    }

    #[test]
    fn electron_count_is_trace() {
        let (grid, fft, wf) = setup();
        let sigma = test_sigma(5);
        let rho = density_mixed_baseline(&grid, &fft, &wf, &sigma);
        let ne = electron_count(&grid, &rho);
        let expect = SPIN_FACTOR * sigma.trace().re;
        assert!((ne - expect).abs() < 1e-8, "Ne={ne} vs 2 tr σ = {expect}");
    }

    #[test]
    fn density_is_real_nonnegative_for_valid_sigma() {
        let (grid, fft, wf) = setup();
        let sigma = test_sigma(5);
        let rho = density_mixed_baseline(&grid, &fft, &wf, &sigma);
        // σ has eigenvalues in (0,1) -> ρ ≥ 0 everywhere.
        let rmin = rho.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(rmin > -1e-12, "density must be nonnegative, min {rmin}");
    }

    #[test]
    fn pure_state_identity_occupations() {
        let (grid, fft, wf) = setup();
        let occ = vec![1.0; 5];
        let sigma = CMat::identity(5);
        let a = density_diag(&grid, &fft, &wf, &occ);
        let b = density_mixed_baseline(&grid, &fft, &wf, &sigma);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn natural_occupations_preserve_trace() {
        let (_, _, wf) = setup();
        let sigma = test_sigma(5);
        let nat = natural_orbitals(&wf, &sigma);
        let sum: f64 = nat.occ.iter().sum();
        assert!((sum - sigma.trace().re).abs() < 1e-10);
        for &d in &nat.occ {
            assert!((-1e-10..=1.0 + 1e-10).contains(&d));
        }
    }

    #[test]
    fn off_diagonal_sigma_changes_density() {
        let (grid, fft, wf) = setup();
        let mut sigma = CMat::identity(5).scaled(c64(0.5, 0.0));
        let rho0 = density_mixed_baseline(&grid, &fft, &wf, &sigma);
        sigma[(0, 1)] = c64(0.2, 0.1);
        sigma[(1, 0)] = c64(0.2, -0.1);
        let rho1 = density_mixed_baseline(&grid, &fft, &wf, &sigma);
        let diff: f64 = rho0.iter().zip(&rho1).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "off-diagonal σ must matter");
        // Trace unchanged -> same electron count.
        let n0 = electron_count(&grid, &rho0);
        let n1 = electron_count(&grid, &rho1);
        assert!((n0 - n1).abs() < 1e-8);
    }
}
