//! Anderson (Pulay/DIIS-type) mixing for fixed-point iterations.
//!
//! Used in two places, exactly as in the paper: density mixing in the
//! ground-state SCF, and the wavefunction/σ fixed-point of the PT-IM
//! propagator (Alg. 1 line 8, maximum history 20 per Sec. VI).
//!
//! For `x = T(x)` with residual `r(x) = T(x) − x`, the update combines
//! the stored history to minimize the extrapolated residual:
//! `x⁺ = x̄ + β r̄` with the bar quantities being the optimal history
//! combination (Tikhonov-regularized least squares; robust when the
//! history becomes linearly dependent near convergence).

use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use pwnum::lstsq::lstsq;

/// Anderson mixer over complex vectors.
pub struct AndersonMixer {
    /// Maximum history depth (paper: 20).
    depth: usize,
    /// Damping β applied to the residual step.
    beta: f64,
    x_hist: Vec<Vec<Complex64>>,
    r_hist: Vec<Vec<Complex64>>,
}

impl AndersonMixer {
    /// Creates a mixer with history `depth ≥ 1` and damping `beta`.
    pub fn new(depth: usize, beta: f64) -> Self {
        assert!(depth >= 1);
        assert!(beta > 0.0 && beta <= 1.0);
        AndersonMixer { depth, beta, x_hist: Vec::new(), r_hist: Vec::new() }
    }

    /// Clears the history (e.g. at the start of a new time step).
    pub fn reset(&mut self) {
        self.x_hist.clear();
        self.r_hist.clear();
    }

    /// Current history length.
    pub fn history_len(&self) -> usize {
        self.x_hist.len()
    }

    /// Given the current iterate `x` and its image `tx = T(x)`, returns
    /// the next iterate.
    pub fn step(&mut self, x: &[Complex64], tx: &[Complex64]) -> Vec<Complex64> {
        let _s = pwobs::span("gemm.anderson");
        assert_eq!(x.len(), tx.len());
        let r: Vec<Complex64> = tx.iter().zip(x).map(|(t, xi)| *t - *xi).collect();

        let m = self.x_hist.len();
        let next = if m == 0 {
            // Simple damped step.
            x.iter().zip(&r).map(|(xi, ri)| *xi + ri.scale(self.beta)).collect()
        } else {
            // Solve min || r - ΔR θ || with ΔR columns r - r_hist[j].
            let n = x.len();
            let a = CMat::from_fn(n, m, |row, col| r[row] - self.r_hist[col][row]);
            let theta = lstsq(&a, &r, 1e-10);
            // x̄ = x - Σ θ_j (x - x_j);  r̄ = r - Σ θ_j (r - r_j).
            let mut out: Vec<Complex64> = x
                .iter()
                .zip(&r)
                .map(|(xi, ri)| *xi + ri.scale(self.beta))
                .collect();
            for (j, th) in theta.iter().enumerate() {
                let xh = &self.x_hist[j];
                let rh = &self.r_hist[j];
                for (i, o) in out.iter_mut().enumerate() {
                    let dx = x[i] - xh[i];
                    let dr = r[i] - rh[i];
                    *o -= *th * (dx + dr.scale(self.beta));
                }
            }
            out
        };

        self.x_hist.push(x.to_vec());
        self.r_hist.push(r);
        if self.x_hist.len() > self.depth {
            self.x_hist.remove(0);
            self.r_hist.remove(0);
        }
        next
    }
}

/// Convenience wrapper for real-valued fixed points (density mixing).
pub struct AndersonMixerReal {
    inner: AndersonMixer,
}

impl AndersonMixerReal {
    /// See [`AndersonMixer::new`].
    pub fn new(depth: usize, beta: f64) -> Self {
        AndersonMixerReal { inner: AndersonMixer::new(depth, beta) }
    }

    /// Clears history.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Real-vector mixing step.
    pub fn step(&mut self, x: &[f64], tx: &[f64]) -> Vec<f64> {
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
        let tc: Vec<Complex64> = tx.iter().map(|&v| Complex64::from_re(v)).collect();
        self.inner.step(&xc, &tc).into_iter().map(|z| z.re).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnum::c64;

    /// Linear fixed point T(x) = A x + b with spectral radius < 1.
    fn linear_map(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        let mut out = vec![Complex64::ZERO; n];
        for i in 0..n {
            let mut acc = c64(0.1 * (i as f64 + 1.0), 0.05);
            for (j, xj) in x.iter().enumerate() {
                let a = 0.5 / (1.0 + (i as f64 - j as f64).abs());
                acc += xj.scale(a * 0.6);
            }
            out[i] = acc;
        }
        out
    }

    fn residual_norm(x: &[Complex64]) -> f64 {
        let tx = linear_map(x);
        tx.iter().zip(x).map(|(a, b)| (*a - *b).norm_sqr()).sum::<f64>().sqrt()
    }

    #[test]
    fn anderson_converges_faster_than_simple_mixing() {
        let n = 8;
        let x0 = vec![Complex64::ZERO; n];

        // Simple damped iteration.
        let mut xs = x0.clone();
        let mut simple = AndersonMixer::new(1, 0.5);
        for _ in 0..12 {
            let tx = linear_map(&xs);
            xs = simple.step(&xs, &tx);
        }

        // Anderson with depth 5.
        let mut xa = x0;
        let mut anderson = AndersonMixer::new(5, 0.5);
        for _ in 0..12 {
            let tx = linear_map(&xa);
            xa = anderson.step(&xa, &tx);
        }

        let rs = residual_norm(&xs);
        let ra = residual_norm(&xa);
        assert!(ra < rs * 0.1, "anderson {ra} vs simple {rs}");
        assert!(ra < 1e-6, "anderson should nearly converge: {ra}");
    }

    #[test]
    fn history_is_bounded() {
        let mut m = AndersonMixer::new(3, 0.5);
        let x = vec![Complex64::ONE; 4];
        for k in 0..10 {
            let tx: Vec<Complex64> = x.iter().map(|z| z.scale(1.0 + 0.01 * k as f64)).collect();
            let _ = m.step(&x, &tx);
        }
        assert!(m.history_len() <= 3);
    }

    #[test]
    fn exact_fixed_point_is_stationary() {
        // If T(x) == x the mixer must return x.
        let mut m = AndersonMixer::new(4, 0.7);
        let x = vec![c64(1.0, -2.0); 5];
        let out = m.step(&x, &x);
        for (a, b) in out.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-14);
        }
    }

    #[test]
    fn real_wrapper_converges_scalar() {
        // T(x) = cos(x): fixed point ≈ 0.739085.
        let mut m = AndersonMixerReal::new(5, 1.0);
        let mut x = vec![0.0f64];
        for _ in 0..25 {
            let tx = vec![x[0].cos()];
            x = m.step(&x, &tx);
        }
        assert!((x[0] - 0.739_085_133_2).abs() < 1e-8, "got {}", x[0]);
    }

    #[test]
    fn reset_clears_history() {
        let mut m = AndersonMixer::new(4, 0.5);
        let x = vec![Complex64::ONE; 2];
        let tx = vec![c64(2.0, 0.0); 2];
        let _ = m.step(&x, &tx);
        assert_eq!(m.history_len(), 1);
        m.reset();
        assert_eq!(m.history_len(), 0);
    }
}
