//! Wavefunction blocks: N bands of plane-wave coefficients.
//!
//! Storage convention: **G-space, band-major** — band `i` occupies the
//! contiguous slice `[i*ng, (i+1)*ng)` of the buffer, holding the
//! *unnormalized forward FFT* of the real-space orbital. With the pwfft
//! conventions (`forward` unnormalized, `inverse` 1/n-normalized) this
//! makes `to_real` a single `inverse` call and the inner product
//! `<a|b> = (Ω/Ng²) Σ_G ã* b̃`.

use crate::gvec::PwGrid;
use pwfft::Fft3;
use pwnum::backend::{default_backend, Backend};
use pwnum::bands;
use pwnum::chol::{cholesky, invert_lower};
use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use pwnum::eigh;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A block of `n_bands` plane-wave orbitals on a common grid.
#[derive(Clone, Debug)]
pub struct Wavefunction {
    /// Number of bands (orbitals).
    pub n_bands: usize,
    /// Grid size Ng.
    pub ng: usize,
    /// `<a|b>` scale factor `Ω/Ng²`.
    pub ip_scale: f64,
    /// Band-major G-space coefficients.
    pub data: Vec<Complex64>,
}

impl Wavefunction {
    /// Zero-initialized block.
    pub fn zeros(grid: &PwGrid, n_bands: usize) -> Self {
        let ng = grid.len();
        Wavefunction {
            n_bands,
            ng,
            ip_scale: grid.volume() / (ng as f64 * ng as f64),
            data: vec![Complex64::ZERO; n_bands * ng],
        }
    }

    /// Randomized, cutoff-masked, orthonormalized block — the standard
    /// starting guess for the ground-state solver.
    pub fn random(grid: &PwGrid, n_bands: usize, seed: u64) -> Self {
        let mut wf = Self::zeros(grid, n_bands);
        let mut rng = StdRng::seed_from_u64(seed);
        for b in 0..n_bands {
            let band = wf.band_mut(b);
            for (g, z) in band.iter_mut().enumerate() {
                if grid.mask[g] {
                    // Decay with |G|² for smoother starting vectors.
                    let damp = 1.0 / (1.0 + grid.g2[g]);
                    *z = Complex64::new(
                        rng.gen_range(-1.0..1.0) * damp,
                        rng.gen_range(-1.0..1.0) * damp,
                    );
                }
            }
        }
        wf.orthonormalize_cholesky();
        wf
    }

    /// Borrow of band `i`'s coefficients.
    #[inline]
    pub fn band(&self, i: usize) -> &[Complex64] {
        bands::band(&self.data, self.ng, i)
    }

    /// Mutable borrow of band `i`.
    #[inline]
    pub fn band_mut(&mut self, i: usize) -> &mut [Complex64] {
        bands::band_mut(&mut self.data, self.ng, i)
    }

    /// Overlap matrix `S[i][j] = <self_i | other_j>`, computed on the
    /// process default backend.
    pub fn overlap(&self, other: &Wavefunction) -> CMat {
        self.overlap_with(&**default_backend(), other)
    }

    /// [`Self::overlap`] on an explicit compute backend.
    pub fn overlap_with(&self, backend: &dyn Backend, other: &Wavefunction) -> CMat {
        assert_eq!(self.ng, other.ng);
        backend.overlap(&self.data, &other.data, self.ng, self.ip_scale)
    }

    /// Inner product of two single bands.
    pub fn dot(&self, i: usize, other: &Wavefunction, j: usize) -> Complex64 {
        pwnum::cvec::dotc(self.band(i), other.band(j)).scale(self.ip_scale)
    }

    /// Returns `self * Q` (subspace rotation; Q is `n_bands x n_out`),
    /// computed on the process default backend.
    pub fn rotated(&self, q: &CMat) -> Wavefunction {
        self.rotated_with(&**default_backend(), q)
    }

    /// [`Self::rotated`] on an explicit compute backend.
    pub fn rotated_with(&self, backend: &dyn Backend, q: &CMat) -> Wavefunction {
        let mut out = Wavefunction {
            n_bands: q.cols(),
            ng: self.ng,
            ip_scale: self.ip_scale,
            data: vec![Complex64::ZERO; q.cols() * self.ng],
        };
        backend.rotate(&self.data, q, self.ng, &mut out.data);
        out
    }

    /// Cholesky-QR orthonormalization: `Φ ← Φ L^{-H}` with `Φ^HΦ = LL^H`.
    /// Fast; requires a numerically full-rank block.
    pub fn orthonormalize_cholesky(&mut self) {
        let backend = &**default_backend();
        let s = self.overlap_with(backend, self);
        let l = cholesky(&s).expect("orthonormalize: rank-deficient wavefunction block");
        let q = invert_lower(&l).herm();
        let mut out = vec![Complex64::ZERO; self.data.len()];
        backend.rotate(&self.data, &q, self.ng, &mut out);
        self.data = out;
    }

    /// Löwdin (symmetric) orthonormalization: `Φ ← Φ S^{-1/2}`.
    ///
    /// Produces the orthonormal set *closest* to the input — exactly what
    /// the PT-IM step needs after updating Φ (paper Alg. 1 line 13), since
    /// it perturbs the parallel-transport gauge least.
    pub fn orthonormalize_lowdin(&mut self) {
        let s = self.overlap(self);
        let e = eigh(&s);
        // S^{-1/2} = V diag(w^{-1/2}) V^H.
        let n = self.n_bands;
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            assert!(
                e.values[i] > 1e-14,
                "Löwdin orthonormalization: singular overlap (w={})",
                e.values[i]
            );
            let w = 1.0 / e.values[i].sqrt();
            for r in 0..n {
                m[(r, i)] = e.vectors[(r, i)].scale(w);
            }
        }
        let backend = &**default_backend();
        let q = backend.gemm(
            Complex64::ONE,
            &m,
            pwnum::gemm::Op::None,
            &e.vectors,
            pwnum::gemm::Op::ConjTrans,
            Complex64::ZERO,
            None,
        );
        let mut out = vec![Complex64::ZERO; self.data.len()];
        backend.rotate(&self.data, &q, self.ng, &mut out);
        self.data = out;
    }

    /// Transforms band `i` to real space into `out` (length Ng).
    pub fn to_real(&self, fft: &Fft3, i: usize, out: &mut [Complex64]) {
        out.copy_from_slice(self.band(i));
        fft.inverse(out);
    }

    /// Transforms all bands to real space (band-major buffer, parallel),
    /// on the process default backend.
    pub fn to_real_all(&self, fft: &Fft3) -> Vec<Complex64> {
        self.to_real_all_with(&**default_backend(), fft)
    }

    /// [`Self::to_real_all`] on an explicit compute backend (the backend
    /// owns the batched-FFT strategy).
    pub fn to_real_all_with(&self, backend: &dyn Backend, fft: &Fft3) -> Vec<Complex64> {
        let mut out = self.data.clone();
        fft.inverse_many_with(backend, &mut out, self.n_bands);
        out
    }

    /// Builds a block from band-major real-space values.
    pub fn from_real(grid: &PwGrid, fft: &Fft3, real: Vec<Complex64>) -> Self {
        Self::from_real_with(&**default_backend(), grid, fft, real)
    }

    /// [`Self::from_real`] on an explicit compute backend.
    pub fn from_real_with(
        backend: &dyn Backend,
        grid: &PwGrid,
        fft: &Fft3,
        mut real: Vec<Complex64>,
    ) -> Self {
        let ng = grid.len();
        assert_eq!(real.len() % ng, 0);
        let n_bands = real.len() / ng;
        fft.forward_many_with(backend, &mut real, n_bands);
        Wavefunction {
            n_bands,
            ng,
            ip_scale: grid.volume() / (ng as f64 * ng as f64),
            data: real,
        }
    }

    /// Applies the cutoff mask to every band.
    pub fn mask(&mut self, grid: &PwGrid) {
        for b in 0..self.n_bands {
            let band = bands::band_mut(&mut self.data, self.ng, b);
            grid.apply_mask(band);
        }
    }

    /// Max |coefficient| difference against another block.
    pub fn max_abs_diff(&self, other: &Wavefunction) -> f64 {
        pwnum::cvec::max_abs_diff(&self.data, &other.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Cell;

    fn test_grid() -> PwGrid {
        let cell = Cell::silicon_supercell(1, 1, 1);
        PwGrid::with_dims(&cell, 3.0, [8, 8, 8])
    }

    #[test]
    fn random_block_is_orthonormal() {
        let grid = test_grid();
        let wf = Wavefunction::random(&grid, 6, 42);
        let s = wf.overlap(&wf);
        assert!(s.max_abs_diff(&CMat::identity(6)) < 1e-10);
    }

    #[test]
    fn random_block_respects_mask() {
        let grid = test_grid();
        let wf = Wavefunction::random(&grid, 3, 1);
        for b in 0..3 {
            for (g, z) in wf.band(b).iter().enumerate() {
                if !grid.mask[g] {
                    assert_eq!(*z, Complex64::ZERO);
                }
            }
        }
    }

    #[test]
    fn real_space_normalization() {
        let grid = test_grid();
        let fft = grid.fft();
        let wf = Wavefunction::random(&grid, 2, 7);
        let mut r = vec![Complex64::ZERO; grid.len()];
        wf.to_real(&fft, 0, &mut r);
        let norm: f64 = r.iter().map(|z| z.norm_sqr()).sum::<f64>() * grid.dv();
        assert!((norm - 1.0).abs() < 1e-10, "real-space norm {norm}");
    }

    #[test]
    fn roundtrip_real_gspace() {
        let grid = test_grid();
        let fft = grid.fft();
        let wf = Wavefunction::random(&grid, 3, 3);
        let real = wf.to_real_all(&fft);
        let back = Wavefunction::from_real(&grid, &fft, real);
        assert!(wf.max_abs_diff(&back) < 1e-10);
    }

    #[test]
    fn lowdin_vs_cholesky_both_orthonormalize() {
        let grid = test_grid();
        let mut a = Wavefunction::random(&grid, 4, 9);
        // Deliberately deorthonormalize.
        let alpha = Complex64::new(0.3, 0.1);
        let b0 = a.band(0).to_vec();
        pwnum::cvec::axpy(alpha, &b0, a.band_mut(1));
        let mut b = a.clone();

        a.orthonormalize_cholesky();
        b.orthonormalize_lowdin();
        assert!(a.overlap(&a).max_abs_diff(&CMat::identity(4)) < 1e-9);
        assert!(b.overlap(&b).max_abs_diff(&CMat::identity(4)) < 1e-9);
    }

    #[test]
    fn lowdin_minimal_change_property() {
        // For an already orthonormal block, Löwdin is the identity.
        let grid = test_grid();
        let wf = Wavefunction::random(&grid, 5, 11);
        let mut l = wf.clone();
        l.orthonormalize_lowdin();
        assert!(wf.max_abs_diff(&l) < 1e-9);
    }

    #[test]
    fn rotation_by_unitary_preserves_orthonormality() {
        let grid = test_grid();
        let wf = Wavefunction::random(&grid, 3, 13);
        // Build a unitary from a random Hermitian matrix.
        let h = pwnum::cmat::random_hermitian(3, {
            let mut s = 5u64;
            move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }
        });
        let u = eigh(&h).vectors;
        let rot = wf.rotated(&u);
        assert!(rot.overlap(&rot).max_abs_diff(&CMat::identity(3)) < 1e-9);
    }
}
