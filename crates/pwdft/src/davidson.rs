//! Blocked, preconditioned Davidson eigensolver for the lowest Kohn–Sham
//! states.
//!
//! One iteration: Rayleigh–Ritz on the current block, residual
//! computation, kinetic-energy preconditioning, subspace expansion with
//! the preconditioned residuals, and a 2N-dimensional Ritz step. This is
//! the standard workhorse for plane-wave DFT at the block sizes used here
//! (tens of bands); robustness (rank filtering of the expanded subspace)
//! is favoured over micro-optimization.

use crate::gvec::PwGrid;
use crate::hamiltonian::Hamiltonian;
use crate::wavefunction::Wavefunction;
use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use pwnum::eigh;

/// Result of a Davidson solve.
pub struct EigResult {
    /// Ritz vectors (orthonormal, ascending eigenvalue order).
    pub phi: Wavefunction,
    /// Ritz values.
    pub eigs: Vec<f64>,
    /// Final maximum residual norm.
    pub residual: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Runs up to `max_iter` Davidson iterations from the starting block,
/// stopping when every residual norm falls below `tol`.
pub fn davidson(
    h: &Hamiltonian,
    grid: &PwGrid,
    mut phi: Wavefunction,
    max_iter: usize,
    tol: f64,
) -> EigResult {
    let n = phi.n_bands;
    let ng = phi.ng;
    let mut eigs = vec![0.0; n];
    let mut res_max = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..max_iter {
        iterations = it + 1;
        // Rayleigh-Ritz on the current block.
        let mut hphi = h.apply(&phi);
        let hm = phi.overlap(&hphi).hermitian_part();
        let e = eigh(&hm);
        phi = phi.rotated(&e.vectors);
        hphi = hphi.rotated(&e.vectors);
        eigs.copy_from_slice(&e.values);

        // Residuals r_i = Hφ_i - ε_i φ_i.
        let mut resid = hphi.clone();
        for (i, &ei) in eigs.iter().enumerate() {
            let band_phi = phi.band(i).to_vec();
            pwnum::cvec::axpy(Complex64::from_re(-ei), &band_phi, resid.band_mut(i));
        }
        res_max = (0..n)
            .map(|i| (pwnum::cvec::norm_sqr(resid.band(i)) * phi.ip_scale).sqrt())
            .fold(0.0f64, f64::max);
        if res_max < tol {
            break;
        }

        // Precondition: t_i(G) = -r_i(G) / max(|G|²/2 - ε_i, floor).
        let mut t = resid;
        for (i, &ei) in eigs.iter().enumerate() {
            let band = t.band_mut(i);
            for (g, z) in band.iter_mut().enumerate() {
                let denom = (0.5 * grid.g2[g] - ei).max(0.25);
                *z = z.scale(-1.0 / denom);
            }
            grid.apply_mask(band);
        }

        // Normalize each direction first: residual norms shrink as the
        // iteration converges, and the rank filter below must judge
        // *linear dependence*, not magnitude.
        for i in 0..n {
            let band = t.band_mut(i);
            let nrm = pwnum::cvec::norm(band);
            if nrm > 1e-300 {
                pwnum::cvec::rscale(1.0 / nrm, band);
            }
        }

        // Project out the current block: t -= φ (φ^H t).
        let proj = phi.overlap(&t);
        let mut corr = vec![Complex64::ZERO; t.data.len()];
        pwnum::bands::rotate(&phi.data, &proj, ng, &mut corr);
        for (a, b) in t.data.iter_mut().zip(&corr) {
            *a -= *b;
        }

        // Filter near-null directions and orthonormalize t.
        let keep = filtered_orthonormalize(&mut t, 1e-8);
        if keep == 0 {
            break; // Nothing new to add: converged to working precision.
        }

        // Ritz in the expanded space [φ, t'].
        let ht = h.apply(&t);
        let dim = n + keep;
        let mut big_h = CMat::zeros(dim, dim);
        let h_pp = phi.overlap(&hphi);
        let h_pt = phi.overlap(&ht);
        let h_tt = t.overlap(&ht);
        for i in 0..n {
            for j in 0..n {
                big_h[(i, j)] = h_pp[(i, j)];
            }
            for j in 0..keep {
                big_h[(i, n + j)] = h_pt[(i, j)];
                big_h[(n + j, i)] = h_pt[(i, j)].conj();
            }
        }
        for i in 0..keep {
            for j in 0..keep {
                big_h[(n + i, n + j)] = h_tt[(i, j)];
            }
        }
        let be = eigh(&big_h.hermitian_part());
        // New block = lowest n Ritz vectors of the expanded space.
        let mut new_phi = Wavefunction::zeros_like(&phi);
        for col in 0..n {
            let q_phi = CMat::from_fn(n, 1, |r, _| be.vectors[(r, col)]);
            let q_t = CMat::from_fn(keep, 1, |r, _| be.vectors[(n + r, col)]);
            let dst = new_phi.band_mut(col);
            let mut tmp = vec![Complex64::ZERO; ng];
            pwnum::bands::rotate(&phi.data, &q_phi, ng, &mut tmp);
            dst.copy_from_slice(&tmp);
            pwnum::bands::rotate_acc(Complex64::ONE, &t.data, &q_t, ng, dst);
        }
        phi = new_phi;
        phi.orthonormalize_cholesky();
    }

    EigResult { phi, eigs, residual: res_max, iterations }
}

/// Löwdin-orthonormalizes a block, dropping directions whose overlap
/// eigenvalue is below `eps`; returns the retained count and truncates
/// the block in place.
fn filtered_orthonormalize(t: &mut Wavefunction, eps: f64) -> usize {
    let s = t.overlap(t);
    let e = eigh(&s);
    let n = t.n_bands;
    let kept: Vec<usize> = (0..n).filter(|&i| e.values[i] > eps).collect();
    if kept.is_empty() {
        t.n_bands = 0;
        t.data.clear();
        return 0;
    }
    let mut q = CMat::zeros(n, kept.len());
    for (c, &i) in kept.iter().enumerate() {
        let w = 1.0 / e.values[i].sqrt();
        for r in 0..n {
            q[(r, c)] = e.vectors[(r, i)].scale(w);
        }
    }
    let rotated = t.rotated(&q);
    *t = rotated;
    kept.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::Exchange;
    use crate::lattice::Cell;

    #[test]
    fn free_electron_spectrum() {
        // Zero potential: eigenvalues must be the lowest |G|²/2 values.
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 3.0, [8, 8, 8]);
        let zeros = vec![0.0; grid.len()];
        let h = Hamiltonian::new(&grid, &zeros, &zeros, &zeros, 0.0, Exchange::None, None);
        let phi0 = Wavefunction::random(&grid, 5, 3);
        let r = davidson(&h, &grid, phi0, 60, 1e-8);
        // Exact: sorted |G|²/2 over masked G's.
        let mut kin: Vec<f64> =
            grid.g2.iter().zip(&grid.mask).filter(|(_, &m)| m).map(|(g, _)| 0.5 * g).collect();
        kin.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for i in 0..5 {
            assert!(
                (r.eigs[i] - kin[i]).abs() < 1e-6,
                "state {i}: {} vs {}",
                r.eigs[i],
                kin[i]
            );
        }
        assert!(r.residual < 1e-6);
    }

    #[test]
    fn cosine_potential_lowers_ground_state() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 3.0, [8, 8, 8]);
        let zeros = vec![0.0; grid.len()];
        let v: Vec<f64> = (0..grid.len())
            .map(|i| {
                let r = grid.r_coord(i);
                -0.8 * (2.0 * std::f64::consts::PI * r[0] / grid.lengths[0]).cos()
            })
            .collect();
        let h0 = Hamiltonian::new(&grid, &zeros, &zeros, &zeros, 0.0, Exchange::None, None);
        let hv = Hamiltonian::new(&grid, &v, &zeros, &zeros, 0.0, Exchange::None, None);
        let e0 = davidson(&h0, &grid, Wavefunction::random(&grid, 3, 3), 50, 1e-7).eigs[0];
        let ev = davidson(&hv, &grid, Wavefunction::random(&grid, 3, 3), 50, 1e-7).eigs[0];
        assert!(ev < e0, "attractive potential must lower E0: {ev} vs {e0}");
    }

    #[test]
    fn eigenvectors_are_orthonormal_and_satisfy_heq() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 3.0, [8, 8, 8]);
        let zeros = vec![0.0; grid.len()];
        let v: Vec<f64> = (0..grid.len())
            .map(|i| {
                let r = grid.r_coord(i);
                -0.4 * (2.0 * std::f64::consts::PI * r[2] / grid.lengths[2]).cos()
                    - 0.2 * (2.0 * std::f64::consts::PI * r[1] / grid.lengths[1]).sin()
            })
            .collect();
        let h = Hamiltonian::new(&grid, &v, &zeros, &zeros, 0.0, Exchange::None, None);
        let r = davidson(&h, &grid, Wavefunction::random(&grid, 4, 11), 80, 1e-8);
        let s = r.phi.overlap(&r.phi);
        assert!(s.max_abs_diff(&CMat::identity(4)) < 1e-8);
        // H φ_i ≈ ε_i φ_i.
        let hphi = h.apply(&r.phi);
        for i in 0..4 {
            let mut diff = hphi.band(i).to_vec();
            pwnum::cvec::axpy(Complex64::from_re(-r.eigs[i]), r.phi.band(i), &mut diff);
            let rn = (pwnum::cvec::norm_sqr(&diff) * r.phi.ip_scale).sqrt();
            assert!(rn < 1e-6, "residual of state {i}: {rn}");
        }
    }
}
