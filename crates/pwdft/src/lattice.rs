//! Supercell geometry and atomic configurations.
//!
//! The paper's physical systems are diamond-cubic silicon supercells
//! (8 atoms per cubic unit cell, a = 5.43 Å) from 48 to 3072 atoms
//! (Sec. VI). Cells here are orthorhombic — all silicon supercells built
//! from cubic unit cells are — which keeps the G-vector algebra diagonal.

/// Hartree atomic units: 1 Å in bohr.
pub const ANGSTROM: f64 = 1.0 / 0.529177210903;
/// Silicon cubic lattice constant (5.43 Å) in bohr.
pub const SI_LATTICE_BOHR: f64 = 5.43 * ANGSTROM;
/// Valence charge of the silicon pseudo-atom (3s² 3p²).
pub const SI_VALENCE: f64 = 4.0;

/// An atomic species (only silicon is used by the paper, but the
/// pseudopotential layer is parameterized on this).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Species {
    /// Valence charge Z_v.
    pub z_valence: f64,
    /// Gaussian width of the compensating core charge (bohr).
    pub rc: f64,
    /// Short-range repulsive core amplitude (hartree·bohr³).
    pub core_amp: f64,
    /// Short-range repulsive core width (bohr).
    pub core_width: f64,
}

impl Species {
    /// Analytic soft local pseudopotential for silicon
    /// (Appelbaum–Hamann-like; see DESIGN.md §2 for the substitution
    /// rationale).
    pub fn silicon() -> Species {
        Species { z_valence: SI_VALENCE, rc: 1.1, core_amp: 6.0, core_width: 0.8 }
    }
}

/// An atom: species + position in bohr (Cartesian).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Species parameters.
    pub species: Species,
    /// Cartesian position (bohr), inside the cell.
    pub pos: [f64; 3],
}

/// An orthorhombic periodic supercell with a basis of atoms.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Edge lengths (bohr).
    pub lengths: [f64; 3],
    /// Atoms in the cell.
    pub atoms: Vec<Atom>,
}

impl Cell {
    /// Cell volume Ω (bohr³).
    pub fn volume(&self) -> f64 {
        self.lengths[0] * self.lengths[1] * self.lengths[2]
    }

    /// Total valence electron count.
    pub fn n_electrons(&self) -> f64 {
        self.atoms.iter().map(|a| a.species.z_valence).sum()
    }

    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Builds an `n1 x n2 x n3` supercell of the 8-atom diamond-cubic
    /// silicon unit cell (paper Sec. VI; 48 atoms = 1×2×3, 3072 = 6×8×8).
    pub fn silicon_supercell(n1: usize, n2: usize, n3: usize) -> Cell {
        assert!(n1 > 0 && n2 > 0 && n3 > 0);
        let a = SI_LATTICE_BOHR;
        let frac: [[f64; 3]; 8] = [
            [0.0, 0.0, 0.0],
            [0.0, 0.5, 0.5],
            [0.5, 0.0, 0.5],
            [0.5, 0.5, 0.0],
            [0.25, 0.25, 0.25],
            [0.25, 0.75, 0.75],
            [0.75, 0.25, 0.75],
            [0.75, 0.75, 0.25],
        ];
        let si = Species::silicon();
        let mut atoms = Vec::with_capacity(8 * n1 * n2 * n3);
        for c1 in 0..n1 {
            for c2 in 0..n2 {
                for c3 in 0..n3 {
                    for f in &frac {
                        atoms.push(Atom {
                            species: si,
                            pos: [
                                (f[0] + c1 as f64) * a,
                                (f[1] + c2 as f64) * a,
                                (f[2] + c3 as f64) * a,
                            ],
                        });
                    }
                }
            }
        }
        Cell { lengths: [n1 as f64 * a, n2 as f64 * a, n3 as f64 * a], atoms }
    }

    /// Number of occupied Kohn–Sham orbitals (spin-degenerate).
    pub fn n_occupied(&self) -> usize {
        let ne = self.n_electrons();
        ((ne / 2.0).ceil()) as usize
    }

    /// Paper's band-count convention: `N = Ne/2 + extra` where
    /// `extra = n_atoms` in accuracy tests and `n_atoms/2` otherwise.
    pub fn n_bands(&self, extra_per_atom: f64) -> usize {
        self.n_occupied() + (extra_per_atom * self.n_atoms() as f64).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cell_has_8_atoms() {
        let c = Cell::silicon_supercell(1, 1, 1);
        assert_eq!(c.n_atoms(), 8);
        assert!((c.n_electrons() - 32.0).abs() < 1e-12);
        assert_eq!(c.n_occupied(), 16);
        let a = SI_LATTICE_BOHR;
        assert!((c.volume() - a * a * a).abs() < 1e-9);
    }

    #[test]
    fn paper_supercells() {
        // 48-atom = 1x2x3; 384-atom = 4x4x3 (any factorization of 48 cells);
        // here check the sizes used in the paper's tables.
        assert_eq!(Cell::silicon_supercell(1, 2, 3).n_atoms(), 48);
        assert_eq!(Cell::silicon_supercell(4, 4, 3).n_atoms(), 384);
        assert_eq!(Cell::silicon_supercell(4, 6, 8).n_atoms(), 1536);
        assert_eq!(Cell::silicon_supercell(6, 8, 8).n_atoms(), 3072);
    }

    #[test]
    fn band_count_conventions() {
        // Paper Sec. VI: 1536 atoms -> N = 1536*2 + 768 = 3840.
        let c = Cell::silicon_supercell(4, 6, 8);
        assert_eq!(c.n_bands(0.5), 3840);
        // Accuracy tests: 8 atoms, extra = n_atom -> 16 + 8 = 24 states.
        let c8 = Cell::silicon_supercell(1, 1, 1);
        assert_eq!(c8.n_bands(1.0), 24);
    }

    #[test]
    fn atoms_inside_cell() {
        let c = Cell::silicon_supercell(2, 1, 1);
        for at in &c.atoms {
            for d in 0..3 {
                assert!(at.pos[d] >= 0.0 && at.pos[d] < c.lengths[d] + 1e-9);
            }
        }
        // Minimum interatomic distance in diamond Si is sqrt(3)/4 * a.
        let dmin_expect = 3f64.sqrt() / 4.0 * SI_LATTICE_BOHR;
        let mut dmin = f64::INFINITY;
        for i in 0..c.n_atoms() {
            for j in i + 1..c.n_atoms() {
                let mut d2 = 0.0;
                for k in 0..3 {
                    let mut dx = (c.atoms[i].pos[k] - c.atoms[j].pos[k]).abs();
                    dx = dx.min(c.lengths[k] - dx);
                    d2 += dx * dx;
                }
                dmin = dmin.min(d2.sqrt());
            }
        }
        assert!((dmin - dmin_expect).abs() < 1e-6);
    }
}
