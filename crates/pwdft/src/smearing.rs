//! Fermi–Dirac occupations for finite-temperature calculations.
//!
//! The paper runs at T = 8000 K, where silicon's gap states are
//! fractionally occupied — this is what makes σ a genuine mixed-state
//! matrix and forces the O(N³) baseline cost that PT-IM's diagonalization
//! attacks. Spin-degenerate convention: each orbital holds `2 f` electrons
//! with `f ∈ [0, 1]`.

/// Boltzmann constant in hartree/kelvin.
pub const KB_HARTREE: f64 = 3.166_811_563e-6;

/// The shared occupation cutoff below which a Fermi–Dirac weight is
/// treated as zero by the exchange screening — re-exported here so the
/// SCF and TD paths quote one constant (defined in [`crate::fock`],
/// the layer that consumes it).
pub use crate::fock::DEFAULT_OCC_CUTOFF;

/// Fermi–Dirac occupation `f(ε) = 1/(1 + e^{(ε-μ)/kT})`, with the T → 0
/// limit handled as a step function.
#[inline]
pub fn fermi(eps: f64, mu: f64, kt: f64) -> f64 {
    if kt <= 0.0 {
        return if eps < mu {
            1.0
        } else if eps > mu {
            0.0
        } else {
            0.5
        };
    }
    let x = (eps - mu) / kt;
    if x > 40.0 {
        0.0
    } else if x < -40.0 {
        1.0
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Finds the chemical potential μ such that `2 Σ_i f(ε_i) = n_electrons`
/// by bisection, then returns `(μ, occupations)`.
///
/// # Panics
/// Panics if the electron count is not representable (fewer than
/// `n_electrons/2` states).
pub fn occupations(eigs: &[f64], n_electrons: f64, kt: f64) -> (f64, Vec<f64>) {
    assert!(
        2.0 * eigs.len() as f64 + 1e-9 >= n_electrons,
        "not enough states ({}) for {} electrons",
        eigs.len(),
        n_electrons
    );
    let count = |mu: f64| -> f64 { 2.0 * eigs.iter().map(|&e| fermi(e, mu, kt)).sum::<f64>() };
    let lo0 = eigs.iter().cloned().fold(f64::INFINITY, f64::min) - 50.0 * kt.max(1e-3) - 10.0;
    let hi0 = eigs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 50.0 * kt.max(1e-3) + 10.0;
    let (mut lo, mut hi) = (lo0, hi0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count(mid) < n_electrons {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mu = 0.5 * (lo + hi);
    let occ: Vec<f64> = eigs.iter().map(|&e| fermi(e, mu, kt)).collect();
    (mu, occ)
}

/// Electronic entropy `S = -2 k_B Σ_i [f ln f + (1-f) ln(1-f)]`
/// (hartree/kelvin·k_B units folded in: returns `-T·S` contribution when
/// multiplied by `-T`... this function returns S in units of k_B).
pub fn entropy(occ: &[f64]) -> f64 {
    let mut s = 0.0;
    for &f in occ {
        if f > 1e-12 && f < 1.0 - 1e-12 {
            s -= 2.0 * (f * f.ln() + (1.0 - f) * (1.0 - f).ln());
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupation_bounds_and_monotone() {
        let kt = 0.02;
        let mut prev = 1.0;
        for i in 0..20 {
            let f = fermi(-0.5 + i as f64 * 0.05, 0.0, kt);
            assert!((0.0..=1.0).contains(&f));
            assert!(f <= prev + 1e-15, "f must decrease with ε");
            prev = f;
        }
        assert!((fermi(0.0, 0.0, kt) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_temperature_is_step() {
        assert_eq!(fermi(-0.1, 0.0, 0.0), 1.0);
        assert_eq!(fermi(0.1, 0.0, 0.0), 0.0);
        assert_eq!(fermi(0.0, 0.0, 0.0), 0.5);
    }

    #[test]
    fn chemical_potential_conserves_count() {
        let eigs: Vec<f64> = (0..24).map(|i| -0.4 + 0.03 * i as f64).collect();
        for &ne in &[8.0, 16.0, 32.0] {
            for &t in &[300.0, 8000.0] {
                let kt = KB_HARTREE * t;
                let (_, occ) = occupations(&eigs, ne, kt);
                let total: f64 = 2.0 * occ.iter().sum::<f64>();
                assert!((total - ne).abs() < 1e-9, "T={t} Ne={ne}: got {total}");
            }
        }
    }

    #[test]
    fn paper_temperature_gives_fractional_occupations() {
        // At 8000 K with a ~0.03 Ha level spacing near the gap, multiple
        // states above the HOMO are fractionally occupied — the regime the
        // paper targets.
        let eigs: Vec<f64> = (0..24).map(|i| -0.4 + 0.03 * i as f64).collect();
        let kt = KB_HARTREE * 8000.0; // ≈ 0.0253 Ha
        let (_, occ) = occupations(&eigs, 32.0, kt);
        let fractional = occ.iter().filter(|&&f| f > 0.01 && f < 0.99).count();
        assert!(fractional >= 4, "expected several fractional occupations, got {fractional}");
    }

    #[test]
    fn low_temperature_recovers_aufbau() {
        let eigs: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let (_, occ) = occupations(&eigs, 8.0, KB_HARTREE * 1.0);
        for (i, f) in occ.iter().enumerate() {
            if i < 4 {
                assert!(*f > 0.999, "state {i}: {f}");
            } else {
                assert!(*f < 1e-3, "state {i}: {f}");
            }
        }
    }

    #[test]
    fn entropy_peaks_at_half_filling() {
        assert!(entropy(&[0.5]) > entropy(&[0.1]));
        assert!(entropy(&[0.5]) > entropy(&[0.9]));
        assert!(entropy(&[0.0, 1.0]).abs() < 1e-12);
        // Max value 2 ln 2 per state.
        assert!((entropy(&[0.5]) - 2.0 * 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_states_share_occupation() {
        let eigs = vec![0.0, 0.0, 0.0, 0.0];
        let (_, occ) = occupations(&eigs, 4.0, 0.01);
        for f in &occ {
            assert!((f - 0.5).abs() < 1e-9);
        }
    }
}
