//! Spectral analysis of the Kohn–Sham eigenvalues: density of states and
//! gap detection.
//!
//! At the paper's 8000 K the silicon gap is comparable to k_B T, which is
//! why occupations smear and σ becomes a genuine matrix; these helpers
//! make that regime inspectable (used by examples and the harness output).

/// Gaussian-broadened density of states sampled on a uniform energy grid.
#[derive(Clone, Debug)]
pub struct Dos {
    /// Energy samples (hartree).
    pub energies: Vec<f64>,
    /// DOS values (states/hartree, spin-degenerate).
    pub values: Vec<f64>,
}

/// Computes the DOS of `eigs` with Gaussian broadening `sigma` over
/// `[e_min, e_max]` with `n` samples.
pub fn dos(eigs: &[f64], sigma: f64, e_min: f64, e_max: f64, n: usize) -> Dos {
    assert!(sigma > 0.0 && n >= 2 && e_max > e_min);
    let norm = 2.0 / (sigma * (2.0 * std::f64::consts::PI).sqrt()); // spin factor 2
    let mut energies = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for k in 0..n {
        let e = e_min + (e_max - e_min) * k as f64 / (n - 1) as f64;
        let mut v = 0.0;
        for &ei in eigs {
            let x = (e - ei) / sigma;
            if x.abs() < 8.0 {
                v += norm * (-0.5 * x * x).exp();
            }
        }
        energies.push(e);
        values.push(v);
    }
    Dos { energies, values }
}

/// The largest gap between consecutive (sorted) eigenvalues that
/// straddles the chemical potential — the band gap for a gapped system,
/// ~0 for a metal. Returns `(gap, homo, lumo)`.
pub fn fundamental_gap(eigs: &[f64], mu: f64) -> Option<(f64, f64, f64)> {
    let mut sorted = eigs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN eigenvalue"));
    let mut best: Option<(f64, f64, f64)> = None;
    for w in sorted.windows(2) {
        if w[0] <= mu && mu <= w[1] {
            let gap = w[1] - w[0];
            if best.map(|(g, _, _)| gap > g).unwrap_or(true) {
                best = Some((gap, w[0], w[1]));
            }
        }
    }
    best
}

/// Number of states with occupation meaningfully between 0 and 1 — the
/// size of the "active" fractional manifold that drives the paper's
/// mixed-state costs.
pub fn fractional_count(occ: &[f64], threshold: f64) -> usize {
    occ.iter().filter(|&&f| f > threshold && f < 1.0 - threshold).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dos_integrates_to_state_count() {
        let eigs = vec![-0.5, -0.3, -0.3, 0.1, 0.4];
        let d = dos(&eigs, 0.02, -1.0, 1.0, 4001);
        let de = (d.energies[1] - d.energies[0]).abs();
        let integral: f64 = d.values.iter().sum::<f64>() * de;
        // 2 states per eigenvalue (spin), 5 eigenvalues.
        assert!((integral - 10.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn dos_peaks_at_degenerate_level() {
        let eigs = vec![-0.3, -0.3, 0.5];
        let d = dos(&eigs, 0.01, -1.0, 1.0, 2001);
        let peak_idx =
            d.values.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!((d.energies[peak_idx] + 0.3).abs() < 0.01);
    }

    #[test]
    fn gap_detection() {
        let eigs = vec![-0.4, -0.35, -0.3, 0.1, 0.15];
        // μ inside the gap.
        let (gap, homo, lumo) = fundamental_gap(&eigs, -0.1).unwrap();
        assert!((gap - 0.4).abs() < 1e-12);
        assert!((homo + 0.3).abs() < 1e-12);
        assert!((lumo - 0.1).abs() < 1e-12);
        // μ outside every interval -> None.
        assert!(fundamental_gap(&eigs, 0.5).is_none());
    }

    #[test]
    fn fractional_manifold_counting() {
        let occ = vec![1.0, 0.99, 0.7, 0.5, 0.2, 0.001, 0.0];
        assert_eq!(fractional_count(&occ, 0.01), 3);
        assert_eq!(fractional_count(&occ, 0.0005), 5);
    }
}
