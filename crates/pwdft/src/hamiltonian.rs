//! The Kohn–Sham Hamiltonian `H = T + V_loc + V_H + V_xc + V_ext + α·V_x`.
//!
//! `apply` is the `HΦ` of the paper: kinetic in G-space, all local
//! potentials fused into one real-space multiply, and the exchange term
//! either as the dense (diagonalized) Fock operator or as an ACE
//! operator — exactly the two modes PT-IM alternates between.

use crate::ace::AceOperator;
use crate::fock::FockOperator;
use crate::gvec::PwGrid;
use crate::wavefunction::Wavefunction;
use crate::xc;
use pwfft::Fft3;
use pwnum::backend::{default_backend, Backend, BackendHandle};
use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use pwnum::cvec;
use pwnum::parallel::par_chunks_mut;

/// How the exchange term enters `HΦ`.
pub enum Exchange {
    /// Semi-local only (no Fock exchange).
    None,
    /// Dense screened Fock exchange from natural orbitals (real space)
    /// with occupations — O(N²) Poisson solves per application.
    Dense {
        /// Natural orbitals `φ̃ = ΦQ` in real space, band-major.
        nat_r: Vec<Complex64>,
        /// Occupations `d_i` of the natural orbitals.
        occ: Vec<f64>,
    },
    /// Low-rank ACE operator — two GEMMs per application.
    Ace(AceOperator),
}

/// Hartree potential and energy from the density:
/// `V_H(G) = 4π ρ_G / G²` (G ≠ 0), `E_H = ½ ∫ V_H ρ dV`.
pub fn hartree_potential(grid: &PwGrid, fft: &Fft3, rho: &[f64]) -> (Vec<f64>, f64) {
    hartree_potential_with(&**default_backend(), grid, fft, rho)
}

/// [`hartree_potential`] on an explicit compute backend.
pub fn hartree_potential_with(
    backend: &dyn Backend,
    grid: &PwGrid,
    fft: &Fft3,
    rho: &[f64],
) -> (Vec<f64>, f64) {
    let ng = grid.len();
    assert_eq!(rho.len(), ng);
    let mut work: Vec<Complex64> = rho.iter().map(|&r| Complex64::from_re(r)).collect();
    fft.forward_many_with(backend, &mut work, 1);
    // 4π/G² with the jellium convention at G = 0. Applied inline: the
    // kernel is a pure function of the grid, and materializing it per
    // call would cost an ng-sized allocation every SCF iteration.
    let four_pi = 4.0 * std::f64::consts::PI;
    for (w, &g2) in work.iter_mut().zip(&grid.g2) {
        if g2 < 1e-12 {
            *w = Complex64::ZERO;
        } else {
            *w = w.scale(four_pi / g2);
        }
    }
    fft.inverse_many_with(backend, &mut work, 1);
    let vh: Vec<f64> = work.iter().map(|z| z.re).collect();
    let eh = 0.5 * vh.iter().zip(rho).map(|(v, r)| v * r).sum::<f64>() * grid.dv();
    (vh, eh)
}

/// The assembled Hamiltonian for one time/SCF point.
pub struct Hamiltonian<'g> {
    /// Grid reference.
    pub grid: &'g PwGrid,
    /// FFT plans for the grid.
    pub fft: Fft3,
    /// Total local potential `V_loc + V_H + V_xc + V_ext` on the grid.
    pub vtot: Vec<f64>,
    /// Hybrid mixing fraction α (0 for semilocal).
    pub alpha: f64,
    /// Exchange mode.
    pub exchange: Exchange,
    /// Dense Fock machinery (kernel + plans), needed for `Exchange::Dense`
    /// and for building ACE operators.
    pub fock: Option<FockOperator<'g>>,
    /// Compute backend every FFT/band primitive of `apply` routes through.
    pub backend: BackendHandle,
}

impl<'g> Hamiltonian<'g> {
    /// Assembles the Hamiltonian from potential pieces.
    /// `vloc` is the static ionic potential, `vhxc` the density-dependent
    /// Hartree+XC part, `vext` the (possibly zero) time-dependent field.
    pub fn new(
        grid: &'g PwGrid,
        vloc: &[f64],
        vhxc: &[f64],
        vext: &[f64],
        alpha: f64,
        exchange: Exchange,
        fock: Option<FockOperator<'g>>,
    ) -> Self {
        // Inherit the Fock operator's backend when present so the dense
        // exchange and the local parts run on the same device model.
        let backend = fock
            .as_ref()
            .map(|f| f.backend().clone())
            .unwrap_or_else(|| default_backend().clone());
        Self::with_backend(grid, vloc, vhxc, vext, alpha, exchange, fock, backend)
    }

    /// [`Self::new`] with an explicit compute backend. When a
    /// [`FockOperator`] is supplied it must share the same backend so
    /// one `apply` never splits across two device models.
    #[allow(clippy::too_many_arguments)]
    pub fn with_backend(
        grid: &'g PwGrid,
        vloc: &[f64],
        vhxc: &[f64],
        vext: &[f64],
        alpha: f64,
        exchange: Exchange,
        fock: Option<FockOperator<'g>>,
        backend: BackendHandle,
    ) -> Self {
        assert_eq!(vloc.len(), grid.len());
        assert_eq!(vhxc.len(), grid.len());
        assert_eq!(vext.len(), grid.len());
        if let Some(f) = &fock {
            assert_eq!(
                f.backend().name(),
                backend.name(),
                "Hamiltonian and its FockOperator must share one backend kind"
            );
        }
        let vtot: Vec<f64> =
            vloc.iter().zip(vhxc).zip(vext).map(|((a, b), c)| a + b + c).collect();
        Hamiltonian { grid, fft: grid.fft(), vtot, alpha, exchange, fock, backend }
    }

    /// Computes `H ψ` for a block of orbitals (G-space in, G-space out,
    /// cutoff-masked).
    pub fn apply(&self, psi: &Wavefunction) -> Wavefunction {
        let ng = self.grid.len();
        assert_eq!(psi.ng, ng);
        let be = &*self.backend;
        let mut out = Wavefunction::zeros_like(psi);

        // Real-space copies of the input bands (batched inverse FFT).
        let psi_r = psi.to_real_all_with(be, &self.fft);

        // Dense exchange acts on the real-space block as a whole.
        let vx_r: Option<Vec<Complex64>> = match &self.exchange {
            Exchange::Dense { nat_r, occ } => {
                let fock = self
                    .fock
                    .as_ref()
                    .expect("Exchange::Dense requires a FockOperator");
                Some(fock.apply_diag(nat_r, occ, &psi_r))
            }
            _ => None,
        };

        // Potential part in real space, band-parallel: V_tot ψ (+ α·Vx).
        let mut work = be.take_buffer_copy(&psi_r);
        par_chunks_mut(&mut work, ng, |b, wband| {
            for (w, &v) in wband.iter_mut().zip(&self.vtot) {
                *w = w.scale(v);
            }
            if let Some(vx) = &vx_r {
                cvec::axpy(Complex64::from_re(self.alpha), &vx[b * ng..(b + 1) * ng], wband);
            }
        });
        // Back to G-space as one batched forward FFT.
        self.fft.forward_many_with(be, &mut work, psi.n_bands);
        // Kinetic + potential in G space, band-parallel.
        par_chunks_mut(&mut out.data, ng, |b, ob| {
            let band_in = &psi.data[b * ng..(b + 1) * ng];
            let wband = &work[b * ng..(b + 1) * ng];
            for ((o, w), (&g2, c)) in
                ob.iter_mut().zip(wband).zip(self.grid.g2.iter().zip(band_in))
            {
                *o = *w + c.scale(0.5 * g2);
            }
        });
        be.recycle_buffer(work);

        // ACE exchange acts in G-space on the whole block.
        if let Exchange::Ace(ace) = &self.exchange {
            ace.apply_add(psi, self.alpha, &mut out.data);
        }

        out.mask(self.grid);
        out
    }

    /// Subspace matrix `Hm[i][j] = <ψ_i|H|ψ_j>` (the `Φ*HΦ` of the σ
    /// dynamics, Eq. 6).
    pub fn matrix_elements(&self, psi: &Wavefunction) -> CMat {
        let hpsi = self.apply(psi);
        psi.overlap_with(&*self.backend, &hpsi).hermitian_part()
    }
}

impl Wavefunction {
    /// Zero block with the same shape/scales as `other`.
    pub fn zeros_like(other: &Wavefunction) -> Wavefunction {
        Wavefunction {
            n_bands: other.n_bands,
            ng: other.ng,
            ip_scale: other.ip_scale,
            data: vec![Complex64::ZERO; other.data.len()],
        }
    }
}

/// Density-dependent potentials + energies in one bundle.
pub struct HxcResult {
    /// `V_H + V_xc` on the grid.
    pub vhxc: Vec<f64>,
    /// Hartree energy.
    pub e_hartree: f64,
    /// Semi-local XC energy.
    pub e_xc: f64,
}

/// Builds `V_H + V_xc` and the corresponding energies from a density.
pub fn build_hxc(grid: &PwGrid, fft: &Fft3, rho: &[f64]) -> HxcResult {
    build_hxc_with(&**default_backend(), grid, fft, rho)
}

/// [`build_hxc`] on an explicit compute backend.
pub fn build_hxc_with(
    backend: &dyn Backend,
    grid: &PwGrid,
    fft: &Fft3,
    rho: &[f64],
) -> HxcResult {
    let (vh, e_hartree) = hartree_potential_with(backend, grid, fft, rho);
    let mut vxc = vec![0.0; grid.len()];
    let e_xc = xc::xc_energy_potential(rho, grid.dv(), &mut vxc);
    let vhxc: Vec<f64> = vh.iter().zip(&vxc).map(|(a, b)| a + b).collect();
    HxcResult { vhxc, e_hartree, e_xc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Cell;
    use pwnum::cvec;

    fn setup() -> (Cell, PwGrid) {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 3.0, [8, 8, 8]);
        (cell, grid)
    }

    #[test]
    fn hartree_of_cosine_density() {
        // ρ(r) = cos(G1·x) has V_H = (4π/G1²) cos(G1 x) exactly.
        let (cell, grid) = setup();
        let fft = grid.fft();
        let g1 = 2.0 * std::f64::consts::PI / cell.lengths[0];
        let rho: Vec<f64> = (0..grid.len())
            .map(|i| {
                let r = grid.r_coord(i);
                (g1 * r[0]).cos()
            })
            .collect();
        let (vh, _) = hartree_potential(&grid, &fft, &rho);
        let scale = 4.0 * std::f64::consts::PI / (g1 * g1);
        for i in 0..grid.len() {
            let r = grid.r_coord(i);
            let expect = scale * (g1 * r[0]).cos();
            assert!((vh[i] - expect).abs() < 1e-9, "point {i}: {} vs {expect}", vh[i]);
        }
    }

    #[test]
    fn hartree_energy_positive_for_inhomogeneous_density() {
        let (_, grid) = setup();
        let fft = grid.fft();
        let rho: Vec<f64> = (0..grid.len())
            .map(|i| {
                let r = grid.r_coord(i);
                1.0 + 0.3 * (2.0 * std::f64::consts::PI * r[1] / grid.lengths[1]).sin()
            })
            .collect();
        let (_, eh) = hartree_potential(&grid, &fft, &rho);
        assert!(eh > 0.0, "Hartree energy {eh}");
        // Uniform density has zero Hartree energy under the jellium convention.
        let (_, eh0) = hartree_potential(&grid, &fft, &vec![1.0; grid.len()]);
        assert!(eh0.abs() < 1e-12);
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let (_, grid) = setup();
        let zeros = vec![0.0; grid.len()];
        let vloc: Vec<f64> = (0..grid.len())
            .map(|i| {
                let r = grid.r_coord(i);
                -0.5 * (2.0 * std::f64::consts::PI * r[0] / grid.lengths[0]).cos()
            })
            .collect();
        let h = Hamiltonian::new(&grid, &vloc, &zeros, &zeros, 0.0, Exchange::None, None);
        let psi = Wavefunction::random(&grid, 4, 5);
        let hm = {
            let hpsi = h.apply(&psi);
            psi.overlap(&hpsi)
        };
        assert!(hm.hermiticity_error() < 1e-9, "err {}", hm.hermiticity_error());
    }

    #[test]
    fn kinetic_eigenstate_of_free_hamiltonian() {
        // With zero potential, a single plane wave is an eigenstate with
        // eigenvalue |G|²/2.
        let (_, grid) = setup();
        let zeros = vec![0.0; grid.len()];
        let h = Hamiltonian::new(&grid, &zeros, &zeros, &zeros, 0.0, Exchange::None, None);
        let mut psi = Wavefunction::zeros(&grid, 1);
        // Pick a masked-in G index with nonzero |G|².
        let idx = grid
            .mask
            .iter()
            .enumerate()
            .position(|(i, &m)| m && grid.g2[i] > 0.1)
            .expect("grid has a usable G");
        psi.band_mut(0)[idx] = Complex64::ONE;
        let hpsi = h.apply(&psi);
        let expect = 0.5 * grid.g2[idx];
        assert!((hpsi.band(0)[idx].re - expect).abs() < 1e-10);
        // All other components ~0.
        let leak: f64 = hpsi
            .band(0)
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, z)| z.abs())
            .fold(0.0, f64::max);
        assert!(leak < 1e-10);
    }

    #[test]
    fn dense_and_ace_exchange_agree_on_span() {
        let (_, grid) = setup();
        let fft = grid.fft();
        let zeros = vec![0.0; grid.len()];
        let phi = Wavefunction::random(&grid, 3, 55);
        let occ = vec![1.0, 0.8, 0.3];
        let phi_r = phi.to_real_all(&fft);

        // Dense path.
        let fock = FockOperator::new(&grid, 0.2);
        let hd = Hamiltonian::new(
            &grid,
            &zeros,
            &zeros,
            &zeros,
            0.25,
            Exchange::Dense { nat_r: phi_r.clone(), occ: occ.clone() },
            Some(fock),
        );
        let out_dense = hd.apply(&phi);

        // ACE path built from the same exchange.
        let fock2 = FockOperator::new(&grid, 0.2);
        let vx = fock2.apply_diag(&phi_r, &occ, &phi_r);
        let w = Wavefunction::from_real(&grid, &fft, vx);
        // ACE must be built on *masked* W to match the masked dense output.
        let mut wm = w;
        wm.mask(&grid);
        let ace = AceOperator::build(&phi, &wm);
        let ha = Hamiltonian::new(
            &grid,
            &zeros,
            &zeros,
            &zeros,
            0.25,
            Exchange::Ace(ace),
            None,
        );
        let out_ace = ha.apply(&phi);

        let scale = out_dense.data.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        let diff = cvec::max_abs_diff(&out_dense.data, &out_ace.data);
        assert!(diff < 1e-8 * scale.max(1.0), "dense vs ACE H: {diff}");
    }

    #[test]
    fn external_field_shifts_diagonal() {
        let (_, grid) = setup();
        let zeros = vec![0.0; grid.len()];
        let ones = vec![0.7; grid.len()];
        let psi = Wavefunction::random(&grid, 2, 8);
        let h0 = Hamiltonian::new(&grid, &zeros, &zeros, &zeros, 0.0, Exchange::None, None);
        let h1 = Hamiltonian::new(&grid, &zeros, &zeros, &ones, 0.0, Exchange::None, None);
        let m0 = h0.matrix_elements(&psi);
        let m1 = h1.matrix_elements(&psi);
        // Constant potential adds 0.7·I on an orthonormal block.
        for i in 0..2 {
            assert!((m1[(i, i)].re - m0[(i, i)].re - 0.7).abs() < 1e-10);
        }
    }
}
