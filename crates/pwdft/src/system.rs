//! Bundled static data for one physical system (cell + grids + ionic
//! potential + Ewald energy).

use crate::ewald::ewald_energy;
use crate::gvec::PwGrid;
use crate::lattice::Cell;
use crate::pseudo;
use pwfft::Fft3;

/// Everything about a system that does not change during SCF or dynamics.
pub struct DftSystem {
    /// The periodic cell with its atoms.
    pub cell: Cell,
    /// Wavefunction/density grid (single grid; products are resolved by
    /// construction, see [`PwGrid::for_cell`]).
    pub grid: PwGrid,
    /// FFT plans for the grid.
    pub fft: Fft3,
    /// Static ionic (local pseudopotential) potential on the grid.
    pub vloc: Vec<f64>,
    /// Ion–ion Ewald energy (constant).
    pub e_ewald: f64,
}

impl DftSystem {
    /// Builds the system for a cell at a kinetic-energy cutoff (hartree).
    pub fn new(cell: Cell, ecut: f64) -> Self {
        let grid = PwGrid::for_cell(&cell, ecut);
        Self::with_grid(cell, grid)
    }

    /// Builds the system with explicit grid dimensions (tests / benches).
    pub fn with_dims(cell: Cell, ecut: f64, dims: [usize; 3]) -> Self {
        let grid = PwGrid::with_dims(&cell, ecut, dims);
        Self::with_grid(cell, grid)
    }

    fn with_grid(cell: Cell, grid: PwGrid) -> Self {
        let fft = grid.fft();
        let vloc = pseudo::local_potential(&cell, &grid);
        let e_ewald = ewald_energy(&cell);
        DftSystem { cell, grid, fft, vloc, e_ewald }
    }

    /// Convenience: an `n1 x n2 x n3` silicon supercell.
    pub fn silicon(n1: usize, n2: usize, n3: usize, ecut: f64) -> Self {
        Self::new(Cell::silicon_supercell(n1, n2, n3), ecut)
    }

    /// Number of electrons.
    pub fn n_electrons(&self) -> f64 {
        self.cell.n_electrons()
    }

    /// Uniform starting density (electrons spread over the cell).
    pub fn uniform_density(&self) -> Vec<f64> {
        let rho0 = self.n_electrons() / self.grid.volume();
        vec![rho0; self.grid.len()]
    }

    /// Electron–ion energy for a given density (direct + alpha-Z terms).
    pub fn eei_energy(&self, rho: &[f64]) -> f64 {
        pseudo::eei_energy(&self.cell, &self.grid, &self.vloc, rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silicon_system_consistent() {
        let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 3.0, [10, 10, 10]);
        assert_eq!(sys.grid.len(), 1000);
        assert!((sys.n_electrons() - 32.0).abs() < 1e-12);
        assert!(sys.e_ewald < 0.0);
        // Uniform density integrates to the electron count.
        let rho = sys.uniform_density();
        let ne = crate::density::electron_count(&sys.grid, &rho);
        assert!((ne - 32.0).abs() < 1e-9);
    }
}
