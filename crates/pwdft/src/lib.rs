//! # pwdft — plane-wave Kohn–Sham DFT substrate
//!
//! The Rust analog of the PWDFT package the paper builds on: everything
//! needed to prepare and propagate finite-temperature hybrid-functional
//! electronic structure on a plane-wave grid.
//!
//! * [`lattice`] — silicon supercells (the paper's 48–3072-atom systems).
//! * [`gvec`] — plane-wave grids, cutoff masks, kinetic operator.
//! * [`pseudo`] — analytic local pseudopotential (ONCV substitute).
//! * [`ewald`] — ion–ion Ewald summation.
//! * [`xc`] — LDA exchange-correlation (Slater + PZ81).
//! * [`wavefunction`] — band-major orbital blocks, orthonormalization.
//! * [`density`] — mixed-state density (baseline pair loop vs the paper's
//!   σ-diagonalization, Eq. 11–12).
//! * [`fock`] — screened Fock exchange: Alg. 2 baseline (O(N³) FFTs) and
//!   the diagonalized form (Eq. 13, O(N²) FFTs).
//! * [`ace`] — adaptively compressed exchange (Sec. IV-A2).
//! * [`hamiltonian`] — assembled `HΦ` with pluggable exchange modes.
//! * [`davidson`] — blocked preconditioned eigensolver.
//! * [`smearing`] — Fermi–Dirac occupations (8000 K production setting).
//! * [`spectral`] — density of states, gap detection, fractional-manifold
//!   diagnostics.
//! * [`mixing`] — Anderson mixing (history 20, as in Sec. VI).
//! * [`scf`] — LDA + hybrid(ACE) ground-state drivers producing the
//!   rt-TDDFT initial state `(Φ(0), σ(0))`.
//! * [`system`] — bundled static system data.
//! * [`energy`] — total-energy bookkeeping.

pub mod ace;
pub mod davidson;
pub mod density;
pub mod energy;
pub mod ewald;
pub mod fock;
pub mod gvec;
pub mod hamiltonian;
pub mod lattice;
pub mod mixing;
pub mod pseudo;
pub mod scf;
pub mod smearing;
pub mod spectral;
pub mod system;
pub mod wavefunction;
pub mod xc;

pub use ace::AceOperator;
pub use fock::{FockApplyStats, FockOperator, FockOptions, SolveCounters};
pub use gvec::PwGrid;
pub use hamiltonian::{Exchange, Hamiltonian};
pub use lattice::Cell;
pub use scf::{scf_hybrid, scf_lda, GroundState, HybridConfig, ScfConfig};
pub use system::DftSystem;
pub use wavefunction::Wavefunction;
