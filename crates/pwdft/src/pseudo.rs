//! Local pseudopotential (analytic, silicon-parameterized).
//!
//! Substitution (DESIGN.md §2): the paper uses SG15 ONCV pseudopotential
//! data files. We build an analytic *local* pseudopotential instead — a
//! Gaussian-screened Coulomb tail with the correct valence charge plus a
//! short-range Gaussian core repulsion (Appelbaum–Hamann-like). The PT-IM
//! integrator, Fock exchange machinery and every optimization of the paper
//! are agnostic to the radial form; only absolute eigenvalues differ.

use crate::gvec::PwGrid;
use crate::lattice::Cell;
use pwnum::complex::Complex64;

/// Radial form factor `v(q) = ∫ V(r) e^{-iq·r} d³r` of one pseudo-atom.
///
/// `V(r) = -Z erf(r/(√2 rc))/r + A exp(-r²/(2w²))`, giving
/// `v(q) = -4πZ/q² · exp(-q²rc²/2) + A (2π)^{3/2} w³ exp(-q²w²/2)`.
pub fn form_factor(q2: f64, species: &crate::lattice::Species) -> f64 {
    let rc2 = species.rc * species.rc;
    let w2 = species.core_width * species.core_width;
    let core = species.core_amp
        * (2.0 * std::f64::consts::PI).powf(1.5)
        * species.core_width.powi(3)
        * (-0.5 * q2 * w2).exp();
    if q2 < 1e-12 {
        // Divergent Coulomb part handled separately (G=0 convention);
        // only the regular part survives here.
        return core;
    }
    -4.0 * std::f64::consts::PI * species.z_valence / q2 * (-0.5 * q2 * rc2).exp() + core
}

/// The non-divergent `q → 0` limit of `v(q) + 4πZ/q²` — the "alpha Z"
/// energy correction per atom (hartree·bohr³).
pub fn alpha_correction(species: &crate::lattice::Species) -> f64 {
    2.0 * std::f64::consts::PI * species.z_valence * species.rc * species.rc
        + species.core_amp
            * (2.0 * std::f64::consts::PI).powf(1.5)
            * species.core_width.powi(3)
}

/// Builds the total local potential on the real-space grid:
/// `V_loc(r) = Σ_G (1/Ω) Σ_a v_a(|G|) e^{-iG·R_a} e^{iG·r}`,
/// with the divergent `G = 0` Coulomb part dropped (jellium convention;
/// compensated by the Ewald and alpha terms in the total energy).
pub fn local_potential(cell: &Cell, grid: &PwGrid) -> Vec<f64> {
    let ng = grid.len();
    let omega = grid.volume();
    let mut vg = vec![Complex64::ZERO; ng];
    for (idx, g) in grid.gvec.iter().enumerate() {
        let q2 = grid.g2[idx];
        if q2 < 1e-12 {
            // Whole G=0 component dropped: the regular part is accounted
            // for exactly once by `alpha_correction` in the total energy.
            continue;
        }
        let mut acc = Complex64::ZERO;
        for at in &cell.atoms {
            let phase = -(g[0] * at.pos[0] + g[1] * at.pos[1] + g[2] * at.pos[2]);
            acc += Complex64::cis(phase).scale(form_factor(q2, &at.species));
        }
        vg[idx] = acc.scale(1.0 / omega);
    }
    // V(r) = Σ_G vg e^{iGr} = IFFT(vg * Ng).
    let fft = grid.fft();
    let scale = ng as f64;
    for z in vg.iter_mut() {
        *z = z.scale(scale);
    }
    fft.inverse(&mut vg);
    vg.iter().map(|z| z.re).collect()
}

/// Electron–ion interaction energy `∫ V_loc ρ dV` plus the alpha-Z
/// G=0 correction `N_e · Σ_a α_a / Ω`.
pub fn eei_energy(cell: &Cell, grid: &PwGrid, vloc_r: &[f64], rho: &[f64]) -> f64 {
    let dv = grid.dv();
    let direct: f64 = vloc_r.iter().zip(rho).map(|(v, r)| v * r).sum::<f64>() * dv;
    let alpha: f64 = cell.atoms.iter().map(|a| alpha_correction(&a.species)).sum();
    direct + cell.n_electrons() * alpha / grid.volume()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Species;

    #[test]
    fn form_factor_tends_to_coulomb_at_high_q() {
        let si = Species::silicon();
        // At high q both Gaussians die; the Coulomb tail ~ -4πZ/q² also
        // dies because of the screening factor. Check intermediate regime
        // keeps the attractive sign.
        let v = form_factor(0.4, &si);
        assert!(v < 0.0, "attractive at moderate q: {v}");
        // Large q: essentially zero.
        assert!(form_factor(400.0, &si).abs() < 1e-10);
    }

    #[test]
    fn alpha_correction_positive() {
        let si = Species::silicon();
        assert!(alpha_correction(&si) > 0.0);
        // Matches the q->0 limit of v(q)+4πZ/q² numerically.
        let q2 = 1e-6;
        let coulomb = 4.0 * std::f64::consts::PI * si.z_valence / q2;
        let limit = form_factor(q2, &si) + coulomb;
        assert!((limit - alpha_correction(&si)).abs() / alpha_correction(&si) < 1e-3);
    }

    #[test]
    fn local_potential_is_real_and_periodic_symmetric() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 4.0, [12, 12, 12]);
        let v = local_potential(&cell, &grid);
        assert_eq!(v.len(), grid.len());
        // Must be attractive (negative) near atoms and bounded.
        let vmin = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let vmax = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(vmin < 0.0, "potential has attractive wells: {vmin}");
        assert!(vmax.is_finite() && vmin.is_finite());
        // Mean is ~0 by the G=0 convention.
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 1e-8, "mean {mean}");
    }

    #[test]
    fn potential_has_diamond_symmetry() {
        // The 8-atom diamond cell has inversion symmetry about (1/8,1/8,1/8)·a:
        // sanity check that extrema repeat with the sublattice period.
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 4.0, [8, 8, 8]);
        let v = local_potential(&cell, &grid);
        // Two fcc sublattice sites (0,0,0) and (1/2,1/2,0)·a must have the
        // same potential value by symmetry.
        let n = 8;
        let idx0 = 0;
        let idx1 = (n / 2 * n + n / 2) * n;
        assert!((v[idx0] - v[idx1]).abs() < 1e-9);
    }
}
