//! Adaptively Compressed Exchange (ACE) operator — paper Sec. IV-A2.
//!
//! Given `W = Vx Φ` on the current orbital set, Lin's construction
//! (Ref. \[37\]) builds the rank-N operator
//!
//! ```text
//! M = Φ^H W            (Hermitian, negative semi-definite)
//! -M = L L^H           (Cholesky)
//! ξ = W L^{-H}
//! V_ACE = -ξ ξ^H
//! ```
//!
//! which reproduces `Vx` *exactly* on span(Φ) while applying as two thin
//! GEMMs instead of N² Poisson solves. PT-IM-ACE keeps two of these
//! (`V_ACE` at `t_n` and `t_{n+1/2}`) fixed across an inner SCF loop,
//! cutting Fock evaluations per step from ~25 to ~5 (Fig. 4b).

use crate::fock::{FockApplyStats, FockOperator};
use crate::gvec::PwGrid;
use crate::wavefunction::Wavefunction;
use pwfft::Fft3;
use pwnum::backend::{default_backend, BackendHandle};
use pwnum::chol::{cholesky, invert_lower};
use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use pwnum::precision::{self, Complex32, CVec32, StagePrecision};

/// The compressed exchange operator `V_ACE = -ξ ξ^H`.
///
/// Carries the compute backend it was built on; both GEMMs of every
/// application route through it. Under a reduced subspace-GEMM precision
/// stage (see [`PrecisionPolicy`](pwnum::precision::PrecisionPolicy)) a
/// demoted copy of ξ is cached at build time and every apply runs the
/// overlap/rotation pair in fp32, promoting the result into the fp64
/// output — half the GEMM traffic per application.
#[derive(Clone, Debug)]
pub struct AceOperator {
    /// Projection vectors ξ (band-major, same space as the wavefunctions
    /// used to build the operator — here G-space).
    pub xi: Wavefunction,
    /// Demoted projection vectors, cached when `gemm_stage` is reduced.
    xi32: Option<CVec32>,
    /// Precision of the apply-side subspace GEMMs.
    gemm_stage: StagePrecision,
    /// Compute backend for the overlap/rotation pair of each apply.
    backend: BackendHandle,
}

impl AceOperator {
    /// Builds the operator from the orbital block `phi` and the
    /// *precomputed* exchange images `w = Vx Φ` (both G-space), on the
    /// process default backend.
    ///
    /// A small diagonal shift is added before the Cholesky factorization
    /// to tolerate exactly-zero exchange on empty bands.
    pub fn build(phi: &Wavefunction, w: &Wavefunction) -> AceOperator {
        Self::build_with(default_backend().clone(), phi, w)
    }

    /// [`Self::build`] on an explicit compute backend (fp64 applies).
    pub fn build_with(
        backend: BackendHandle,
        phi: &Wavefunction,
        w: &Wavefunction,
    ) -> AceOperator {
        Self::build_with_policy(backend, phi, w, StagePrecision::Fp64)
    }

    /// [`Self::build_with`] with an explicit apply-side subspace-GEMM
    /// precision stage. The compression itself (overlap, Cholesky,
    /// rotation) always runs in fp64 — only the per-apply GEMM pair is
    /// reduced, and only when `gemm_stage` is.
    pub fn build_with_policy(
        backend: BackendHandle,
        phi: &Wavefunction,
        w: &Wavefunction,
        gemm_stage: StagePrecision,
    ) -> AceOperator {
        let _s = pwobs::span("xch.ace_build");
        assert_eq!(phi.n_bands, w.n_bands);
        assert_eq!(phi.ng, w.ng);
        let m = phi.overlap_with(&*backend, w); // M = Φ^H W
        // -M should be HPD (up to noise); regularize relative to its scale.
        let n = m.rows();
        let mut neg_m = m.scaled(Complex64::from_re(-1.0)).hermitian_part();
        let scale = neg_m.fro_norm().max(1e-300) / n as f64;
        for i in 0..n {
            neg_m[(i, i)] += Complex64::from_re(1e-12 * scale.max(1e-12));
        }
        let l = cholesky(&neg_m).expect("ACE: -Φ^H VxΦ not positive definite");
        // ξ = W L^{-H}: Q = (L^{-1})^H.
        let q = invert_lower(&l).herm();
        let xi = w.rotated_with(&*backend, &q);
        let xi32 = gemm_stage.reduced().then(|| precision::demote(&xi.data));
        AceOperator { xi, xi32, gemm_stage, backend }
    }

    /// Builds the operator directly from a [`FockOperator`] and the
    /// current orbitals with (diagonal) occupations — the rebuild step of
    /// the ACE double loop. Because the exchange images are computed on
    /// the orbital block *itself*, the evaluation rides the Hermitian
    /// pair-symmetric scheduler under the Fock operator's
    /// [`FockOptions`](crate::fock::FockOptions) (~half the Poisson
    /// solves, occupation-screened) — and, under the default
    /// [`FockOptions::fused`](crate::fock::FockOptions::fused), the
    /// fused pair-solve pipeline, so the rebuild's dominant FFT cost
    /// gets the fused convolve for free.
    ///
    /// Returns the operator, the masked exchange images `W = VxΦ`, the
    /// exchange energy `Ex`, and the scheduler stats.
    pub fn build_from_fock(
        fock: &FockOperator,
        grid: &PwGrid,
        fft: &Fft3,
        phi: &Wavefunction,
        occ: &[f64],
    ) -> (AceOperator, Wavefunction, f64, FockApplyStats) {
        let backend = fock.backend().clone();
        let be = &*backend;
        let phi_r = phi.to_real_all_with(be, fft);
        let (vx_r, stats) = fock.apply_pure_stats(&phi_r, occ);
        let ex = fock.exchange_energy(&phi_r, occ, &vx_r, grid.dv());
        let mut w = Wavefunction::from_real_with(be, grid, fft, vx_r);
        w.mask(grid);
        let ace =
            Self::build_with_policy(backend, phi, &w, fock.options().precision.subspace_gemm);
        (ace, w, ex, stats)
    }

    /// Applies `scale · V_ACE` to a block `psi` (G-space), *adding* the
    /// result into `out` (band-major G-space buffer of the same shape):
    /// `out_j += -scale · Σ_k ξ_k <ξ_k|ψ_j>`. `scale` carries the hybrid
    /// mixing fraction α.
    pub fn apply_add(&self, psi: &Wavefunction, scale: f64, out: &mut [Complex64]) {
        let _s = pwobs::span("xch.ace_apply");
        assert_eq!(psi.ng, self.xi.ng);
        assert_eq!(out.len(), psi.data.len());
        if self.gemm_stage.reduced() {
            // Reduced subspace-GEMM stage: both GEMMs run in fp32 on the
            // cached demoted ξ, and the fp32 result block is promoted
            // into the fp64 output in one pass. Scratch comes from the
            // backend's fp32 pool so this hot per-apply path stays
            // allocation-free in steady state.
            let xi32 = self.xi32.as_ref().expect("reduced gemm stage caches demoted ξ");
            let be = &*self.backend;
            let ng = self.xi.ng;
            let mut psi32 = be.take_scratch32(psi.data.len());
            precision::demote_into(&psi.data, &mut psi32);
            let c32 = be.overlap32(xi32, &psi32, ng, self.xi.ip_scale as f32);
            let mut acc32 = be.take_scratch32(out.len());
            acc32.fill(Complex32::ZERO);
            be.rotate_acc32(
                Complex32::from_re(-scale as f32),
                xi32,
                &c32,
                ng,
                &mut acc32,
            );
            precision::promote_acc(&acc32, out);
            be.recycle_buffer32(psi32);
            be.recycle_buffer32(acc32);
            return;
        }
        // C[k][j] = <ξ_k | ψ_j>
        let c = self.xi.overlap_with(&*self.backend, psi);
        self.backend.rotate_acc(
            Complex64::from_re(-scale),
            &self.xi.data,
            &c,
            self.xi.ng,
            out,
        );
    }

    /// Exchange energy on a state: `Ex = Σ_j d_j <ψ_j|V_ACE|ψ_j>`
    /// = `-Σ_j d_j Σ_k |<ξ_k|ψ_j>|²`.
    pub fn exchange_energy(&self, psi: &Wavefunction, occ: &[f64]) -> f64 {
        assert_eq!(occ.len(), psi.n_bands);
        let c = self.xi.overlap_with(&*self.backend, psi);
        let mut e = 0.0;
        for j in 0..psi.n_bands {
            if occ[j].abs() < crate::fock::DEFAULT_OCC_CUTOFF {
                continue;
            }
            let mut s = 0.0;
            for k in 0..self.xi.n_bands {
                s += c[(k, j)].norm_sqr();
            }
            e -= occ[j] * s;
        }
        e
    }

    /// Matrix elements `A[i][j] = <ψ_i|V_ACE|ψ_j>` (for σ dynamics).
    pub fn matrix_elements(&self, psi: &Wavefunction) -> CMat {
        let c = self.xi.overlap_with(&*self.backend, psi); // k×j
        // A = -C^H C.
        self.backend.gemm(
            Complex64::from_re(-1.0),
            &c,
            pwnum::gemm::Op::ConjTrans,
            &c,
            pwnum::gemm::Op::None,
            Complex64::ZERO,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::natural_orbitals;
    use crate::fock::FockOperator;
    use crate::gvec::PwGrid;
    use crate::lattice::Cell;
    use pwnum::eigh;
    use pwnum::precision::StagePrecision;

    fn build_test_ace() -> (PwGrid, Wavefunction, Wavefunction, AceOperator, Vec<f64>) {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
        let fft = grid.fft();
        let phi = Wavefunction::random(&grid, 4, 91);
        // σ from Fermi-like occupations (diagonal for simplicity here).
        let h = pwnum::cmat::random_hermitian(4, {
            let mut s = 5u64;
            move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }
        });
        let e = eigh(&h);
        let dvals: Vec<f64> = e.values.iter().map(|&w| 1.0 / (1.0 + (2.0 * w).exp())).collect();
        let sigma = {
            let dm = CMat::from_real_diag(&dvals);
            let vd = e.vectors.matmul(&dm);
            pwnum::gemm::gemm(
                Complex64::ONE,
                &vd,
                pwnum::gemm::Op::None,
                &e.vectors,
                pwnum::gemm::Op::ConjTrans,
                Complex64::ZERO,
                None,
            )
            .hermitian_part()
        };
        let fock = FockOperator::new(&grid, 0.2);
        let nat = natural_orbitals(&phi, &sigma);
        let nat_r = nat.phi.to_real_all(&fft);
        let phi_r = phi.to_real_all(&fft);
        let vx_r = fock.apply_diag(&nat_r, &nat.occ, &phi_r);
        let w = Wavefunction::from_real(&grid, &fft, vx_r);
        let ace = AceOperator::build(&phi, &w);
        (grid, phi, w, ace, nat.occ)
    }

    #[test]
    fn build_from_fock_matches_manual_build() {
        // The one-call rebuild (pair-symmetric apply + mask + compress)
        // equals the manual sequence scf_hybrid used to spell out.
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
        let fft = grid.fft();
        let mut phi = Wavefunction::random(&grid, 4, 19);
        phi.orthonormalize_lowdin();
        let occ = vec![1.0, 0.9, 0.4, 0.1];
        let fock = FockOperator::new(&grid, 0.2);

        let (ace, w, ex, stats) = AceOperator::build_from_fock(&fock, &grid, &fft, &phi, &occ);
        assert!(stats.symmetric, "rebuild must take the pair-symmetric path");
        assert_eq!(stats.solves, 4 * 5 / 2);
        assert!(ex < 0.0);

        let phi_r = phi.to_real_all(&fft);
        let psi_copy = phi_r.clone(); // force the asymmetric reference path
        let vx_r = fock.apply_diag(&phi_r, &occ, &psi_copy);
        let mut w_ref = Wavefunction::from_real(&grid, &fft, vx_r);
        w_ref.mask(&grid);
        let scale = w_ref.data.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        assert!(w.max_abs_diff(&w_ref) < 1e-9 * scale.max(1.0));

        let ace_ref = AceOperator::build(&phi, &w_ref);
        let mut out = vec![Complex64::ZERO; phi.data.len()];
        let mut out_ref = vec![Complex64::ZERO; phi.data.len()];
        ace.apply_add(&phi, 1.0, &mut out);
        ace_ref.apply_add(&phi, 1.0, &mut out_ref);
        assert!(pwnum::cvec::max_abs_diff(&out, &out_ref) < 1e-8 * scale.max(1.0));
    }

    #[test]
    fn reduced_subspace_gemm_tracks_fp64_apply() {
        // The fp32 apply path (demoted ξ cache, overlap32 + rotate_acc32
        // + promote) must track the fp64 apply at fp32 accuracy, on a
        // nonzero accumulation target and through build_from_fock with a
        // reduced subspace_gemm stage.
        let (grid, phi, w, _, _) = build_test_ace();
        let be = pwnum::backend::default_backend().clone();
        for stage in [StagePrecision::Fp32, StagePrecision::Fp32Promoted] {
            let ace64 = AceOperator::build_with(be.clone(), &phi, &w);
            let ace32 = AceOperator::build_with_policy(be.clone(), &phi, &w, stage);
            let seed: Vec<Complex64> = (0..phi.data.len())
                .map(|k| Complex64::new((k as f64 * 0.1).sin(), (k as f64 * 0.2).cos()))
                .collect();
            let mut out64 = seed.clone();
            let mut out32 = seed;
            ace64.apply_add(&phi, 0.25, &mut out64);
            ace32.apply_add(&phi, 0.25, &mut out32);
            let scale = out64.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
            let diff = pwnum::cvec::max_abs_diff(&out64, &out32);
            assert!(
                diff < 1e-5 * scale.max(1.0),
                "{stage:?}: reduced ACE apply drift {diff} (scale {scale})"
            );
        }
        // The FockOperator policy propagates into build_from_fock.
        let fock = FockOperator::with_options(
            &grid,
            0.2,
            be,
            crate::fock::FockOptions {
                precision: pwnum::precision::PrecisionPolicy {
                    subspace_gemm: StagePrecision::Fp32Promoted,
                    ..pwnum::precision::PrecisionPolicy::mixed()
                },
                ..Default::default()
            },
        );
        let fft = grid.fft();
        let occ = vec![1.0, 0.9, 0.4, 0.1];
        let (ace, w2, _, stats) = AceOperator::build_from_fock(&fock, &grid, &fft, &phi, &occ);
        assert!(stats.solves_fp32 > 0);
        assert!(ace.xi32.is_some(), "reduced stage must cache demoted ξ");
        // It still reproduces W on the span to mixed-precision accuracy.
        let mut out = vec![Complex64::ZERO; phi.data.len()];
        ace.apply_add(&phi, 1.0, &mut out);
        let scale = w2.data.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        let diff = pwnum::cvec::max_abs_diff(&out, &w2.data);
        assert!(diff < 1e-4 * scale.max(1e-10), "ACE span defect {diff}");
    }

    #[test]
    fn ace_reproduces_vx_on_span() {
        // V_ACE Φ must equal W = Vx Φ exactly (the defining property).
        let (_, phi, w, ace, _) = build_test_ace();
        let mut out = vec![Complex64::ZERO; phi.data.len()];
        ace.apply_add(&phi, 1.0, &mut out);
        let scale = w.data.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        let diff = pwnum::cvec::max_abs_diff(&out, &w.data);
        assert!(diff < 1e-8 * scale.max(1.0), "ACE defect {diff} (scale {scale})");
    }

    #[test]
    fn ace_matrix_elements_match_direct() {
        let (_, phi, w, ace, _) = build_test_ace();
        let a = ace.matrix_elements(&phi);
        let direct = phi.overlap(&w); // <φ_i|Vx|φ_j>
        assert!(a.max_abs_diff(&direct) < 1e-8, "diff {}", a.max_abs_diff(&direct));
        assert!(a.hermiticity_error() < 1e-9);
    }

    #[test]
    fn ace_is_negative_semidefinite() {
        let (_, phi, _, ace, _) = build_test_ace();
        let a = ace.matrix_elements(&phi);
        let e = eigh(&a);
        for w in &e.values {
            assert!(*w < 1e-9, "V_ACE eigenvalue must be ≤ 0: {w}");
        }
    }

    #[test]
    fn exchange_energy_consistent() {
        let (_, phi, w, ace, occ) = build_test_ace();
        let e_ace = ace.exchange_energy(&phi, &occ);
        // Direct: Σ_i d_i <φ_i|W_i>.
        let s = phi.overlap(&w);
        let mut e_direct = 0.0;
        for (i, &d) in occ.iter().enumerate() {
            e_direct += d * s[(i, i)].re;
        }
        assert!((e_ace - e_direct).abs() < 1e-8, "{e_ace} vs {e_direct}");
        assert!(e_ace < 0.0);
    }

    #[test]
    fn apply_is_linear() {
        let (grid, phi, _, ace, _) = build_test_ace();
        let psi = Wavefunction::random(&grid, 2, 17);
        // V(αψ) = α Vψ.
        let mut v1 = vec![Complex64::ZERO; psi.data.len()];
        ace.apply_add(&psi, 1.0, &mut v1);
        let alpha = Complex64::new(0.3, -1.2);
        let mut psi2 = psi.clone();
        for z in psi2.data.iter_mut() {
            *z = *z * alpha;
        }
        let mut v2 = vec![Complex64::ZERO; psi.data.len()];
        ace.apply_add(&psi2, 1.0, &mut v2);
        for (a, b) in v1.iter().zip(&v2) {
            assert!((*a * alpha - *b).abs() < 1e-9);
        }
        let _ = phi;
    }
}
