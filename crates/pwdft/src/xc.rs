//! Local-density exchange-correlation (Slater exchange + PZ81 correlation).
//!
//! Substitution (DESIGN.md §2): the paper's HSE06 pairs short-range PBE
//! exchange with 25% short-range Fock exchange. We pair LDA with the
//! screened Fock term instead — the hybrid *structure* (semilocal part on
//! the density grid + screened exact exchange over orbital pairs) is
//! identical, which is what the per-step cost and all optimizations
//! depend on.

/// Slater exchange energy density per electron, `ε_x(ρ)` (hartree).
#[inline]
pub fn ex_lda(rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    const CX: f64 = -0.738_558_766_382_022_4; // -(3/4)(3/π)^{1/3}
    CX * rho.powf(1.0 / 3.0)
}

/// Slater exchange potential `v_x(ρ) = dε_x ρ/dρ`.
#[inline]
pub fn vx_lda(rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    const CV: f64 = -0.984_745_021_842_696_6; // -(3/π)^{1/3}
    CV * rho.powf(1.0 / 3.0)
}

/// PZ81 correlation energy per electron (unpolarized).
#[inline]
pub fn ec_pz81(rho: f64) -> f64 {
    if rho <= 1e-30 {
        return 0.0;
    }
    let rs = (3.0 / (4.0 * std::f64::consts::PI * rho)).powf(1.0 / 3.0);
    if rs < 1.0 {
        let lnrs = rs.ln();
        0.0311 * lnrs - 0.048 + 0.0020 * rs * lnrs - 0.0116 * rs
    } else {
        let sq = rs.sqrt();
        -0.1423 / (1.0 + 1.0529 * sq + 0.3334 * rs)
    }
}

/// PZ81 correlation potential (unpolarized): `v_c = ε_c - (rs/3) dε_c/drs`.
#[inline]
pub fn vc_pz81(rho: f64) -> f64 {
    if rho <= 1e-30 {
        return 0.0;
    }
    let rs = (3.0 / (4.0 * std::f64::consts::PI * rho)).powf(1.0 / 3.0);
    if rs < 1.0 {
        let lnrs = rs.ln();
        let ec = 0.0311 * lnrs - 0.048 + 0.0020 * rs * lnrs - 0.0116 * rs;
        let dec = 0.0311 / rs + 0.0020 * (lnrs + 1.0) - 0.0116;
        ec - rs / 3.0 * dec
    } else {
        let sq = rs.sqrt();
        let denom = 1.0 + 1.0529 * sq + 0.3334 * rs;
        let ec = -0.1423 / denom;
        let dec = 0.1423 * (1.0529 / (2.0 * sq) + 0.3334) / (denom * denom);
        ec - rs / 3.0 * dec
    }
}

/// Combined LDA XC energy density per electron.
#[inline]
pub fn exc_lda(rho: f64) -> f64 {
    ex_lda(rho) + ec_pz81(rho)
}

/// Combined LDA XC potential.
#[inline]
pub fn vxc_lda(rho: f64) -> f64 {
    vx_lda(rho) + vc_pz81(rho)
}

/// Evaluates the XC energy `∫ ρ ε_xc(ρ) dV` and fills the potential on
/// the grid; returns the energy.
pub fn xc_energy_potential(rho: &[f64], dv: f64, vxc_out: &mut [f64]) -> f64 {
    assert_eq!(rho.len(), vxc_out.len());
    let mut e = 0.0;
    for (v, &r) in vxc_out.iter_mut().zip(rho) {
        let rr = r.max(0.0);
        e += rr * exc_lda(rr);
        *v = vxc_lda(rr);
    }
    e * dv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_scaling_law() {
        // ε_x ∝ ρ^{1/3}: doubling rho multiplies ε_x by 2^{1/3}.
        let r = 0.37;
        assert!((ex_lda(2.0 * r) / ex_lda(r) - 2f64.powf(1.0 / 3.0)).abs() < 1e-12);
        // v_x = (4/3) ε_x for Slater exchange.
        assert!((vx_lda(r) - 4.0 / 3.0 * ex_lda(r)).abs() < 1e-12);
    }

    #[test]
    fn pz81_continuous_at_rs1() {
        // The two branches meet at rs = 1 (by construction of PZ81 they
        // match to ~1e-3; check the jump is small).
        let rho_at = |rs: f64| 3.0 / (4.0 * std::f64::consts::PI * rs.powi(3));
        let below = ec_pz81(rho_at(0.999_999));
        let above = ec_pz81(rho_at(1.000_001));
        assert!((below - above).abs() < 2e-3, "jump {}", (below - above).abs());
    }

    #[test]
    fn potential_from_finite_difference() {
        // v_xc = d(ρ ε_xc)/dρ; verify against central differences.
        for &rho in &[0.01, 0.1, 0.5, 2.0] {
            let h = rho * 1e-6;
            let f = |r: f64| r * exc_lda(r);
            let numeric = (f(rho + h) - f(rho - h)) / (2.0 * h);
            let analytic = vxc_lda(rho);
            assert!(
                (numeric - analytic).abs() < 1e-6 * analytic.abs().max(1.0),
                "rho={rho}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn zero_density_is_safe() {
        assert_eq!(ex_lda(0.0), 0.0);
        assert_eq!(vxc_lda(0.0), 0.0);
        assert_eq!(ec_pz81(-1.0), 0.0);
    }

    #[test]
    fn grid_energy_matches_pointwise() {
        let rho = vec![0.2, 0.4, 0.0, 1.1];
        let mut v = vec![0.0; 4];
        let e = xc_energy_potential(&rho, 0.5, &mut v);
        let expect: f64 = rho.iter().map(|&r| r * exc_lda(r)).sum::<f64>() * 0.5;
        assert!((e - expect).abs() < 1e-14);
        assert!((v[1] - vxc_lda(0.4)).abs() < 1e-14);
    }

    #[test]
    fn correlation_is_negative_and_small() {
        for &rho in &[0.001, 0.01, 0.1, 1.0, 10.0] {
            let ec = ec_pz81(rho);
            assert!(ec < 0.0, "correlation must be negative: {ec}");
            assert!(ec > -0.2, "correlation magnitude sane: {ec}");
            assert!(ec.abs() < ex_lda(rho).abs() || rho < 0.002);
        }
    }
}
