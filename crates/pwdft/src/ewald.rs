//! Ewald summation for the ion–ion interaction energy.
//!
//! Point charges `Z_a` at `R_a` in a periodic orthorhombic cell with a
//! uniform neutralizing background (the electron G=0 component is dropped
//! symmetrically in the Hartree term). Standard real-/reciprocal-space
//! split with splitting parameter η.

use crate::lattice::Cell;

/// Computes the Ewald energy (hartree) of the ion lattice.
///
/// `eta` is chosen automatically for balanced convergence; both sums are
/// extended until terms fall below 1e-12 relative.
pub fn ewald_energy(cell: &Cell) -> f64 {
    let omega = cell.volume();
    let n = cell.n_atoms();
    let charges: Vec<f64> = cell.atoms.iter().map(|a| a.species.z_valence).collect();
    let ztot: f64 = charges.iter().sum();
    let z2: f64 = charges.iter().map(|z| z * z).sum();

    // Balanced splitting: eta ~ sqrt(pi) * (n / V^2)^(1/6) is the usual
    // heuristic; any value converges, this one keeps both sums short.
    let eta = std::f64::consts::PI.sqrt() * (n.max(1) as f64 / (omega * omega)).powf(1.0 / 6.0);

    // Real-space sum.
    let rcut = 6.0 / eta;
    let nmax: Vec<i64> =
        (0..3).map(|d| (rcut / cell.lengths[d]).ceil() as i64).collect();
    let mut e_real = 0.0;
    for a in 0..n {
        for b in 0..n {
            for ix in -nmax[0]..=nmax[0] {
                for iy in -nmax[1]..=nmax[1] {
                    for iz in -nmax[2]..=nmax[2] {
                        if a == b && ix == 0 && iy == 0 && iz == 0 {
                            continue;
                        }
                        let dx = cell.atoms[a].pos[0] - cell.atoms[b].pos[0]
                            + ix as f64 * cell.lengths[0];
                        let dy = cell.atoms[a].pos[1] - cell.atoms[b].pos[1]
                            + iy as f64 * cell.lengths[1];
                        let dz = cell.atoms[a].pos[2] - cell.atoms[b].pos[2]
                            + iz as f64 * cell.lengths[2];
                        let r = (dx * dx + dy * dy + dz * dz).sqrt();
                        if r > rcut {
                            continue;
                        }
                        e_real += 0.5 * charges[a] * charges[b] * erfc(eta * r) / r;
                    }
                }
            }
        }
    }

    // Reciprocal-space sum.
    let gcut = 12.0 * eta;
    let two_pi = 2.0 * std::f64::consts::PI;
    let mmax: Vec<i64> =
        (0..3).map(|d| (gcut * cell.lengths[d] / two_pi).ceil() as i64).collect();
    let mut e_recip = 0.0;
    for mx in -mmax[0]..=mmax[0] {
        for my in -mmax[1]..=mmax[1] {
            for mz in -mmax[2]..=mmax[2] {
                if mx == 0 && my == 0 && mz == 0 {
                    continue;
                }
                let gx = two_pi * mx as f64 / cell.lengths[0];
                let gy = two_pi * my as f64 / cell.lengths[1];
                let gz = two_pi * mz as f64 / cell.lengths[2];
                let g2 = gx * gx + gy * gy + gz * gz;
                if g2 > gcut * gcut {
                    continue;
                }
                let (mut sre, mut sim) = (0.0, 0.0);
                for (at, z) in cell.atoms.iter().zip(&charges) {
                    let phase = gx * at.pos[0] + gy * at.pos[1] + gz * at.pos[2];
                    sre += z * phase.cos();
                    sim += z * phase.sin();
                }
                let s2 = sre * sre + sim * sim;
                e_recip += two_pi / omega * (-g2 / (4.0 * eta * eta)).exp() / g2 * s2;
            }
        }
    }

    // Self-interaction and charged-background corrections.
    let e_self = -eta / std::f64::consts::PI.sqrt() * z2;
    let e_background = -std::f64::consts::PI / (2.0 * omega * eta * eta) * ztot * ztot;

    e_real + e_recip + e_self + e_background
}

/// Complementary error function (Abramowitz–Stegun 7.1.26, |err| < 1.5e-7,
/// refined by one Newton step on erf for ~1e-12 accuracy).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    // A&S rational approximation as the seed.
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592 + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let seed = poly * (-x * x).exp();
    // One Newton refinement of y = erfc(x) via series is awkward; instead
    // use a high-order continued-fraction for large x and Taylor for small.
    if x < 3.0 {
        // Taylor series of erf around 0 converges fast here.
        let mut term = 2.0 / std::f64::consts::PI.sqrt() * x;
        let mut sum = term;
        let x2 = x * x;
        for k in 1..200 {
            term *= -x2 / k as f64;
            let add = term / (2 * k + 1) as f64;
            sum += add;
            if add.abs() < 1e-17 * sum.abs().max(1.0) {
                break;
            }
        }
        1.0 - sum
    } else {
        seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{Atom, Species};

    fn point_charge(z: f64) -> Species {
        Species { z_valence: z, rc: 1.0, core_amp: 0.0, core_width: 1.0 }
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-14);
        assert!((erfc(1.0) - 0.157_299_207_050_285).abs() < 1e-9);
        assert!((erfc(2.0) - 0.004_677_734_981_063_17).abs() < 1e-9);
        assert!((erfc(-1.0) - 1.842_700_792_949_715).abs() < 1e-9);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn madelung_nacl() {
        // Rock salt: +1 at (0,0,0)-type sites, -1 at (1/2,0,0)-type sites
        // of a cubic cell of side 2 (nearest-neighbor distance d = 1).
        // E per ion pair = -M_NaCl / d with M = 1.747564594633...
        let l = 2.0;
        let mut atoms = Vec::new();
        for ix in 0..2 {
            for iy in 0..2 {
                for iz in 0..2 {
                    let parity = (ix + iy + iz) % 2;
                    let z = if parity == 0 { 1.0 } else { -1.0 };
                    atoms.push(Atom {
                        species: point_charge(z),
                        pos: [ix as f64, iy as f64, iz as f64],
                    });
                }
            }
        }
        let cell = Cell { lengths: [l, l, l], atoms };
        let e = ewald_energy(&cell);
        // 4 ion pairs in the cell.
        let madelung = -e / 4.0;
        assert!(
            (madelung - 1.747_564_594_633).abs() < 1e-6,
            "NaCl Madelung constant: got {madelung}"
        );
    }

    #[test]
    fn madelung_cscl() {
        // CsCl structure: +1 at (0,0,0), -1 at (1/2,1/2,1/2), cubic cell a=1.
        // M (referred to nearest-neighbor distance d = √3/2) = 1.76267477307.
        let cell = Cell {
            lengths: [1.0, 1.0, 1.0],
            atoms: vec![
                Atom { species: point_charge(1.0), pos: [0.0, 0.0, 0.0] },
                Atom { species: point_charge(-1.0), pos: [0.5, 0.5, 0.5] },
            ],
        };
        let e = ewald_energy(&cell);
        let d = 3f64.sqrt() / 2.0;
        let madelung = -e * d;
        assert!(
            (madelung - 1.762_674_773_07).abs() < 1e-6,
            "CsCl Madelung constant: got {madelung}"
        );
    }

    #[test]
    fn translation_invariance() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let e0 = ewald_energy(&cell);
        let mut shifted = cell.clone();
        for at in &mut shifted.atoms {
            at.pos[0] = (at.pos[0] + 1.7) % shifted.lengths[0];
            at.pos[1] = (at.pos[1] + 0.3) % shifted.lengths[1];
        }
        let e1 = ewald_energy(&shifted);
        assert!((e0 - e1).abs() < 1e-8, "e0={e0} e1={e1}");
    }

    #[test]
    fn supercell_extensivity() {
        let e1 = ewald_energy(&Cell::silicon_supercell(1, 1, 1));
        let e2 = ewald_energy(&Cell::silicon_supercell(2, 1, 1));
        assert!((e2 - 2.0 * e1).abs() / e1.abs() < 1e-6, "e1={e1} e2={e2}");
    }

    #[test]
    fn silicon_ewald_is_negative() {
        // Cohesive point-charge lattice energy must be negative.
        let e = ewald_energy(&Cell::silicon_supercell(1, 1, 1));
        assert!(e < 0.0, "Ewald energy {e}");
    }
}
