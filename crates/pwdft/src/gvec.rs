//! Plane-wave grids and G-vector machinery.
//!
//! A [`PwGrid`] couples a real-space grid to its reciprocal lattice: for
//! each grid index it stores the folded G-vector, |G|², and the kinetic
//! cutoff mask `|G|²/2 ≤ Ecut`. Wavefunctions are represented on the full
//! grid with coefficients outside the mask held at zero (simple and
//! FFT-friendly; the paper's sphere-packed layout is a storage
//! optimization that does not change any numerics).

use crate::lattice::Cell;
use pwfft::Fft3;
use pwnum::complex::Complex64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Shared memoization table of grid-sized real kernels, keyed by
/// `(kernel family, parameter bits)`.
type KernelCache = Arc<Mutex<HashMap<(u64, u64), Arc<Vec<f64>>>>>;

/// Real/reciprocal grid pair for one cell.
#[derive(Clone, Debug)]
pub struct PwGrid {
    /// Grid dimensions.
    pub dims: [usize; 3],
    /// Cell edge lengths (bohr).
    pub lengths: [f64; 3],
    /// |G|² for every grid point (folded frequencies), row-major.
    pub g2: Vec<f64>,
    /// Cartesian G components per grid point.
    pub gvec: Vec<[f64; 3]>,
    /// Kinetic cutoff mask (true = plane wave kept).
    pub mask: Vec<bool>,
    /// Number of active plane waves.
    pub n_pw: usize,
    /// Kinetic cutoff (hartree).
    pub ecut: f64,
    /// Memoized grid-sized real kernels (e.g. the screened-exchange
    /// `K(G)`), keyed by `(kernel family, parameter bits)`. Shared
    /// across clones (the G data is immutable), so hot loops that
    /// construct an operator per step stop re-evaluating
    /// transcendentals over Ng.
    kernels: KernelCache,
}

/// Picks an FFT-friendly (2/3/5-smooth) grid size ≥ `min`.
pub fn smooth_size(min: usize) -> usize {
    let mut n = min.max(2);
    loop {
        let mut m = n;
        for p in [2, 3, 5] {
            while m.is_multiple_of(p) {
                m /= p;
            }
        }
        if m == 1 {
            return n;
        }
        n += 1;
    }
}

impl PwGrid {
    /// Builds the wavefunction grid for `cell` at kinetic cutoff `ecut`
    /// (hartree). Grid size follows the standard rule `n ≥ 2·Gmax·L/2π`
    /// rounded up to an FFT-smooth size, so products of two orbitals
    /// (density, exchange pair densities) are representable.
    pub fn for_cell(cell: &Cell, ecut: f64) -> PwGrid {
        let gmax = (2.0 * ecut).sqrt();
        let dims: Vec<usize> = (0..3)
            .map(|d| {
                let min = (2.0 * gmax * cell.lengths[d] / (2.0 * std::f64::consts::PI)).ceil()
                    as usize
                    + 1;
                smooth_size(min)
            })
            .collect();
        Self::with_dims(cell, ecut, [dims[0], dims[1], dims[2]])
    }

    /// Builds a grid with explicit dimensions (used by tests and by the
    /// double-resolution density grid).
    pub fn with_dims(cell: &Cell, ecut: f64, dims: [usize; 3]) -> PwGrid {
        let n = dims[0] * dims[1] * dims[2];
        let mut g2 = Vec::with_capacity(n);
        let mut gvec = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        let two_pi = 2.0 * std::f64::consts::PI;
        let mut n_pw = 0usize;
        for i0 in 0..dims[0] {
            let m0 = fold(i0, dims[0]);
            let gx = two_pi * m0 as f64 / cell.lengths[0];
            for i1 in 0..dims[1] {
                let m1 = fold(i1, dims[1]);
                let gy = two_pi * m1 as f64 / cell.lengths[1];
                for i2 in 0..dims[2] {
                    let m2 = fold(i2, dims[2]);
                    let gz = two_pi * m2 as f64 / cell.lengths[2];
                    let gg = gx * gx + gy * gy + gz * gz;
                    let keep = 0.5 * gg <= ecut;
                    if keep {
                        n_pw += 1;
                    }
                    g2.push(gg);
                    gvec.push([gx, gy, gz]);
                    mask.push(keep);
                }
            }
        }
        PwGrid {
            dims,
            lengths: cell.lengths,
            g2,
            gvec,
            mask,
            n_pw,
            ecut,
            kernels: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Returns the grid-sized real kernel registered under
    /// `(family, param)`, building it with `build` on the first request —
    /// the per-grid analog of an FFT plan cache. `family` names the
    /// kernel *formula* (each caller picks a distinct constant, so two
    /// kernel types with coinciding parameter bits never share an
    /// entry); `param` encodes every parameter the formula depends on
    /// besides the grid itself (e.g. `omega.to_bits()`). Clones of the
    /// grid share one cache.
    pub fn cached_kernel(
        &self,
        family: u64,
        param: u64,
        build: impl FnOnce(&PwGrid) -> Vec<f64>,
    ) -> Arc<Vec<f64>> {
        let key = (family, param);
        if let Some(k) = self.kernels.lock().expect("kernel cache poisoned").get(&key) {
            return k.clone();
        }
        // Build outside the lock: kernel evaluation is O(Ng) with
        // transcendentals, and a racing builder at worst duplicates work.
        let built = Arc::new(build(self));
        assert_eq!(built.len(), self.len(), "cached kernel must be grid-sized");
        self.kernels
            .lock()
            .expect("kernel cache poisoned")
            .entry(key)
            .or_insert(built)
            .clone()
    }

    /// Number of grid points Ng.
    #[inline]
    pub fn len(&self) -> usize {
        self.g2.len()
    }

    /// True for a degenerate single-point grid.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Real-space quadrature weight dV = Ω/Ng.
    #[inline]
    pub fn dv(&self) -> f64 {
        self.volume() / self.len() as f64
    }

    /// Cell volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.lengths[0] * self.lengths[1] * self.lengths[2]
    }

    /// FFT plan set matching this grid.
    pub fn fft(&self) -> Fft3 {
        Fft3::new(self.dims[0], self.dims[1], self.dims[2])
    }

    /// Cartesian coordinates of real-space grid point `idx`.
    pub fn r_coord(&self, idx: usize) -> [f64; 3] {
        let n12 = self.dims[1] * self.dims[2];
        let i0 = idx / n12;
        let i1 = (idx / self.dims[2]) % self.dims[1];
        let i2 = idx % self.dims[2];
        [
            i0 as f64 / self.dims[0] as f64 * self.lengths[0],
            i1 as f64 / self.dims[1] as f64 * self.lengths[1],
            i2 as f64 / self.dims[2] as f64 * self.lengths[2],
        ]
    }

    /// Zeroes all coefficients outside the kinetic cutoff mask (applied
    /// after nonlinear grid operations to stay in the variational space).
    pub fn apply_mask(&self, coeffs: &mut [Complex64]) {
        assert_eq!(coeffs.len(), self.len());
        for (c, &keep) in coeffs.iter_mut().zip(&self.mask) {
            if !keep {
                *c = Complex64::ZERO;
            }
        }
    }

    /// Applies the kinetic operator in G-space: `out_G = |G|²/2 · c_G`.
    pub fn apply_kinetic(&self, coeffs: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(coeffs.len(), self.len());
        assert_eq!(out.len(), self.len());
        for ((o, c), g2) in out.iter_mut().zip(coeffs).zip(&self.g2) {
            *o = c.scale(0.5 * g2);
        }
    }
}

/// Folds a grid index into a signed frequency: `0..n/2` positive,
/// `n/2..n` negative.
#[inline]
pub fn fold(i: usize, n: usize) -> i64 {
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_signs() {
        assert_eq!(fold(0, 8), 0);
        assert_eq!(fold(3, 8), 3);
        assert_eq!(fold(4, 8), 4);
        assert_eq!(fold(5, 8), -3);
        assert_eq!(fold(7, 8), -1);
    }

    #[test]
    fn smooth_sizes() {
        assert_eq!(smooth_size(7), 8);
        assert_eq!(smooth_size(11), 12);
        assert_eq!(smooth_size(13), 15);
        assert_eq!(smooth_size(17), 18);
        assert_eq!(smooth_size(60), 60);
    }

    #[test]
    fn grid_counts_plane_waves() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let g = PwGrid::for_cell(&cell, 5.0);
        assert!(g.n_pw > 0 && g.n_pw < g.len());
        // The G=0 component is always inside the cutoff.
        assert!(g.mask[0]);
        assert_eq!(g.g2[0], 0.0);
        // Number of PWs should approximate the cutoff sphere volume:
        // (Ω/(2π)³)·(4π/3)Gmax³.
        let gmax = (2.0f64 * 5.0).sqrt();
        let expect = g.volume() / (2.0 * std::f64::consts::PI).powi(3)
            * 4.0
            / 3.0
            * std::f64::consts::PI
            * gmax.powi(3);
        let ratio = g.n_pw as f64 / expect;
        assert!(ratio > 0.8 && ratio < 1.3, "PW count ratio {ratio}");
    }

    #[test]
    fn paper_1536_atom_grid_dims() {
        // Sec. VI: 1536 atoms -> wavefunction grid 60x90x120 at Ecut=10 Ha.
        let cell = Cell::silicon_supercell(4, 6, 8);
        let g = PwGrid::for_cell(&cell, 10.0);
        // Our grid rule may differ by smooth rounding; the paper's grid is
        // 60x90x120 = 648,000 points. Accept the same order.
        let ng = g.len();
        assert!(ng >= 300_000 && ng <= 1_400_000, "Ng = {ng}");
    }

    #[test]
    fn kinetic_of_plane_wave() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let g = PwGrid::with_dims(&cell, 5.0, [6, 6, 6]);
        // Coefficient vector with a single G component set.
        let mut c = vec![Complex64::ZERO; g.len()];
        let idx = 1; // i2 = 1 -> G = 2π/L ẑ
        c[idx] = Complex64::ONE;
        let mut out = vec![Complex64::ZERO; g.len()];
        g.apply_kinetic(&c, &mut out);
        let gz = 2.0 * std::f64::consts::PI / cell.lengths[2];
        assert!((out[idx].re - 0.5 * gz * gz).abs() < 1e-12);
    }

    #[test]
    fn r_coords_cover_cell() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let g = PwGrid::with_dims(&cell, 5.0, [4, 4, 4]);
        let r0 = g.r_coord(0);
        assert_eq!(r0, [0.0, 0.0, 0.0]);
        let rlast = g.r_coord(g.len() - 1);
        for d in 0..3 {
            assert!(rlast[d] < cell.lengths[d]);
            assert!(rlast[d] > 0.5 * cell.lengths[d]);
        }
    }

    #[test]
    fn kernel_cache_memoizes_per_key_and_shares_across_clones() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let g = PwGrid::with_dims(&cell, 2.0, [4, 4, 4]);
        let builds = std::cell::Cell::new(0usize);
        let build = |grid: &PwGrid| {
            builds.set(builds.get() + 1);
            grid.g2.iter().map(|&x| x + 1.0).collect::<Vec<f64>>()
        };
        let a = g.cached_kernel(1, 7, build);
        let b = g.cached_kernel(1, 7, build);
        assert!(Arc::ptr_eq(&a, &b), "same key must return the memoized kernel");
        assert_eq!(builds.get(), 1, "second lookup must not rebuild");
        let c = g.cached_kernel(1, 8, build);
        assert!(!Arc::ptr_eq(&a, &c), "different params are distinct kernels");
        // Same parameter bits under another kernel family: its own entry.
        let f = g.cached_kernel(2, 7, build);
        assert!(!Arc::ptr_eq(&a, &f), "families must not share entries");
        // Clones share the cache (same immutable G data).
        let g2 = g.clone();
        let d = g2.cached_kernel(1, 7, build);
        assert!(Arc::ptr_eq(&a, &d));
        assert_eq!(builds.get(), 3);
    }

    #[test]
    fn mask_zeroes_high_g() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let g = PwGrid::with_dims(&cell, 0.5, [8, 8, 8]);
        let mut c = vec![Complex64::ONE; g.len()];
        g.apply_mask(&mut c);
        let kept: usize = c.iter().filter(|z| z.re != 0.0).count();
        assert_eq!(kept, g.n_pw);
        assert!(kept < g.len());
    }
}
