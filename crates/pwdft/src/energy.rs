//! Total-energy bookkeeping.
//!
//! `E = E_kin + E_ei + E_H + E_xc + α·E_x + E_ext + E_Ewald`, each piece
//! computed from the same density/orbitals the Hamiltonian uses — which
//! is what makes the field-free rt-TDDFT total energy a conserved
//! quantity (the consistency test in the integration suite).

use crate::gvec::PwGrid;
use crate::wavefunction::Wavefunction;

/// Itemized total energy (hartree).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Kinetic energy `2 Σ_i d_i <φ_i|T|φ_i>`.
    pub kinetic: f64,
    /// Electron–ion energy (local pseudopotential, incl. alpha-Z term).
    pub eei: f64,
    /// Hartree energy.
    pub hartree: f64,
    /// Semi-local XC energy.
    pub xc: f64,
    /// Hybrid exchange contribution `α·E_x` (0 for semilocal runs).
    pub exact_exchange: f64,
    /// External (laser) field energy `∫ V_ext ρ dV`.
    pub external: f64,
    /// Ion–ion Ewald energy.
    pub ewald: f64,
}

impl EnergyBreakdown {
    /// Sum of all contributions.
    pub fn total(&self) -> f64 {
        self.kinetic
            + self.eei
            + self.hartree
            + self.xc
            + self.exact_exchange
            + self.external
            + self.ewald
    }
}

impl std::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "  kinetic        : {:+.8} Ha", self.kinetic)?;
        writeln!(f, "  electron-ion   : {:+.8} Ha", self.eei)?;
        writeln!(f, "  Hartree        : {:+.8} Ha", self.hartree)?;
        writeln!(f, "  XC (semilocal) : {:+.8} Ha", self.xc)?;
        writeln!(f, "  exact exchange : {:+.8} Ha", self.exact_exchange)?;
        writeln!(f, "  external field : {:+.8} Ha", self.external)?;
        writeln!(f, "  Ewald (ion-ion): {:+.8} Ha", self.ewald)?;
        write!(f, "  TOTAL          : {:+.8} Ha", self.total())
    }
}

/// Kinetic energy `spin · Σ_i d_i <φ_i|T|φ_i>` of a block with (natural)
/// occupations.
pub fn kinetic_energy(grid: &PwGrid, phi: &Wavefunction, occ: &[f64]) -> f64 {
    assert_eq!(occ.len(), phi.n_bands);
    let mut e = 0.0;
    let mut tband = vec![pwnum::Complex64::ZERO; phi.ng];
    for (i, &d) in occ.iter().enumerate() {
        if d.abs() < 1e-15 {
            continue;
        }
        grid.apply_kinetic(phi.band(i), &mut tband);
        e += d * pwnum::cvec::dotc(phi.band(i), &tband).re * phi.ip_scale;
    }
    crate::density::SPIN_FACTOR * e
}

/// External-field energy `∫ V_ext ρ dV`.
pub fn external_energy(grid: &PwGrid, vext: &[f64], rho: &[f64]) -> f64 {
    vext.iter().zip(rho).map(|(v, r)| v * r).sum::<f64>() * grid.dv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Cell;

    #[test]
    fn total_is_sum() {
        let e = EnergyBreakdown {
            kinetic: 1.0,
            eei: -2.0,
            hartree: 0.5,
            xc: -0.7,
            exact_exchange: -0.1,
            external: 0.01,
            ewald: -3.0,
        };
        assert!((e.total() + 4.29).abs() < 1e-12);
    }

    #[test]
    fn kinetic_energy_positive() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = crate::gvec::PwGrid::with_dims(&cell, 3.0, [8, 8, 8]);
        let wf = Wavefunction::random(&grid, 3, 2);
        let e = kinetic_energy(&grid, &wf, &[1.0, 0.5, 0.25]);
        assert!(e > 0.0);
        // Scaling: doubling occupations doubles the energy.
        let e2 = kinetic_energy(&grid, &wf, &[2.0, 1.0, 0.5]);
        assert!((e2 - 2.0 * e).abs() < 1e-10);
    }

    #[test]
    fn external_energy_of_uniform_field() {
        let cell = Cell::silicon_supercell(1, 1, 1);
        let grid = crate::gvec::PwGrid::with_dims(&cell, 3.0, [4, 4, 4]);
        let vext = vec![0.3; grid.len()];
        let rho = vec![2.0; grid.len()];
        let e = external_energy(&grid, &vext, &rho);
        assert!((e - 0.3 * 2.0 * grid.volume()).abs() < 1e-9);
    }
}
