//! Property-based tests for the plane-wave DFT substrate.

use proptest::prelude::*;
use pwdft::density::{
    density_from_natural, density_mixed_baseline, electron_count, natural_orbitals,
};
use pwdft::hamiltonian::hartree_potential;
use pwdft::smearing::occupations;
use pwdft::{Cell, FockOperator, PwGrid, Wavefunction};
use pwnum::cmat::CMat;
use pwnum::complex::{c64, Complex64};
use pwnum::eigh;

fn grid() -> PwGrid {
    PwGrid::with_dims(&Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6])
}

/// Builds a Hermitian σ with eigenvalues in (0,1) from raw entries.
fn make_sigma(n: usize, raw: &[f64]) -> CMat {
    let mut h = CMat::zeros(n, n);
    let mut k = 0;
    for i in 0..n {
        for j in i..n {
            let re = raw[k % raw.len()];
            let im = raw[(k + 1) % raw.len()];
            k += 2;
            if i == j {
                h[(i, j)] = Complex64::from_re(re);
            } else {
                h[(i, j)] = c64(re, im);
                h[(j, i)] = c64(re, -im);
            }
        }
    }
    let e = eigh(&h);
    let d: Vec<f64> = e.values.iter().map(|w| 1.0 / (1.0 + (2.0 * w).exp())).collect();
    let dm = CMat::from_real_diag(&d);
    let vd = e.vectors.matmul(&dm);
    pwnum::gemm::gemm(
        Complex64::ONE,
        &vd,
        pwnum::gemm::Op::None,
        &e.vectors,
        pwnum::gemm::Op::ConjTrans,
        Complex64::ZERO,
        None,
    )
    .hermitian_part()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn density_baseline_equals_diag_any_sigma(
        raw in proptest::collection::vec(-1.0f64..1.0, 32),
        seed in 0u64..1000,
    ) {
        let g = grid();
        let fft = g.fft();
        let wf = Wavefunction::random(&g, 4, seed);
        let sigma = make_sigma(4, &raw);
        let a = density_mixed_baseline(&g, &fft, &wf, &sigma);
        let nat = natural_orbitals(&wf, &sigma);
        let b = density_from_natural(&g, &fft, &nat);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        // Nonnegative density, correct electron count.
        prop_assert!(a.iter().all(|&r| r > -1e-10));
        let ne = electron_count(&g, &a);
        prop_assert!((ne - 2.0 * sigma.trace().re).abs() < 1e-7);
    }

    #[test]
    fn fock_baseline_equals_diag_any_sigma(
        raw in proptest::collection::vec(-1.0f64..1.0, 24),
        seed in 0u64..100,
    ) {
        let g = grid();
        let fft = g.fft();
        let wf = Wavefunction::random(&g, 3, seed);
        let sigma = make_sigma(3, &raw);
        let fock = FockOperator::new(&g, 0.2);
        let phi_r = wf.to_real_all(&fft);
        let base = fock.apply_mixed_baseline(&phi_r, &sigma);
        let nat = natural_orbitals(&wf, &sigma);
        let nat_r = nat.phi.to_real_all(&fft);
        let diag = fock.apply_diag(&nat_r, &nat.occ, &phi_r);
        let scale = base.iter().map(|z| z.abs()).fold(0.0f64, f64::max).max(1e-10);
        let diff = pwnum::cvec::max_abs_diff(&base, &diag);
        prop_assert!(diff < 1e-8 * scale, "diff {diff} scale {scale}");
    }

    #[test]
    fn hartree_is_linear_and_positive(
        amps in proptest::collection::vec(-0.5f64..0.5, 4),
    ) {
        let g = grid();
        let fft = g.fft();
        let make_rho = |scale: f64| -> Vec<f64> {
            (0..g.len())
                .map(|i| {
                    let r = g.r_coord(i);
                    let mut v = 1.0;
                    for (k, a) in amps.iter().enumerate() {
                        v += scale * a
                            * (2.0 * std::f64::consts::PI * (k + 1) as f64 * r[0]
                                / g.lengths[0])
                                .cos();
                    }
                    v
                })
                .collect()
        };
        let rho1 = make_rho(1.0);
        let rho2 = make_rho(2.0);
        let (v1, e1) = hartree_potential(&g, &fft, &rho1);
        let (v2, _) = hartree_potential(&g, &fft, &rho2);
        // Linearity of the potential in the non-uniform part.
        for i in 0..g.len() {
            prop_assert!((v2[i] - 2.0 * v1[i]).abs() < 1e-9);
        }
        // Hartree energy of the fluctuating part is nonnegative.
        prop_assert!(e1 >= -1e-12);
    }

    #[test]
    fn occupations_conserve_electron_count(
        eigs in proptest::collection::vec(-1.0f64..1.0, 8..30),
        ne_frac in 0.1f64..0.9,
        kt in 0.001f64..0.05,
    ) {
        let ne = (2.0 * eigs.len() as f64 * ne_frac).max(1.0);
        let (mu, occ) = occupations(&eigs, ne, kt);
        let total: f64 = 2.0 * occ.iter().sum::<f64>();
        prop_assert!((total - ne).abs() < 1e-8);
        prop_assert!(occ.iter().all(|&f| (0.0..=1.0).contains(&f)));
        // Monotonicity w.r.t. eigenvalue ordering.
        let mut pairs: Vec<(f64, f64)> = eigs.iter().cloned().zip(occ.iter().cloned()).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        prop_assert!(mu.is_finite());
    }

    #[test]
    fn orthonormalization_idempotent_under_rotation(
        seed in 0u64..500,
        angles in proptest::collection::vec(-1.0f64..1.0, 9),
    ) {
        let g = grid();
        let mut wf = Wavefunction::random(&g, 3, seed);
        // Random unitary from a Hermitian generator.
        let hgen = make_sigma(3, &angles);
        let u = eigh(&hgen).vectors;
        wf = wf.rotated(&u);
        // Still orthonormal after the unitary rotation.
        let s = wf.overlap(&wf);
        prop_assert!(s.max_abs_diff(&CMat::identity(3)) < 1e-9);
        // Löwdin on an orthonormal set is identity.
        let mut l = wf.clone();
        l.orthonormalize_lowdin();
        prop_assert!(wf.max_abs_diff(&l) < 1e-8);
    }
}
