//! Property suite for the Hermitian pair-symmetric Fock scheduler:
//! agreement with the asymmetric path on random mixed states (degenerate
//! occupations, zero tails, non-power-of-two grids, both backends),
//! bitwise-neutral screening at `occ_cutoff = 0`, and the FFT-volume
//! guarantee — at most `n(n+1)/2` Poisson solves for `n` occupied bands,
//! asserted through a counting backend.

use pwdft::fock::{FockOptions, ScreenedKernel};
use pwdft::{Cell, FockOperator, PwGrid, Wavefunction};
use pwnum::backend::{by_name, Backend, BackendHandle, GridTransform, GridTransform32, PairTask};
use pwnum::cmat::CMat;
use pwnum::complex::Complex64;
use pwnum::precision::{CMat32, Complex32};
use pwnum::cvec;
use pwnum::gemm::Op;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Wraps a real backend and counts how many grids flow through
/// `transform_batch` (and, for the fused pair-solve pipeline, how many
/// pair tasks flow through `fused_pair_solve`) — every screened Poisson
/// solve costs exactly two grids (forward + inverse), so `grids / 2` is
/// the solve count.
#[derive(Debug)]
struct CountingBackend {
    inner: BackendHandle,
    grids: AtomicUsize,
}

impl CountingBackend {
    fn new(inner: BackendHandle) -> Arc<Self> {
        Arc::new(CountingBackend { inner, grids: AtomicUsize::new(0) })
    }

    fn grids(&self) -> usize {
        self.grids.load(Ordering::SeqCst)
    }

    fn reset(&self) {
        self.grids.store(0, Ordering::SeqCst);
    }
}

impl Backend for CountingBackend {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn gemm(
        &self,
        alpha: Complex64,
        a: &CMat,
        op_a: Op,
        b: &CMat,
        op_b: Op,
        beta: Complex64,
        c0: Option<&CMat>,
    ) -> CMat {
        self.inner.gemm(alpha, a, op_a, b, op_b, beta, c0)
    }

    fn overlap(&self, a: &[Complex64], b: &[Complex64], band_len: usize, scale: f64) -> CMat {
        self.inner.overlap(a, b, band_len, scale)
    }

    fn rotate(&self, a: &[Complex64], q: &CMat, band_len: usize, out: &mut [Complex64]) {
        self.inner.rotate(a, q, band_len, out);
    }

    fn rotate_acc(
        &self,
        alpha: Complex64,
        a: &[Complex64],
        q: &CMat,
        band_len: usize,
        out: &mut [Complex64],
    ) {
        self.inner.rotate_acc(alpha, a, q, band_len, out);
    }

    fn lincomb(
        &self,
        ca: Complex64,
        a: &[Complex64],
        cb: Complex64,
        b: &[Complex64],
        out: &mut [Complex64],
    ) {
        self.inner.lincomb(ca, a, cb, b, out);
    }

    fn scale_by_real(&self, k: &[f64], field: &mut [Complex64]) {
        self.inner.scale_by_real(k, field);
    }

    fn hadamard_conj(&self, a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
        self.inner.hadamard_conj(a, b, out);
    }

    fn hadamard_acc(&self, w: Complex64, a: &[Complex64], b: &[Complex64], acc: &mut [Complex64]) {
        self.inner.hadamard_acc(w, a, b, acc);
    }

    fn hadamard_acc_conj(
        &self,
        w: Complex64,
        a: &[Complex64],
        b: &[Complex64],
        acc: &mut [Complex64],
    ) {
        self.inner.hadamard_acc_conj(w, a, b, acc);
    }

    fn transform_batch(&self, pass: &dyn GridTransform, data: &mut [Complex64], count: usize) {
        self.grids.fetch_add(count, Ordering::SeqCst);
        self.inner.transform_batch(pass, data, count);
    }

    fn fused_pair_solve(
        &self,
        solve: &dyn GridTransform,
        phi: &[Complex64],
        psi: &[Complex64],
        ng: usize,
        tasks: &[PairTask],
        out: &mut [Complex64],
    ) {
        // One fused round trip (forward + inverse) per task.
        self.grids.fetch_add(2 * tasks.len(), Ordering::SeqCst);
        self.inner.fused_pair_solve(solve, phi, psi, ng, tasks, out);
    }

    fn fused_pair_solve32(
        &self,
        solve: &dyn GridTransform32,
        phi: &[Complex32],
        psi: &[Complex32],
        ng: usize,
        tasks: &[PairTask],
        out: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        self.grids.fetch_add(2 * tasks.len(), Ordering::SeqCst);
        self.inner.fused_pair_solve32(solve, phi, psi, ng, tasks, out, comp);
    }

    fn fused_grid_passes(&self) -> bool {
        self.inner.fused_grid_passes()
    }

    fn take_buffer(&self, len: usize) -> Vec<Complex64> {
        self.inner.take_buffer(len)
    }

    fn take_buffer_copy(&self, src: &[Complex64]) -> Vec<Complex64> {
        self.inner.take_buffer_copy(src)
    }

    fn take_scratch(&self, len: usize) -> Vec<Complex64> {
        self.inner.take_scratch(len)
    }

    fn recycle_buffer(&self, buf: Vec<Complex64>) {
        self.inner.recycle_buffer(buf);
    }

    fn gemm32(
        &self,
        alpha: Complex32,
        a: &CMat32,
        op_a: Op,
        b: &CMat32,
        op_b: Op,
    ) -> CMat32 {
        self.inner.gemm32(alpha, a, op_a, b, op_b)
    }

    fn overlap32(&self, a: &[Complex32], b: &[Complex32], band_len: usize, scale: f32) -> CMat32 {
        self.inner.overlap32(a, b, band_len, scale)
    }

    fn rotate_acc32(
        &self,
        alpha: Complex32,
        a: &[Complex32],
        q: &CMat32,
        band_len: usize,
        out: &mut [Complex32],
    ) {
        self.inner.rotate_acc32(alpha, a, q, band_len, out);
    }

    fn scale_by_real32(&self, k: &[f32], field: &mut [Complex32]) {
        self.inner.scale_by_real32(k, field);
    }

    fn hadamard_conj32(&self, a: &[Complex32], b: &[Complex32], out: &mut [Complex32]) {
        self.inner.hadamard_conj32(a, b, out);
    }

    fn hadamard_acc_promote(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        self.inner.hadamard_acc_promote(w, a, b, acc, comp);
    }

    fn hadamard_acc_promote_conj(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        self.inner.hadamard_acc_promote_conj(w, a, b, acc, comp);
    }

    fn transform_batch32(&self, pass: &dyn GridTransform32, data: &mut [Complex32], count: usize) {
        // fp32 grids count toward the same FFT-volume budget.
        self.grids.fetch_add(count, Ordering::SeqCst);
        self.inner.transform_batch32(pass, data, count);
    }

    fn take_scratch32(&self, len: usize) -> Vec<Complex32> {
        self.inner.take_scratch32(len)
    }

    fn recycle_buffer32(&self, buf: Vec<Complex32>) {
        self.inner.recycle_buffer32(buf);
    }
}

/// Non-power-of-two (2/3/5-smooth) test grid, the paper's grid family.
fn smooth_grid() -> PwGrid {
    let cell = Cell::silicon_supercell(1, 1, 1);
    PwGrid::with_dims(&cell, 2.0, [6, 9, 10])
}

fn lcg_occ(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn rel_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    let scale = b.iter().map(|z| z.abs()).fold(0.0f64, f64::max).max(1.0);
    cvec::max_abs_diff(a, b) / scale
}

#[test]
fn pair_symmetric_agrees_with_asymmetric_on_mixed_states() {
    let grid = smooth_grid();
    let fft = grid.fft();
    let occupation_sets: [Vec<f64>; 4] = [
        lcg_occ(6, 7),                          // random mixed
        vec![1.0, 1.0, 0.5, 0.5, 0.5, 0.25],    // degenerate
        vec![1.0, 0.9, 0.4, 0.0, 0.0, 0.0],     // zero-occupation tail
        vec![0.8; 6],                           // fully degenerate
    ];
    for be_name in ["reference", "blocked"] {
        let be = by_name(be_name).unwrap();
        let fock = FockOperator::with_backend(&grid, 0.2, be.clone());
        for (k, occ) in occupation_sets.iter().enumerate() {
            let wf = Wavefunction::random(&grid, occ.len(), 100 + k as u64);
            let phi_r = wf.to_real_all(&fft);
            let psi_copy = phi_r.clone(); // distinct pointer → asymmetric path
            let (sym, s_sym) = fock.apply_diag_stats(&phi_r, occ, &phi_r);
            let (asym, s_asym) = fock.apply_diag_stats(&phi_r, occ, &psi_copy);
            assert!(s_sym.symmetric && !s_asym.symmetric);
            assert!(
                s_sym.solves <= occ.len() * (occ.len() + 1) / 2,
                "{be_name}/set {k}: {} solves",
                s_sym.solves
            );
            assert!(s_sym.solves < s_asym.solves || occ.len() < 2);
            let d = rel_diff(&sym, &asym);
            assert!(d < 1e-10, "{be_name}/set {k}: pairsym vs asym diff {d}");
        }
    }
}

#[test]
fn backends_agree_on_pair_symmetric_apply() {
    let grid = smooth_grid();
    let fft = grid.fft();
    let occ = vec![1.0, 1.0, 0.7, 0.3, 0.0];
    let wf = Wavefunction::random(&grid, occ.len(), 41);
    let phi_r = wf.to_real_all(&fft);
    let f_ref = FockOperator::with_backend(&grid, 0.15, by_name("reference").unwrap());
    let f_blk = FockOperator::with_backend(&grid, 0.15, by_name("blocked").unwrap());
    let a = f_ref.apply_pure(&phi_r, &occ);
    let b = f_blk.apply_pure(&phi_r, &occ);
    let d = rel_diff(&a, &b);
    assert!(d < 1e-10, "reference vs blocked pairsym diff {d}");
}

#[test]
fn zero_cutoff_is_bitwise_identical_to_no_screening() {
    let grid = smooth_grid();
    let fft = grid.fft();
    // Zero tail: these are the pairs screening would drop.
    let occ = vec![1.0, 0.6, 0.0, 0.0];
    let wf = Wavefunction::random(&grid, occ.len(), 55);
    let phi_r = wf.to_real_all(&fft);
    let be = by_name("reference").unwrap();
    let mk = |cutoff: f64| {
        FockOperator::with_options(
            &grid,
            0.2,
            be.clone(),
            FockOptions { occ_cutoff: cutoff, tile_bands: 8, ..Default::default() },
        )
    };
    // occ_cutoff = 0 keeps every pair (|d| < 0 is never true): screening
    // fully disabled, same as a negative sentinel cutoff.
    let (v0, s0) = mk(0.0).apply_pure_stats(&phi_r, &occ);
    let (voff, soff) = mk(-1.0).apply_pure_stats(&phi_r, &occ);
    assert_eq!(s0.skipped_pairs, 0);
    assert_eq!(s0.skipped_weight, 0.0);
    assert_eq!(s0.solves, soff.solves);
    assert_eq!(cvec::max_abs_diff(&v0, &voff), 0.0, "cutoff 0 must not screen");
    // The default cutoff only drops exactly-zero contributions, whose
    // scatter would add w = 0 products: bitwise identical output too.
    let (vdef, sdef) = mk(pwdft::smearing::DEFAULT_OCC_CUTOFF).apply_pure_stats(&phi_r, &occ);
    assert!(sdef.solves < s0.solves);
    assert_eq!(cvec::max_abs_diff(&vdef, &v0), 0.0, "default cutoff changed the result");
}

#[test]
fn symmetric_apply_fft_volume_is_halved() {
    // The acceptance bound: for n occupied bands the symmetric apply
    // performs at most n(n+1)/2 (+ tile padding — none here: partial
    // tiles solve partial batches) Poisson solves, i.e. n(n+1) FFT grids,
    // where the asymmetric path pays 2·n².
    let cell = Cell::silicon_supercell(1, 1, 1);
    let grid = PwGrid::with_dims(&cell, 2.0, [6, 6, 6]);
    let fft = grid.fft();
    let n = 6;
    let occ = vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.5]; // all occupied
    let wf = Wavefunction::random(&grid, n, 9);
    let phi_r = wf.to_real_all(&fft);
    let pairs = n * (n + 1) / 2;
    // The staged tile scheduler, across tile sizes (partial tiles solve
    // partial batches — no padding volume).
    for tile in [1usize, 3, 32] {
        let counter = CountingBackend::new(by_name("reference").unwrap());
        let be: BackendHandle = counter.clone();
        let fock = FockOperator::with_options(
            &grid,
            0.2,
            be,
            FockOptions { tile_bands: tile, ..Default::default() }.with_fused(false),
        );
        counter.reset();
        let (_, stats) = fock.apply_pure_stats(&phi_r, &occ);
        assert_eq!(stats.solves, pairs, "tile {tile}");
        assert_eq!(counter.grids(), 2 * pairs, "tile {tile}: FFT grid count");

        counter.reset();
        let psi_copy = phi_r.clone();
        let (_, stats) = fock.apply_diag_stats(&phi_r, &occ, &psi_copy);
        assert_eq!(stats.solves, n * n);
        assert_eq!(counter.grids(), 2 * n * n, "tile {tile}: asymmetric FFT grid count");
    }
    // The fused pipeline pays exactly the same FFT volume — one round
    // trip per surviving pair, tile-free.
    let counter = CountingBackend::new(by_name("reference").unwrap());
    let be: BackendHandle = counter.clone();
    let fock = FockOperator::with_options(&grid, 0.2, be, FockOptions::default());
    let (_, stats) = fock.apply_pure_stats(&phi_r, &occ);
    assert_eq!(stats.solves, pairs, "fused");
    assert_eq!(counter.grids(), 2 * pairs, "fused: FFT grid count");
}

#[test]
fn kernel_is_shared_between_operators_on_one_grid() {
    // Satellite: ScreenedKernel::hse memoizes per (grid, ω) — repeated
    // operator construction in hot loops must not re-evaluate exp(Ng).
    let grid = smooth_grid();
    let k1 = ScreenedKernel::hse(&grid, 0.106);
    let k2 = ScreenedKernel::hse(&grid, 0.106);
    assert!(Arc::ptr_eq(&k1.kg, &k2.kg), "same ω must share the cached kernel");
    let k3 = ScreenedKernel::hse(&grid, 0.2);
    assert!(!Arc::ptr_eq(&k1.kg, &k3.kg), "different ω is a different kernel");
}
