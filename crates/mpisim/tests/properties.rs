//! Property-based tests: collectives must agree with serial references
//! for arbitrary rank counts, node groupings and payloads, and virtual
//! clocks must behave like Lamport clocks.

use mpisim::{Category, Cluster, NetworkModel, Topology};
use proptest::prelude::*;

fn arb_net() -> impl Strategy<Value = NetworkModel> {
    (1e-7f64..1e-5, 1e8f64..1e11).prop_map(|(lat, bw)| NetworkModel {
        topology: Topology::FullyConnected,
        hop_latency: lat,
        sw_overhead: lat * 0.5,
        bandwidth: bw,
        shm_bandwidth: bw * 10.0,
        shm_latency: lat * 0.1,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_serial_sum(
        p in 1usize..9,
        data in proptest::collection::vec(-100.0f64..100.0, 1..20),
        net in arb_net(),
    ) {
        let out = Cluster::new(p, 2, net).run(|c| {
            let mine: Vec<f64> = data.iter().map(|x| x * (c.rank() + 1) as f64).collect();
            c.allreduce(mine)
        });
        // Serial reference: sum over ranks of data * (rank+1).
        let factor: f64 = (1..=p).map(|r| r as f64).sum();
        for (v, _) in &out {
            for (got, want) in v.iter().zip(data.iter().map(|x| x * factor)) {
                prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn node_aware_allreduce_matches_flat(
        p in 1usize..13,
        rpn in 1usize..5,
        data in proptest::collection::vec(-10.0f64..10.0, 1..8),
    ) {
        let flat = Cluster::new(p, rpn, NetworkModel::ideal()).run(|c| {
            let mine: Vec<f64> = data.iter().map(|x| x + c.rank() as f64).collect();
            c.allreduce(mine)
        });
        let aware = Cluster::new(p, rpn, NetworkModel::ideal()).run(|c| {
            let mine: Vec<f64> = data.iter().map(|x| x + c.rank() as f64).collect();
            c.allreduce_node_aware(mine)
        });
        for ((a, _), (b, _)) in flat.iter().zip(&aware) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn bcast_any_root(p in 1usize..10, root_sel in 0usize..10, len in 1usize..50) {
        let root = root_sel % p;
        let out = Cluster::ideal(p).run(|c| {
            let v = if c.rank() == root {
                Some((0..len as u64).collect::<Vec<u64>>())
            } else {
                None
            };
            c.bcast(root, v)
        });
        for (v, _) in &out {
            prop_assert_eq!(v.len(), len);
            for (i, x) in v.iter().enumerate() {
                prop_assert_eq!(*x, i as u64);
            }
        }
    }

    #[test]
    fn alltoallv_is_transpose(p in 1usize..8) {
        let out = Cluster::ideal(p).run(|c| {
            // Chunk for dst d has length (rank + d + 1) and value rank*100+d.
            let chunks: Vec<Vec<u64>> = (0..p)
                .map(|d| vec![(c.rank() * 100 + d) as u64; c.rank() + d + 1])
                .collect();
            c.alltoallv(chunks)
        });
        for (me, (recv, _)) in out.iter().enumerate() {
            for (src, chunk) in recv.iter().enumerate() {
                prop_assert_eq!(chunk.len(), src + me + 1);
                for x in chunk {
                    prop_assert_eq!(*x, (src * 100 + me) as u64);
                }
            }
        }
    }

    #[test]
    fn allgatherv_ordered(p in 1usize..9, base in 0u64..100) {
        let out = Cluster::ideal(p).run(|c| {
            c.allgatherv(vec![base + c.rank() as u64; c.rank() + 1])
        });
        for (recv, _) in &out {
            for (src, chunk) in recv.iter().enumerate() {
                prop_assert_eq!(chunk.len(), src + 1);
                prop_assert!(chunk.iter().all(|&x| x == base + src as u64));
            }
        }
    }

    #[test]
    fn clocks_never_decrease_and_barrier_syncs(
        p in 2usize..7,
        work in proptest::collection::vec(0.0f64..2.0, 8),
    ) {
        let out = Cluster::ideal(p).run(|c| {
            let w = work[c.rank() % work.len()];
            c.compute(w);
            let before = c.now();
            c.barrier();
            let after = c.now();
            (before, after)
        });
        let max_before = out.iter().map(|((b, _), _)| *b).fold(0.0f64, f64::max);
        for ((before, after), _) in &out {
            prop_assert!(after >= before);
            prop_assert!((after - max_before).abs() < 1e-12, "barrier must sync to max");
        }
    }

    #[test]
    fn ring_exchange_timing_counts_in_sendrecv(p in 2usize..7, net in arb_net()) {
        let out = Cluster::new(p, 1, net).run(|c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let mut token = vec![c.rank() as u64; 1000];
            for step in 0..c.size() - 1 {
                token = c.sendrecv(right, left, step as u64, token);
            }
            (token[0], c.stats.time(Category::Sendrecv))
        });
        for (rank, ((token, t_sr), _)) in out.iter().enumerate() {
            // After p-1 rotations the token originated at rank+1.
            prop_assert_eq!(*token, ((rank + 1) % p) as u64);
            prop_assert!(*t_sr > 0.0);
        }
    }
}
