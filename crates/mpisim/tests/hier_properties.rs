//! Property tests for the hierarchical collectives: randomized node
//! shapes (1–8 nodes × 1–64 ranks per node, with a non-uniform last
//! node), checking
//!   1. bitwise agreement with the flat collectives (on integer-valued
//!      data, where summation is exact in any association order),
//!   2. conservation of the per-phase byte counters in `Stats`
//!      (`intra_bytes + inter_bytes == bytes_sent` on every rank).

use mpisim::{Cluster, NetworkModel};
use proptest::prelude::*;

/// Random cluster shape: up to 8 nodes of up to 64 ranks; `trim` ranks
/// are removed from the last node so it is non-uniform.
fn shapes() -> impl Strategy<Value = (usize, usize)> {
    shapes_capped(64)
}

/// Same domain with a smaller per-node cap, for the O(p²)-message
/// all-to-all agreement test (512-rank flat all-to-all is 260k messages
/// per case — correctness adds nothing over 128 ranks there).
fn shapes_capped(max_rpn: usize) -> impl Strategy<Value = (usize, usize)> {
    (1usize..9, 1usize..(max_rpn + 1), 0usize..8).prop_map(|(nodes, rpn, trim)| {
        let p = (nodes * rpn).saturating_sub(trim.min(rpn - 1)).max(1);
        (p, rpn)
    })
}

fn check_phase_conservation(reports: &[(impl Sized, mpisim::RankReport)]) {
    for (rank, (_, rep)) in reports.iter().enumerate() {
        assert_eq!(
            rep.stats.intra_bytes + rep.stats.inter_bytes,
            rep.stats.bytes_sent,
            "rank {rank}: phase byte counters must partition bytes_sent"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn allreduce_agrees_bitwise_with_flat(shape in shapes(), seed in 0u64..1000) {
        let (p, rpn) = shape;
        // Integer-valued f64 entries: exact addition in any order, so the
        // hierarchical combine tree must match the flat one bitwise.
        let mk = move |rank: usize, i: usize| ((rank * 31 + i * 7 + seed as usize) % 97) as f64;
        let n = 5usize;
        let flat = Cluster::new(p, rpn, NetworkModel::ideal())
            .run(move |c| c.allreduce((0..n).map(|i| mk(c.rank(), i)).collect::<Vec<f64>>()));
        let hier = Cluster::new(p, rpn, NetworkModel::ideal())
            .run(move |c| c.hier_allreduce((0..n).map(|i| mk(c.rank(), i)).collect::<Vec<f64>>()));
        for rank in 0..p {
            prop_assert!(flat[rank].0 == hier[rank].0, "rank {} of p={} rpn={}", rank, p, rpn);
        }
        check_phase_conservation(&hier);
    }

    #[test]
    fn allgatherv_agrees_with_flat(shape in shapes(), seed in 0u64..1000) {
        let (p, rpn) = shape;
        let flat = Cluster::new(p, rpn, NetworkModel::ideal()).run(move |c| {
            let mine: Vec<u64> = (0..(c.rank() % 4) + 1).map(|i| seed + (c.rank() * 10 + i) as u64).collect();
            c.allgatherv(mine)
        });
        let hier = Cluster::new(p, rpn, NetworkModel::ideal()).run(move |c| {
            let mine: Vec<u64> = (0..(c.rank() % 4) + 1).map(|i| seed + (c.rank() * 10 + i) as u64).collect();
            c.hier_allgatherv(mine)
        });
        for rank in 0..p {
            prop_assert!(flat[rank].0 == hier[rank].0, "rank {} of p={} rpn={}", rank, p, rpn);
        }
        check_phase_conservation(&hier);
    }

    #[test]
    fn alltoallv_agrees_with_flat(shape in shapes_capped(16), seed in 0u64..1000) {
        let (p, rpn) = shape;
        let chunks_of = move |rank: usize, p: usize| -> Vec<Vec<u64>> {
            (0..p)
                .map(|d| (0..(rank + d) % 3 + 1).map(|i| seed + (rank * 1000 + d * 10 + i) as u64).collect())
                .collect()
        };
        let flat = Cluster::new(p, rpn, NetworkModel::ideal()).run(move |c| {
            let ch = chunks_of(c.rank(), c.size());
            c.alltoallv(ch)
        });
        let hier = Cluster::new(p, rpn, NetworkModel::ideal()).run(move |c| {
            let ch = chunks_of(c.rank(), c.size());
            let members: Vec<usize> = (0..c.size()).collect();
            c.alltoallv_group_auto(&members, ch)
        });
        for rank in 0..p {
            prop_assert!(flat[rank].0 == hier[rank].0, "rank {} of p={} rpn={}", rank, p, rpn);
        }
        check_phase_conservation(&hier);
    }

    #[test]
    fn reduce_agrees_with_leader_sum(shape in shapes(), root_pick in 0usize..64) {
        let (p, rpn) = shape;
        let root = root_pick % p;
        let n = 4usize;
        let out = Cluster::new(p, rpn, NetworkModel::ideal())
            .run(move |c| c.hier_reduce(root, vec![c.rank() as u64 + 1; n]));
        let expect = (p * (p + 1) / 2) as u64;
        for (rank, (v, _)) in out.iter().enumerate() {
            if rank == root {
                let v = v.as_ref().expect("root must hold the reduction");
                prop_assert_eq!(v.len(), n);
                prop_assert!(v.iter().all(|&x| x == expect), "p={} rpn={} root={}", p, rpn, root);
            } else {
                prop_assert!(v.is_none());
            }
        }
        check_phase_conservation(&out);
    }
}
