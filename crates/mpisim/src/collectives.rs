//! Collective operations built on the point-to-point layer.
//!
//! Algorithms follow standard MPI implementations so the virtual-clock
//! costs have the right asymptotics: binomial-tree broadcast/reduce
//! (log p rounds), pairwise-exchange `alltoallv`, and ring `allgatherv`.
//! Every internal message is attributed to the collective's own timing
//! category, matching how the paper reports Table I.

use crate::comm::{tag_internal, Comm, Payload, TAG_ALLGATHERV, TAG_ALLTOALLV, TAG_BCAST, TAG_GATHER, TAG_REDUCE};
use crate::stats::Category;

/// Element-wise reducible payloads for `allreduce`.
pub trait Reducible: Payload + Clone {
    /// Combines `other` into `self` (element-wise sum).
    fn combine(&mut self, other: &Self);
}

impl Reducible for Vec<f64> {
    fn combine(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "allreduce length mismatch");
        for (a, b) in self.iter_mut().zip(other) {
            *a += *b;
        }
    }
}

impl Reducible for Vec<pwnum::complex::Complex64> {
    fn combine(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "allreduce length mismatch");
        for (a, b) in self.iter_mut().zip(other) {
            *a += *b;
        }
    }
}

impl Reducible for Vec<u64> {
    fn combine(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "allreduce length mismatch");
        for (a, b) in self.iter_mut().zip(other) {
            *a += *b;
        }
    }
}

impl Comm {
    /// Broadcast from `root` using a binomial tree. Non-root ranks pass
    /// `None` and receive the value; the root passes `Some(value)`.
    pub fn bcast<T: Payload + Clone>(&mut self, root: usize, value: Option<T>) -> T {
        let _s = pwobs::span("comm.bcast");
        self.bcast_cat(root, value, Category::Bcast)
    }

    pub(crate) fn bcast_cat<T: Payload + Clone>(
        &mut self,
        root: usize,
        value: Option<T>,
        cat: Category,
    ) -> T {
        let p = self.size();
        let rel = (self.rank() + p - root) % p;
        let mut have: Option<T> = if rel == 0 {
            Some(value.expect("bcast root must supply a value"))
        } else {
            None
        };
        // Round k: ranks with rel < 2^k forward to rel + 2^k.
        let mut mask = 1usize;
        let mut round = 0u64;
        while mask < p {
            let tag = tag_internal(TAG_BCAST, round, root as u64);
            if rel < mask {
                let dst_rel = rel + mask;
                if dst_rel < p {
                    let dst = (dst_rel + root) % p;
                    let v = have.as_ref().expect("holder must have the value").clone();
                    let bytes = v.byte_len();
                    self.post(dst, tag, Box::new(v), bytes);
                }
            } else if rel < 2 * mask {
                let src = (rel - mask + root) % p;
                let env = self.take_env(src, tag, cat);
                have = Some(
                    *env.payload
                        .downcast::<T>()
                        .unwrap_or_else(|_| panic!("bcast type mismatch")),
                );
            }
            mask <<= 1;
            round += 1;
        }
        have.expect("bcast did not deliver a value")
    }

    /// All-reduce (element-wise sum) via binomial reduce-to-zero plus
    /// binomial broadcast. All time lands in `Allreduce`.
    pub fn allreduce<T: Reducible>(&mut self, value: T) -> T {
        let _s = pwobs::span("comm.allreduce");
        let p = self.size();
        if p == 1 {
            return value;
        }
        let rank = self.rank();
        let mut acc = value;
        // Reduce: round k, ranks with (rank % 2^{k+1}) == 2^k send to rank - 2^k.
        let mut mask = 1usize;
        let mut round = 0u64;
        while mask < p {
            let tag = tag_internal(TAG_REDUCE, round, 0);
            if rank & mask != 0 {
                let dst = rank - mask;
                let bytes = acc.byte_len();
                self.post(dst, tag, Box::new(acc.clone()), bytes);
                break; // This rank is done contributing.
            } else {
                let src = rank + mask;
                if src < p {
                    let env = self.take_env(src, tag, Category::Allreduce);
                    let other = *env
                        .payload
                        .downcast::<T>()
                        .unwrap_or_else(|_| panic!("allreduce type mismatch"));
                    acc.combine(&other);
                }
            }
            mask <<= 1;
            round += 1;
        }
        self.bcast_cat(0, if rank == 0 { Some(acc) } else { None }, Category::Allreduce)
    }

    /// Node-aware all-reduce mirroring the shared-memory optimization of
    /// Fig. 6(b): intra-node reduction to the node leader, inter-node
    /// all-reduce among leaders only, then intra-node broadcast.
    pub fn allreduce_node_aware<T: Reducible>(&mut self, value: T) -> T {
        let rpn = self.ranks_per_node();
        if rpn == 1 || self.size() <= rpn {
            return self.allreduce(value);
        }
        let leader = self.node_leader();
        let tag_up = tag_internal(TAG_REDUCE, 100, self.node() as u64);
        let tag_down = tag_internal(TAG_REDUCE, 101, self.node() as u64);
        if self.rank() == leader {
            let mut acc = value;
            let members: Vec<usize> = self.node_ranks().skip(1).collect();
            for r in members {
                let env = self.take_env(r, tag_up, Category::Allreduce);
                let other = *env
                    .payload
                    .downcast::<T>()
                    .unwrap_or_else(|_| panic!("allreduce type mismatch"));
                acc.combine(&other);
            }
            // Inter-node phase among leaders: emulate a binomial pattern
            // over node indices with direct messages.
            let n_nodes = self.size().div_ceil(rpn);
            let my_node = self.node();
            let mut mask = 1usize;
            let mut round = 200u64;
            while mask < n_nodes {
                let tag = tag_internal(TAG_REDUCE, round, 0);
                if my_node & mask != 0 {
                    let dst = (my_node - mask) * rpn;
                    let bytes = acc.byte_len();
                    self.post(dst, tag, Box::new(acc.clone()), bytes);
                    break;
                } else if my_node + mask < n_nodes {
                    let src = (my_node + mask) * rpn;
                    let env = self.take_env(src, tag, Category::Allreduce);
                    let other = *env
                        .payload
                        .downcast::<T>()
                        .unwrap_or_else(|_| panic!("allreduce type mismatch"));
                    acc.combine(&other);
                }
                mask <<= 1;
                round += 1;
            }
            // Binomial broadcast from node 0's leader down the leader tree.
            let mut mask = 1usize;
            let mut round = 300u64;
            while mask < n_nodes {
                let tag = tag_internal(TAG_REDUCE, round, 0);
                if my_node < mask {
                    let dst_node = my_node + mask;
                    if dst_node < n_nodes {
                        let bytes = acc.byte_len();
                        self.post(dst_node * rpn, tag, Box::new(acc.clone()), bytes);
                    }
                } else if my_node < 2 * mask {
                    let src = (my_node - mask) * rpn;
                    let env = self.take_env(src, tag, Category::Allreduce);
                    acc = *env
                        .payload
                        .downcast::<T>()
                        .unwrap_or_else(|_| panic!("allreduce type mismatch"));
                }
                mask <<= 1;
                round += 1;
            }
            // Intra-node broadcast.
            let members: Vec<usize> = self.node_ranks().skip(1).collect();
            for r in members {
                let bytes = acc.byte_len();
                self.post(r, tag_down, Box::new(acc.clone()), bytes);
            }
            acc
        } else {
            let bytes = value.byte_len();
            self.post(leader, tag_up, Box::new(value), bytes);
            let env = self.take_env(leader, tag_down, Category::Allreduce);
            *env.payload
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("allreduce type mismatch"))
        }
    }

    /// Personalized all-to-all: `chunks[d]` is sent to rank `d`; returns
    /// the vector of chunks received (indexed by source). Pairwise
    /// exchange, `p-1` rounds — the world-sized special case of
    /// [`Comm::alltoallv_group`].
    pub fn alltoallv<T: Send + Clone + 'static>(&mut self, chunks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let _s = pwobs::span("comm.alltoallv");
        let members: Vec<usize> = (0..self.size()).collect();
        self.alltoallv_group(&members, chunks)
    }

    /// Personalized all-to-all restricted to a rank group (the
    /// sub-communicator transpose of the 2-D band×grid layout): `members`
    /// lists the group's world ranks in slab order — identical on every
    /// member — and `chunks[i]` is sent to `members[i]`. Returns the
    /// chunks received, indexed by group position. Pairwise exchange,
    /// `members.len() - 1` rounds; disjoint groups can run concurrently
    /// (tags are salted by the group's first member, and the rank pairs
    /// never cross group boundaries).
    pub fn alltoallv_group<T: Send + Clone + 'static>(
        &mut self,
        members: &[usize],
        mut chunks: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let g = members.len();
        assert_eq!(chunks.len(), g, "alltoallv_group needs one chunk per member");
        let me = members
            .iter()
            .position(|&r| r == self.rank())
            .expect("alltoallv_group caller must be a group member");
        let mut out: Vec<Vec<T>> = (0..g).map(|_| Vec::new()).collect();
        out[me] = std::mem::take(&mut chunks[me]);
        let salt = members[0] as u64;
        for k in 1..g {
            let dst = (me + k) % g;
            let src = (me + g - k) % g;
            let tag = tag_internal(TAG_ALLTOALLV, k as u64, salt);
            let payload = std::mem::take(&mut chunks[dst]);
            let bytes = payload.byte_len();
            self.post(members[dst], tag, Box::new(payload), bytes);
            let env = self.take_env(members[src], tag, Category::Alltoallv);
            out[src] = *env
                .payload
                .downcast::<Vec<T>>()
                .unwrap_or_else(|_| panic!("alltoallv_group type mismatch"));
        }
        out
    }

    /// All-gather with per-rank sizes: every rank contributes `mine` and
    /// receives all contributions ordered by rank. Ring algorithm,
    /// `p-1` forwarding steps.
    pub fn allgatherv<T: Send + Clone + 'static>(&mut self, mine: Vec<T>) -> Vec<Vec<T>> {
        let _s = pwobs::span("comm.allgatherv");
        let p = self.size();
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        out[self.rank()] = mine;
        let right = (self.rank() + 1) % p;
        let left = (self.rank() + p - 1) % p;
        for step in 0..p.saturating_sub(1) {
            // Forward the block received in the previous step (initially ours).
            let fwd_idx = (self.rank() + p - step) % p;
            let tag = tag_internal(TAG_ALLGATHERV, step as u64, 0);
            let payload = out[fwd_idx].clone();
            let bytes = payload.byte_len();
            self.post(right, tag, Box::new(payload), bytes);
            let env = self.take_env(left, tag, Category::Allgatherv);
            let recv_idx = (self.rank() + p - step - 1) % p;
            out[recv_idx] = *env
                .payload
                .downcast::<Vec<T>>()
                .unwrap_or_else(|_| panic!("allgatherv type mismatch"));
        }
        out
    }

    /// Gather to `root`: returns `Some(all chunks)` on the root.
    pub fn gather<T: Send + Clone + 'static>(&mut self, root: usize, mine: Vec<T>) -> Option<Vec<Vec<T>>> {
        let p = self.size();
        let tag = tag_internal(TAG_GATHER, 0, root as u64);
        if self.rank() == root {
            let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
            out[root] = mine;
            for r in (0..p).filter(|&r| r != root) {
                let env = self.take_env(r, tag, Category::Allgatherv);
                out[r] = *env
                    .payload
                    .downcast::<Vec<T>>()
                    .unwrap_or_else(|_| panic!("gather type mismatch"));
            }
            Some(out)
        } else {
            let bytes = mine.byte_len();
            self.post(root, tag, Box::new(mine), bytes);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::{Cluster, Comm};
    use crate::stats::Category;
    use crate::topology::NetworkModel;

    #[test]
    fn bcast_delivers_to_all() {
        for p in [1, 2, 3, 4, 7, 8] {
            for root in [0, p - 1, p / 2] {
                let out = Cluster::ideal(p).run(|c| {
                    let v = if c.rank() == root { Some(vec![3.0f64, 1.0, 4.0]) } else { None };
                    c.bcast(root, v)
                });
                for (v, _) in &out {
                    assert_eq!(*v, vec![3.0, 1.0, 4.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn allreduce_sums() {
        for p in [1, 2, 3, 5, 8, 13] {
            let out = Cluster::ideal(p).run(|c| c.allreduce(vec![c.rank() as f64, 1.0]));
            let expect = (p * (p - 1) / 2) as f64;
            for (v, _) in &out {
                assert!((v[0] - expect).abs() < 1e-12, "p={p}");
                assert!((v[1] - p as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn allreduce_node_aware_matches_flat() {
        for (p, rpn) in [(8, 4), (8, 2), (12, 4), (6, 3), (7, 4)] {
            let out = Cluster::new(p, rpn, NetworkModel::ideal())
                .run(|c| c.allreduce_node_aware(vec![c.rank() as f64 + 0.5]));
            let expect = (p * (p - 1)) as f64 / 2.0 + 0.5 * p as f64;
            for (v, _) in &out {
                assert!((v[0] - expect).abs() < 1e-12, "p={p} rpn={rpn} got {}", v[0]);
            }
        }
    }

    #[test]
    fn alltoallv_transposes() {
        let p = 4;
        let out = Cluster::ideal(p).run(|c| {
            let chunks: Vec<Vec<u64>> =
                (0..p).map(|d| vec![(c.rank() * 10 + d) as u64]).collect();
            c.alltoallv(chunks)
        });
        for (rank, (recv, _)) in out.iter().enumerate() {
            for (src, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![(src * 10 + rank) as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_group_transposes_within_disjoint_rows() {
        // 2 disjoint groups of 3 ranks exchange concurrently; each must
        // see exactly its own group's chunks, in group order.
        let p = 6;
        let out = Cluster::ideal(p).run(|c| {
            let members: Vec<usize> =
                if c.rank() < 3 { vec![0, 1, 2] } else { vec![3, 4, 5] };
            let chunks: Vec<Vec<u64>> = members
                .iter()
                .map(|&d| vec![(c.rank() * 100 + d) as u64])
                .collect();
            c.alltoallv_group(&members, chunks)
        });
        for (rank, (recv, _)) in out.iter().enumerate() {
            let members: [usize; 3] = if rank < 3 { [0, 1, 2] } else { [3, 4, 5] };
            assert_eq!(recv.len(), 3);
            for (pos, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![(members[pos] * 100 + rank) as u64], "rank {rank}");
            }
        }
    }

    #[test]
    fn alltoallv_group_of_all_matches_alltoallv() {
        let p = 4;
        let out = Cluster::ideal(p).run(|c| {
            let make = |c: &Comm| -> Vec<Vec<u64>> {
                (0..p).map(|d| vec![(c.rank() * 10 + d) as u64, 42]).collect()
            };
            let members: Vec<usize> = (0..p).collect();
            let grouped = c.alltoallv_group(&members, make(c));
            let flat = c.alltoallv(make(c));
            grouped == flat
        });
        for (same, _) in &out {
            assert!(same);
        }
    }

    #[test]
    fn allgatherv_collects_in_rank_order() {
        let p = 5;
        let out = Cluster::ideal(p).run(|c| {
            // Variable sizes: rank r contributes r+1 elements.
            let mine: Vec<u64> = (0..=c.rank() as u64).collect();
            c.allgatherv(mine)
        });
        for (recv, _) in &out {
            for (src, chunk) in recv.iter().enumerate() {
                let expect: Vec<u64> = (0..=src as u64).collect();
                assert_eq!(chunk, &expect);
            }
        }
    }

    #[test]
    fn gather_reaches_root() {
        let p = 6;
        let out = Cluster::ideal(p).run(|c| c.gather(2, vec![c.rank() as u64]));
        for (rank, (res, _)) in out.iter().enumerate() {
            if rank == 2 {
                let all = res.as_ref().expect("root gets data");
                for (src, chunk) in all.iter().enumerate() {
                    assert_eq!(chunk, &vec![src as u64]);
                }
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn bcast_costs_scale_with_log_p() {
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 0.0,
            sw_overhead: 0.0,
            bandwidth: 1e9,
            shm_bandwidth: 1e9,
            shm_latency: 0.0,
        };
        // Broadcasting 1 MB: the last leaf receives after ~log2(p) serial hops.
        let time_at = |p: usize| {
            let out = Cluster::new(p, 1, net.clone()).run(|c| {
                let v = if c.rank() == 0 { Some(vec![0u8; 1_000_000]) } else { None };
                let _ = c.bcast(0, v);
                c.now()
            });
            out.iter().map(|(t, _)| *t).fold(0.0f64, f64::max)
        };
        let t4 = time_at(4);
        let t16 = time_at(16);
        // log2(16)/log2(4) = 2 rounds ratio.
        assert!(t16 > 1.8 * t4 && t16 < 2.2 * t4, "t4={t4} t16={t16}");
    }

    #[test]
    fn timing_lands_in_right_category() {
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 1e-6,
            sw_overhead: 0.0,
            bandwidth: 1e9,
            shm_bandwidth: 1e9,
            shm_latency: 0.0,
        };
        let out = Cluster::new(4, 1, net).run(|c| {
            let _ = c.allreduce(vec![1.0f64; 1000]);
            let chunks: Vec<Vec<f64>> = (0..4).map(|_| vec![0.0; 100]).collect();
            let _ = c.alltoallv(chunks);
            (c.stats.time(Category::Allreduce), c.stats.time(Category::Alltoallv))
        });
        for (rank, ((ar, av), _)) in out.iter().enumerate() {
            // Every rank but the reduce root blocks at least once in each op.
            if rank != 0 {
                assert!(*ar > 0.0, "rank {rank} allreduce time");
            }
            assert!(*av > 0.0, "rank {rank} alltoallv time");
        }
    }
}
