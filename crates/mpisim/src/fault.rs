//! Deterministic fault injection for the simulated cluster.
//!
//! Long production runs die two ways the correctness tests never
//! exercised: a rank disappears (node failure, OOM kill), or the
//! network misbehaves (lost, late, or duplicated packets that a real
//! MPI would surface as stalls and retransmits). A [`FaultPlan`] scripts
//! both against the simulator so the distributed algorithms and the
//! `ptim::resilience` recovery layer can be *tested* against failure
//! instead of assumed correct:
//!
//! * **Rank crashes** fire at a chosen application step: the rank
//!   panics inside [`Comm::begin_step`](crate::Comm::begin_step) with an
//!   attributed message, its `AliveGuard` marks it dead, and every peer
//!   blocked on it fails loudly through the terminated-peer paths.
//! * **Edge faults** (drop / delay / duplicate) apply to the
//!   point-to-point user sends (`send` / `isend` / `sendrecv`) on a
//!   chosen `(src, dst)` edge, optionally restricted to one tag.
//!   Probabilistic faults are resolved by hashing
//!   `(seed, fault index, src, dst, tag, per-edge message index)` — a
//!   pure function of the message sequence, so a plan produces the
//!   *identical* fault pattern on every run regardless of host thread
//!   scheduling.
//!
//! Injected faults are attributed in [`Stats`](crate::Stats)
//! (`faults_dropped` / `faults_delayed` / `faults_duplicated` /
//! `fault_delay_s`) on the sending rank, so a test can assert exactly
//! what was injected and separate injected failures from genuine bugs.

use crate::comm::Tag;

/// What happens to a message picked by an edge fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeFaultKind {
    /// The message is charged to the wire but never delivered — the
    /// receiver can only learn of it when the sender terminates.
    Drop,
    /// The message arrives `extra_s` virtual seconds late.
    Delay {
        /// Additional transfer latency in virtual seconds.
        extra_s: f64,
    },
    /// The message is delivered twice (same payload, same arrival).
    Duplicate,
}

/// One scripted fault on a directed point-to-point edge.
#[derive(Clone, Copy, Debug)]
pub struct EdgeFault {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Restrict to this tag (`None` = every user tag on the edge).
    pub tag: Option<Tag>,
    /// The injected behavior.
    pub kind: EdgeFaultKind,
    /// Injection probability in `[0, 1]`, resolved deterministically
    /// per message (1.0 = every matching message).
    pub probability: f64,
}

/// A deterministic, seed-driven fault script for one cluster run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the per-message fault coin.
    pub seed: u64,
    crashes: Vec<(usize, u64)>,
    edges: Vec<EdgeFault>,
}

impl FaultPlan {
    /// An empty plan with the given coin seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, crashes: Vec::new(), edges: Vec::new() }
    }

    /// Scripts `rank` to crash at the start of application step `step`
    /// (fires in [`Comm::begin_step`](crate::Comm::begin_step)).
    pub fn crash(mut self, rank: usize, step: u64) -> Self {
        self.crashes.push((rank, step));
        self
    }

    /// Scripts an always-on drop on the `(src, dst)` edge.
    pub fn drop_edge(self, src: usize, dst: usize, tag: Option<Tag>) -> Self {
        self.edge(EdgeFault { src, dst, tag, kind: EdgeFaultKind::Drop, probability: 1.0 })
    }

    /// Scripts an always-on delay of `extra_s` on the `(src, dst)` edge.
    pub fn delay_edge(self, src: usize, dst: usize, tag: Option<Tag>, extra_s: f64) -> Self {
        self.edge(EdgeFault {
            src,
            dst,
            tag,
            kind: EdgeFaultKind::Delay { extra_s },
            probability: 1.0,
        })
    }

    /// Scripts an always-on duplication on the `(src, dst)` edge.
    pub fn duplicate_edge(self, src: usize, dst: usize, tag: Option<Tag>) -> Self {
        self.edge(EdgeFault {
            src,
            dst,
            tag,
            kind: EdgeFaultKind::Duplicate,
            probability: 1.0,
        })
    }

    /// Adds a fully specified edge fault (probabilistic faults go
    /// through here).
    pub fn edge(mut self, fault: EdgeFault) -> Self {
        assert!(
            (0.0..=1.0).contains(&fault.probability),
            "fault probability {} outside [0, 1]",
            fault.probability
        );
        self.edges.push(fault);
        self
    }

    /// True when the plan schedules any fault at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.edges.is_empty()
    }

    /// The step at which `rank` is scripted to crash, if any.
    pub fn crash_step(&self, rank: usize) -> Option<u64> {
        self.crashes.iter().find(|(r, _)| *r == rank).map(|(_, s)| *s)
    }

    /// Resolves the fault (if any) hitting message number `msg_index` of
    /// the `(src, dst)` edge with tag `tag`. Pure in its arguments and
    /// the plan, hence deterministic across runs; the first matching
    /// fault whose coin comes up wins.
    pub fn edge_fault(
        &self,
        src: usize,
        dst: usize,
        tag: Tag,
        msg_index: u64,
    ) -> Option<EdgeFaultKind> {
        for (fi, f) in self.edges.iter().enumerate() {
            if f.src != src || f.dst != dst {
                continue;
            }
            if let Some(t) = f.tag {
                if t != tag {
                    continue;
                }
            }
            if f.probability >= 1.0 || fault_coin(self.seed, fi as u64, src, dst, tag, msg_index) < f.probability {
                return Some(f.kind);
            }
        }
        None
    }
}

/// SplitMix64 finalizer — the deterministic hash behind the fault coin.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform coin in `[0, 1)` for one (fault, message) pairing.
fn fault_coin(seed: u64, fault: u64, src: usize, dst: usize, tag: Tag, idx: u64) -> f64 {
    let mut h = splitmix64(seed ^ fault.wrapping_mul(0xa076_1d64_78bd_642f));
    h = splitmix64(h ^ (src as u64).wrapping_mul(0xe703_7ed1_a0b4_28db));
    h = splitmix64(h ^ (dst as u64) ^ tag.rotate_left(17));
    h = splitmix64(h ^ idx);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_lookup_finds_scripted_rank() {
        let plan = FaultPlan::new(1).crash(3, 7);
        assert_eq!(plan.crash_step(3), Some(7));
        assert_eq!(plan.crash_step(2), None);
    }

    #[test]
    fn edge_fault_matches_edge_and_tag() {
        let plan = FaultPlan::new(1).drop_edge(0, 1, Some(42));
        assert_eq!(plan.edge_fault(0, 1, 42, 0), Some(EdgeFaultKind::Drop));
        assert_eq!(plan.edge_fault(0, 1, 43, 0), None, "other tag untouched");
        assert_eq!(plan.edge_fault(1, 0, 42, 0), None, "reverse edge untouched");
    }

    #[test]
    fn probabilistic_faults_are_deterministic_and_calibrated() {
        let plan = FaultPlan::new(99).edge(EdgeFault {
            src: 0,
            dst: 1,
            tag: None,
            kind: EdgeFaultKind::Drop,
            probability: 0.25,
        });
        let pattern: Vec<bool> =
            (0..4000).map(|i| plan.edge_fault(0, 1, 5, i).is_some()).collect();
        // Identical on a second evaluation (pure function).
        for (i, &hit) in pattern.iter().enumerate() {
            assert_eq!(plan.edge_fault(0, 1, 5, i as u64).is_some(), hit);
        }
        let rate = pattern.iter().filter(|&&h| h).count() as f64 / pattern.len() as f64;
        assert!((rate - 0.25).abs() < 0.03, "empirical rate {rate}");
        // A different seed yields a different pattern.
        let other = FaultPlan::new(100).edge(EdgeFault {
            src: 0,
            dst: 1,
            tag: None,
            kind: EdgeFaultKind::Drop,
            probability: 0.25,
        });
        assert!(
            (0..4000).any(|i| other.edge_fault(0, 1, 5, i).is_some() != pattern[i as usize]),
            "seed must change the pattern"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_invalid_probability() {
        let _ = FaultPlan::new(0).edge(EdgeFault {
            src: 0,
            dst: 1,
            tag: None,
            kind: EdgeFaultKind::Drop,
            probability: 1.5,
        });
    }
}
