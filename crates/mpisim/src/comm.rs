//! Cluster construction, rank communicators, and point-to-point messaging.
//!
//! Ranks run as OS threads connected by unbounded channels, so every
//! communication pattern of the paper (Bcast / ring Sendrecv / async
//! Isend+Irecv+Wait / collectives) executes *with real data movement* —
//! correctness of the distributed algorithms is testable against serial
//! references. On top of the data plane, each rank advances a **virtual
//! clock**: message arrival times are `send_time + transfer_time` under
//! the configured [`NetworkModel`], and a receive advances the receiver's
//! clock to `max(own clock, arrival)` (Lamport-style). This yields
//! deterministic, scheduling-independent timing that reproduces the
//! *shape* of the paper's communication results.

use crate::stats::{Category, RankReport, Stats};
use crate::topology::NetworkModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

/// Message tags. Collectives use the high bit space; user tags should be
/// below `1 << 48`.
pub type Tag = u64;

/// Payload trait: anything sendable with a known wire size.
pub trait Payload: Send + 'static {
    /// Number of bytes this value occupies on the wire.
    fn byte_len(&self) -> usize;
}

impl<T: Send + 'static> Payload for Vec<T> {
    fn byte_len(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl Payload for () {
    fn byte_len(&self) -> usize {
        0
    }
}

impl Payload for f64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl Payload for u64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl Payload for usize {
    fn byte_len(&self) -> usize {
        std::mem::size_of::<usize>()
    }
}

pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    /// Virtual time at which the message is fully available at the receiver.
    pub arrival: f64,
    pub payload: Box<dyn Any + Send>,
}

struct Mailbox {
    rx: Receiver<Envelope>,
    pending: VecDeque<Envelope>,
}

impl Mailbox {
    fn take(&mut self, tag: Tag) -> Envelope {
        if let Some(pos) = self.pending.iter().position(|e| e.tag == tag) {
            return self.pending.remove(pos).unwrap();
        }
        loop {
            let env = self.rx.recv().expect("peer rank terminated while messages were expected");
            if env.tag == tag {
                return env;
            }
            self.pending.push_back(env);
        }
    }
}

/// Handle for a pending nonblocking operation.
#[must_use = "nonblocking operations must be completed with Comm::wait"]
pub enum Request {
    /// A posted receive; completed (and timed) by `wait`.
    Recv { src: usize, tag: Tag },
    /// A send that already left; `wait` is a no-op.
    Send,
}

/// The per-rank communicator (the `MPI_COMM_WORLD` analog).
pub struct Comm {
    rank: usize,
    size: usize,
    ranks_per_node: usize,
    senders: Vec<Sender<Envelope>>,
    mailboxes: Vec<Mailbox>,
    pub(crate) net: Arc<NetworkModel>,
    pub(crate) shm: Arc<crate::shm::ShmRegistry>,
    clock: f64,
    /// Collected statistics; public for post-run inspection via the report.
    pub stats: Stats,
}

impl Comm {
    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Ranks per simulated compute node.
    #[inline]
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Node index of an arbitrary rank.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Node index of this rank.
    #[inline]
    pub fn node(&self) -> usize {
        self.node_of(self.rank)
    }

    /// Ranks co-located on this rank's node.
    pub fn node_ranks(&self) -> std::ops::Range<usize> {
        let first = self.node() * self.ranks_per_node;
        first..(first + self.ranks_per_node).min(self.size)
    }

    /// Lowest rank on this node (the SHM window owner).
    #[inline]
    pub fn node_leader(&self) -> usize {
        self.node() * self.ranks_per_node
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Advances the virtual clock by `seconds` of modeled computation.
    pub fn compute(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "negative compute time");
        self.clock += seconds;
        self.stats.add_time(Category::Compute, seconds);
    }

    /// Charges `bytes` of per-rank memory to the accounting model.
    pub fn alloc_private(&mut self, bytes: u64) {
        self.stats.private_bytes += bytes;
    }

    // ---- point-to-point -------------------------------------------------

    pub(crate) fn post(&mut self, dst: usize, tag: Tag, payload: Box<dyn Any + Send>, bytes: usize) {
        let arrival =
            self.clock + self.net.transfer_time(self.node(), self.node_of(dst), bytes);
        self.stats.bytes_sent += bytes as u64;
        self.senders[dst]
            .send(Envelope { src: self.rank, tag, arrival, payload })
            .expect("destination rank terminated");
    }

    pub(crate) fn take_env(&mut self, src: usize, tag: Tag, cat: Category) -> Envelope {
        let env = self.mailboxes[src].take(tag);
        let new_clock = self.clock.max(env.arrival);
        self.stats.add_time(cat, new_clock - self.clock);
        self.clock = new_clock;
        env
    }

    fn downcast<T: Payload>(env: Envelope) -> T {
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!("type mismatch on receive (tag {}, from {})", env.tag, env.src)
        })
    }

    /// Blocking send. The sender pays its injection overhead immediately.
    pub fn send<T: Payload>(&mut self, dst: usize, tag: Tag, value: T) {
        let bytes = value.byte_len();
        let overhead = if self.node() == self.node_of(dst) {
            self.net.shm_latency
        } else {
            self.net.sw_overhead
        };
        self.post(dst, tag, Box::new(value), bytes);
        self.clock += overhead;
        self.stats.add_time(Category::Send, overhead);
    }

    /// Blocking receive.
    pub fn recv<T: Payload>(&mut self, src: usize, tag: Tag) -> T {
        let env = self.take_env(src, tag, Category::Recv);
        Self::downcast(env)
    }

    /// Combined exchange: sends `value` to `dst` and receives from `src`
    /// (the `MPI_Sendrecv` of the ring-based method, Sec. IV-B1).
    pub fn sendrecv<T: Payload>(&mut self, dst: usize, src: usize, tag: Tag, value: T) -> T {
        let bytes = value.byte_len();
        self.post(dst, tag, Box::new(value), bytes);
        let env = self.take_env(src, tag, Category::Sendrecv);
        Self::downcast(env)
    }

    /// Nonblocking send: message leaves immediately, costs no local time
    /// (completion semantics live entirely in the receiver's `wait`).
    pub fn isend<T: Payload>(&mut self, dst: usize, tag: Tag, value: T) -> Request {
        let bytes = value.byte_len();
        self.post(dst, tag, Box::new(value), bytes);
        Request::Send
    }

    /// Nonblocking receive: returns a handle to complete with [`Comm::wait`].
    pub fn irecv(&mut self, src: usize, tag: Tag) -> Request {
        Request::Recv { src, tag }
    }

    /// Completes a nonblocking operation, accounting blocked time under
    /// `Wait` (the `MPI_Wait` column of Table I).
    pub fn wait<T: Payload>(&mut self, req: Request) -> Option<T> {
        match req {
            Request::Send => None,
            Request::Recv { src, tag } => {
                let env = self.take_env(src, tag, Category::Wait);
                Some(Self::downcast(env))
            }
        }
    }

    /// Dissemination barrier over all ranks (also synchronizes virtual
    /// clocks to the group maximum).
    pub fn barrier(&mut self) {
        let p = self.size;
        if p == 1 {
            return;
        }
        let mut k = 1usize;
        let mut round = 0u64;
        while k < p {
            let dst = (self.rank + k) % p;
            let src = (self.rank + p - k % p) % p;
            let tag = tag_internal(TAG_BARRIER, round, 0);
            self.post(dst, tag, Box::new(()), 0);
            let env = self.take_env(src, tag, Category::Barrier);
            debug_assert_eq!(env.src, src);
            k <<= 1;
            round += 1;
        }
    }

    /// Barrier restricted to the ranks of this node (clock-synchronizing).
    pub fn node_barrier(&mut self) {
        let ranks: Vec<usize> = self.node_ranks().collect();
        if ranks.len() <= 1 {
            return;
        }
        let leader = ranks[0];
        let tag_up = tag_internal(TAG_NODE_BARRIER, 0, self.node() as u64);
        let tag_down = tag_internal(TAG_NODE_BARRIER, 1, self.node() as u64);
        if self.rank == leader {
            for &r in &ranks[1..] {
                let env = self.take_env(r, tag_up, Category::Barrier);
                debug_assert_eq!(env.src, r);
            }
            for &r in &ranks[1..] {
                self.post(r, tag_down, Box::new(()), 0);
            }
        } else {
            self.post(leader, tag_up, Box::new(()), 0);
            let _ = self.take_env(leader, tag_down, Category::Barrier);
        }
    }
}

pub(crate) const TAG_BARRIER: u64 = 1;
pub(crate) const TAG_NODE_BARRIER: u64 = 2;
pub(crate) const TAG_BCAST: u64 = 3;
pub(crate) const TAG_REDUCE: u64 = 4;
pub(crate) const TAG_ALLTOALLV: u64 = 5;
pub(crate) const TAG_ALLGATHERV: u64 = 6;
pub(crate) const TAG_GATHER: u64 = 8;

/// Packs an internal collective tag: `(kind, round, salt)` into the high
/// tag space so user tags below `1<<48` never collide.
pub(crate) fn tag_internal(kind: u64, round: u64, salt: u64) -> Tag {
    (1 << 63) | (kind << 56) | ((round & 0xFFFF) << 40) | (salt & 0xFF_FFFF_FFFF)
}

/// A simulated cluster: `ranks` ranks packed `ranks_per_node` to a node,
/// joined by the given network model.
pub struct Cluster {
    /// Total MPI ranks.
    pub ranks: usize,
    /// Ranks per node (4 on both of the paper's platforms).
    pub ranks_per_node: usize,
    /// Interconnect model.
    pub net: NetworkModel,
}

impl Cluster {
    /// Convenience constructor.
    pub fn new(ranks: usize, ranks_per_node: usize, net: NetworkModel) -> Self {
        assert!(ranks > 0 && ranks_per_node > 0);
        Cluster { ranks, ranks_per_node, net }
    }

    /// A cluster with a free network, for correctness tests.
    pub fn ideal(ranks: usize) -> Self {
        Self::new(ranks, ranks.max(1), NetworkModel::ideal())
    }

    /// Runs `f` on every rank concurrently; returns per-rank results and
    /// timing reports, ordered by rank.
    ///
    /// Panics in any rank propagate (the whole run aborts), which is the
    /// desired behaviour for tests.
    pub fn run<R, F>(&self, f: F) -> Vec<(R, RankReport)>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
    {
        let p = self.ranks;
        let net = Arc::new(self.net.clone());
        let shm = Arc::new(crate::shm::ShmRegistry::default());

        // Channel mesh: matrix[src][dst].
        let mut txs: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(p);
        let mut rxs: Vec<Vec<Option<Receiver<Envelope>>>> = (0..p).map(|_| Vec::new()).collect();
        for _src in 0..p {
            let mut row_tx = Vec::with_capacity(p);
            for rx_dst in rxs.iter_mut() {
                let (tx, rx) = unbounded();
                row_tx.push(tx);
                rx_dst.push(Some(rx));
            }
            txs.push(row_tx);
        }

        let slots: Vec<Mutex<Option<(R, RankReport)>>> = (0..p).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx_row) in rxs.iter_mut().enumerate() {
                let senders: Vec<Sender<Envelope>> =
                    (0..p).map(|dst| txs[rank][dst].clone()).collect();
                let mailboxes: Vec<Mailbox> = rx_row
                    .iter_mut()
                    .map(|r| Mailbox { rx: r.take().expect("receiver moved twice"), pending: VecDeque::new() })
                    .collect();
                let net = Arc::clone(&net);
                let shm = Arc::clone(&shm);
                let f = &f;
                let slot = &slots[rank];
                let rpn = self.ranks_per_node;
                handles.push(s.spawn(move || {
                    let mut comm = Comm {
                        rank,
                        size: p,
                        ranks_per_node: rpn,
                        senders,
                        mailboxes,
                        net,
                        shm,
                        clock: 0.0,
                        stats: Stats::default(),
                    };
                    let out = f(&mut comm);
                    let report = RankReport {
                        rank,
                        virtual_time: comm.clock,
                        stats: comm.stats.clone(),
                    };
                    *slot.lock() = Some((out, report));
                }));
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });
        slots.into_iter().map(|s| s.into_inner().expect("rank produced no result")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_moves_data() {
        let out = Cluster::ideal(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                c.recv::<Vec<f64>>(1, 8)
            } else {
                let v = c.recv::<Vec<f64>>(0, 7);
                let doubled: Vec<f64> = v.iter().map(|x| 2.0 * x).collect();
                c.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(out[0].0, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tag_matching_reorders() {
        let out = Cluster::ideal(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 100, vec![1u64]);
                c.send(1, 200, vec![2u64]);
                vec![]
            } else {
                // Receive in the opposite order of sending.
                let b = c.recv::<Vec<u64>>(0, 200);
                let a = c.recv::<Vec<u64>>(0, 100);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1].0, vec![1, 2]);
    }

    #[test]
    fn sendrecv_ring_rotates() {
        let p = 5;
        let out = Cluster::ideal(p).run(|c| {
            let right = (c.rank() + 1) % p;
            let left = (c.rank() + p - 1) % p;
            c.sendrecv(right, left, 1, vec![c.rank() as u64])
        });
        for (rank, (v, _)) in out.iter().enumerate() {
            assert_eq!(v[0], ((rank + p - 1) % p) as u64, "rank {rank}");
        }
    }

    #[test]
    fn nonblocking_roundtrip() {
        let out = Cluster::ideal(3).run(|c| {
            let p = c.size();
            let right = (c.rank() + 1) % p;
            let left = (c.rank() + p - 1) % p;
            let rreq = c.irecv(left, 9);
            let sreq = c.isend(right, 9, vec![c.rank() as u64 * 10]);
            c.compute(1.0e-3);
            let got: Vec<u64> = c.wait(rreq).expect("recv payload");
            assert!(c.wait::<Vec<u64>>(sreq).is_none());
            got
        });
        assert_eq!(out[0].0, vec![20]);
        assert_eq!(out[1].0, vec![0]);
        assert_eq!(out[2].0, vec![10]);
    }

    #[test]
    fn virtual_clock_advances_with_network_costs() {
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 1e-6,
            sw_overhead: 0.0,
            bandwidth: 1e9,
            shm_bandwidth: f64::INFINITY,
            shm_latency: 0.0,
        };
        // 2 ranks on separate nodes: 1 MB at 1 GB/s = 1 ms + 1 us latency.
        let out = Cluster::new(2, 1, net).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0u8; 1_000_000]);
                c.now()
            } else {
                let _ = c.recv::<Vec<u8>>(0, 1);
                c.now()
            }
        });
        assert!((out[1].0 - 1.001e-3).abs() < 1e-9, "receiver time {}", out[1].0);
        assert!(out[0].0 < 1e-6, "sender returns immediately");
        assert!(out[1].1.stats.time(Category::Recv) > 0.9e-3);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let out = Cluster::ideal(4).run(|c| {
            c.compute(c.rank() as f64); // ranks at times 0,1,2,3
            c.barrier();
            c.now()
        });
        for (t, _) in &out {
            assert!((*t - 3.0).abs() < 1e-12, "clock {t}");
        }
    }

    #[test]
    fn node_barrier_only_syncs_node() {
        let out = Cluster::new(4, 2, NetworkModel::ideal()).run(|c| {
            c.compute(c.rank() as f64);
            c.node_barrier();
            c.now()
        });
        assert!((out[0].0 - 1.0).abs() < 1e-12);
        assert!((out[1].0 - 1.0).abs() < 1e-12);
        assert!((out[2].0 - 3.0).abs() < 1e-12);
        assert!((out[3].0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn compute_is_tracked() {
        let out = Cluster::ideal(1).run(|c| {
            c.compute(2.5);
            c.now()
        });
        assert!((out[0].0 - 2.5).abs() < 1e-12);
        assert!((out[0].1.stats.time(Category::Compute) - 2.5).abs() < 1e-12);
        assert!(out[0].1.stats.comm_time() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_type_panics() {
        Cluster::ideal(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.0f64]);
            } else {
                let _ = c.recv::<Vec<u64>>(0, 5);
            }
        });
    }
}
