//! Cluster construction, rank communicators, and point-to-point messaging.
//!
//! Ranks run as OS threads connected by per-rank **inboxes**, so every
//! communication pattern of the paper (Bcast / ring Sendrecv / async
//! Isend+Irecv+Wait / collectives) executes *with real data movement* —
//! correctness of the distributed algorithms is testable against serial
//! references. On top of the data plane, each rank advances a **virtual
//! clock**: message arrival times are `send_time + transfer_time` under
//! the configured [`NetworkModel`], and a receive advances the receiver's
//! clock to `max(own clock, arrival)` (Lamport-style). This yields
//! deterministic, scheduling-independent timing that reproduces the
//! *shape* of the paper's communication results.
//!
//! ## Scheduling: O(active ranks) event loop
//!
//! A rank blocked in `recv`/`wait`/`waitany` parks on its inbox's
//! condition variable instead of polling. A sender's `Comm::post`
//! delivers the envelope under the inbox lock, bumps the doorbell
//! sequence number, and notifies — so each delivery wakes only the one
//! rank that may now make progress. Host CPU cost therefore scales with
//! the number of ranks actively exchanging messages, not with the total
//! rank count; this is what keeps 512-rank simulations inside a CI
//! budget on a small host. Rank termination (normal return or panic)
//! flips the rank's `alive` flag and rings every doorbell, so peers
//! blocked on a dead rank fail loudly instead of hanging.

use crate::fault::{EdgeFaultKind, FaultPlan};
use crate::stats::{Category, RankReport, Stats};
use crate::topology::NetworkModel;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Message tags. Collectives use the high bit space; user tags should be
/// below `1 << 48`.
pub type Tag = u64;

/// Payload trait: anything sendable with a known wire size. `Clone` is
/// a supertrait so fault injection can duplicate a message at the send
/// site; the collectives already demanded it of every payload.
pub trait Payload: Clone + Send + 'static {
    /// Number of bytes this value occupies on the wire.
    fn byte_len(&self) -> usize;
}

impl<T: Clone + Send + 'static> Payload for Vec<T> {
    fn byte_len(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl Payload for () {
    fn byte_len(&self) -> usize {
        0
    }
}

impl Payload for f64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl Payload for u64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl Payload for usize {
    fn byte_len(&self) -> usize {
        std::mem::size_of::<usize>()
    }
}

pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    /// Sender's virtual clock when the message was posted.
    pub sent: f64,
    /// Virtual time at which the message is fully available at the receiver.
    pub arrival: f64,
    pub payload: Box<dyn Any + Send>,
}

/// Delivered-but-unclaimed envelopes of one rank, guarded by the inbox
/// mutex. `seq` is the doorbell: it advances on every delivery and on
/// every rank termination, so a parked waiter can tell "something
/// changed since I last looked" without re-scanning speculatively.
struct InboxState {
    arrived: VecDeque<Envelope>,
    seq: u64,
}

struct Inbox {
    state: Mutex<InboxState>,
    bell: Condvar,
}

/// The shared data plane: one inbox per rank plus the liveness table.
struct Fabric {
    inboxes: Vec<Inbox>,
    alive: Vec<AtomicBool>,
    /// Set (before `alive` clears) for ranks that died *abnormally* —
    /// an injected [`FaultPlan`] crash or any other panic — as opposed
    /// to returning from their closure. A finished rank's in-flight
    /// messages are still deliverable; a crashed rank's future messages
    /// never will be, which is what [`Comm::require_alive`] guards.
    crashed: Vec<AtomicBool>,
}

/// Locks an inbox, tolerating poisoning: a rank that panicked while
/// holding its own inbox lock must not prevent the termination
/// broadcast (or its peers' loud failure) from running.
fn lock_state(inbox: &Inbox) -> MutexGuard<'_, InboxState> {
    inbox.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Marks the rank dead and rings every doorbell on drop — including
/// drops during unwinding, so a panicking rank still releases its peers
/// into their "peer rank terminated" failure paths.
struct AliveGuard {
    rank: usize,
    fabric: Arc<Fabric>,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        // Crash vs clean finish: a drop during unwinding means the rank
        // panicked (injected fault or assertion), not returned. Order
        // matters — peers read `crashed` only after observing `!alive`.
        if std::thread::panicking() {
            self.fabric.crashed[self.rank].store(true, Ordering::SeqCst);
        }
        self.fabric.alive[self.rank].store(false, Ordering::SeqCst);
        for inbox in &self.fabric.inboxes {
            let mut st = lock_state(inbox);
            st.seq += 1;
            inbox.bell.notify_all();
        }
    }
}

/// Handle for a pending nonblocking operation, completed with
/// [`Comm::wait`]/[`Comm::waitany`] and probed (non-consuming) with
/// [`Comm::test`].
#[must_use = "nonblocking operations must be completed with Comm::wait"]
pub enum Request {
    /// A posted receive; completed (and timed) by `wait`.
    Recv {
        /// Source rank the receive was posted against.
        src: usize,
        /// Matching tag.
        tag: Tag,
        /// `Compute`-category time already accumulated when the receive
        /// was posted — the baseline for the overlap metric: only
        /// computation performed *after* the post can have hidden the
        /// transfer.
        posted_compute: f64,
    },
    /// A send that already left; `wait` is a no-op.
    Send,
}

/// The per-rank communicator (the `MPI_COMM_WORLD` analog).
pub struct Comm {
    rank: usize,
    size: usize,
    ranks_per_node: usize,
    fabric: Arc<Fabric>,
    /// Claimed-from-inbox envelopes not yet matched by a receive, one
    /// FIFO queue per source rank (preserves per-source ordering).
    pending: Vec<VecDeque<Envelope>>,
    pub(crate) net: Arc<NetworkModel>,
    pub(crate) shm: Arc<crate::shm::ShmRegistry>,
    clock: f64,
    /// The fault script for this run, if any (see [`crate::fault`]).
    faults: Option<Arc<FaultPlan>>,
    /// Per-destination user-message counters feeding the deterministic
    /// fault coin: message k on an edge is the same k on every run,
    /// independent of host thread scheduling.
    fault_seq: Vec<u64>,
    /// Application step announced via [`Comm::begin_step`], carried in
    /// failure messages so errors name the step they struck.
    app_step: Option<u64>,
    /// Collected statistics; public for post-run inspection via the report.
    pub stats: Stats,
}

impl Comm {
    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Ranks per simulated compute node.
    #[inline]
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Node index of an arbitrary rank.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Node index of this rank.
    #[inline]
    pub fn node(&self) -> usize {
        self.node_of(self.rank)
    }

    /// Ranks co-located on this rank's node.
    pub fn node_ranks(&self) -> std::ops::Range<usize> {
        let first = self.node() * self.ranks_per_node;
        first..(first + self.ranks_per_node).min(self.size)
    }

    /// Lowest rank on this node (the SHM window owner).
    #[inline]
    pub fn node_leader(&self) -> usize {
        self.node() * self.ranks_per_node
    }

    /// True when the run has both multiple ranks per node *and* multiple
    /// nodes — the regime where the hierarchical (intra-node over shared
    /// memory, inter-node over the interconnect) collectives differ from
    /// the flat ones.
    #[inline]
    pub fn hierarchical(&self) -> bool {
        self.ranks_per_node > 1 && self.size > self.ranks_per_node
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Advances the virtual clock by `seconds` of modeled computation.
    pub fn compute(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "negative compute time");
        self.clock += seconds;
        self.stats.add_time(Category::Compute, seconds);
    }

    /// Charges `bytes` of per-rank memory to the accounting model.
    pub fn alloc_private(&mut self, bytes: u64) {
        self.stats.private_bytes += bytes;
    }

    /// Charges the virtual-clock cost of moving `bytes` through a
    /// node-shared memory window (one latency plus the bandwidth term),
    /// attributing the time to `cat` and the traffic to the intra-node
    /// phase counters. This is how the hierarchical collectives price
    /// their shm staging steps.
    pub(crate) fn charge_shm(&mut self, cat: Category, bytes: usize) {
        let dt = self.net.shm_latency + bytes as f64 / self.net.shm_bandwidth;
        self.clock += dt;
        self.stats.add_time(cat, dt);
        self.stats.intra_wire_s += dt;
        self.stats.shm_staged_bytes += bytes as u64;
    }

    // ---- fault injection ------------------------------------------------

    /// Marks the start of application step `step`: subsequent failure
    /// messages carry the step, and a [`FaultPlan`] crash scripted for
    /// this rank at this step fires here. The crash is a panic that
    /// unwinds through [`Cluster::run`]; the rank's `AliveGuard` flags it
    /// dead, so peers fail through the attributed terminated-peer paths
    /// instead of deadlocking.
    pub fn begin_step(&mut self, step: u64) {
        self.app_step = Some(step);
        if let Some(plan) = &self.faults {
            if plan.crash_step(self.rank) == Some(step) {
                panic!(
                    "injected fault: rank {} (node {}) crashed at app step {}",
                    self.rank,
                    self.node(),
                    step
                );
            }
        }
    }

    /// True while `rank` has neither returned nor panicked.
    pub fn alive(&self, rank: usize) -> bool {
        self.fabric.alive[rank].load(Ordering::SeqCst)
    }

    /// True once `rank` has died abnormally (injected crash or panic),
    /// as opposed to finishing its closure.
    pub fn crashed(&self, rank: usize) -> bool {
        self.fabric.crashed[rank].load(Ordering::SeqCst)
    }

    /// Fails loudly with full attribution if `rank` has *crashed*.
    /// Distributed algorithms call this before committing to a blocking
    /// exchange pattern, so a crashed peer surfaces as a named error
    /// (`ctx` says which pattern) instead of a hang deep inside it. A
    /// peer that merely finished its closure does not trip the guard:
    /// its already-posted messages remain deliverable, and a genuinely
    /// missing one fails through the blocking-receive terminated-peer
    /// path instead.
    pub fn require_alive(&self, rank: usize, ctx: &str) {
        if !self.alive(rank) && self.crashed(rank) {
            panic!(
                "peer rank terminated: rank {} (node {}) is dead; rank {} (node {}) requires it for {}{}",
                rank,
                self.node_of(rank),
                self.rank,
                self.node(),
                ctx,
                self.step_ctx()
            );
        }
    }

    /// `" at app step k"` when a step was announced, `""` otherwise.
    fn step_ctx(&self) -> String {
        self.app_step.map_or(String::new(), |s| format!(" at app step {s}"))
    }

    /// Resolves (and consumes the sequence number for) the fault hitting
    /// the next user message to `dst`, if any.
    fn next_edge_fault(&mut self, dst: usize, tag: Tag) -> Option<EdgeFaultKind> {
        let plan = self.faults.as_ref()?;
        let idx = self.fault_seq[dst];
        self.fault_seq[dst] += 1;
        plan.edge_fault(self.rank, dst, tag, idx)
    }

    // ---- point-to-point -------------------------------------------------

    /// User-level post with fault injection applied. Internal collective
    /// traffic bypasses this (a dropped barrier round would model a
    /// broken MPI library, not a lossy network or a failed node).
    fn post_user<T: Payload>(&mut self, dst: usize, tag: Tag, value: T) {
        let bytes = value.byte_len();
        match self.next_edge_fault(dst, tag) {
            Some(EdgeFaultKind::Drop) => {
                // Pays the wire like a genuinely lost packet but never
                // delivers; the receiver can only learn of the loss when
                // this rank terminates.
                self.stats.faults_dropped += 1;
                self.post_opts(dst, tag, None, bytes, 0.0);
            }
            Some(EdgeFaultKind::Delay { extra_s }) => {
                self.stats.faults_delayed += 1;
                self.stats.fault_delay_s += extra_s;
                self.post_opts(dst, tag, Some(Box::new(value)), bytes, extra_s);
            }
            Some(EdgeFaultKind::Duplicate) => {
                // Two full deliveries, each paying its own wire cost.
                self.stats.faults_duplicated += 1;
                self.post_opts(dst, tag, Some(Box::new(value.clone())), bytes, 0.0);
                self.post_opts(dst, tag, Some(Box::new(value)), bytes, 0.0);
            }
            None => self.post_opts(dst, tag, Some(Box::new(value)), bytes, 0.0),
        }
    }

    pub(crate) fn post(&mut self, dst: usize, tag: Tag, payload: Box<dyn Any + Send>, bytes: usize) {
        self.post_opts(dst, tag, Some(payload), bytes, 0.0);
    }

    /// The one true delivery path: charges the wire, then (unless the
    /// message was dropped by injection, `payload == None`) delivers the
    /// envelope with `extra_delay` added to its arrival time.
    fn post_opts(
        &mut self,
        dst: usize,
        tag: Tag,
        payload: Option<Box<dyn Any + Send>>,
        bytes: usize,
        extra_delay: f64,
    ) {
        let transfer = self.net.transfer_time(self.node(), self.node_of(dst), bytes);
        let arrival = self.clock + transfer + extra_delay;
        self.stats.bytes_sent += bytes as u64;
        if self.node() == self.node_of(dst) {
            self.stats.intra_bytes += bytes as u64;
            self.stats.intra_msgs += 1;
            self.stats.intra_wire_s += transfer;
        } else {
            self.stats.inter_bytes += bytes as u64;
            self.stats.inter_msgs += 1;
            self.stats.inter_wire_s += transfer;
        }
        if !self.fabric.alive[dst].load(Ordering::SeqCst) {
            panic!(
                "destination rank terminated: rank {} (node {}) is dead; rank {} (node {}) posted {} bytes on tag {:#x}{}",
                dst,
                self.node_of(dst),
                self.rank,
                self.node(),
                bytes,
                tag,
                self.step_ctx()
            );
        }
        let Some(payload) = payload else { return };
        let inbox = &self.fabric.inboxes[dst];
        let mut st = lock_state(inbox);
        st.arrived
            .push_back(Envelope { src: self.rank, tag, sent: self.clock, arrival, payload });
        st.seq += 1;
        inbox.bell.notify_all();
    }

    /// Moves every delivered envelope from the shared inbox into the
    /// per-source pending queues (preserving delivery order per source).
    fn drain_arrived(st: &mut InboxState, pending: &mut [VecDeque<Envelope>]) {
        while let Some(env) = st.arrived.pop_front() {
            pending[env.src].push_back(env);
        }
    }

    /// Blocking tag-matched claim of one envelope from `src`. Parks on
    /// the inbox doorbell while nothing new can match; panics if `src`
    /// terminated without the expected message ever arriving.
    ///
    /// Liveness/termination ordering: the `alive` flag is read *after*
    /// taking the inbox lock and draining. A terminating rank stores
    /// `alive = false` before ringing the doorbells, and all of its
    /// posts happened before that store — so observing `false` here
    /// guarantees every envelope it ever sent has already been drained,
    /// making "not found + dead" a genuinely hopeless state.
    fn take(&mut self, src: usize, tag: Tag, cat: Category) -> Envelope {
        if let Some(pos) = self.pending[src].iter().position(|e| e.tag == tag) {
            return self.pending[src].remove(pos).expect("position just found");
        }
        let inbox = &self.fabric.inboxes[self.rank];
        let mut st = lock_state(inbox);
        loop {
            Self::drain_arrived(&mut st, &mut self.pending);
            if let Some(pos) = self.pending[src].iter().position(|e| e.tag == tag) {
                drop(st);
                return self.pending[src].remove(pos).expect("position just found");
            }
            if !self.fabric.alive[src].load(Ordering::SeqCst) {
                drop(st);
                panic!(
                    "peer rank terminated while messages were expected: rank {} (node {}) died before delivering a {} on tag {:#x} to rank {} (node {}){}",
                    src,
                    self.node_of(src),
                    cat,
                    tag,
                    self.rank,
                    self.node(),
                    self.step_ctx()
                );
            }
            let seq = st.seq;
            while st.seq == seq {
                st = inbox.bell.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            self.stats.sched_wakeups += 1;
        }
    }

    pub(crate) fn take_env(&mut self, src: usize, tag: Tag, cat: Category) -> Envelope {
        let env = self.take(src, tag, cat);
        let new_clock = self.clock.max(env.arrival);
        self.stats.add_time(cat, new_clock - self.clock);
        self.clock = new_clock;
        env
    }

    fn downcast<T: Payload>(env: Envelope) -> T {
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!("type mismatch on receive (tag {}, from {})", env.tag, env.src)
        })
    }

    /// Blocking send. The sender pays its injection overhead immediately.
    pub fn send<T: Payload>(&mut self, dst: usize, tag: Tag, value: T) {
        let _s = pwobs::span("comm.send");
        let overhead = if self.node() == self.node_of(dst) {
            self.net.shm_latency
        } else {
            self.net.sw_overhead
        };
        self.post_user(dst, tag, value);
        self.clock += overhead;
        self.stats.add_time(Category::Send, overhead);
    }

    /// Blocking receive.
    pub fn recv<T: Payload>(&mut self, src: usize, tag: Tag) -> T {
        let _s = pwobs::span("comm.recv");
        let env = self.take_env(src, tag, Category::Recv);
        Self::downcast(env)
    }

    /// Combined exchange: sends `value` to `dst` and receives from `src`
    /// (the `MPI_Sendrecv` of the ring-based method, Sec. IV-B1).
    pub fn sendrecv<T: Payload>(&mut self, dst: usize, src: usize, tag: Tag, value: T) -> T {
        let _s = pwobs::span("comm.sendrecv");
        self.post_user(dst, tag, value);
        let env = self.take_env(src, tag, Category::Sendrecv);
        Self::downcast(env)
    }

    /// Nonblocking send: message leaves immediately, costs no local time
    /// (completion semantics live entirely in the receiver's `wait`).
    pub fn isend<T: Payload>(&mut self, dst: usize, tag: Tag, value: T) -> Request {
        self.post_user(dst, tag, value);
        Request::Send
    }

    /// Nonblocking receive: returns a handle to complete with [`Comm::wait`].
    pub fn irecv(&mut self, src: usize, tag: Tag) -> Request {
        Request::Recv { src, tag, posted_compute: self.stats.time(Category::Compute) }
    }

    /// Completes a nonblocking operation, accounting blocked time under
    /// `Wait` (the `MPI_Wait` column of Table I). The message's full
    /// transfer time and the part of it hidden behind computation feed
    /// the overlap-efficiency metric
    /// ([`Stats::overlap_efficiency`](crate::stats::Stats::overlap_efficiency)).
    pub fn wait<T: Payload>(&mut self, req: Request) -> Option<T> {
        let _s = pwobs::span("comm.wait");
        match req {
            Request::Send => None,
            Request::Recv { src, tag, posted_compute } => {
                let before = self.clock;
                let env = self.take_env(src, tag, Category::Wait);
                self.account_overlap(&env, before, posted_compute);
                Some(Self::downcast(env))
            }
        }
    }

    /// Non-consuming completion probe (the `MPI_Test` analog, minus the
    /// consume-on-success): `true` when completing the request now would
    /// not block — for a posted receive, the message is delivered *and*
    /// its virtual arrival time is at or before the current clock. Costs
    /// no virtual time; the request stays valid and must still be
    /// completed with [`Comm::wait`]/[`Comm::waitany`]. This is the
    /// progress hook the ring-pipelined exchange calls between pair
    /// tiles, standing in for the progress an MPI implementation makes
    /// inside `MPI_Test` polling loops.
    pub fn test(&mut self, req: &Request) -> bool {
        match req {
            Request::Send => true,
            Request::Recv { src, tag, .. } => {
                {
                    let inbox = &self.fabric.inboxes[self.rank];
                    let mut st = lock_state(inbox);
                    Self::drain_arrived(&mut st, &mut self.pending);
                }
                self.pending[*src]
                    .iter()
                    .find(|e| e.tag == *tag)
                    .is_some_and(|env| env.arrival <= self.clock)
            }
        }
    }

    /// Completes exactly one of `reqs` (the `MPI_Waitany` analog):
    /// removes the completed request from the vector and returns its
    /// original index plus the payload (`None` for sends, which complete
    /// immediately). Among posted receives the earliest delivered virtual
    /// arrival wins; blocked time is charged to `Wait` and the overlap
    /// metric is updated exactly as in [`Comm::wait`]. Parks on the
    /// inbox doorbell between deliveries — no polling — and fails loudly
    /// once every awaited peer has terminated without delivering.
    ///
    /// Panics when `reqs` is empty.
    pub fn waitany<T: Payload>(&mut self, reqs: &mut Vec<Request>) -> (usize, Option<T>) {
        let _s = pwobs::span("comm.waitany");
        assert!(!reqs.is_empty(), "waitany needs at least one request");
        if let Some(i) = reqs.iter().position(|r| matches!(r, Request::Send)) {
            let Request::Send = reqs.remove(i) else { unreachable!() };
            return (i, None);
        }
        let inbox = &self.fabric.inboxes[self.rank];
        let mut st = lock_state(inbox);
        loop {
            Self::drain_arrived(&mut st, &mut self.pending);
            // Find the delivered receive with the earliest arrival.
            let mut best: Option<(usize, f64)> = None;
            for (i, req) in reqs.iter().enumerate() {
                let Request::Recv { src, tag, .. } = req else {
                    unreachable!("sends handled above")
                };
                if let Some(env) = self.pending[*src].iter().find(|e| e.tag == *tag) {
                    if best.is_none_or(|(_, a)| env.arrival < a) {
                        best = Some((i, env.arrival));
                    }
                }
            }
            if let Some((i, _)) = best {
                drop(st);
                let Request::Recv { src, tag, posted_compute } = reqs.remove(i) else {
                    unreachable!()
                };
                let before = self.clock;
                let env = self.take_env(src, tag, Category::Wait);
                self.account_overlap(&env, before, posted_compute);
                return (i, Some(Self::downcast(env)));
            }
            // Nothing delivered anywhere. If every awaited source is dead
            // (see `take` for the ordering argument), fail loudly like
            // the blocking path does instead of parking forever.
            let hopeless = reqs.iter().all(|req| {
                let Request::Recv { src, .. } = req else { unreachable!() };
                !self.fabric.alive[*src].load(Ordering::SeqCst)
            });
            if hopeless {
                drop(st);
                let dead: Vec<String> = reqs
                    .iter()
                    .map(|req| {
                        let Request::Recv { src, tag, .. } = req else { unreachable!() };
                        format!("rank {} (node {}, tag {:#x})", src, self.node_of(*src), tag)
                    })
                    .collect();
                panic!(
                    "peer rank terminated while messages were expected: every peer awaited by rank {} (node {}) in a Wait died undelivered — {}{}",
                    self.rank,
                    self.node(),
                    dead.join(", "),
                    self.step_ctx()
                );
            }
            let seq = st.seq;
            while st.seq == seq {
                st = inbox.bell.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            self.stats.sched_wakeups += 1;
        }
    }

    /// Splits a completed nonblocking message's wire time into the
    /// visible part (what the wait just blocked for) and the hidden part
    /// — transfer that elapsed behind *computation* performed since the
    /// receive was posted. Clock advance caused by blocking in other
    /// waits does not count as hidden, so the metric keeps its meaning
    /// with several requests in flight.
    fn account_overlap(&mut self, env: &Envelope, clock_before_wait: f64, posted_compute: f64) {
        let transfer = (env.arrival - env.sent).max(0.0);
        let visible = self.clock - clock_before_wait;
        let compute_since_post =
            (self.stats.time(Category::Compute) - posted_compute).max(0.0);
        self.stats.overlap_total_s += transfer;
        self.stats.overlap_hidden_s +=
            (transfer - visible).max(0.0).min(compute_since_post);
    }

    /// Dissemination barrier over all ranks (also synchronizes virtual
    /// clocks to the group maximum).
    pub fn barrier(&mut self) {
        let _s = pwobs::span("comm.barrier");
        let p = self.size;
        if p == 1 {
            return;
        }
        let mut k = 1usize;
        let mut round = 0u64;
        while k < p {
            let dst = (self.rank + k) % p;
            let src = (self.rank + p - k % p) % p;
            let tag = tag_internal(TAG_BARRIER, round, 0);
            self.post(dst, tag, Box::new(()), 0);
            let env = self.take_env(src, tag, Category::Barrier);
            debug_assert_eq!(env.src, src);
            k <<= 1;
            round += 1;
        }
    }

    /// Barrier restricted to the ranks of this node (clock-synchronizing).
    pub fn node_barrier(&mut self) {
        self.node_barrier_cat(Category::Barrier);
    }

    /// Node barrier with the blocked time attributed to `cat` — the
    /// hierarchical collectives use this so their synchronization shows
    /// up under the collective's own Table I column.
    pub(crate) fn node_barrier_cat(&mut self, cat: Category) {
        let ranks: Vec<usize> = self.node_ranks().collect();
        if ranks.len() <= 1 {
            return;
        }
        let leader = ranks[0];
        let tag_up = tag_internal(TAG_NODE_BARRIER, 0, self.node() as u64);
        let tag_down = tag_internal(TAG_NODE_BARRIER, 1, self.node() as u64);
        if self.rank == leader {
            for &r in &ranks[1..] {
                let env = self.take_env(r, tag_up, cat);
                debug_assert_eq!(env.src, r);
            }
            for &r in &ranks[1..] {
                self.post(r, tag_down, Box::new(()), 0);
            }
        } else {
            self.post(leader, tag_up, Box::new(()), 0);
            let _ = self.take_env(leader, tag_down, cat);
        }
    }
}

pub(crate) const TAG_BARRIER: u64 = 1;
pub(crate) const TAG_NODE_BARRIER: u64 = 2;
pub(crate) const TAG_BCAST: u64 = 3;
pub(crate) const TAG_REDUCE: u64 = 4;
pub(crate) const TAG_ALLTOALLV: u64 = 5;
pub(crate) const TAG_ALLGATHERV: u64 = 6;
pub(crate) const TAG_GATHER: u64 = 8;
pub(crate) const TAG_HIER_REDUCE: u64 = 9;
pub(crate) const TAG_HIER_GATHER: u64 = 10;
pub(crate) const TAG_HIER_A2A: u64 = 11;

/// Packs an internal collective tag: `(kind, round, salt)` into the high
/// tag space so user tags below `1<<48` never collide.
pub(crate) fn tag_internal(kind: u64, round: u64, salt: u64) -> Tag {
    (1 << 63) | (kind << 56) | ((round & 0xFFFF) << 40) | (salt & 0xFF_FFFF_FFFF)
}

/// A simulated cluster: `ranks` ranks packed `ranks_per_node` to a node,
/// joined by the given network model.
pub struct Cluster {
    /// Total MPI ranks.
    pub ranks: usize,
    /// Ranks per node (4 on both of the paper's platforms).
    pub ranks_per_node: usize,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Optional fault script applied to every run (see [`crate::fault`]).
    pub faults: Option<FaultPlan>,
}

impl Cluster {
    /// Convenience constructor.
    pub fn new(ranks: usize, ranks_per_node: usize, net: NetworkModel) -> Self {
        assert!(ranks > 0 && ranks_per_node > 0);
        Cluster { ranks, ranks_per_node, net, faults: None }
    }

    /// Installs a fault script for subsequent runs.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// A cluster with a free network, for correctness tests.
    pub fn ideal(ranks: usize) -> Self {
        Self::new(ranks, ranks.max(1), NetworkModel::ideal())
    }

    /// Runs `f` on every rank concurrently; returns per-rank results and
    /// timing reports, ordered by rank.
    ///
    /// Panics in any rank propagate (the whole run aborts), which is the
    /// desired behaviour for tests.
    pub fn run<R, F>(&self, f: F) -> Vec<(R, RankReport)>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
    {
        let p = self.ranks;
        let net = Arc::new(self.net.clone());
        let shm = Arc::new(crate::shm::ShmRegistry::default());
        let faults = self.faults.clone().map(Arc::new);
        let fabric = Arc::new(Fabric {
            inboxes: (0..p)
                .map(|_| Inbox {
                    state: Mutex::new(InboxState { arrived: VecDeque::new(), seq: 0 }),
                    bell: Condvar::new(),
                })
                .collect(),
            alive: (0..p).map(|_| AtomicBool::new(true)).collect(),
            crashed: (0..p).map(|_| AtomicBool::new(false)).collect(),
        });

        let slots: Vec<parking_lot::Mutex<Option<(R, RankReport)>>> =
            (0..p).map(|_| parking_lot::Mutex::new(None)).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(p);
            for (rank, slot) in slots.iter().enumerate() {
                let fabric = Arc::clone(&fabric);
                let net = Arc::clone(&net);
                let shm = Arc::clone(&shm);
                let faults = faults.clone();
                let f = &f;
                let rpn = self.ranks_per_node;
                handles.push(s.spawn(move || {
                    // Declared before `comm` so it drops last: the rank is
                    // announced dead only after all its work (and its
                    // result hand-off) is complete — and also when `f`
                    // unwinds.
                    let _guard = AliveGuard { rank, fabric: Arc::clone(&fabric) };
                    let mut comm = Comm {
                        rank,
                        size: p,
                        ranks_per_node: rpn,
                        fabric,
                        pending: (0..p).map(|_| VecDeque::new()).collect(),
                        net,
                        shm,
                        clock: 0.0,
                        faults,
                        fault_seq: vec![0; p],
                        app_step: None,
                        stats: Stats::default(),
                    };
                    let out = f(&mut comm);
                    // Bridge the rank's virtual-clock attribution into
                    // the unified metrics registry (no-op when the
                    // pwobs recorder is disabled).
                    comm.stats.record_observability(rank);
                    let report = RankReport {
                        rank,
                        virtual_time: comm.clock,
                        stats: comm.stats.clone(),
                    };
                    *slot.lock() = Some((out, report));
                }));
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });
        slots.into_iter().map(|s| s.into_inner().expect("rank produced no result")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_moves_data() {
        let out = Cluster::ideal(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                c.recv::<Vec<f64>>(1, 8)
            } else {
                let v = c.recv::<Vec<f64>>(0, 7);
                let doubled: Vec<f64> = v.iter().map(|x| 2.0 * x).collect();
                c.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(out[0].0, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tag_matching_reorders() {
        let out = Cluster::ideal(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 100, vec![1u64]);
                c.send(1, 200, vec![2u64]);
                vec![]
            } else {
                // Receive in the opposite order of sending.
                let b = c.recv::<Vec<u64>>(0, 200);
                let a = c.recv::<Vec<u64>>(0, 100);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1].0, vec![1, 2]);
    }

    #[test]
    fn sendrecv_ring_rotates() {
        let p = 5;
        let out = Cluster::ideal(p).run(|c| {
            let right = (c.rank() + 1) % p;
            let left = (c.rank() + p - 1) % p;
            c.sendrecv(right, left, 1, vec![c.rank() as u64])
        });
        for (rank, (v, _)) in out.iter().enumerate() {
            assert_eq!(v[0], ((rank + p - 1) % p) as u64, "rank {rank}");
        }
    }

    #[test]
    fn nonblocking_roundtrip() {
        let out = Cluster::ideal(3).run(|c| {
            let p = c.size();
            let right = (c.rank() + 1) % p;
            let left = (c.rank() + p - 1) % p;
            let rreq = c.irecv(left, 9);
            let sreq = c.isend(right, 9, vec![c.rank() as u64 * 10]);
            c.compute(1.0e-3);
            let got: Vec<u64> = c.wait(rreq).expect("recv payload");
            assert!(c.wait::<Vec<u64>>(sreq).is_none());
            got
        });
        assert_eq!(out[0].0, vec![20]);
        assert_eq!(out[1].0, vec![0]);
        assert_eq!(out[2].0, vec![10]);
    }

    #[test]
    fn test_probe_is_nonconsuming() {
        let out = Cluster::ideal(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.5f64, 2.5]);
                true
            } else {
                let req = c.irecv(0, 5);
                // Ideal network: arrival == 0 <= clock, so the probe turns
                // true as soon as the message is physically delivered.
                while !c.test(&req) {
                    std::thread::yield_now();
                }
                // Non-consuming: probing again still succeeds, and the
                // request can still be completed normally.
                assert!(c.test(&req));
                let v: Vec<f64> = c.wait(req).expect("payload");
                v == vec![1.5, 2.5]
            }
        });
        assert!(out[1].0);
    }

    #[test]
    fn test_probe_respects_virtual_arrival() {
        // 1 MB at 1 GB/s: arrival is 1 ms in the future, so the probe
        // stays false until computation advances the clock past it.
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 0.0,
            sw_overhead: 0.0,
            bandwidth: 1e9,
            shm_bandwidth: f64::INFINITY,
            shm_latency: 0.0,
        };
        let out = Cluster::new(2, 1, net).run(|c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![0u8; 1_000_000]);
                (true, 0.0)
            } else {
                let req = c.irecv(0, 3);
                // Before any modeled compute the message cannot have
                // arrived in virtual time, delivered or not.
                let early = c.test(&req);
                c.compute(2e-3); // clock now past the 1 ms arrival
                while !c.test(&req) {
                    std::thread::yield_now();
                }
                let _ = c.wait::<Vec<u8>>(req).expect("payload");
                // Fully hidden: the wait itself blocked for no time.
                (early, c.stats.time(Category::Wait))
            }
        });
        assert!(!out[1].0 .0, "probe must be false before the virtual arrival");
        assert!(out[1].0 .1 < 1e-12, "wait after overlap must be free");
        assert!(out[1].1.stats.overlap_efficiency() > 0.999);
    }

    #[test]
    fn waitany_completes_earliest_arrival_first() {
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 0.0,
            sw_overhead: 0.0,
            bandwidth: 1e9,
            shm_bandwidth: 1e9,
            shm_latency: 0.0,
        };
        let out = Cluster::new(2, 1, net).run(|c| {
            if c.rank() == 0 {
                c.send(1, 10, vec![0u8; 1_000_000]); // arrives at 1 ms
                c.send(1, 11, vec![7u8; 1_000]); // arrives at ~1 µs
                c.send(1, 12, vec![0u8]); // flag
                vec![]
            } else {
                // Draining the flag first forces both data envelopes into
                // the pending queue, making the race-free ordering
                // deterministic.
                let _ = c.recv::<Vec<u8>>(0, 12);
                let mut reqs = vec![c.irecv(0, 10), c.irecv(0, 11)];
                let (i1, p1) = c.waitany::<Vec<u8>>(&mut reqs);
                let (i2, p2) = c.waitany::<Vec<u8>>(&mut reqs);
                assert!(reqs.is_empty());
                vec![
                    (i1, p1.expect("first payload").len()),
                    (i2, p2.expect("second payload").len()),
                ]
            }
        });
        // The small message (index 1 in the original vec) completes first.
        assert_eq!(out[1].0[0], (1, 1_000));
        assert_eq!(out[1].0[1], (0, 1_000_000));
    }

    #[test]
    fn waitany_completes_sends_immediately() {
        let out = Cluster::ideal(2).run(|c| {
            if c.rank() == 0 {
                let mut reqs = vec![c.irecv(1, 2), c.isend(1, 1, vec![5u64])];
                let (i, p) = c.waitany::<Vec<u64>>(&mut reqs);
                assert_eq!((i, p), (1, None), "send completes first, no payload");
                let (i, p) = c.waitany::<Vec<u64>>(&mut reqs);
                assert_eq!(i, 0);
                p.expect("recv payload")
            } else {
                let v = c.recv::<Vec<u64>>(0, 1);
                c.send(0, 2, v.clone());
                v
            }
        });
        assert_eq!(out[0].0, vec![5]);
    }

    #[test]
    #[should_panic(expected = "peer rank terminated")]
    fn waitany_panics_when_peer_exits_without_sending() {
        Cluster::ideal(2).run(|c| {
            if c.rank() == 1 {
                let mut reqs = vec![c.irecv(0, 99)];
                let _ = c.waitany::<Vec<f64>>(&mut reqs);
            }
            // Rank 0 returns immediately, flagging itself dead.
        });
    }

    #[test]
    #[should_panic(expected = "peer rank terminated")]
    fn blocking_recv_panics_when_peer_exits_without_sending() {
        Cluster::ideal(2).run(|c| {
            if c.rank() == 1 {
                let _ = c.recv::<Vec<f64>>(0, 42);
            }
        });
    }

    #[test]
    fn parked_waits_wake_without_polling() {
        // A long dependency chain: rank k waits for rank k-1. Each rank's
        // receive parks exactly until the predecessor's post rings its
        // doorbell, so the whole chain needs only O(active ranks) wakeups
        // — at most a couple per blocked receive, never a spin.
        let p = 32;
        let out = Cluster::ideal(p).run(|c| {
            if c.rank() > 0 {
                let v: Vec<u64> = c.recv(c.rank() - 1, 1);
                if c.rank() + 1 < c.size() {
                    c.send(c.rank() + 1, 1, v.clone());
                }
                c.stats.sched_wakeups
            } else {
                c.send(1, 1, vec![7u64]);
                c.stats.sched_wakeups
            }
        });
        for (rank, (wakeups, _)) in out.iter().enumerate() {
            // One blocked receive should cost a handful of wakeups at
            // most (delivery + the terminations that ring every bell).
            assert!(
                *wakeups <= (p as u64) + 4,
                "rank {rank}: {wakeups} wakeups for one receive"
            );
        }
    }

    #[test]
    fn overlap_hidden_capped_by_compute_since_post() {
        // Two receives in flight, zero compute: waiting out the slow one
        // advances the clock past the fast one's arrival, but that wait
        // time is NOT compute — nothing may count as hidden.
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 0.0,
            sw_overhead: 0.0,
            bandwidth: 1e9,
            shm_bandwidth: f64::INFINITY,
            shm_latency: 0.0,
        };
        let out = Cluster::new(2, 1, net).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0u8; 2_000_000]); // 2 ms
                c.send(1, 2, vec![0u8; 1_000_000]); // 1 ms
                0.0
            } else {
                let slow = c.irecv(0, 1);
                let fast = c.irecv(0, 2);
                let _ = c.wait::<Vec<u8>>(slow).expect("slow");
                let _ = c.wait::<Vec<u8>>(fast).expect("fast");
                c.stats.overlap_hidden_s
            }
        });
        assert!(
            out[1].0 < 1e-12,
            "wait-blocked time must not count as hidden compute: {}",
            out[1].0
        );
        assert!(out[1].1.stats.overlap_total_s > 2.9e-3);
    }

    #[test]
    fn overlap_metric_splits_hidden_and_visible() {
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 0.0,
            sw_overhead: 0.0,
            bandwidth: 1e9,
            shm_bandwidth: f64::INFINITY,
            shm_latency: 0.0,
        };
        // 2 MB transfer = 2 ms; only 0.5 ms of compute overlaps, so 75%
        // of the wire time must stay visible in Wait and 25% be hidden.
        let out = Cluster::new(2, 1, net).run(|c| {
            if c.rank() == 0 {
                c.send(1, 4, vec![0u8; 2_000_000]);
                0.0
            } else {
                let req = c.irecv(0, 4);
                c.compute(0.5e-3);
                let _ = c.wait::<Vec<u8>>(req).expect("payload");
                c.stats.time(Category::Wait)
            }
        });
        let stats = &out[1].1.stats;
        assert!((out[1].0 - 1.5e-3).abs() < 1e-9, "visible wait {}", out[1].0);
        assert!((stats.overlap_total_s - 2.0e-3).abs() < 1e-9);
        assert!((stats.overlap_hidden_s - 0.5e-3).abs() < 1e-9);
        assert!((stats.overlap_efficiency() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn virtual_clock_advances_with_network_costs() {
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 1e-6,
            sw_overhead: 0.0,
            bandwidth: 1e9,
            shm_bandwidth: f64::INFINITY,
            shm_latency: 0.0,
        };
        // 2 ranks on separate nodes: 1 MB at 1 GB/s = 1 ms + 1 us latency.
        let out = Cluster::new(2, 1, net).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0u8; 1_000_000]);
                c.now()
            } else {
                let _ = c.recv::<Vec<u8>>(0, 1);
                c.now()
            }
        });
        assert!((out[1].0 - 1.001e-3).abs() < 1e-9, "receiver time {}", out[1].0);
        assert!(out[0].0 < 1e-6, "sender returns immediately");
        assert!(out[1].1.stats.time(Category::Recv) > 0.9e-3);
    }

    #[test]
    fn per_phase_attribution_partitions_bytes() {
        // 4 ranks on 2 nodes: rank 0 sends intra (to 1) and inter (to 2);
        // the phase counters must partition bytes_sent exactly.
        let out = Cluster::new(4, 2, NetworkModel::ideal()).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0u8; 1000]);
                c.send(2, 2, vec![0u8; 500]);
            } else if c.rank() == 1 {
                let _ = c.recv::<Vec<u8>>(0, 1);
            } else if c.rank() == 2 {
                let _ = c.recv::<Vec<u8>>(0, 2);
            }
            (
                c.stats.bytes_sent,
                c.stats.intra_bytes,
                c.stats.inter_bytes,
                c.stats.intra_msgs,
                c.stats.inter_msgs,
            )
        });
        let (total, intra, inter, im, xm) = out[0].0;
        assert_eq!(total, 1500);
        assert_eq!(intra, 1000);
        assert_eq!(inter, 500);
        assert_eq!(im, 1);
        assert_eq!(xm, 1);
        assert_eq!(total, intra + inter, "phase counters must partition bytes_sent");
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let out = Cluster::ideal(4).run(|c| {
            c.compute(c.rank() as f64); // ranks at times 0,1,2,3
            c.barrier();
            c.now()
        });
        for (t, _) in &out {
            assert!((*t - 3.0).abs() < 1e-12, "clock {t}");
        }
    }

    #[test]
    fn node_barrier_only_syncs_node() {
        let out = Cluster::new(4, 2, NetworkModel::ideal()).run(|c| {
            c.compute(c.rank() as f64);
            c.node_barrier();
            c.now()
        });
        assert!((out[0].0 - 1.0).abs() < 1e-12);
        assert!((out[1].0 - 1.0).abs() < 1e-12);
        assert!((out[2].0 - 3.0).abs() < 1e-12);
        assert!((out[3].0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn compute_is_tracked() {
        let out = Cluster::ideal(1).run(|c| {
            c.compute(2.5);
            c.now()
        });
        assert!((out[0].0 - 2.5).abs() < 1e-12);
        assert!((out[0].1.stats.time(Category::Compute) - 2.5).abs() < 1e-12);
        assert!(out[0].1.stats.comm_time() < 1e-12);
    }

    #[test]
    fn dropped_message_never_arrives_but_is_attributed() {
        let plan = FaultPlan::new(7).drop_edge(0, 1, Some(100));
        let out = Cluster::ideal(2).with_faults(plan).run(|c| {
            if c.rank() == 0 {
                c.send(1, 100, vec![1u64]); // dropped
                c.send(1, 101, vec![2u64]); // delivered
                c.stats.faults_dropped
            } else {
                let v = c.recv::<Vec<u64>>(0, 101);
                assert_eq!(v, vec![2]);
                c.stats.faults_dropped
            }
        });
        assert_eq!(out[0].0, 1, "sender attributes the drop");
        assert_eq!(out[1].0, 0, "receiver injected nothing");
    }

    #[test]
    fn delayed_message_arrives_late_on_the_virtual_clock() {
        let plan = FaultPlan::new(7).delay_edge(0, 1, None, 0.25);
        let out = Cluster::ideal(2).with_faults(plan).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![9u64]);
                (0.0, c.stats.fault_delay_s)
            } else {
                let _ = c.recv::<Vec<u64>>(0, 5);
                (c.now(), c.stats.fault_delay_s)
            }
        });
        assert!((out[1].0 .0 - 0.25).abs() < 1e-12, "receiver clock {}", out[1].0 .0);
        assert!((out[0].0 .1 - 0.25).abs() < 1e-12, "sender attributes the delay");
    }

    #[test]
    fn duplicated_message_is_delivered_twice() {
        let plan = FaultPlan::new(7).duplicate_edge(0, 1, Some(3));
        let out = Cluster::ideal(2).with_faults(plan).run(|c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![4u64]);
                (vec![], c.stats.faults_duplicated)
            } else {
                let a = c.recv::<Vec<u64>>(0, 3);
                let b = c.recv::<Vec<u64>>(0, 3);
                (vec![a[0], b[0]], c.stats.faults_duplicated)
            }
        });
        assert_eq!(out[1].0 .0, vec![4, 4]);
        assert_eq!(out[0].0 .1, 1);
    }

    #[test]
    #[should_panic(expected = "injected fault: rank 0 (node 0) crashed at app step 2")]
    fn scripted_crash_fires_at_its_step() {
        let plan = FaultPlan::new(7).crash(0, 2);
        Cluster::ideal(2).with_faults(plan).run(|c| {
            for step in 0..4u64 {
                c.begin_step(step);
                let peer = 1 - c.rank();
                let _ = c.sendrecv(peer, peer, 50 + step, vec![c.rank() as u64]);
            }
        });
    }

    #[test]
    #[should_panic(expected = "peer rank terminated: rank 1 (node 0) is dead")]
    fn require_alive_names_the_dead_rank() {
        // Rank 1 crashes; rank 0 (whose panic Cluster::run surfaces
        // first) observes it through the guard.
        let plan = crate::fault::FaultPlan::new(1).crash(1, 3);
        Cluster::ideal(2).with_faults(plan).run(|c| {
            c.begin_step(3); // rank 1 crashes here
            while c.alive(1) {
                std::thread::yield_now();
            }
            c.require_alive(1, "ring exchange");
        });
    }

    #[test]
    fn require_alive_tolerates_a_cleanly_finished_peer() {
        // A rank that *returned* is dead but not crashed: its in-flight
        // messages are still deliverable, so the guard must not fire.
        let out = Cluster::ideal(2).run(|c| {
            if c.rank() == 1 {
                while c.alive(0) {
                    std::thread::yield_now();
                }
                assert!(!c.crashed(0));
                c.require_alive(0, "ring exchange");
                true
            } else {
                false // rank 0 returns immediately, flagging itself dead
            }
        });
        assert!(out[1].0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_type_panics() {
        Cluster::ideal(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.0f64]);
            } else {
                let _ = c.recv::<Vec<u64>>(0, 5);
            }
        });
    }
}
