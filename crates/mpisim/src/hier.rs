//! Hierarchical (topology-aware, two-level) collectives.
//!
//! The paper's platforms pack 4 ranks per node, so every collective can
//! split into an **intra-node phase** over shared memory (cheap: node
//! ranks stage their contributions through an [`crate::ShmWindow`]) and
//! an **inter-node phase** where only the node *leaders* touch the
//! interconnect — the structure production MPI libraries and the Summit
//! PT-TDDFT / SPARC hybrid-functional ports (PAPERS.md) use to scale
//! exchange past the node boundary. Compared to the flat collectives in
//! [`crate::collectives`], the hierarchical forms cut the inter-node
//! message count from `O(p)`/`O(p²)` to `O(nodes)`/`O(nodes²)` and move
//! the intra-node volume at shared-memory bandwidth.
//!
//! Every staging copy is priced through [`Comm`]'s `charge_shm` (one shm
//! latency plus the bandwidth term) and attributed to the collective's
//! own Table I category, with the traffic recorded in the per-phase
//! counters of [`crate::Stats`] (`intra_*`, `inter_*`,
//! `shm_staged_bytes`) — so the two-level closed forms in `perfmodel`
//! can be validated phase by phase.
//!
//! Window reuse safety: every shm-staged collective follows the pattern
//! *write → node barrier → read → node barrier*. The trailing barrier
//! guarantees all reads of call `k` complete before any rank's call
//! `k+1` writes the same window, so repeated collectives can share one
//! window per (kind, element type, length). Window ids live in the
//! `1 << 63` space; user window ids should stay below that.

use crate::comm::{tag_internal, Comm, Payload, TAG_HIER_A2A, TAG_HIER_GATHER, TAG_HIER_REDUCE};
use crate::stats::Category;
use std::any::TypeId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::AddAssign;

/// Element bound for the shm-staged hierarchical collectives: the data
/// must be bit-copyable into a shared window.
pub trait HierElem: Copy + Default + Send + Sync + 'static {}
impl<T: Copy + Default + Send + Sync + 'static> HierElem for T {}

// Window-id kinds (bits 56..63 of the id; bit 63 marks internal ids).
const KIND_ALLREDUCE: u64 = 1;
const KIND_AG_SIZES: u64 = 2;
const KIND_AG_DATA: u64 = 3;
const KIND_AG_OUT_LENS: u64 = 4;
const KIND_AG_OUT_DATA: u64 = 5;

// Tag-round bases for the leader-staged all-to-all phases (each phase
// adds a group index < 0x1000).
const A2A_DIRECT: u64 = 0;
const A2A_UP_HDR: u64 = 0x1000;
const A2A_UP_DATA: u64 = 0x2000;
const A2A_X_HDR: u64 = 0x3000;
const A2A_X_DATA: u64 = 0x4000;
const A2A_DOWN_HDR: u64 = 0x5000;
const A2A_DOWN_DATA: u64 = 0x6000;

/// Internal shm-window id: bit 63 | kind | an 8-bit element-type tag |
/// the window length, so reopening with a different type or length can
/// never alias an existing window.
fn hier_window_id<T: 'static>(kind: u64, len: usize) -> u64 {
    let mut h = DefaultHasher::new();
    TypeId::of::<T>().hash(&mut h);
    let ty = h.finish() & 0xFF;
    (1 << 63) | (kind << 56) | (ty << 48) | (len as u64 & 0xFFFF_FFFF_FFFF)
}

impl Comm {
    /// Binomial reduce-to-index-0 over `n_idx` participants addressed
    /// through `rank_of` (identity for a flat world reduce, node-leader
    /// lookup for the inter-node phase). Returns `true` on the index-0
    /// holder of the result. Combination order is fixed by the tree, so
    /// results are deterministic.
    fn binomial_reduce_by<T: HierElem + AddAssign>(
        &mut self,
        my_idx: usize,
        n_idx: usize,
        rank_of: &dyn Fn(usize) -> usize,
        acc: &mut Vec<T>,
        round_base: u64,
        cat: Category,
    ) -> bool {
        let mut mask = 1usize;
        let mut round = round_base;
        while mask < n_idx {
            let tag = tag_internal(TAG_HIER_REDUCE, round, 0);
            if my_idx & mask != 0 {
                let dst = rank_of(my_idx - mask);
                let bytes = acc.byte_len();
                self.post(dst, tag, Box::new(acc.clone()), bytes);
                return false;
            } else if my_idx + mask < n_idx {
                let src = rank_of(my_idx + mask);
                let env = self.take_env(src, tag, cat);
                let other = *env
                    .payload
                    .downcast::<Vec<T>>()
                    .unwrap_or_else(|_| panic!("hier reduce type mismatch"));
                for (a, b) in acc.iter_mut().zip(&other) {
                    *a += *b;
                }
            }
            mask <<= 1;
            round += 1;
        }
        my_idx == 0
    }

    /// Binomial broadcast from index 0 over the same index space.
    fn binomial_bcast_by<T: HierElem>(
        &mut self,
        my_idx: usize,
        n_idx: usize,
        rank_of: &dyn Fn(usize) -> usize,
        acc: &mut Vec<T>,
        round_base: u64,
        cat: Category,
    ) {
        let mut mask = 1usize;
        let mut round = round_base;
        while mask < n_idx {
            let tag = tag_internal(TAG_HIER_REDUCE, round, 0);
            if my_idx < mask {
                let dst_idx = my_idx + mask;
                if dst_idx < n_idx {
                    let bytes = acc.byte_len();
                    self.post(rank_of(dst_idx), tag, Box::new(acc.clone()), bytes);
                }
            } else if my_idx < 2 * mask {
                let env = self.take_env(rank_of(my_idx - mask), tag, cat);
                *acc = *env
                    .payload
                    .downcast::<Vec<T>>()
                    .unwrap_or_else(|_| panic!("hier bcast type mismatch"));
            }
            mask <<= 1;
            round += 1;
        }
    }

    /// Intra-node reduction of `v` into the node leader, staged through
    /// a shared window (members write slices, leader combines in slot
    /// order — deterministic). On return, the leader's `v` holds the
    /// node sum; member copies are unchanged. Must be followed by the
    /// leader writing a result and a read-back, or by
    /// [`Comm::node_barrier_cat`] alone when only the leader continues.
    fn node_reduce_shm<T: HierElem + AddAssign>(&mut self, v: &mut [T], cat: Category) {
        let node_first = self.node_leader();
        let node_size = self.node_ranks().len();
        if node_size <= 1 {
            return;
        }
        let n = v.len();
        let bytes = std::mem::size_of_val(v);
        let win = self
            .shm_window_internal::<T>(hier_window_id::<T>(KIND_ALLREDUCE, n * node_size), n * node_size);
        let my_slot = self.rank() - node_first;
        if my_slot != 0 {
            win.write(my_slot * n, v);
            self.charge_shm(cat, bytes);
        }
        self.node_barrier_cat(cat);
        if my_slot == 0 {
            win.with(|buf| {
                for s in 1..node_size {
                    for (a, b) in v.iter_mut().zip(&buf[s * n..(s + 1) * n]) {
                        *a += *b;
                    }
                }
            });
            self.charge_shm(cat, bytes * (node_size - 1));
        }
    }

    /// Leader writes `v` into the shared window; members read it back.
    /// Completes the write→barrier→read→barrier reuse pattern.
    fn node_bcast_shm<T: HierElem>(&mut self, v: &mut [T], cat: Category) {
        let node_size = self.node_ranks().len();
        if node_size <= 1 {
            return;
        }
        let n = v.len();
        let bytes = std::mem::size_of_val(v);
        let win = self
            .shm_window_internal::<T>(hier_window_id::<T>(KIND_ALLREDUCE, n * node_size), n * node_size);
        if self.rank() == self.node_leader() {
            win.write(0, v);
            self.charge_shm(cat, bytes);
        }
        self.node_barrier_cat(cat);
        if self.rank() != self.node_leader() {
            win.read(0, v);
            self.charge_shm(cat, bytes);
        }
        self.node_barrier_cat(cat);
    }

    /// Hierarchical all-reduce (element-wise sum): intra-node reduction
    /// through a shared window, binomial all-reduce among node leaders
    /// over the interconnect, intra-node fan-out through the window.
    /// Falls back to the flat binomial algorithm when the run has no
    /// two-level structure (1 rank/node, or a single node).
    pub fn hier_allreduce<T: HierElem + AddAssign>(&mut self, v: Vec<T>) -> Vec<T> {
        self.hier_allreduce_cat(v, Category::Allreduce)
    }

    pub(crate) fn hier_allreduce_cat<T: HierElem + AddAssign>(
        &mut self,
        v: Vec<T>,
        cat: Category,
    ) -> Vec<T> {
        let p = self.size();
        let mut acc = v;
        if p == 1 {
            return acc;
        }
        if !self.hierarchical() {
            // Same tree as the flat `allreduce`, so results agree bitwise.
            self.binomial_reduce_by(self.rank(), p, &|i| i, &mut acc, 0, cat);
            self.binomial_bcast_by(self.rank(), p, &|i| i, &mut acc, 100, cat);
            return acc;
        }
        self.node_reduce_shm(&mut acc, cat);
        if self.rank() == self.node_leader() {
            let rpn = self.ranks_per_node();
            let n_nodes = p.div_ceil(rpn);
            let node = self.node();
            self.binomial_reduce_by(node, n_nodes, &|i| i * rpn, &mut acc, 0, cat);
            self.binomial_bcast_by(node, n_nodes, &|i| i * rpn, &mut acc, 100, cat);
        }
        self.node_bcast_shm(&mut acc, cat);
        acc
    }

    /// Hierarchical reduce (element-wise sum) to `root`: intra-node
    /// reduction to the leaders, binomial reduce over node leaders
    /// (remapped so `root`'s node is the tree root), and an intra-node
    /// hand-off when `root` is not its node's leader. Returns the sum on
    /// `root`, `None` elsewhere.
    pub fn hier_reduce<T: HierElem + AddAssign>(
        &mut self,
        root: usize,
        v: Vec<T>,
    ) -> Option<Vec<T>> {
        let p = self.size();
        let cat = Category::Allreduce;
        let mut acc = v;
        if p == 1 {
            return Some(acc);
        }
        if !self.hierarchical() {
            let rel = (self.rank() + p - root) % p;
            let holder =
                self.binomial_reduce_by(rel, p, &|i| (i + root) % p, &mut acc, 0, cat);
            return holder.then_some(acc);
        }
        self.node_reduce_shm(&mut acc, cat);
        // Window release: node_reduce_shm readers are done once the
        // leader combined; members leave through this barrier.
        self.node_barrier_cat(cat);
        let rpn = self.ranks_per_node();
        let n_nodes = p.div_ceil(rpn);
        let root_node = self.node_of(root);
        let deliver_tag = tag_internal(TAG_HIER_REDUCE, 0x200, root as u64);
        if self.rank() == self.node_leader() {
            let rel_node = (self.node() + n_nodes - root_node) % n_nodes;
            let holder = self.binomial_reduce_by(
                rel_node,
                n_nodes,
                &|i| ((i + root_node) % n_nodes) * rpn,
                &mut acc,
                0,
                cat,
            );
            if holder {
                if self.rank() == root {
                    return Some(acc);
                }
                let bytes = acc.byte_len();
                self.post(root, deliver_tag, Box::new(acc), bytes);
                return None;
            }
            return None;
        }
        if self.rank() == root {
            let env = self.take_env(self.node_leader(), deliver_tag, cat);
            return Some(*env
                .payload
                .downcast::<Vec<T>>()
                .unwrap_or_else(|_| panic!("hier reduce type mismatch")));
        }
        None
    }

    /// Hierarchical all-gather with per-rank sizes: node members stage
    /// their contributions through shared windows, node leaders run a
    /// ring over the interconnect exchanging per-node blocks, and the
    /// assembled result fans back out through shared windows. Returns
    /// all contributions ordered by world rank.
    pub fn hier_allgatherv<T: HierElem>(&mut self, mine: Vec<T>) -> Vec<Vec<T>> {
        let p = self.size();
        if p == 1 {
            return vec![mine];
        }
        if !self.hierarchical() {
            return self.allgatherv(mine);
        }
        let cat = Category::Allgatherv;
        let rpn = self.ranks_per_node();
        let n_nodes = p.div_ceil(rpn);
        let node = self.node();
        let node_first = self.node_leader();
        let node_size = self.node_ranks().len();
        let my_slot = self.rank() - node_first;
        let elem = std::mem::size_of::<T>();
        let leader = self.rank() == node_first;

        // Intra phase 1: stage (size, data) into node windows.
        let mut node_lens = vec![mine.len() as u64; 1];
        let mut node_data = mine;
        if node_size > 1 {
            let sizes_win = self.shm_window_internal::<u64>(
                hier_window_id::<u64>(KIND_AG_SIZES, node_size),
                node_size,
            );
            sizes_win.write(my_slot, &[node_data.len() as u64]);
            self.charge_shm(cat, 8);
            self.node_barrier_cat(cat);
            node_lens = sizes_win.with(|buf| buf.to_vec());
            self.charge_shm(cat, 8 * node_size);
            // Everyone knows the offsets now; stage the payloads.
            let total: usize = node_lens.iter().map(|&l| l as usize).sum();
            let offset: usize =
                node_lens[..my_slot].iter().map(|&l| l as usize).sum();
            let data_win = self.shm_window_internal::<T>(
                hier_window_id::<T>(KIND_AG_DATA, total),
                total,
            );
            data_win.write(offset, &node_data);
            self.charge_shm(cat, node_data.len() * elem);
            self.node_barrier_cat(cat);
            if leader {
                node_data = data_win.with(|buf| buf.to_vec());
                self.charge_shm(cat, total * elem);
            }
            // Release both windows for reuse before anyone returns.
            self.node_barrier_cat(cat);
        }

        // Inter phase: ring over node leaders, forwarding per-node
        // (lens, data) blocks — n_nodes - 1 steps.
        let mut blocks: Vec<(Vec<u64>, Vec<T>)> = (0..n_nodes).map(|_| (Vec::new(), Vec::new())).collect();
        if leader {
            blocks[node] = (node_lens, node_data);
            let right = ((node + 1) % n_nodes) * rpn;
            let left = ((node + n_nodes - 1) % n_nodes) * rpn;
            for step in 0..n_nodes - 1 {
                let fwd = (node + n_nodes - step) % n_nodes;
                let tag_l = tag_internal(TAG_HIER_GATHER, 2 * step as u64, 0);
                let tag_d = tag_internal(TAG_HIER_GATHER, 2 * step as u64 + 1, 0);
                let (lens, data) = blocks[fwd].clone();
                let lb = lens.byte_len();
                self.post(right, tag_l, Box::new(lens), lb);
                let db = data.byte_len();
                self.post(right, tag_d, Box::new(data), db);
                let env = self.take_env(left, tag_l, cat);
                let lens = *env
                    .payload
                    .downcast::<Vec<u64>>()
                    .unwrap_or_else(|_| panic!("hier allgather lens type mismatch"));
                let env = self.take_env(left, tag_d, cat);
                let data = *env
                    .payload
                    .downcast::<Vec<T>>()
                    .unwrap_or_else(|_| panic!("hier allgather type mismatch"));
                blocks[(node + n_nodes - step - 1) % n_nodes] = (lens, data);
            }
        }

        // Assemble per-world-rank lengths plus the concatenated payload.
        let mut out_lens = vec![0u64; p];
        let mut flat: Vec<T> = Vec::new();
        if leader {
            for (nd, (lens, data)) in blocks.iter().enumerate() {
                for (slot, &l) in lens.iter().enumerate() {
                    out_lens[nd * rpn + slot] = l;
                }
                flat.extend_from_slice(data);
            }
        }

        // Intra phase 2: fan the assembled result out through windows.
        if node_size > 1 {
            let lens_win = self.shm_window_internal::<u64>(
                hier_window_id::<u64>(KIND_AG_OUT_LENS, p),
                p,
            );
            if leader {
                lens_win.write(0, &out_lens);
                self.charge_shm(cat, 8 * p);
            }
            self.node_barrier_cat(cat);
            if !leader {
                lens_win.read(0, &mut out_lens);
                self.charge_shm(cat, 8 * p);
            }
            let grand: usize = out_lens.iter().map(|&l| l as usize).sum();
            let data_win = self.shm_window_internal::<T>(
                hier_window_id::<T>(KIND_AG_OUT_DATA, grand),
                grand,
            );
            if leader {
                data_win.write(0, &flat);
                self.charge_shm(cat, grand * elem);
            }
            self.node_barrier_cat(cat);
            if !leader {
                flat = vec![T::default(); grand];
                data_win.read(0, &mut flat);
                self.charge_shm(cat, grand * elem);
            }
            self.node_barrier_cat(cat);
        }

        // Split the flat payload by per-rank lengths.
        let mut out: Vec<Vec<T>> = Vec::with_capacity(p);
        let mut at = 0usize;
        for &l in &out_lens {
            let l = l as usize;
            out.push(flat[at..at + l].to_vec());
            at += l;
        }
        out
    }

    /// Group-scoped all-to-all with leader aggregation: same-node chunks
    /// go direct; remote chunks funnel member → node leader (intra),
    /// leader → leader as one bundled message pair per node pair
    /// (inter), then leader → destination member (intra). Cuts the
    /// inter-node message count from `O(g²)` to `O(nodes²)`. Unlike the
    /// shm-staged collectives this one is pure point-to-point, so it
    /// works for groups that share nodes with other concurrently
    /// communicating groups (intra-node hops still ride the
    /// shared-memory pricing of [`crate::NetworkModel`]).
    pub fn hier_alltoallv_group<T: Send + Clone + 'static>(
        &mut self,
        members: &[usize],
        mut chunks: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let g = members.len();
        assert_eq!(chunks.len(), g, "hier_alltoallv_group needs one chunk per member");
        assert!(g < 0x1000, "hier_alltoallv_group supports at most 4095 members");
        let me = members
            .iter()
            .position(|&r| r == self.rank())
            .expect("hier_alltoallv_group caller must be a group member");
        let salt = members[0] as u64;
        let cat = Category::Alltoallv;

        // Group topology: distinct nodes (ascending) and the member
        // indices they host (ascending — members of one node need not be
        // contiguous in `members`).
        let member_node: Vec<usize> = members.iter().map(|&r| self.node_of(r)).collect();
        let mut nodes = member_node.clone();
        nodes.sort_unstable();
        nodes.dedup();
        let node_members: Vec<Vec<usize>> = nodes
            .iter()
            .map(|&nd| (0..g).filter(|&i| member_node[i] == nd).collect())
            .collect();
        let my_np = nodes
            .binary_search(&self.node())
            .expect("own node must appear in the group topology");
        let locals = node_members[my_np].clone();
        let leader_gidx = locals[0];
        let i_am_leader = me == leader_gidx;

        let mut out: Vec<Vec<T>> = (0..g).map(|_| Vec::new()).collect();
        out[me] = std::mem::take(&mut chunks[me]);

        // Phase A sends: same-node chunks go direct (intra-node wire).
        for &dst in &locals {
            if dst == me {
                continue;
            }
            let payload = std::mem::take(&mut chunks[dst]);
            let bytes = payload.byte_len();
            let tag = tag_internal(TAG_HIER_A2A, A2A_DIRECT + me as u64, salt);
            self.post(members[dst], tag, Box::new(payload), bytes);
        }

        // Phase B1 sends: members bundle every remote chunk up to their
        // node leader (header: [dst, len] pairs; data: concatenation).
        let bundle_remote = |chunks: &mut Vec<Vec<T>>| -> (Vec<u64>, Vec<T>) {
            let mut hdr = Vec::new();
            let mut data = Vec::new();
            for dst in 0..g {
                if member_node[dst] == member_node[me] || dst == me {
                    continue;
                }
                let chunk = std::mem::take(&mut chunks[dst]);
                hdr.push(dst as u64);
                hdr.push(chunk.len() as u64);
                data.extend(chunk);
            }
            (hdr, data)
        };
        let own_bundle = bundle_remote(&mut chunks);
        if !i_am_leader {
            let (hdr, data) = own_bundle;
            let hb = hdr.byte_len();
            self.post(
                members[leader_gidx],
                tag_internal(TAG_HIER_A2A, A2A_UP_HDR + me as u64, salt),
                Box::new(hdr),
                hb,
            );
            let db = data.byte_len();
            self.post(
                members[leader_gidx],
                tag_internal(TAG_HIER_A2A, A2A_UP_DATA + me as u64, salt),
                Box::new(data),
                db,
            );
        } else {
            // Leader: collect local bundles, regroup per destination
            // node, exchange one bundled pair per node pair, scatter.
            // Entries: (src_gidx, dst_gidx, chunk), member order then
            // header order — deterministic.
            let mut entries: Vec<(usize, usize, Vec<T>)> = Vec::new();
            let push_bundle = |entries: &mut Vec<(usize, usize, Vec<T>)>,
                               src: usize,
                               hdr: Vec<u64>,
                               mut data: Vec<T>| {
                for pair in hdr.chunks(2) {
                    let (dst, len) = (pair[0] as usize, pair[1] as usize);
                    let rest = data.split_off(len);
                    let chunk = std::mem::replace(&mut data, rest);
                    entries.push((src, dst, chunk));
                }
                debug_assert!(data.is_empty(), "bundle data not fully consumed");
            };
            {
                let (hdr, data) = own_bundle;
                push_bundle(&mut entries, me, hdr, data);
            }
            for &m in &locals {
                if m == me {
                    continue;
                }
                let env = self.take_env(
                    members[m],
                    tag_internal(TAG_HIER_A2A, A2A_UP_HDR + m as u64, salt),
                    cat,
                );
                let hdr = *env
                    .payload
                    .downcast::<Vec<u64>>()
                    .unwrap_or_else(|_| panic!("hier alltoall header type mismatch"));
                let env = self.take_env(
                    members[m],
                    tag_internal(TAG_HIER_A2A, A2A_UP_DATA + m as u64, salt),
                    cat,
                );
                let data = *env
                    .payload
                    .downcast::<Vec<T>>()
                    .unwrap_or_else(|_| panic!("hier alltoall type mismatch"));
                push_bundle(&mut entries, m, hdr, data);
            }

            // Phase B2: one (header, data) pair per destination node.
            for (np, dst_members) in node_members.iter().enumerate() {
                if np == my_np {
                    continue;
                }
                let mut hdr = Vec::new();
                let mut data = Vec::new();
                for (src, dst, chunk) in &entries {
                    if member_node[*dst] == nodes[np] {
                        hdr.push(*src as u64);
                        hdr.push(*dst as u64);
                        hdr.push(chunk.len() as u64);
                        data.extend(chunk.iter().cloned());
                    }
                }
                let dst_leader = members[dst_members[0]];
                let hb = hdr.byte_len();
                self.post(
                    dst_leader,
                    tag_internal(TAG_HIER_A2A, A2A_X_HDR + my_np as u64, salt),
                    Box::new(hdr),
                    hb,
                );
                let db = data.byte_len();
                self.post(
                    dst_leader,
                    tag_internal(TAG_HIER_A2A, A2A_X_DATA + my_np as u64, salt),
                    Box::new(data),
                    db,
                );
            }

            // Receive every other leader's bundle; bucket per local dst.
            let mut buckets: Vec<Vec<(usize, Vec<T>)>> =
                (0..locals.len()).map(|_| Vec::new()).collect();
            let slot_of = |dst: usize| locals.iter().position(|&l| l == dst).expect("local dst");
            for np in 0..nodes.len() {
                if np == my_np {
                    continue;
                }
                let src_leader = members[node_members[np][0]];
                let env = self.take_env(
                    src_leader,
                    tag_internal(TAG_HIER_A2A, A2A_X_HDR + np as u64, salt),
                    cat,
                );
                let hdr = *env
                    .payload
                    .downcast::<Vec<u64>>()
                    .unwrap_or_else(|_| panic!("hier alltoall header type mismatch"));
                let env = self.take_env(
                    src_leader,
                    tag_internal(TAG_HIER_A2A, A2A_X_DATA + np as u64, salt),
                    cat,
                );
                let mut data = *env
                    .payload
                    .downcast::<Vec<T>>()
                    .unwrap_or_else(|_| panic!("hier alltoall type mismatch"));
                for triple in hdr.chunks(3) {
                    let (src, dst, len) =
                        (triple[0] as usize, triple[1] as usize, triple[2] as usize);
                    let rest = data.split_off(len);
                    let chunk = std::mem::replace(&mut data, rest);
                    if dst == me {
                        out[src] = chunk;
                    } else {
                        buckets[slot_of(dst)].push((src, chunk));
                    }
                }
            }

            // Phase B3: scatter the buckets to the local members.
            for (slot, &m) in locals.iter().enumerate() {
                if m == me {
                    continue;
                }
                let mut hdr = Vec::new();
                let mut data = Vec::new();
                for (src, chunk) in &buckets[slot] {
                    hdr.push(*src as u64);
                    hdr.push(chunk.len() as u64);
                    data.extend(chunk.iter().cloned());
                }
                let hb = hdr.byte_len();
                self.post(
                    members[m],
                    tag_internal(TAG_HIER_A2A, A2A_DOWN_HDR + m as u64, salt),
                    Box::new(hdr),
                    hb,
                );
                let db = data.byte_len();
                self.post(
                    members[m],
                    tag_internal(TAG_HIER_A2A, A2A_DOWN_DATA + m as u64, salt),
                    Box::new(data),
                    db,
                );
            }
        }

        if !i_am_leader {
            // Receive this member's share of the remote traffic.
            let env = self.take_env(
                members[leader_gidx],
                tag_internal(TAG_HIER_A2A, A2A_DOWN_HDR + me as u64, salt),
                cat,
            );
            let hdr = *env
                .payload
                .downcast::<Vec<u64>>()
                .unwrap_or_else(|_| panic!("hier alltoall header type mismatch"));
            let env = self.take_env(
                members[leader_gidx],
                tag_internal(TAG_HIER_A2A, A2A_DOWN_DATA + me as u64, salt),
                cat,
            );
            let mut data = *env
                .payload
                .downcast::<Vec<T>>()
                .unwrap_or_else(|_| panic!("hier alltoall type mismatch"));
            for pair in hdr.chunks(2) {
                let (src, len) = (pair[0] as usize, pair[1] as usize);
                let rest = data.split_off(len);
                out[src] = std::mem::replace(&mut data, rest);
            }
        }

        // Phase A receives (posted at the very start by every peer).
        for &src in &locals {
            if src == me {
                continue;
            }
            let env = self.take_env(
                members[src],
                tag_internal(TAG_HIER_A2A, A2A_DIRECT + src as u64, salt),
                cat,
            );
            out[src] = *env
                .payload
                .downcast::<Vec<T>>()
                .unwrap_or_else(|_| panic!("hier alltoall type mismatch"));
        }
        out
    }

    /// Dispatches a group all-to-all to the hierarchical algorithm when
    /// the group both spans several nodes *and* co-locates members on at
    /// least one node (otherwise leader aggregation has nothing to
    /// aggregate and the flat pairwise exchange is used).
    pub fn alltoallv_group_auto<T: Send + Clone + 'static>(
        &mut self,
        members: &[usize],
        chunks: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        if self.ranks_per_node() > 1 {
            let mut nodes: Vec<usize> = members.iter().map(|&r| self.node_of(r)).collect();
            nodes.sort_unstable();
            nodes.dedup();
            if nodes.len() > 1 && nodes.len() < members.len() {
                return self.hier_alltoallv_group(members, chunks);
            }
        }
        self.alltoallv_group(members, chunks)
    }

    /// World-sized [`Comm::alltoallv_group_auto`].
    pub fn alltoallv_auto<T: Send + Clone + 'static>(
        &mut self,
        chunks: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let members: Vec<usize> = (0..self.size()).collect();
        self.alltoallv_group_auto(&members, chunks)
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::Cluster;
    use crate::stats::Category;
    use crate::topology::NetworkModel;

    // Shapes covering: flat fallback (rpn = 1), single node, uniform
    // nodes, and a ragged last node.
    const SHAPES: [(usize, usize); 6] = [(8, 1), (4, 4), (8, 4), (12, 4), (7, 3), (9, 4)];

    #[test]
    fn hier_allreduce_matches_flat_sum() {
        for (p, rpn) in SHAPES {
            let out = Cluster::new(p, rpn, NetworkModel::ideal())
                .run(|c| c.hier_allreduce(vec![c.rank() as f64, 2.0]));
            let expect = (p * (p - 1) / 2) as f64;
            for (v, _) in &out {
                assert_eq!(v[0], expect, "p={p} rpn={rpn}");
                assert_eq!(v[1], 2.0 * p as f64);
            }
        }
    }

    #[test]
    fn hier_reduce_delivers_only_to_root() {
        for (p, rpn) in SHAPES {
            for root in [0, p - 1, p / 2] {
                let out = Cluster::new(p, rpn, NetworkModel::ideal())
                    .run(move |c| c.hier_reduce(root, vec![c.rank() as u64, 1]));
                for (rank, (v, _)) in out.iter().enumerate() {
                    if rank == root {
                        let v = v.as_ref().expect("root holds the sum");
                        assert_eq!(v[0], (p * (p - 1) / 2) as u64, "p={p} rpn={rpn} root={root}");
                        assert_eq!(v[1], p as u64);
                    } else {
                        assert!(v.is_none(), "rank {rank} must not hold a result");
                    }
                }
            }
        }
    }

    #[test]
    fn hier_allgatherv_collects_in_rank_order() {
        for (p, rpn) in SHAPES {
            let out = Cluster::new(p, rpn, NetworkModel::ideal()).run(|c| {
                // Variable sizes: rank r contributes r+1 elements.
                let mine: Vec<u64> = (0..=c.rank() as u64).collect();
                c.hier_allgatherv(mine)
            });
            for (recv, _) in &out {
                assert_eq!(recv.len(), p);
                for (src, chunk) in recv.iter().enumerate() {
                    let expect: Vec<u64> = (0..=src as u64).collect();
                    assert_eq!(chunk, &expect, "p={p} rpn={rpn} src={src}");
                }
            }
        }
    }

    #[test]
    fn hier_alltoallv_group_transposes() {
        for (p, rpn) in SHAPES {
            let out = Cluster::new(p, rpn, NetworkModel::ideal()).run(|c| {
                let members: Vec<usize> = (0..p).collect();
                let chunks: Vec<Vec<u64>> = (0..p)
                    .map(|d| (0..=d).map(|k| (c.rank() * 1000 + d * 10 + k) as u64).collect())
                    .collect();
                c.hier_alltoallv_group(&members, chunks)
            });
            for (rank, (recv, _)) in out.iter().enumerate() {
                for (src, chunk) in recv.iter().enumerate() {
                    let expect: Vec<u64> =
                        (0..=rank).map(|k| (src * 1000 + rank * 10 + k) as u64).collect();
                    assert_eq!(chunk, &expect, "p={p} rpn={rpn} rank={rank} src={src}");
                }
            }
        }
    }

    #[test]
    fn hier_alltoallv_subgroup_with_noncontiguous_members() {
        // A group of every other rank: members 0,2,4,6 over 2 nodes of 4
        // — leaders aggregate across a group that does not align with
        // node boundaries.
        let p = 8;
        let members = [0usize, 2, 4, 6];
        let out = Cluster::new(p, 4, NetworkModel::ideal()).run(|c| {
            if !members.contains(&c.rank()) {
                return None;
            }
            let chunks: Vec<Vec<u64>> = members
                .iter()
                .map(|&d| vec![(c.rank() * 10 + d) as u64])
                .collect();
            Some(c.hier_alltoallv_group(&members, chunks))
        });
        for (gi, &rank) in members.iter().enumerate() {
            let recv = out[rank].0.as_ref().expect("member result");
            assert_eq!(recv.len(), members.len());
            for (gj, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![(members[gj] * 10 + rank) as u64], "gi={gi}");
            }
        }
    }

    #[test]
    fn hier_alltoallv_reduces_inter_node_messages() {
        let p = 16;
        let rpn = 4;
        let run = |hier: bool| {
            Cluster::new(p, rpn, NetworkModel::ideal()).run(move |c| {
                let members: Vec<usize> = (0..p).collect();
                let chunks: Vec<Vec<u64>> = (0..p).map(|d| vec![d as u64; 8]).collect();
                let _ = if hier {
                    c.hier_alltoallv_group(&members, chunks)
                } else {
                    c.alltoallv(chunks)
                };
                c.stats.inter_msgs
            })
        };
        let hier_msgs: u64 = run(true).iter().map(|(m, _)| *m).sum();
        let flat_msgs: u64 = run(false).iter().map(|(m, _)| *m).sum();
        // Flat: every rank exchanges with the 12 off-node ranks. Hier:
        // only the 4 leaders exchange (header+data pairs).
        assert!(
            hier_msgs < flat_msgs / 2,
            "hier {hier_msgs} must undercut flat {flat_msgs}"
        );
    }

    #[test]
    fn hier_allreduce_inter_bytes_follow_leader_tree() {
        // 16 ranks on 4 nodes, 1 kB vectors: only leaders cross the
        // network, in a binomial tree (reduce + bcast).
        let p = 16;
        let rpn = 4;
        let n = 128usize; // 1024 bytes of f64
        let out = Cluster::new(p, rpn, NetworkModel::ideal()).run(move |c| {
            let _ = c.hier_allreduce(vec![1.0f64; n]);
            (c.stats.inter_bytes, c.stats.shm_staged_bytes, c.stats.intra_bytes)
        });
        let bytes = (n * 8) as u64;
        let inter_total: u64 = out.iter().map(|((b, _, _), _)| *b).sum();
        // Binomial reduce over 4 nodes: 3 messages; binomial bcast: 3.
        assert_eq!(inter_total, 6 * bytes);
        for (rank, ((_, staged, intra), _)) in out.iter().enumerate() {
            if rank % rpn == 0 {
                // Leader: reads 3 member slices, writes the result.
                assert_eq!(*staged, 4 * bytes, "leader rank {rank}");
            } else {
                // Member: writes its slice, reads the result.
                assert_eq!(*staged, 2 * bytes, "member rank {rank}");
            }
            // Node barriers are the only p2p intra traffic (0-byte).
            assert_eq!(*intra, 0, "rank {rank}");
        }
    }

    #[test]
    fn hier_collectives_are_reusable_back_to_back() {
        // Repeated calls share the same shm windows; the trailing
        // barrier must serialize reuse. Also mixes lengths to force
        // separate windows.
        let out = Cluster::new(8, 4, NetworkModel::ideal()).run(|c| {
            let mut acc = 0.0;
            for it in 0..5 {
                let v = c.hier_allreduce(vec![(c.rank() + it) as f64; 3 + it % 2]);
                acc += v[0];
                let g = c.hier_allgatherv(vec![c.rank() as u64; 1 + it % 3]);
                acc += g[7][0] as f64;
            }
            acc
        });
        let p = 8.0;
        let mut expect = 0.0;
        for it in 0..5 {
            expect += p * (p - 1.0) / 2.0 + it as f64 * p; // allreduce term
            expect += 7.0; // rank 7's gathered value
        }
        for (v, _) in &out {
            assert_eq!(*v, expect);
        }
    }

    #[test]
    fn hier_allreduce_cuts_inter_traffic_without_critical_path_regression() {
        // In the congestion-free link model, both the flat binomial
        // (whose tree is node-contiguous, so high masks are the only
        // inter hops) and the explicit two-level algorithm put about
        // log2(nodes) sequential inter-node transfers on the critical
        // path — the hierarchical win is *total* inter-node traffic, the
        // congestion proxy at paper scale. Use a non-power-of-two node
        // size so the flat tree also misaligns with node boundaries.
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 1e-6,
            sw_overhead: 1e-6,
            bandwidth: 1e9,
            shm_bandwidth: 1e11,
            shm_latency: 1e-8,
        };
        let p = 24;
        let rpn = 3;
        let n = 100_000usize;
        let flat = Cluster::new(p, rpn, net.clone()).run(move |c| {
            let _ = c.allreduce(vec![1.0f64; n]);
            (c.now(), c.stats.inter_bytes)
        });
        let hier = Cluster::new(p, rpn, net.clone()).run(move |c| {
            let _ = c.hier_allreduce(vec![1.0f64; n]);
            (c.now(), c.stats.inter_bytes)
        });
        let t_flat = flat.iter().map(|((t, _), _)| *t).fold(0.0f64, f64::max);
        let t_hier = hier.iter().map(|((t, _), _)| *t).fold(0.0f64, f64::max);
        let b_flat: u64 = flat.iter().map(|((_, b), _)| *b).sum();
        let b_hier: u64 = hier.iter().map(|((_, b), _)| *b).sum();
        assert!(
            b_hier * 2 < b_flat,
            "hier inter traffic {b_hier} should be well under flat {b_flat}"
        );
        assert!(
            t_hier < t_flat * 1.05,
            "hier critical path {t_hier:.6} must not regress vs flat {t_flat:.6}"
        );
    }

    #[test]
    fn hier_times_land_in_collective_categories() {
        let net = NetworkModel {
            topology: crate::topology::Topology::FullyConnected,
            hop_latency: 1e-6,
            sw_overhead: 0.0,
            bandwidth: 1e9,
            shm_bandwidth: 1e10,
            shm_latency: 1e-7,
        };
        let out = Cluster::new(8, 4, net).run(|c| {
            let _ = c.hier_allreduce(vec![1.0f64; 1000]);
            let _ = c.hier_allgatherv(vec![1.0f64; 100]);
            let members: Vec<usize> = (0..8).collect();
            let _ = c.hier_alltoallv_group(&members, (0..8).map(|_| vec![0.0f64; 50]).collect());
            (
                c.stats.time(Category::Allreduce),
                c.stats.time(Category::Allgatherv),
                c.stats.time(Category::Alltoallv),
                c.stats.time(Category::Barrier),
            )
        });
        for (rank, ((ar, ag, av, bar), _)) in out.iter().enumerate() {
            assert!(*ar > 0.0, "rank {rank} allreduce time");
            assert!(*ag > 0.0, "rank {rank} allgatherv time");
            assert!(*av > 0.0, "rank {rank} alltoallv time");
            // The collectives' node barriers are attributed to the
            // collective, not to Barrier.
            assert_eq!(*bar, 0.0, "rank {rank} stray barrier time");
        }
    }
}
