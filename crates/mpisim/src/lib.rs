//! # mpisim — a thread-backed MPI-like runtime with virtual-clock timing
//!
//! The paper's distributed algorithms (broadcast-based and ring-based Fock
//! exchange, asynchronous overlap, shared-memory matrices) are
//! communication-*pattern* level constructs. This crate provides the full
//! operation set they need — `send`/`recv`, `sendrecv`, `isend`/`irecv`/
//! `wait`, `bcast`, `allreduce` (flat and node-aware), `alltoallv`,
//! `allgatherv`, barriers and MPI-3-style shared-memory windows — executed
//! over OS threads with real data movement, so distributed results can be
//! checked bit-for-bit against serial references.
//!
//! Each rank additionally advances a deterministic **virtual clock**
//! driven by a [`topology::NetworkModel`] (latency, bandwidth, hop counts
//! on a torus or fat tree). Receives advance the receiver to
//! `max(own clock, message arrival)`, so timing is Lamport-consistent and
//! independent of host scheduling. Per-category timers reproduce the
//! measurement columns of the paper's Table I.
//!
//! Substitution note (DESIGN.md §2): this replaces MPI on Fugaku/the GPU
//! cluster. Patterns and data paths are identical; absolute times come
//! from the calibrated model, not the real interconnect.
//!
//! For resilience testing, a deterministic [`fault::FaultPlan`] can be
//! installed on a [`Cluster`] to script rank crashes at a chosen step and
//! message drop/delay/duplication on chosen edges, with per-rank
//! attribution in [`Stats`].

pub mod collectives;
pub mod comm;
pub mod fault;
pub mod hier;
pub mod shm;
pub mod stats;
pub mod topology;

pub use comm::{Cluster, Comm, Payload, Request, Tag};
pub use fault::{EdgeFault, EdgeFaultKind, FaultPlan};
pub use shm::ShmWindow;
pub use stats::{Category, RankReport, Stats};
pub use topology::{NetworkModel, Topology};
