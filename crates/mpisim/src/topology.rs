//! Network topology and timing model.
//!
//! The paper evaluates on two interconnects: Fugaku's 6D torus (Tofu-D)
//! and a fat-tree GPU cluster. The ring-based optimization (Sec. IV-B1)
//! wins precisely because neighbor exchanges are single-hop on a torus
//! while broadcasts traverse the whole machine, so the hop model here is
//! what lets the simulator reproduce Fig. 9's Ring/Async gains and
//! Table I's communication-time shifts.

/// Interconnect topology; determines hop counts between compute nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum Topology {
    /// Every node pair is one hop apart (idealised crossbar).
    FullyConnected,
    /// A k-dimensional torus with the given extents (product = node count).
    /// Fugaku is modelled as a 6D torus.
    Torus(Vec<usize>),
    /// A two-level fat tree: `radix` nodes per leaf switch; intra-switch
    /// traffic is 2 hops (up/down), inter-switch 4 hops.
    FatTree { radix: usize },
}

impl Topology {
    /// Hop count between two *nodes* (not ranks).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        match self {
            Topology::FullyConnected => 1,
            Topology::Torus(dims) => {
                let mut ca = Self::coords(a, dims);
                let cb = Self::coords(b, dims);
                let mut h = 0;
                for (i, d) in dims.iter().enumerate() {
                    let x = ca[i].abs_diff(cb[i]);
                    h += x.min(d - x);
                }
                ca.clear();
                h.max(1)
            }
            Topology::FatTree { radix } => {
                if a / radix == b / radix {
                    2
                } else {
                    4
                }
            }
        }
    }

    fn coords(mut idx: usize, dims: &[usize]) -> Vec<usize> {
        let mut c = Vec::with_capacity(dims.len());
        for d in dims {
            c.push(idx % d);
            idx /= d;
        }
        c
    }

    /// Number of nodes the topology can address.
    pub fn node_capacity(&self) -> Option<usize> {
        match self {
            Topology::FullyConnected => None,
            Topology::Torus(dims) => Some(dims.iter().product()),
            Topology::FatTree { .. } => None,
        }
    }

    /// Builds a roughly balanced torus for `n` nodes with the given
    /// dimensionality (used to model Fugaku allocations of arbitrary size).
    pub fn balanced_torus(n: usize, ndim: usize) -> Topology {
        assert!(n > 0 && ndim > 0);
        let mut dims = vec![1usize; ndim];
        let mut remaining = n;
        // Greedy: repeatedly multiply the smallest dimension by the
        // smallest prime factor of the remaining count.
        while remaining > 1 {
            let p = smallest_prime_factor(remaining);
            let i = (0..ndim).min_by_key(|&i| dims[i]).unwrap();
            dims[i] *= p;
            remaining /= p;
        }
        dims.sort_unstable();
        Topology::Torus(dims)
    }
}

fn smallest_prime_factor(n: usize) -> usize {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut p = 3;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return p;
        }
        p += 2;
    }
    n
}

/// Latency/bandwidth model of a cluster interconnect.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// Topology of the inter-node network.
    pub topology: Topology,
    /// Per-hop wire + switch latency (seconds).
    pub hop_latency: f64,
    /// Software/injection overhead per message (seconds); paid by both
    /// sender and receiver once per message regardless of distance.
    pub sw_overhead: f64,
    /// Link bandwidth for inter-node messages (bytes/second).
    pub bandwidth: f64,
    /// Effective bandwidth for intra-node (shared-memory) transfers.
    pub shm_bandwidth: f64,
    /// Latency for intra-node transfers.
    pub shm_latency: f64,
}

impl NetworkModel {
    /// An ideal zero-cost network — used by correctness tests so virtual
    /// time never influences results.
    pub fn ideal() -> Self {
        NetworkModel {
            topology: Topology::FullyConnected,
            hop_latency: 0.0,
            sw_overhead: 0.0,
            bandwidth: f64::INFINITY,
            shm_bandwidth: f64::INFINITY,
            shm_latency: 0.0,
        }
    }

    /// Fugaku-like Tofu-D torus (per-link ~6.8 GB/s, ~1 µs end-to-end).
    pub fn fugaku(nodes: usize) -> Self {
        NetworkModel {
            topology: Topology::balanced_torus(nodes, 6),
            hop_latency: 0.24e-6,
            sw_overhead: 0.6e-6,
            bandwidth: 6.8e9,
            shm_bandwidth: 2.0e11,
            shm_latency: 0.15e-6,
        }
    }

    /// Fat-tree GPU cluster without NVLink/GPUDirect (staged through host,
    /// ~12.5 GB/s effective per NIC, higher software overhead).
    pub fn gpu_cluster(_nodes: usize) -> Self {
        NetworkModel {
            topology: Topology::FatTree { radix: 16 },
            hop_latency: 0.5e-6,
            sw_overhead: 2.5e-6,
            bandwidth: 1.25e10,
            shm_bandwidth: 6.4e10, // PCIe-staged intra-node
            shm_latency: 1.0e-6,
        }
    }

    /// Wall-clock cost of moving `bytes` from node `a` to node `b`.
    pub fn transfer_time(&self, node_a: usize, node_b: usize, bytes: usize) -> f64 {
        if node_a == node_b {
            self.shm_latency + bytes as f64 / self.shm_bandwidth
        } else {
            let hops = self.topology.hops(node_a, node_b) as f64;
            self.sw_overhead + hops * self.hop_latency + bytes as f64 / self.bandwidth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_hops() {
        let t = Topology::FullyConnected;
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 99), 1);
    }

    #[test]
    fn torus_wraps_around() {
        let t = Topology::Torus(vec![4, 4]);
        assert_eq!(t.hops(0, 3), 1, "ring wrap in first dimension");
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 2), 2);
        // Node 5 = (1,1): manhattan distance 2 from origin.
        assert_eq!(t.hops(0, 5), 2);
        assert_eq!(t.node_capacity(), Some(16));
    }

    #[test]
    fn torus_neighbors_single_hop() {
        // Ring embedding: consecutive node ids differ by one coordinate step.
        let t = Topology::Torus(vec![8]);
        for i in 0..8 {
            assert_eq!(t.hops(i, (i + 1) % 8), 1, "neighbor {i}");
        }
        assert_eq!(t.hops(0, 4), 4, "antipode");
    }

    #[test]
    fn fat_tree_two_levels() {
        let t = Topology::FatTree { radix: 4 };
        assert_eq!(t.hops(0, 1), 2);
        assert_eq!(t.hops(0, 3), 2);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(5, 13), 4);
    }

    #[test]
    fn balanced_torus_covers_n() {
        for n in [1, 2, 12, 48, 960] {
            if let Topology::Torus(dims) = Topology::balanced_torus(n, 6) {
                assert_eq!(dims.iter().product::<usize>(), n);
                assert_eq!(dims.len(), 6);
            } else {
                panic!("not a torus");
            }
        }
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let m = NetworkModel::fugaku(64);
        let t1 = m.transfer_time(0, 5, 1_000);
        let t2 = m.transfer_time(0, 5, 1_000_000);
        assert!(t2 > t1);
        // Intra-node is cheaper than inter-node for the same size.
        assert!(m.transfer_time(3, 3, 1_000_000) < m.transfer_time(0, 5, 1_000_000));
    }

    #[test]
    fn ideal_network_is_free() {
        let m = NetworkModel::ideal();
        assert_eq!(m.transfer_time(0, 9, 123456789), 0.0);
    }
}
