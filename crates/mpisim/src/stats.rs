//! Per-rank timing and memory accounting.
//!
//! Mirrors the measurement categories of the paper's Table I: each MPI
//! operation class accumulates virtual time separately so the harness can
//! print the same columns (Alltoallv / Sendrecv / Wait / Allgatherv /
//! Allreduce / Bcast).

use std::collections::HashMap;

/// Classification of communication operations, matching Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Point-to-point blocking send.
    Send,
    /// Point-to-point blocking receive.
    Recv,
    /// Combined send+receive exchange (`MPI_Sendrecv`).
    Sendrecv,
    /// Completion wait for nonblocking operations (`MPI_Wait`).
    Wait,
    /// Broadcast.
    Bcast,
    /// All-reduce.
    Allreduce,
    /// All-to-all with variable counts.
    Alltoallv,
    /// All-gather with variable counts.
    Allgatherv,
    /// Barrier synchronization.
    Barrier,
    /// Modeled computation time (kernel execution between messages).
    Compute,
}

impl Category {
    /// All communication categories in Table I column order.
    pub const TABLE1: [Category; 6] = [
        Category::Alltoallv,
        Category::Sendrecv,
        Category::Wait,
        Category::Allgatherv,
        Category::Allreduce,
        Category::Bcast,
    ];

    /// Every category, in declaration order (JSON export iterates this).
    pub const ALL: [Category; 10] = [
        Category::Send,
        Category::Recv,
        Category::Sendrecv,
        Category::Wait,
        Category::Bcast,
        Category::Allreduce,
        Category::Alltoallv,
        Category::Allgatherv,
        Category::Barrier,
        Category::Compute,
    ];

    /// Lowercase identifier used as a JSON / metrics key.
    pub fn key(self) -> &'static str {
        match self {
            Category::Send => "send",
            Category::Recv => "recv",
            Category::Sendrecv => "sendrecv",
            Category::Wait => "wait",
            Category::Bcast => "bcast",
            Category::Allreduce => "allreduce",
            Category::Alltoallv => "alltoallv",
            Category::Allgatherv => "allgatherv",
            Category::Barrier => "barrier",
            Category::Compute => "compute",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Mutable per-rank statistics collected during a run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    time: HashMap<Category, f64>,
    count: HashMap<Category, u64>,
    /// Total bytes moved through point-to-point messages this rank sent.
    pub bytes_sent: u64,
    /// Bytes this rank sent to ranks on its own node (the intra-node
    /// phase of the two-level communication hierarchy). Together with
    /// `inter_bytes` this partitions `bytes_sent` exactly.
    pub intra_bytes: u64,
    /// Bytes this rank sent to ranks on other nodes (inter-node phase).
    pub inter_bytes: u64,
    /// Point-to-point messages sent to same-node destinations.
    pub intra_msgs: u64,
    /// Point-to-point messages sent to other-node destinations.
    pub inter_msgs: u64,
    /// Wire time (latency + bandwidth terms) of intra-node transfers
    /// this rank initiated, including shared-memory staging steps of the
    /// hierarchical collectives.
    pub intra_wire_s: f64,
    /// Wire time of inter-node transfers this rank initiated.
    pub inter_wire_s: f64,
    /// Bytes staged through node shared-memory windows by the
    /// hierarchical collectives (not part of `bytes_sent`: staging is a
    /// memory copy, not a message).
    pub shm_staged_bytes: u64,
    /// Times a blocked receive/wait was woken by the inbox doorbell —
    /// the event-loop cost metric: O(messages received), independent of
    /// total rank count.
    pub sched_wakeups: u64,
    /// Private (per-rank) heap bytes charged via `alloc_private`.
    pub private_bytes: u64,
    /// This rank's share of node-shared window bytes.
    pub shm_bytes: u64,
    /// Bytes the rank *would* have allocated without the SHM mechanism
    /// (for the memory-saving comparison of Sec. IV-B3).
    pub unshared_equivalent_bytes: u64,
    /// Total wire time of messages completed through nonblocking waits
    /// (`wait`/`waitany`): the sum of each message's full transfer time.
    pub overlap_total_s: f64,
    /// The part of `overlap_total_s` that was *hidden* behind computation
    /// — transfer time that had already elapsed on the virtual clock when
    /// the wait was issued, so it never blocked the rank. The visible
    /// remainder is what lands in the `Wait` category.
    pub overlap_hidden_s: f64,
    /// Messages this rank sent that an injected fault dropped
    /// (see [`crate::fault`]); attribution lets tests separate injected
    /// losses from genuine bugs.
    pub faults_dropped: u64,
    /// Messages this rank sent that an injected fault delayed.
    pub faults_delayed: u64,
    /// Messages this rank sent that an injected fault duplicated.
    pub faults_duplicated: u64,
    /// Total extra arrival latency injected into this rank's sends
    /// (virtual seconds).
    pub fault_delay_s: f64,
}

impl Stats {
    /// Adds `dt` seconds to a category.
    pub fn add_time(&mut self, cat: Category, dt: f64) {
        debug_assert!(dt >= -1e-12, "negative time increment {dt} for {cat}");
        *self.time.entry(cat).or_insert(0.0) += dt.max(0.0);
        *self.count.entry(cat).or_insert(0) += 1;
    }

    /// Accumulated time for a category.
    pub fn time(&self, cat: Category) -> f64 {
        self.time.get(&cat).copied().unwrap_or(0.0)
    }

    /// Number of operations recorded in a category.
    pub fn count(&self, cat: Category) -> u64 {
        self.count.get(&cat).copied().unwrap_or(0)
    }

    /// Fraction of nonblocking transfer time hidden behind computation:
    /// `overlap_hidden_s / overlap_total_s` (0 when no nonblocking
    /// message has completed). This is the overlap-efficiency metric of
    /// the ring-pipelined exchange: 1.0 means every transfer finished
    /// while the rank was computing, 0.0 means every transfer was waited
    /// out in full.
    pub fn overlap_efficiency(&self) -> f64 {
        if self.overlap_total_s <= 0.0 {
            0.0
        } else {
            self.overlap_hidden_s / self.overlap_total_s
        }
    }

    /// Total communication time (everything except `Compute`).
    pub fn comm_time(&self) -> f64 {
        self.time
            .iter()
            .filter(|(c, _)| **c != Category::Compute)
            .map(|(_, t)| *t)
            .sum()
    }

    /// Serializes every category time/count and memory/overlap/fault
    /// field as one *flat* JSON object (hand-rolled: the build
    /// environment vendors no serde). This is the uniform per-rank
    /// export the examples and figure binaries route through, replacing
    /// their ad-hoc column printing; flat keys keep the rows greppable
    /// and `compare.rs`-parseable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        for (i, cat) in Category::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"time_{k}_s\": {t}, \"n_{k}\": {n}",
                k = cat.key(),
                t = fmt_json_f64(self.time(*cat)),
                n = self.count(*cat),
            );
        }
        let _ = write!(
            out,
            ", \"comm_s\": {}, \"bytes_sent\": {}, \"intra_bytes\": {}, \
             \"inter_bytes\": {}, \"intra_msgs\": {}, \"inter_msgs\": {}, \
             \"intra_wire_s\": {}, \"inter_wire_s\": {}, \"shm_staged_bytes\": {}, \
             \"sched_wakeups\": {}, \"private_bytes\": {}, \"shm_bytes\": {}, \
             \"unshared_equivalent_bytes\": {}, \"overlap_total_s\": {}, \
             \"overlap_hidden_s\": {}, \"overlap_efficiency\": {}, \
             \"faults_dropped\": {}, \"faults_delayed\": {}, \
             \"faults_duplicated\": {}, \"fault_delay_s\": {}",
            fmt_json_f64(self.comm_time()),
            self.bytes_sent,
            self.intra_bytes,
            self.inter_bytes,
            self.intra_msgs,
            self.inter_msgs,
            fmt_json_f64(self.intra_wire_s),
            fmt_json_f64(self.inter_wire_s),
            self.shm_staged_bytes,
            self.sched_wakeups,
            self.private_bytes,
            self.shm_bytes,
            self.unshared_equivalent_bytes,
            fmt_json_f64(self.overlap_total_s),
            fmt_json_f64(self.overlap_hidden_s),
            fmt_json_f64(self.overlap_efficiency()),
            self.faults_dropped,
            self.faults_delayed,
            self.faults_duplicated,
            fmt_json_f64(self.fault_delay_s),
        );
        out.push('}');
        out
    }

    /// Bridges this rank's virtual-clock attribution into the `pwobs`
    /// registry under `rank{r}/...` gauge keys (comm time per category,
    /// wire split, overlap, faults) — the one mapping between the
    /// simulated-MPI stats surface and the unified metrics registry.
    /// No-op (and allocation-free) while the recorder is disabled.
    pub fn record_observability(&self, rank: usize) {
        pwobs::if_enabled(|rec| {
            for cat in Category::ALL {
                let t = self.time(cat);
                if t > 0.0 {
                    rec.gauge_add(&format!("rank{rank}/comm/{}_s", cat.key()), t);
                }
            }
            rec.gauge_add(&format!("rank{rank}/comm_s"), self.comm_time());
            rec.gauge_add(&format!("rank{rank}/wire_intra_s"), self.intra_wire_s);
            rec.gauge_add(&format!("rank{rank}/wire_inter_s"), self.inter_wire_s);
            rec.gauge_add(&format!("rank{rank}/overlap_total_s"), self.overlap_total_s);
            rec.gauge_add(&format!("rank{rank}/overlap_hidden_s"), self.overlap_hidden_s);
            rec.gauge_add(&format!("rank{rank}/fault_delay_s"), self.fault_delay_s);
            let faults = self.faults_dropped + self.faults_delayed + self.faults_duplicated;
            if faults > 0 {
                rec.counter_add(&format!("rank{rank}/faults"), faults);
            }
        });
    }

    /// Merges another rank's stats (used for cluster-wide maxima/averages).
    pub fn merge_max(&mut self, other: &Stats) {
        for (c, t) in &other.time {
            let e = self.time.entry(*c).or_insert(0.0);
            *e = e.max(*t);
        }
        for (c, n) in &other.count {
            let e = self.count.entry(*c).or_insert(0);
            *e = (*e).max(*n);
        }
        self.bytes_sent = self.bytes_sent.max(other.bytes_sent);
        self.intra_bytes = self.intra_bytes.max(other.intra_bytes);
        self.inter_bytes = self.inter_bytes.max(other.inter_bytes);
        self.intra_msgs = self.intra_msgs.max(other.intra_msgs);
        self.inter_msgs = self.inter_msgs.max(other.inter_msgs);
        self.intra_wire_s = self.intra_wire_s.max(other.intra_wire_s);
        self.inter_wire_s = self.inter_wire_s.max(other.inter_wire_s);
        self.shm_staged_bytes = self.shm_staged_bytes.max(other.shm_staged_bytes);
        self.sched_wakeups = self.sched_wakeups.max(other.sched_wakeups);
        self.private_bytes = self.private_bytes.max(other.private_bytes);
        self.shm_bytes = self.shm_bytes.max(other.shm_bytes);
        self.unshared_equivalent_bytes =
            self.unshared_equivalent_bytes.max(other.unshared_equivalent_bytes);
        self.overlap_total_s = self.overlap_total_s.max(other.overlap_total_s);
        self.overlap_hidden_s = self.overlap_hidden_s.max(other.overlap_hidden_s);
        self.faults_dropped = self.faults_dropped.max(other.faults_dropped);
        self.faults_delayed = self.faults_delayed.max(other.faults_delayed);
        self.faults_duplicated = self.faults_duplicated.max(other.faults_duplicated);
        self.fault_delay_s = self.fault_delay_s.max(other.fault_delay_s);
    }
}

/// Format an `f64` for JSON (non-finite values become `null`).
fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Immutable end-of-run report for one rank.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// The rank this report belongs to.
    pub rank: usize,
    /// Final virtual clock value (seconds).
    pub virtual_time: f64,
    /// Collected statistics.
    pub stats: Stats,
}

impl RankReport {
    /// One flat JSON object per rank: `rank`, `virtual_time_s`, then
    /// every [`Stats::to_json`] field. Emitting one line per rank gives
    /// a JSONL stream directly loadable by analysis scripts.
    pub fn to_json(&self) -> String {
        let stats = self.stats.to_json();
        format!(
            "{{\"rank\": {}, \"virtual_time_s\": {}, {}",
            self.rank,
            fmt_json_f64(self.virtual_time),
            &stats[1..],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_by_category() {
        let mut s = Stats::default();
        s.add_time(Category::Bcast, 1.5);
        s.add_time(Category::Bcast, 0.5);
        s.add_time(Category::Wait, 2.0);
        assert!((s.time(Category::Bcast) - 2.0).abs() < 1e-15);
        assert_eq!(s.count(Category::Bcast), 2);
        assert!((s.comm_time() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn compute_excluded_from_comm() {
        let mut s = Stats::default();
        s.add_time(Category::Compute, 100.0);
        s.add_time(Category::Allreduce, 1.0);
        assert!((s.comm_time() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn merge_takes_maxima() {
        let mut a = Stats::default();
        a.add_time(Category::Sendrecv, 1.0);
        let mut b = Stats::default();
        b.add_time(Category::Sendrecv, 3.0);
        b.bytes_sent = 10;
        a.merge_max(&b);
        assert!((a.time(Category::Sendrecv) - 3.0).abs() < 1e-15);
        assert_eq!(a.bytes_sent, 10);
    }

    #[test]
    fn overlap_efficiency_bounds() {
        let mut s = Stats::default();
        assert_eq!(s.overlap_efficiency(), 0.0, "no messages => 0");
        s.overlap_total_s = 4.0;
        s.overlap_hidden_s = 3.0;
        assert!((s.overlap_efficiency() - 0.75).abs() < 1e-15);
        let mut other = Stats::default();
        other.overlap_total_s = 8.0;
        other.overlap_hidden_s = 1.0;
        s.merge_max(&other);
        assert!((s.overlap_total_s - 8.0).abs() < 1e-15);
        assert!((s.overlap_hidden_s - 3.0).abs() < 1e-15);
    }

    #[test]
    fn table1_has_six_columns() {
        assert_eq!(Category::TABLE1.len(), 6);
        assert_eq!(Category::TABLE1[0], Category::Alltoallv);
        assert_eq!(Category::TABLE1[5], Category::Bcast);
    }

    #[test]
    fn json_dump_is_flat_and_complete() {
        let mut s = Stats::default();
        s.add_time(Category::Allreduce, 1.25);
        s.add_time(Category::Compute, 3.0);
        s.bytes_sent = 4096;
        s.overlap_total_s = 2.0;
        s.overlap_hidden_s = 1.0;
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        // Flat: exactly one object, no nesting.
        assert_eq!(j.matches('{').count(), 1);
        assert!(j.contains("\"time_allreduce_s\": 1.25"));
        assert!(j.contains("\"n_allreduce\": 1"));
        assert!(j.contains("\"time_compute_s\": 3"));
        assert!(j.contains("\"comm_s\": 1.25"));
        assert!(j.contains("\"bytes_sent\": 4096"));
        assert!(j.contains("\"overlap_efficiency\": 0.5"));
        // Every category appears even when untouched.
        for cat in Category::ALL {
            assert!(j.contains(&format!("\"time_{}_s\":", cat.key())), "{cat} missing");
        }

        let rep = RankReport { rank: 7, virtual_time: 0.5, stats: s };
        let rj = rep.to_json();
        assert!(rj.starts_with("{\"rank\": 7, \"virtual_time_s\": 0.5, "));
        assert!(rj.ends_with('}'));
        assert_eq!(rj.matches('{').count(), 1);
    }

    #[test]
    fn observability_bridge_records_per_rank_gauges() {
        let mut s = Stats::default();
        s.add_time(Category::Allreduce, 1.5);
        s.intra_wire_s = 0.25;
        s.faults_dropped = 2;
        // Disabled: must be a no-op.
        pwobs::set_enabled(false);
        s.record_observability(987654);
        assert_eq!(pwobs::global().gauge("rank987654/comm_s"), None);

        // An improbable rank key keeps concurrent tests (which may also
        // run with the recorder enabled) from colliding with these
        // assertions.
        pwobs::set_enabled(true);
        s.record_observability(987654);
        let rec = pwobs::global();
        assert_eq!(rec.gauge("rank987654/comm/allreduce_s"), Some(1.5));
        assert_eq!(rec.gauge("rank987654/comm_s"), Some(1.5));
        assert_eq!(rec.gauge("rank987654/wire_intra_s"), Some(0.25));
        assert_eq!(rec.counter("rank987654/faults"), 2);
        pwobs::set_enabled(false);
    }
}
