//! MPI-3 style shared-memory windows (paper Sec. IV-B3).
//!
//! The paper stores the non-scalable square matrices (σ, Φ\*Φ, Φ\*HΦ) in
//! MPI SHM windows so the `p` ranks of a node share one copy, cutting that
//! footprint to `1/p`. Here a window is one heap allocation shared by the
//! ranks of a simulated node; the accounting fields of
//! [`crate::stats::Stats`] record both the shared cost and what the rank
//! *would* have paid privately, which is what the Fig. 11 memory model
//! checks against. As in the paper, the mechanism trades a little access
//! locality (NUMA) for memory: we model that penalty in `perfmodel`, not
//! here — data-plane access is plain memory.

use crate::comm::Comm;
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Process-wide registry mapping `(node, window id)` to live windows.
#[derive(Default)]
pub struct ShmRegistry {
    entries: Mutex<HashMap<(usize, u64), Box<dyn Any + Send + Sync>>>,
}

impl ShmRegistry {
    fn get_or_create<T: Copy + Default + Send + Sync + 'static>(
        &self,
        node: usize,
        id: u64,
        len: usize,
    ) -> Arc<RwLock<Vec<T>>> {
        let mut map = self.entries.lock();
        let entry = map
            .entry((node, id))
            .or_insert_with(|| Box::new(Arc::new(RwLock::new(vec![T::default(); len]))));
        let arc = entry
            .downcast_ref::<Arc<RwLock<Vec<T>>>>()
            .expect("shm window reopened with a different element type");
        assert_eq!(arc.read().len(), len, "shm window reopened with a different length");
        Arc::clone(arc)
    }
}

/// A node-shared buffer of `T`.
#[derive(Clone)]
pub struct ShmWindow<T> {
    buf: Arc<RwLock<Vec<T>>>,
}

impl<T: Copy + Default + Send + Sync + 'static> ShmWindow<T> {
    /// Number of elements in the window.
    pub fn len(&self) -> usize {
        self.buf.read().len()
    }

    /// True when the window holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes `data` at `offset`. Ranks writing disjoint regions is the
    /// intended pattern (each rank fills its slice of Φ\*Φ).
    pub fn write(&self, offset: usize, data: &[T]) {
        let mut buf = self.buf.write();
        buf[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Copies `out.len()` elements starting at `offset` into `out`.
    pub fn read(&self, offset: usize, out: &mut [T]) {
        let buf = self.buf.read();
        out.copy_from_slice(&buf[offset..offset + out.len()]);
    }

    /// Runs `f` with a read view of the whole window.
    pub fn with<R>(&self, f: impl FnOnce(&[T]) -> R) -> R {
        f(&self.buf.read())
    }

    /// Runs `f` with a write view of the whole window (single writer).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [T]) -> R) -> R {
        f(&mut self.buf.write())
    }
}

impl Comm {
    /// Opens (or attaches to) the node-shared window `id` of `len`
    /// elements. All ranks of a node must call this with the same `id`,
    /// type and length; contents start zeroed/default.
    ///
    /// Memory accounting: each rank is charged `size/ranks_per_node`
    /// shared bytes plus the full size in `unshared_equivalent_bytes`.
    pub fn shm_window<T: Copy + Default + Send + Sync + 'static>(
        &mut self,
        id: u64,
        len: usize,
    ) -> ShmWindow<T> {
        let node = self.node();
        let arc = self.shm.get_or_create::<T>(node, id, len);
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let node_size = self.node_ranks().len() as u64;
        self.stats.shm_bytes += bytes / node_size.max(1);
        self.stats.unshared_equivalent_bytes += bytes;
        ShmWindow { buf: arc }
    }

    /// Internal window attach for the hierarchical collectives: same
    /// registry, but no footprint accounting — collective staging
    /// buffers are transient scratch, not the resident σ/Φ\*Φ state the
    /// Sec. IV-B3 memory model tracks. Data movement through the window
    /// is priced separately via `charge_shm`.
    pub(crate) fn shm_window_internal<T: Copy + Default + Send + Sync + 'static>(
        &mut self,
        id: u64,
        len: usize,
    ) -> ShmWindow<T> {
        let node = self.node();
        ShmWindow { buf: self.shm.get_or_create::<T>(node, id, len) }
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::Cluster;
    use crate::topology::NetworkModel;

    #[test]
    fn ranks_on_same_node_share_data() {
        let out = Cluster::new(4, 2, NetworkModel::ideal()).run(|c| {
            let win = c.shm_window::<f64>(1, 8);
            // Each rank writes its quarter... here: each rank of the node
            // writes half the window.
            let local = c.rank() % 2;
            win.write(local * 4, &[c.rank() as f64; 4]);
            c.node_barrier();
            let mut all = vec![0.0; 8];
            win.read(0, &mut all);
            all
        });
        // Node 0 (ranks 0,1): [0,0,0,0,1,1,1,1]; node 1 (ranks 2,3): [2,2,2,2,3,3,3,3].
        assert_eq!(out[0].0, vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(out[1].0, out[0].0);
        assert_eq!(out[2].0, vec![2.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0]);
        assert_eq!(out[3].0, out[2].0);
    }

    #[test]
    fn different_nodes_do_not_share() {
        let out = Cluster::new(2, 1, NetworkModel::ideal()).run(|c| {
            let win = c.shm_window::<u64>(9, 4);
            win.write(0, &[c.rank() as u64 + 10; 4]);
            c.barrier();
            let mut v = vec![0u64; 4];
            win.read(0, &mut v);
            v
        });
        assert_eq!(out[0].0, vec![10; 4]);
        assert_eq!(out[1].0, vec![11; 4]);
    }

    #[test]
    fn memory_accounting_divides_by_node_size() {
        let out = Cluster::new(4, 4, NetworkModel::ideal()).run(|c| {
            let _w = c.shm_window::<f64>(2, 1000); // 8000 bytes
            (c.stats.shm_bytes, c.stats.unshared_equivalent_bytes)
        });
        for ((shm, unshared), _) in &out {
            assert_eq!(*shm, 2000);
            assert_eq!(*unshared, 8000);
        }
    }

    #[test]
    #[should_panic(expected = "different length")]
    fn mismatched_reopen_panics() {
        // No rank may block after the expected panic: the surviving rank
        // must run to completion or the scope join deadlocks.
        Cluster::new(2, 2, NetworkModel::ideal()).run(|c| {
            if c.rank() == 0 {
                let _ = c.shm_window::<f64>(3, 10);
                // Tell rank 1 the window exists, then finish.
                c.send(1, 1, ());
            } else {
                let () = c.recv(0, 1);
                let _ = c.shm_window::<f64>(3, 20); // panics
            }
        });
    }
}
