//! # pwobs — unified tracing, metrics, and profiling
//!
//! The paper's core evidence is *per-phase time attribution*: component
//! breakdowns of FFT / GEMM / exchange / communication time (Figs. 9–11).
//! This crate is the single registry every layer of the reproduction
//! reports into:
//!
//! * **Scoped spans** ([`span`]) — RAII guards with thread-safe
//!   aggregation by name: call count, total wall time, and *self* time
//!   (total minus time spent in child spans on the same thread).
//! * **Counters and gauges** ([`counter_add`], [`gauge_set`],
//!   [`gauge_add`]) — monotonic event counts and point-in-time values,
//!   keyed by string (distributed code uses `rank{r}/...` keys).
//! * **A global [`Recorder`]** that is a no-op unless enabled: the
//!   disabled fast path is a single relaxed atomic load, no allocation,
//!   no clock read (see `tests/zero_alloc.rs`). Enable explicitly with
//!   [`set_enabled`] or via the `PWOBS` environment variable.
//!
//! Three exporters live in [`export`]:
//!
//! 1. [`export::chrome_trace_json`] — a chrome://tracing-compatible JSON
//!    timeline (open in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)),
//! 2. [`export::phase_table`] — the flat Fig. 9-style per-phase
//!    breakdown (FFT / GEMM / exchange / comm rows summing to the step
//!    wall time),
//! 3. [`export::StepStream`] — a JSONL per-step metrics stream, the
//!    seam the future multi-trajectory service subscribes to.
//!
//! ## Span naming convention
//!
//! Span names are `"<phase>.<site>"` where the leading dot-component
//! selects the Fig. 9 phase row (see [`Phase::classify`]):
//!
//! | prefix          | phase row        | examples |
//! |-----------------|------------------|----------|
//! | `fft.`, `grid.` | FFT + grid ops   | `fft.transform_batch`, `grid.eval` |
//! | `gemm.`         | GEMM / subspace  | `gemm.gemm`, `gemm.anderson`, `gemm.eigh` |
//! | `xch.`          | exact exchange   | `xch.fused_pair_solve`, `xch.ace_build` |
//! | `comm.`         | communication    | `comm.allreduce`, `comm.recv` |
//! | `step.`         | propagator glue  | `step.ptim`, `step.guard` |
//! | `ckpt.`         | resilience I/O   | `ckpt.write`, `ckpt.restore` |
//!
//! Self-time decomposition is exact per thread: the sum of `self` time
//! over all spans recorded on a thread equals the total wall time of
//! that thread's root spans, so phase rows partition the measured run
//! time with no double counting.

pub mod export;

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Maximum retained timeline events; further spans still aggregate but
/// their timeline entries are dropped (counted in
/// [`Recorder::dropped_events`]). Bounds trace memory on long runs.
pub const MAX_TIMELINE_EVENTS: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Global enable state
// ---------------------------------------------------------------------------

/// 0 = not yet initialised (consult `PWOBS` env), 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

#[inline]
fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s == 0 {
        init_from_env()
    } else {
        s
    }
}

#[cold]
fn init_from_env() -> u8 {
    let on = std::env::var_os("PWOBS").is_some_and(|v| v != "0" && !v.is_empty());
    let s = if on { 2 } else { 1 };
    // `compare_exchange` so an explicit `set_enabled` racing with lazy
    // env init wins deterministically.
    match STATE.compare_exchange(0, s, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => s,
        Err(cur) => cur,
    }
}

/// Is the global recorder currently capturing?
#[inline]
pub fn enabled() -> bool {
    state() == 2
}

/// Turn the global recorder on or off. Spans opened while disabled are
/// never recorded, even if they close after enabling (and vice versa a
/// span opened while enabled records on drop regardless).
pub fn set_enabled(on: bool) {
    if on {
        // Materialise the epoch and registry outside any span so first
        // use is not attributed to user code.
        let _ = epoch();
        let _ = global();
    }
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Thread identity and span stack
// ---------------------------------------------------------------------------

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

struct Frame {
    child_ns: u64,
}

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Small stable per-thread id (1, 2, ...) in spawn order of first span.
fn thread_id() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

/// Fig. 9-style component classification of a span name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Grid transforms and grid-local elementwise physics (density
    /// accumulation, potentials, Hadamard products).
    Fft,
    /// Band-space dense algebra: GEMMs, overlaps, rotations,
    /// eigensolves, Anderson mixing, Löwdin constraints.
    Gemm,
    /// Exact-exchange pair work (fused pair solves, ACE builds).
    Exchange,
    /// Communication (simulated MPI wait/wire time).
    Comm,
    /// Propagator control flow (`step.*` spans' self time).
    Step,
    /// Checkpoint/restore I/O.
    Checkpoint,
    /// Anything not matching the naming convention.
    Other,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 7] = [
        Phase::Fft,
        Phase::Gemm,
        Phase::Exchange,
        Phase::Comm,
        Phase::Step,
        Phase::Checkpoint,
        Phase::Other,
    ];

    /// Classify a span name by its leading dot-component.
    pub fn classify(name: &str) -> Phase {
        match name.split('.').next().unwrap_or("") {
            "fft" | "grid" => Phase::Fft,
            "gemm" => Phase::Gemm,
            "xch" => Phase::Exchange,
            "comm" => Phase::Comm,
            "step" => Phase::Step,
            "ckpt" => Phase::Checkpoint,
            _ => Phase::Other,
        }
    }

    /// Human-readable row label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Fft => "fft+grid",
            Phase::Gemm => "gemm/subspace",
            Phase::Exchange => "exchange",
            Phase::Comm => "comm",
            Phase::Step => "step glue",
            Phase::Checkpoint => "checkpoint",
            Phase::Other => "other",
        }
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// Aggregate statistics for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans with this name.
    pub calls: u64,
    /// Total wall time, nanoseconds (inclusive of child spans).
    pub total_ns: u64,
    /// Wall time exclusive of same-thread child spans, nanoseconds.
    pub self_ns: u64,
}

/// One timeline entry (a completed span) for the chrome-trace export.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Span name (static instrumentation-site label).
    pub name: &'static str,
    /// Small per-thread id.
    pub tid: u32,
    /// Start offset from the process trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Thread-safe span/counter/gauge registry. The process-wide instance
/// is [`global`]; tests construct private instances to exercise
/// aggregation without cross-test interference.
#[derive(Default)]
pub struct Recorder {
    spans: Mutex<HashMap<&'static str, SpanStat>>,
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, f64>>,
    timeline: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl Recorder {
    /// Fresh empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one completed span into the aggregate and the timeline.
    pub fn record_span(
        &self,
        name: &'static str,
        total_ns: u64,
        self_ns: u64,
        start_ns: u64,
        tid: u32,
    ) {
        {
            let mut m = self.spans.lock();
            let e = m.entry(name).or_default();
            e.calls += 1;
            e.total_ns += total_ns;
            e.self_ns += self_ns;
        }
        let mut t = self.timeline.lock();
        if t.len() < MAX_TIMELINE_EVENTS {
            t.push(TraceEvent { name, tid, start_ns, dur_ns: total_ns });
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Add `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut m = self.counters.lock();
        match m.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                m.insert(name.to_owned(), delta);
            }
        }
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut m = self.gauges.lock();
        match m.get_mut(name) {
            Some(v) => *v = value,
            None => {
                m.insert(name.to_owned(), value);
            }
        }
    }

    /// Add `delta` to the named gauge (creating it at `delta`).
    pub fn gauge_add(&self, name: &str, delta: f64) {
        let mut m = self.gauges.lock();
        match m.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                m.insert(name.to_owned(), delta);
            }
        }
    }

    /// Raise the named gauge to `value` if below it (high-water mark).
    pub fn gauge_max(&self, name: &str, value: f64) {
        let mut m = self.gauges.lock();
        match m.get_mut(name) {
            Some(v) => *v = v.max(value),
            None => {
                m.insert(name.to_owned(), value);
            }
        }
    }

    /// Span aggregates, sorted by name (deterministic regardless of
    /// thread interleaving).
    pub fn span_stats(&self) -> Vec<(&'static str, SpanStat)> {
        let mut v: Vec<_> = self.spans.lock().iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Aggregate for a single span name, if recorded.
    pub fn span_stat(&self, name: &str) -> Option<SpanStat> {
        self.spans.lock().get(name).copied()
    }

    /// Counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> = self.counters.lock().iter().map(|(k, c)| (k.clone(), *c)).collect();
        v.sort();
        v
    }

    /// Gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        let mut v: Vec<_> = self.gauges.lock().iter().map(|(k, g)| (k.clone(), *g)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Value of one counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Value of one gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.lock().get(name).copied()
    }

    /// Copy of the timeline (chronological per thread, interleaved
    /// across threads in completion order).
    pub fn timeline(&self) -> Vec<TraceEvent> {
        self.timeline.lock().clone()
    }

    /// Number of retained timeline events.
    pub fn timeline_len(&self) -> usize {
        self.timeline.lock().len()
    }

    /// Timeline events discarded after [`MAX_TIMELINE_EVENTS`].
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total self time (seconds) attributed to `phase` across all spans.
    pub fn phase_self_s(&self, phase: Phase) -> f64 {
        let m = self.spans.lock();
        m.iter()
            .filter(|(name, _)| Phase::classify(name) == phase)
            .map(|(_, s)| s.self_ns as f64 * 1e-9)
            .sum()
    }

    /// Clear all aggregates, counters, gauges, and the timeline.
    pub fn reset(&self) {
        self.spans.lock().clear();
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.timeline.lock().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// The process-wide recorder all instrumentation reports into.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard returned by [`span`]; records on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

/// Open a scoped span. When the recorder is disabled this is a single
/// relaxed atomic load — no clock read, no allocation.
#[inline]
pub fn span(name: &'static str) -> Span {
    if state() != 2 {
        return Span { name, start_ns: 0, active: false };
    }
    span_slow(name)
}

fn span_slow(name: &'static str) -> Span {
    STACK.with(|s| s.borrow_mut().push(Frame { child_ns: 0 }));
    Span { name, start_ns: now_ns(), active: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let total_ns = now_ns().saturating_sub(self.start_ns);
        let child_ns = STACK.with(|s| {
            let mut st = s.borrow_mut();
            let child = st.pop().map(|f| f.child_ns).unwrap_or(0);
            if let Some(parent) = st.last_mut() {
                parent.child_ns += total_ns;
            }
            child
        });
        global().record_span(
            self.name,
            total_ns,
            total_ns.saturating_sub(child_ns),
            self.start_ns,
            thread_id(),
        );
    }
}

// ---------------------------------------------------------------------------
// Counter / gauge front doors (no-ops while disabled)
// ---------------------------------------------------------------------------

/// Add to a global monotonic counter; no-op while disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if state() == 2 {
        global().counter_add(name, delta);
    }
}

/// Set a global gauge; no-op while disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if state() == 2 {
        global().gauge_set(name, value);
    }
}

/// Add to a global gauge; no-op while disabled.
#[inline]
pub fn gauge_add(name: &str, delta: f64) {
    if state() == 2 {
        global().gauge_add(name, delta);
    }
}

/// Run `f` against the global recorder only when enabled. Use this at
/// bridge points that would otherwise allocate key strings (e.g.
/// per-rank `format!` keys) on the disabled path.
#[inline]
pub fn if_enabled(f: impl FnOnce(&Recorder)) {
    if state() == 2 {
        f(global());
    }
}

/// Reset the global recorder (aggregates, counters, gauges, timeline).
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_follows_prefix_convention() {
        assert_eq!(Phase::classify("fft.transform_batch"), Phase::Fft);
        assert_eq!(Phase::classify("grid.eval"), Phase::Fft);
        assert_eq!(Phase::classify("gemm.overlap32"), Phase::Gemm);
        assert_eq!(Phase::classify("xch.fused_pair_solve"), Phase::Exchange);
        assert_eq!(Phase::classify("comm.allreduce"), Phase::Comm);
        assert_eq!(Phase::classify("step.ptim_ace"), Phase::Step);
        assert_eq!(Phase::classify("ckpt.write"), Phase::Checkpoint);
        assert_eq!(Phase::classify("mystery"), Phase::Other);
        assert_eq!(Phase::classify(""), Phase::Other);
    }

    #[test]
    fn recorder_aggregates_spans_counters_gauges() {
        let r = Recorder::new();
        r.record_span("gemm.gemm", 100, 60, 0, 1);
        r.record_span("gemm.gemm", 50, 50, 200, 1);
        r.record_span("fft.transform_batch", 40, 40, 100, 2);
        let s = r.span_stat("gemm.gemm").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_ns, 150);
        assert_eq!(s.self_ns, 110);

        r.counter_add("fock.solves", 3);
        r.counter_add("fock.solves", 2);
        assert_eq!(r.counter("fock.solves"), 5);

        r.gauge_set("pool.peak_bytes", 1024.0);
        r.gauge_max("pool.peak_bytes", 512.0);
        assert_eq!(r.gauge("pool.peak_bytes"), Some(1024.0));
        r.gauge_max("pool.peak_bytes", 4096.0);
        assert_eq!(r.gauge("pool.peak_bytes"), Some(4096.0));
        r.gauge_add("pool.peak_bytes", 4.0);
        assert_eq!(r.gauge("pool.peak_bytes"), Some(4100.0));

        assert_eq!(r.timeline_len(), 3);
        assert_eq!(r.dropped_events(), 0);
        let stats = r.span_stats();
        assert_eq!(stats[0].0, "fft.transform_batch");
        assert_eq!(stats[1].0, "gemm.gemm");

        r.reset();
        assert!(r.span_stats().is_empty());
        assert_eq!(r.counter("fock.solves"), 0);
        assert_eq!(r.timeline_len(), 0);
    }

    #[test]
    fn phase_self_time_partitions_by_prefix() {
        let r = Recorder::new();
        r.record_span("fft.transform_batch", 100, 100, 0, 1);
        r.record_span("grid.eval", 300, 80, 0, 1);
        r.record_span("xch.fused_pair_solve", 500, 500, 0, 1);
        assert!((r.phase_self_s(Phase::Fft) - 180e-9).abs() < 1e-15);
        assert!((r.phase_self_s(Phase::Exchange) - 500e-9).abs() < 1e-15);
        assert_eq!(r.phase_self_s(Phase::Comm), 0.0);
    }
}
