//! Exporters: chrome://tracing timeline, Fig. 9-style phase table, and
//! the JSONL per-step metrics stream.

use crate::{Phase, Recorder, SpanStat};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for JSON: finite values as-is, non-finite as `null`
/// (bare `NaN`/`inf` are not valid JSON).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Chrome trace timeline
// ---------------------------------------------------------------------------

/// Serialize the recorder's timeline as chrome://tracing "trace event
/// format" JSON (complete `"X"` events; timestamps/durations in
/// microseconds). Load the result in `chrome://tracing` or Perfetto.
///
/// Events are sorted by `(tid, ts)` so output is deterministic for a
/// given set of recorded spans. Aggregate counters and gauges ride along
/// under `"otherData"`.
pub fn chrome_trace_json(rec: &Recorder) -> String {
    let mut events = rec.timeline();
    events.sort_by_key(|e| (e.tid, e.start_ns));

    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}}}",
            json_escape(e.name),
            Phase::classify(e.name).label(),
            e.tid,
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
        );
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\", \"otherData\": {");
    let mut first = true;
    for (k, v) in rec.counters() {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "\"{}\": {}", json_escape(&k), v);
    }
    for (k, v) in rec.gauges() {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "\"{}\": {}", json_escape(&k), json_f64(v));
    }
    if rec.dropped_events() > 0 {
        if !first {
            out.push_str(", ");
        }
        let _ = write!(out, "\"pwobs_dropped_events\": {}", rec.dropped_events());
    }
    out.push_str("}}\n");
    out
}

// ---------------------------------------------------------------------------
// Per-phase breakdown (Fig. 9-style)
// ---------------------------------------------------------------------------

/// One row of the per-phase breakdown.
#[derive(Clone, Copy, Debug)]
pub struct PhaseRow {
    /// Which component this row aggregates.
    pub phase: Phase,
    /// Total *self* time (seconds) of all spans classified into it.
    pub self_s: f64,
    /// Completed span count.
    pub calls: u64,
}

/// Aggregate span self-time by phase, in [`Phase::ALL`] display order.
/// Rows with no recorded spans are included with zeros so table shape
/// is stable.
pub fn phase_breakdown(rec: &Recorder) -> Vec<PhaseRow> {
    let stats: Vec<(&'static str, SpanStat)> = rec.span_stats();
    Phase::ALL
        .iter()
        .map(|&phase| {
            let (mut self_ns, mut calls) = (0u64, 0u64);
            for (name, s) in &stats {
                if Phase::classify(name) == phase {
                    self_ns += s.self_ns;
                    calls += s.calls;
                }
            }
            PhaseRow { phase, self_s: self_ns as f64 * 1e-9, calls }
        })
        .collect()
}

/// Fraction of `total_s` attributed to the paper's four component rows
/// (FFT+grid, GEMM/subspace, exchange, comm). The observability
/// acceptance gate requires this ≥ 0.95 for an instrumented serial run.
pub fn tracked_fraction(rec: &Recorder, total_s: f64) -> f64 {
    if total_s <= 0.0 {
        return 0.0;
    }
    let core = [Phase::Fft, Phase::Gemm, Phase::Exchange, Phase::Comm];
    let sum: f64 = phase_breakdown(rec)
        .iter()
        .filter(|r| core.contains(&r.phase))
        .map(|r| r.self_s)
        .sum();
    sum / total_s
}

/// Render the Fig. 9-style component table against a measured wall time
/// `total_s` (the caller times the stepped region; rows are span self
/// time, `untracked` is the remainder).
pub fn phase_table(rec: &Recorder, total_s: f64) -> String {
    let rows = phase_breakdown(rec);
    let tracked: f64 = rows.iter().map(|r| r.self_s).sum();
    let mut out = String::new();
    let _ = writeln!(out, "{:<14} {:>12} {:>8} {:>10}", "phase", "self [s]", "share", "calls");
    let _ = writeln!(out, "{}", "-".repeat(48));
    for r in &rows {
        if r.calls == 0 && r.self_s == 0.0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<14} {:>12.6} {:>7.2}% {:>10}",
            r.phase.label(),
            r.self_s,
            100.0 * r.self_s / total_s.max(1e-300),
            r.calls,
        );
    }
    let untracked = (total_s - tracked).max(0.0);
    let _ = writeln!(
        out,
        "{:<14} {:>12.6} {:>7.2}% {:>10}",
        "untracked",
        untracked,
        100.0 * untracked / total_s.max(1e-300),
        "-",
    );
    let _ = writeln!(out, "{}", "-".repeat(48));
    let _ = writeln!(out, "{:<14} {:>12.6} {:>7.2}% ", "total (wall)", total_s, 100.0);
    out
}

// ---------------------------------------------------------------------------
// JSONL per-step metrics stream
// ---------------------------------------------------------------------------

/// One JSON value in a [`StepRecord`].
#[derive(Clone, Debug)]
enum JsonVal {
    U(u64),
    F(f64),
    B(bool),
    S(String),
}

/// An ordered flat JSON object describing one propagation step —
/// build with the fluent setters, serialize with
/// [`StepRecord::to_json`], stream with [`StepStream`].
#[derive(Clone, Debug, Default)]
pub struct StepRecord {
    fields: Vec<(String, JsonVal)>,
}

impl StepRecord {
    /// Start a record for step index `step`.
    pub fn new(step: u64) -> Self {
        StepRecord { fields: vec![("step".to_owned(), JsonVal::U(step))] }
    }

    /// Append an unsigned integer field.
    pub fn u(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.to_owned(), JsonVal::U(v)));
        self
    }

    /// Append a float field.
    pub fn f(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.to_owned(), JsonVal::F(v)));
        self
    }

    /// Append a boolean field.
    pub fn b(mut self, key: &str, v: bool) -> Self {
        self.fields.push((key.to_owned(), JsonVal::B(v)));
        self
    }

    /// Append a string field.
    pub fn s(mut self, key: &str, v: &str) -> Self {
        self.fields.push((key.to_owned(), JsonVal::S(v.to_owned())));
        self
    }

    /// Serialize as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": ", json_escape(k));
            match v {
                JsonVal::U(u) => {
                    let _ = write!(out, "{u}");
                }
                JsonVal::F(f) => out.push_str(&json_f64(*f)),
                JsonVal::B(b) => {
                    let _ = write!(out, "{b}");
                }
                JsonVal::S(s) => {
                    let _ = write!(out, "\"{}\"", json_escape(s));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Line-per-step JSONL writer — the streaming seam for the future
/// multi-trajectory service: point it at a file, a pipe, or an
/// in-memory buffer and emit one [`StepRecord`] per step as it
/// completes (no collect-at-end).
pub struct StepStream<W: Write> {
    w: W,
    lines: u64,
}

impl<W: Write> StepStream<W> {
    /// Wrap a writer.
    pub fn new(w: W) -> Self {
        StepStream { w, lines: 0 }
    }

    /// Write one record as a JSON line and flush (subscribers tail the
    /// stream live).
    pub fn emit(&mut self, rec: &StepRecord) -> io::Result<()> {
        self.w.write_all(rec.to_json().as_bytes())?;
        self.w.write_all(b"\n")?;
        self.w.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Records emitted so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Recover the inner writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn step_record_serializes_in_insertion_order() {
        let r = StepRecord::new(3).f("wall_s", 0.25).u("scf_iters", 7).b("converged", true).s(
            "propagator",
            "ptim_ace",
        );
        assert_eq!(
            r.to_json(),
            "{\"step\": 3, \"wall_s\": 0.25, \"scf_iters\": 7, \
             \"converged\": true, \"propagator\": \"ptim_ace\"}"
        );
    }

    #[test]
    fn step_stream_emits_one_line_per_record() {
        let mut s = StepStream::new(Vec::new());
        s.emit(&StepRecord::new(0).f("wall_s", 0.5)).unwrap();
        s.emit(&StepRecord::new(1).f("wall_s", f64::NAN)).unwrap();
        assert_eq!(s.lines(), 2);
        let text = String::from_utf8(s.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"wall_s\": null"));
    }

    #[test]
    fn phase_table_accounts_untracked_remainder() {
        let r = Recorder::new();
        r.record_span("fft.transform_batch", 400_000_000, 400_000_000, 0, 1);
        r.record_span("xch.fused_pair_solve", 500_000_000, 500_000_000, 0, 1);
        let table = phase_table(&r, 1.0);
        assert!(table.contains("fft+grid"));
        assert!(table.contains("exchange"));
        assert!(table.contains("untracked"));
        let frac = tracked_fraction(&r, 1.0);
        assert!((frac - 0.9).abs() < 1e-12, "{frac}");
    }

    #[test]
    fn chrome_trace_is_deterministic_and_escaped() {
        let r = Recorder::new();
        r.record_span("gemm.gemm", 2_000, 2_000, 5_000, 2);
        r.record_span("fft.transform_batch", 1_000, 1_000, 1_000, 1);
        r.counter_add("fock.solves", 4);
        let a = chrome_trace_json(&r);
        let b = chrome_trace_json(&r);
        assert_eq!(a, b);
        // tid 1 sorts before tid 2 regardless of recording order.
        let i_fft = a.find("fft.transform_batch").unwrap();
        let i_gemm = a.find("gemm.gemm").unwrap();
        assert!(i_fft < i_gemm);
        assert!(a.contains("\"fock.solves\": 4"));
    }
}
