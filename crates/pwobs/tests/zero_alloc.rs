//! The disabled-recorder fast path must not allocate: instrumentation
//! is compiled into every hot kernel, so `cargo test` and production
//! runs with tracing off must pay only a relaxed atomic load per site.
//!
//! This binary intentionally holds a single test: a counting global
//! allocator cannot distinguish allocations made by concurrent tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_allocates_nothing() {
    // Settle the lazy env-var initialisation (reads `PWOBS`, which may
    // allocate) before measuring.
    pwobs::set_enabled(false);
    assert!(!pwobs::enabled());

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _span = pwobs::span("gemm.gemm");
        let _nested = pwobs::span("fft.transform_batch");
        pwobs::counter_add("fock.solves", i);
        pwobs::gauge_set("pool.peak_bytes", i as f64);
        pwobs::gauge_add("wire_s", 0.5);
        pwobs::if_enabled(|_| unreachable!("recorder is disabled"));
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled observability path allocated");
}
