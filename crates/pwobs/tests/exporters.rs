//! Exporter round-trips: the chrome-trace output must be valid JSON
//! with well-formed events, and the phase table must partition a
//! measured wall time.
//!
//! A minimal recursive-descent JSON parser lives here so the round-trip
//! check does not depend on external crates (the build environment has
//! no registry access).

use pwobs::export::{chrome_trace_json, phase_table, tracked_fraction, StepRecord, StepStream};
use pwobs::Recorder;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, bools, null)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { b: s.as_bytes(), i: 0 }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) {
        self.ws();
        assert_eq!(self.b.get(self.i), Some(&c), "expected {:?} at byte {}", c as char, self.i);
        self.i += 1;
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        *self.b.get(self.i).expect("unexpected end of JSON")
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Json {
        self.ws();
        assert_eq!(&self.b[self.i..self.i + s.len()], s.as_bytes());
        self.i += s.len();
        v
    }

    fn number(&mut self) -> Json {
        self.ws();
        let start = self.i;
        while self.i < self.b.len() && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text:?}")))
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return out;
                }
                b'\\' => {
                    self.i += 1;
                    match self.b[self.i] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5]).unwrap();
                            let code = u32::from_str_radix(hex, 16).unwrap();
                            out.push(char::from_u32(code).unwrap());
                            self.i += 4;
                        }
                        c => panic!("bad escape \\{}", c as char),
                    }
                    self.i += 1;
                }
                c => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let s = std::str::from_utf8(&self.b[self.i..]).unwrap();
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                    let _ = c;
                }
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(items);
                }
                c => panic!("expected , or ] got {:?}", c as char),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(map);
        }
        loop {
            self.ws();
            let key = self.string();
            self.expect(b':');
            map.insert(key, self.value());
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(map);
                }
                c => panic!("expected , or }} got {:?}", c as char),
            }
        }
    }
}

fn parse(s: &str) -> Json {
    let mut p = Parser::new(s);
    let v = p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing bytes after JSON document");
    v
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

fn sample_recorder() -> Recorder {
    let r = Recorder::new();
    // start_ns, totals in ns; tid 2 recorded before tid 1 to exercise
    // deterministic sorting.
    r.record_span("xch.fused_pair_solve", 600_000, 600_000, 1_000, 2);
    r.record_span("fft.transform_batch", 250_000, 250_000, 2_000, 1);
    r.record_span("gemm.overlap", 100_000, 100_000, 300_000, 1);
    r.record_span("step.ptim \"q\"\n", 1_000_000, 50_000, 0, 1);
    r.counter_add("fock.solves", 12);
    r.gauge_set("pool.peak_bytes", 4096.0);
    r
}

#[test]
fn chrome_trace_round_trips_through_a_json_parser() {
    let r = sample_recorder();
    let text = chrome_trace_json(&r);
    let doc = parse(&text);

    let Json::Obj(top) = doc else { panic!("top level must be an object") };
    let Json::Arr(events) = &top["traceEvents"] else { panic!("traceEvents must be an array") };
    assert_eq!(events.len(), 4);

    let mut names = Vec::new();
    for ev in events {
        let Json::Obj(e) = ev else { panic!("event must be an object") };
        assert_eq!(e["ph"], Json::Str("X".into()));
        assert_eq!(e["pid"], Json::Num(1.0));
        let Json::Num(ts) = e["ts"] else { panic!("ts numeric") };
        let Json::Num(dur) = e["dur"] else { panic!("dur numeric") };
        assert!(ts >= 0.0 && dur > 0.0);
        let Json::Str(name) = &e["name"] else { panic!("name string") };
        names.push(name.clone());
    }
    // Sorted by (tid, ts); the escaped name survives the round trip.
    assert_eq!(
        names,
        vec!["step.ptim \"q\"\n", "fft.transform_batch", "gemm.overlap", "xch.fused_pair_solve"]
    );

    let Json::Obj(other) = &top["otherData"] else { panic!("otherData object") };
    assert_eq!(other["fock.solves"], Json::Num(12.0));
    assert_eq!(other["pool.peak_bytes"], Json::Num(4096.0));
}

#[test]
fn phase_rows_partition_the_wall_time() {
    let r = sample_recorder();
    // Self times: xch 600µs + fft 250µs + gemm 100µs + step-self 50µs
    // = 1ms exactly; against a 1ms wall the core rows cover 95%.
    let total_s = 1e-3;
    let frac = tracked_fraction(&r, total_s);
    assert!((frac - 0.95).abs() < 1e-9, "tracked fraction {frac}");

    let table = phase_table(&r, total_s);
    // Shares printed for every populated row plus the untracked
    // remainder; the step row is visible but not part of the core four.
    assert!(table.contains("exchange"));
    assert!(table.contains("step glue"));
    assert!(table.contains("60.00%"), "exchange share:\n{table}");
    assert!(table.contains("25.00%"), "fft share:\n{table}");
    assert!(table.contains("untracked"));
}

#[test]
fn step_stream_lines_parse_back() {
    let mut stream = StepStream::new(Vec::new());
    for step in 0..3u64 {
        let rec = StepRecord::new(step)
            .f("wall_s", 0.125 * (step + 1) as f64)
            .u("scf_iters", 4 + step)
            .u("pool_peak_bytes", 1 << 20)
            .b("converged", true)
            .s("propagator", "ptim_ace");
        stream.emit(&rec).unwrap();
    }
    assert_eq!(stream.lines(), 3);
    let text = String::from_utf8(stream.into_inner()).unwrap();
    for (i, line) in text.lines().enumerate() {
        let Json::Obj(o) = parse(line) else { panic!("line must be an object") };
        assert_eq!(o["step"], Json::Num(i as f64));
        assert_eq!(o["converged"], Json::Bool(true));
        assert_eq!(o["propagator"], Json::Str("ptim_ace".into()));
        let Json::Num(w) = o["wall_s"] else { panic!("wall_s numeric") };
        assert!((w - 0.125 * (i + 1) as f64).abs() < 1e-12);
    }
}
