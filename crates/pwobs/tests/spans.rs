//! Span semantics against the *global* recorder: nesting/self-time
//! accounting and deterministic cross-thread aggregation.
//!
//! Tests in this binary share the process-wide recorder, so each takes
//! a serialization lock and resets the registry.

use std::sync::Mutex;
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn spin_for(d: Duration) {
    let t0 = std::time::Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[test]
fn nested_spans_split_self_and_child_time() {
    let _g = serial();
    pwobs::set_enabled(true);
    pwobs::reset();

    {
        let _outer = pwobs::span("step.outer");
        spin_for(Duration::from_millis(20));
        {
            let _inner = pwobs::span("gemm.inner");
            spin_for(Duration::from_millis(30));
        }
        {
            let _inner2 = pwobs::span("fft.inner");
            spin_for(Duration::from_millis(10));
        }
    }

    let rec = pwobs::global();
    let outer = rec.span_stat("step.outer").unwrap();
    let inner = rec.span_stat("gemm.inner").unwrap();
    let inner2 = rec.span_stat("fft.inner").unwrap();
    pwobs::set_enabled(false);

    assert_eq!(outer.calls, 1);
    assert_eq!(inner.calls, 1);
    // Leaves have self == total.
    assert_eq!(inner.self_ns, inner.total_ns);
    assert_eq!(inner2.self_ns, inner2.total_ns);
    // Outer total covers everything; its self time excludes *both*
    // sibling children exactly.
    assert!(outer.total_ns >= inner.total_ns + inner2.total_ns);
    assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns - inner2.total_ns);
    // Self times land in the right ballpark of the spins (generous
    // bounds: CI schedulers).
    assert!(outer.self_ns >= 15_000_000, "outer self {}", outer.self_ns);
    assert!(inner.self_ns >= 25_000_000, "inner self {}", inner.self_ns);
}

#[test]
fn cross_thread_aggregation_is_deterministic() {
    let _g = serial();
    pwobs::set_enabled(true);
    pwobs::reset();

    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    let _outer = pwobs::span("step.worker");
                    let _inner = pwobs::span("gemm.worker");
                    std::hint::black_box(0u64);
                }
            });
        }
    });

    let rec = pwobs::global();
    let outer = rec.span_stat("step.worker").unwrap();
    let inner = rec.span_stat("gemm.worker").unwrap();
    // Every span is aggregated exactly once regardless of interleaving.
    assert_eq!(outer.calls, (THREADS as u64) * PER_THREAD);
    assert_eq!(inner.calls, (THREADS as u64) * PER_THREAD);
    // Span stacks are per-thread: nesting on one thread never leaks
    // into another, so inner spans stay pure leaves.
    assert_eq!(inner.self_ns, inner.total_ns);

    // The timeline tags each event with a stable small thread id.
    let mut tids: Vec<u32> = rec.timeline().iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), THREADS, "one tid per worker thread");

    // Snapshot ordering is sorted by name: deterministic across runs.
    let names: Vec<&str> = rec.span_stats().iter().map(|(n, _)| *n).collect();
    assert_eq!(names, vec!["gemm.worker", "step.worker"]);
    pwobs::set_enabled(false);
}

#[test]
fn disabled_spans_record_nothing() {
    let _g = serial();
    pwobs::set_enabled(true);
    pwobs::reset();
    pwobs::set_enabled(false);
    {
        let _s = pwobs::span("gemm.ghost");
        pwobs::counter_add("ghost", 1);
        pwobs::gauge_set("ghost_g", 1.0);
    }
    let rec = pwobs::global();
    assert!(rec.span_stat("gemm.ghost").is_none());
    assert_eq!(rec.counter("ghost"), 0);
    assert_eq!(rec.gauge("ghost_g"), None);
    assert_eq!(rec.timeline_len(), 0);
}

#[test]
fn spans_spanning_an_enable_toggle_follow_open_state() {
    let _g = serial();
    pwobs::set_enabled(true);
    pwobs::reset();

    // Opened disabled, closed enabled: not recorded.
    pwobs::set_enabled(false);
    let ghost = pwobs::span("step.ghost");
    pwobs::set_enabled(true);
    drop(ghost);
    assert!(pwobs::global().span_stat("step.ghost").is_none());

    // Opened enabled, closed disabled: recorded (the guard owns its
    // measurement once started).
    let live = pwobs::span("step.live");
    pwobs::set_enabled(false);
    drop(live);
    assert_eq!(pwobs::global().span_stat("step.live").unwrap().calls, 1);
}
