//! The paper's measured anchor values and a model self-check.
//!
//! Everything the evaluation section reports numerically is collected
//! here as data, with a [`report`] that prices the same configurations
//! through the model and returns side-by-side rows. The `platform.rs`
//! constants were fitted against the subset marked `is_anchor`; the rest
//! are genuine predictions.

use crate::platform::Platform;
use crate::schedule::{step_time, Variant};
use crate::workload::Workload;

/// One paper-reported quantity and how to evaluate it in the model.
#[derive(Clone, Debug)]
pub struct Anchor {
    /// Human-readable label (figure/table reference).
    pub label: &'static str,
    /// Value the paper reports.
    pub paper: f64,
    /// Whether this value was used to fit the calibration constants.
    pub is_anchor: bool,
    /// Model evaluation.
    pub model: f64,
}

fn speedup(pf: &Platform, atoms: usize, nodes: usize, from: Variant, to: Variant) -> f64 {
    let w = Workload::silicon(atoms);
    step_time(pf, &w, nodes, from).total() / step_time(pf, &w, nodes, to).total()
}

/// Builds the full paper-vs-model comparison.
// The anchor ledger reads best as one push per paper claim.
#[allow(clippy::vec_init_then_push)]
pub fn report() -> Vec<Anchor> {
    let _s = pwobs::span("model.calibration_report");
    let arm = Platform::fugaku_arm();
    let gpu = Platform::gpu_a100();
    let mut rows = Vec::new();

    // Fig. 9 stage speedups (384 atoms; 240 ARM / 24 GPU nodes).
    rows.push(Anchor {
        label: "Fig9 ARM Diag speedup",
        paper: 12.86,
        is_anchor: true,
        model: speedup(&arm, 384, 240, Variant::Baseline, Variant::Diag),
    });
    rows.push(Anchor {
        label: "Fig9 GPU Diag speedup",
        paper: 7.57,
        is_anchor: true,
        model: speedup(&gpu, 384, 24, Variant::Baseline, Variant::Diag),
    });
    rows.push(Anchor {
        label: "Fig9 ARM ACE speedup",
        paper: 3.30,
        is_anchor: false,
        model: speedup(&arm, 384, 240, Variant::Diag, Variant::Ace),
    });
    rows.push(Anchor {
        label: "Fig9 GPU ACE speedup",
        paper: 3.60,
        is_anchor: false,
        model: speedup(&gpu, 384, 24, Variant::Diag, Variant::Ace),
    });
    rows.push(Anchor {
        label: "Fig9 ARM total speedup",
        paper: 55.15,
        is_anchor: false,
        model: speedup(&arm, 384, 240, Variant::Baseline, Variant::AceAsync),
    });
    rows.push(Anchor {
        label: "Fig9 GPU total speedup",
        paper: 41.44,
        is_anchor: false,
        model: speedup(&gpu, 384, 24, Variant::Baseline, Variant::AceAsync),
    });

    // Fig. 10 strong-scaling efficiencies.
    let eff = |pf: &Platform, atoms: usize, n0: usize, n1: usize| {
        let w = Workload::silicon(atoms);
        let t0 = step_time(pf, &w, n0, Variant::AceAsync).total();
        let t1 = step_time(pf, &w, n1, Variant::AceAsync).total();
        (t0 * n0 as f64) / (t1 * n1 as f64)
    };
    rows.push(Anchor {
        label: "Fig10 ARM efficiency @32x (768 atoms)",
        paper: 0.368,
        is_anchor: true,
        model: eff(&arm, 768, 15, 480),
    });
    rows.push(Anchor {
        label: "Fig10 GPU efficiency @16x (1536 atoms)",
        paper: 0.229,
        is_anchor: false,
        model: eff(&gpu, 1536, 12, 192),
    });

    // Fig. 11 absolute anchors.
    rows.push(Anchor {
        label: "Fig11 GPU 3072 atoms @192 nodes (s/step)",
        paper: 429.3,
        is_anchor: true,
        model: step_time(&gpu, &Workload::silicon(3072), 192, Variant::AceAsync).total(),
    });
    rows.push(Anchor {
        label: "Fig11 GPU 192 atoms @12 nodes (s/step)",
        paper: 11.40,
        is_anchor: false,
        model: step_time(&gpu, &Workload::silicon(192), 12, Variant::AceAsync).total(),
    });

    // Table I communication ratios (1536 atoms).
    for (v, paper_arm, paper_gpu) in [
        (Variant::Ace, 0.1892, 0.2572),
        (Variant::AceRing, 0.1273, 0.2113),
        (Variant::AceAsync, 0.1065, 0.1638),
    ] {
        rows.push(Anchor {
            label: match v {
                Variant::Ace => "TableI ARM comm ratio (ACE)",
                Variant::AceRing => "TableI ARM comm ratio (Ring)",
                _ => "TableI ARM comm ratio (Async)",
            },
            paper: paper_arm,
            // Only the ARM Bcast *magnitude* (67 s) informed the fit; the
            // ratio itself is a prediction.
            is_anchor: false,
            model: step_time(&arm, &Workload::silicon(1536), 960, v).comm_ratio(),
        });
        rows.push(Anchor {
            label: match v {
                Variant::Ace => "TableI GPU comm ratio (ACE)",
                Variant::AceRing => "TableI GPU comm ratio (Ring)",
                _ => "TableI GPU comm ratio (Async)",
            },
            paper: paper_gpu,
            is_anchor: false,
            model: step_time(&gpu, &Workload::silicon(1536), 96, v).comm_ratio(),
        });
    }
    rows
}

/// Worst relative deviation across all (anchor + prediction) rows.
pub fn worst_relative_error() -> f64 {
    report()
        .iter()
        .map(|a| ((a.model - a.paper) / a.paper).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_within_tight_band() {
        // The fitted anchors must sit close to the paper's values —
        // otherwise the calibration constants have drifted.
        for a in report().iter().filter(|a| a.is_anchor) {
            let rel = ((a.model - a.paper) / a.paper).abs();
            assert!(rel < 0.20, "{}: paper {} vs model {} ({:.0}% off)",
                a.label, a.paper, a.model, rel * 100.0);
        }
    }

    #[test]
    fn predictions_within_reproduction_band() {
        // Non-fitted quantities are predictions; the reproduction claim
        // is shape fidelity — accept up to ~2.5x on any single number.
        for a in report().iter().filter(|a| !a.is_anchor) {
            let ratio = a.model / a.paper;
            assert!(
                (0.3..3.0).contains(&ratio),
                "{}: paper {} vs model {} (ratio {ratio:.2})",
                a.label,
                a.paper,
                a.model
            );
        }
    }

    #[test]
    fn report_is_comprehensive() {
        let r = report();
        assert!(r.len() >= 16, "expected every evaluation quantity listed, got {}", r.len());
        assert!(r.iter().any(|a| a.is_anchor));
        assert!(r.iter().any(|a| !a.is_anchor));
        assert!(worst_relative_error().is_finite());
    }
}
