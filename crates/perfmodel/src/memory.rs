//! Per-rank memory-footprint model (Sec. IV-B3 and the Fig. 11
//! capacity discussion).
//!
//! Scalable terms (wavefunction blocks, Anderson history) shrink with the
//! rank count; the square matrices (σ, Φ\*Φ, Φ\*HΦ, rotations) do not —
//! they are the reason the paper moves them into MPI SHM windows, cutting
//! their per-rank share to `1/ranks_per_node`.

use crate::platform::Platform;
use crate::workload::Workload;

/// Itemized per-rank memory (bytes).
#[derive(Clone, Copy, Debug)]
pub struct MemoryBreakdown {
    /// Live wavefunction blocks (Φn, Φn+1, midpoint, HΦ, natural
    /// orbitals, W, ξ, real-space copies...).
    pub wavefunctions: f64,
    /// Anderson mixing history (x and residual stacks, depth 20).
    pub anderson: f64,
    /// Non-scalable square matrices (σ, overlaps, rotations).
    pub square_matrices: f64,
    /// Grid-resident fields (density, potentials, FFT work).
    pub grids: f64,
}

impl MemoryBreakdown {
    /// Total bytes per rank.
    pub fn total(&self) -> f64 {
        self.wavefunctions + self.anderson + self.square_matrices + self.grids
    }
}

/// Number of simultaneously live wavefunction block copies in the PT-IM
/// ACE implementation (counted from the `ptim` crate's data flow).
pub const WF_COPIES: f64 = 10.0;
/// Anderson history depth × 2 stacks (x and residuals).
pub const ANDERSON_COPIES: f64 = 40.0;
/// Square N×N matrices kept live (σ_n, σ_{n+1}, S, Hm, Q, mixing).
pub const SQUARE_MATRICES: f64 = 6.0;
/// Grid-resident real fields (ρ, V_loc, V_HXC, V_ext, kernel, FFT work).
pub const GRID_FIELDS: f64 = 8.0;

/// Computes the per-rank footprint on `nodes` nodes.
pub fn per_rank_memory(
    pf: &Platform,
    w: &Workload,
    nodes: usize,
    use_shm: bool,
) -> MemoryBreakdown {
    let p = (nodes * pf.ranks_per_node) as f64;
    let n = w.n_orbitals as f64;
    let nb = (n / p).max(1.0);
    let band = w.band_bytes();
    let sq = 16.0 * n * n * SQUARE_MATRICES;
    MemoryBreakdown {
        wavefunctions: WF_COPIES * nb * band,
        anderson: ANDERSON_COPIES * nb * band,
        square_matrices: if use_shm { sq / pf.ranks_per_node as f64 } else { sq },
        grids: GRID_FIELDS * 8.0 * w.ng,
    }
}

/// Largest silicon system (atoms, multiple of 48) that fits in the
/// per-rank memory on `nodes` nodes.
pub fn max_atoms(pf: &Platform, nodes: usize, use_shm: bool) -> usize {
    let mut best = 0;
    let mut atoms = 48;
    while atoms <= 24_576 {
        let w = Workload::silicon(atoms);
        let m = per_rank_memory(pf, &w, nodes, use_shm);
        if m.total() <= pf.mem_per_rank {
            best = atoms;
        }
        atoms += 48;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shm_divides_square_matrices_only() {
        let pf = Platform::fugaku_arm();
        let w = Workload::silicon(768);
        let no = per_rank_memory(&pf, &w, 168, false);
        let yes = per_rank_memory(&pf, &w, 168, true);
        assert!((no.square_matrices / yes.square_matrices - 4.0).abs() < 1e-12);
        assert_eq!(no.wavefunctions, yes.wavefunctions);
        assert!(yes.total() < no.total());
    }

    #[test]
    fn square_matrices_dominate_at_high_rank_counts() {
        // The paper's 768-atom observation: beyond ~168 processes the
        // non-scalable matrices stop being negligible.
        let pf = Platform::fugaku_arm();
        let w = Workload::silicon(768);
        let few = per_rank_memory(&pf, &w, 10, false);
        let many = per_rank_memory(&pf, &w, 480, false);
        let share_few = few.square_matrices / few.total();
        let share_many = many.square_matrices / many.total();
        assert!(share_many > 2.0 * share_few, "{share_few} -> {share_many}");
    }

    #[test]
    fn shm_extends_reachable_system_size() {
        let pf = Platform::fugaku_arm();
        let with = max_atoms(&pf, 960, true);
        let without = max_atoms(&pf, 960, false);
        assert!(with >= without);
        assert!(with >= 1152, "SHM should reach ≥1152 atoms on 960 nodes, got {with}");
    }

    #[test]
    fn paper_capacity_anchors() {
        // Fugaku: 1536 atoms on 960 nodes fits (paper ran it), and the
        // same machine cannot hold arbitrarily large systems.
        let arm = Platform::fugaku_arm();
        let w1536 = Workload::silicon(1536);
        let m = per_rank_memory(&arm, &w1536, 960, true);
        assert!(m.total() <= arm.mem_per_rank, "1536 atoms must fit: {} GB", m.total() / 1e9);
        assert!(max_atoms(&arm, 960, true) < 24_576);

        // GPU: 3072 atoms on 192 nodes fits, 6144 does not (Sec. VIII-C).
        let gpu = Platform::gpu_a100();
        let m3072 = per_rank_memory(&gpu, &Workload::silicon(3072), 192, true);
        assert!(m3072.total() <= gpu.mem_per_rank, "{} GB", m3072.total() / 1e9);
        let m6144 = per_rank_memory(&gpu, &Workload::silicon(6144), 192, true);
        assert!(
            m6144.total() > gpu.mem_per_rank,
            "6144 atoms should exceed 40 GB/rank: {} GB",
            m6144.total() / 1e9
        );
    }
}
