//! Workload descriptions: the silicon systems of Sec. VI.

/// A silicon rt-TDDFT workload at the paper's settings (Ecut = 10 Ha,
/// HSE06, 8000 K, Δt = 50 as).
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Atom count.
    pub n_atoms: usize,
    /// Orbitals `N = 2·n_atoms + extra` (paper: extra = n_atoms/2 for
    /// performance tests).
    pub n_orbitals: usize,
    /// Wavefunction grid points Ng.
    pub ng: f64,
}

impl Workload {
    /// The paper's convention for performance tests: `extra = atoms/2`,
    /// grid scaled from the quoted 1536-atom anchor
    /// (60×90×120 = 648 000 points at Ecut = 10 Ha).
    pub fn silicon(n_atoms: usize) -> Workload {
        let n_orbitals = 2 * n_atoms + n_atoms / 2;
        let ng = 648_000.0 * n_atoms as f64 / 1536.0;
        Workload { n_atoms, n_orbitals, ng }
    }

    /// Bytes of one full wavefunction band (complex double on Ng points).
    pub fn band_bytes(&self) -> f64 {
        16.0 * self.ng
    }

    /// Average SCF iterations per PT-IM step without ACE (paper: 25).
    pub const SCF_DENSE: usize = 25;
    /// Outer iterations with ACE (paper: 5).
    pub const ACE_OUTER: usize = 5;
    /// Inner iterations per outer with ACE (paper: 13).
    pub const ACE_INNER: usize = 13;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_1536() {
        let w = Workload::silicon(1536);
        assert_eq!(w.n_orbitals, 3840); // 1536*2 + 768 (Sec. VI)
        assert!((w.ng - 648_000.0).abs() < 1.0);
    }

    #[test]
    fn scaling_with_atoms() {
        let w1 = Workload::silicon(384);
        let w2 = Workload::silicon(768);
        assert_eq!(w1.n_orbitals, 960);
        assert_eq!(w2.n_orbitals, 1920);
        assert!((w2.ng / w1.ng - 2.0).abs() < 1e-12);
        assert_eq!(Workload::silicon(3072).n_orbitals, 7680);
    }

    #[test]
    fn iteration_constants_match_paper() {
        assert_eq!(Workload::SCF_DENSE, 25);
        assert_eq!(Workload::ACE_OUTER * Workload::ACE_INNER, 65);
    }
}
