//! Strong- and weak-scaling sweeps (Figs. 10 and 11).

use crate::platform::Platform;
use crate::schedule::{step_time, StepBreakdown, Variant};
use crate::workload::Workload;

/// One point of a scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Node count.
    pub nodes: usize,
    /// Atom count.
    pub n_atoms: usize,
    /// Per-step wall time (s).
    pub time: f64,
    /// Full breakdown behind the number.
    pub breakdown: StepBreakdown,
}

/// Strong scaling: fixed workload, growing node counts
/// (Fig. 10: 768 atoms on ARM, 1536 on GPU, fully optimized code).
pub fn strong_scaling(pf: &Platform, n_atoms: usize, node_counts: &[usize]) -> Vec<ScalePoint> {
    let _s = pwobs::span("model.strong_scaling");
    let w = Workload::silicon(n_atoms);
    node_counts
        .iter()
        .map(|&nodes| ScalePoint {
            nodes,
            n_atoms,
            time: step_time(pf, &w, nodes, Variant::AceAsync).total(),
            breakdown: step_time(pf, &w, nodes, Variant::AceAsync),
        })
        .collect()
}

/// Parallel efficiency of a strong-scaling series relative to its first
/// point: `eff = t0·n0 / (t·n)`.
pub fn parallel_efficiency(series: &[ScalePoint]) -> Vec<f64> {
    assert!(!series.is_empty());
    let base = series[0].time * series[0].nodes as f64;
    series.iter().map(|p| base / (p.time * p.nodes as f64)).collect()
}

/// Weak scaling: workload grows with machine size
/// (Fig. 11: nodes = orbitals/4 on ARM, orbitals/40 on GPU).
pub fn weak_scaling(
    pf: &Platform,
    atom_counts: &[usize],
    nodes_for: impl Fn(usize) -> usize,
) -> Vec<ScalePoint> {
    atom_counts
        .iter()
        .map(|&n_atoms| {
            let w = Workload::silicon(n_atoms);
            let nodes = nodes_for(w.n_orbitals).max(1);
            let breakdown = step_time(pf, &w, nodes, Variant::AceAsync);
            ScalePoint { nodes, n_atoms, time: breakdown.total(), breakdown }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_scaling_monotone_with_diminishing_returns() {
        // Fig. 10(a): 768 atoms, 15..480 ARM nodes.
        let pf = Platform::fugaku_arm();
        let series = strong_scaling(&pf, 768, &[15, 30, 60, 120, 240, 480]);
        for pair in series.windows(2) {
            assert!(pair[1].time < pair[0].time, "time must fall with nodes");
        }
        let eff = parallel_efficiency(&series);
        // Efficiency decays but stays meaningful (paper: 36.8% at 32×).
        assert!(eff[0] > 0.99);
        let last = *eff.last().unwrap();
        assert!(last < 0.9, "efficiency should degrade: {last}");
        assert!(last > 0.05, "efficiency shouldn't collapse: {last}");
    }

    #[test]
    fn strong_scaling_efficiency_band_matches_paper() {
        // Paper: 36.8% (ARM, 32×) and 22.9% (GPU, 16×). Accept a band.
        let arm = strong_scaling(&Platform::fugaku_arm(), 768, &[15, 480]);
        let arm_eff = parallel_efficiency(&arm)[1];
        assert!(arm_eff > 0.10 && arm_eff < 0.85, "ARM eff {arm_eff}");

        let gpu = strong_scaling(&Platform::gpu_a100(), 1536, &[12, 192]);
        let gpu_eff = parallel_efficiency(&gpu)[1];
        assert!(gpu_eff > 0.05 && gpu_eff < 0.75, "GPU eff {gpu_eff}");

        // ARM holds efficiency better (bandwidth-friendlier balance +
        // torus) — the paper's Sec. VIII-B conclusion.
        assert!(arm_eff > gpu_eff, "ARM {arm_eff} vs GPU {gpu_eff}");
    }

    #[test]
    fn weak_scaling_grows_superlinearly() {
        // Fig. 11: doubling the system more than doubles per-step time
        // (ideal line is O(N²) per step at fixed per-node orbital share).
        let pf = Platform::gpu_a100();
        let series = weak_scaling(&pf, &[48, 96, 192, 384, 768, 1536, 3072], |orb| orb / 40);
        for pair in series.windows(2) {
            let ratio = pair[1].time / pair[0].time;
            assert!(ratio > 1.3, "weak-scaling step ratio {ratio}");
            assert!(ratio < 6.0, "ratio should stay near the O(N²) ideal: {ratio}");
        }
        // Larger systems approach the theoretical 4x per doubling.
        let last_ratio = series[6].time / series[5].time;
        assert!(last_ratio > 1.3, "late ratio {last_ratio}");
    }

    #[test]
    fn fock_dominates_at_scale() {
        // Paper Sec. VIII-C: VxΦ eventually dominates the step.
        let pf = Platform::gpu_a100();
        let w = Workload::silicon(3072);
        let b = step_time(&pf, &w, 192, Variant::AceAsync);
        let fock_share = b.fock / b.total();
        assert!(fock_share > 0.3, "Fock share at 3072 atoms: {fock_share}");
    }
}
