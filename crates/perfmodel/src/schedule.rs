//! Per-step cost schedules for each optimization stage of Fig. 9.
//!
//! The schedule walks the *same* algorithm structure the real code
//! executes (the serial `ptim` crate and its distributed counterpart,
//! with the rotation/overlap operations routed through the grid-point
//! layout exactly as PWDFT does, Fig. 1) and prices every kernel with the
//! platform roofline and every message with the analytic communication
//! formulas. Variants are cumulative, matching the paper's step-by-step
//! bars: `Baseline → +Diag → +ACE → +Ring → +Async`.
//!
//! Wavefunctions travel as **compact G-sphere coefficients** (the cutoff
//! sphere holds ~π/48 of the FFT cube), which is what makes the exchange
//! volumes match the paper's Table I magnitudes.

use crate::comm::{
    allreduce_time, alltoallv_time, bcast_time, hier_allreduce_time, hier_alltoallv_time,
    hier_ring_overlap_time, hier_ring_time, ring_time,
};
use crate::platform::Platform;
use crate::workload::Workload;

/// Fraction of FFT-grid points inside the kinetic cutoff sphere
/// (sphere of radius Gmax inside the 4Gmax-sided product cube: π/48).
pub const WIRE_FRACTION: f64 = std::f64::consts::PI / 48.0;

/// Fraction of nonblocking transfer time that stays visible in MPI_Wait
/// even when compute could nominally hide it (async progress runs on the
/// main thread; Table I measures 49–67% visible on the two platforms).
pub const WAIT_VISIBLE_FRACTION: f64 = 0.55;

/// Optimization stage (cumulative, as in Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// PT-IM with the Alg. 2 triple-loop Fock operator, Bcast exchange.
    Baseline,
    /// + occupation-matrix diagonalization (Sec. IV-A1).
    Diag,
    /// + ACE double loop (Sec. IV-A2).
    Ace,
    /// + ring point-to-point exchange (Sec. IV-B1).
    AceRing,
    /// + asynchronous ring overlap (Sec. IV-B2).
    AceAsync,
    /// + ring-pipelined overlapped exchange with test-driven progress
    ///   (the hierarchical 2-D subsystem's `RingOverlap` strategy): the
    ///   async-progress visibility floor disappears, leaving only the
    ///   excess of each transfer over its covering Poisson compute.
    AceOverlap,
}

impl Variant {
    /// All stages in Fig. 9 order (the overlapped ring appended).
    pub const ALL: [Variant; 6] = [
        Variant::Baseline,
        Variant::Diag,
        Variant::Ace,
        Variant::AceRing,
        Variant::AceAsync,
        Variant::AceOverlap,
    ];

    /// Label used in harness output.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "BL",
            Variant::Diag => "Diag",
            Variant::Ace => "ACE",
            Variant::AceRing => "Ring",
            Variant::AceAsync => "Async",
            Variant::AceOverlap => "Ovl",
        }
    }
}

/// Communication time split by MPI category (Table I columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct CommBreakdown {
    /// `MPI_Bcast` time (s).
    pub bcast: f64,
    /// `MPI_Sendrecv` (ring) time.
    pub sendrecv: f64,
    /// `MPI_Wait` (async ring) time.
    pub wait: f64,
    /// `MPI_Allreduce` time.
    pub allreduce: f64,
    /// `MPI_Alltoallv` (band↔grid transpose) time.
    pub alltoallv: f64,
    /// `MPI_Allgatherv` time.
    pub allgatherv: f64,
}

impl CommBreakdown {
    /// Total communication time.
    pub fn total(&self) -> f64 {
        self.bcast + self.sendrecv + self.wait + self.allreduce + self.alltoallv + self.allgatherv
    }
}

/// Full per-step time breakdown (seconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepBreakdown {
    /// Fock exchange compute (band materialization + Poisson solves).
    pub fock: f64,
    /// Density evaluation compute.
    pub density: f64,
    /// σ diagonalization + basis rotations (grid-layout GEMMs).
    pub rotation: f64,
    /// ACE inner-loop applications (GEMMs) + ACE construction.
    pub ace_inner: f64,
    /// Overlap-matrix compute (Φ*Φ, Φ*HΦ partial GEMMs).
    pub overlaps: f64,
    /// Anderson mixing traffic.
    pub anderson: f64,
    /// Local H application (kinetic + Vloc FFT work) and orthonormalization.
    pub other: f64,
    /// Communication by category.
    pub comm: CommBreakdown,
    /// Number of full Fock-exchange evaluations in the step.
    pub n_vx: usize,
}

impl StepBreakdown {
    /// Total wall time per step.
    pub fn total(&self) -> f64 {
        self.fock
            + self.density
            + self.rotation
            + self.ace_inner
            + self.overlaps
            + self.anderson
            + self.other
            + self.comm.total()
    }

    /// Communication fraction of the step.
    pub fn comm_ratio(&self) -> f64 {
        self.comm.total() / self.total()
    }
}

/// FFT cost on an Ng-point grid: `5·Ng·log2 Ng` flops; byte traffic
/// modeled as three read+write streams (pass-fused implementation).
fn fft_cost(ng: f64) -> (f64, f64) {
    (5.0 * ng * ng.log2(), 6.0 * 16.0 * ng)
}

/// Element-wise grid pass over `arrays` complex arrays.
fn pass_cost(ng: f64, arrays: f64) -> (f64, f64) {
    (6.0 * ng, arrays * 16.0 * ng)
}

/// Computes the per-step breakdown for a variant on `nodes` nodes.
pub fn step_time(pf: &Platform, w: &Workload, nodes: usize, variant: Variant) -> StepBreakdown {
    let p = nodes * pf.ranks_per_node;
    let n = w.n_orbitals as f64;
    let nb = (n / p as f64).max(1.0);
    let ng = w.ng;
    // Compact sphere representation on the wire and in G-space GEMMs.
    let npw = WIRE_FRACTION * ng;
    let wire_block = 16.0 * npw * nb;
    let mut b = StepBreakdown::default();

    // -- reusable kernel prices ------------------------------------------
    let (fft_f, fft_b) = fft_cost(ng);
    let t_fft = pf.kernel_time(fft_f, fft_b);
    let (p3_f, p3_b) = pass_cost(ng, 3.0);
    let t_pass3 = pf.kernel_time(p3_f, p3_b);

    // One diagonalized Fock application, per rank:
    //  - materialize all N received source bands to real space (N FFTs),
    //  - N×nb pair Poisson solves (2 FFTs + 3 grid passes each).
    let pairs_diag = n * nb;
    let t_vx_materialize = n * t_fft;
    let t_vx_pairs = pairs_diag * (2.0 * t_fft + 3.0 * t_pass3);
    let t_vx_diag = t_vx_materialize + t_vx_pairs;
    // Baseline (no diagonalization): same Poisson solves plus the
    // σ_ik-weighted triple-loop accumulation over all i (N²×nb fused
    // passes, calibrated by BASELINE_TRIPLE_FACTOR).
    let t_vx_baseline = t_vx_diag + n * n * nb * pf.triple_pass_eff * t_pass3;

    // Density: diagonalized = nb FFTs + nb accumulate passes;
    // baseline adds nb×N pair passes.
    let t_density_diag = nb * (t_fft + t_pass3);
    let t_density_baseline = t_density_diag + nb * n * t_pass3;

    // σ diagonalization: distributed (ScaLAPACK-style) solve.
    let t_eigh = pf.kernel_time(10.0 * n * n * n / p as f64, 16.0 * n * n);

    // Grid-layout subspace operations (Fig. 1 right): rotations and
    // overlaps are local GEMMs over the rank's npw/p coefficient rows,
    // bracketed by alltoallv transposes.
    let rows = npw / p as f64;
    let t_rotation_gemm = pf.kernel_time(8.0 * n * n * rows, 16.0 * (2.0 * n * rows + n * n));
    let t_overlap_gemm = pf.kernel_time(8.0 * n * n * rows, 16.0 * (2.0 * n * rows + n * n));
    let t_transpose = alltoallv_time(pf, p, wire_block);
    let t_overlap_ar = allreduce_time(pf, p, 16.0 * n * n);

    // Anderson mixing: history streams over the local bands (sphere rep).
    let t_anderson = pf.kernel_time(0.0, 2.0 * 20.0 * 16.0 * nb * npw);

    // Local H (kinetic + local potential): per band 2 FFTs + 2 passes.
    let t_local_h = nb * (2.0 * t_fft + 2.0 * pf.kernel_time(p3_f, 2.0 * 16.0 * ng));

    // ACE application (inner loop): two thin GEMMs against ξ in G-sphere
    // representation.
    let t_ace_apply = pf.kernel_time(2.0 * 8.0 * n * nb * npw, 16.0 * (2.0 * n * rows + 2.0 * nb * npw));
    // ACE build: distributed Cholesky + ξ rotation.
    let t_ace_build = pf.kernel_time(8.0 * n * n * n / p as f64, 16.0 * n * n) + t_rotation_gemm;

    // Wavefunction exchange for one Vx: every rank ingests all N bands as
    // compact coefficients.
    let t_exch_bcast = (0..p).map(|_| bcast_time(pf, p, wire_block)).sum::<f64>();
    let t_exch_ring = ring_time(pf, p, wire_block);

    // Per-SCF shared work (both loop styles): density + overlap pair +
    // rotations + transposes + reductions + Anderson + local H.
    let add_common_scf = |b: &mut StepBreakdown, iters: f64, diagonalized: bool| {
        b.density += iters * if diagonalized { t_density_diag } else { t_density_baseline };
        b.overlaps += iters * 2.0 * t_overlap_gemm;
        b.anderson += iters * t_anderson;
        b.other += iters * t_local_h;
        b.comm.alltoallv += iters * 4.0 * t_transpose;
        b.comm.allreduce += iters * (2.0 * t_overlap_ar + allreduce_time(pf, p, 8.0 * ng));
        if diagonalized {
            b.rotation += iters * (t_eigh + t_rotation_gemm);
        }
    };

    match variant {
        Variant::Baseline | Variant::Diag => {
            let n_scf = Workload::SCF_DENSE as f64;
            b.n_vx = Workload::SCF_DENSE;
            let diag = variant == Variant::Diag;
            b.fock = n_scf * if diag { t_vx_diag } else { t_vx_baseline };
            add_common_scf(&mut b, n_scf, diag);
            b.comm.bcast = n_scf * t_exch_bcast;
            b.comm.allgatherv = crate::comm::allgatherv_time(pf, p, 16.0 * n * nb);
        }
        Variant::Ace | Variant::AceRing | Variant::AceAsync | Variant::AceOverlap => {
            let outer = Workload::ACE_OUTER as f64;
            let inner_total = (Workload::ACE_OUTER * Workload::ACE_INNER) as f64;
            b.n_vx = Workload::ACE_OUTER;
            b.fock = outer * t_vx_diag;
            b.ace_inner = inner_total * t_ace_apply + outer * t_ace_build;
            add_common_scf(&mut b, inner_total, true);
            b.comm.allgatherv = crate::comm::allgatherv_time(pf, p, 16.0 * n * nb);
            match variant {
                Variant::Ace => {
                    b.comm.bcast = outer * t_exch_bcast;
                }
                Variant::AceRing => {
                    b.comm.sendrecv = outer * t_exch_ring;
                }
                Variant::AceAsync => {
                    // Per ring step the next block's transfer overlaps the
                    // current block's Poisson work; only the excess is
                    // visible as MPI_Wait.
                    let steps = (p.max(2) - 1) as f64;
                    let per_step_comm = t_exch_ring / steps;
                    let per_step_comp = t_vx_pairs / p as f64;
                    let wait = (per_step_comm - per_step_comp)
                        .max(WAIT_VISIBLE_FRACTION * per_step_comm)
                        * steps;
                    b.comm.wait = outer * wait;
                }
                Variant::AceOverlap => {
                    // Ring-pipelined exchange with MPI_Test progress
                    // probes between pair tiles: the async-progress
                    // visibility floor (WAIT_VISIBLE_FRACTION) is gone;
                    // the visible wait is exactly the closed-form
                    // excess of crate::comm::ring_overlap_time.
                    let steps = (p.max(2) - 1) as f64;
                    let per_step_comm = t_exch_ring / steps;
                    let per_step_comp = t_vx_pairs / p as f64;
                    b.comm.wait =
                        outer * (per_step_comm - per_step_comp).max(0.0) * steps;
                }
                _ => unreachable!(),
            }
        }
    }

    // Device underutilization at small per-rank batches (Sec. VIII-B):
    // all compute streams slow down by the batch-saturation factor.
    let u = pf.batch_efficiency(nb);
    b.fock /= u;
    b.density /= u;
    b.rotation /= u;
    b.ace_inner /= u;
    b.overlaps /= u;
    b.anderson /= u;
    b.other /= u;
    b
}

/// Shape of one *simulated* distributed PT-IM step — the configuration
/// the scaling harness drives through `ptim::distributed::dist_ptim_step`
/// on the mpisim virtual clock.
#[derive(Clone, Copy, Debug)]
pub struct DistStepShape {
    /// Total ranks.
    pub p: usize,
    /// Total bands N.
    pub n_bands: usize,
    /// FFT grid points.
    pub ng: usize,
    /// Modeled compute seconds charged per exchange pair solve.
    pub solve_cost_s: f64,
    /// SCF corrector iterations (`max_scf`); the predictor adds one more
    /// fixed-point evaluation.
    pub max_scf: usize,
}

/// Closed-form prediction of the virtual-clock time of one simulated
/// `dist_ptim_step` (RingOverlap exchange, SHM-backed σ) at `shape`.
///
/// This models exactly the charges the simulator's clock sees — wire
/// time under the two-level collective forms plus the modeled per-solve
/// exchange compute — **not** the physical kernel workload of
/// [`step_time`] (the simulated step's host-side math costs no virtual
/// time). Per fixed-point evaluation the step runs: two ring rotations
/// (natural orbitals + subspace correction), one ρ all-reduce, the
/// overlapped exchange ring, and two overlap builds (four band→grid
/// transposes + two N×N all-reduces); the final Löwdin pass adds one
/// more overlap build and rotation. All rings are node-contiguous, so
/// their dependency chains mix intra- and inter-node edges
/// ([`crate::comm::ring_edge_time`]).
pub fn dist_step_sim_time(pf: &Platform, shape: &DistStepShape) -> f64 {
    let DistStepShape { p, n_bands, ng, solve_cost_s, max_scf } = *shape;
    let n_updates = (max_scf + 1) as f64;
    let n = n_bands as f64;
    let nb_max = n_bands.div_ceil(p) as f64;
    // Average circulating ring block (bands travel as full complex
    // grids, 16 bytes per point; blocks are empty on band-less ranks).
    let block_bytes = 16.0 * n * ng as f64 / p as f64;

    // Subspace rotations: 2 per evaluation + the final Löwdin rotation.
    let rotations = 2.0 * n_updates + 1.0;
    let t_rotate = hier_ring_time(pf, p, block_bytes);

    // Overlapped exchange: every evaluation circulates the natural
    // orbitals once; the busiest rank solves n_src × nb_max pairs spread
    // over the p ring phases.
    let compute_per_block = n * nb_max * solve_cost_s / p as f64;
    let t_fock = hier_ring_overlap_time(pf, p, block_bytes, compute_per_block);

    // Overlap builds: 2 per evaluation (S, Hm) + the final Löwdin S.
    // Each transposes both operand blocks (band→grid alltoallv of the
    // busiest rank's local bands) and reduces one N×N partial product.
    let overlaps = 2.0 * n_updates + 1.0;
    let t_transpose = hier_alltoallv_time(pf, p, 16.0 * nb_max * ng as f64);
    let t_mat_reduce = hier_allreduce_time(pf, p, 16.0 * n * n);

    // Density: one real-grid all-reduce per evaluation.
    let t_rho = hier_allreduce_time(pf, p, 8.0 * ng as f64);

    rotations * t_rotate
        + n_updates * t_fock
        + overlaps * (2.0 * t_transpose + t_mat_reduce)
        + n_updates * t_rho
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdowns(pf: &Platform, atoms: usize, nodes: usize) -> Vec<(Variant, StepBreakdown)> {
        let w = Workload::silicon(atoms);
        Variant::ALL.iter().map(|&v| (v, step_time(pf, &w, nodes, v))).collect()
    }

    #[test]
    fn fig9_ordering_arm() {
        // Each cumulative optimization must reduce the step time
        // (384 atoms on 240 ARM nodes, the Fig. 9 configuration).
        let pf = Platform::fugaku_arm();
        let bs = breakdowns(&pf, 384, 240);
        for pair in bs.windows(2) {
            assert!(
                pair[0].1.total() > pair[1].1.total(),
                "{:?} ({}) should exceed {:?} ({})",
                pair[0].0,
                pair[0].1.total(),
                pair[1].0,
                pair[1].1.total()
            );
        }
    }

    #[test]
    fn fig9_ordering_gpu() {
        let pf = Platform::gpu_a100();
        let bs = breakdowns(&pf, 384, 24);
        for pair in bs.windows(2) {
            assert!(pair[0].1.total() > pair[1].1.total(), "{:?} vs {:?}", pair[0].0, pair[1].0);
        }
    }

    #[test]
    fn diag_speedup_order_of_magnitude() {
        // Paper: 12.86× (ARM), 7.57× (GPU) for the 384-atom system.
        for (pf, nodes) in [(Platform::fugaku_arm(), 240), (Platform::gpu_a100(), 24)] {
            let w = Workload::silicon(384);
            let bl = step_time(&pf, &w, nodes, Variant::Baseline).total();
            let dg = step_time(&pf, &w, nodes, Variant::Diag).total();
            let s = bl / dg;
            assert!(s > 4.0 && s < 40.0, "{}: Diag speedup {s}", pf.name);
        }
    }

    #[test]
    fn total_speedup_matches_paper_band() {
        // Paper: 55.15× (ARM) / 41.44× (GPU) end-to-end.
        for (pf, nodes, lo, hi) in [
            (Platform::fugaku_arm(), 240, 15.0, 200.0),
            (Platform::gpu_a100(), 24, 15.0, 200.0),
        ] {
            let w = Workload::silicon(384);
            let bl = step_time(&pf, &w, nodes, Variant::Baseline).total();
            let best = step_time(&pf, &w, nodes, Variant::AceAsync).total();
            let s = bl / best;
            assert!(s > lo && s < hi, "{}: total speedup {s}", pf.name);
        }
    }

    #[test]
    fn ace_cuts_fock_count_to_five() {
        let pf = Platform::gpu_a100();
        let w = Workload::silicon(384);
        let dense = step_time(&pf, &w, 24, Variant::Diag);
        let ace = step_time(&pf, &w, 24, Variant::Ace);
        assert_eq!(dense.n_vx, 25);
        assert_eq!(ace.n_vx, 5);
        assert!(ace.fock < dense.fock / 4.0);
    }

    #[test]
    fn ring_reduces_bcast_comm() {
        let pf = Platform::fugaku_arm();
        let w = Workload::silicon(1536);
        let ace = step_time(&pf, &w, 960, Variant::Ace);
        let ring = step_time(&pf, &w, 960, Variant::AceRing);
        assert!(ace.comm.bcast > 0.0);
        assert_eq!(ring.comm.bcast, 0.0);
        assert!(
            ring.comm.total() < ace.comm.total(),
            "{} vs {}",
            ring.comm.total(),
            ace.comm.total()
        );
    }

    #[test]
    fn async_wait_below_ring_sendrecv() {
        // Table I: Wait(async) < Sendrecv(ring) on both platforms.
        for (pf, nodes) in [(Platform::fugaku_arm(), 960), (Platform::gpu_a100(), 96)] {
            let w = Workload::silicon(1536);
            let ring = step_time(&pf, &w, nodes, Variant::AceRing);
            let asnc = step_time(&pf, &w, nodes, Variant::AceAsync);
            assert!(
                asnc.comm.wait < ring.comm.sendrecv,
                "{}: wait {} vs ring sendrecv {}",
                pf.name,
                asnc.comm.wait,
                ring.comm.sendrecv
            );
        }
    }

    #[test]
    fn overlap_wait_never_exceeds_async_wait() {
        // Removing the visibility floor can only help: on every Table-I
        // configuration the overlapped ring's Wait is ≤ the async ring's,
        // and compute/comm stay untouched.
        for (pf, nodes, atoms) in [
            (Platform::fugaku_arm(), 960, 1536),
            (Platform::gpu_a100(), 96, 1536),
            (Platform::fugaku_arm(), 240, 384),
            (Platform::gpu_a100(), 24, 384),
        ] {
            let w = Workload::silicon(atoms);
            let asnc = step_time(&pf, &w, nodes, Variant::AceAsync);
            let ovl = step_time(&pf, &w, nodes, Variant::AceOverlap);
            assert!(
                ovl.comm.wait <= asnc.comm.wait + 1e-15,
                "{}: overlap wait {} vs async wait {}",
                pf.name,
                ovl.comm.wait,
                asnc.comm.wait
            );
            assert!((ovl.fock - asnc.fock).abs() < 1e-12);
            assert!((ovl.comm.alltoallv - asnc.comm.alltoallv).abs() < 1e-12);
        }
    }

    #[test]
    fn comm_ratio_higher_on_gpu() {
        // Table I: GPU communication ratio exceeds ARM's at the same
        // system size (1536 atoms; 960 ARM vs 96 GPU nodes).
        let arm =
            step_time(&Platform::fugaku_arm(), &Workload::silicon(1536), 960, Variant::AceAsync);
        let gpu =
            step_time(&Platform::gpu_a100(), &Workload::silicon(1536), 96, Variant::AceAsync);
        assert!(
            gpu.comm_ratio() > arm.comm_ratio(),
            "GPU ratio {} vs ARM {}",
            gpu.comm_ratio(),
            arm.comm_ratio()
        );
    }

    #[test]
    fn nvlink_whatif_improves_comm_as_paper_predicts() {
        // Sec. VIII-D: with NVLink/GPUDirect the communication performance
        // improves. Every Table-I variant's comm time must drop, and the
        // comm ratio must fall below the PCIe-staged platform's.
        let pcie = Platform::gpu_a100();
        let nvlink = Platform::gpu_nvlink();
        let w = Workload::silicon(1536);
        for v in [Variant::Ace, Variant::AceRing, Variant::AceAsync] {
            let a = step_time(&pcie, &w, 96, v);
            let b = step_time(&nvlink, &w, 96, v);
            assert!(
                b.comm.total() < a.comm.total(),
                "{v:?}: NVLink comm {} should beat PCIe {}",
                b.comm.total(),
                a.comm.total()
            );
            assert!(b.comm_ratio() < a.comm_ratio());
            // Compute side is untouched.
            assert!((a.fock - b.fock).abs() < 1e-9);
        }
    }

    #[test]
    fn comm_ratios_in_table1_band() {
        // Table I: ARM 10.65%–18.92%, GPU 16.38%–25.72% across
        // ACE/Ring/Async. Accept a generous band around those.
        for (pf, nodes, lo, hi) in [
            (Platform::fugaku_arm(), 960, 0.02, 0.45),
            (Platform::gpu_a100(), 96, 0.05, 0.55),
        ] {
            let w = Workload::silicon(1536);
            for v in [Variant::Ace, Variant::AceRing, Variant::AceAsync] {
                let r = step_time(&pf, &w, nodes, v).comm_ratio();
                assert!(r > lo && r < hi, "{} {:?}: comm ratio {r}", pf.name, v);
            }
        }
    }
}
