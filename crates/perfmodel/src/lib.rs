//! # perfmodel — calibrated performance model of the paper's platforms
//!
//! Substitution (DESIGN.md §2): the paper's Figs. 9–11 and Table I were
//! measured on Fugaku (up to 960 nodes) and an A100 cluster (up to 192
//! nodes). This crate prices the *same algorithm schedules the real code
//! executes* (kernel counts from the `ptim` implementation, communication
//! patterns from `mpisim`) with a roofline model of each platform and
//! closed-form network costs, reproducing the figures' shape: who wins,
//! by what factor, and where the crossovers fall.
//!
//! * [`platform`] — A64FX / A100 rank models (peak, bandwidth, network).
//! * [`workload`] — the silicon systems of Sec. VI.
//! * [`comm`] — bcast/ring/allreduce/alltoallv closed forms, cross-
//!   validated against `mpisim` runs in the integration suite.
//! * [`schedule`] — per-step cost of each optimization stage
//!   (BL → Diag → ACE → Ring → Async; Fig. 9, Table I).
//! * [`scaling`] — strong/weak scaling sweeps (Figs. 10, 11).
//! * [`memory`] — per-rank footprint and the SHM mechanism's effect
//!   (Sec. IV-B3, capacity limits of Fig. 11).
//! * [`calibration`] — every numeric claim of the evaluation as data,
//!   with a model self-check separating fitted anchors from predictions.

pub mod calibration;
pub mod comm;
pub mod memory;
pub mod platform;
pub mod scaling;
pub mod schedule;
pub mod workload;

pub use platform::Platform;
pub use scaling::{parallel_efficiency, strong_scaling, weak_scaling, ScalePoint};
pub use schedule::{
    dist_step_sim_time, step_time, CommBreakdown, DistStepShape, StepBreakdown, Variant,
};
pub use workload::Workload;
