//! Hardware models of the paper's two platforms (Sec. V).
//!
//! * **ARM**: Fugaku — one A64FX per node, 4 CMGs (= 4 MPI ranks) of
//!   12 compute cores, 3.38 TFLOPS and 1024 GB/s HBM2 per node,
//!   6D-torus (Tofu-D) interconnect at ~6.8 GB/s per link.
//! * **GPU**: 4× NVIDIA A100-40GB per node (one rank per GPU),
//!   9.7 TFLOPS FP64 and 1.5 TB/s HBM2 each, fat-tree network without
//!   GPUDirect (PCIe-staged, which the paper blames for higher
//!   communication ratios).
//!
//! `flop_eff`/`bw_eff` are *calibration constants*: achieved fractions of
//! peak for this workload, fitted once against the paper's absolute
//! anchors (see `calibration.rs`) and then frozen for every figure.

/// One platform's per-rank capabilities and network parameters.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Human-readable name used in harness output.
    pub name: &'static str,
    /// Peak FP64 throughput per rank (flops/s).
    pub flops_per_rank: f64,
    /// Peak memory bandwidth per rank (bytes/s).
    pub mem_bw_per_rank: f64,
    /// Achieved fraction of peak flops (calibrated).
    pub flop_eff: f64,
    /// Achieved fraction of peak bandwidth (calibrated).
    pub bw_eff: f64,
    /// Inter-node network bandwidth per rank (bytes/s).
    pub net_bw: f64,
    /// Network latency per message (s).
    pub net_latency: f64,
    /// Intra-node shared-memory staging bandwidth (bytes/s) — the rate at
    /// which the two-level collectives move data through MPI-3 shared
    /// windows between ranks of the same node.
    pub shm_bw: f64,
    /// Intra-node shared-memory staging latency per access (s).
    pub shm_latency: f64,
    /// Extra multiplier on broadcast traffic (global congestion vs the
    /// single-hop neighbor exchanges of the ring method — the 6D torus
    /// punishes broadcasts more than the fat tree).
    pub bcast_penalty: f64,
    /// Whether ranks execute accelerator-style (batched device kernels,
    /// as on the GPU platform) rather than per-call host threading —
    /// the attribute compute-backend selection keys off.
    pub accelerator: bool,
    /// MPI ranks per node.
    pub ranks_per_node: usize,
    /// Usable memory per rank (bytes).
    pub mem_per_rank: f64,
    /// Fixed overhead per kernel invocation (launch latency; the paper's
    /// multi-batch strategy exists to amortize this on the GPU).
    pub kernel_overhead: f64,
    /// Band-batch saturation constant: per-band kernels reach full
    /// throughput only when `nb >> batch_sat` (device underutilization at
    /// small local batches — the paper's Sec. VIII-B efficiency loss).
    pub batch_sat: f64,
    /// Effective fraction of a full grid pass paid per (k,i,j) triple in
    /// the baseline Alg. 2 accumulation (multi-batch fusion efficiency;
    /// calibrated against the paper's Diag speedups).
    pub triple_pass_eff: f64,
}

impl Platform {
    /// Fugaku A64FX (one rank per CMG, as in Sec. VIII).
    pub fn fugaku_arm() -> Platform {
        Platform {
            name: "ARM (Fugaku A64FX)",
            flops_per_rank: 3.38e12 / 4.0,
            mem_bw_per_rank: 1024e9 / 4.0,
            flop_eff: 0.12,
            bw_eff: 0.16,
            net_bw: 6.8e9 / 4.0,
            net_latency: 1.2e-6,
            shm_bw: 2.0e11,
            shm_latency: 0.15e-6,
            bcast_penalty: 4.3,
            accelerator: false,
            ranks_per_node: 4,
            mem_per_rank: 8.0e9,
            kernel_overhead: 1.0e-6,
            batch_sat: 1.0,
            triple_pass_eff: 0.127,
        }
    }

    /// A100 GPU cluster (one rank per GPU, PCIe-staged communication).
    pub fn gpu_a100() -> Platform {
        Platform {
            name: "GPU (NVIDIA A100)",
            flops_per_rank: 9.7e12,
            mem_bw_per_rank: 1.5e12,
            flop_eff: 0.45,
            bw_eff: 0.85,
            net_bw: 12.5e9 / 4.0,
            net_latency: 4.0e-6,
            shm_bw: 6.4e10,
            shm_latency: 1.0e-6,
            bcast_penalty: 4.0,
            accelerator: true,
            ranks_per_node: 4,
            mem_per_rank: 40.0e9,
            kernel_overhead: 1.0e-5,
            batch_sat: 12.0,
            triple_pass_eff: 0.044,
        }
    }

    /// What-if platform for the paper's closing remark of Sec. VIII-D:
    /// "on GPU platforms equipped with NVLink, such as Summit, the
    /// communication performance of our program will be further
    /// improved." Same A100 compute, but GPUDirect RDMA (no PCIe
    /// staging): ~2.7× the injection bandwidth, lower software overhead,
    /// NVLink-class intra-node transfers.
    pub fn gpu_nvlink() -> Platform {
        let mut p = Self::gpu_a100();
        p.name = "GPU (A100 + NVLink/GPUDirect)";
        p.net_bw = 25.0e9 / 2.0;
        p.net_latency = 1.5e-6;
        p.bcast_penalty = 2.0;
        p
    }

    /// Machine-balance ratio flop/byte (the paper quotes 3.4 for ARM and
    /// 6.5 for the GPU platform — why ARM scales better on a
    /// bandwidth-bound code).
    pub fn flops_per_byte(&self) -> f64 {
        self.flops_per_rank / self.mem_bw_per_rank
    }

    /// Time to execute a kernel with the given flop and byte counts
    /// (roofline: the slower of the compute and memory streams).
    pub fn kernel_time(&self, flops: f64, bytes: f64) -> f64 {
        let tf = flops / (self.flops_per_rank * self.flop_eff);
        let tb = bytes / (self.mem_bw_per_rank * self.bw_eff);
        self.kernel_overhead + tf.max(tb)
    }

    /// Throughput fraction achieved with `nb` bands resident per rank
    /// (saturation curve `nb / (nb + batch_sat)`).
    pub fn batch_efficiency(&self, nb: f64) -> f64 {
        nb / (nb + self.batch_sat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_balance_matches_paper() {
        // Sec. VIII-B: 3.4 flop/byte (ARM) vs 6.5 flop/byte (GPU).
        let arm = Platform::fugaku_arm();
        let gpu = Platform::gpu_a100();
        assert!((arm.flops_per_byte() - 3.3).abs() < 0.3, "{}", arm.flops_per_byte());
        assert!((gpu.flops_per_byte() - 6.5).abs() < 0.3, "{}", gpu.flops_per_byte());
    }

    #[test]
    fn kernel_time_roofline() {
        let p = Platform::gpu_a100();
        // Pure compute: time = overhead + flops / achieved flops.
        let t1 = p.kernel_time(1e12, 0.0);
        let expect1 = p.kernel_overhead + 1e12 / (p.flops_per_rank * p.flop_eff);
        assert!((t1 - expect1).abs() / t1 < 1e-12);
        // Bandwidth-bound kernel: bytes dominate.
        let t2 = p.kernel_time(1.0, 1e12);
        let expect2 = p.kernel_overhead + 1e12 / (p.mem_bw_per_rank * p.bw_eff);
        assert!((t2 - expect2).abs() / t2 < 1e-12);
        // Max semantics.
        assert!(p.kernel_time(1e12, 1e12) >= t1.max(t2) * 0.999);
        // Batch efficiency saturates.
        assert!(p.batch_efficiency(1.0) < p.batch_efficiency(100.0));
        assert!(p.batch_efficiency(10_000.0) > 0.99);
    }

    #[test]
    fn gpu_rank_is_faster_but_network_poorer() {
        let arm = Platform::fugaku_arm();
        let gpu = Platform::gpu_a100();
        assert!(gpu.flops_per_rank > 10.0 * arm.flops_per_rank);
        // Per-flop network capability is worse on the GPU cluster — the
        // paper's explanation for its higher communication ratio.
        let arm_net_per_flop = arm.net_bw / arm.flops_per_rank;
        let gpu_net_per_flop = gpu.net_bw / gpu.flops_per_rank;
        assert!(arm_net_per_flop > 5.0 * gpu_net_per_flop);
    }
}
