//! Analytic communication-time formulas.
//!
//! Large-message collectives use the pipelined algorithms production MPI
//! libraries select (scatter+allgather broadcast, reduce-scatter+allgather
//! all-reduce), whose bandwidth term is `~2·bytes/bw` independent of the
//! rank count; only the latency term grows with `log2 p`. The small
//! message shapes match the binomial algorithms `mpisim` executes, so the
//! integration suite can cross-validate the two at small `p`.

use crate::platform::Platform;

/// Ceil of log2 (number of tree rounds).
pub fn log2_ceil(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (p as f64).log2().ceil()
    }
}

/// One broadcast of `bytes` from a single root to `p` ranks.
/// Pipelined scatter+allgather: `log2 p` latency rounds plus two
/// bandwidth passes; the platform's `bcast_penalty` models the global
/// congestion broadcasts create on the shared network (the effect the
/// paper's ring method removes).
pub fn bcast_time(pf: &Platform, p: usize, bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    log2_ceil(p) * pf.net_latency + 2.0 * bytes / pf.net_bw * pf.bcast_penalty
}

/// Full ring rotation: `p-1` neighbor exchanges of `block_bytes` each
/// (single-hop on the torus — no congestion penalty).
pub fn ring_time(pf: &Platform, p: usize, block_bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p - 1) as f64 * (pf.net_latency + block_bytes / pf.net_bw)
}

/// Full ring-pipelined overlapped exchange: `p` block-processing phases
/// of `compute_per_block` seconds each, with every one of the `p-1`
/// neighbor transfers posted nonblocking before the phase it overlaps —
/// only the excess of a transfer over its covering compute phase stays
/// visible. This is the closed form of the virtual-clock recurrence the
/// `mpisim` RingOverlap exchange executes
/// (`t_{k+1} = t_k + max(compute, transfer)`), so the model can be
/// validated against simulator measurement directly.
pub fn ring_overlap_time(
    pf: &Platform,
    p: usize,
    block_bytes: f64,
    compute_per_block: f64,
) -> f64 {
    if p <= 1 {
        return compute_per_block;
    }
    let step_transfer = pf.net_latency + block_bytes / pf.net_bw;
    p as f64 * compute_per_block
        + (p - 1) as f64 * (step_transfer - compute_per_block).max(0.0)
}

/// All-reduce of `bytes` (reduce-scatter + allgather).
pub fn allreduce_time(pf: &Platform, p: usize, bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    2.0 * log2_ceil(p) * pf.net_latency + 2.0 * bytes / pf.net_bw
}

/// Node-aware all-reduce: only node leaders cross the network.
pub fn allreduce_node_aware_time(pf: &Platform, p: usize, bytes: f64) -> f64 {
    let nodes = p.div_ceil(pf.ranks_per_node);
    allreduce_time(pf, nodes, bytes)
}

/// Pairwise all-to-all where each rank sends `bytes_total` split over the
/// other ranks.
pub fn alltoallv_time(pf: &Platform, p: usize, bytes_total: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p - 1) as f64 * pf.net_latency + bytes_total / pf.net_bw
}

/// Ring allgather of per-rank blocks of `block_bytes`.
pub fn allgatherv_time(pf: &Platform, p: usize, block_bytes: f64) -> f64 {
    ring_time(pf, p, block_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> Platform {
        Platform::fugaku_arm()
    }

    #[test]
    fn ring_beats_bcast_for_full_exchange() {
        // Moving every rank's block to everyone: ring needs p-1 block
        // steps total; per-root broadcasts pay the congestion penalty and
        // the double bandwidth pass.
        let p = 64;
        let block = 1e8;
        let ring = ring_time(&pf(), p, block);
        let bcast_all: f64 = (0..p).map(|_| bcast_time(&pf(), p, block)).sum();
        assert!(
            bcast_all > 2.0 * ring,
            "bcast {bcast_all} should exceed ring {ring} substantially"
        );
    }

    #[test]
    fn single_rank_is_free() {
        assert_eq!(bcast_time(&pf(), 1, 1e9), 0.0);
        assert_eq!(ring_time(&pf(), 1, 1e9), 0.0);
        assert_eq!(allreduce_time(&pf(), 1, 1e9), 0.0);
        assert_eq!(alltoallv_time(&pf(), 1, 1e9), 0.0);
    }

    #[test]
    fn bcast_bandwidth_term_independent_of_p() {
        // Pipelined broadcast: going from 64 to 1024 ranks adds only
        // latency rounds, not bandwidth passes.
        let big = 1e9;
        let t64 = bcast_time(&pf(), 64, big);
        let t1024 = bcast_time(&pf(), 1024, big);
        assert!((t1024 - t64) < 0.01 * t64, "{t64} vs {t1024}");
    }

    #[test]
    fn node_aware_allreduce_cheaper() {
        let p = 256; // 64 nodes at 4 ranks/node
        let flat = allreduce_time(&pf(), p, 1e7);
        let aware = allreduce_node_aware_time(&pf(), p, 1e7);
        assert!(aware < flat);
    }

    #[test]
    fn times_scale_with_bytes() {
        let t1 = ring_time(&pf(), 16, 1e6);
        let t2 = ring_time(&pf(), 16, 1e8);
        assert!(t2 > 10.0 * t1);
    }

    #[test]
    fn ring_overlap_bounded_by_compute_and_blocking_ring() {
        let p = 16;
        let bytes = 1e8;
        for compute in [0.0, 1e-3, 1e-1, 10.0] {
            let overlapped = ring_overlap_time(&pf(), p, bytes, compute);
            let blocking = p as f64 * compute + ring_time(&pf(), p, bytes);
            // Never slower than the blocking schedule, never faster than
            // the compute-only lower bound.
            assert!(overlapped <= blocking + 1e-12, "compute={compute}");
            assert!(overlapped >= p as f64 * compute, "compute={compute}");
        }
        // Compute-dominated: communication fully hidden.
        let t = ring_overlap_time(&pf(), p, 1e3, 1.0);
        assert!((t - 16.0).abs() < 1e-6);
        // Communication-dominated: degenerates to the blocking ring.
        let t = ring_overlap_time(&pf(), p, 1e9, 0.0);
        assert!((t - ring_time(&pf(), p, 1e9)).abs() < 1e-9);
    }
}
