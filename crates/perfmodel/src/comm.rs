//! Analytic communication-time formulas.
//!
//! Large-message collectives use the pipelined algorithms production MPI
//! libraries select (scatter+allgather broadcast, reduce-scatter+allgather
//! all-reduce), whose bandwidth term is `~2·bytes/bw` independent of the
//! rank count; only the latency term grows with `log2 p`. The small
//! message shapes match the binomial algorithms `mpisim` executes, so the
//! integration suite can cross-validate the two at small `p`.

use crate::platform::Platform;

/// Ceil of log2 (number of tree rounds).
pub fn log2_ceil(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (p as f64).log2().ceil()
    }
}

/// One broadcast of `bytes` from a single root to `p` ranks.
/// Pipelined scatter+allgather: `log2 p` latency rounds plus two
/// bandwidth passes; the platform's `bcast_penalty` models the global
/// congestion broadcasts create on the shared network (the effect the
/// paper's ring method removes).
pub fn bcast_time(pf: &Platform, p: usize, bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    log2_ceil(p) * pf.net_latency + 2.0 * bytes / pf.net_bw * pf.bcast_penalty
}

/// Full ring rotation: `p-1` neighbor exchanges of `block_bytes` each
/// (single-hop on the torus — no congestion penalty).
pub fn ring_time(pf: &Platform, p: usize, block_bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p - 1) as f64 * (pf.net_latency + block_bytes / pf.net_bw)
}

/// Full ring-pipelined overlapped exchange: `p` block-processing phases
/// of `compute_per_block` seconds each, with every one of the `p-1`
/// neighbor transfers posted nonblocking before the phase it overlaps —
/// only the excess of a transfer over its covering compute phase stays
/// visible. This is the closed form of the virtual-clock recurrence the
/// `mpisim` RingOverlap exchange executes
/// (`t_{k+1} = t_k + max(compute, transfer)`), so the model can be
/// validated against simulator measurement directly.
pub fn ring_overlap_time(
    pf: &Platform,
    p: usize,
    block_bytes: f64,
    compute_per_block: f64,
) -> f64 {
    if p <= 1 {
        return compute_per_block;
    }
    let step_transfer = pf.net_latency + block_bytes / pf.net_bw;
    p as f64 * compute_per_block
        + (p - 1) as f64 * (step_transfer - compute_per_block).max(0.0)
}

/// All-reduce of `bytes` (reduce-scatter + allgather).
pub fn allreduce_time(pf: &Platform, p: usize, bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    2.0 * log2_ceil(p) * pf.net_latency + 2.0 * bytes / pf.net_bw
}

/// Node-aware all-reduce: only node leaders cross the network.
pub fn allreduce_node_aware_time(pf: &Platform, p: usize, bytes: f64) -> f64 {
    let nodes = p.div_ceil(pf.ranks_per_node);
    allreduce_time(pf, nodes, bytes)
}

/// Pairwise all-to-all where each rank sends `bytes_total` split over the
/// other ranks.
pub fn alltoallv_time(pf: &Platform, p: usize, bytes_total: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p - 1) as f64 * pf.net_latency + bytes_total / pf.net_bw
}

/// Ring allgather of per-rank blocks of `block_bytes`.
pub fn allgatherv_time(pf: &Platform, p: usize, block_bytes: f64) -> f64 {
    ring_time(pf, p, block_bytes)
}

// ---------------------------------------------------------------------------
// Two-level (intra-node SHM + inter-node) closed forms, mirroring the
// hierarchical collectives `mpisim::hier` executes. The simulator prices
// intra-node staging at `shm_bw`/`shm_latency` and inter-node hops at
// `net_bw`/`net_latency`, so these forms cross-validate directly against
// the virtual clock (`tests/model_vs_simulator.rs`).
// ---------------------------------------------------------------------------

/// One shared-memory window access of `bytes` (write or read).
fn shm_access(pf: &Platform, bytes: f64) -> f64 {
    pf.shm_latency + bytes / pf.shm_bw
}

/// Two-level all-reduce of `bytes`: members stage into the node window,
/// the leader combines the `rpn` slots, node leaders run a binomial
/// reduce+broadcast over the network, and the result fans back out
/// through the window. Mirrors `mpisim::Comm::hier_allreduce`; below the
/// hierarchy threshold it degenerates to the simulator's flat binomial
/// reduce+broadcast.
pub fn hier_allreduce_time(pf: &Platform, p: usize, bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let rpn = pf.ranks_per_node.max(1);
    if rpn <= 1 || p <= rpn {
        // Flat binomial reduce + broadcast: 2·log2(p) sequential hops on
        // the critical path, each carrying the full vector.
        return 2.0 * log2_ceil(p) * (pf.net_latency + bytes / pf.net_bw);
    }
    let nodes = p.div_ceil(rpn);
    // Intra phase: member slot write; leader combine of the other rpn-1
    // slots; leader result write; member result read.
    let intra = shm_access(pf, bytes)
        + shm_access(pf, (rpn - 1) as f64 * bytes)
        + shm_access(pf, bytes)
        + shm_access(pf, bytes);
    // Inter phase: binomial reduce + broadcast over the node leaders.
    let inter = 2.0 * log2_ceil(nodes) * (pf.net_latency + bytes / pf.net_bw);
    intra + inter
}

/// Two-level all-to-all where each rank scatters `bytes_total` over the
/// other ranks: same-node chunks move directly through shared memory;
/// remote chunks bundle up to the node leader, cross the network as one
/// header+data pair per node pair, and scatter back down. Mirrors
/// `mpisim::Comm::hier_alltoallv_group`.
pub fn hier_alltoallv_time(pf: &Platform, p: usize, bytes_total: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let rpn = pf.ranks_per_node.max(1);
    let nodes = p.div_ceil(rpn);
    if rpn <= 1 || nodes <= 1 {
        return alltoallv_time(pf, p, bytes_total);
    }
    // Split the scatter volume by destination locality.
    let b_same = bytes_total * rpn as f64 / p as f64;
    let b_rem = bytes_total - b_same;
    // Direct same-node deliveries (one message per local peer).
    let direct = (rpn - 1) as f64 * pf.shm_latency + b_same / pf.shm_bw;
    // Up-bundle to the leader and down-scatter from it: header + data.
    let up = 2.0 * shm_access(pf, b_rem);
    let down = 2.0 * shm_access(pf, b_rem);
    // Cross phase: the leader ingests its whole node's inbound remote
    // traffic (rpn ranks' worth) as nodes-1 header+data pairs.
    let cross =
        2.0 * (nodes - 1) as f64 * pf.net_latency + rpn as f64 * b_rem / pf.net_bw;
    direct + up + cross + down
}

/// Average per-step edge cost of a node-contiguous ring of `p` ranks:
/// `(rpn-1)/rpn` of the hops stay inside a node (shared-memory rates),
/// the rest cross the network. The simulated ring's critical path is the
/// dependency chain around the ring, which traverses each edge once per
/// rotation step, so the chain cost is `steps · ring_edge_time`.
pub fn ring_edge_time(pf: &Platform, p: usize, block_bytes: f64) -> f64 {
    let rpn = pf.ranks_per_node.max(1).min(p.max(1));
    let intra = pf.shm_latency + block_bytes / pf.shm_bw;
    if rpn >= p {
        return intra;
    }
    let inter = pf.net_latency + block_bytes / pf.net_bw;
    let f_intra = (rpn - 1) as f64 / rpn as f64;
    f_intra * intra + (1.0 - f_intra) * inter
}

/// Node-contiguous ring rotation of `p-1` steps with average circulating
/// blocks of `block_bytes` (topology-aware refinement of [`ring_time`]).
pub fn hier_ring_time(pf: &Platform, p: usize, block_bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p - 1) as f64 * ring_edge_time(pf, p, block_bytes)
}

/// Node-contiguous overlapped ring: `p` compute phases of
/// `compute_per_block`, each hiding the next block's transfer; only the
/// excess of the mixed intra/inter edge cost over its covering phase
/// stays visible (topology-aware refinement of [`ring_overlap_time`]).
pub fn hier_ring_overlap_time(
    pf: &Platform,
    p: usize,
    block_bytes: f64,
    compute_per_block: f64,
) -> f64 {
    if p <= 1 {
        return compute_per_block;
    }
    let edge = ring_edge_time(pf, p, block_bytes);
    p as f64 * compute_per_block + (p - 1) as f64 * (edge - compute_per_block).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> Platform {
        Platform::fugaku_arm()
    }

    #[test]
    fn ring_beats_bcast_for_full_exchange() {
        // Moving every rank's block to everyone: ring needs p-1 block
        // steps total; per-root broadcasts pay the congestion penalty and
        // the double bandwidth pass.
        let p = 64;
        let block = 1e8;
        let ring = ring_time(&pf(), p, block);
        let bcast_all: f64 = (0..p).map(|_| bcast_time(&pf(), p, block)).sum();
        assert!(
            bcast_all > 2.0 * ring,
            "bcast {bcast_all} should exceed ring {ring} substantially"
        );
    }

    #[test]
    fn single_rank_is_free() {
        assert_eq!(bcast_time(&pf(), 1, 1e9), 0.0);
        assert_eq!(ring_time(&pf(), 1, 1e9), 0.0);
        assert_eq!(allreduce_time(&pf(), 1, 1e9), 0.0);
        assert_eq!(alltoallv_time(&pf(), 1, 1e9), 0.0);
    }

    #[test]
    fn bcast_bandwidth_term_independent_of_p() {
        // Pipelined broadcast: going from 64 to 1024 ranks adds only
        // latency rounds, not bandwidth passes.
        let big = 1e9;
        let t64 = bcast_time(&pf(), 64, big);
        let t1024 = bcast_time(&pf(), 1024, big);
        assert!((t1024 - t64) < 0.01 * t64, "{t64} vs {t1024}");
    }

    #[test]
    fn node_aware_allreduce_cheaper() {
        let p = 256; // 64 nodes at 4 ranks/node
        let flat = allreduce_time(&pf(), p, 1e7);
        let aware = allreduce_node_aware_time(&pf(), p, 1e7);
        assert!(aware < flat);
    }

    #[test]
    fn times_scale_with_bytes() {
        let t1 = ring_time(&pf(), 16, 1e6);
        let t2 = ring_time(&pf(), 16, 1e8);
        assert!(t2 > 10.0 * t1);
    }

    #[test]
    fn hier_allreduce_beats_flat_binomial_at_scale() {
        // The hierarchical form replaces log2(p) inter rounds with
        // log2(nodes) plus cheap shm staging; with fast shm it must win.
        let pf = pf(); // 4 ranks/node, shm 30× the net bandwidth
        for p in [64usize, 256, 1024] {
            let flat = 2.0 * log2_ceil(p) * (pf.net_latency + 1e6 / pf.net_bw);
            let hier = hier_allreduce_time(&pf, p, 1e6);
            assert!(hier < flat, "p={p}: hier {hier} vs flat {flat}");
        }
    }

    #[test]
    fn hier_forms_degenerate_cleanly() {
        let pf = pf();
        assert_eq!(hier_allreduce_time(&pf, 1, 1e9), 0.0);
        assert_eq!(hier_alltoallv_time(&pf, 1, 1e9), 0.0);
        assert_eq!(hier_ring_time(&pf, 1, 1e9), 0.0);
        // Single node: all-reduce takes the flat-binomial branch, the
        // ring prices every edge at shm rates.
        let single = hier_allreduce_time(&pf, pf.ranks_per_node, 8e3);
        assert!(single > 0.0);
        let intra_ring = hier_ring_time(&pf, pf.ranks_per_node, 1e6);
        let expect = (pf.ranks_per_node - 1) as f64 * (pf.shm_latency + 1e6 / pf.shm_bw);
        assert!((intra_ring - expect).abs() < 1e-12 * expect.max(1.0));
        // One rank per node: alltoallv reduces to the flat pairwise form.
        let mut flat_pf = pf.clone();
        flat_pf.ranks_per_node = 1;
        assert_eq!(
            hier_alltoallv_time(&flat_pf, 16, 1e6),
            alltoallv_time(&flat_pf, 16, 1e6)
        );
    }

    #[test]
    fn hier_ring_cheaper_than_all_inter_ring() {
        // 3 of every 4 ring hops are intra-node, so the topology-aware
        // ring must undercut the all-inter closed form.
        let pf = pf();
        for p in [16usize, 128, 512] {
            let flat = ring_time(&pf, p, 1e6);
            let hier = hier_ring_time(&pf, p, 1e6);
            assert!(hier < flat, "p={p}: {hier} vs {flat}");
        }
    }

    #[test]
    fn hier_ring_overlap_hides_compute_covered_edges() {
        let pf = pf();
        let p = 64;
        let bytes = 1e6;
        let edge = ring_edge_time(&pf, p, bytes);
        // Compute-dominated: only the compute phases remain.
        let t = hier_ring_overlap_time(&pf, p, bytes, 10.0 * edge);
        assert!((t - p as f64 * 10.0 * edge).abs() < 1e-9);
        // Communication-dominated: degenerates to the blocking ring.
        let t = hier_ring_overlap_time(&pf, p, bytes, 0.0);
        assert!((t - hier_ring_time(&pf, p, bytes)).abs() < 1e-12);
    }

    #[test]
    fn ring_overlap_bounded_by_compute_and_blocking_ring() {
        let p = 16;
        let bytes = 1e8;
        for compute in [0.0, 1e-3, 1e-1, 10.0] {
            let overlapped = ring_overlap_time(&pf(), p, bytes, compute);
            let blocking = p as f64 * compute + ring_time(&pf(), p, bytes);
            // Never slower than the blocking schedule, never faster than
            // the compute-only lower bound.
            assert!(overlapped <= blocking + 1e-12, "compute={compute}");
            assert!(overlapped >= p as f64 * compute, "compute={compute}");
        }
        // Compute-dominated: communication fully hidden.
        let t = ring_overlap_time(&pf(), p, 1e3, 1.0);
        assert!((t - 16.0).abs() < 1e-6);
        // Communication-dominated: degenerates to the blocking ring.
        let t = ring_overlap_time(&pf(), p, 1e9, 0.0);
        assert!((t - ring_time(&pf(), p, 1e9)).abs() < 1e-9);
    }
}
