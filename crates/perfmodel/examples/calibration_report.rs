//! Prints every numeric claim of the paper's evaluation next to the
//! model's value, marking which rows were used to fit the calibration
//! constants (anchor) and which are genuine predictions.
//!
//! ```bash
//! cargo run -p perfmodel --example calibration_report --release
//! ```

use perfmodel::calibration::{report, worst_relative_error};

fn main() {
    println!("{:<44} {:>12} {:>12} {:>8}  fit?", "quantity", "paper", "model", "ratio");
    println!("{}", "-".repeat(88));
    for a in report() {
        println!(
            "{:<44} {:>12.4} {:>12.4} {:>8.2}  {}",
            a.label,
            a.paper,
            a.model,
            a.model / a.paper,
            if a.is_anchor { "anchor" } else { "" }
        );
    }
    println!("{}", "-".repeat(88));
    println!("worst relative deviation: {:.1}%", 100.0 * worst_relative_error());
    println!("(anchors were fitted once; all other rows are model predictions)");
}
