//! Pair-symmetric Fock scheduler bench: baseline `apply_diag` (asymmetric
//! per-target batches, forced by a copied target block) vs the Hermitian
//! `i ≤ j` pair-block scheduler, at N ∈ {32, 64, 128} bands with
//! Fermi–Dirac occupations from `pwdft::smearing` at the paper's 8000 K.
//!
//! Writes `BENCH_fock_pairsym.json` (consumed by EXPERIMENTS.md §4 and
//! gated in CI by `bin/compare.rs`: the job fails if the pair-symmetric
//! path is slower than baseline at N = 128).

use pwdft::fock::FockOptions;
use pwdft::smearing::{occupations, KB_HARTREE};
use pwdft::{Cell, FockOperator, PwGrid, Wavefunction};
use pwdft_bench::median_secs;
use pwnum::backend::default_backend;
use std::hint::black_box;

struct Row {
    name: String,
    bands: usize,
    baseline_s: f64,
    pairsym_s: f64,
    solves_baseline: usize,
    solves_pairsym: usize,
    skipped_weight: f64,
}

/// One head-to-head measurement at `n` bands. `spacing` sets the model
/// eigenvalue ladder (hartree): tight ladders keep every band above the
/// screening cutoff (pure halving); wide ladders push a high-energy tail
/// below it, adding the finite-temperature screening cut.
fn measure(grid: &PwGrid, n: usize, spacing: f64, opts: FockOptions, iters: usize) -> Row {
    let fft = grid.fft();
    let kt = KB_HARTREE * 8000.0;
    let eigs: Vec<f64> = (0..n).map(|i| -0.5 * spacing * n as f64 + spacing * i as f64).collect();
    let (_, occ) = occupations(&eigs, n as f64, kt);
    let wf = Wavefunction::random(grid, n, 3);
    let phi_r = wf.to_real_all(&fft);
    let psi_copy = phi_r.clone(); // distinct pointer → asymmetric baseline
    let fock = FockOperator::with_options(grid, 0.106, default_backend().clone(), opts);

    let (_, s_base) = fock.apply_diag_stats(&phi_r, &occ, &psi_copy);
    let (_, s_sym) = fock.apply_pure_stats(&phi_r, &occ);
    assert!(s_sym.symmetric && !s_base.symmetric);

    let baseline_s = median_secs(iters, || {
        black_box(fock.apply_diag(black_box(&phi_r), black_box(&occ), black_box(&psi_copy)));
    });
    let pairsym_s = median_secs(iters, || {
        black_box(fock.apply_pure(black_box(&phi_r), black_box(&occ)));
    });
    Row {
        name: format!("fock_pairsym_n{n}"),
        bands: n,
        baseline_s,
        pairsym_s,
        solves_baseline: s_base.solves,
        solves_pairsym: s_sym.solves,
        skipped_weight: s_sym.skipped_weight,
    }
}

fn main() {
    let cell = Cell::silicon_supercell(1, 1, 1);
    let grid = PwGrid::with_dims(&cell, 2.0, [12, 12, 12]);
    let opts = FockOptions::default();

    let mut rows = vec![
        measure(&grid, 32, 0.005, opts, 7),
        measure(&grid, 64, 0.005, opts, 5),
        measure(&grid, 128, 0.005, opts, 3),
    ];
    // Finite-temperature screening on top of the halving: a wide ladder
    // pushes the high tail below the default cutoff, and a looser cutoff
    // drops more weight (reported so callers can bound the error).
    let mut screened = measure(
        &grid,
        64,
        0.05,
        FockOptions { occ_cutoff: 1e-8, ..opts },
        5,
    );
    screened.name = "fock_pairsym_screened_n64".into();
    rows.push(screened);

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"bands\": {}, \"baseline_s\": {:.6e}, \
             \"pairsym_s\": {:.6e}, \"speedup\": {:.3}, \"solves_baseline\": {}, \
             \"solves_pairsym\": {}, \"skipped_weight\": {:.3e}}}{}\n",
            r.name,
            r.bands,
            r.baseline_s,
            r.pairsym_s,
            r.baseline_s / r.pairsym_s,
            r.solves_baseline,
            r.solves_pairsym,
            r.skipped_weight,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"backend\": \"{}\", \"grid\": \"12x12x12\", \"temperature_k\": 8000\n}}\n",
        default_backend().name()
    ));
    std::fs::write("BENCH_fock_pairsym.json", &json).expect("write BENCH_fock_pairsym.json");
    println!("wrote BENCH_fock_pairsym.json:\n{json}");
}
