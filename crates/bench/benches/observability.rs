//! Observability overhead bench: the `pwobs` recorder must be free when
//! disabled and near-free when enabled (DESIGN.md §13 overhead budget).
//!
//! Measures, on a hybrid PT-IM step (Blocked backend via the `Traced`
//! decorator, 8³ grid, dense exchange):
//!
//! * `enabled_overhead_frac` — the relative step-time cost of running
//!   with the recorder enabled. Disabled and enabled samples are
//!   **interleaved** (dis, en, dis, en, …) so drift in machine load hits
//!   both sides equally, and each side takes its **minimum** over the
//!   pairs — the fastest achievable time is the right basis for an
//!   overhead bound because scheduler noise only ever adds time (the
//!   true enabled cost, ~200 ns per span record, is orders of magnitude
//!   below a step's run-to-run variance, so medians would gate on noise).
//! * `disabled_span_ns` — nanoseconds per [`pwobs::span`] open/drop when
//!   the recorder is disabled: one relaxed atomic load, expected at
//!   single-digit nanoseconds ("disabled ≈ 0").
//!
//! Writes `BENCH_observability.json`, gated in CI by `bin/compare.rs`:
//! `enabled_overhead_frac` ≤ 0.02 and `disabled_span_ns` ≤ 50.

use ptim::{ptim_step, HybridParams, LaserPulse, PtimConfig, TdEngine, TdState};
use pwdft::{Cell, DftSystem, Wavefunction};
use pwnum::cmat::CMat;
use std::hint::black_box;
use std::time::Instant;

/// Interleaved sample pairs for the overhead measurement.
const PAIRS: usize = 11;
/// Propagator steps per sample (averages out per-step scheduler noise).
const STEPS_PER_SAMPLE: usize = 3;
/// Disabled-span microbench iterations.
const SPAN_ITERS: u32 = 1_000_000;

fn fixture() -> (DftSystem, TdState, HybridParams) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let mut phi = Wavefunction::random(&sys.grid, 4, 11);
    phi.orthonormalize_lowdin();
    let sigma = CMat::from_real_diag(&[1.0, 0.8, 0.5, 0.2]);
    (sys, TdState { phi, sigma, time: 0.0 }, HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() })
}

fn fastest(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    let (sys, st, hyb) = fixture();
    let eng = TdEngine::new(&sys, LaserPulse::off(), hyb);
    let cfg = PtimConfig { dt: 0.3, max_scf: 25, tol_rho: 1e-8, ..Default::default() };

    // Warm-up: pools, lazy plans, page faults.
    pwobs::set_enabled(false);
    black_box(ptim_step(&eng, black_box(&st), &cfg));

    let mut dis = Vec::with_capacity(PAIRS);
    let mut en = Vec::with_capacity(PAIRS);
    let mut span_records = 0usize;
    let mut event_count = 0usize;
    for _ in 0..PAIRS {
        pwobs::set_enabled(false);
        let t0 = Instant::now();
        for _ in 0..STEPS_PER_SAMPLE {
            black_box(ptim_step(&eng, black_box(&st), &cfg));
        }
        dis.push(t0.elapsed().as_secs_f64() / STEPS_PER_SAMPLE as f64);

        pwobs::set_enabled(true);
        pwobs::reset();
        let t0 = Instant::now();
        for _ in 0..STEPS_PER_SAMPLE {
            black_box(ptim_step(&eng, black_box(&st), &cfg));
        }
        en.push(t0.elapsed().as_secs_f64() / STEPS_PER_SAMPLE as f64);
        span_records = pwobs::global().span_stats().iter().map(|(_, s)| s.calls as usize).sum();
        event_count = pwobs::global().timeline_len();
    }
    pwobs::set_enabled(false);
    let step_dis_s = fastest(&dis);
    let step_en_s = fastest(&en);
    let enabled_overhead_frac = (step_en_s - step_dis_s) / step_dis_s;

    // Disabled span cost: the no-op fast path the hot loops pay always.
    let t0 = Instant::now();
    for i in 0..SPAN_ITERS {
        let _s = pwobs::span("bench.disabled_span");
        black_box(i);
    }
    let disabled_span_ns = t0.elapsed().as_secs_f64() * 1e9 / SPAN_ITERS as f64;

    let json = format!(
        "{{\n  \"benchmarks\": [\n    \
         {{\"name\": \"observability_overhead\", \"mode\": 1, \"step_dis_s\": {step_dis_s:.6e}, \
         \"step_en_s\": {step_en_s:.6e}, \"enabled_overhead_frac\": {enabled_overhead_frac:.6}, \
         \"span_records\": {span_records}, \"timeline_events\": {event_count}}},\n    \
         {{\"name\": \"observability_disabled_span\", \"mode\": 2, \
         \"disabled_span_ns\": {disabled_span_ns:.3}}}\n  ],\n  \
         \"backend\": \"blocked+traced\", \"grid\": \"8x8x8\", \"bands\": 4, \
         \"propagator\": \"ptim\", \"alpha\": 0.25, \"pairs\": {PAIRS}\n}}\n"
    );
    std::fs::write("BENCH_observability.json", &json).expect("write BENCH_observability.json");
    println!("wrote BENCH_observability.json:\n{json}");
}
