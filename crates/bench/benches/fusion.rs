//! Fusion + autotune bench: the fused pair-solve pipeline vs the staged
//! tile scheduler on the Fock `apply_pure` hot path (Blocked backend,
//! 12³ grid, Fermi–Dirac occupations at the paper's 8000 K), and the
//! backend autotuner's default-vs-tuned shape measurements.
//!
//! Writes `BENCH_fusion.json` (gated in CI by `bin/compare.rs`: fused
//! ≥ 1.25× staged on the N = 64 Fock apply, fused bitwise identical to
//! staged, and autotuned never slower than the default shapes on any
//! row) and `TUNING.json` — the persisted tuning table CI uploads as an
//! artifact; point `PWDFT_TUNING_FILE` at it to adopt the shapes.

use pwdft::fock::FockOptions;
use pwdft::smearing::{occupations, KB_HARTREE};
use pwdft::{Cell, FockOperator, PwGrid, Wavefunction};
use pwdft_bench::median_secs;
use pwnum::backend::{Blocked, BackendHandle};
use pwnum::precision::PrecisionPolicy;
use pwnum::tuning::{autotune_with, AutotuneReport, TuneKey, TunedShapes, TuningTable};
use std::hint::black_box;
use std::sync::Arc;

const DIMS: [usize; 3] = [12, 12, 12];

fn fd_occ(n: usize) -> Vec<f64> {
    let kt = KB_HARTREE * 8000.0;
    let eigs: Vec<f64> = (0..n).map(|i| -0.0025 * n as f64 + 0.005 * i as f64).collect();
    let (_, occ) = occupations(&eigs, n as f64, kt);
    occ
}

struct FusionRow {
    bands: usize,
    staged_s: f64,
    fused_s: f64,
    max_diff: f64,
    solves: usize,
}

/// Head-to-head fused vs staged `apply_pure` at `n` bands on a fresh
/// Blocked backend (both pipelines share one operator grid + kernel).
fn measure_fusion(grid: &PwGrid, n: usize, iters: usize) -> FusionRow {
    let fft = grid.fft();
    let occ = fd_occ(n);
    let wf = Wavefunction::random(grid, n, 3);
    let phi_r = wf.to_real_all(&fft);
    let be: BackendHandle = Arc::new(Blocked::new());
    let fused = FockOperator::with_options(grid, 0.106, be.clone(), FockOptions::default());
    let staged = FockOperator::with_options(
        grid,
        0.106,
        be,
        FockOptions::default().with_fused(false),
    );
    let (vf, stats) = fused.apply_pure_stats(&phi_r, &occ);
    let (vs, _) = staged.apply_pure_stats(&phi_r, &occ);
    let max_diff = pwnum::cvec::max_abs_diff(&vf, &vs);
    let staged_s = median_secs(iters, || {
        black_box(staged.apply_pure(black_box(&phi_r), black_box(&occ)));
    });
    let fused_s = median_secs(iters, || {
        black_box(fused.apply_pure(black_box(&phi_r), black_box(&occ)));
    });
    FusionRow { bands: n, staged_s, fused_s, max_diff, solves: stats.solves }
}

/// The pinned candidate list: the defaults first (the autotuner would
/// prepend them anyway), then one-knob excursions per shape — register
/// block widths around the default 4, and tile sizes around the default
/// 32. `fft_slab` stays 0 (one slab per worker): the slab knob only
/// moves on multi-worker hosts, and candidates are kept value-neutral.
fn candidates() -> Vec<TunedShapes> {
    let d = TunedShapes::default();
    vec![
        d,
        TunedShapes { gemm_block: 2, ..d },
        TunedShapes { gemm_block: 8, ..d },
        TunedShapes { tile_bands: 8, ..d },
        TunedShapes { tile_bands: 16, ..d },
        TunedShapes { tile_bands: 64, ..d },
    ]
}

/// Autotunes one `(dims, bands, precision)` key on the Blocked backend:
/// the measured workload is the staged Fock apply (tile_bands-sensitive)
/// plus a band-gram overlap (gemm_block-sensitive), each candidate on a
/// freshly shaped backend.
fn run_autotune(
    table: &mut TuningTable,
    grid: &PwGrid,
    n: usize,
    precision: &str,
) -> AutotuneReport {
    let fft = grid.fft();
    let occ = fd_occ(n);
    let wf = Wavefunction::random(grid, n, 5);
    let phi_r = wf.to_real_all(&fft);
    let ng = grid.len();
    let policy = if precision == "fp32" {
        PrecisionPolicy::mixed()
    } else {
        PrecisionPolicy::fp64()
    };
    let key = TuneKey {
        dims: DIMS,
        bands: n,
        precision: precision.to_string(),
        backend: "blocked".to_string(),
    };
    autotune_with(table, key, &candidates(), |shapes| {
        let be: BackendHandle = Arc::new(Blocked::with_shapes(*shapes));
        let op = FockOperator::with_options(
            grid,
            0.106,
            be.clone(),
            FockOptions::default()
                .with_fused(false)
                .with_tile_bands(shapes.tile_bands)
                .with_precision(policy),
        );
        pwnum::tuning::median_wall_secs(3, || {
            black_box(op.apply_pure(black_box(&phi_r), black_box(&occ)));
            black_box(be.overlap(black_box(&phi_r), black_box(&phi_r), ng, 1.0));
        })
    })
}

fn autotune_json(name: &str, n: usize, precision: &str, r: &AutotuneReport) -> String {
    format!(
        "    {{\"name\": \"{name}\", \"bands\": {n}, \"precision\": \"{precision}\", \
         \"default_s\": {:.6e}, \"tuned_s\": {:.6e}, \"autotune_speedup\": {:.3}, \
         \"gemm_block\": {}, \"fft_slab\": {}, \"tile_bands\": {}, \"candidates\": {}}},\n",
        r.default_secs,
        r.tuned_secs,
        r.default_secs / r.tuned_secs,
        r.shapes.gemm_block,
        r.shapes.fft_slab,
        r.shapes.tile_bands,
        r.measurements.len(),
    )
}

fn main() {
    let cell = Cell::silicon_supercell(1, 1, 1);
    let grid = PwGrid::with_dims(&cell, 2.0, DIMS);

    // --- Fused vs staged pipeline ---
    let rows = vec![measure_fusion(&grid, 32, 7), measure_fusion(&grid, 64, 5)];

    // --- Autotune: per-key default vs tuned shapes ---
    let mut table = TuningTable::new();
    let r64 = run_autotune(&mut table, &grid, 64, "fp64");
    let r32 = run_autotune(&mut table, &grid, 32, "fp64");
    let r64f = run_autotune(&mut table, &grid, 64, "fp32");
    // The fp64 N=64 winner also becomes the backend-wide wildcard entry,
    // so `Blocked::new()` / `FockOptions::default()` pick it up when
    // `PWDFT_TUNING_FILE` points at the artifact.
    table.insert(TuneKey::wildcard("blocked", "fp64"), r64.shapes);
    table.save("TUNING.json").expect("write TUNING.json");

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for r in &rows {
        json.push_str(&format!(
            "    {{\"name\": \"fock_fusion_n{}\", \"bands\": {}, \"staged_s\": {:.6e}, \
             \"fused_s\": {:.6e}, \"speedup\": {:.3}, \"fused_max_diff\": {:.1e}, \
             \"solves\": {}}},\n",
            r.bands,
            r.bands,
            r.staged_s,
            r.fused_s,
            r.staged_s / r.fused_s,
            r.max_diff,
            r.solves,
        ));
    }
    json.push_str(&autotune_json("autotune_fp64_n64", 64, "fp64", &r64));
    json.push_str(&autotune_json("autotune_fp64_n32", 32, "fp64", &r32));
    let mut last = autotune_json("autotune_fp32_n64", 64, "fp32", &r64f);
    last.truncate(last.trim_end().len() - 1); // drop trailing comma
    json.push_str(&last);
    json.push('\n');
    json.push_str(
        "  ],\n  \"backend\": \"blocked\", \"grid\": \"12x12x12\", \
         \"temperature_k\": 8000, \"table\": \"TUNING.json\"\n}\n",
    );
    std::fs::write("BENCH_fusion.json", &json).expect("write BENCH_fusion.json");
    println!("wrote BENCH_fusion.json and TUNING.json:\n{json}");
}
