//! Communication-substrate benchmarks: wall-clock cost of the mpisim
//! runtime executing the paper's exchange patterns with real data
//! movement (the virtual-clock *model* times are covered by the table1
//! binary; here we benchmark the runtime itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::{Cluster, NetworkModel};
use std::hint::black_box;

fn bench_exchange_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange_patterns");
    g.sample_size(10);
    let p = 4;
    let bytes = 1 << 18; // 256 KiB blocks

    g.bench_with_input(BenchmarkId::new("bcast_all_roots", p), &p, |b, &p| {
        b.iter(|| {
            Cluster::new(p, 2, NetworkModel::ideal()).run(|comm| {
                for root in 0..comm.size() {
                    let payload =
                        if comm.rank() == root { Some(vec![0u8; bytes]) } else { None };
                    let blk = comm.bcast(root, payload);
                    black_box(blk.len());
                }
            })
        })
    });

    g.bench_with_input(BenchmarkId::new("ring_rotation", p), &p, |b, &p| {
        b.iter(|| {
            Cluster::new(p, 2, NetworkModel::ideal()).run(|comm| {
                let right = (comm.rank() + 1) % comm.size();
                let left = (comm.rank() + comm.size() - 1) % comm.size();
                let mut blk = vec![0u8; bytes];
                for step in 0..comm.size() - 1 {
                    blk = comm.sendrecv(left, right, step as u64, blk);
                }
                black_box(blk.len());
            })
        })
    });

    g.bench_with_input(BenchmarkId::new("async_ring", p), &p, |b, &p| {
        b.iter(|| {
            Cluster::new(p, 2, NetworkModel::ideal()).run(|comm| {
                let right = (comm.rank() + 1) % comm.size();
                let left = (comm.rank() + comm.size() - 1) % comm.size();
                let mut blk = vec![0u8; bytes];
                for step in 0..comm.size() - 1 {
                    let rreq = comm.irecv(left, step as u64);
                    let _ = comm.isend(right, step as u64, blk.clone());
                    blk = comm.wait(rreq).expect("block");
                }
                black_box(blk.len());
            })
        })
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    let n = 1 << 16;

    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("allreduce_f64", p), &p, |b, &p| {
            b.iter(|| {
                Cluster::new(p, 2, NetworkModel::ideal())
                    .run(|comm| black_box(comm.allreduce(vec![1.0f64; n])[0]))
            })
        });
        g.bench_with_input(BenchmarkId::new("allreduce_node_aware", p), &p, |b, &p| {
            b.iter(|| {
                Cluster::new(p, 2, NetworkModel::ideal())
                    .run(|comm| black_box(comm.allreduce_node_aware(vec![1.0f64; n])[0]))
            })
        });
        g.bench_with_input(BenchmarkId::new("alltoallv", p), &p, |b, &p| {
            b.iter(|| {
                Cluster::new(p, 2, NetworkModel::ideal()).run(|comm| {
                    let chunks: Vec<Vec<f64>> =
                        (0..comm.size()).map(|_| vec![0.0f64; n / comm.size()]).collect();
                    black_box(comm.alltoallv(chunks).len())
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_exchange_patterns, bench_collectives);
criterion_main!(benches);
