//! Distributed-exchange overlap bench: the blocking ring (`Ring`) vs the
//! ring-pipelined overlapped exchange (`RingOverlap`) at 4/8/16 simulated
//! ranks on a Tofu-like network, with the pair Poisson solves charged to
//! the virtual clock at a roofline-derived per-solve cost. Reports the
//! simulated exchange step time per strategy, the speedup, and the
//! measured overlap efficiency (hidden / total wire time).
//!
//! Writes `BENCH_dist_overlap.json` (consumed by EXPERIMENTS.md §4 and
//! gated in CI by `bin/compare.rs`: the job fails if the overlapped
//! exchange is less than 1.25× the blocking ring at 16 ranks).

use mpisim::{Cluster, NetworkModel, Topology};
use ptim::distributed::{dist_fock_apply, BandDistribution, ExchangePlan, ExchangeStrategy};
use pwdft::{Cell, DftSystem, FockOperator, Wavefunction};

struct Row {
    ranks: usize,
    ring_s: f64,
    overlap_s: f64,
    overlap_efficiency: f64,
    solve_cost_s: f64,
}

fn main() {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.5, [12, 12, 12]);
    let ng = sys.grid.len();
    let n_bands = 32;
    let phi = Wavefunction::random(&sys.grid, n_bands, 11);
    let nat_r = phi.to_real_all(&sys.fft);
    let psi = Wavefunction::random(&sys.grid, n_bands, 12);
    let psi_r = psi.to_real_all(&sys.fft);
    let occ: Vec<f64> = (0..n_bands).map(|i| 1.0 / (1.0 + 0.05 * i as f64)).collect();

    // Tofu-like link (ring exchanges are single-hop on the torus); the
    // per-solve cost comes from the roofline FFT price of a pair's
    // forward+inverse round trip at this grid size on the ARM platform.
    let net = NetworkModel {
        topology: Topology::Torus(vec![4, 4]),
        hop_latency: 1e-6,
        sw_overhead: 0.5e-6,
        bandwidth: 1e9,
        shm_bandwidth: 1e10,
        shm_latency: 1e-7,
    };
    let pf = perfmodel::Platform::fugaku_arm();
    let ngf = ng as f64;
    let solve_cost = 2.0 * pf.kernel_time(5.0 * ngf * ngf.log2(), 6.0 * 16.0 * ngf);

    let measure = |p: usize, strategy: ExchangeStrategy| -> (f64, f64) {
        let out = Cluster::new(p, 4, net.clone()).run(|c| {
            let dist = BandDistribution::new(n_bands, c.size());
            let my = dist.range(c.rank());
            let fock = FockOperator::new(&sys.grid, 0.106);
            let nat_local = nat_r[my.start * ng..my.end * ng].to_vec();
            let psi_local = psi_r[my.start * ng..my.end * ng].to_vec();
            let plan = ExchangePlan { strategy, solve_cost_s: solve_cost };
            let _ = dist_fock_apply(c, &fock, &dist, &nat_local, &occ, &psi_local, plan);
            (c.now(), c.stats.overlap_efficiency())
        });
        let step = out.iter().map(|((t, _), _)| *t).fold(0.0f64, f64::max);
        let eff = out.iter().map(|((_, e), _)| *e).fold(1.0f64, f64::min);
        (step, eff)
    };

    let rows: Vec<Row> = [4usize, 8, 16]
        .iter()
        .map(|&p| {
            let (ring_s, _) = measure(p, ExchangeStrategy::Ring);
            let (overlap_s, overlap_efficiency) = measure(p, ExchangeStrategy::RingOverlap);
            Row { ranks: p, ring_s, overlap_s, overlap_efficiency, solve_cost_s: solve_cost }
        })
        .collect();

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"dist_overlap_p{}\", \"ranks\": {}, \"ring_s\": {:.6e}, \
             \"overlap_s\": {:.6e}, \"speedup\": {:.3}, \"overlap_efficiency\": {:.3}, \
             \"solve_cost_s\": {:.3e}}}{}\n",
            r.ranks,
            r.ranks,
            r.ring_s,
            r.overlap_s,
            r.ring_s / r.overlap_s,
            r.overlap_efficiency,
            r.solve_cost_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"bands\": {n_bands}, \"grid\": \"12x12x12\", \"network\": \"torus4x4_1GBps\"\n}}\n"
    ));
    std::fs::write("BENCH_dist_overlap.json", &json).expect("write BENCH_dist_overlap.json");
    println!("wrote BENCH_dist_overlap.json:\n{json}");
}
