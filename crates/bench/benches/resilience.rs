//! Resilience bench: checkpoint overhead and restart fidelity for the
//! `ptim::resilience` run driver (DESIGN.md §12).
//!
//! Measures, on a hybrid PT-IM run (Blocked backend, 8³ grid, dense
//! exchange):
//!
//! * the per-step cost of the checkpoint cadence — one atomic
//!   `ckpt_*.ptck` write amortized over `interval` steps, reported as
//!   `overhead_frac` = save time / (interval × step time);
//! * restart fidelity — a run interrupted after the first checkpoint and
//!   restored from disk must land **bitwise** on the uninterrupted run's
//!   final state (`restart_max_diff`, deterministic dynamics).
//!
//! Writes `BENCH_resilience.json`, gated in CI by `bin/compare.rs`:
//! `overhead_frac` ≤ 0.05 and `restart_max_diff` ≤ 0.0 at interval 10.
//! Also leaves one `sample_checkpoint.ptck` in the bench directory for
//! the CI artifact upload.

use ptim::resilience::{run, Checkpoint, CheckpointPolicy, Propagator, RecoveryPolicy};
use ptim::{HybridParams, LaserPulse, PtimConfig, TdEngine, TdState};
use pwdft::{Cell, DftSystem, Wavefunction};
use pwdft_bench::median_secs;
use pwnum::cmat::CMat;
use std::hint::black_box;
use std::path::PathBuf;

const STEPS: u64 = 20;

fn fixture() -> (DftSystem, TdState, HybridParams, LaserPulse) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let mut phi = Wavefunction::random(&sys.grid, 4, 11);
    phi.orthonormalize_lowdin();
    let sigma = CMat::from_real_diag(&[1.0, 0.8, 0.5, 0.2]);
    let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    let laser = LaserPulse { e0: 0.01, omega: 0.15, t_center: 5.0, t_width: 2.0 };
    (sys, TdState { phi, sigma, time: 0.0 }, hyb, laser)
}

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join(format!("pwdft_bench_resilience_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

struct Row {
    interval: u64,
    step_s: f64,
    save_s: f64,
    ckpt_bytes: u64,
    overhead_frac: f64,
    restart_max_diff: f64,
}

fn measure(interval: u64) -> Row {
    let (sys, st, hyb, laser) = fixture();
    let prop =
        Propagator::Ptim(PtimConfig { dt: 0.3, max_scf: 25, tol_rho: 1e-8, ..Default::default() });
    let recovery = RecoveryPolicy::default();

    // Per-step cost on a bare engine (no checkpoint policy).
    let eng = TdEngine::new(&sys, laser.clone(), hyb);
    let step_s = median_secs(5, || {
        black_box(prop.step(&eng, black_box(&st)));
    });

    // Per-write cost + file size of one checkpoint.
    let dir = bench_dir("save");
    let mut path = PathBuf::new();
    let save_s = median_secs(5, || {
        path = Checkpoint::save(&dir, 1, &st, &prop, &eng.laser).expect("checkpoint write");
    });
    let ckpt_bytes = std::fs::metadata(&path).expect("checkpoint stat").len();
    // Keep one copy in the bench CWD (crates/bench/, like TUNING.json) so
    // CI can upload it as the sample-checkpoint artifact.
    std::fs::copy(&path, "sample_checkpoint.ptck").expect("persist sample checkpoint");
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // Restart fidelity: uninterrupted 0..STEPS vs interrupted-at-first-
    // checkpoint + restored-from-disk continuation. Deterministic
    // dynamics make bitwise agreement the pass bar.
    let baseline = run(&eng, &st, 0, STEPS, &prop, &recovery).expect("baseline run");
    let dir = bench_dir(&format!("restart_{interval}"));
    let eng_ck = TdEngine::new(&sys, laser, hyb)
        .with_checkpoints(CheckpointPolicy::new(&dir, interval));
    // "Interrupt" just past the first checkpoint...
    let _partial = run(&eng_ck, &st, 0, interval + 1, &prop, &recovery).expect("partial run");
    // ...then restart the binary: load the newest checkpoint and continue.
    let ck = Checkpoint::load_latest(&dir, &st).expect("readable dir").expect("checkpoint");
    assert_eq!(ck.meta.step, interval);
    let resumed =
        run(&eng_ck, &ck.state, ck.meta.step, STEPS, &prop, &recovery).expect("resumed run");
    let restart_max_diff = resumed
        .state
        .phi
        .max_abs_diff(&baseline.state.phi)
        .max(resumed.state.sigma.max_abs_diff(&baseline.state.sigma))
        .max((resumed.state.time - baseline.state.time).abs());
    std::fs::remove_dir_all(&dir).expect("cleanup");

    Row {
        interval,
        step_s,
        save_s,
        ckpt_bytes,
        overhead_frac: save_s / (interval as f64 * step_s),
        restart_max_diff,
    }
}

fn main() {
    let rows = vec![measure(5), measure(10)];
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"checkpoint_interval{}\", \"interval\": {}, \"steps\": {STEPS}, \
             \"step_s\": {:.6e}, \"ckpt_save_s\": {:.6e}, \"ckpt_bytes\": {}, \
             \"overhead_frac\": {:.6}, \"restart_max_diff\": {:.1e}}}{comma}\n",
            r.interval, r.interval, r.step_s, r.save_s, r.ckpt_bytes, r.overhead_frac,
            r.restart_max_diff,
        ));
    }
    json.push_str(
        "  ],\n  \"backend\": \"blocked\", \"grid\": \"8x8x8\", \"bands\": 4, \
         \"propagator\": \"ptim\", \"alpha\": 0.25\n}\n",
    );
    std::fs::write("BENCH_resilience.json", &json).expect("write BENCH_resilience.json");
    println!("wrote BENCH_resilience.json:\n{json}");
}
