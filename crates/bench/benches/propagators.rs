//! Propagator-level benchmarks: one time step of RK4 vs PT-IM vs
//! PT-IM-ACE on a small silicon system — the wall-clock miniature of the
//! paper's Fig. 9 algorithmic story (ACE cuts the number of Fock builds;
//! PT-IM tolerates 100× larger steps than RK4).

use criterion::{criterion_group, criterion_main, Criterion};
use ptim::{
    ptim_ace_step, ptim_step, rk4_step, HybridParams, LaserPulse, PtimAceConfig, PtimConfig,
    Rk4Config, TdEngine, TdState,
};
use pwdft::{Cell, DftSystem, Wavefunction};
use pwnum::cmat::CMat;
use std::hint::black_box;

fn fixture() -> (DftSystem, TdState) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
    let mut phi = Wavefunction::random(&sys.grid, 4, 23);
    phi.orthonormalize_lowdin();
    let sigma = CMat::from_real_diag(&[1.0, 0.8, 0.5, 0.2]);
    (sys, TdState { phi, sigma, time: 0.0 })
}

fn bench_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagator_step");
    g.sample_size(10);
    let (sys, st) = fixture();
    let hyb = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };
    let eng = TdEngine::new(&sys, LaserPulse::off(), hyb);

    // RK4 covering the same physical time as one PT-IM step needs many
    // sub-steps; bench a single sub-step (multiply by ~100 mentally).
    g.bench_function("rk4_substep", |b| {
        b.iter(|| rk4_step(&eng, black_box(&st), &Rk4Config { dt: 0.02 }))
    });

    g.bench_function("ptim_dense_step", |b| {
        b.iter(|| {
            ptim_step(
                &eng,
                black_box(&st),
                &PtimConfig { dt: 0.5, max_scf: 15, tol_rho: 1e-7, ..Default::default() },
            )
        })
    });

    g.bench_function("ptim_ace_step", |b| {
        b.iter(|| {
            ptim_ace_step(
                &eng,
                black_box(&st),
                &PtimAceConfig { dt: 0.5, tol_rho: 1e-7, ..Default::default() },
            )
        })
    });
    g.finish();
}

fn bench_density(c: &mut Criterion) {
    // The σ-diagonalization payoff on the density (Sec. IV-A1): pair loop
    // vs natural-orbital sum.
    let mut g = c.benchmark_group("mixed_density");
    g.sample_size(20);
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let phi = Wavefunction::random(&sys.grid, 12, 3);
    let mut sigma = CMat::from_real_diag(
        &(0..12).map(|i| 1.0 / (1.0 + ((i as f64 - 6.0) * 0.8).exp())).collect::<Vec<_>>(),
    );
    // Dense off-diagonal structure.
    for i in 0..12 {
        for j in 0..12 {
            if i != j {
                sigma[(i, j)] = pwnum::c64(0.01 / (1.0 + (i + j) as f64), 0.005);
                sigma[(j, i)] = sigma[(i, j)].conj();
            }
        }
    }
    let sigma = sigma.hermitian_part();

    g.bench_function("baseline_pair_loop", |b| {
        b.iter(|| {
            pwdft::density::density_mixed_baseline(
                &sys.grid,
                &sys.fft,
                black_box(&phi),
                black_box(&sigma),
            )
        })
    });
    g.bench_function("diagonalized", |b| {
        b.iter(|| {
            let nat = pwdft::density::natural_orbitals(black_box(&phi), black_box(&sigma));
            pwdft::density::density_from_natural(&sys.grid, &sys.fft, &nat)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_steps, bench_density);
criterion_main!(benches);
