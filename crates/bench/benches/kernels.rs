//! Kernel microbenchmarks: the computational primitives whose costs
//! drive the paper's optimization story (FFTs, Fock exchange baseline vs
//! diagonalized, ACE application, eigensolver, overlaps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwdft::{Cell, DftSystem, FockOperator, Wavefunction};
use pwfft::Fft3;
use pwnum::cmat::{random_hermitian, CMat};
use pwnum::complex::{c64, Complex64};
use pwnum::eigh;
use std::hint::black_box;

fn lcg(seed: &mut u64) -> f64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

fn bench_fft3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft3");
    for n in [8usize, 12, 16, 20] {
        let fft = Fft3::new(n, n, n);
        let mut seed = 7u64;
        let data: Vec<Complex64> =
            (0..fft.len()).map(|_| c64(lcg(&mut seed), lcg(&mut seed))).collect();
        g.bench_with_input(BenchmarkId::new("forward", n * n * n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                fft.forward(black_box(&mut d));
                d[0]
            })
        });
    }
    g.finish();
}

fn bench_fock(c: &mut Criterion) {
    // The headline kernel: mixed-state Fock exchange, Alg. 2 triple loop
    // vs the σ-diagonalized form (paper Sec. IV-A1, Fig. 2).
    let mut g = c.benchmark_group("fock_exchange");
    g.sample_size(10);
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
    for n_bands in [4usize, 8] {
        let phi = Wavefunction::random(&sys.grid, n_bands, 3);
        // Dense Hermitian σ with fractional eigenvalues.
        let mut seed = 5u64;
        let h = random_hermitian(n_bands, || lcg(&mut seed));
        let e = eigh(&h);
        let occ: Vec<f64> = e.values.iter().map(|w| 1.0 / (1.0 + (2.0 * w).exp())).collect();
        let sigma = {
            let d = CMat::from_real_diag(&occ);
            let vd = e.vectors.matmul(&d);
            pwnum::gemm::gemm(
                Complex64::ONE,
                &vd,
                pwnum::gemm::Op::None,
                &e.vectors,
                pwnum::gemm::Op::ConjTrans,
                Complex64::ZERO,
                None,
            )
        };
        let fock = FockOperator::new(&sys.grid, 0.106);
        let phi_r = phi.to_real_all(&sys.fft);
        let nat = pwdft::density::natural_orbitals(&phi, &sigma);
        let nat_r = nat.phi.to_real_all(&sys.fft);

        g.bench_with_input(
            BenchmarkId::new("baseline_triple_loop", n_bands),
            &n_bands,
            |b, _| b.iter(|| fock.apply_mixed_baseline(black_box(&phi_r), black_box(&sigma))),
        );
        g.bench_with_input(BenchmarkId::new("diagonalized", n_bands), &n_bands, |b, _| {
            b.iter(|| fock.apply_diag(black_box(&nat_r), black_box(&nat.occ), black_box(&phi_r)))
        });
    }
    g.finish();
}

fn bench_ace(c: &mut Criterion) {
    // ACE apply (2 GEMMs) vs a dense Fock application — the inner-loop
    // saving of PT-IM-ACE (Sec. IV-A2).
    let mut g = c.benchmark_group("ace_vs_dense");
    g.sample_size(10);
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let n_bands = 8;
    let phi = Wavefunction::random(&sys.grid, n_bands, 13);
    let occ = vec![1.0; n_bands];
    let fock = FockOperator::new(&sys.grid, 0.106);
    let phi_r = phi.to_real_all(&sys.fft);
    let vx = fock.apply_diag(&phi_r, &occ, &phi_r);
    let mut w = Wavefunction::from_real(&sys.grid, &sys.fft, vx);
    w.mask(&sys.grid);
    let ace = pwdft::AceOperator::build(&phi, &w);

    g.bench_function("dense_vx", |b| {
        b.iter(|| fock.apply_diag(black_box(&phi_r), black_box(&occ), black_box(&phi_r)))
    });
    g.bench_function("ace_apply", |b| {
        b.iter(|| {
            let mut out = vec![Complex64::ZERO; phi.data.len()];
            ace.apply_add(black_box(&phi), 0.25, &mut out);
            out[0]
        })
    });
    g.finish();
}

fn bench_linalg(c: &mut Criterion) {
    let mut g = c.benchmark_group("subspace_linalg");
    // σ diagonalization at Fig. 7 scale (24 states) and larger.
    for n in [24usize, 48] {
        let mut seed = 3u64;
        let a = random_hermitian(n, || lcg(&mut seed));
        g.bench_with_input(BenchmarkId::new("eigh", n), &n, |b, _| {
            b.iter(|| eigh(black_box(&a)))
        });
    }
    // Overlap of wavefunction blocks (the Φ*Φ of the paper).
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let wf = Wavefunction::random(&sys.grid, 16, 9);
    g.bench_function("overlap_16x512", |b| b.iter(|| wf.overlap(black_box(&wf))));
    g.finish();
}

criterion_group!(benches, bench_fft3, bench_fock, bench_ace, bench_linalg);
criterion_main!(benches);
