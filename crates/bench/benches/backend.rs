//! Backend-comparison smoke bench: `Reference` vs `Blocked` on the two
//! primitives the paper's hot path is made of — the Fock `apply_diag`
//! (batched Poisson solves) and the N×N subspace GEMM — plus the batched
//! 3-D FFT they are built from.
//!
//! Besides the criterion output, `main` writes `BENCH_backend.json` with
//! median per-iteration times and the Blocked-over-Reference speedups
//! (consumed by EXPERIMENTS.md §"Backend comparison").

use criterion::{criterion_group, BenchmarkId, Criterion};
use pwdft::{Cell, DftSystem, FockOperator, Wavefunction};
use pwdft_bench::{backend_for_platform, median_secs};
use pwnum::backend::{by_name, BackendHandle};
use pwnum::cmat::CMat;
use pwnum::complex::{c64, Complex64};
use pwnum::gemm::Op;
use std::hint::black_box;

fn backends() -> [BackendHandle; 2] {
    [by_name("reference").unwrap(), by_name("blocked").unwrap()]
}

fn test_mat(n: usize, phase: f64) -> CMat {
    CMat::from_fn(n, n, |i, j| {
        c64(((i * 7 + j * 3) as f64 * 0.37 + phase).sin(), (i as f64 - 0.5 * j as f64).cos())
    })
}

/// The Fock fixture used by both the criterion groups and the JSON
/// measurements: an 8-band block on a 20³ grid (CI-sized but large
/// enough that the batched Poisson path dominates).
fn fock_fixture() -> (DftSystem, Vec<Complex64>, Vec<f64>) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [20, 20, 20]);
    let phi = Wavefunction::random(&sys.grid, 8, 3);
    let phi_r = phi.to_real_all(&sys.fft);
    let occ = vec![1.0, 1.0, 0.9, 0.8, 0.6, 0.4, 0.2, 0.1];
    (sys, phi_r, occ)
}

fn bench_fock_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_fock_apply_diag");
    g.sample_size(10);
    let (sys, phi_r, occ) = fock_fixture();
    for be in backends() {
        let fock = FockOperator::with_backend(&sys.grid, 0.106, be.clone());
        g.bench_with_input(BenchmarkId::new("apply_diag", be.name()), &be, |b, _| {
            b.iter(|| fock.apply_diag(black_box(&phi_r), black_box(&occ), black_box(&phi_r)))
        });
    }
    g.finish();
}

fn bench_subspace_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_subspace_gemm");
    for n in [64usize, 128] {
        let a = test_mat(n, 0.3);
        let b = test_mat(n, 1.1);
        for be in backends() {
            g.bench_with_input(
                BenchmarkId::new(format!("gemm_{n}"), be.name()),
                &be,
                |bch, be| {
                    bch.iter(|| {
                        be.gemm(
                            Complex64::ONE,
                            black_box(&a),
                            Op::ConjTrans,
                            black_box(&b),
                            Op::None,
                            Complex64::ZERO,
                            None,
                        )
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_batched_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_batched_fft");
    g.sample_size(10);
    let fft = pwfft::Fft3::new(20, 20, 20);
    let count = 16;
    let mut seed = 9u64;
    let mut lcg = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let data: Vec<Complex64> = (0..fft.len() * count).map(|_| c64(lcg(), lcg())).collect();
    for be in backends() {
        g.bench_with_input(BenchmarkId::new("forward_many", be.name()), &be, |b, be| {
            b.iter(|| {
                let mut d = data.clone();
                fft.forward_many_with(&**be, &mut d, count);
                d[0]
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fock_apply, bench_subspace_gemm, bench_batched_fft);

fn main() {
    benches();

    // Head-to-head medians for the JSON artifact.
    let (sys, phi_r, occ) = fock_fixture();
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    {
        let times: Vec<f64> = backends()
            .iter()
            .map(|be| {
                let fock = FockOperator::with_backend(&sys.grid, 0.106, be.clone());
                median_secs(7, || {
                    black_box(fock.apply_diag(&phi_r, &occ, &phi_r));
                })
            })
            .collect();
        rows.push(("fock_apply_diag_8band_20cube".into(), times[0], times[1]));
    }
    {
        let n = 128;
        let a = test_mat(n, 0.3);
        let b = test_mat(n, 1.1);
        let times: Vec<f64> = backends()
            .iter()
            .map(|be| {
                median_secs(9, || {
                    black_box(be.gemm(
                        Complex64::ONE,
                        &a,
                        Op::ConjTrans,
                        &b,
                        Op::None,
                        Complex64::ZERO,
                        None,
                    ));
                })
            })
            .collect();
        rows.push(("subspace_gemm_128".into(), times[0], times[1]));
    }
    {
        let fft = pwfft::Fft3::new(20, 20, 20);
        let count = 16;
        let base: Vec<Complex64> =
            (0..fft.len() * count).map(|k| c64((k as f64 * 0.13).sin(), 0.0)).collect();
        let times: Vec<f64> = backends()
            .iter()
            .map(|be| {
                // Clone inside the timed body, matching the criterion
                // variant, so values never accumulate across iterations.
                median_secs(9, || {
                    let mut d = base.clone();
                    fft.forward_many_with(&**be, &mut d, count);
                    black_box(d[0]);
                })
            })
            .collect();
        rows.push(("batched_fft_16x20cube".into(), times[0], times[1]));
    }

    // Platform→backend mapping sanity (the ARM-vs-GPU split).
    let arm = backend_for_platform(&perfmodel::platform::Platform::fugaku_arm());
    let gpu = backend_for_platform(&perfmodel::platform::Platform::gpu_a100());

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, t_ref, t_blk)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"reference_s\": {t_ref:.6e}, \
             \"blocked_s\": {t_blk:.6e}, \"speedup_blocked\": {:.3}}}{}\n",
            t_ref / t_blk,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"platform_backends\": {{\"arm\": \"{}\", \"gpu\": \"{}\"}}\n}}\n",
        arm.name(),
        gpu.name()
    ));
    std::fs::write("BENCH_backend.json", &json).expect("write BENCH_backend.json");
    println!("\nwrote BENCH_backend.json:\n{json}");
}
