//! Mixed-precision exchange bench: the all-fp64 Fock `apply_diag`
//! pipeline vs the fp32 pipeline (fp32 pair densities + fp32 Poisson
//! round trips + two-sum-compensated fp64 accumulation) on the Blocked
//! backend, at N ∈ {32, 64} bands with Fermi–Dirac occupations at the
//! paper's 8000 K — plus the accuracy half of the story: the max
//! apply-level deviation, and the dipole-trace / energy deviation of a
//! 20-step hybrid RT-TDDFT run under the mixed policy vs the all-fp64
//! run.
//!
//! Writes `BENCH_mixed_precision.json` (consumed by EXPERIMENTS.md §4
//! and gated in CI by `bin/compare.rs`: ≥ 1.4× speedup at N = 64 and
//! dipole-trace agreement within the documented tolerance). Both sides
//! run the staged tile scheduler so the ratio isolates precision; the
//! fused pipeline's own speedup is gated in `BENCH_fusion.json`.

use perfmodel::platform::Platform;
use ptim::{rk4_step, HybridParams, LaserPulse, Rk4Config, TdEngine, TdState};
use pwdft::fock::FockOptions;
use pwdft::smearing::{occupations, KB_HARTREE};
use pwdft::{Cell, DftSystem, FockOperator, PwGrid, Wavefunction};
use pwdft_bench::{backend_for_platform, median_secs, precision_for_platform};
use pwnum::cmat::CMat;
use pwnum::precision::PrecisionPolicy;
use std::hint::black_box;

struct SpeedRow {
    name: String,
    bands: usize,
    fp64_s: f64,
    mixed_s: f64,
    solves: usize,
    solves_fp32: usize,
    apply_err: f64,
}

/// One head-to-head `apply_pure` measurement at `n` bands on the
/// Blocked backend (the accelerator path the mixed policy targets).
fn measure(grid: &PwGrid, n: usize, iters: usize) -> SpeedRow {
    let fft = grid.fft();
    let kt = KB_HARTREE * 8000.0;
    let eigs: Vec<f64> = (0..n).map(|i| -0.0025 * n as f64 + 0.005 * i as f64).collect();
    let (_, occ) = occupations(&eigs, n as f64, kt);
    let wf = Wavefunction::random(grid, n, 3);
    let phi_r = wf.to_real_all(&fft);
    // The accelerator platform default: Blocked backend + mixed policy
    // (fp32 exchange); the fp64 side runs the same backend so the ratio
    // isolates precision. Both sides are pinned to the staged tile
    // scheduler (`with_fused(false)`) so the ratio keeps measuring the
    // precision effect alone: under the fused default the fp64 pipeline
    // sheds most of the memory traffic fp32 was saving, and the gap
    // narrows to ~1.05x at this size (fusion's win is reported
    // separately in BENCH_fusion.json).
    let gpu = Platform::gpu_a100();
    let be = backend_for_platform(&gpu);
    let policy = precision_for_platform(&gpu);
    assert!(policy.exchange.reduced(), "GPU platform default must reduce exchange");
    let fp64 = FockOperator::with_options(
        grid,
        0.106,
        be.clone(),
        FockOptions::default().with_fused(false),
    );
    let mixed = FockOperator::with_options(
        grid,
        0.106,
        be,
        FockOptions { precision: policy, ..Default::default() }.with_fused(false),
    );

    let (v64, s64) = fp64.apply_pure_stats(&phi_r, &occ);
    let (v32, s32) = mixed.apply_pure_stats(&phi_r, &occ);
    assert_eq!(s64.solves, s32.solves);
    assert_eq!(s32.solves_fp32, s32.solves);
    let scale = v64.iter().map(|z| z.abs()).fold(0.0f64, f64::max).max(1e-300);
    let apply_err = pwnum::cvec::max_abs_diff(&v64, &v32) / scale;

    let fp64_s = median_secs(iters, || {
        black_box(fp64.apply_pure(black_box(&phi_r), black_box(&occ)));
    });
    let mixed_s = median_secs(iters, || {
        black_box(mixed.apply_pure(black_box(&phi_r), black_box(&occ)));
    });
    SpeedRow {
        name: format!("fock_mixed_n{n}"),
        bands: n,
        fp64_s,
        mixed_s,
        solves: s64.solves,
        solves_fp32: s32.solves_fp32,
        apply_err,
    }
}

/// 20-step hybrid RT-TDDFT dipole/energy accuracy gate: CI-scale
/// system, RK4 (fixed Fock count per step), laser on.
fn dipole_gate(steps: usize) -> (f64, f64, usize) {
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [6, 6, 6]);
    let mut phi = Wavefunction::random(&sys.grid, 3, 23);
    phi.orthonormalize_lowdin();
    let st0 = TdState {
        phi,
        sigma: CMat::from_real_diag(&[1.0, 0.7, 0.4]),
        time: 0.0,
    };
    let laser = LaserPulse { e0: 0.05, omega: 0.15, t_center: 0.15, t_width: 0.1 };
    let run = |policy: PrecisionPolicy| {
        let eng = TdEngine::new(
            &sys,
            laser.clone(),
            HybridParams {
                alpha: 0.25,
                omega: 0.2,
                fock: FockOptions { precision: policy, ..Default::default() },
            },
        );
        let cfg = Rk4Config { dt: 0.02 };
        let mut s = st0.clone();
        let mut dip = Vec::with_capacity(steps);
        let mut promotions = 0;
        for _ in 0..steps {
            let (next, stats) = rk4_step(&eng, &s, &cfg);
            promotions += stats.precision_promotions;
            s = next;
            let ev = eng.eval(&s.phi, &s.sigma, s.time);
            dip.push(eng.dipole_x(&ev.rho));
        }
        (dip, eng.total_energy(&s).total(), promotions)
    };
    let (d64, e64, _) = run(PrecisionPolicy::fp64());
    let (dmx, emx, promotions) = run(PrecisionPolicy::mixed());
    let dipole_err = d64
        .iter()
        .zip(&dmx)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let energy_err = (e64 - emx).abs() / e64.abs().max(1.0);
    (dipole_err, energy_err, promotions)
}

fn main() {
    let cell = Cell::silicon_supercell(1, 1, 1);
    let grid = PwGrid::with_dims(&cell, 2.0, [12, 12, 12]);

    let rows = vec![measure(&grid, 32, 7), measure(&grid, 64, 5)];
    let steps = 20;
    let (dipole_err, energy_err, promotions) = dipole_gate(steps);

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for r in &rows {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"bands\": {}, \"fp64_s\": {:.6e}, \
             \"mixed_s\": {:.6e}, \"speedup\": {:.3}, \"solves\": {}, \
             \"solves_fp32\": {}, \"apply_rel_err\": {:.3e}}},\n",
            r.name,
            r.bands,
            r.fp64_s,
            r.mixed_s,
            r.fp64_s / r.mixed_s,
            r.solves,
            r.solves_fp32,
            r.apply_err,
        ));
    }
    json.push_str(&format!(
        "    {{\"name\": \"mixed_dipole_trace\", \"steps\": {steps}, \
         \"dipole_err\": {dipole_err:.3e}, \"energy_rel_err\": {energy_err:.3e}, \
         \"promotions\": {promotions}}}\n"
    ));
    json.push_str(
        "  ],\n  \"backend\": \"blocked\", \"grid\": \"12x12x12\", \
         \"temperature_k\": 8000, \"policy\": \"mixed (fp32 exchange, \
         compensated fp64 accumulation)\"\n}\n",
    );
    std::fs::write("BENCH_mixed_precision.json", &json).expect("write BENCH_mixed_precision.json");
    println!("wrote BENCH_mixed_precision.json:\n{json}");
}
