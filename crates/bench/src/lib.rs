//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every binary accepts `--full` for paper-scale parameters; the default
//! is a CI-scale configuration that exercises the identical code paths in
//! seconds. `EXPERIMENTS.md` records both.

use mpisim::Cluster;
use perfmodel::platform::Platform;
use pwdft::{scf_hybrid, scf_lda, Cell, DftSystem, GroundState, HybridConfig, ScfConfig};
use pwnum::backend::{by_name, BackendHandle};
use pwnum::precision::PrecisionPolicy;

/// Harness options parsed from the command line.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOpts {
    /// Run at (closer to) paper scale instead of CI scale.
    pub full: bool,
}

impl HarnessOpts {
    /// Parses `--full` from `std::env::args`.
    pub fn from_args() -> HarnessOpts {
        let full = std::env::args().any(|a| a == "--full");
        HarnessOpts { full }
    }
}

/// The 8-atom silicon cell of the paper's accuracy experiments (Fig. 7/8)
/// at a CI-friendly cutoff.
pub fn si8_system(opts: &HarnessOpts) -> DftSystem {
    if opts.full {
        // Paper settings: Ecut = 10 Ha (grid chosen automatically).
        DftSystem::new(Cell::silicon_supercell(1, 1, 1), 10.0)
    } else {
        DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 3.0, [10, 10, 10])
    }
}

/// Prepares the finite-temperature hybrid ground state `(Φ(0), σ(0))`
/// for the 8-atom system with `n_bands` states at temperature `temp_k`.
pub fn prepare_ground_state(
    sys: &DftSystem,
    n_bands: usize,
    temp_k: f64,
    hybrid: bool,
) -> GroundState {
    let cfg = ScfConfig {
        n_bands,
        temperature_k: temp_k,
        tol_rho: 1e-6,
        max_scf: 60,
        davidson_iters: 8,
        davidson_tol: 1e-7,
        mix_depth: 15,
        mix_beta: 0.6,
        seed: 7,
    };
    let gs = scf_lda(sys, &cfg);
    if hybrid {
        let hyb = HybridConfig { outer_iters: 3, ..Default::default() };
        scf_hybrid(sys, &cfg, &hyb, gs)
    } else {
        gs
    }
}

/// Maps a modeled platform to the compute backend that mirrors its
/// execution style — the paper's ARM-vs-GPU split: the A64FX path runs
/// the per-call scalar/threaded kernels (`reference`), while the GPU
/// path batches kernels behind the accelerator-style `blocked` backend
/// (multi-batch FFTs, pooled buffers; Sec. III-B).
pub fn backend_for_platform(platform: &Platform) -> BackendHandle {
    let name = if platform.accelerator { "blocked" } else { "reference" };
    by_name(name).expect("built-in backend")
}

/// Maps a modeled platform to its default precision policy — the
/// paper's fp32 playbook: accelerator-style platforms (GPU) run the
/// exchange Poisson solves in fp32 with compensated fp64 accumulation
/// ([`PrecisionPolicy::mixed`]), while the ARM path stays all-fp64
/// ([`PrecisionPolicy::fp64`]).
pub fn precision_for_platform(platform: &Platform) -> PrecisionPolicy {
    if platform.accelerator {
        PrecisionPolicy::mixed()
    } else {
        PrecisionPolicy::fp64()
    }
}

// ---------------------------------------------------------------------------
// Paper-scale distributed runs (Fig. 10/11 at 128–512 simulated ranks).
//
// One canonical configuration shared by the fig10/fig11 binaries and the
// root integration tests: the *real* `dist_ptim_step` (RingOverlap
// exchange, SHM-backed σ, hierarchical collectives) on a Fugaku-like
// network, timed on the mpisim virtual clock, next to the two-level
// closed-form prediction (`perfmodel::dist_step_sim_time`).
// ---------------------------------------------------------------------------

/// Ranks per node in the scaling runs (one rank per A64FX CMG).
pub const DIST_SCALE_RPN: usize = 4;
/// Modeled compute seconds charged per exchange pair solve.
pub const DIST_SCALE_SOLVE_COST_S: f64 = 2e-5;
/// SCF corrector iterations (the predictor adds one more evaluation).
pub const DIST_SCALE_MAX_SCF: usize = 1;
/// FFT grid of the scaling system (ng = 512).
pub const DIST_SCALE_DIMS: [usize; 3] = [8, 8, 8];

/// One measured (or modeled) scaling point for `BENCH_dist_scale.json`.
#[derive(Clone, Debug)]
pub struct DistScalePoint {
    /// Simulated MPI ranks.
    pub ranks: usize,
    /// Total bands N.
    pub n_bands: usize,
    /// Step time (s): virtual-clock max over ranks, or the model value
    /// when `source == "model"`.
    pub step_s: f64,
    /// Closed-form prediction (s).
    pub model_s: f64,
    /// Where `step_s` came from: `"simulator"` or `"model"`.
    pub source: &'static str,
}

impl DistScalePoint {
    /// Measured-over-model agreement ratio.
    pub fn ratio(&self) -> f64 {
        self.step_s / self.model_s
    }
}

/// The Fugaku-like network the scaling runs simulate.
pub fn dist_scale_net(p: usize) -> mpisim::NetworkModel {
    mpisim::NetworkModel::fugaku(p.div_ceil(DIST_SCALE_RPN))
}

/// Platform whose parameters mirror [`dist_scale_net`] so the closed
/// forms and the simulator price every message identically: per-link
/// bandwidth (not the per-rank share), single-hop torus latency.
pub fn dist_scale_platform() -> Platform {
    let net = dist_scale_net(DIST_SCALE_RPN);
    let mut pf = Platform::fugaku_arm();
    pf.net_bw = net.bandwidth;
    pf.net_latency = net.sw_overhead + net.hop_latency;
    pf.shm_bw = net.shm_bandwidth;
    pf.shm_latency = net.shm_latency;
    pf.ranks_per_node = DIST_SCALE_RPN;
    pf
}

/// Closed-form prediction for one scaling point.
pub fn dist_scale_model_s(p: usize, n_bands: usize) -> f64 {
    let ng = DIST_SCALE_DIMS.iter().product();
    let shape = perfmodel::DistStepShape {
        p,
        n_bands,
        ng,
        solve_cost_s: DIST_SCALE_SOLVE_COST_S,
        max_scf: DIST_SCALE_MAX_SCF,
    };
    perfmodel::dist_step_sim_time(&dist_scale_platform(), &shape)
}

/// Runs one real `dist_ptim_step` at `p` simulated ranks and returns the
/// virtual-clock step time (max over ranks).
pub fn measure_dist_step(p: usize, n_bands: usize) -> f64 {
    measure_dist_step_stats(p, n_bands).0
}

/// [`measure_dist_step`] keeping every rank's communication profile:
/// returns the step time plus the per-rank [`mpisim::RankReport`]s (in
/// rank order) for [`write_rank_stats_jsonl`].
pub fn measure_dist_step_stats(p: usize, n_bands: usize) -> (f64, Vec<mpisim::RankReport>) {
    use ptim::distributed::{
        dist_ptim_step, scatter_state, BandDistribution, DistConfig, ExchangeStrategy,
    };
    use ptim::engine::HybridParams;
    use ptim::laser::LaserPulse;
    use ptim::state::TdState;
    use pwnum::cmat::CMat;

    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, DIST_SCALE_DIMS);
    let mut phi = pwdft::Wavefunction::random(&sys.grid, n_bands, 7);
    phi.orthonormalize_lowdin();
    // Finite-temperature-style occupations, all above the Fock cutoff.
    let occ: Vec<f64> = (0..n_bands).map(|i| 1.0 / (1.0 + 0.2 * i as f64)).collect();
    let st = TdState { phi, sigma: CMat::from_real_diag(&occ), time: 0.0 };
    let laser = LaserPulse::off();
    let hybrid = HybridParams { alpha: 0.25, omega: 0.2, ..Default::default() };

    let sys_ref = &sys;
    let laser_ref = &laser;
    let st_ref = &st;
    let out = Cluster::new(p, DIST_SCALE_RPN, dist_scale_net(p)).run(move |c| {
        let dist = BandDistribution::new(n_bands, c.size());
        let local = scatter_state(c, st_ref, &dist);
        let cfg = DistConfig {
            strategy: ExchangeStrategy::RingOverlap,
            use_shm: true,
            hybrid,
            solve_cost_s: DIST_SCALE_SOLVE_COST_S,
        };
        let _ = dist_ptim_step(
            c,
            sys_ref,
            laser_ref,
            &cfg,
            &dist,
            &local,
            0.1,
            DIST_SCALE_MAX_SCF,
            0.0,
        );
        c.now()
    });
    let step_s = out.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    let reports = out.into_iter().map(|(_, r)| r).collect();
    (step_s, reports)
}

/// Appends one JSONL line per rank to `path`: `{"label": ..., ` then the
/// flat [`mpisim::RankReport::to_json`] fields. One file accumulates all
/// the scaling points of a run (truncate it first with
/// [`truncate_rank_stats`]), giving a directly loadable per-rank
/// communication profile next to the aggregate `BENCH_*.json` rows.
pub fn write_rank_stats_jsonl(
    path: &str,
    label: &str,
    reports: &[mpisim::RankReport],
) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    for r in reports {
        let body = r.to_json();
        writeln!(f, "{{\"label\": \"{label}\", {}", &body[1..])?;
    }
    Ok(())
}

/// Starts a fresh rank-stats JSONL file (removes any previous run's).
pub fn truncate_rank_stats(path: &str) {
    let _ = std::fs::remove_file(path);
}

/// Produces one scaling point: simulator-measured unless `model_only`.
pub fn dist_scale_point(p: usize, n_bands: usize, model_only: bool) -> DistScalePoint {
    dist_scale_point_stats(p, n_bands, model_only).0
}

/// [`dist_scale_point`] keeping the per-rank communication profiles
/// (empty under `model_only` — the closed form has no ranks to report).
pub fn dist_scale_point_stats(
    p: usize,
    n_bands: usize,
    model_only: bool,
) -> (DistScalePoint, Vec<mpisim::RankReport>) {
    let model_s = dist_scale_model_s(p, n_bands);
    let (step_s, source, reports) = if model_only {
        (model_s, "model", Vec::new())
    } else {
        let (t, r) = measure_dist_step_stats(p, n_bands);
        (t, "simulator", r)
    };
    (DistScalePoint { ranks: p, n_bands, step_s, model_s, source }, reports)
}

/// Merge-writes one series of `BENCH_dist_scale.json` next to this
/// crate's manifest (where `bin/compare.rs` looks): rows of other series
/// already in the file are kept, rows of `series` are replaced — so
/// fig10 (strong) and fig11 (weak) can each refresh their own rows in
/// either order.
pub fn write_dist_scale_json(series: &str, points: &[DistScalePoint]) -> String {
    let path = format!("{}/BENCH_dist_scale.json", env!("CARGO_MANIFEST_DIR"));
    let mut rows: Vec<String> = match std::fs::read_to_string(&path) {
        Ok(old) => old
            .lines()
            .filter(|l| {
                l.trim_start().starts_with("{\"name\"")
                    && !l.contains(&format!("\"series\": \"{series}\""))
            })
            .map(|l| l.trim_end_matches(',').to_string())
            .collect(),
        Err(_) => Vec::new(),
    };
    for pt in points {
        rows.push(format!(
            "{{\"name\": \"dist_scale_{series}_p{}\", \"series\": \"{series}\", \
             \"source\": \"{}\", \"ranks\": {}, \"bands\": {}, \"step_s\": {:.6e}, \
             \"model_s\": {:.6e}, \"ratio\": {:.4}}}",
            pt.ranks, pt.source, pt.ranks, pt.n_bands, pt.step_s, pt.model_s, pt.ratio()
        ));
    }
    let mut json = String::from("{\n\"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(r);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("],\n\"config\": \"si8 8x8x8, rpn=4, fugaku net, RingOverlap, max_scf=1\"\n}\n");
    std::fs::write(&path, &json).expect("write BENCH_dist_scale.json");
    path
}

/// Median wall time per call of `f` over `iters` samples (one warm-up) —
/// shared by the JSON-writing bench harnesses.
pub fn median_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Prints a markdown-style table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats seconds with sensible precision.
pub fn fmt_s(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.1}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_scale_system_is_small() {
        let sys = si8_system(&HarnessOpts { full: false });
        assert_eq!(sys.grid.len(), 1000);
        assert_eq!(sys.cell.n_atoms(), 8);
    }

    #[test]
    fn platform_precision_defaults() {
        let arm = precision_for_platform(&Platform::fugaku_arm());
        assert!(!arm.any_reduced(), "ARM default must stay fp64");
        let gpu = precision_for_platform(&Platform::gpu_a100());
        assert!(gpu.exchange.reduced(), "GPU default must reduce exchange");
        assert!(gpu.monitors_drift());
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_s(429.3), "429.3");
        assert_eq!(fmt_s(11.4), "11.40");
        assert_eq!(fmt_s(0.5), "0.5000");
    }
}
