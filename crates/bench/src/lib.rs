//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every binary accepts `--full` for paper-scale parameters; the default
//! is a CI-scale configuration that exercises the identical code paths in
//! seconds. `EXPERIMENTS.md` records both.

use perfmodel::platform::Platform;
use pwdft::{scf_hybrid, scf_lda, Cell, DftSystem, GroundState, HybridConfig, ScfConfig};
use pwnum::backend::{by_name, BackendHandle};
use pwnum::precision::PrecisionPolicy;

/// Harness options parsed from the command line.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOpts {
    /// Run at (closer to) paper scale instead of CI scale.
    pub full: bool,
}

impl HarnessOpts {
    /// Parses `--full` from `std::env::args`.
    pub fn from_args() -> HarnessOpts {
        let full = std::env::args().any(|a| a == "--full");
        HarnessOpts { full }
    }
}

/// The 8-atom silicon cell of the paper's accuracy experiments (Fig. 7/8)
/// at a CI-friendly cutoff.
pub fn si8_system(opts: &HarnessOpts) -> DftSystem {
    if opts.full {
        // Paper settings: Ecut = 10 Ha (grid chosen automatically).
        DftSystem::new(Cell::silicon_supercell(1, 1, 1), 10.0)
    } else {
        DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 3.0, [10, 10, 10])
    }
}

/// Prepares the finite-temperature hybrid ground state `(Φ(0), σ(0))`
/// for the 8-atom system with `n_bands` states at temperature `temp_k`.
pub fn prepare_ground_state(
    sys: &DftSystem,
    n_bands: usize,
    temp_k: f64,
    hybrid: bool,
) -> GroundState {
    let cfg = ScfConfig {
        n_bands,
        temperature_k: temp_k,
        tol_rho: 1e-6,
        max_scf: 60,
        davidson_iters: 8,
        davidson_tol: 1e-7,
        mix_depth: 15,
        mix_beta: 0.6,
        seed: 7,
    };
    let gs = scf_lda(sys, &cfg);
    if hybrid {
        let hyb = HybridConfig { outer_iters: 3, ..Default::default() };
        scf_hybrid(sys, &cfg, &hyb, gs)
    } else {
        gs
    }
}

/// Maps a modeled platform to the compute backend that mirrors its
/// execution style — the paper's ARM-vs-GPU split: the A64FX path runs
/// the per-call scalar/threaded kernels (`reference`), while the GPU
/// path batches kernels behind the accelerator-style `blocked` backend
/// (multi-batch FFTs, pooled buffers; Sec. III-B).
pub fn backend_for_platform(platform: &Platform) -> BackendHandle {
    let name = if platform.accelerator { "blocked" } else { "reference" };
    by_name(name).expect("built-in backend")
}

/// Maps a modeled platform to its default precision policy — the
/// paper's fp32 playbook: accelerator-style platforms (GPU) run the
/// exchange Poisson solves in fp32 with compensated fp64 accumulation
/// ([`PrecisionPolicy::mixed`]), while the ARM path stays all-fp64
/// ([`PrecisionPolicy::fp64`]).
pub fn precision_for_platform(platform: &Platform) -> PrecisionPolicy {
    if platform.accelerator {
        PrecisionPolicy::mixed()
    } else {
        PrecisionPolicy::fp64()
    }
}

/// Median wall time per call of `f` over `iters` samples (one warm-up) —
/// shared by the JSON-writing bench harnesses.
pub fn median_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Prints a markdown-style table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats seconds with sensible precision.
pub fn fmt_s(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.1}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_scale_system_is_small() {
        let sys = si8_system(&HarnessOpts { full: false });
        assert_eq!(sys.grid.len(), 1000);
        assert_eq!(sys.cell.n_atoms(), 8);
    }

    #[test]
    fn platform_precision_defaults() {
        let arm = precision_for_platform(&Platform::fugaku_arm());
        assert!(!arm.any_reduced(), "ARM default must stay fp64");
        let gpu = precision_for_platform(&Platform::gpu_a100());
        assert!(gpu.exchange.reduced(), "GPU default must reduce exchange");
        assert!(gpu.monitors_drift());
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_s(429.3), "429.3");
        assert_eq!(fmt_s(11.4), "11.40");
        assert_eq!(fmt_s(0.5), "0.5000");
    }
}
