//! Fig. 7 — accuracy of PT-IM-ACE (Δt = 50 as) against RK4 with a much
//! smaller step, for the 8-atom silicon system under the 380 nm pulse,
//! in pure (T=0) and mixed (8000 K, 24 states) states.
//!
//! Prints the dipole/energy series of both propagators and the agreement
//! metrics the paper's figure demonstrates. Default: a CI-scale window
//! (RK4 at Δt/25); `--full` runs the paper's 30 fs at Δt/100.

use pwdft_bench::{fmt_s, prepare_ground_state, print_table, si8_system, HarnessOpts};
use ptim::{
    laser::AU_TIME_AS, ptim_ace_step, rk4_step, HybridParams, LaserPulse, PtimAceConfig,
    Recorder, Rk4Config, TdEngine, TdState,
};

fn run_case(label: &str, opts: &HarnessOpts, mixed: bool) {
    let sys = si8_system(opts);
    let n_bands = if mixed { 24 } else { 16 };
    let temp = if mixed { 8000.0 } else { 10.0 };
    println!("\n== {label}: preparing hybrid ground state ({n_bands} states, {temp} K)...");
    let gs = prepare_ground_state(&sys, n_bands, temp, true);
    println!(
        "   SCF done in {} iterations (residual {:.2e}); E = {:.6} Ha",
        gs.iterations,
        gs.rho_residual,
        gs.energies.total()
    );

    let total_fs = if opts.full { 30.0 } else { 0.75 };
    let pulse = LaserPulse::paper_pulse(0.005, if opts.full { 30.0 } else { 3.0 });
    let hyb = HybridParams::default();
    let eng = TdEngine::new(&sys, pulse, hyb);

    let dt_pt = 50.0 / AU_TIME_AS;
    let rk4_divisor = if opts.full { 100.0 } else { 25.0 };
    let n_pt_steps = (total_fs / ptim::laser::AU_TIME_FS / dt_pt).round() as usize;

    // PT-IM-ACE trajectory.
    let mut state = TdState::from_ground_state(&gs);
    let cfg = PtimAceConfig { dt: dt_pt, ..Default::default() };
    let mut rec_pt = Recorder::new();
    rec_pt.record(&eng, &state);
    let mut total_fock = 0usize;
    for _ in 0..n_pt_steps {
        let (next, stats) = ptim_ace_step(&eng, &state, &cfg);
        total_fock += stats.fock_applies;
        state = next;
        rec_pt.record(&eng, &state);
    }

    // RK4 reference, sampled at the PT-IM times.
    let dt_rk = dt_pt / rk4_divisor;
    let mut rk = TdState::from_ground_state(&gs);
    let rk_cfg = Rk4Config { dt: dt_rk };
    let mut rec_rk = Recorder::new();
    rec_rk.record(&eng, &rk);
    for _ in 0..n_pt_steps {
        for _ in 0..rk4_divisor as usize {
            let (next, _) = rk4_step(&eng, &rk, &rk_cfg);
            rk = next;
        }
        rec_rk.record(&eng, &rk);
    }

    // Print both series.
    let rows: Vec<Vec<String>> = rec_pt
        .samples
        .iter()
        .zip(&rec_rk.samples)
        .map(|(a, b)| {
            vec![
                format!("{:.3}", a.time * ptim::laser::AU_TIME_FS),
                format!("{:+.3e}", a.field),
                format!("{:+.6e}", a.dipole_x),
                format!("{:+.6e}", b.dipole_x),
                format!("{:.8}", a.total_energy),
                format!("{:.8}", b.total_energy),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 7 ({label}): PT-IM-ACE (Δt=50 as) vs RK4 (Δt=50/{rk4_divisor} as)"),
        &["t (fs)", "E-field", "dipole PT", "dipole RK4", "E_tot PT (Ha)", "E_tot RK4 (Ha)"],
        &rows,
    );

    let max_dip = rec_pt.max_dipole_diff(&rec_rk);
    let dip_scale = rec_rk
        .samples
        .iter()
        .map(|s| s.dipole_x.abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let e_drift = (rec_pt.samples.last().unwrap().total_energy
        - rec_rk.samples.last().unwrap().total_energy)
        .abs();
    println!("   max |Δdipole| = {max_dip:.3e} (signal scale {dip_scale:.3e})");
    println!("   final |ΔE_total| = {} Ha", fmt_s(e_drift));
    println!("   PT-IM-ACE Fock builds over the window: {total_fock} (~{:.1}/step)",
        total_fock as f64 / n_pt_steps.max(1) as f64);
    println!(
        "   paper: PT-IM-ACE at 50 as fully matches RK4 at 0.5 as in both pure and mixed states"
    );
}

fn main() {
    let opts = HarnessOpts::from_args();
    println!("# Fig. 7 reproduction — PT-IM-ACE vs RK4 accuracy (8-atom Si, 380 nm pulse)");
    println!("# mode: {}", if opts.full { "--full (paper scale)" } else { "CI scale" });
    run_case("pure states (T→0, 16 states)", &opts, false);
    run_case("mixed states (8000 K, 24 states)", &opts, true);
}
