//! Fig. 9 — step-by-step performance improvement for the 384-atom
//! silicon system on 240 ARM nodes and 24 GPU nodes:
//! `BL → Diag → ACE → Ring → Async`.
//!
//! Regenerated with the calibrated performance model driving the same
//! algorithm schedules the real code executes. Paper reference factors
//! are printed alongside.

use perfmodel::{step_time, Platform, Variant, Workload};
use pwdft_bench::{fmt_s, print_table};

fn run(pf: &Platform, nodes: usize, paper_steps: &[(&str, f64)]) {
    let w = Workload::silicon(384);
    let mut rows = Vec::new();
    let mut prev: Option<f64> = None;
    let baseline_total = step_time(pf, &w, nodes, Variant::Baseline).total();
    for (i, v) in Variant::ALL.iter().enumerate() {
        let b = step_time(pf, &w, nodes, *v);
        let total = b.total();
        let step_speedup = prev.map(|p| p / total).unwrap_or(1.0);
        let cum_speedup = baseline_total / total;
        rows.push(vec![
            v.label().to_string(),
            fmt_s(total),
            format!("{:.2}x", step_speedup),
            format!("{:.2}x", cum_speedup),
            format!("{}", b.n_vx),
            fmt_s(b.fock),
            fmt_s(b.comm.total()),
            paper_steps
                .get(i)
                .map(|(_, s)| format!("{s:.2}x"))
                .unwrap_or_default(),
        ]);
        prev = Some(total);
    }
    print_table(
        &format!("Fig. 9 — {} (384 Si atoms, {} nodes)", pf.name, nodes),
        &[
            "stage",
            "t/step (s)",
            "step speedup",
            "cumulative",
            "Vx/step",
            "Fock (s)",
            "comm (s)",
            "paper step speedup",
        ],
        &rows,
    );
}

fn main() {
    println!("# Fig. 9 reproduction — step-by-step optimization speedups (model-driven)");
    run(
        &Platform::fugaku_arm(),
        240,
        &[("BL", 1.0), ("Diag", 12.86), ("ACE", 3.3), ("Ring", 1.13), ("Async", 1.14)],
    );
    run(
        &Platform::gpu_a100(),
        24,
        &[("BL", 1.0), ("Diag", 7.57), ("ACE", 3.6), ("Ring", 1.23), ("Async", 1.23)],
    );
    println!("\npaper end-to-end: 55.15x (ARM), 41.44x (GPU)");
    let arm = step_time(&Platform::fugaku_arm(), &Workload::silicon(384), 240, Variant::Baseline)
        .total()
        / step_time(&Platform::fugaku_arm(), &Workload::silicon(384), 240, Variant::AceAsync)
            .total();
    let gpu = step_time(&Platform::gpu_a100(), &Workload::silicon(384), 24, Variant::Baseline)
        .total()
        / step_time(&Platform::gpu_a100(), &Workload::silicon(384), 24, Variant::AceAsync)
            .total();
    println!("model end-to-end: {arm:.2}x (ARM), {gpu:.2}x (GPU)");
}
