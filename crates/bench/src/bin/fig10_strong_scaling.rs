//! Fig. 10 — strong scaling of the optimized PT-IM code:
//! (a) 768-atom silicon on the ARM platform (15 → 480 nodes),
//! (b) 1536-atom silicon on the GPU platform (12 → 192 nodes).
//!
//! The "ideal" column scales as `1/nodes` from the first point, matching
//! the paper's ideal-scaling line.

use perfmodel::{parallel_efficiency, strong_scaling, Platform};
use pwdft_bench::{fmt_s, print_table};

fn run(pf: &Platform, atoms: usize, nodes: &[usize], paper_eff: f64, paper_factor: f64) {
    let series = strong_scaling(pf, atoms, nodes);
    let eff = parallel_efficiency(&series);
    let t0 = series[0].time;
    let n0 = series[0].nodes as f64;
    let rows: Vec<Vec<String>> = series
        .iter()
        .zip(&eff)
        .map(|(p, e)| {
            vec![
                p.nodes.to_string(),
                fmt_s(p.time),
                fmt_s(t0 * n0 / p.nodes as f64),
                format!("{:.1}%", 100.0 * e),
                fmt_s(p.breakdown.comm.total()),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 10 — strong scaling, {} Si atoms on {}", atoms, pf.name),
        &["nodes", "t/step (s)", "ideal (s)", "parallel eff.", "comm (s)"],
        &rows,
    );
    let measured_factor = series[0].time / series.last().unwrap().time;
    let scale = series.last().unwrap().nodes / series[0].nodes;
    println!(
        "model: {scale}x nodes -> {measured_factor:.2}x faster (efficiency {:.1}%)",
        100.0 * eff.last().unwrap()
    );
    println!(
        "paper: {scale}x nodes -> {paper_factor:.2}x faster (efficiency {:.1}%)",
        100.0 * paper_eff
    );
}

fn main() {
    println!("# Fig. 10 reproduction — strong scaling (model-driven)");
    run(
        &Platform::fugaku_arm(),
        768,
        &[15, 30, 60, 120, 240, 480],
        0.368,
        11.79,
    );
    run(&Platform::gpu_a100(), 1536, &[12, 24, 48, 96, 192], 0.229, 3.67);
}
