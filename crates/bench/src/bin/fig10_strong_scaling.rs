//! Fig. 10 — strong scaling of the optimized PT-IM code:
//! (a) 768-atom silicon on the ARM platform (15 → 480 nodes),
//! (b) 1536-atom silicon on the GPU platform (12 → 192 nodes),
//! (c) the *real* `dist_ptim_step` executed on the mpisim virtual clock
//!     at 128/256/512 simulated ranks (RingOverlap exchange, SHM σ,
//!     hierarchical collectives), next to the two-level closed-form
//!     prediction. Section (c) writes the `strong` series of
//!     `BENCH_dist_scale.json` (gated by `bin/compare.rs`).
//!
//! The "ideal" column scales as `1/nodes` from the first point, matching
//! the paper's ideal-scaling line. Pass `--model-only` to skip the
//! simulator and emit closed-form rows instead (their `source` column
//! says `model`, which the CI gate rejects — the flag exists for quick
//! local iteration, not for CI).

use perfmodel::{parallel_efficiency, strong_scaling, Platform};
use pwdft_bench::{
    dist_scale_point_stats, fmt_s, print_table, truncate_rank_stats, write_dist_scale_json,
    write_rank_stats_jsonl,
};

fn run(pf: &Platform, atoms: usize, nodes: &[usize], paper_eff: f64, paper_factor: f64) {
    let series = strong_scaling(pf, atoms, nodes);
    let eff = parallel_efficiency(&series);
    let t0 = series[0].time;
    let n0 = series[0].nodes as f64;
    let rows: Vec<Vec<String>> = series
        .iter()
        .zip(&eff)
        .map(|(p, e)| {
            vec![
                p.nodes.to_string(),
                fmt_s(p.time),
                fmt_s(t0 * n0 / p.nodes as f64),
                format!("{:.1}%", 100.0 * e),
                fmt_s(p.breakdown.comm.total()),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 10 — strong scaling, {} Si atoms on {}", atoms, pf.name),
        &["nodes", "t/step (s)", "ideal (s)", "parallel eff.", "comm (s)"],
        &rows,
    );
    let measured_factor = series[0].time / series.last().unwrap().time;
    let scale = series.last().unwrap().nodes / series[0].nodes;
    println!(
        "model: {scale}x nodes -> {measured_factor:.2}x faster (efficiency {:.1}%)",
        100.0 * eff.last().unwrap()
    );
    println!(
        "paper: {scale}x nodes -> {paper_factor:.2}x faster (efficiency {:.1}%)",
        100.0 * paper_eff
    );
}

fn main() {
    let model_only = std::env::args().any(|a| a == "--model-only");
    println!("# Fig. 10 reproduction — strong scaling (model-driven)");
    run(
        &Platform::fugaku_arm(),
        768,
        &[15, 30, 60, 120, 240, 480],
        0.368,
        11.79,
    );
    run(&Platform::gpu_a100(), 1536, &[12, 24, 48, 96, 192], 0.229, 3.67);

    // (c) Paper-scale rank counts through the real distributed step.
    let n_bands = 64;
    let stats_path = "target/pwobs/fig10_rank_stats.jsonl";
    truncate_rank_stats(stats_path);
    let points: Vec<_> = [128usize, 256, 512]
        .iter()
        .map(|&p| {
            let (pt, reports) = dist_scale_point_stats(p, n_bands, model_only);
            write_rank_stats_jsonl(stats_path, &format!("strong_p{p}"), &reports)
                .expect("rank stats jsonl");
            pt
        })
        .collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.ranks.to_string(),
                pt.n_bands.to_string(),
                format!("{:.6}", pt.step_s),
                format!("{:.6}", pt.model_s),
                format!("{:.3}", pt.ratio()),
                pt.source.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 10(c) — real dist_ptim_step on the virtual clock, {} bands (strong)",
            n_bands
        ),
        &["ranks", "bands", "step (s)", "model (s)", "ratio", "source"],
        &rows,
    );
    let path = write_dist_scale_json("strong", &points);
    println!("wrote strong series to {path}");
    if !model_only {
        println!("wrote per-rank comm profiles to {stats_path}");
    }
}
