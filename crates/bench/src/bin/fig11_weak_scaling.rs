//! Fig. 11 — weak scaling of the optimized PT-IM code:
//! (a) ARM platform, 48 → 1536 atoms with nodes = orbitals/4,
//! (b) GPU platform, 48 → 3072 atoms with nodes = orbitals/40.
//!
//! The ideal line scales as O(N²) (per-step work per node grows linearly
//! when nodes track orbitals and total work grows as N³). The memory
//! model reports the capacity limits the paper hits (8 GB/CMG on Fugaku,
//! 40 GB/GPU).
//!
//! The final section drives the *real* `dist_ptim_step` on the mpisim
//! virtual clock with bands ∝ ranks (128/256/512 ranks at p/8 bands) and
//! merges the `weak` series into `BENCH_dist_scale.json` next to fig10's
//! `strong` rows. Pass `--model-only` to emit closed-form rows instead
//! (rejected by the CI gate; local iteration only).

use perfmodel::memory::{max_atoms, per_rank_memory};
use perfmodel::{weak_scaling, Platform, Workload};
use pwdft_bench::{
    dist_scale_point_stats, fmt_s, print_table, truncate_rank_stats, write_dist_scale_json,
    write_rank_stats_jsonl,
};

fn run(pf: &Platform, atoms: &[usize], nodes_for: impl Fn(usize) -> usize, anchor: &str) {
    let series = weak_scaling(pf, atoms, &nodes_for);
    let t0 = series[0].time;
    let a0 = series[0].n_atoms as f64;
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            let w = Workload::silicon(p.n_atoms);
            let mem = per_rank_memory(pf, &w, p.nodes, true);
            vec![
                p.n_atoms.to_string(),
                p.nodes.to_string(),
                fmt_s(p.time),
                fmt_s(t0 * (p.n_atoms as f64 / a0).powi(2)),
                format!("{:.1}", mem.total() / 1e9),
                format!("{:.0}%", 100.0 * mem.total() / pf.mem_per_rank),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 11 — weak scaling on {}", pf.name),
        &["atoms", "nodes", "t/step (s)", "ideal O(N²) (s)", "mem/rank (GB)", "mem used"],
        &rows,
    );
    println!("{anchor}");
}

fn main() {
    println!("# Fig. 11 reproduction — weak scaling + memory capacity (model-driven)");
    run(
        &Platform::fugaku_arm(),
        &[48, 96, 192, 384, 768, 1536],
        |orb| orb / 4,
        "paper: 1536 atoms on 960 nodes is the Fugaku capacity limit (8 GB/CMG)",
    );
    run(
        &Platform::gpu_a100(),
        &[48, 96, 192, 384, 768, 1536, 3072],
        |orb| orb / 40,
        "paper: 3072 atoms @ 192 nodes = 429.3 s/step, >80% of GPU memory; 6144 does not fit",
    );

    // Capacity check (the Sec. VIII-C claims).
    let gpu = Platform::gpu_a100();
    println!(
        "\nmodel capacity on 192 GPU nodes: with SHM {} atoms, without SHM {} atoms",
        max_atoms(&gpu, 192, true),
        max_atoms(&gpu, 192, false)
    );
    let arm = Platform::fugaku_arm();
    println!(
        "model capacity on 960 ARM nodes: with SHM {} atoms, without SHM {} atoms",
        max_atoms(&arm, 960, true),
        max_atoms(&arm, 960, false)
    );
    println!(
        "\nnote: this implementation keeps fewer GPU-resident wavefunction copies than\n         production PWDFT (which holds the 20-deep Anderson history and multi-batch\n         staging buffers in device memory), so absolute utilization is lower than the\n         paper's >80%; the capacity *ordering* — SHM extends reach, 6144 atoms does\n         not fit on 192 nodes — is reproduced."
    );
    let w192 = Workload::silicon(192);
    let t192 = perfmodel::step_time(&gpu, &w192, 12, perfmodel::Variant::AceAsync).total();
    let w3072 = Workload::silicon(3072);
    let t3072 = perfmodel::step_time(&gpu, &w3072, 192, perfmodel::Variant::AceAsync).total();
    println!("\nanchors: 192 atoms @ 12 GPU nodes: model {} s (paper 11.40 s)", fmt_s(t192));
    println!("         3072 atoms @ 192 GPU nodes: model {} s (paper 429.3 s)", fmt_s(t3072));
    println!(
        "         => 1 fs of simulation at 3072 atoms: model {:.1} h (paper ~2.5 h)",
        t3072 * 20.0 / 3600.0
    );

    // Weak scaling through the real distributed step: bands ∝ ranks.
    let model_only = std::env::args().any(|a| a == "--model-only");
    let stats_path = "target/pwobs/fig11_rank_stats.jsonl";
    truncate_rank_stats(stats_path);
    let points: Vec<_> = [128usize, 256, 512]
        .iter()
        .map(|&p| {
            let (pt, reports) = dist_scale_point_stats(p, p / 8, model_only);
            write_rank_stats_jsonl(stats_path, &format!("weak_p{p}"), &reports)
                .expect("rank stats jsonl");
            pt
        })
        .collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.ranks.to_string(),
                pt.n_bands.to_string(),
                format!("{:.6}", pt.step_s),
                format!("{:.6}", pt.model_s),
                format!("{:.3}", pt.ratio()),
                pt.source.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 11(c) — real dist_ptim_step on the virtual clock, bands = ranks/8 (weak)",
        &["ranks", "bands", "step (s)", "model (s)", "ratio", "source"],
        &rows,
    );
    let path = write_dist_scale_json("weak", &points);
    println!("wrote weak series to {path}");
    if !model_only {
        println!("wrote per-rank comm profiles to {stats_path}");
    }
}
