//! Fig. 8 — electron motion at finite temperature: evolution of the
//! occupation matrix σ of the 8-atom silicon system under the laser
//! pulse. Reports (a) the trajectory of the off-diagonal element σ(0,2)
//! in the complex plane, (b) the diagonal element σ(22,22) versus time,
//! and (c/d) the initial and final σ matrices.

use pwdft_bench::{prepare_ground_state, print_table, si8_system, HarnessOpts};
use ptim::{
    laser::{AU_TIME_AS, AU_TIME_FS},
    ptim_ace_step, HybridParams, LaserPulse, PtimAceConfig, Recorder, TdEngine, TdState,
};

fn sigma_heatmap(label: &str, sigma: &pwnum::CMat) {
    println!("\n{label} (|σ_ij|, row-major):");
    let n = sigma.rows();
    for i in 0..n {
        let mut line = String::new();
        for j in 0..n {
            let v = sigma[(i, j)].abs();
            let ch = if v > 0.75 {
                '#'
            } else if v > 0.4 {
                '+'
            } else if v > 0.1 {
                '.'
            } else if v > 0.01 {
                ','
            } else {
                ' '
            };
            line.push(ch);
        }
        println!("  |{line}|");
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    println!("# Fig. 8 reproduction — σ(t) evolution (8-atom Si, 8000 K, 24 states)");
    println!("# mode: {}", if opts.full { "--full (30 fs)" } else { "CI scale" });

    let sys = si8_system(&opts);
    let gs = prepare_ground_state(&sys, 24, 8000.0, true);
    println!(
        "ground state: {} SCF iterations, E = {:.6} Ha, occupations {:.3}..{:.3}",
        gs.iterations,
        gs.energies.total(),
        gs.occ.last().unwrap(),
        gs.occ[0]
    );

    let total_fs = if opts.full { 30.0 } else { 1.5 };
    // A stronger pulse at CI scale so σ moves visibly within the window.
    let e0 = if opts.full { 0.005 } else { 0.05 };
    let pulse = LaserPulse::paper_pulse(e0, total_fs);
    let eng = TdEngine::new(&sys, pulse, HybridParams::default());

    let dt = 50.0 / AU_TIME_AS;
    let n_steps = (total_fs / AU_TIME_FS / dt).round() as usize;
    let cfg = PtimAceConfig { dt, ..Default::default() };

    let mut state = TdState::from_ground_state(&gs);
    let sigma_initial = state.sigma.clone();
    let mut rec = Recorder::new();
    rec.record(&eng, &state);
    for step in 0..n_steps {
        let (next, stats) = ptim_ace_step(&eng, &state, &cfg);
        state = next;
        rec.record(&eng, &state);
        if (step + 1) % 10 == 0 {
            println!(
                "  step {:4}/{n_steps}: t = {:.2} fs, outers {}, tr σ = {:.6}",
                step + 1,
                state.time * AU_TIME_FS,
                stats.outer_iters,
                state.sigma.trace().re
            );
        }
    }

    // (a)+(b): σ(0,2) complex trajectory and σ(22,22) vs time.
    let rows: Vec<Vec<String>> = rec
        .samples
        .iter()
        .map(|s| {
            vec![
                format!("{:.3}", s.time * AU_TIME_FS),
                format!("{:+.3e}", s.field),
                format!("{:+.5e}", s.sigma_02.re),
                format!("{:+.5e}", s.sigma_02.im),
                format!("{:.6}", s.sigma_diag),
                format!("{:.6}", s.electrons),
            ]
        })
        .collect();
    print_table(
        "Fig. 8(a,b): σ(0,2) trajectory and σ(22,22) occupation",
        &["t (fs)", "E-field", "Re σ(0,2)", "Im σ(0,2)", "σ(22,22)", "2 tr σ"],
        &rows,
    );

    // (c)/(d): initial and final σ.
    sigma_heatmap("Fig. 8(c): initial σ", &sigma_initial);
    sigma_heatmap("Fig. 8(d): final σ", &state.sigma);

    let max_off = {
        let mut m = 0.0f64;
        for i in 0..24 {
            for j in 0..24 {
                if i != j {
                    m = m.max(state.sigma[(i, j)].abs());
                }
            }
        }
        m
    };
    println!("\nsummary:");
    println!("  max |off-diagonal σ| at end: {max_off:.3e} (initial: 0 — diagonal FD matrix)");
    println!("  electron count drift: {:.3e}", (state.electron_count() - gs.occ.iter().sum::<f64>() * 2.0).abs());
    println!("  paper: off-diagonals develop under the pulse (stochastic-looking σ(0,2) path),");
    println!("         diagonal occupations respond as the field ramps (10–15 fs).");
}
