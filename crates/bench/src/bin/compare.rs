//! CI gate for the pair-symmetric Fock scheduler: reads
//! `BENCH_fock_pairsym.json` (path as the first argument, default
//! `BENCH_fock_pairsym.json` in the working directory) and exits
//! nonzero if the pair-symmetric path is *slower* than the baseline
//! `apply_diag` at N = 128 — a perf regression the bench job must catch.

use std::process::ExitCode;

/// Extracts the `f64` after `"key": ` in `obj` (flat JSON object text).
fn field_f64(obj: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fock_pairsym.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("compare: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Per-benchmark objects are written one per line by the harness.
    let mut checked = false;
    for obj in text.split('{') {
        let (Some(bands), Some(speedup)) = (field_f64(obj, "bands"), field_f64(obj, "speedup"))
        else {
            continue;
        };
        // The screened row also runs at specific band counts; gate only
        // the headline pure-halving row.
        if bands as usize == 128 && !obj.contains("screened") {
            checked = true;
            println!("N=128: pair-symmetric speedup {speedup:.3}x over baseline");
            if speedup < 1.0 {
                eprintln!(
                    "compare: FAIL — pair-symmetric path slower than baseline at N=128 \
                     ({speedup:.3}x)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if !checked {
        eprintln!("compare: FAIL — no N=128 row found in {path}");
        return ExitCode::FAILURE;
    }
    println!("compare: OK");
    ExitCode::SUCCESS
}
