//! CI gate for the benchmark JSON artifacts: reads one or more
//! `BENCH_*.json` files (paths as arguments; with no arguments, the
//! full default set) and applies a per-file, per-metric tolerance table
//! — speedup floors and accuracy ceilings — exiting nonzero on any
//! violation. This is the generalization of the original single-file
//! pair-symmetry gate: every bench job funnels through one binary with
//! its thresholds recorded in one place.
//!
//! Current gates:
//!
//! * `BENCH_fock_pairsym.json` — the Hermitian pair-symmetric scheduler
//!   must not be slower than the baseline `apply_diag` at N = 128.
//! * `BENCH_mixed_precision.json` — the fp32 exchange pipeline must be
//!   ≥ 1.4× the fp64 pipeline on Fock `apply_pure` at N = 64 (Blocked
//!   backend), with the 20-step dipole trace within 1e-6 of the fp64
//!   run and the apply-level relative error at fp32 scale (≤ 1e-5).
//! * `BENCH_dist_overlap.json` — the ring-pipelined overlapped exchange
//!   must beat the blocking ring by ≥ 1.25× in simulated step time at
//!   16 ranks, hiding ≥ 50% of the exchange wire time (these are
//!   virtual-clock measurements, so the gate is deterministic).
//! * `BENCH_dist_scale.json` — the two-level closed form must track the
//!   real `dist_ptim_step` virtual-clock time within 25% at 128/256/512
//!   ranks in both the strong (64 bands) and weak (ranks/8 bands)
//!   series. Rows whose `source` is `model` (from `--model-only` runs)
//!   are rejected: the gate demands simulator-measured rows.
//! * `BENCH_fusion.json` — the fused pair-solve pipeline must be
//!   ≥ 1.25× the staged tile scheduler on Fock `apply_pure` at N = 64
//!   (Blocked backend) while agreeing bitwise, and the autotuned shapes
//!   must never be slower than the defaults on any tuned row (≥ 1.0×,
//!   deterministic by construction: the defaults are always measured
//!   and the winner is the argmin).
//! * `BENCH_resilience.json` — checkpointing every 10 steps must cost
//!   ≤ 5% of step time (one atomic write amortized over the interval),
//!   and a run restored from a checkpoint must land bitwise on the
//!   uninterrupted run's final state (`restart_max_diff` ≤ 0,
//!   deterministic dynamics).
//! * `BENCH_observability.json` — the `pwobs` recorder must cost ≤ 2%
//!   of hybrid PT-IM step time when enabled (fastest-of-interleaved
//!   samples) and ≤ 50 ns per span when disabled (the always-paid no-op
//!   fast path of the instrumented hot loops).

use std::process::ExitCode;

/// One bound on one metric of one selected benchmark row.
struct MetricGate {
    /// Human-readable description printed with the verdict.
    what: &'static str,
    /// Row selector: the row's `select_key` field must equal `select_val`.
    select_key: &'static str,
    select_val: f64,
    /// Rows whose raw text contains this substring are skipped.
    exclude: Option<&'static str>,
    /// When set, only rows whose raw text contains this substring match
    /// (disambiguates rows that share the numeric selector, e.g. the
    /// strong vs weak series of the dist-scale artifact).
    require: Option<&'static str>,
    /// The metric field to check.
    metric: &'static str,
    /// Inclusive lower bound (speedup floors).
    min: Option<f64>,
    /// Inclusive upper bound (accuracy ceilings).
    max: Option<f64>,
}

/// The tolerance table: which gates apply to which artifact.
fn gates_for(basename: &str) -> Option<Vec<MetricGate>> {
    match basename {
        "BENCH_fock_pairsym.json" => Some(vec![MetricGate {
            what: "pair-symmetric speedup over baseline at N=128",
            select_key: "bands",
            select_val: 128.0,
            exclude: Some("screened"),
            require: None,
            metric: "speedup",
            min: Some(1.0),
            max: None,
        }]),
        "BENCH_mixed_precision.json" => Some(vec![
            MetricGate {
                what: "mixed-precision speedup on Fock apply at N=64",
                select_key: "bands",
                select_val: 64.0,
                exclude: None,
                require: None,
                metric: "speedup",
                min: Some(1.4),
                max: None,
            },
            MetricGate {
                what: "mixed-precision apply relative error at N=64",
                select_key: "bands",
                select_val: 64.0,
                exclude: None,
                require: None,
                metric: "apply_rel_err",
                min: None,
                max: Some(1e-5),
            },
            MetricGate {
                what: "20-step dipole trace deviation (mixed vs fp64)",
                select_key: "steps",
                select_val: 20.0,
                exclude: None,
                require: None,
                metric: "dipole_err",
                min: None,
                max: Some(1e-6),
            },
        ]),
        "BENCH_dist_overlap.json" => Some(vec![
            MetricGate {
                what: "RingOverlap speedup over blocking ring at 16 ranks",
                select_key: "ranks",
                select_val: 16.0,
                exclude: None,
                require: None,
                metric: "speedup",
                min: Some(1.25),
                max: None,
            },
            MetricGate {
                what: "overlap efficiency (hidden/total wire time) at 16 ranks",
                select_key: "ranks",
                select_val: 16.0,
                exclude: None,
                require: None,
                metric: "overlap_efficiency",
                min: Some(0.5),
                max: None,
            },
        ]),
        "BENCH_dist_scale.json" => {
            // Model-vs-simulator agreement at paper scale: every row of
            // both series must sit inside the 25% band, and `--model-only`
            // rows (source == model, ratio identically 1) are rejected by
            // the `require`/`exclude` pair — a model row never matches, so
            // the gate fails with "no row found" instead of passing
            // vacuously.
            fn dist_scale_gate(what: &'static str, series: &'static str, ranks: f64) -> MetricGate {
                MetricGate {
                    what,
                    select_key: "ranks",
                    select_val: ranks,
                    exclude: Some("\"source\": \"model\""),
                    require: Some(series),
                    metric: "ratio",
                    min: Some(0.75),
                    max: Some(1.33),
                }
            }
            Some(vec![
                dist_scale_gate(
                    "strong-series step/model ratio at 128 ranks",
                    "\"series\": \"strong\"",
                    128.0,
                ),
                dist_scale_gate(
                    "strong-series step/model ratio at 256 ranks",
                    "\"series\": \"strong\"",
                    256.0,
                ),
                dist_scale_gate(
                    "strong-series step/model ratio at 512 ranks",
                    "\"series\": \"strong\"",
                    512.0,
                ),
                dist_scale_gate(
                    "weak-series step/model ratio at 128 ranks",
                    "\"series\": \"weak\"",
                    128.0,
                ),
                dist_scale_gate(
                    "weak-series step/model ratio at 256 ranks",
                    "\"series\": \"weak\"",
                    256.0,
                ),
                dist_scale_gate(
                    "weak-series step/model ratio at 512 ranks",
                    "\"series\": \"weak\"",
                    512.0,
                ),
            ])
        }
        "BENCH_fusion.json" => {
            fn autotune_gate(what: &'static str, bands: f64, precision: &'static str) -> MetricGate {
                MetricGate {
                    what,
                    select_key: "bands",
                    select_val: bands,
                    exclude: None,
                    require: Some(precision),
                    metric: "autotune_speedup",
                    min: Some(1.0),
                    max: None,
                }
            }
            Some(vec![
                MetricGate {
                    what: "fused pair-solve speedup over staged at N=64",
                    select_key: "bands",
                    select_val: 64.0,
                    exclude: None,
                    require: Some("fock_fusion"),
                    metric: "speedup",
                    min: Some(1.25),
                    max: None,
                },
                MetricGate {
                    what: "fused vs staged max deviation at N=64 (bitwise)",
                    select_key: "bands",
                    select_val: 64.0,
                    exclude: None,
                    require: Some("fock_fusion"),
                    metric: "fused_max_diff",
                    min: None,
                    max: Some(0.0),
                },
                autotune_gate(
                    "autotuned vs default shapes (fp64, N=64)",
                    64.0,
                    "\"precision\": \"fp64\"",
                ),
                autotune_gate(
                    "autotuned vs default shapes (fp64, N=32)",
                    32.0,
                    "\"precision\": \"fp64\"",
                ),
                autotune_gate(
                    "autotuned vs default shapes (fp32, N=64)",
                    64.0,
                    "\"precision\": \"fp32\"",
                ),
            ])
        }
        "BENCH_resilience.json" => Some(vec![
            MetricGate {
                what: "checkpoint overhead fraction of step time at interval 10",
                select_key: "interval",
                select_val: 10.0,
                exclude: None,
                require: None,
                metric: "overhead_frac",
                min: None,
                max: Some(0.05),
            },
            MetricGate {
                what: "restored vs uninterrupted final state (bitwise)",
                select_key: "interval",
                select_val: 10.0,
                exclude: None,
                require: None,
                metric: "restart_max_diff",
                min: None,
                max: Some(0.0),
            },
        ]),
        "BENCH_observability.json" => Some(vec![
            MetricGate {
                what: "pwobs enabled overhead fraction of hybrid PT-IM step time",
                select_key: "mode",
                select_val: 1.0,
                exclude: None,
                require: None,
                metric: "enabled_overhead_frac",
                min: None,
                max: Some(0.02),
            },
            MetricGate {
                what: "pwobs disabled span cost (ns per open/drop)",
                select_key: "mode",
                select_val: 2.0,
                exclude: None,
                require: None,
                metric: "disabled_span_ns",
                min: None,
                max: Some(50.0),
            },
        ]),
        _ => None,
    }
}

/// Extracts the `f64` after `"key": ` in `obj` (flat JSON object text).
fn field_f64(obj: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Applies one gate to a file's text; returns `Err` on violation or
/// when no matching row exists.
fn apply_gate(text: &str, gate: &MetricGate) -> Result<(), String> {
    for obj in text.split('{') {
        let Some(sel) = field_f64(obj, gate.select_key) else { continue };
        if sel != gate.select_val {
            continue;
        }
        if let Some(ex) = gate.exclude {
            if obj.contains(ex) {
                continue;
            }
        }
        if let Some(req) = gate.require {
            if !obj.contains(req) {
                continue;
            }
        }
        let Some(value) = field_f64(obj, gate.metric) else { continue };
        if let Some(min) = gate.min {
            // NaN must fail the floor check, so compare negated.
            if value.partial_cmp(&min) != Some(std::cmp::Ordering::Greater)
                && value.partial_cmp(&min) != Some(std::cmp::Ordering::Equal)
            {
                return Err(format!(
                    "{}: {} = {value:.4} below floor {min}",
                    gate.what, gate.metric
                ));
            }
        }
        if let Some(max) = gate.max {
            // NaN must fail the ceiling check, so compare negated.
            if value.partial_cmp(&max) != Some(std::cmp::Ordering::Less)
                && value.partial_cmp(&max) != Some(std::cmp::Ordering::Equal)
            {
                return Err(format!(
                    "{}: {} = {value:.3e} above ceiling {max:.0e}",
                    gate.what, gate.metric
                ));
            }
        }
        println!("  OK  {} ({} = {value:.4e})", gate.what, gate.metric);
        return Ok(());
    }
    Err(format!(
        "{}: no row with {} == {} found",
        gate.what, gate.select_key, gate.select_val
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<String> = if args.is_empty() {
        // The benches run with the package dir as CWD, so the artifacts
        // live next to this crate's manifest regardless of where compare
        // itself is invoked from.
        let dir = env!("CARGO_MANIFEST_DIR");
        vec![
            format!("{dir}/BENCH_fock_pairsym.json"),
            format!("{dir}/BENCH_mixed_precision.json"),
            format!("{dir}/BENCH_dist_overlap.json"),
            format!("{dir}/BENCH_dist_scale.json"),
            format!("{dir}/BENCH_fusion.json"),
            format!("{dir}/BENCH_resilience.json"),
            format!("{dir}/BENCH_observability.json"),
        ]
    } else {
        args
    };

    let mut failed = false;
    for path in &paths {
        let basename = path.rsplit('/').next().unwrap_or(path);
        let Some(gates) = gates_for(basename) else {
            eprintln!("compare: FAIL — no gate table registered for {basename}");
            failed = true;
            continue;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("compare: FAIL — cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        println!("{path}:");
        for gate in &gates {
            if let Err(msg) = apply_gate(&text, gate) {
                eprintln!("compare: FAIL — {msg}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("compare: OK ({} file(s) gated)", paths.len());
        ExitCode::SUCCESS
    }
}
