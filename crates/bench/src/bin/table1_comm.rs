//! Table I — MPI communication time by category for the 1536-atom system
//! with the optimized methods (ACE / Ring / Async), on the ARM platform
//! (960 nodes) and the GPU platform (96 nodes).
//!
//! Two parts:
//! 1. the calibrated model at paper scale, printed next to the paper's
//!    measured values;
//! 2. a *measured* cross-check at small scale: the same three exchange
//!    strategies executed for real on the `mpisim` runtime (8 ranks,
//!    scaled network), demonstrating the category shifts
//!    (Bcast → Sendrecv → Wait) emerge from execution, not the model.

use mpisim::{Category, Cluster, NetworkModel, Topology};
use perfmodel::{step_time, Platform, Variant, Workload};
use ptim::distributed::{dist_fock_apply, BandDistribution, ExchangeStrategy};
use pwdft::{Cell, DftSystem, FockOperator, Wavefunction};
use pwdft_bench::{fmt_s, print_table};
use pwnum::cmat::CMat;
use pwnum::eigh;

/// Paper Table I values (seconds): (alltoallv, sendrecv, wait,
/// allgatherv, allreduce, bcast, total, ratio%).
const PAPER_ARM: [(&str, [f64; 8]); 3] = [
    ("ACE", [9.04, 0.0, 0.0, 0.17, 14.19, 67.22, 90.62, 18.92]),
    ("Ring", [9.03, 30.1, 0.0, 0.17, 14.21, 0.03, 53.54, 12.73]),
    ("Async", [9.18, 0.0, 20.13, 0.17, 14.18, 0.03, 43.69, 10.65]),
];
const PAPER_GPU: [(&str, [f64; 8]); 3] = [
    ("ACE", [7.95, 0.0, 0.0, 0.47, 4.99, 64.85, 78.26, 25.72]),
    ("Ring", [7.35, 20.54, 0.0, 0.47, 4.46, 0.89, 33.71, 21.13]),
    ("Async", [7.64, 0.0, 10.1, 0.47, 4.28, 0.82, 23.31, 16.38]),
];

fn model_table(pf: &Platform, nodes: usize, paper: &[(&str, [f64; 8]); 3]) {
    let w = Workload::silicon(1536);
    let mut rows = Vec::new();
    for (i, v) in [Variant::Ace, Variant::AceRing, Variant::AceAsync].iter().enumerate() {
        let b = step_time(pf, &w, nodes, *v);
        let c = b.comm;
        rows.push(vec![
            format!("{} (model)", v.label()),
            fmt_s(c.alltoallv),
            fmt_s(c.sendrecv),
            fmt_s(c.wait),
            fmt_s(c.allgatherv),
            fmt_s(c.allreduce),
            fmt_s(c.bcast),
            fmt_s(c.total()),
            format!("{:.2}%", 100.0 * b.comm_ratio()),
        ]);
        let p = &paper[i];
        rows.push(vec![
            format!("{} (paper)", p.0),
            fmt_s(p.1[0]),
            fmt_s(p.1[1]),
            fmt_s(p.1[2]),
            fmt_s(p.1[3]),
            fmt_s(p.1[4]),
            fmt_s(p.1[5]),
            fmt_s(p.1[6]),
            format!("{:.2}%", p.1[7]),
        ]);
    }
    print_table(
        &format!("Table I — 1536 Si atoms on {} ({} nodes)", pf.name, nodes),
        &[
            "method",
            "Alltoallv (s)",
            "Sendrecv (s)",
            "Wait (s)",
            "Allgatherv (s)",
            "Allreduce (s)",
            "Bcast (s)",
            "total comm (s)",
            "comm ratio",
        ],
        &rows,
    );
}

fn measured_cross_check() {
    println!("\n## Measured cross-check: real execution on the mpisim runtime (8 ranks)");
    let sys = DftSystem::with_dims(Cell::silicon_supercell(1, 1, 1), 2.0, [8, 8, 8]);
    let n_bands = 16;
    let phi = Wavefunction::random(&sys.grid, n_bands, 5);
    let sigma = CMat::from_real_diag(
        &(0..n_bands).map(|i| 1.0 / (1.0 + ((i as f64 - 8.0) * 0.5).exp())).collect::<Vec<_>>(),
    );
    let e = eigh(&sigma);
    let nat = phi.rotated(&e.vectors);
    let nat_r = nat.to_real_all(&sys.fft);
    let phi_r = phi.to_real_all(&sys.fft);
    let ng = sys.grid.len();

    let net = NetworkModel {
        topology: Topology::Torus(vec![2, 2, 2]),
        hop_latency: 1e-6,
        sw_overhead: 1e-6,
        bandwidth: 1e9,
        shm_bandwidth: 1e10,
        shm_latency: 1e-7,
    };

    let mut rows = Vec::new();
    for strategy in
        [ExchangeStrategy::Bcast, ExchangeStrategy::Ring, ExchangeStrategy::AsyncRing]
    {
        let nat_r = nat_r.clone();
        let phi_r = phi_r.clone();
        let values = e.values.clone();
        let sys_ref = &sys;
        let out = Cluster::new(8, 4, net.clone()).run(move |c| {
            let dist = BandDistribution::new(n_bands, c.size());
            let my = dist.range(c.rank());
            let fock = FockOperator::new(&sys_ref.grid, 0.2);
            let nat_local = nat_r[my.start * ng..my.end * ng].to_vec();
            let psi_local = phi_r[my.start * ng..my.end * ng].to_vec();
            let _ = dist_fock_apply(c, &fock, &dist, &nat_local, &values, &psi_local, strategy);
            (
                c.stats.time(Category::Bcast),
                c.stats.time(Category::Sendrecv),
                c.stats.time(Category::Wait),
            )
        });
        // Max over ranks, in milliseconds of virtual time.
        let max = |f: fn(&(f64, f64, f64)) -> f64| {
            out.iter().map(|(t, _)| f(t)).fold(0.0f64, f64::max) * 1e3
        };
        rows.push(vec![
            format!("{strategy:?}"),
            format!("{:.3}", max(|t| t.0)),
            format!("{:.3}", max(|t| t.1)),
            format!("{:.3}", max(|t| t.2)),
        ]);
    }
    print_table(
        "Measured virtual comm time per Vx (ms, max over ranks)",
        &["strategy", "Bcast", "Sendrecv", "Wait"],
        &rows,
    );
    println!("expected shape: Bcast>0 only for Bcast; Ring moves cost to Sendrecv;");
    println!("AsyncRing moves it to Wait and reduces it via overlap — as in Table I.");
}

fn main() {
    println!("# Table I reproduction — MPI communication time by category");
    model_table(&Platform::fugaku_arm(), 960, &PAPER_ARM);
    model_table(&Platform::gpu_a100(), 96, &PAPER_GPU);
    measured_cross_check();
}
