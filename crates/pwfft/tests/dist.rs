//! Distributed slab FFT vs the serial transform: bitwise consistency
//! (the acceptance bar of the 2-D parallelization subsystem), round
//! trips, odd/non-divisible slab shapes, and concurrent disjoint groups.

use mpisim::{Cluster, Comm};
use pwfft::{DistFft3, Fft3};
use pwnum::complex::{c64, Complex64};

fn signal(len: usize, seed: f64) -> Vec<Complex64> {
    (0..len)
        .map(|j| c64((j as f64 * 0.31 + seed).sin(), (j as f64 * 0.17 - seed).cos()))
        .collect()
}

/// Scatters the full grid into rank `idx`'s plane slab.
fn scatter(d: &DistFft3, full: &[Complex64], idx: usize) -> Vec<Complex64> {
    full[d.slab0_points(idx)].to_vec()
}

/// Gathers every rank's slab back into a full grid (root-free, for tests).
fn gather(comm: &mut Comm, _d: &DistFft3, local: Vec<Complex64>) -> Vec<Complex64> {
    let blocks = comm.allgatherv(local);
    blocks.into_iter().flatten().collect()
}

fn exact_eq(a: &[Complex64], b: &[Complex64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.re == y.re && x.im == y.im)
}

#[test]
fn forward_is_bitwise_identical_to_serial() {
    for dims in [(4, 6, 5), (6, 5, 4), (5, 3, 3), (12, 10, 6)] {
        let serial_fft = Fft3::new(dims.0, dims.1, dims.2);
        let x = signal(serial_fft.len(), 0.8);
        let mut want = x.clone();
        serial_fft.forward(&mut want);
        for p in [1usize, 2, 3, 4] {
            let x = x.clone();
            let want = want.clone();
            let out = Cluster::ideal(p).run(move |c| {
                let members: Vec<usize> = (0..c.size()).collect();
                let d = DistFft3::new(dims.0, dims.1, dims.2, members);
                let mut slab = scatter(&d, &x, c.rank());
                d.forward(c, &mut slab);
                let got = gather(c, &d, slab);
                exact_eq(&got, &want)
            });
            for (rank, (ok, _)) in out.iter().enumerate() {
                assert!(*ok, "dims {dims:?} p={p} rank={rank}: bitwise mismatch");
            }
        }
    }
}

#[test]
fn inverse_is_bitwise_identical_to_serial() {
    let dims = (6, 6, 4);
    let serial_fft = Fft3::new(dims.0, dims.1, dims.2);
    let x = signal(serial_fft.len(), 1.4);
    let mut want = x.clone();
    serial_fft.inverse(&mut want);
    let out = Cluster::ideal(3).run(move |c| {
        let members: Vec<usize> = (0..c.size()).collect();
        let d = DistFft3::new(dims.0, dims.1, dims.2, members);
        let mut slab = scatter(&d, &x, c.rank());
        d.inverse(c, &mut slab);
        let got = gather(c, &d, slab);
        exact_eq(&got, &want)
    });
    for (ok, _) in &out {
        assert!(*ok, "inverse mismatch");
    }
}

#[test]
fn roundtrip_recovers_input() {
    let dims = (8, 9, 5);
    let x = signal(dims.0 * dims.1 * dims.2, 0.3);
    let out = Cluster::ideal(4).run(move |c| {
        let members: Vec<usize> = (0..c.size()).collect();
        let d = DistFft3::new(dims.0, dims.1, dims.2, members);
        let orig = scatter(&d, &x, c.rank());
        let mut slab = orig.clone();
        d.forward(c, &mut slab);
        d.inverse(c, &mut slab);
        slab.iter().zip(&orig).map(|(a, b)| (*a - *b).abs()).fold(0.0f64, f64::max)
    });
    for (err, _) in &out {
        assert!(*err < 1e-10, "roundtrip error {err}");
    }
}

#[test]
fn more_ranks_than_planes_leaves_empty_slabs_working() {
    // p = 5 ranks on n0 = 3 planes: two ranks own nothing but still
    // participate in the transposes.
    let dims = (3, 4, 4);
    let serial_fft = Fft3::new(dims.0, dims.1, dims.2);
    let x = signal(serial_fft.len(), 2.2);
    let mut want = x.clone();
    serial_fft.forward(&mut want);
    let out = Cluster::ideal(5).run(move |c| {
        let members: Vec<usize> = (0..c.size()).collect();
        let d = DistFft3::new(dims.0, dims.1, dims.2, members);
        let mut slab = scatter(&d, &x, c.rank());
        d.forward(c, &mut slab);
        let got = gather(c, &d, slab);
        exact_eq(&got, &want)
    });
    for (ok, _) in &out {
        assert!(*ok);
    }
}

#[test]
fn disjoint_groups_transform_concurrently() {
    // Two band groups (rows {0,1} and {2,3}) each transform their own
    // grid at the same time — the 2-D layout's concurrent Z-passes.
    let dims = (4, 4, 4);
    let serial_fft = Fft3::new(dims.0, dims.1, dims.2);
    let xa = signal(serial_fft.len(), 0.1);
    let xb = signal(serial_fft.len(), 5.9);
    let mut want_a = xa.clone();
    let mut want_b = xb.clone();
    serial_fft.forward(&mut want_a);
    serial_fft.forward(&mut want_b);
    let out = Cluster::ideal(4).run(move |c| {
        let (members, x, want) = if c.rank() < 2 {
            (vec![0usize, 1], &xa, &want_a)
        } else {
            (vec![2usize, 3], &xb, &want_b)
        };
        let d = DistFft3::new(dims.0, dims.1, dims.2, members.clone());
        let idx = d.group_index(c.rank());
        let mut slab = scatter(&d, x, idx);
        d.forward(c, &mut slab);
        // Compare the local slab directly (gather would cross groups).
        let pts = d.slab0_points(idx);
        exact_eq(&slab, &want[pts])
    });
    for (rank, (ok, _)) in out.iter().enumerate() {
        assert!(*ok, "rank {rank}: group transform mismatch");
    }
}

#[test]
fn convolve_slab_matches_serial_filtered_roundtrip() {
    let dims = (4, 6, 5);
    let serial_fft = Fft3::new(dims.0, dims.1, dims.2);
    let n = serial_fft.len();
    let kernel: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + (i % 7) as f64)).collect();
    let x = signal(n, 0.7);
    let mut want = x.clone();
    serial_fft.forward(&mut want);
    for (z, &k) in want.iter_mut().zip(&kernel) {
        *z = z.scale(k);
    }
    serial_fft.inverse(&mut want);
    let out = Cluster::ideal(3).run(move |c| {
        let members: Vec<usize> = (0..c.size()).collect();
        let d = DistFft3::new(dims.0, dims.1, dims.2, members);
        let mut slab = scatter(&d, &x, c.rank());
        let count_before = d.transform_count();
        d.convolve_slab(c, &mut slab, &kernel);
        let got = gather(c, &d, slab);
        (exact_eq(&got, &want), d.transform_count() > count_before)
    });
    for ((ok, counted), _) in &out {
        assert!(*ok, "convolve mismatch");
        assert!(*counted, "transform counter must advance");
    }
}
