//! Property-based tests for the FFT plans and the backend-routed
//! batched transforms.

use proptest::prelude::*;
use pwfft::{Fft3, Plan};
use pwnum::backend::{by_name, BackendHandle};
use pwnum::complex::{c64, Complex64};

fn backend_pair() -> (BackendHandle, BackendHandle) {
    (by_name("reference").unwrap(), by_name("blocked").unwrap())
}

fn signal_strategy(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn roundtrip_any_length(n in 1usize..200, seed in 0u64..1000) {
        let plan = Plan::new(n);
        let x: Vec<Complex64> = (0..n)
            .map(|j| c64(((j as u64 + seed) as f64 * 0.37).sin(), ((j as u64 * 3 + seed) as f64 * 0.11).cos()))
            .collect();
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_random(x in signal_strategy(96)) {
        let plan = Plan::new(96);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        plan.forward(&mut y);
        let e_freq: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 96.0;
        prop_assert!((e_time - e_freq).abs() < 1e-9 * (1.0 + e_time));
    }

    #[test]
    fn forward_is_linear(x in signal_strategy(60), y in signal_strategy(60), a_re in -2.0f64..2.0, a_im in -2.0f64..2.0) {
        let plan = Plan::new(60);
        let alpha = c64(a_re, a_im);
        let mut lhs: Vec<Complex64> = x.iter().zip(&y).map(|(p, q)| *p * alpha + *q).collect();
        plan.forward(&mut lhs);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fy = y.clone();
        plan.forward(&mut fy);
        for i in 0..60 {
            prop_assert!((lhs[i] - (fx[i] * alpha + fy[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn dc_component_is_sum(x in signal_strategy(45)) {
        let plan = Plan::new(45);
        let sum: Complex64 = x.iter().sum();
        let mut y = x.clone();
        plan.forward(&mut y);
        prop_assert!((y[0] - sum).abs() < 1e-10);
    }

    #[test]
    fn fft3_roundtrip(n0 in 1usize..7, n1 in 1usize..7, n2 in 1usize..7, seed in 0u64..100) {
        let fft = Fft3::new(n0, n1, n2);
        let x: Vec<Complex64> = (0..fft.len())
            .map(|j| c64(((j as u64 + seed) as f64 * 0.23).sin(), ((j as u64 + 2 * seed) as f64 * 0.41).cos()))
            .collect();
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn real_input_has_hermitian_spectrum(reals in proptest::collection::vec(-1.0f64..1.0, 64)) {
        let plan = Plan::new(64);
        let mut x: Vec<Complex64> = reals.iter().map(|&r| c64(r, 0.0)).collect();
        plan.forward(&mut x);
        for k in 1..64 {
            // X[n-k] == conj(X[k]) for real input.
            prop_assert!((x[64 - k] - x[k].conj()).abs() < 1e-10);
        }
    }

    #[test]
    fn backends_agree_on_smooth_grid_batches(
        shape_idx in 0usize..5,
        count in 1usize..5,
        seed in 0u64..100,
    ) {
        // Non-power-of-two 2/3/5-smooth shapes (the paper's production
        // grids are of this class).
        const SHAPES: [(usize, usize, usize); 5] =
            [(6, 10, 15), (9, 12, 5), (10, 18, 12), (15, 4, 9), (20, 6, 10)];
        let dims = SHAPES[shape_idx];
        let (reference, blocked) = backend_pair();
        let fft = Fft3::new(dims.0, dims.1, dims.2);
        let x: Vec<Complex64> = (0..fft.len() * count)
            .map(|j| c64(
                ((j as u64 + seed) as f64 * 0.29).sin(),
                ((j as u64 * 3 + seed) as f64 * 0.13).cos(),
            ))
            .collect();
        // Forward agreement to 1e-10 (relative to the unnormalized
        // transform magnitude), and both round-trip to the input.
        let mut fr = x.clone();
        let mut fb = x.clone();
        fft.forward_many_with(&*reference, &mut fr, count);
        fft.forward_many_with(&*blocked, &mut fb, count);
        let scale = fr.iter().map(|z| z.abs()).fold(1.0f64, f64::max);
        prop_assert!(pwnum::cvec::max_abs_diff(&fr, &fb) < 1e-10 * scale);
        fft.inverse_many_with(&*reference, &mut fr, count);
        fft.inverse_many_with(&*blocked, &mut fb, count);
        prop_assert!(pwnum::cvec::max_abs_diff(&fr, &x) < 1e-9);
        prop_assert!(pwnum::cvec::max_abs_diff(&fb, &x) < 1e-9);
    }
}

/// The paper's 1536-atom production grid shape: one 60×90×120 slab
/// through both backends — forward agreement and round-trip, plus the
/// fused pass matching the per-line pass bitwise.
#[test]
fn backends_agree_on_paper_grid_60_90_120() {
    let (reference, blocked) = backend_pair();
    let fft = Fft3::new(60, 90, 120);
    let x: Vec<Complex64> = (0..fft.len())
        .map(|j| c64((j as f64 * 0.37).sin(), (j as f64 * 0.17).cos()))
        .collect();
    let mut fr = x.clone();
    let mut fb = x.clone();
    fft.forward_many_with(&*reference, &mut fr, 1);
    fft.forward_many_with(&*blocked, &mut fb, 1);
    // The fused row-vector passes perform lane-identical arithmetic:
    // agreement is exact, well inside the 1e-10 contract.
    assert_eq!(pwnum::cvec::max_abs_diff(&fr, &fb), 0.0, "fused pass must be bitwise equal");
    fft.inverse_many_with(&*blocked, &mut fb, 1);
    assert!(pwnum::cvec::max_abs_diff(&fb, &x) < 1e-9, "60x90x120 round-trip");
}
