//! # pwfft — FFTs for plane-wave DFT grids
//!
//! A self-contained mixed-radix complex FFT library sized for the grids of
//! the PT-IM rt-TDDFT reproduction:
//!
//! * [`plan`] — 1D plans (radix 2/3/4/5 kernels + generic prime radix),
//!   unnormalized forward / `1/n`-normalized inverse, allocation-free
//!   `_with` entry points for hot loops.
//! * [`fft3`] — in-place 3D transforms over row-major grids with a
//!   thread-parallel batched API ([`fft3::Fft3::forward_many`]) mirroring
//!   the paper's multi-batch cuFFT strategy, plus backend-routed batched
//!   entry points ([`fft3::Fft3::forward_many_with`]) that let a
//!   [`pwnum::backend::Backend`] own slab decomposition and scratch
//!   reuse (DESIGN.md §3).
//!
//! * [`dist`] — the slab-decomposed distributed 3-D transform
//!   ([`DistFft3`]) over an [`mpisim`] rank group: axis-2/axis-1 passes
//!   local to each rank's plane slab, the Z-pass via a group-scoped
//!   `alltoallv` transpose. Bitwise identical to the serial [`Fft3`] —
//!   the grid dimension of the hierarchical 2-D parallelization.
//!
//! * [`plan32`] / [`fft32`] — the single-precision twins ([`Plan32`],
//!   [`Fft32`]): fp32 twiddles and butterflies with the same mixed-radix
//!   structure and fused row-vector passes, feeding the mixed-precision
//!   exchange pipeline through [`pwnum::backend::Backend::transform_batch32`]
//!   at half the memory traffic and twice the SIMD width.
//!
//! All grid sizes used by the physics code are 2/3/5-smooth, matching the
//! paper's production grids (e.g. 60×90×120 for 1536 Si atoms).

pub mod dist;
pub mod fft3;
pub mod fft32;
pub mod plan;
pub mod plan32;

pub use dist::DistFft3;
pub use fft3::{ConvolvePass, Fft3, FftPass};
pub use fft32::{ConvolvePass32, Fft32, FftPass32};
pub use plan::Plan;
pub use plan32::Plan32;
