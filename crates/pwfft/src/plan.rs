//! One-dimensional complex FFT plans.
//!
//! Mixed-radix decimation-in-time Cooley–Tukey with hard-coded kernels for
//! radices 2, 3, 4, 5 and a generic O(r²) kernel for any other prime
//! factor. All plane-wave grids in this code base are 2/3/5-smooth (the
//! paper's 1536-atom grid is 60×90×120), so the generic kernel only exists
//! for completeness; performance-sensitive sizes hit the fast kernels.
//!
//! Conventions: `forward` computes the unnormalized sum
//! `X[k] = Σ_j x[j] e^{-2πi jk/n}`; `inverse` applies the conjugate
//! transform and scales by `1/n`, so `inverse(forward(x)) == x`.

use pwnum::complex::{c64, Complex64};

/// Largest radix handled by the stack-buffered fast kernels; larger
/// (prime) radices fall back to heap-buffered generic DFTs.
pub const MAX_FAST_RADIX: usize = 16;

/// Precomputed plan for transforms of one length.
#[derive(Clone, Debug)]
pub struct Plan {
    n: usize,
    /// Prime-power factor sequence used by the recursion (e.g. 60 → \[4,3,5\]).
    factors: Vec<usize>,
    /// Twiddle table `w[j] = exp(-2πi j / n)`.
    twiddle: Vec<Complex64>,
}

fn factorize(mut n: usize) -> Vec<usize> {
    let mut f = Vec::new();
    // Prefer radix-4 over two radix-2 stages (fewer passes).
    while n.is_multiple_of(4) {
        f.push(4);
        n /= 4;
    }
    while n.is_multiple_of(2) {
        f.push(2);
        n /= 2;
    }
    while n.is_multiple_of(3) {
        f.push(3);
        n /= 3;
    }
    while n.is_multiple_of(5) {
        f.push(5);
        n /= 5;
    }
    let mut p = 7;
    while n > 1 {
        while n.is_multiple_of(p) {
            f.push(p);
            n /= p;
        }
        p += 2;
        if p * p > n && n > 1 {
            f.push(n);
            break;
        }
    }
    f
}

impl Plan {
    /// Builds a plan for length-`n` transforms.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let twiddle: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        Plan { n, factors: factorize(n), twiddle }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the length is 1 (transform is the identity).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// Required scratch size for the `_with` entry points.
    #[inline]
    pub fn scratch_len(&self) -> usize {
        self.n
    }

    /// Forward transform, in place, allocating scratch.
    pub fn forward(&self, data: &mut [Complex64]) {
        let mut scratch = vec![Complex64::ZERO; self.n];
        self.forward_with(data, &mut scratch);
    }

    /// Inverse transform (normalized by `1/n`), in place, allocating scratch.
    pub fn inverse(&self, data: &mut [Complex64]) {
        let mut scratch = vec![Complex64::ZERO; self.n];
        self.inverse_with(data, &mut scratch);
    }

    /// Forward transform with caller-provided scratch (hot path; no
    /// allocation). `scratch` must have at least [`Self::scratch_len`]
    /// elements.
    pub fn forward_with(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        assert!(scratch.len() >= self.n, "FFT scratch too small");
        if self.n == 1 {
            return;
        }
        scratch[..self.n].copy_from_slice(data);
        self.rec(&scratch[..self.n], 1, data, self.n, 0, false);
    }

    /// Inverse transform with caller-provided scratch.
    pub fn inverse_with(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        assert!(scratch.len() >= self.n, "FFT scratch too small");
        if self.n == 1 {
            return;
        }
        scratch[..self.n].copy_from_slice(data);
        self.rec(&scratch[..self.n], 1, data, self.n, 0, true);
        let inv_n = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv_n);
        }
    }

    /// Required scratch size for the `_rows_with` entry points with
    /// `v`-element rows: a source copy of the whole `n*v` region plus up
    /// to [`MAX_FAST_RADIX`] row buffers.
    #[inline]
    pub fn rows_scratch_len(&self, v: usize) -> usize {
        (self.n + MAX_FAST_RADIX) * v
    }

    /// Forward transform of `n` *rows* of `v` contiguous elements each
    /// (lane `l` of every row forms one length-`n` signal): the fused
    /// multi-line pass used by accelerator-style backends for the
    /// strided axes of 3-D grids. Every butterfly operates on whole
    /// contiguous rows, so the per-transform recursion and twiddle
    /// overhead is amortized over `v` lanes and the inner loops
    /// vectorize. Results are bitwise identical to `v` separate
    /// strided [`Self::forward_with`] transforms.
    pub fn forward_rows_with(&self, data: &mut [Complex64], v: usize, scratch: &mut [Complex64]) {
        self.rows_transform(data, v, scratch, false);
    }

    /// Inverse variant of [`Self::forward_rows_with`] (scaled by `1/n`).
    pub fn inverse_rows_with(&self, data: &mut [Complex64], v: usize, scratch: &mut [Complex64]) {
        self.rows_transform(data, v, scratch, true);
        let inv_n = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv_n);
        }
    }

    fn rows_transform(&self, data: &mut [Complex64], v: usize, scratch: &mut [Complex64], inverse: bool) {
        assert!(v > 0, "row width must be positive");
        assert_eq!(data.len(), self.n * v, "rows FFT buffer length mismatch");
        assert!(scratch.len() >= self.rows_scratch_len(v), "rows FFT scratch too small");
        if self.n == 1 {
            return;
        }
        let (src, buf) = scratch.split_at_mut(self.n * v);
        src.copy_from_slice(data);
        self.rec_rows(src, 1, data, self.n, 0, inverse, v, buf);
    }

    /// Row-vector analog of [`Self::rec`]: element `j` is the contiguous
    /// row `src[j*ss*v .. j*ss*v + v]`.
    #[allow(clippy::too_many_arguments)]
    fn rec_rows(
        &self,
        src: &[Complex64],
        ss: usize,
        dst: &mut [Complex64],
        n_sub: usize,
        level: usize,
        inverse: bool,
        v: usize,
        buf: &mut [Complex64],
    ) {
        if n_sub == 1 {
            dst[..v].copy_from_slice(&src[..v]);
            return;
        }
        let r = self.factors[level];
        let m = n_sub / r;
        for q in 0..r {
            self.rec_rows(
                &src[q * ss * v..],
                ss * r,
                &mut dst[q * m * v..(q + 1) * m * v],
                m,
                level + 1,
                inverse,
                v,
                buf,
            );
        }
        let tw_stride = self.n / n_sub;
        if r <= MAX_FAST_RADIX {
            for k in 0..m {
                for q in 0..r {
                    let t = self.tw(q * k * tw_stride, inverse);
                    let srow = &dst[(q * m + k) * v..(q * m + k + 1) * v];
                    for (b, &x) in buf[q * v..(q + 1) * v].iter_mut().zip(srow) {
                        *b = x * t;
                    }
                }
                self.butterfly_rows(&buf[..r * v], dst, k, m, v, inverse);
            }
        } else {
            // Arbitrarily large prime radix: heap-buffered generic kernel.
            let mut hbuf = vec![Complex64::ZERO; r * v];
            for k in 0..m {
                for q in 0..r {
                    let t = self.tw(q * k * tw_stride, inverse);
                    let srow = &dst[(q * m + k) * v..(q * m + k + 1) * v];
                    for (b, &x) in hbuf[q * v..(q + 1) * v].iter_mut().zip(srow) {
                        *b = x * t;
                    }
                }
                self.generic_butterfly_rows(&hbuf, dst, k, m, v, inverse);
            }
        }
    }

    /// Row-vector r-point DFT of `buf`, scattered to rows `k + j*m` of
    /// `dst` — lane-for-lane the same arithmetic as [`Self::butterfly`].
    fn butterfly_rows(
        &self,
        buf: &[Complex64],
        dst: &mut [Complex64],
        k: usize,
        m: usize,
        v: usize,
        inverse: bool,
    ) {
        let r = buf.len() / v;
        let mut rows = dst.chunks_mut(v);
        match r {
            2 => {
                let r0 = rows.nth(k).unwrap();
                let r1 = rows.nth(m - 1).unwrap();
                for l in 0..v {
                    let (a, b) = (buf[l], buf[v + l]);
                    r0[l] = a + b;
                    r1[l] = a - b;
                }
            }
            3 => {
                let s3 = if inverse { 0.5 * 3f64.sqrt() } else { -0.5 * 3f64.sqrt() };
                let r0 = rows.nth(k).unwrap();
                let r1 = rows.nth(m - 1).unwrap();
                let r2 = rows.nth(m - 1).unwrap();
                let js3 = c64(0.0, s3);
                for l in 0..v {
                    let (a, b, c) = (buf[l], buf[v + l], buf[2 * v + l]);
                    let t = b + c;
                    let u = (b - c) * js3;
                    r0[l] = a + t;
                    r1[l] = a - t.scale(0.5) + u;
                    r2[l] = a - t.scale(0.5) - u;
                }
            }
            4 => {
                let ji = if inverse { c64(0.0, 1.0) } else { c64(0.0, -1.0) };
                let r0 = rows.nth(k).unwrap();
                let r1 = rows.nth(m - 1).unwrap();
                let r2 = rows.nth(m - 1).unwrap();
                let r3 = rows.nth(m - 1).unwrap();
                for l in 0..v {
                    let (a, b, c, d) = (buf[l], buf[v + l], buf[2 * v + l], buf[3 * v + l]);
                    let apc = a + c;
                    let amc = a - c;
                    let bpd = b + d;
                    let bmd = (b - d) * ji;
                    r0[l] = apc + bpd;
                    r1[l] = amc + bmd;
                    r2[l] = apc - bpd;
                    r3[l] = amc - bmd;
                }
            }
            5 => {
                let tau = 2.0 * std::f64::consts::PI / 5.0;
                let (c1, c2) = (tau.cos(), (2.0 * tau).cos());
                let (mut s1, mut s2) = (tau.sin(), (2.0 * tau).sin());
                if !inverse {
                    s1 = -s1;
                    s2 = -s2;
                }
                let r0 = rows.nth(k).unwrap();
                let r1 = rows.nth(m - 1).unwrap();
                let r2 = rows.nth(m - 1).unwrap();
                let r3 = rows.nth(m - 1).unwrap();
                let r4 = rows.nth(m - 1).unwrap();
                let i = Complex64::I;
                for l in 0..v {
                    let a = buf[l];
                    let p1 = buf[v + l] + buf[4 * v + l];
                    let m1 = buf[v + l] - buf[4 * v + l];
                    let p2 = buf[2 * v + l] + buf[3 * v + l];
                    let m2 = buf[2 * v + l] - buf[3 * v + l];
                    r0[l] = a + p1 + p2;
                    let re1 = a + p1.scale(c1) + p2.scale(c2);
                    let im1 = m1.scale(s1) + m2.scale(s2);
                    let re2 = a + p1.scale(c2) + p2.scale(c1);
                    let im2 = m1.scale(s2) - m2.scale(s1);
                    r1[l] = re1 + i * im1;
                    r2[l] = re2 + i * im2;
                    r3[l] = re2 - i * im2;
                    r4[l] = re1 - i * im1;
                }
            }
            _ => self.generic_butterfly_rows(buf, dst, k, m, v, inverse),
        }
    }

    /// Row-vector analog of [`Self::generic_butterfly`].
    fn generic_butterfly_rows(
        &self,
        buf: &[Complex64],
        dst: &mut [Complex64],
        k: usize,
        m: usize,
        v: usize,
        inverse: bool,
    ) {
        let r = buf.len() / v;
        let stride_r = self.n / r;
        let mut rows = dst.chunks_mut(v);
        let mut row = rows.nth(k).unwrap();
        for j in 0..r {
            let w: Vec<Complex64> =
                (0..r).map(|q| self.tw((q * j % r) * stride_r, inverse)).collect();
            for (l, out) in row.iter_mut().enumerate() {
                let mut acc = Complex64::ZERO;
                for (q, &wq) in w.iter().enumerate() {
                    acc += buf[q * v + l] * wq;
                }
                *out = acc;
            }
            if j + 1 < r {
                row = rows.nth(m - 1).unwrap();
            }
        }
    }

    /// Twiddle lookup `exp(∓2πi idx / n)` (conjugated for inverse).
    #[inline(always)]
    fn tw(&self, idx: usize, inverse: bool) -> Complex64 {
        let w = self.twiddle[idx % self.n];
        if inverse {
            w.conj()
        } else {
            w
        }
    }

    /// Recursive mixed-radix step: writes the DFT of
    /// `src[0], src[ss], ..., src[(n_sub-1)*ss]` into `dst[0..n_sub]`.
    ///
    /// `level` indexes into the factor list; `self.n / n_sub` is the
    /// twiddle stride for this level.
    fn rec(
        &self,
        src: &[Complex64],
        ss: usize,
        dst: &mut [Complex64],
        n_sub: usize,
        level: usize,
        inverse: bool,
    ) {
        if n_sub == 1 {
            dst[0] = src[0];
            return;
        }
        let r = self.factors[level];
        let m = n_sub / r;
        // Decimate: FFT each residue class into consecutive blocks of dst.
        for q in 0..r {
            let sub_src = &src[q * ss..];
            self.rec(sub_src, ss * r, &mut dst[q * m..(q + 1) * m], m, level + 1, inverse);
        }
        // Combine blocks in place: for each k, gather r values with
        // twiddles and apply an r-point DFT, scattering to dst[k + j*m].
        let tw_stride = self.n / n_sub;
        let mut buf = [Complex64::ZERO; 16];
        debug_assert!(r <= 16 || r % 2 == 1, "unexpected radix {r}");
        if r <= 16 {
            for k in 0..m {
                for (q, b) in buf[..r].iter_mut().enumerate() {
                    let t = self.tw(q * k * tw_stride, inverse);
                    *b = dst[q * m + k] * t;
                }
                self.butterfly(&mut buf[..r], dst, k, m, inverse);
            }
        } else {
            // Arbitrarily large prime radix: heap-buffered generic kernel.
            let mut heap_buf = vec![Complex64::ZERO; r];
            for k in 0..m {
                for (q, b) in heap_buf.iter_mut().enumerate() {
                    let t = self.tw(q * k * tw_stride, inverse);
                    *b = dst[q * m + k] * t;
                }
                self.generic_butterfly(&heap_buf, dst, k, m, n_sub, inverse);
            }
        }
    }

    /// r-point DFT of `buf`, scattered to `dst[k + j*m]`.
    #[inline]
    fn butterfly(
        &self,
        buf: &mut [Complex64],
        dst: &mut [Complex64],
        k: usize,
        m: usize,
        inverse: bool,
    ) {
        let r = buf.len();
        match r {
            2 => {
                let (a, b) = (buf[0], buf[1]);
                dst[k] = a + b;
                dst[k + m] = a - b;
            }
            3 => {
                // w = exp(-2πi/3) = (-1/2, -√3/2); conjugated for inverse.
                let s3 = if inverse { 0.5 * 3f64.sqrt() } else { -0.5 * 3f64.sqrt() };
                let (a, b, c) = (buf[0], buf[1], buf[2]);
                let t = b + c;
                let u = (b - c) * c64(0.0, s3);
                dst[k] = a + t;
                dst[k + m] = a - t.scale(0.5) + u;
                dst[k + 2 * m] = a - t.scale(0.5) - u;
            }
            4 => {
                let ji = if inverse { c64(0.0, 1.0) } else { c64(0.0, -1.0) };
                let (a, b, c, d) = (buf[0], buf[1], buf[2], buf[3]);
                let apc = a + c;
                let amc = a - c;
                let bpd = b + d;
                let bmd = (b - d) * ji;
                dst[k] = apc + bpd;
                dst[k + m] = amc + bmd;
                dst[k + 2 * m] = apc - bpd;
                dst[k + 3 * m] = amc - bmd;
            }
            5 => {
                // Explicit 5-point DFT via the standard Winograd-style
                // symmetric/antisymmetric split.
                let tau = 2.0 * std::f64::consts::PI / 5.0;
                let (c1, c2) = (tau.cos(), (2.0 * tau).cos());
                let (mut s1, mut s2) = (tau.sin(), (2.0 * tau).sin());
                if !inverse {
                    s1 = -s1;
                    s2 = -s2;
                }
                let a = buf[0];
                let p1 = buf[1] + buf[4];
                let m1 = buf[1] - buf[4];
                let p2 = buf[2] + buf[3];
                let m2 = buf[2] - buf[3];
                dst[k] = a + p1 + p2;
                let re1 = a + p1.scale(c1) + p2.scale(c2);
                let im1 = m1.scale(s1) + m2.scale(s2);
                let re2 = a + p1.scale(c2) + p2.scale(c1);
                let im2 = m1.scale(s2) - m2.scale(s1);
                let i = Complex64::I;
                dst[k + m] = re1 + i * im1;
                dst[k + 2 * m] = re2 + i * im2;
                dst[k + 3 * m] = re2 - i * im2;
                dst[k + 4 * m] = re1 - i * im1;
            }
            _ => {
                let copy: Vec<Complex64> = buf.to_vec();
                self.generic_butterfly(&copy, dst, k, m, r * m, inverse);
            }
        }
    }

    /// Naive O(r²) DFT kernel for odd prime radices.
    fn generic_butterfly(
        &self,
        buf: &[Complex64],
        dst: &mut [Complex64],
        k: usize,
        m: usize,
        n_sub: usize,
        inverse: bool,
    ) {
        let r = buf.len();
        // exp(-2πi q j / r) = twiddle at stride n/r.
        let stride_r = self.n / r;
        let _ = n_sub;
        for j in 0..r {
            let mut acc = Complex64::ZERO;
            for (q, &bq) in buf.iter().enumerate() {
                acc += bq * self.tw((q * j % r) * stride_r, inverse);
            }
            dst[k + j * m] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex64], inverse: bool) -> Vec<Complex64> {
        let n = x.len();
        let sign = if inverse { 2.0 } else { -2.0 };
        let mut out = vec![Complex64::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (j, &xj) in x.iter().enumerate() {
                acc += xj * Complex64::cis(sign * std::f64::consts::PI * (j * k % n) as f64 / n as f64);
            }
            *o = if inverse { acc.scale(1.0 / n as f64) } else { acc };
        }
        out
    }

    fn signal(n: usize, seed: f64) -> Vec<Complex64> {
        (0..n)
            .map(|j| c64((j as f64 * 0.7 + seed).sin(), (j as f64 * 1.3 - seed).cos()))
            .collect()
    }

    #[test]
    fn matches_naive_dft_many_sizes() {
        for n in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 18, 20, 24, 25, 27, 30, 32,
            36, 45, 48, 49, 60, 64, 77, 90, 97, 120, 125]
        {
            let plan = Plan::new(n);
            let x = signal(n, 0.3);
            let mut y = x.clone();
            plan.forward(&mut y);
            let want = naive_dft(&x, false);
            for (a, b) in y.iter().zip(&want) {
                assert!((*a - *b).abs() < 1e-9 * (n as f64), "forward mismatch n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_inverse() {
        for n in [2, 3, 4, 5, 8, 12, 36, 60, 90, 120, 240, 251] {
            let plan = Plan::new(n);
            let x = signal(n, 1.7);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            for (a, b) in y.iter().zip(&x) {
                assert!((*a - *b).abs() < 1e-10, "roundtrip mismatch n={n}");
            }
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let plan = Plan::new(36);
        let mut x = vec![Complex64::ZERO; 36];
        x[0] = Complex64::ONE;
        plan.forward(&mut x);
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_delta() {
        let plan = Plan::new(40);
        let mut x = vec![Complex64::ONE; 40];
        plan.forward(&mut x);
        assert!((x[0] - c64(40.0, 0.0)).abs() < 1e-11);
        for z in &x[1..] {
            assert!(z.abs() < 1e-11);
        }
    }

    #[test]
    fn parseval_identity() {
        for n in [12, 30, 128] {
            let plan = Plan::new(n);
            let x = signal(n, 0.5);
            let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let mut y = x.clone();
            plan.forward(&mut y);
            let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
        }
    }

    #[test]
    fn linearity() {
        let n = 48;
        let plan = Plan::new(n);
        let x = signal(n, 0.1);
        let y = signal(n, 2.2);
        let alpha = c64(1.5, -0.3);
        let mut combined: Vec<Complex64> =
            x.iter().zip(&y).map(|(a, b)| *a * alpha + *b).collect();
        plan.forward(&mut combined);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fy = y.clone();
        plan.forward(&mut fy);
        for i in 0..n {
            assert!((combined[i] - (fx[i] * alpha + fy[i])).abs() < 1e-10);
        }
    }

    #[test]
    fn convolution_theorem() {
        let n = 30;
        let plan = Plan::new(n);
        let x = signal(n, 0.2);
        let h = signal(n, 1.9);
        // Direct circular convolution.
        let mut conv = vec![Complex64::ZERO; n];
        for i in 0..n {
            for j in 0..n {
                conv[(i + j) % n] += x[i] * h[j];
            }
        }
        // Via FFT.
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fh = h.clone();
        plan.forward(&mut fh);
        let mut prod: Vec<Complex64> = fx.iter().zip(&fh).map(|(a, b)| *a * *b).collect();
        plan.inverse(&mut prod);
        for i in 0..n {
            assert!((conv[i] - prod[i]).abs() < 1e-9, "mismatch at {i}");
        }
    }

    #[test]
    fn shift_theorem() {
        let n = 36;
        let plan = Plan::new(n);
        let x = signal(n, 0.8);
        let shift = 5usize;
        let shifted: Vec<Complex64> = (0..n).map(|j| x[(j + n - shift) % n]).collect();
        let mut fs = shifted.clone();
        plan.forward(&mut fs);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        for k in 0..n {
            let phase = Complex64::cis(-2.0 * std::f64::consts::PI * (k * shift) as f64 / n as f64);
            assert!((fs[k] - fx[k] * phase).abs() < 1e-10);
        }
    }

    #[test]
    fn scratch_variant_matches() {
        let n = 90;
        let plan = Plan::new(n);
        let x = signal(n, 0.4);
        let mut a = x.clone();
        let mut b = x.clone();
        plan.forward(&mut a);
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        plan.forward_with(&mut b, &mut scratch);
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(*p, *q);
        }
    }

    #[test]
    fn factorization_covers_sizes() {
        assert_eq!(super::factorize(60), vec![4, 3, 5]);
        assert_eq!(super::factorize(8), vec![4, 2]);
        assert_eq!(super::factorize(7), vec![7]);
        assert_eq!(super::factorize(90), vec![2, 3, 3, 5]);
        let f240 = super::factorize(240);
        assert_eq!(f240.iter().product::<usize>(), 240);
    }
}
